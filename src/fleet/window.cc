#include "fleet/window.h"

#include <algorithm>
#include <stdexcept>

#include "telemetry/telemetry.h"
#include "util/strings.h"

namespace tapo::fleet {

namespace {

/// Floor division (window indices for negative logical timestamps must
/// round toward -inf, like util::floor_to).
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if (a % b != 0 && (a < 0) != (b < 0)) --q;
  return q;
}

double ratio_of(std::int64_t part, std::int64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0.0;
}

}  // namespace

std::string service_name(std::uint8_t s) {
  switch (s) {
    case 0: return "cloud-storage";
    case 1: return "software-download";
    case 2: return "web-search";
    default: return "service-" + std::to_string(s);
  }
}

// ----------------------------------------------------------- FleetConfig

FleetConfig& FleetConfig::with_window(Duration w) {
  if (w <= Duration::zero()) {
    throw std::invalid_argument("FleetConfig: window must be > 0");
  }
  window = w;
  return *this;
}

FleetConfig& FleetConfig::with_sketch_alpha(double a) {
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument("FleetConfig: sketch alpha must be in (0,1)");
  }
  sketch_alpha = a;
  return *this;
}

void FleetConfig::validate() const {
  if (window <= Duration::zero()) {
    throw std::invalid_argument("FleetConfig: window must be > 0");
  }
  if (!(sketch_alpha > 0.0) || !(sketch_alpha < 1.0)) {
    throw std::invalid_argument("FleetConfig: sketch alpha must be in (0,1)");
  }
}

// ------------------------------------------------------------ aggregates

void CauseCell::merge(const CauseCell& other) {
  stall_count += other.stall_count;
  stalled_us += other.stalled_us;
  stall_us.merge(other.stall_us);
}

static_assert(analysis::kNumStallCauses == 7,
              "update the ServiceWindow cause-array initializer");

ServiceWindow::ServiceWindow(double alpha)
    : completion_us(alpha),
      by_cause{CauseCell(alpha), CauseCell(alpha), CauseCell(alpha),
               CauseCell(alpha), CauseCell(alpha), CauseCell(alpha),
               CauseCell(alpha)} {}

void ServiceWindow::add(const FlowRecord& r) {
  ++flows;
  if (r.completed) ++completed;
  if (!r.stalls.empty()) ++stalled_flows;
  if (r.degraded) ++degraded_flows;
  transmission_us += r.transmission_us;
  stalled_us += r.stalled_us;
  unique_bytes += r.unique_bytes;
  data_segments += r.data_segments;
  retrans_segments += r.retrans_segments;
  completion_us.observe(static_cast<double>(r.transmission_us));
  for (const StallEntry& s : r.stalls) {
    CauseCell& cell = by_cause[s.cause];  // reader bounds-checked cause < 7
    ++cell.stall_count;
    cell.stalled_us += s.duration_us;
    cell.stall_us.observe(static_cast<double>(s.duration_us));
  }
}

void ServiceWindow::merge(const ServiceWindow& other) {
  flows += other.flows;
  completed += other.completed;
  stalled_flows += other.stalled_flows;
  degraded_flows += other.degraded_flows;
  transmission_us += other.transmission_us;
  stalled_us += other.stalled_us;
  unique_bytes += other.unique_bytes;
  data_segments += other.data_segments;
  retrans_segments += other.retrans_segments;
  completion_us.merge(other.completion_us);
  for (std::size_t c = 0; c < by_cause.size(); ++c) {
    by_cause[c].merge(other.by_cause[c]);
  }
}

double ServiceWindow::stall_ratio() const {
  return ratio_of(stalled_us, transmission_us);
}

double ServiceWindow::cause_ratio(std::size_t cause) const {
  return ratio_of(by_cause[cause].stalled_us, transmission_us);
}

void FleetSnapshot::merge(const FleetSnapshot& other) {
  if (window_us != other.window_us || sketch_alpha != other.sketch_alpha) {
    throw std::invalid_argument(
        "FleetSnapshot::merge: mismatched window width or sketch accuracy");
  }
  records += other.records;
  shard_ids.insert(other.shard_ids.begin(), other.shard_ids.end());
  for (const auto& [w, services] : other.windows) {
    auto& mine = windows[w];
    for (const auto& [svc, sw] : services) {
      auto [it, fresh] = mine.try_emplace(svc, sketch_alpha);
      if (fresh) {
        it->second = sw;
      } else {
        it->second.merge(sw);
      }
    }
  }
}

WindowAggregator::WindowAggregator(FleetConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  snap_.window_us = cfg_.window.us();
  snap_.sketch_alpha = cfg_.sketch_alpha;
}

void WindowAggregator::ingest(const FlowRecord& r) {
  const std::int64_t w = floor_div(r.start_us, snap_.window_us);
  auto [it, fresh] =
      snap_.windows[w].try_emplace(r.service, cfg_.sketch_alpha);
  (void)fresh;
  it->second.add(r);
  ++snap_.records;
  snap_.shard_ids.insert(r.shard_id);
}

void WindowAggregator::ingest(std::span<const FlowRecord> records) {
  for (const FlowRecord& r : records) ingest(r);
}

void WindowAggregator::merge(const FleetSnapshot& other) {
  snap_.merge(other);
}

// ------------------------------------------------------- FleetAggregator

FleetAggregator::FleetAggregator(FleetConfig cfg)
    : cfg_(cfg), agg_(cfg) {}  // WindowAggregator's ctor validates

void FleetAggregator::ingest(const FlowRecord& r) {
  util::MutexLock lock(mu_);
  agg_.ingest(r);
}

void FleetAggregator::ingest(std::span<const FlowRecord> records) {
  util::MutexLock lock(mu_);
  agg_.ingest(records);
}

void FleetAggregator::merge(const FleetSnapshot& other) {
  util::MutexLock lock(mu_);
  agg_.merge(other);
}

FleetSnapshot FleetAggregator::snapshot() const {
  util::MutexLock lock(mu_);
  return agg_.snapshot();
}

std::uint64_t FleetAggregator::records() const {
  util::MutexLock lock(mu_);
  return agg_.snapshot().records;
}

// ------------------------------------------------------------ regressions

RegressionConfig& RegressionConfig::with_ewma_alpha(double a) {
  if (!(a > 0.0) || a > 1.0) {
    throw std::invalid_argument("RegressionConfig: ewma alpha must be (0,1]");
  }
  ewma_alpha = a;
  return *this;
}

RegressionConfig& RegressionConfig::with_rel_threshold(double t) {
  if (t < 0.0) {
    throw std::invalid_argument("RegressionConfig: rel threshold must be >= 0");
  }
  rel_threshold = t;
  return *this;
}

RegressionConfig& RegressionConfig::with_abs_floor(double f) {
  if (f < 0.0) {
    throw std::invalid_argument("RegressionConfig: abs floor must be >= 0");
  }
  abs_floor = f;
  return *this;
}

RegressionConfig& RegressionConfig::with_warmup(std::size_t w) {
  warmup_windows = w;
  return *this;
}

void RegressionConfig::validate() const {
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0 || rel_threshold < 0.0 ||
      abs_floor < 0.0) {
    throw std::invalid_argument("RegressionConfig: out-of-range field");
  }
}

std::vector<Regression> detect_regressions(const FleetSnapshot& snap,
                                           const RegressionConfig& cfg) {
  cfg.validate();
  // Track one EWMA per {service, cause}. Windows are visited in ascending
  // map order, so the baseline evolution is the same no matter how the
  // snapshot was merged together.
  struct Track {
    double ewma = 0.0;
    std::size_t seen = 0;
  };
  std::map<std::pair<std::uint8_t, std::uint8_t>, Track> tracks;
  std::vector<Regression> out;
  for (const auto& [w, services] : snap.windows) {
    for (const auto& [svc, sw] : services) {
      for (std::size_t c = 0; c < sw.by_cause.size(); ++c) {
        const double ratio = sw.cause_ratio(c);
        Track& t = tracks[{svc, static_cast<std::uint8_t>(c)}];
        if (t.seen >= cfg.warmup_windows) {
          const double dev = ratio - t.ewma;
          const double bound =
              std::max(cfg.abs_floor, cfg.rel_threshold * t.ewma);
          if (dev > bound || -dev > bound) {
            out.push_back({w, svc, static_cast<std::uint8_t>(c), ratio,
                           t.ewma, dev < 0.0});
          }
        }
        t.ewma = t.seen == 0
                     ? ratio
                     : cfg.ewma_alpha * ratio + (1.0 - cfg.ewma_alpha) * t.ewma;
        ++t.seen;
      }
    }
  }
  // Map iteration is already (window, service, cause)-ordered; keep it.
  return out;
}

// ----------------------------------------------------------------- report

std::string render_fleet_report(const FleetSnapshot& snap,
                                const RegressionConfig& reg,
                                std::size_t recent_windows) {
  std::string out;
  const auto line = [&out](const std::string& s) {
    out += s;
    out += '\n';
  };

  line("=== TAPO fleet report ===");
  line(str_format(
      "records %llu | shards %zu | windows %zu x %llds | sketch alpha %.3f",
      static_cast<unsigned long long>(snap.records), snap.shard_ids.size(),
      snap.windows.size(), static_cast<long long>(snap.window_us / 1'000'000),
      snap.sketch_alpha));
  if (snap.records == 0) {
    line("(no records)");
    return out;
  }

  // Fleet-wide per-service totals: fold every window into one aggregate.
  std::map<std::uint8_t, ServiceWindow> totals;
  for (const auto& [w, services] : snap.windows) {
    (void)w;
    for (const auto& [svc, sw] : services) {
      auto [it, fresh] = totals.try_emplace(svc, snap.sketch_alpha);
      if (fresh) {
        it->second = sw;
      } else {
        it->second.merge(sw);
      }
    }
  }

  line("");
  line(str_format("%-19s %8s %7s %7s %8s %10s %10s", "service", "flows",
                  "compl%", "stall%", "retrans%", "p50-compl", "p99-compl"));
  for (const auto& [svc, t] : totals) {
    const double complp =
        t.flows ? 100.0 * static_cast<double>(t.completed) /
                      static_cast<double>(t.flows)
                : 0.0;
    const double retransp =
        t.data_segments ? 100.0 * static_cast<double>(t.retrans_segments) /
                              static_cast<double>(t.data_segments)
                        : 0.0;
    line(str_format("%-19s %8llu %7.1f %7.2f %8.2f %9.3fs %9.3fs",
                    service_name(svc).c_str(),
                    static_cast<unsigned long long>(t.flows), complp,
                    100.0 * t.stall_ratio(), retransp,
                    t.completion_us.quantile(0.5) / 1e6,
                    t.completion_us.quantile(0.99) / 1e6));
  }

  line("");
  line(str_format("%-19s %-19s %8s %9s %7s %9s %9s", "service", "cause",
                  "stalls", "time(s)", "time%", "p50(ms)", "p99(ms)"));
  for (const auto& [svc, t] : totals) {
    for (std::size_t c = 0; c < t.by_cause.size(); ++c) {
      const CauseCell& cell = t.by_cause[c];
      if (cell.stall_count == 0) continue;
      line(str_format(
          "%-19s %-19s %8llu %9.2f %7.2f %9.1f %9.1f",
          service_name(svc).c_str(),
          analysis::to_string(static_cast<analysis::StallCause>(c)),
          static_cast<unsigned long long>(cell.stall_count),
          static_cast<double>(cell.stalled_us) / 1e6,
          100.0 * t.cause_ratio(c), cell.stall_us.quantile(0.5) / 1e3,
          cell.stall_us.quantile(0.99) / 1e3));
    }
  }

  // Recent-window timeline: per-service stall ratio over the last K
  // windows, newest last.
  const std::set<std::uint8_t> all_services = [&] {
    std::set<std::uint8_t> s;
    for (const auto& [svc, t] : totals) {
      (void)t;
      s.insert(svc);
    }
    return s;
  }();
  line("");
  std::string head = str_format("%-14s", "window");
  for (const std::uint8_t svc : all_services) {
    head += str_format(" %18s", service_name(svc).c_str());
  }
  line(head + "  (stall%)");
  std::vector<std::int64_t> windexes;
  windexes.reserve(snap.windows.size());
  for (const auto& [w, services] : snap.windows) {
    (void)services;
    windexes.push_back(w);
  }
  const std::size_t first =
      windexes.size() > recent_windows ? windexes.size() - recent_windows : 0;
  for (std::size_t i = first; i < windexes.size(); ++i) {
    const std::int64_t w = windexes[i];
    const auto& services = snap.windows.at(w);
    std::string row =
        str_format("t=%-12lld", static_cast<long long>(
                                    w * (snap.window_us / 1'000'000)));
    for (const std::uint8_t svc : all_services) {
      const auto it = services.find(svc);
      if (it == services.end()) {
        row += str_format(" %18s", "-");
      } else {
        row += str_format(" %18.2f", 100.0 * it->second.stall_ratio());
      }
    }
    line(row);
  }

  line("");
  const auto regressions = detect_regressions(snap, reg);
  if (regressions.empty()) {
    line("regression watch: clean (no window broke from its EWMA baseline)");
  } else {
    line(str_format("regression watch: %zu flagged window(s)",
                    regressions.size()));
    for (const Regression& r : regressions) {
      line(str_format(
          "  [t=%lld] %s / %s: ratio %.2f%% vs baseline %.2f%% -> %s",
          static_cast<long long>(r.window_index *
                                 (snap.window_us / 1'000'000)),
          service_name(r.service).c_str(),
          analysis::to_string(static_cast<analysis::StallCause>(r.cause)),
          100.0 * r.ratio, 100.0 * r.baseline,
          r.improved ? "IMPROVED" : "REGRESSED"));
    }
  }
  return out;
}

// ----------------------------------------------------------- prometheus

void publish_fleet_metrics(const FleetSnapshot& snap,
                           const RegressionConfig& reg) {
  auto& registry = telemetry::Registry::instance();

  std::map<std::uint8_t, ServiceWindow> totals;
  for (const auto& [w, services] : snap.windows) {
    (void)w;
    for (const auto& [svc, sw] : services) {
      auto [it, fresh] = totals.try_emplace(svc, snap.sketch_alpha);
      if (fresh) {
        it->second = sw;
      } else {
        it->second.merge(sw);
      }
    }
  }

  registry.counter("fleet_records_ingested_total")
      .add(snap.records);
  registry.gauge("fleet_windows")
      .set(static_cast<double>(snap.windows.size()));
  registry.gauge("fleet_shards")
      .set(static_cast<double>(snap.shard_ids.size()));

  for (const auto& [svc, t] : totals) {
    const std::string svc_name = service_name(svc);
    registry.counter("fleet_flows_total", {{"service", svc_name}})
        .add(t.flows);
    registry.gauge("fleet_stall_ratio", {{"service", svc_name}})
        .set(t.stall_ratio());
    for (const char* q : {"0.5", "0.99"}) {
      registry
          .gauge("fleet_completion_us",
                 {{"service", svc_name}, {"quantile", q}})
          .set(t.completion_us.quantile(q[2] == '5' ? 0.5 : 0.99));
    }
    for (std::size_t c = 0; c < t.by_cause.size(); ++c) {
      const CauseCell& cell = t.by_cause[c];
      if (cell.stall_count == 0) continue;
      const std::string cause =
          analysis::to_string(static_cast<analysis::StallCause>(c));
      registry
          .counter("fleet_stalls_total",
                   {{"service", svc_name}, {"cause", cause}})
          .add(cell.stall_count);
      registry
          .counter("fleet_stalled_us_total",
                   {{"service", svc_name}, {"cause", cause}})
          .add(static_cast<std::uint64_t>(cell.stalled_us));
      registry
          .gauge("fleet_stall_us", {{"service", svc_name},
                                    {"cause", cause},
                                    {"quantile", "0.5"}})
          .set(cell.stall_us.quantile(0.5));
      registry
          .gauge("fleet_stall_us", {{"service", svc_name},
                                    {"cause", cause},
                                    {"quantile", "0.99"}})
          .set(cell.stall_us.quantile(0.99));
    }
  }
  registry.gauge("fleet_regressions")
      .set(static_cast<double>(detect_regressions(snap, reg).size()));
}

}  // namespace tapo::fleet
