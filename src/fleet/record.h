// Compact binary flow-record format: the fleet aggregation tier's wire
// representation of one diagnosed flow (DESIGN.md §13 has the full spec).
//
// A record file is
//
//   file   := header frame*
//   header := magic "TFLR" (4 bytes) | version u16 LE | flags u16 LE
//   frame  := payload_len varint | payload | crc32(payload) u32 LE
//
// and each payload is a fixed field sequence encoded with LEB128 varints
// (zigzag for signed fields, raw little-endian 64-bit for double bit
// patterns), so a typical record is a few dozen bytes. Versioning and
// robustness rules:
//
//  - The header version must match kRecordVersion exactly; readers reject
//    unknown versions with a typed error rather than guessing.
//  - Within a frame, *trailing* payload bytes beyond the known fields are
//    ignored (a newer writer may append fields; the CRC still covers
//    them), but a payload that ends mid-field is malformed.
//  - Every frame is CRC-framed. Readers must tolerate arbitrary
//    truncation and corruption: they return the longest valid prefix of
//    records plus a typed RecordError carrying the byte offset of the
//    failure — error, never crash, never undefined behaviour (property-
//    tested under ASan/UBSan in tests/fleet_record_test.cc).
//
// This is the one sanctioned serializer for fleet data: the raw-struct-io
// lint rule keeps fwrite/memcpy-of-struct images out of the rest of the
// tree so no unversioned struct image ever hits a file.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace tapo::fleet {

inline constexpr std::array<std::uint8_t, 4> kRecordMagic = {'T', 'F', 'L',
                                                             'R'};
inline constexpr std::uint16_t kRecordVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 8;
/// Upper bound on one record's payload; larger length prefixes are
/// rejected up front so a corrupt length cannot drive a huge allocation.
inline constexpr std::size_t kMaxRecordPayload = 1u << 20;

/// One stall inside a flow, reduced to what fleet aggregation needs.
/// `cause` indexes analysis::StallCause, `retrans_cause` indexes
/// analysis::RetransCause (7 = kNone); readers bounds-check both.
struct StallEntry {
  std::uint8_t cause = 6;          // StallCause::kUndetermined
  std::uint8_t retrans_cause = 7;  // RetransCause::kNone
  std::int64_t duration_us = 0;

  bool operator==(const StallEntry&) const = default;
};

/// The per-flow state a server shard ships to the aggregation point:
/// everything the rolling-window monitor needs, nothing per-packet.
struct FlowRecord {
  std::uint32_t shard_id = 0;
  std::uint8_t service = 0;  // workload::Service index (fleet::service_name)
  std::uint64_t flow_index = 0;
  /// Logical capture timestamp of the flow's start (stamped by the
  /// RecordSink); the window aggregator buckets on this.
  std::int64_t start_us = 0;
  std::int64_t transmission_us = 0;
  std::int64_t stalled_us = 0;
  bool completed = false;
  std::uint64_t response_bytes = 0;
  std::uint64_t unique_bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t data_segments = 0;
  std::uint64_t retrans_segments = 0;
  std::uint64_t timeout_retrans = 0;
  std::uint64_t fast_retrans = 0;
  std::uint64_t spurious_retrans = 0;
  std::uint32_t init_rwnd_bytes = 0;
  bool had_zero_rwnd = false;
  /// Capture-quality summary (analysis::CaptureQuality::degraded()).
  bool degraded = false;
  std::uint64_t suspect_stalls = 0;
  double avg_rtt_us = 0.0;
  double avg_rto_us = 0.0;
  std::vector<StallEntry> stalls;

  bool operator==(const FlowRecord&) const = default;
};

/// CRC-32 (IEEE 802.3, reflected). Exposed so tests can frame records by
/// hand and corrupt them surgically.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Appends the 8-byte file header to `out`.
void append_file_header(std::vector<std::uint8_t>& out);

/// Appends one CRC-framed record to `out`.
void append_record(std::vector<std::uint8_t>& out, const FlowRecord& r);

/// Streaming writer: emits the file header lazily before the first record
/// so an empty writer leaves an empty stream.
class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& os) : os_(os) {}

  void write(const FlowRecord& r);
  void flush() { os_.flush(); }

  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::ostream& os_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool header_done_ = false;
  std::vector<std::uint8_t> scratch_;
};

enum class RecordErrorKind : std::uint8_t {
  kTruncatedHeader,   // file shorter than the 8-byte header
  kBadMagic,          // header magic is not "TFLR"
  kBadVersion,        // header version != kRecordVersion
  kTruncatedFrame,    // frame length/payload/CRC runs past end of data
  kOversizedRecord,   // length prefix exceeds kMaxRecordPayload
  kCrcMismatch,       // stored CRC does not match the payload
  kMalformedPayload,  // CRC-valid payload that ends mid-field or holds an
                      // out-of-range enum/bool value
  kIoError,           // file could not be opened/read
};
const char* to_string(RecordErrorKind k);

/// A typed read failure: what went wrong and the byte offset (of the
/// offending frame's first byte, or of the header) where it went wrong.
struct RecordError {
  RecordErrorKind kind = RecordErrorKind::kIoError;
  std::uint64_t offset = 0;
  std::string detail;
};

/// Longest-valid-prefix read result. `records` holds every frame that
/// decoded and CRC-checked cleanly before the first failure; `error` is
/// set when the data did not end exactly on a frame boundary.
struct ReadResult {
  std::vector<FlowRecord> records;
  std::optional<RecordError> error;
  std::uint64_t bytes_consumed = 0;

  bool ok() const { return !error.has_value(); }
};

ReadResult read_records(std::span<const std::uint8_t> data);
ReadResult read_record_file(const std::string& path);

/// Result of listing a record directory: the `.tflr` paths, or why the
/// listing failed. Failure yields no files at all — a partial list would
/// silently merge a partial fleet.
struct ListResult {
  std::vector<std::string> files;
  std::string error;  // empty on success

  bool ok() const { return error.empty(); }
};

/// Deterministic ingest listing: every regular `.tflr` file directly under
/// `dir`, sorted by path. Directory iteration order is filesystem-
/// dependent, so the sort is what makes a merge over the same file set
/// byte-identical across hosts and runs. Errors — including errors raised
/// *mid-iteration*, which the throwing directory_iterator surface hides
/// behind an exception — come back in ListResult::error.
ListResult collect_record_files(const std::string& dir);

}  // namespace tapo::fleet
