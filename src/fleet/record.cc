#include "fleet/record.h"

#include <algorithm>
#include <bit>
#include <filesystem>
#include <fstream>

namespace tapo::fleet {

namespace {

// ---------------------------------------------------------------- encode

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t v) {
  // C++20 guarantees arithmetic right shift on signed values.
  const std::uint64_t u = (static_cast<std::uint64_t>(v) << 1) ^
                          static_cast<std::uint64_t>(v >> 63);
  put_varint(out, u);
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_double(std::vector<std::uint8_t>& out, double d) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF));
  }
}

void put_bool(std::vector<std::uint8_t>& out, bool b) {
  out.push_back(b ? 1 : 0);
}

void encode_payload(std::vector<std::uint8_t>& out, const FlowRecord& r) {
  put_varint(out, r.shard_id);
  put_varint(out, r.service);
  put_varint(out, r.flow_index);
  put_zigzag(out, r.start_us);
  put_zigzag(out, r.transmission_us);
  put_zigzag(out, r.stalled_us);
  put_bool(out, r.completed);
  put_varint(out, r.response_bytes);
  put_varint(out, r.unique_bytes);
  put_varint(out, r.packets);
  put_varint(out, r.data_segments);
  put_varint(out, r.retrans_segments);
  put_varint(out, r.timeout_retrans);
  put_varint(out, r.fast_retrans);
  put_varint(out, r.spurious_retrans);
  put_varint(out, r.init_rwnd_bytes);
  put_bool(out, r.had_zero_rwnd);
  put_bool(out, r.degraded);
  put_varint(out, r.suspect_stalls);
  put_double(out, r.avg_rtt_us);
  put_double(out, r.avg_rto_us);
  put_varint(out, r.stalls.size());
  for (const StallEntry& s : r.stalls) {
    put_varint(out, s.cause);
    put_varint(out, s.retrans_cause);
    put_zigzag(out, s.duration_us);
  }
}

// ---------------------------------------------------------------- decode

/// Bounds-checked reader over one frame's payload. Every accessor sets
/// `failed` instead of reading past the end, so arbitrary corrupt input
/// can never index out of range.
struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;
  bool failed = false;
  const char* what = "";

  void fail(const char* msg) {
    failed = true;
    if (what[0] == '\0') what = msg;
  }

  std::uint64_t get_varint(const char* field) {
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos >= data.size()) {
        fail(field);
        return 0;
      }
      const std::uint8_t byte = data[pos++];
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        // Reject non-canonical 10th bytes that would overflow 64 bits.
        if (shift == 63 && byte > 1) {
          fail(field);
          return 0;
        }
        return v;
      }
    }
    fail(field);  // > 10 continuation bytes
    return 0;
  }

  std::int64_t get_zigzag(const char* field) {
    const std::uint64_t u = get_varint(field);
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  double get_double(const char* field) {
    if (data.size() - pos < 8) {
      pos = data.size();
      fail(field);
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    }
    return std::bit_cast<double>(bits);
  }

  bool get_bool(const char* field) {
    const std::uint64_t v = get_varint(field);
    if (v > 1) fail(field);
    return v == 1;
  }

  template <typename T>
  T get_bounded(const char* field, std::uint64_t max) {
    const std::uint64_t v = get_varint(field);
    if (v > max) fail(field);
    return static_cast<T>(v);
  }
};

bool decode_payload(std::span<const std::uint8_t> payload, FlowRecord& r,
                    const char** what) {
  Cursor c{payload};
  r.shard_id = c.get_bounded<std::uint32_t>("shard_id", 0xFFFFFFFFu);
  r.service = c.get_bounded<std::uint8_t>("service", 0xFFu);
  r.flow_index = c.get_varint("flow_index");
  r.start_us = c.get_zigzag("start_us");
  r.transmission_us = c.get_zigzag("transmission_us");
  r.stalled_us = c.get_zigzag("stalled_us");
  r.completed = c.get_bool("completed");
  r.response_bytes = c.get_varint("response_bytes");
  r.unique_bytes = c.get_varint("unique_bytes");
  r.packets = c.get_varint("packets");
  r.data_segments = c.get_varint("data_segments");
  r.retrans_segments = c.get_varint("retrans_segments");
  r.timeout_retrans = c.get_varint("timeout_retrans");
  r.fast_retrans = c.get_varint("fast_retrans");
  r.spurious_retrans = c.get_varint("spurious_retrans");
  r.init_rwnd_bytes = c.get_bounded<std::uint32_t>("init_rwnd", 0xFFFFFFFFu);
  r.had_zero_rwnd = c.get_bool("had_zero_rwnd");
  r.degraded = c.get_bool("degraded");
  r.suspect_stalls = c.get_varint("suspect_stalls");
  r.avg_rtt_us = c.get_double("avg_rtt_us");
  r.avg_rto_us = c.get_double("avg_rto_us");
  const std::uint64_t n_stalls = c.get_varint("stall_count");
  // Each stall costs at least 3 payload bytes; a count beyond that is a
  // corrupt length and must not drive a large reserve.
  if (!c.failed && n_stalls > (payload.size() - c.pos + 2) / 3) {
    c.fail("stall_count");
  }
  if (!c.failed) {
    r.stalls.reserve(static_cast<std::size_t>(n_stalls));
    for (std::uint64_t i = 0; i < n_stalls && !c.failed; ++i) {
      StallEntry s;
      // 7 top-level causes (0..6); retrans cause 7 is the kNone sentinel.
      s.cause = c.get_bounded<std::uint8_t>("stall.cause", 6);
      s.retrans_cause = c.get_bounded<std::uint8_t>("stall.retrans_cause", 7);
      s.duration_us = c.get_zigzag("stall.duration_us");
      r.stalls.push_back(s);
    }
  }
  // Trailing bytes are allowed (a newer writer may have appended fields);
  // running *out* of bytes mid-field is what Cursor::fail catches.
  *what = c.what;
  return !c.failed;
}

std::uint32_t read_u32le(std::span<const std::uint8_t> data, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

// ------------------------------------------------------------------ CRC

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------- writer

void append_file_header(std::vector<std::uint8_t>& out) {
  out.insert(out.end(), kRecordMagic.begin(), kRecordMagic.end());
  out.push_back(static_cast<std::uint8_t>(kRecordVersion & 0xFF));
  out.push_back(static_cast<std::uint8_t>(kRecordVersion >> 8));
  out.push_back(0);  // flags, reserved
  out.push_back(0);
}

void append_record(std::vector<std::uint8_t>& out, const FlowRecord& r) {
  std::vector<std::uint8_t> payload;
  payload.reserve(96);
  encode_payload(payload, r);
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32le(out, crc32(payload));
}

void RecordWriter::write(const FlowRecord& r) {
  scratch_.clear();
  if (!header_done_) {
    append_file_header(scratch_);
    header_done_ = true;
  }
  append_record(scratch_, r);
  os_.write(reinterpret_cast<const char*>(scratch_.data()),
            static_cast<std::streamsize>(scratch_.size()));
  bytes_ += scratch_.size();
  ++records_;
}

// ---------------------------------------------------------------- reader

const char* to_string(RecordErrorKind k) {
  switch (k) {
    case RecordErrorKind::kTruncatedHeader: return "truncated header";
    case RecordErrorKind::kBadMagic: return "bad magic";
    case RecordErrorKind::kBadVersion: return "unsupported version";
    case RecordErrorKind::kTruncatedFrame: return "truncated frame";
    case RecordErrorKind::kOversizedRecord: return "oversized record";
    case RecordErrorKind::kCrcMismatch: return "crc mismatch";
    case RecordErrorKind::kMalformedPayload: return "malformed payload";
    case RecordErrorKind::kIoError: return "io error";
  }
  return "?";
}

ReadResult read_records(std::span<const std::uint8_t> data) {
  ReadResult out;
  const auto fail = [&](RecordErrorKind kind, std::uint64_t offset,
                        std::string detail) {
    out.error = RecordError{kind, offset, std::move(detail)};
    return out;
  };

  if (data.empty()) return out;  // an empty file holds zero records
  if (data.size() < kFileHeaderBytes) {
    return fail(RecordErrorKind::kTruncatedHeader, 0,
                "file shorter than the 8-byte header");
  }
  for (std::size_t i = 0; i < kRecordMagic.size(); ++i) {
    if (data[i] != kRecordMagic[i]) {
      return fail(RecordErrorKind::kBadMagic, i, "magic is not TFLR");
    }
  }
  const std::uint16_t version = static_cast<std::uint16_t>(
      data[4] | (static_cast<std::uint16_t>(data[5]) << 8));
  if (version != kRecordVersion) {
    return fail(RecordErrorKind::kBadVersion, 4,
                "version " + std::to_string(version) + ", expected " +
                    std::to_string(kRecordVersion));
  }

  std::size_t pos = kFileHeaderBytes;
  while (pos < data.size()) {
    const std::size_t frame_start = pos;
    // Frame length varint (bounded to fit kMaxRecordPayload).
    std::uint64_t len = 0;
    bool len_done = false;
    for (unsigned shift = 0; shift < 64 && pos < data.size(); shift += 7) {
      const std::uint8_t byte = data[pos++];
      len |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        len_done = true;
        break;
      }
      if (len > kMaxRecordPayload) break;  // already too big; stop early
    }
    if (!len_done && pos >= data.size()) {
      out.bytes_consumed = frame_start;
      return fail(RecordErrorKind::kTruncatedFrame, frame_start,
                  "frame length cut off at end of data");
    }
    if (!len_done || len > kMaxRecordPayload) {
      out.bytes_consumed = frame_start;
      return fail(RecordErrorKind::kOversizedRecord, frame_start,
                  "payload length " + std::to_string(len) + " exceeds cap " +
                      std::to_string(kMaxRecordPayload));
    }
    if (data.size() - pos < len + 4) {
      out.bytes_consumed = frame_start;
      return fail(RecordErrorKind::kTruncatedFrame, frame_start,
                  "payload + CRC run past end of data");
    }
    const auto payload = data.subspan(pos, static_cast<std::size_t>(len));
    const std::uint32_t stored =
        read_u32le(data, pos + static_cast<std::size_t>(len));
    if (crc32(payload) != stored) {
      out.bytes_consumed = frame_start;
      return fail(RecordErrorKind::kCrcMismatch, frame_start,
                  "payload fails its CRC");
    }
    FlowRecord r;
    const char* what = "";
    if (!decode_payload(payload, r, &what)) {
      out.bytes_consumed = frame_start;
      return fail(RecordErrorKind::kMalformedPayload, frame_start,
                  std::string("field ") + what);
    }
    out.records.push_back(std::move(r));
    pos += static_cast<std::size_t>(len) + 4;
    out.bytes_consumed = pos;
  }
  out.bytes_consumed = data.size();
  return out;
}

ReadResult read_record_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    ReadResult out;
    out.error = RecordError{RecordErrorKind::kIoError, 0,
                            "cannot open " + path};
    return out;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(is),
                                  std::istreambuf_iterator<char>()};
  return read_records(bytes);
}

ListResult collect_record_files(const std::string& dir) {
  namespace fs = std::filesystem;
  ListResult out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    out.error = "cannot list " + dir + ": " + ec.message();
    return out;
  }
  for (const fs::directory_iterator end; it != end;) {
    const fs::directory_entry entry = *it;
    if (entry.path().extension() == ".tflr") {
      std::error_code type_ec;
      if (entry.is_regular_file(type_ec) && !type_ec) {
        out.files.push_back(entry.path().string());
      }
    }
    // The non-throwing increment: the range-for surface only reports
    // *construction* failures through its error_code and throws on any
    // failure mid-walk, which a CLI must not die on.
    it.increment(ec);
    if (ec) {
      out.error = "error while listing " + dir + ": " + ec.message();
      out.files.clear();
      return out;
    }
  }
  std::sort(out.files.begin(), out.files.end());
  return out;
}

}  // namespace tapo::fleet
