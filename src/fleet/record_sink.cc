#include "fleet/record_sink.h"

#include <stdexcept>

#include "telemetry/telemetry.h"

namespace tapo::fleet {

RecordSinkConfig& RecordSinkConfig::with_shard_id(std::uint32_t id) {
  shard_id = id;
  return *this;
}

RecordSinkConfig& RecordSinkConfig::with_service(std::uint8_t s) {
  service = s;
  return *this;
}

RecordSinkConfig& RecordSinkConfig::with_base_time_us(std::int64_t t) {
  base_time_us = t;
  return *this;
}

RecordSinkConfig& RecordSinkConfig::with_flow_spacing(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument(
        "RecordSinkConfig: flow spacing must be >= 0");
  }
  flow_spacing = d;
  return *this;
}

void RecordSinkConfig::validate() const {
  if (flow_spacing < Duration::zero()) {
    throw std::invalid_argument(
        "RecordSinkConfig: flow spacing must be >= 0");
  }
}

FlowRecord make_flow_record(const tapo::FlowResult& result,
                            const RecordSinkConfig& cfg) {
  FlowRecord r;
  r.shard_id = cfg.shard_id;
  r.service = cfg.service;
  r.flow_index = result.index;
  r.start_us = cfg.base_time_us +
               static_cast<std::int64_t>(result.index) * cfg.flow_spacing.us();
  r.completed = result.outcome.completed;
  r.response_bytes = result.outcome.response_bytes;
  r.packets = result.packets;
  r.init_rwnd_bytes = result.outcome.init_rwnd_bytes;
  if (!result.analyses.empty()) {
    const analysis::FlowAnalysis& fa = result.analyses.front();
    r.transmission_us = fa.transmission_time.us();
    r.stalled_us = fa.stalled_time.us();
    r.unique_bytes = fa.unique_bytes;
    r.data_segments = fa.data_segments;
    r.retrans_segments = fa.retrans_segments;
    r.timeout_retrans = fa.timeout_retrans;
    r.fast_retrans = fa.fast_retrans;
    r.spurious_retrans = fa.spurious_retrans;
    if (fa.init_rwnd_bytes != 0) r.init_rwnd_bytes = fa.init_rwnd_bytes;
    r.had_zero_rwnd = fa.had_zero_rwnd;
    r.degraded = fa.capture.degraded();
    r.suspect_stalls = fa.capture.suspect_stalls;
    r.avg_rtt_us = fa.avg_rtt_us;
    r.avg_rto_us = fa.avg_rto_us;
    r.stalls.reserve(fa.stalls.size());
    for (const analysis::StallRecord& s : fa.stalls) {
      StallEntry e;
      e.cause = static_cast<std::uint8_t>(s.cause);
      e.retrans_cause = static_cast<std::uint8_t>(s.retrans_cause);
      e.duration_us = s.duration.us();
      r.stalls.push_back(e);
    }
  }
  return r;
}

RecordSink::RecordSink(RecordWriter& writer, RecordSinkConfig cfg)
    : writer_(writer), cfg_(cfg) {
  cfg_.validate();
}

void RecordSink::consume(tapo::FlowResult&& result) {
  const std::uint64_t bytes_before = writer_.bytes();
  writer_.write(make_flow_record(result, cfg_));
  ++emitted_;
  if (telemetry::metrics_enabled()) {
    static auto& records_total = telemetry::Registry::instance().counter(
        "fleet_records_emitted_total");
    static auto& bytes_total = telemetry::Registry::instance().counter(
        "fleet_record_bytes_total");
    records_total.add(1);
    bytes_total.add(writer_.bytes() - bytes_before);
  }
}

void RecordSink::finish(const tapo::RunStats& stats) {
  (void)stats;
  writer_.flush();
}

}  // namespace tapo::fleet
