// Rolling time-window aggregation of fleet flow records, keyed by
// {service, stall cause}, with snapshot/merge so N shard snapshots
// collapse to one fleet view.
//
// Merge determinism contract (DESIGN.md §13): a FleetSnapshot is a pure
// function of the *set* of records it absorbed. All aggregate state is
// integer counters, integer microsecond sums, ordered maps, and integer-
// count quantile sketches, so merge() is exactly associative and
// commutative; the derived doubles (ratios, quantile estimates, EWMA
// baselines) are computed only at render/publish time from those
// integers, in a fixed iteration order. Consequence: merging the same
// shard record files in any order, with any intermediate grouping (1, 2,
// or 8 shards per partial), yields a byte-identical ASCII report and
// bit-identical Prometheus metric values — gated by bench/fleet_scale.cc
// and tests/fleet_window_test.cc.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "fleet/record.h"
#include "stats/sketch.h"
#include "tapo/analyzer.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace tapo::fleet {

/// Human-readable name for a FlowRecord::service index (matches the
/// workload::Service order; unknown indices render as "service-N").
std::string service_name(std::uint8_t s);

struct FleetConfig {
  /// Window width for the rolling aggregation (> 0).
  Duration window = Duration::seconds(60);
  /// Relative accuracy of the per-window quantile sketches.
  double sketch_alpha = stats::QuantileSketch::kDefaultAlpha;

  FleetConfig& with_window(Duration w);        // throws on w <= 0
  FleetConfig& with_sketch_alpha(double a);    // throws outside (0, 1)
  void validate() const;
};

/// Per-{window, service, cause} cell: stall count, stalled time, and the
/// distribution of individual stall durations.
struct CauseCell {
  std::uint64_t stall_count = 0;
  std::int64_t stalled_us = 0;
  stats::QuantileSketch stall_us;

  explicit CauseCell(double alpha) : stall_us(alpha) {}
  void merge(const CauseCell& other);
  bool operator==(const CauseCell&) const = default;
};

/// Per-{window, service} aggregate over the flows that *started* in the
/// window.
struct ServiceWindow {
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t stalled_flows = 0;
  std::uint64_t degraded_flows = 0;
  std::int64_t transmission_us = 0;
  std::int64_t stalled_us = 0;
  std::uint64_t unique_bytes = 0;
  std::uint64_t data_segments = 0;
  std::uint64_t retrans_segments = 0;
  stats::QuantileSketch completion_us;
  std::array<CauseCell, analysis::kNumStallCauses> by_cause;

  explicit ServiceWindow(double alpha);
  void add(const FlowRecord& r);
  void merge(const ServiceWindow& other);

  /// Stalled time / transmission time over the window (0 when idle).
  double stall_ratio() const;
  /// One cause's share of the window's transmission time.
  double cause_ratio(std::size_t cause) const;

  bool operator==(const ServiceWindow&) const = default;
};

/// Mergeable fleet view: windows[window_index][service]. Window index w
/// covers logical time [w * window_us, (w + 1) * window_us).
struct FleetSnapshot {
  std::int64_t window_us = Duration::seconds(60).us();
  double sketch_alpha = stats::QuantileSketch::kDefaultAlpha;
  std::uint64_t records = 0;
  /// Distinct shard ids observed (content-derived, so it is invariant to
  /// how the shards were grouped before merging).
  std::set<std::uint32_t> shard_ids;
  std::map<std::int64_t, std::map<std::uint8_t, ServiceWindow>> windows;

  /// Folds `other` in. Throws std::invalid_argument when the two
  /// snapshots were built with different window widths or sketch
  /// accuracies (merging those would silently misbucket).
  void merge(const FleetSnapshot& other);

  bool operator==(const FleetSnapshot&) const = default;
};

class WindowAggregator {
 public:
  /// Validates the config (std::invalid_argument on a bad one).
  explicit WindowAggregator(FleetConfig cfg = {});

  void ingest(const FlowRecord& r);
  void ingest(std::span<const FlowRecord> records);
  /// Folds a peer snapshot in (same width/accuracy contract as
  /// FleetSnapshot::merge; throws std::invalid_argument on mismatch).
  void merge(const FleetSnapshot& other);

  const FleetSnapshot& snapshot() const { return snap_; }
  const FleetConfig& config() const { return cfg_; }

 private:
  FleetConfig cfg_;
  FleetSnapshot snap_;
};

/// Thread-safe fleet merge point: N shard readers ingest records (or fold
/// whole shard snapshots in) concurrently while a publisher thread takes
/// snapshots, all serialized by one annotated util::Mutex capability.
/// WindowAggregator itself stays single-threaded — determinism is its
/// contract, locking is this facade's — and the merge-determinism
/// guarantee survives intact: the snapshot is a pure function of the set
/// of records absorbed, so any interleaving of ingest()/merge() calls
/// yields the same fleet view once all shards have been folded.
class FleetAggregator {
 public:
  /// Validates the config (std::invalid_argument on a bad one).
  explicit FleetAggregator(FleetConfig cfg = {});

  void ingest(const FlowRecord& r) TAPO_EXCLUDES(mu_);
  void ingest(std::span<const FlowRecord> records) TAPO_EXCLUDES(mu_);
  void merge(const FleetSnapshot& other) TAPO_EXCLUDES(mu_);

  /// Snapshot by value: the internal view keeps mutating under the lock,
  /// so unlike WindowAggregator a reference cannot be handed out.
  FleetSnapshot snapshot() const TAPO_EXCLUDES(mu_);
  std::uint64_t records() const TAPO_EXCLUDES(mu_);
  const FleetConfig& config() const { return cfg_; }  // immutable post-ctor

 private:
  FleetConfig cfg_;
  mutable util::Mutex mu_;
  WindowAggregator agg_ TAPO_GUARDED_BY(mu_);
};

// ------------------------------------------------------- regression watch

struct RegressionConfig {
  /// EWMA weight of the newest window's ratio.
  double ewma_alpha = 0.3;
  /// Flag when |ratio - baseline| > max(abs_floor, rel_threshold * baseline).
  double rel_threshold = 0.5;
  double abs_floor = 0.02;
  /// Windows observed (per service+cause) before flagging starts.
  std::size_t warmup_windows = 3;

  RegressionConfig& with_ewma_alpha(double a);      // (0, 1]
  RegressionConfig& with_rel_threshold(double t);   // >= 0
  RegressionConfig& with_abs_floor(double f);       // >= 0
  RegressionConfig& with_warmup(std::size_t w);
  void validate() const;
};

/// One flagged window: a per-cause stall ratio that broke away from its
/// EWMA baseline. `improved` answers the paper's Tables 8-9 question
/// ("mitigation deployed — did stalls drop?") in the negative-deviation
/// direction.
struct Regression {
  std::int64_t window_index = 0;
  std::uint8_t service = 0;
  std::uint8_t cause = 0;
  double ratio = 0.0;
  double baseline = 0.0;
  bool improved = false;
};

/// Scans windows in ascending time order per {service, cause} and flags
/// deviations from the EWMA baseline. Deterministic: output depends only
/// on the snapshot's content, sorted by (window, service, cause).
std::vector<Regression> detect_regressions(
    const FleetSnapshot& snap, const RegressionConfig& cfg = {});

// ----------------------------------------------------------- fleet report

/// Renders the ASCII fleet report (service totals, per-cause breakdown
/// with sketch quantiles, the last `recent_windows` window timeline, and
/// the regression watch). Byte-identical for any merge order/grouping of
/// the same records.
std::string render_fleet_report(const FleetSnapshot& snap,
                                const RegressionConfig& reg = {},
                                std::size_t recent_windows = 8);

/// Publishes the snapshot into the telemetry registry:
///   fleet_flows_total{service}            counter
///   fleet_records_ingested_total          counter
///   fleet_stalls_total{service,cause}     counter
///   fleet_stalled_us_total{service,cause} counter
///   fleet_stall_ratio{service}            gauge
///   fleet_completion_us{service,quantile} gauge (p50/p99)
///   fleet_stall_us{service,cause,quantile} gauge (p50/p99)
///   fleet_windows / fleet_shards / fleet_regressions gauges
/// Counters accumulate across calls: callers republishing the same fleet
/// view (tapo_agg, fleet_scale) must Registry::reset() first.
void publish_fleet_metrics(const FleetSnapshot& snap,
                           const RegressionConfig& reg = {});

}  // namespace tapo::fleet
