// RecordSink: the bridge from the per-flow analysis pipeline to the fleet
// aggregation tier. It implements the shared tapo::FlowSink surface, so
// the parallel experiment runner (or the live analyzer) can act as one
// "server shard": every FlowResult is reduced to a compact FlowRecord and
// streamed through a RecordWriter — bounded memory, no per-flow state
// retained.
//
// Logical time: simulated flows each start at t=0 in their own private
// simulator, so the sink stamps record start times as
// base_time_us + flow_index * flow_spacing, modelling a shard that admits
// flows at a steady rate. The stamp is a pure function of (config, flow
// index); combined with the runner's in-order delivery contract this
// makes a shard's record file byte-identical across runs and thread
// counts.
#pragma once

#include <cstdint>

#include "fleet/record.h"
#include "tapo/sink.h"
#include "util/time.h"

namespace tapo::fleet {

struct RecordSinkConfig {
  std::uint32_t shard_id = 0;
  /// workload::Service index (see fleet::service_name); plain integer so
  /// the fleet tier does not depend on the workload layer.
  std::uint8_t service = 0;
  /// Logical capture time of flow 0.
  std::int64_t base_time_us = 0;
  /// Logical inter-flow arrival spacing (>= 0).
  Duration flow_spacing = Duration::millis(500);

  // Fluent construction, mirroring ExperimentConfig::with_*.
  RecordSinkConfig& with_shard_id(std::uint32_t id);
  RecordSinkConfig& with_service(std::uint8_t s);
  RecordSinkConfig& with_base_time_us(std::int64_t t);
  RecordSinkConfig& with_flow_spacing(Duration d);  // throws on d < 0

  /// Throws std::invalid_argument on a negative flow spacing.
  void validate() const;
};

/// Pure reduction of one FlowResult to its fleet record (exposed for
/// tests). Uses the first analysis when present; a trace-less or
/// analysis-off result still yields a record with the simulation-level
/// facts filled in.
FlowRecord make_flow_record(const tapo::FlowResult& result,
                            const RecordSinkConfig& cfg);

class RecordSink : public tapo::FlowSink {
 public:
  /// Validates the config (std::invalid_argument on a bad one). The
  /// writer must outlive the sink; several sinks may share one writer to
  /// put multiple runs in one shard file.
  RecordSink(RecordWriter& writer, RecordSinkConfig cfg);

  void consume(tapo::FlowResult&& result) override;
  void finish(const tapo::RunStats& stats) override;

  std::uint64_t records() const { return emitted_; }

 private:
  RecordWriter& writer_;
  RecordSinkConfig cfg_;
  std::uint64_t emitted_ = 0;
};

}  // namespace tapo::fleet
