// Sharded parallel experiment runner with a streaming result-sink API.
//
// Why: the serial harness buffers every FlowOutcome/FlowAnalysis in RAM and
// uses one core, which caps sweeps far below the paper's 6.4M-flow scale.
// Each flow already lives in a private sim::Simulator, so the runner shards
// flows across a util::WorkerPool and streams results out as they complete.
//
// Determinism contract: the per-flow RNG is a pure function of
// (config.seed, flow_index) — seed i is the i-th split of a master
// xoshiro256** stream seeded with config.seed, precomputed in one O(flows)
// prologue. Workers claim indices dynamically, but every flow draws its
// scenario and link noise from its own precomputed stream, and completed
// flows are re-ordered through a small pending buffer so the sink observes
// strict flow-index order. Result: parallel output is bit-identical to the
// serial path for any thread count.
//
// Sink contract: FlowSink::consume is invoked exactly once per flow, in
// ascending index order, from one thread at a time (under the runner's
// merge lock) — sinks need no internal synchronization. The progress
// callback runs in the same critical section, so it shares the guarantee.
// Debug builds assert the mutual exclusion (run() keeps an entrant count
// around the merge section), and the TSan suite exercises a sink and a
// progress callback that mutate unsynchronized state from an 8-thread run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/cdf.h"
#include "tapo/report.h"
#include "tapo/sink.h"
#include "workload/experiment.h"

namespace tapo::workload {

// Re-exports: the result/sink surface lives in tapo/sink.h so the
// streaming LiveAnalyzer and the CSV writers share it (one delivery API
// for offline, parallel, and live analysis). Historical names preserved.
using FlowResult = tapo::FlowResult;
using RunStats = tapo::RunStats;
using FlowSink = tapo::FlowSink;

struct RunOptions {
  /// Worker threads: 1 = serial in the calling thread (no pool), 0 = all
  /// hardware threads. Clamped to the flow count.
  std::size_t threads = 1;
  /// Invoked after each flow is handed to the sink, with (done, total).
  /// Same serialization guarantee as the sink.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(ExperimentConfig config, RunOptions options = {});

  /// Runs all flows, streaming results into `sink` in flow-index order.
  /// Validates the config up front (std::invalid_argument on a bad one).
  RunStats run(FlowSink& sink);

 private:
  ExperimentConfig config_;
  RunOptions options_;
};

/// Derives the per-flow RNG seeds for (seed, flows): seeds[i] is the seed
/// of the i-th master split — the scheme both the serial and the sharded
/// path use. Exposed for tests and external shard schedulers.
std::vector<std::uint64_t> derive_flow_seeds(std::uint64_t seed,
                                             std::size_t flows);

/// Sink that rebuilds the buffering ExperimentResult (compatibility layer
/// used by run_experiment).
class CollectingSink : public FlowSink {
 public:
  void consume(FlowResult&& result) override;
  ExperimentResult take() { return std::move(result_); }

 private:
  ExperimentResult result_;
};

/// Bounded-memory aggregating sink: folds each flow into the paper's
/// stall/retransmission breakdown tables, the Fig.-3 stall-ratio CDF and
/// the Table-9 retransmission ratio without retaining any per-flow
/// analysis.
class BreakdownSink : public FlowSink {
 public:
  void consume(FlowResult&& result) override;

  const analysis::StallBreakdown& stalls() const { return stalls_; }
  const analysis::RetransBreakdown& retrans() const { return retrans_; }
  const stats::Cdf& stall_ratio_cdf() const { return stall_ratio_; }
  std::uint64_t flows() const { return flows_; }
  std::uint64_t total_packets() const { return total_packets_; }
  std::uint64_t data_segments_sent() const { return data_segments_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  double retrans_ratio() const {
    return data_segments_sent_ ? static_cast<double>(retransmissions_) /
                                     static_cast<double>(data_segments_sent_)
                               : 0.0;
  }

 private:
  analysis::StallBreakdown stalls_;
  analysis::RetransBreakdown retrans_;
  stats::Cdf stall_ratio_;
  std::uint64_t flows_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t data_segments_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace tapo::workload
