// Experiment harness: generate -> simulate -> capture -> analyze.
//
// Each flow runs in its own fresh simulator (flows are independent in the
// paper's per-connection analysis), so experiments are deterministic given
// a seed and embarrassingly simple to reason about. The same seed with a
// different recovery mechanism replays the *same* workload — the paper's
// production A/B methodology for Table 8/9 (§5.2).
//
// `run_experiment` here is the buffering compatibility layer: it collects
// every per-flow result into one ExperimentResult. Large sweeps should use
// the streaming `ParallelRunner` + `FlowSink` API in workload/runner.h,
// which shards flows across a worker pool and never needs to materialize
// all analyses at once.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/trace.h"
#include "sim/capture_channel.h"
#include "sim/chaos.h"
#include "tapo/analyzer.h"
#include "tapo/sink.h"
#include "tcp/connection.h"
#include "workload/profiles.h"

namespace tapo::workload {

/// Whether a flow's server-NIC packets are captured and returned in the
/// FlowOutcome. Capture is owned by the outcome (value semantics) — there
/// is no caller-managed trace buffer to keep alive.
enum class TraceCapture {
  kNone,       // simulate only; FlowOutcome::trace is empty
  kServerNic,  // keep the per-flow capture in FlowOutcome::trace
};

/// Watchdog default: generous enough that no legitimate flow (even a 600 s
/// zero-window crawl) comes near it, small enough that a runaway event loop
/// trips in well under a second of wall time.
inline constexpr std::size_t kDefaultEventBudget = 20'000'000;

/// Per-flow protective wrappers around the simulation: hostile-network
/// chaos injection, byte-stream delivery verification, and the runaway-
/// event watchdog. Default-constructed guards are inert — run_flow with
/// `FlowGuards{}` is bit-identical to the pre-guard code path.
struct FlowGuards {
  /// Hostile-network scenario layered on the flow's links (off when
  /// !chaos.enabled()). Seed it per flow (scenario_seed ^ flow_seed) so
  /// parallel runs stay bit-identical to serial.
  sim::ChaosConfig chaos;
  /// Shadow-reassemble the client-delivered byte stream and report a
  /// DeliverySummary in the outcome.
  bool verify_delivery = false;
  /// Per-flow simulator event budget; 0 = unlimited. Exhausting it marks
  /// the flow FlowStatus::kSimDiverged instead of hanging the worker.
  std::size_t event_budget = 0;
  /// Attribution id for invariant violations (runner: run << 32 | index).
  std::uint64_t flow_id = 0;
};

struct ExperimentConfig {
  ServiceProfile profile;
  std::size_t flows = 300;
  std::uint64_t seed = 1;
  /// Overrides the profile sender's recovery mechanism (Table 8/9 A/B).
  std::optional<tcp::RecoveryMechanism> recovery;
  std::optional<tcp::SrtoConfig> srto;
  /// Hard per-flow wall-clock cap in simulated time.
  Duration max_flow_time = Duration::seconds(600.0);
  bool analyze = true;
  analysis::AnalyzerConfig analyzer;
  /// Keep each flow's packet capture in its FlowOutcome (independent of
  /// `analyze`, which captures internally but discards after analysis).
  TraceCapture capture = TraceCapture::kNone;
  /// Capture-realism impairments (sim::CaptureChannel) applied to each
  /// flow's server-NIC trace before analysis and before it is stored in
  /// the outcome. Default-off: everything downstream sees the pristine
  /// tap, bit-identically. The per-flow channel seed is
  /// impairments.seed ^ the flow's derived seed, so parallel runs stay
  /// deterministic and bit-identical to serial.
  sim::CaptureImpairments impairments;
  /// Hostile-network chaos applied to every flow's links (sim::ChaosConfig;
  /// default-off = bit-identical passthrough). Reseeded per flow exactly
  /// like `impairments`.
  sim::ChaosConfig chaos;
  /// Shadow-verify each flow's delivered byte stream
  /// (FlowOutcome::delivery).
  bool verify_delivery = false;
  /// Per-flow simulator event watchdog; 0 disables.
  std::size_t event_budget = kDefaultEventBudget;

  // Fluent construction. Each setter validates eagerly where it can and
  // returns *this so configs read as one expression:
  //   ExperimentConfig{}.with_profile(web_search_profile()).with_flows(500)
  ExperimentConfig& with_profile(ServiceProfile p);
  ExperimentConfig& with_flows(std::size_t n);  // throws on n == 0
  ExperimentConfig& with_seed(std::uint64_t s);
  ExperimentConfig& with_recovery(tcp::RecoveryMechanism m);
  ExperimentConfig& with_srto(tcp::SrtoConfig s);
  ExperimentConfig& with_max_flow_time(Duration d);  // throws on d <= 0
  ExperimentConfig& with_analysis(bool on);
  ExperimentConfig& with_analyzer(analysis::AnalyzerConfig a);
  ExperimentConfig& with_capture(TraceCapture c);
  ExperimentConfig& with_impairments(const sim::CaptureImpairments& imp);
  ExperimentConfig& with_chaos(const sim::ChaosConfig& c);  // validates
  ExperimentConfig& with_delivery_check(bool on);
  ExperimentConfig& with_event_budget(std::size_t events);  // 0 = unlimited

  /// Full validation, run by every runner entry point before any flow is
  /// simulated. Throws std::invalid_argument with a self-explanatory
  /// message on flows == 0, an empty/default profile (no rwnd classes —
  /// the silent-empty-tables failure mode), or a non-positive flow cap.
  void validate() const;
};

/// Re-export: the outcome shape lives in tapo/sink.h so the streaming
/// LiveAnalyzer (below the workload layer) can deliver the same FlowResult.
using FlowOutcome = tapo::FlowOutcome;

struct ExperimentResult {
  std::vector<FlowOutcome> outcomes;
  /// One entry per flow when config.analyze is set.
  std::vector<analysis::FlowAnalysis> analyses;
  std::uint64_t total_packets = 0;  // captured at the server NIC

  std::uint64_t data_segments_sent = 0;
  std::uint64_t retransmissions = 0;
  /// Table 9: retransmitted / sent data segments.
  double retrans_ratio() const {
    return data_segments_sent
               ? static_cast<double>(retransmissions) /
                     static_cast<double>(data_segments_sent)
               : 0.0;
  }
};

/// Runs one flow scenario to completion (or the time cap) in a private
/// simulator. With TraceCapture::kServerNic the captured packets are
/// returned inside the outcome. `guards` layers chaos injection, delivery
/// verification, and the event watchdog on top; the default is inert.
FlowOutcome run_flow(const FlowScenario& scenario, Rng link_rng,
                     Duration max_flow_time,
                     TraceCapture capture = TraceCapture::kNone,
                     const FlowGuards& guards = {});

/// Compatibility entry point: runs the experiment (on `threads` workers;
/// 1 = serial, 0 = all hardware threads) and buffers everything into an
/// ExperimentResult. Output is bit-identical for any thread count — see
/// workload/runner.h for the seed-derivation scheme that guarantees it.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t threads = 1);

}  // namespace tapo::workload
