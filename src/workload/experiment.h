// Experiment harness: generate -> simulate -> capture -> analyze.
//
// Each flow runs in its own fresh simulator (flows are independent in the
// paper's per-connection analysis), so experiments are deterministic given
// a seed and embarrassingly simple to reason about. The same seed with a
// different recovery mechanism replays the *same* workload — the paper's
// production A/B methodology for Table 8/9 (§5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "tapo/analyzer.h"
#include "tcp/connection.h"
#include "workload/profiles.h"

namespace tapo::workload {

struct ExperimentConfig {
  ServiceProfile profile;
  std::size_t flows = 300;
  std::uint64_t seed = 1;
  /// Overrides the profile sender's recovery mechanism (Table 8/9 A/B).
  std::optional<tcp::RecoveryMechanism> recovery;
  std::optional<tcp::SrtoConfig> srto;
  /// Hard per-flow wall-clock cap in simulated time.
  Duration max_flow_time = Duration::seconds(600.0);
  bool analyze = true;
  analysis::AnalyzerConfig analyzer;
};

struct FlowOutcome {
  tcp::ConnectionMetrics metrics;
  tcp::SenderStats sender_stats;
  std::uint32_t init_rwnd_bytes = 0;
  std::uint64_t response_bytes = 0;
  bool completed = false;
};

struct ExperimentResult {
  std::vector<FlowOutcome> outcomes;
  /// One entry per flow when config.analyze is set.
  std::vector<analysis::FlowAnalysis> analyses;
  std::uint64_t total_packets = 0;  // captured at the server NIC

  std::uint64_t data_segments_sent = 0;
  std::uint64_t retransmissions = 0;
  /// Table 9: retransmitted / sent data segments.
  double retrans_ratio() const {
    return data_segments_sent
               ? static_cast<double>(retransmissions) /
                     static_cast<double>(data_segments_sent)
               : 0.0;
  }
};

/// Runs one flow scenario to completion (or the time cap) in a private
/// simulator; appends captured packets to `trace` when non-null.
FlowOutcome run_flow(const FlowScenario& scenario, Rng link_rng,
                     Duration max_flow_time, net::PacketTrace* trace);

ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace tapo::workload
