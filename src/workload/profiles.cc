#include "workload/profiles.h"

#include <algorithm>
#include <cmath>

namespace tapo::workload {

const char* to_string(Service s) {
  switch (s) {
    case Service::kCloudStorage: return "cloud storage";
    case Service::kSoftwareDownload: return "software download";
    case Service::kWebSearch: return "web search";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kMss = 1448;

tcp::SenderConfig default_sender() {
  tcp::SenderConfig s;
  s.mss = kMss;
  s.init_cwnd = 3;
  s.cc = tcp::CcAlgo::kCubic;  // kernel 2.6.32 default
  s.recovery = tcp::RecoveryMechanism::kNative;
  s.early_retransmit = false;  // not in the measured kernel (§2.1 footnote)
  return s;
}

double lognorm_mu_for_mean(double mean, double sigma) {
  return std::log(mean) - sigma * sigma / 2.0;
}

}  // namespace

ServiceProfile cloud_storage_profile() {
  ServiceProfile p;
  p.name = "cloud_storage";
  p.service = Service::kCloudStorage;

  // Connections are shared across file-chunk requests (§2.1): several
  // requests per connection, ~500 KB each, totalling ~1.7 MB (Table 1).
  p.min_requests = 1;
  p.max_requests = 6;
  p.resp_lognorm_sigma = 1.3;
  p.resp_lognorm_mu = lognorm_mu_for_mean(490e3, p.resp_lognorm_sigma);
  p.resp_min_bytes = 8 * 1024;
  p.resp_max_bytes = 24ull * 1024 * 1024;
  p.request_bytes = 350;

  // Client mixture: generous windows (Table 4 buckets 45/182/648/1297 MSS)
  // with a slow-reader sub-population that shrinks as buffers grow.
  p.rwnd_mix = {
      {0.24, 45 * kMss, false, 45 * kMss, 0, 0, {}},
      {0.06, 45 * kMss, false, 45 * kMss, 350'000, 96 * 1024,
       Duration::millis(1400)},
      {0.25, 182 * kMss, false, 182 * kMss, 0, 0, {}},
      {0.05, 182 * kMss, false, 182 * kMss, 450'000, 256 * 1024,
       Duration::millis(1400)},
      {0.22, 648 * kMss, false, 648 * kMss, 0, 0, {}},
      {0.03, 648 * kMss, false, 648 * kMss, 500'000, 384 * 1024,
       Duration::millis(1500)},
      {0.14, 1297 * kMss, false, 1297 * kMss, 0, 0, {}},
      {0.01, 1297 * kMss, false, 1297 * kMss, 600'000, 512 * 1024,
       Duration::millis(1500)},
  };
  p.client_idle_prob = 0.35;           // gaps between chunk requests
  p.client_idle_mean = Duration::millis(750);
  p.first_gap_prob = 0.02;
  p.first_gap_mean = Duration::millis(1000);

  p.backend_miss_prob = 0.40;          // client-specific content (§3.4)
  p.backend_delay_mean = Duration::millis(600);
  p.chunked_prob = 0.04;
  p.chunk_bytes = 48 * 1024;
  p.chunk_interval_mean = Duration::millis(500);

  p.path.rtt_lognorm_sigma = 1.1;
  p.path.rtt_lognorm_mu = lognorm_mu_for_mean(80.0, 1.1);
  p.path.loss_mean = 0.02;
  p.path.burst_prob = 0.30;
  p.path.deep_burst_frac = 0.20;
  p.path.ack_loss_frac = 0.3;
  p.slow_delack_prob = 0.03;
  p.sender = default_sender();
  p.sender.srto.t1 = 10;  // paper's cloud-storage setting (§5.1)
  return p;
}

ServiceProfile software_download_profile() {
  ServiceProfile p;
  p.name = "software_download";
  p.service = Service::kSoftwareDownload;

  // Dedicated connection per file, ~129 KB average (Table 1).
  p.min_requests = 1;
  p.max_requests = 1;
  p.resp_lognorm_sigma = 1.0;
  p.resp_lognorm_mu = lognorm_mu_for_mean(129e3, 1.0);
  p.resp_min_bytes = 4 * 1024;
  p.resp_max_bytes = 8ull * 1024 * 1024;
  p.request_bytes = 250;

  // Old client software with tiny fixed receive buffers (Fig. 6: 18% of
  // flows below 10 MSS, some at 2 MSS).
  p.rwnd_mix = {
      {0.055, 2 * kMss, false, 2 * kMss, 170'000, 32 * 1024,
       Duration::millis(800)},
      {0.045, 2 * kMss, false, 2 * kMss, 0, 0, {}},
      {0.050, 11 * kMss, false, 11 * kMss, 220'000, 64 * 1024,
       Duration::millis(800)},
      {0.040, 11 * kMss, false, 11 * kMss, 0, 0, {}},
      {0.090, 45 * kMss, false, 45 * kMss, 330'000, 192 * 1024,
       Duration::millis(800)},
      {0.200, 45 * kMss, false, 45 * kMss, 0, 0, {}},
      {0.015, 182 * kMss, false, 182 * kMss, 380'000, 768 * 1024,
       Duration::millis(800)},
      {0.185, 182 * kMss, false, 182 * kMss, 0, 0, {}},
      {0.320, 64 * 1024, true, 1024 * 1024, 0, 0, {}},
  };
  p.client_idle_prob = 0.0;

  p.backend_miss_prob = 0.15;          // static objects, partly cached
  p.backend_delay_mean = Duration::millis(700);
  p.chunked_prob = 0.12;               // synchronized release-day load
  p.chunk_bytes = 48 * 1024;
  p.chunk_interval_mean = Duration::millis(600);
  p.first_gap_prob = 0.03;
  p.first_gap_mean = Duration::millis(2000);

  p.path.rtt_lognorm_sigma = 1.1;
  p.path.rtt_lognorm_mu = lognorm_mu_for_mean(85.0, 1.1);
  p.path.loss_mean = 0.032;
  p.path.burst_prob = 0.30;
  p.path.deep_burst_frac = 0.18;
  p.path.ack_loss_frac = 0.45;
  p.slow_delack_prob = 0.08;
  p.sender = default_sender();
  p.sender.srto.t1 = 10;
  return p;
}

ServiceProfile web_search_profile() {
  ServiceProfile p;
  p.name = "web_search";
  p.service = Service::kWebSearch;

  // Short, latency-sensitive flows, ~14 KB average, some single-packet.
  p.min_requests = 1;
  p.max_requests = 1;
  p.resp_lognorm_sigma = 1.4;
  p.resp_lognorm_mu = lognorm_mu_for_mean(14e3, 1.4);
  p.resp_min_bytes = 350;
  p.resp_max_bytes = 200 * 1024;
  p.request_bytes = 420;

  p.rwnd_mix = {
      {0.92, 64 * 1024, true, 1024 * 1024, 0},
      {0.08, 16 * 1024, false, 16 * 1024, 0},
  };
  p.client_idle_prob = 0.0;

  p.backend_miss_prob = 0.35;          // dynamic results from back-ends
  p.backend_delay_mean = Duration::millis(75);
  p.first_gap_prob = 0.0;
  p.first_gap_mean = Duration::millis(800);
  p.chunked_prob = 0.01;
  p.chunk_bytes = 8 * 1024;
  p.chunk_interval_mean = Duration::millis(400);

  p.path.rtt_lognorm_sigma = 1.1;
  p.path.rtt_lognorm_mu = lognorm_mu_for_mean(65.0, 1.1);
  p.path.loss_mean = 0.045;
  p.path.clean_prob = 0.68;
  p.path.burst_prob = 0.22;
  p.path.deep_burst_frac = 0.40;
  p.path.ack_loss_frac = 0.12;
  p.sender = default_sender();
  p.sender.srto.t1 = 5;  // paper's web-search setting (§5.1)
  return p;
}

ServiceProfile profile_for(Service s) {
  switch (s) {
    case Service::kCloudStorage: return cloud_storage_profile();
    case Service::kSoftwareDownload: return software_download_profile();
    case Service::kWebSearch: return web_search_profile();
  }
  return web_search_profile();
}

FlowScenario draw_scenario(const ServiceProfile& profile, Rng& rng,
                           std::uint64_t flow_id) {
  FlowScenario sc;

  // Path characteristics.
  const double rtt_ms = std::clamp(
      rng.lognormal(profile.path.rtt_lognorm_mu, profile.path.rtt_lognorm_sigma),
      profile.path.rtt_min_ms, profile.path.rtt_max_ms);
  const Duration one_way = Duration::seconds(rtt_ms / 2000.0);
  const double loss =
      rng.chance(profile.path.clean_prob)
          ? rng.uniform(0.0, profile.path.clean_loss_max)
          : std::min(rng.exponential(profile.path.loss_mean),
                     profile.path.loss_cap);
  const bool heavy_jitter = rng.chance(profile.path.heavy_jitter_prob);
  const double jfrac =
      heavy_jitter ? profile.path.jitter_frac_heavy : profile.path.jitter_frac;
  const Duration jitter = Duration::seconds(rtt_ms / 1000.0 * jfrac);
  const bool bursty = rng.chance(profile.path.burst_prob);

  sc.down_link.prop_delay = one_way;
  sc.down_link.jitter_mean = jitter;
  if (rng.chance(profile.path.delay_burst_flow_prob)) {
    sc.down_link.delay_burst_prob = profile.path.delay_burst_prob;
    sc.down_link.delay_burst_duration = profile.path.delay_burst_duration;
    sc.down_link.delay_burst_extra = Duration::seconds(
        rtt_ms / 1000.0 * profile.path.delay_burst_extra_rtt);
  }
  sc.down_link.reorder_prob = profile.path.reorder_prob;
  sc.down_link.reorder_delay =
      Duration::seconds(rtt_ms / 1000.0 * profile.path.reorder_delay_frac);
  sc.down_link.random_loss = loss;
  sc.down_link.bandwidth_Bps = profile.path.bandwidth_Bps;
  sc.down_link.queue_packets = profile.path.queue_packets;
  if (rng.chance(profile.path.bottleneck_prob)) {
    sc.down_link.bandwidth_Bps = std::max<std::uint64_t>(
        profile.path.bottleneck_min_Bps,
        static_cast<std::uint64_t>(rng.lognormal(
            profile.path.bottleneck_lognorm_mu,
            profile.path.bottleneck_lognorm_sigma)));
    sc.down_link.queue_packets = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(profile.path.bottleneck_queue_min),
        static_cast<std::int64_t>(profile.path.bottleneck_queue_max)));
  }
  if (bursty) {
    const bool deep = rng.chance(profile.path.deep_burst_frac);
    sc.down_link.p_good_to_bad = profile.path.burst_p_good_to_bad;
    sc.down_link.burst_duration = deep ? profile.path.deep_burst_duration
                                       : profile.path.burst_duration;
    sc.down_link.bad_loss =
        deep ? profile.path.deep_bad_loss : profile.path.burst_bad_loss;
  }

  sc.up_link.prop_delay = one_way;
  sc.up_link.jitter_mean = jitter;
  sc.up_link.random_loss = loss * profile.path.ack_loss_frac;

  // Connection 4-tuple: unique client per flow, fixed server.
  auto& key = sc.connection.client_to_server;
  key.src_ip = 0x0a000000u | static_cast<std::uint32_t>(flow_id & 0xffffff);
  key.src_port = static_cast<std::uint16_t>(40000 + (flow_id % 20000));
  key.dst_ip = 0xc0a80101u;  // 192.168.1.1
  key.dst_port = 80;

  // Sender / receiver.
  sc.connection.sender = profile.sender;

  double total_w = 0;
  for (const auto& c : profile.rwnd_mix) total_w += c.weight;
  double pick = rng.next_double() * total_w;
  const RwndClass* cls = &profile.rwnd_mix.back();
  for (const auto& c : profile.rwnd_mix) {
    if (pick < c.weight) {
      cls = &c;
      break;
    }
    pick -= c.weight;
  }
  auto& rcv = sc.connection.receiver;
  rcv.mss = profile.sender.mss;
  rcv.init_rwnd_bytes = cls->init_rwnd_bytes;
  rcv.window_autotune = cls->autotune;
  rcv.max_rwnd_bytes = cls->max_rwnd_bytes;
  rcv.app_read_Bps = cls->app_read_Bps;
  rcv.pause_every_bytes = cls->pause_every_bytes;
  rcv.pause_duration = cls->pause_duration;
  // Delayed-ACK behaviour varies across client stacks; RFC 1122 allows up
  // to 500 ms and some embedded stacks use it (§4.3 "ACK delay or loss").
  const double delack_draw = rng.next_double();
  if (delack_draw < profile.slow_delack_prob) {
    rcv.delack_timeout = Duration::millis(450);
  } else if (delack_draw < profile.slow_delack_prob + 0.08) {
    rcv.delack_timeout = Duration::millis(200);
  } else {
    rcv.delack_timeout = Duration::millis(40);
  }

  // Requests.
  const int n_requests =
      static_cast<int>(rng.uniform_int(profile.min_requests, profile.max_requests));
  for (int i = 0; i < n_requests; ++i) {
    tcp::RequestSpec req;
    req.request_bytes = profile.request_bytes;
    req.response_bytes = static_cast<std::uint64_t>(std::clamp<double>(
        rng.lognormal(profile.resp_lognorm_mu, profile.resp_lognorm_sigma),
        static_cast<double>(profile.resp_min_bytes),
        static_cast<double>(profile.resp_max_bytes)));
    if (i > 0 && rng.chance(profile.client_idle_prob)) {
      req.client_gap = Duration::seconds(
          rng.exponential(profile.client_idle_mean.sec()));
    } else if (i == 0 && rng.chance(profile.first_gap_prob)) {
      req.client_gap =
          Duration::seconds(rng.exponential(profile.first_gap_mean.sec()));
    }
    if (rng.chance(profile.backend_miss_prob)) {
      req.server_think =
          Duration::seconds(rng.exponential(profile.backend_delay_mean.sec()));
    }
    if (rng.chance(profile.chunked_prob)) {
      req.chunk_bytes = profile.chunk_bytes;
      req.chunk_interval = Duration::seconds(
          rng.exponential(profile.chunk_interval_mean.sec()));
    }
    sc.connection.requests.push_back(req);
  }
  return sc;
}

}  // namespace tapo::workload
