#include "workload/experiment.h"

#include <stdexcept>

#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/runner.h"

namespace tapo::workload {

ExperimentConfig& ExperimentConfig::with_profile(ServiceProfile p) {
  profile = std::move(p);
  return *this;
}

ExperimentConfig& ExperimentConfig::with_flows(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "ExperimentConfig::with_flows: flows must be > 0 (a zero-flow "
        "experiment would silently produce empty tables)");
  }
  flows = n;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_recovery(tcp::RecoveryMechanism m) {
  recovery = m;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_srto(tcp::SrtoConfig s) {
  srto = s;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_max_flow_time(Duration d) {
  if (d <= Duration::zero()) {
    throw std::invalid_argument(
        "ExperimentConfig::with_max_flow_time: cap must be positive");
  }
  max_flow_time = d;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_analysis(bool on) {
  analyze = on;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_analyzer(analysis::AnalyzerConfig a) {
  analyzer = a;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_capture(TraceCapture c) {
  capture = c;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_impairments(
    const sim::CaptureImpairments& imp) {
  imp.validate();
  impairments = imp;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_chaos(const sim::ChaosConfig& c) {
  c.validate();
  chaos = c;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_delivery_check(bool on) {
  verify_delivery = on;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_event_budget(std::size_t events) {
  event_budget = events;
  return *this;
}

void ExperimentConfig::validate() const {
  if (flows == 0) {
    throw std::invalid_argument(
        "ExperimentConfig: flows must be > 0 (a zero-flow experiment would "
        "silently produce empty tables)");
  }
  if (profile.rwnd_mix.empty()) {
    throw std::invalid_argument(
        "ExperimentConfig: profile has no rwnd classes — it looks "
        "default-constructed; use profile_for()/cloud_storage_profile()/"
        "software_download_profile()/web_search_profile()");
  }
  if (max_flow_time <= Duration::zero()) {
    throw std::invalid_argument(
        "ExperimentConfig: max_flow_time must be positive");
  }
  impairments.validate();
  chaos.validate();
}

FlowOutcome run_flow(const FlowScenario& scenario, Rng link_rng,
                     Duration max_flow_time, TraceCapture capture,
                     const FlowGuards& guards) {
  FlowOutcome out;
  if (capture == TraceCapture::kServerNic) out.trace.emplace();

  sim::Simulator sim;
  sim::Link down(sim, scenario.down_link, link_rng.split());
  sim::Link up(sim, scenario.up_link, link_rng.split());
  tcp::Connection conn(sim, down, up, scenario.connection,
                       out.trace ? net::TraceBuilder(*out.trace)
                                 : net::TraceBuilder());

  // Attribute any invariant violations during this simulation to this flow.
  tcp::InvariantMonitor::FlowScope invariant_scope(guards.flow_id);

  // Shadow delivery tracker: wraps the down link's deliver handler so it
  // sees exactly the data segments the client endpoint sees.
  std::optional<tcp::DeliveryTracker> tracker;
  sim::Link::DeliverFn tracker_inner;
  if (guards.verify_delivery) {
    // Stream offset 0 is server_isn + 1 (the SYN consumes one sequence).
    tracker.emplace(net::advance(scenario.connection.server_isn, 1));
    tracker_inner = down.swap_deliver([&](const net::CapturedPacket& pkt) {
      if (pkt.payload_len > 0) tracker->on_data(pkt.tcp.seq, pkt.payload_len);
      tracker_inner(pkt);
    });
  }

  // Chaos wraps outermost (link -> chaos -> tracker -> connection): the
  // tracker verifies what survives the hostile network, and the endpoints
  // stay unaware of both observers.
  std::optional<sim::ChaosInjector> chaos;
  if (guards.chaos.enabled()) {
    chaos.emplace(sim, down, up, guards.chaos);
    chaos->attach([&conn] { return !conn.done(); });
  }

  conn.start();
  const TimePoint deadline = sim.now() + max_flow_time;
  const std::size_t budget =
      guards.event_budget == 0 ? SIZE_MAX : guards.event_budget;
  const std::size_t executed = sim.run_until(deadline, budget);
  const bool diverged = executed >= budget && sim.next_event_time() &&
                        *sim.next_event_time() <= deadline;

  out.metrics = conn.metrics();
  out.sender_stats = conn.sender().stats();
  out.init_rwnd_bytes = conn.init_rwnd_bytes();
  for (const auto& r : scenario.connection.requests) {
    out.response_bytes += r.response_bytes;
  }
  out.completed = conn.metrics().completed;
  if (diverged) {
    out.status = FlowStatus::kSimDiverged;
    if (telemetry::metrics_enabled()) {
      static auto& trips = telemetry::Registry::instance().counter(
          "tapo_sim_watchdog_trips_total");
      trips.add(1);
    }
  } else if (out.completed) {
    out.status = FlowStatus::kCompleted;
  } else if (conn.sender().zero_window() || conn.sender().peer_rwnd() == 0) {
    out.status = FlowStatus::kRwndLimited;
  } else {
    out.status = FlowStatus::kTimeCapped;
  }
  if (tracker) out.delivery = tracker->finalize(out.response_bytes);
  if (chaos) out.chaos_injected = chaos->stats().total_injected();
  out.invariant_violations = invariant_scope.violations();
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t threads) {
  ParallelRunner runner(config, RunOptions{.threads = threads, .progress = {}});
  CollectingSink sink;
  runner.run(sink);
  return sink.take();
}

}  // namespace tapo::workload
