#include "workload/experiment.h"

#include "sim/simulator.h"

namespace tapo::workload {

FlowOutcome run_flow(const FlowScenario& scenario, Rng link_rng,
                     Duration max_flow_time, net::PacketTrace* trace) {
  sim::Simulator sim;
  sim::Link down(sim, scenario.down_link, link_rng.split());
  sim::Link up(sim, scenario.up_link, link_rng.split());
  tcp::Connection conn(sim, down, up, scenario.connection, trace);
  conn.start();
  sim.run_until(sim.now() + max_flow_time);

  FlowOutcome out;
  out.metrics = conn.metrics();
  out.sender_stats = conn.sender().stats();
  out.init_rwnd_bytes = conn.init_rwnd_bytes();
  for (const auto& r : scenario.connection.requests) {
    out.response_bytes += r.response_bytes;
  }
  out.completed = conn.metrics().completed;
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentResult result;
  result.outcomes.reserve(config.flows);

  Rng master(config.seed);
  analysis::Analyzer analyzer(config.analyzer);

  for (std::size_t i = 0; i < config.flows; ++i) {
    Rng flow_rng = master.split();
    FlowScenario scenario = draw_scenario(config.profile, flow_rng, i + 1);
    if (config.recovery) scenario.connection.sender.recovery = *config.recovery;
    if (config.srto) scenario.connection.sender.srto = *config.srto;

    net::PacketTrace trace;
    FlowOutcome outcome =
        run_flow(scenario, flow_rng.split(), config.max_flow_time,
                 config.analyze ? &trace : nullptr);
    result.total_packets += trace.size();
    result.data_segments_sent += outcome.sender_stats.segments_sent;
    result.retransmissions += outcome.sender_stats.retransmissions;

    if (config.analyze && !trace.empty()) {
      auto analyses = analyzer.analyze(trace);
      for (auto& fa : analyses.flows) {
        result.analyses.push_back(std::move(fa));
      }
    }
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace tapo::workload
