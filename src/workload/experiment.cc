#include "workload/experiment.h"

#include <stdexcept>

#include "sim/simulator.h"
#include "workload/runner.h"

namespace tapo::workload {

ExperimentConfig& ExperimentConfig::with_profile(ServiceProfile p) {
  profile = std::move(p);
  return *this;
}

ExperimentConfig& ExperimentConfig::with_flows(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "ExperimentConfig::with_flows: flows must be > 0 (a zero-flow "
        "experiment would silently produce empty tables)");
  }
  flows = n;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_recovery(tcp::RecoveryMechanism m) {
  recovery = m;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_srto(tcp::SrtoConfig s) {
  srto = s;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_max_flow_time(Duration d) {
  if (d <= Duration::zero()) {
    throw std::invalid_argument(
        "ExperimentConfig::with_max_flow_time: cap must be positive");
  }
  max_flow_time = d;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_analysis(bool on) {
  analyze = on;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_analyzer(analysis::AnalyzerConfig a) {
  analyzer = a;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_capture(TraceCapture c) {
  capture = c;
  return *this;
}

ExperimentConfig& ExperimentConfig::with_impairments(
    const sim::CaptureImpairments& imp) {
  imp.validate();
  impairments = imp;
  return *this;
}

void ExperimentConfig::validate() const {
  if (flows == 0) {
    throw std::invalid_argument(
        "ExperimentConfig: flows must be > 0 (a zero-flow experiment would "
        "silently produce empty tables)");
  }
  if (profile.rwnd_mix.empty()) {
    throw std::invalid_argument(
        "ExperimentConfig: profile has no rwnd classes — it looks "
        "default-constructed; use profile_for()/cloud_storage_profile()/"
        "software_download_profile()/web_search_profile()");
  }
  if (max_flow_time <= Duration::zero()) {
    throw std::invalid_argument(
        "ExperimentConfig: max_flow_time must be positive");
  }
  impairments.validate();
}

FlowOutcome run_flow(const FlowScenario& scenario, Rng link_rng,
                     Duration max_flow_time, TraceCapture capture) {
  FlowOutcome out;
  if (capture == TraceCapture::kServerNic) out.trace.emplace();

  sim::Simulator sim;
  sim::Link down(sim, scenario.down_link, link_rng.split());
  sim::Link up(sim, scenario.up_link, link_rng.split());
  tcp::Connection conn(sim, down, up, scenario.connection,
                       out.trace ? net::TraceBuilder(*out.trace)
                                 : net::TraceBuilder());
  conn.start();
  sim.run_until(sim.now() + max_flow_time);

  out.metrics = conn.metrics();
  out.sender_stats = conn.sender().stats();
  out.init_rwnd_bytes = conn.init_rwnd_bytes();
  for (const auto& r : scenario.connection.requests) {
    out.response_bytes += r.response_bytes;
  }
  out.completed = conn.metrics().completed;
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::size_t threads) {
  ParallelRunner runner(config, RunOptions{.threads = threads, .progress = {}});
  CollectingSink sink;
  runner.run(sink);
  return sink.take();
}

}  // namespace tapo::workload
