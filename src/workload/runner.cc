#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <map>

#include "telemetry/telemetry.h"
#include "util/mutex.h"
#include "util/worker_pool.h"

namespace tapo::workload {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Per-worker phase accumulators, padded so workers never share a line.
struct alignas(64) PhaseAccum {
  double generate = 0.0;
  double simulate = 0.0;
  double analyze = 0.0;
};

}  // namespace

std::vector<std::uint64_t> derive_flow_seeds(std::uint64_t seed,
                                             std::size_t flows) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(flows);
  Rng master(seed);
  for (std::size_t i = 0; i < flows; ++i) seeds.push_back(master.split_seed());
  return seeds;
}

ParallelRunner::ParallelRunner(ExperimentConfig config, RunOptions options)
    : config_(std::move(config)), options_(std::move(options)) {}

RunStats ParallelRunner::run(FlowSink& sink) {
  config_.validate();
  const std::size_t flows = config_.flows;
  std::size_t threads = options_.threads == 0
                            ? util::WorkerPool::hardware_threads()
                            : options_.threads;
  if (threads > flows) threads = flows;
  if (threads == 0) threads = 1;

  const std::vector<std::uint64_t> seeds = derive_flow_seeds(config_.seed, flows);
  const analysis::Analyzer analyzer(config_.analyzer);
  const bool keep_trace = config_.capture == TraceCapture::kServerNic;
  const bool need_capture = config_.analyze || keep_trace;

  std::vector<PhaseAccum> phase(threads);

  // Ordered merge: completed flows park here until every lower index has
  // been handed to the sink. Workers also gate on the emission window
  // before simulating, so one slow flow cannot make the buffer (and the
  // parked traces/analyses) grow without bound. merge_mu is the capability
  // guarding pending/next_to_emit and serializing the sink (locals cannot
  // carry TAPO_GUARDED_BY, so the guarded set is documented here; the
  // annotated util::MutexLock still makes every acquisition visible to
  // -Wthread-safety).
  util::Mutex merge_mu;
  util::CondVar window_cv;
  std::map<std::size_t, FlowResult> pending;
  std::size_t next_to_emit = 0;
  const std::size_t window = 8 * threads;
  // Guards the sink/progress serialization contract (runner.h): consume()
  // and progress() run strictly one-at-a-time under merge_mu. The assert
  // makes a future locking regression fail loudly in debug/TSan builds.
  std::atomic<int> merge_entrants{0};

  // One run = one Chrome-trace process; flows become its threads.
  std::uint64_t run_id = 0;
  if (telemetry::tracing_enabled()) {
    run_id = telemetry::Tracer::instance().begin_run(config_.profile.name);
    TAPO_TRACE(telemetry::EventKind::kRunBegin, 0, run_id, flows);
  }

  auto task = [&](std::size_t i, std::size_t worker) {
    const telemetry::FlowScope flow_scope((run_id << 32) | i);
    if (threads > 1) {
      util::MutexLock lock(merge_mu);
      // Never blocks the worker holding the lowest outstanding index, so
      // the window always drains.
      while (i >= next_to_emit + window) window_cv.wait(merge_mu);
    }

    PhaseAccum& acc = phase[worker];
    const auto t0 = Clock::now();
    Rng flow_rng(seeds[i]);
    FlowScenario scenario = draw_scenario(config_.profile, flow_rng, i + 1);
    if (config_.recovery) scenario.connection.sender.recovery = *config_.recovery;
    if (config_.srto) scenario.connection.sender.srto = *config_.srto;
    const auto t1 = Clock::now();

    FlowGuards guards;
    guards.chaos = config_.chaos;
    // Per-flow reseed of a private copy, exactly like `impairments` below:
    // the validated base config stays untouched and any seed is legal.
    guards.chaos.seed ^= seeds[i];
    guards.verify_delivery = config_.verify_delivery;
    guards.event_budget = config_.event_budget;
    guards.flow_id = (run_id << 32) | i;
    FlowOutcome outcome = run_flow(
        scenario, flow_rng.split(), config_.max_flow_time,
        need_capture ? TraceCapture::kServerNic : TraceCapture::kNone, guards);
    if (config_.impairments.enabled() && outcome.trace) {
      // Degrade the pristine tap before anything downstream sees it, with
      // a per-flow channel seed so parallel stays bit-identical to serial.
      sim::CaptureImpairments imp = config_.impairments;
      // Per-flow reseed of a private copy; the validated base config is
      // untouched and any seed is legal. tapo-lint: allow(config-mutation)
      imp.seed ^= seeds[i];
      outcome.trace = sim::apply_impairments(*outcome.trace, imp);
    }
    const auto t2 = Clock::now();

    FlowResult result;
    result.index = i;
    result.packets = outcome.trace ? outcome.trace->size() : 0;
    if (config_.analyze && outcome.trace && !outcome.trace->empty()) {
      result.analyses = analyzer.analyze(*outcome.trace).flows;
    }
    const auto t3 = Clock::now();
    if (!keep_trace) outcome.trace.reset();
    result.outcome = std::move(outcome);

    acc.generate += seconds_between(t0, t1);
    acc.simulate += seconds_between(t1, t2);
    acc.analyze += seconds_between(t2, t3);

    TAPO_TRACE(telemetry::EventKind::kFlowDone,
               static_cast<std::int64_t>(
                   (acc.generate + acc.simulate + acc.analyze) * 1e6),
               result.packets, result.analyses.size());

    util::MutexLock lock(merge_mu);
    const int entrants = merge_entrants.fetch_add(1, std::memory_order_acq_rel);
    assert(entrants == 0 && "FlowSink/progress serialization violated");
    (void)entrants;
    pending.emplace(i, std::move(result));
    bool advanced = false;
    while (!pending.empty() && pending.begin()->first == next_to_emit) {
      sink.consume(std::move(pending.begin()->second));
      pending.erase(pending.begin());
      ++next_to_emit;
      advanced = true;
      if (options_.progress) options_.progress(next_to_emit, flows);
    }
    merge_entrants.fetch_sub(1, std::memory_order_acq_rel);
    if (advanced && threads > 1) window_cv.notify_all();
  };

  const auto wall0 = Clock::now();
  double busy = 0.0;
  if (threads <= 1) {
    for (std::size_t i = 0; i < flows; ++i) task(i, 0);
  } else {
    util::WorkerPool pool(threads);
    pool.for_each(flows, task);
    for (const double b : pool.busy_seconds()) busy += b;
  }
  const double wall = seconds_between(wall0, Clock::now());

  RunStats stats;
  stats.flows = flows;
  stats.threads = threads;
  stats.wall_seconds = wall;
  for (const PhaseAccum& acc : phase) {
    stats.generate_seconds += acc.generate;
    stats.simulate_seconds += acc.simulate;
    stats.analyze_seconds += acc.analyze;
  }
  if (threads <= 1) {
    busy = stats.generate_seconds + stats.simulate_seconds + stats.analyze_seconds;
  }
  if (wall > 0.0) {
    stats.flows_per_second = static_cast<double>(flows) / wall;
    stats.worker_utilization =
        std::min(1.0, busy / (static_cast<double>(threads) * wall));
  }
  TAPO_TRACE(telemetry::EventKind::kRunEnd,
             static_cast<std::int64_t>(wall * 1e6), run_id, flows);
  if (telemetry::metrics_enabled()) {
    auto& registry = telemetry::Registry::instance();
    static auto& flows_total = registry.counter("tapo_runner_flows_total");
    flows_total.add(flows);
    registry.gauge("tapo_runner_last_wall_seconds").set(wall);
    registry.gauge("tapo_runner_last_flows_per_second")
        .set(stats.flows_per_second);
    registry.gauge("tapo_runner_last_worker_utilization")
        .set(stats.worker_utilization);
  }
  sink.finish(stats);
  return stats;
}

void CollectingSink::consume(FlowResult&& result) {
  result_.total_packets += result.packets;
  result_.data_segments_sent += result.outcome.sender_stats.segments_sent;
  result_.retransmissions += result.outcome.sender_stats.retransmissions;
  for (auto& fa : result.analyses) result_.analyses.push_back(std::move(fa));
  result_.outcomes.push_back(std::move(result.outcome));
}

void BreakdownSink::consume(FlowResult&& result) {
  ++flows_;
  total_packets_ += result.packets;
  data_segments_sent_ += result.outcome.sender_stats.segments_sent;
  retransmissions_ += result.outcome.sender_stats.retransmissions;
  for (const auto& fa : result.analyses) {
    stalls_.add(fa);
    retrans_.add(fa);
    if (fa.transmission_time > Duration::zero()) stall_ratio_.add(fa.stall_ratio);
  }
}

}  // namespace tapo::workload
