// Service workload profiles calibrated against the paper's dataset (§2,
// Table 1): cloud storage (large shared-connection transfers), software
// download (dedicated mid-size transfers, old clients with tiny fixed
// receive buffers), and web search (short, latency-sensitive flows with
// back-end-generated content).
//
// Each profile is a generative model: per-flow path characteristics (RTT,
// loss, jitter), connection structure (requests per connection, response
// sizes), client behaviour (initial rwnd mixture, reader speed, idle gaps)
// and server behaviour (back-end fetch delays, app chunking).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcp/connection.h"
#include "util/rng.h"
#include "util/time.h"

namespace tapo::workload {

enum class Service { kCloudStorage, kSoftwareDownload, kWebSearch };
const char* to_string(Service s);

/// One entry of the client receive-window mixture (Fig. 6): a class of
/// client software with a given initial window / buffer behaviour.
struct RwndClass {
  double weight = 1.0;
  std::uint32_t init_rwnd_bytes = 64 * 1024;
  bool autotune = true;
  std::uint32_t max_rwnd_bytes = 1024 * 1024;
  /// 0 = reads instantly; otherwise a (slow) reader draining at this rate.
  std::uint64_t app_read_Bps = 0;
  /// Reader pause model (see ReceiverConfig): 0 disables.
  std::uint64_t pause_every_bytes = 0;
  Duration pause_duration = Duration::millis(500);
};

struct PathProfile {
  /// Per-flow base RTT ~ LogNormal(mu, sigma) clamped to [min,max], in ms.
  double rtt_lognorm_mu = 0.0;
  double rtt_lognorm_sigma = 0.4;
  double rtt_min_ms = 5.0;
  double rtt_max_ms = 4000.0;
  /// Per-packet extra delay ~ Exp(jitter_frac * base_rtt).
  double jitter_frac = 0.07;
  /// Heavier jitter episodes: fraction of flows with jitter_frac_heavy.
  double heavy_jitter_prob = 0.18;
  double jitter_frac_heavy = 0.35;
  /// Correlated delay bursts: fraction of flows subject to them, the
  /// per-packet trigger, episode duration, and the extra delay as a
  /// multiple of the base RTT.
  double delay_burst_flow_prob = 0.6;
  double delay_burst_prob = 0.02;
  Duration delay_burst_duration = Duration::millis(400);
  double delay_burst_extra_rtt = 1.15;
  /// Per-packet probability of genuine reordering (overtaking).
  double reorder_prob = 0.002;
  double reorder_delay_frac = 0.25;  // of the base RTT
  /// Per-flow random loss: with probability clean_prob the flow is nearly
  /// clean (loss ~ U[0, clean_loss_max]); otherwise loss ~ Exp(mean) capped
  /// at cap. Real-world loss is heavily skewed: most flows see none, a
  /// minority sees a lot. The ACK path gets ack_loss_frac of the data loss.
  double clean_prob = 0.55;
  double clean_loss_max = 0.003;
  double loss_mean = 0.05;
  double loss_cap = 0.20;
  double ack_loss_frac = 0.35;
  /// Fraction of flows with additional time-based burst loss (outages).
  double burst_prob = 0.30;
  double burst_p_good_to_bad = 0.01;   // per-packet outage trigger
  Duration burst_duration = Duration::millis(160);
  double burst_bad_loss = 0.8;
  /// Among bursty flows, this fraction sees *deep* outages (middlebox
  /// buffer exhaustion, §4.3): long enough to swallow whole windows and
  /// drive continuous-loss stalls.
  double deep_burst_frac = 0.25;
  Duration deep_burst_duration = Duration::millis(420);
  double deep_bad_loss = 0.95;
  /// Bottleneck (0 = uncongested): a fraction of flows traverses a
  /// bandwidth-limited hop with a deep drop-tail queue. The queueing delay
  /// swings RTT samples by hundreds of ms (2014-era bufferbloat), which is
  /// what pushes the RTO an order of magnitude above the RTT (Fig. 1b).
  std::uint64_t bandwidth_Bps = 0;
  std::size_t queue_packets = 64;
  double bottleneck_prob = 0.30;
  double bottleneck_lognorm_mu = 13.1;     // ~ 490 KB/s median
  double bottleneck_lognorm_sigma = 0.7;
  std::uint64_t bottleneck_min_Bps = 120'000;
  std::size_t bottleneck_queue_min = 40;
  std::size_t bottleneck_queue_max = 120;
};

struct ServiceProfile {
  std::string name;
  Service service = Service::kWebSearch;

  // Connection structure.
  int min_requests = 1;
  int max_requests = 1;
  /// Response size ~ LogNormal(mu, sigma) clamped to [min,max] bytes.
  double resp_lognorm_mu = 9.0;
  double resp_lognorm_sigma = 1.0;
  std::uint64_t resp_min_bytes = 200;
  std::uint64_t resp_max_bytes = 64ull * 1024 * 1024;
  std::uint32_t request_bytes = 300;

  // Client behaviour.
  std::vector<RwndClass> rwnd_mix;
  /// Fraction of clients with an extreme (RFC-1122-scale, ~450 ms) delayed
  /// ACK — the paper's §4.3 ACK-delay population.
  double slow_delack_prob = 0.02;
  /// Idle gap before follow-up requests (shared connections).
  double client_idle_prob = 0.0;
  Duration client_idle_mean = Duration::millis(800);
  /// Idle gap before the *first* request (client thinks after connecting).
  double first_gap_prob = 0.0;
  Duration first_gap_mean = Duration::millis(1000);

  // Server behaviour.
  /// Probability the content requires a back-end fetch (data unavailable).
  double backend_miss_prob = 0.0;
  Duration backend_delay_mean = Duration::millis(300);
  /// Probability the server app feeds the socket in paced chunks
  /// (resource constraint).
  double chunked_prob = 0.0;
  std::uint64_t chunk_bytes = 32 * 1024;
  Duration chunk_interval_mean = Duration::millis(250);

  PathProfile path;
  tcp::SenderConfig sender;
};

/// Canned profiles matching the paper's three services.
ServiceProfile cloud_storage_profile();
ServiceProfile software_download_profile();
ServiceProfile web_search_profile();
ServiceProfile profile_for(Service s);

/// Materialized per-flow scenario drawn from a profile.
struct FlowScenario {
  tcp::ConnectionConfig connection;
  sim::LinkConfig down_link;  // server -> client
  sim::LinkConfig up_link;    // client -> server
};

/// Draws one flow scenario. `flow_id` feeds the connection 4-tuple so each
/// flow in a trace has a unique key.
FlowScenario draw_scenario(const ServiceProfile& profile, Rng& rng,
                           std::uint64_t flow_id);

}  // namespace tapo::workload
