#include "pcap/pcap.h"

#include <array>
#include <fstream>
#include <span>
#include <stdexcept>
#include <vector>

#include "net/checksum.h"
#include "net/endian.h"
#include "net/ipv4.h"
#include "util/logging.h"

namespace tapo::pcap {
namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kLinkRaw = 101;       // raw IP
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkNull = 0;        // BSD loopback
constexpr std::uint32_t kLinkLoop = 108;

// pcap file headers are written in *host* order by convention; we always
// write little-endian and detect byte order when reading.
void put_le16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

class ByteReader {
 public:
  explicit ByteReader(std::istream& in) : in_(in) {}

  bool read(std::span<std::uint8_t> buf) {
    in_.read(reinterpret_cast<char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    return in_.gcount() == static_cast<std::streamsize>(buf.size());
  }

  bool skip(std::size_t n) {
    in_.seekg(static_cast<std::streamoff>(n), std::ios::cur);
    return static_cast<bool>(in_);
  }

 private:
  std::istream& in_;
};

std::uint32_t load32(std::span<const std::uint8_t> b, std::size_t off,
                     bool swap) {
  std::uint32_t v = static_cast<std::uint32_t>(b[off]) |
                    (static_cast<std::uint32_t>(b[off + 1]) << 8) |
                    (static_cast<std::uint32_t>(b[off + 2]) << 16) |
                    (static_cast<std::uint32_t>(b[off + 3]) << 24);
  if (swap) v = __builtin_bswap32(v);
  return v;
}

}  // namespace

void write_stream(std::ostream& out, const net::PacketTrace& trace,
                  const WriteOptions& opts) {
  std::string header;
  put_le32(header, kMagicUsec);
  put_le16(header, 2);  // version major
  put_le16(header, 4);  // version minor
  put_le32(header, 0);  // thiszone
  put_le32(header, 0);  // sigfigs
  put_le32(header, opts.snaplen);
  put_le32(header, kLinkRaw);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::vector<std::uint8_t> pkt;
  for (const auto& cp : trace.packets()) {
    const std::size_t tcp_len = cp.tcp.header_len() + cp.payload_len;
    const std::size_t ip_len = net::kIpv4HeaderLen + tcp_len;
    pkt.assign(ip_len, 0);

    net::Ipv4Header ip;
    ip.src = cp.key.src_ip;
    ip.dst = cp.key.dst_ip;
    ip.total_length = static_cast<std::uint16_t>(ip_len);
    ip.serialize(std::span(pkt).subspan(0, net::kIpv4HeaderLen));

    net::TcpHeader tcp = cp.tcp;
    tcp.src_port = cp.key.src_port;
    tcp.dst_port = cp.key.dst_port;
    tcp.serialize(std::span(pkt).subspan(net::kIpv4HeaderLen));
    const std::uint16_t csum = net::tcp_checksum(
        ip.src, ip.dst, std::span(pkt).subspan(net::kIpv4HeaderLen, tcp_len));
    net::put_u16(std::span(pkt).subspan(net::kIpv4HeaderLen), 16, csum);

    const std::size_t caplen = std::min<std::size_t>(ip_len, opts.snaplen);
    std::string rec;
    put_le32(rec, static_cast<std::uint32_t>(cp.timestamp.us() / 1'000'000));
    put_le32(rec, static_cast<std::uint32_t>(cp.timestamp.us() % 1'000'000));
    put_le32(rec, static_cast<std::uint32_t>(caplen));
    put_le32(rec, static_cast<std::uint32_t>(ip_len));
    out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    out.write(reinterpret_cast<const char*>(pkt.data()),
              static_cast<std::streamsize>(caplen));
  }
  if (!out) throw std::runtime_error("pcap: write failed");
}

void write_file(const std::string& path, const net::PacketTrace& trace,
                const WriteOptions& opts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  write_stream(out, trace, opts);
}

namespace {

std::size_t link_header_for(std::uint32_t linktype) {
  switch (linktype) {
    case kLinkRaw: return 0;
    case kLinkEthernet: return 14;
    case kLinkNull:
    case kLinkLoop: return 4;
    default:
      throw std::runtime_error("pcap: unsupported linktype " +
                               std::to_string(linktype));
  }
}

/// Parses one link-layer frame straight into the trace arena: a slot is
/// claimed from the builder, the TCP header is decoded in place, and the
/// slot is rolled back for non-IPv4/non-TCP/truncated frames — no
/// CapturedPacket is ever materialized outside the arena. Returns false
/// (and bumps skipped) when the frame is rejected.
bool parse_frame(std::span<const std::uint8_t> p, std::uint32_t linktype,
                 std::int64_t ts_us, net::TraceBuilder& builder,
                 ReadStats& st) {
  const std::size_t link_header = link_header_for(linktype);
  if (link_header > 0) {
    if (p.size() < link_header) {
      ++st.skipped;
      return false;
    }
    if (linktype == kLinkEthernet && net::get_u16(p, 12) != 0x0800) {
      ++st.skipped;
      return false;
    }
    p = p.subspan(link_header);
  }

  net::Ipv4Header ip;
  std::size_t ip_hlen = 0;
  if (!net::Ipv4Header::parse(p, ip, ip_hlen) ||
      ip.protocol != net::kProtoTcp) {
    ++st.skipped;
    return false;
  }
  // Wire lengths come from the IP header; the captured bytes may stop short
  // of them when the capture ran with a small snaplen. Sizing the packet
  // from the wire (not from caplen) keeps sequence accounting correct all
  // the way through demux and the analyzer — only the uncaptured option
  // bytes are actually lost, and those are flagged via `truncated`.
  if (ip.total_length < ip_hlen + net::kTcpMinHeaderLen) {
    ++st.skipped;  // wire packet too short to hold a TCP header: malformed
    return false;
  }
  const std::size_t wire_tcp_len = ip.total_length - ip_hlen;
  const std::size_t captured_tcp_len =
      p.size() > ip_hlen ? std::min(p.size() - ip_hlen, wire_tcp_len) : 0;
  std::span<const std::uint8_t> tcp_bytes = p.subspan(ip_hlen, captured_tcp_len);

  net::CapturedPacket& cp = builder.begin_packet();
  std::size_t tcp_hlen = 0;
  bool opts_truncated = false;
  if (!net::TcpHeader::parse(tcp_bytes, cp.tcp, tcp_hlen, &opts_truncated) ||
      wire_tcp_len < tcp_hlen) {
    builder.rollback_last();
    ++st.skipped;
    return false;
  }
  cp.timestamp = TimePoint::from_us(ts_us);
  cp.key = {ip.src, ip.dst, cp.tcp.src_port, cp.tcp.dst_port};
  // Payload length is the *wire* payload — present on the path even when
  // the capture kept only a header prefix of it.
  cp.payload_len = static_cast<std::uint32_t>(wire_tcp_len - tcp_hlen);
  cp.truncated = opts_truncated;
  ++st.tcp_packets;
  return true;
}

net::PacketTrace read_classic(ByteReader& reader,
                              std::span<const std::uint8_t> magic_bytes,
                              ReadStats& st) {
  std::array<std::uint8_t, 24> gh{};
  std::copy(magic_bytes.begin(), magic_bytes.end(), gh.begin());
  if (!reader.read(std::span(gh).subspan(4))) {
    throw std::runtime_error("pcap: truncated header");
  }

  const std::uint32_t raw_magic = load32(gh, 0, /*swap=*/false);
  bool swap = false;
  bool nsec = false;
  if (raw_magic == kMagicUsec) {
  } else if (raw_magic == __builtin_bswap32(kMagicUsec)) {
    swap = true;
  } else if (raw_magic == kMagicNsec) {
    nsec = true;
  } else {
    swap = true;
    nsec = true;
  }
  const std::uint32_t linktype = load32(gh, 20, swap);
  link_header_for(linktype);  // validate up front

  net::PacketTrace trace;
  net::TraceBuilder builder(trace);
  std::array<std::uint8_t, 16> rh;
  // Scratch frame buffer, grown once to the largest caplen seen and reused
  // for every record — no per-packet resize/allocation in the read loop.
  std::vector<std::uint8_t> body;
  while (reader.read(rh)) {
    ++st.records;
    const std::uint32_t ts_sec = load32(rh, 0, swap);
    const std::uint32_t ts_frac = load32(rh, 4, swap);
    const std::uint32_t caplen = load32(rh, 8, swap);
    if (caplen > 256 * 1024) throw std::runtime_error("pcap: absurd caplen");
    if (caplen > body.size()) body.resize(caplen);
    const std::span<std::uint8_t> frame(body.data(), caplen);
    if (!reader.read(frame)) break;  // truncated final record: keep the rest

    const std::int64_t frac_us =
        nsec ? static_cast<std::int64_t>(ts_frac) / 1000
             : static_cast<std::int64_t>(ts_frac);
    parse_frame(frame, linktype,
                static_cast<std::int64_t>(ts_sec) * 1'000'000 + frac_us,
                builder, st);
  }
  return trace;
}

constexpr std::uint32_t kNgShb = 0x0A0D0D0A;
constexpr std::uint32_t kNgIdb = 0x00000001;
constexpr std::uint32_t kNgEpb = 0x00000006;
constexpr std::uint32_t kNgSpb = 0x00000003;
constexpr std::uint32_t kNgByteOrderMagic = 0x1A2B3C4D;

struct NgInterface {
  std::uint32_t linktype = kLinkEthernet;
  /// Timestamp units per second (default 10^6 per the spec).
  std::uint64_t ts_per_sec = 1'000'000;
};

net::PacketTrace read_pcapng(ByteReader& reader, ReadStats& st) {
  net::PacketTrace trace;
  net::TraceBuilder builder(trace);
  std::vector<NgInterface> interfaces;
  bool swap = false;

  // We enter having consumed the 4-byte SHB type; process the SHB first,
  // then loop over blocks.
  bool first_block = true;
  std::uint32_t block_type = kNgShb;
  // Grow-only scratch block buffer, reused across records.
  std::vector<std::uint8_t> body;

  while (true) {
    if (!first_block) {
      std::array<std::uint8_t, 4> tb;
      if (!reader.read(tb)) break;
      block_type = load32(tb, 0, /*swap=*/false);  // endianness fixed below
    }

    std::array<std::uint8_t, 4> lb;
    if (!reader.read(lb)) {
      if (first_block) throw std::runtime_error("pcapng: truncated SHB");
      break;
    }
    std::uint32_t total_len;
    // Every SHB (not just the first) starts a new section and may change
    // the byte order, so its own byte-order magic — not the previous
    // section's — decides how its length decodes. The SHB type value is a
    // palindrome, so reading it with the old order is safe.
    const bool is_shb =
        first_block || block_type == kNgShb ||
        __builtin_bswap32(block_type) == kNgShb;
    if (is_shb) {
      // Peek the byte-order magic to fix endianness for this section.
      std::array<std::uint8_t, 4> bom;
      std::uint32_t raw_len = load32(lb, 0, false);
      if (!reader.read(bom)) throw std::runtime_error("pcapng: truncated SHB");
      const std::uint32_t magic = load32(bom, 0, false);
      if (magic == kNgByteOrderMagic) {
        swap = false;
      } else if (magic == __builtin_bswap32(kNgByteOrderMagic)) {
        swap = true;
      } else {
        throw std::runtime_error("pcapng: bad byte-order magic");
      }
      total_len = swap ? __builtin_bswap32(raw_len) : raw_len;
      if (total_len < 28 || total_len > 1 << 24) {
        throw std::runtime_error("pcapng: absurd SHB length");
      }
      // Skip the rest of the SHB: total - (4 type + 4 len + 4 bom).
      if (!reader.skip(total_len - 12)) break;
      first_block = false;
      interfaces.clear();  // interface ids are per-section
      continue;
    }

    if (swap) block_type = __builtin_bswap32(block_type);
    total_len = load32(lb, 0, swap);
    if (total_len < 12 || total_len > 1 << 24) {
      throw std::runtime_error("pcapng: absurd block length");
    }
    const std::uint32_t body_len = total_len - 12;  // minus type+2*len
    if (body_len > body.size()) body.resize(body_len);
    if (!reader.read(std::span(body.data(), body_len))) break;
    std::array<std::uint8_t, 4> trailer;
    if (!reader.read(trailer)) break;

    if (block_type == kNgIdb) {
      if (body_len < 8) continue;
      NgInterface ifc;
      ifc.linktype = load32(body, 0, swap) & 0xffff;
      // Walk options for if_tsresol (code 9). Option code/length are
      // 16-bit values in the section's byte order.
      const auto load16 = [&](std::size_t o) {
        std::uint16_t v =
            static_cast<std::uint16_t>(body[o] | (body[o + 1] << 8));
        return swap ? __builtin_bswap16(v) : v;
      };
      std::size_t off = 8;
      while (off + 4 <= body_len) {
        const std::uint16_t c = load16(off);
        const std::uint16_t l = load16(off + 2);
        if (c == 0) break;  // opt_endofopt
        if (c == 9 && l >= 1 && off + 4 < body_len) {
          const std::uint8_t v = body[off + 4];
          if (v & 0x80) {
            ifc.ts_per_sec = 1ull << (v & 0x7f);
          } else {
            ifc.ts_per_sec = 1;
            for (int e = 0; e < (v & 0x7f) && e < 18; ++e) ifc.ts_per_sec *= 10;
          }
        }
        off += 4 + ((l + 3u) & ~3u);
      }
      interfaces.push_back(ifc);
      continue;
    }

    if (block_type == kNgEpb) {
      if (body_len < 20) continue;
      ++st.records;
      const std::uint32_t if_id = load32(body, 0, swap);
      const std::uint64_t ts =
          (static_cast<std::uint64_t>(load32(body, 4, swap)) << 32) |
          load32(body, 8, swap);
      const std::uint32_t caplen = load32(body, 12, swap);
      if (caplen > body_len - 20) {
        ++st.skipped;
        continue;
      }
      const NgInterface ifc =
          if_id < interfaces.size() ? interfaces[if_id] : NgInterface{};
      const std::int64_t ts_us = static_cast<std::int64_t>(
          static_cast<double>(ts) * 1e6 / static_cast<double>(ifc.ts_per_sec));
      parse_frame(std::span<const std::uint8_t>(body.data() + 20, caplen),
                  ifc.linktype, ts_us, builder, st);
      continue;
    }

    if (block_type == kNgSpb) {
      // Simple Packet Block: no timestamp; count it but skip (the analyzer
      // is useless without timing).
      ++st.records;
      ++st.skipped;
      continue;
    }
    // Unknown block: already consumed; ignore.
  }
  return trace;
}

}  // namespace

net::PacketTrace read_stream(std::istream& in, ReadStats* stats) {
  ReadStats local;
  ReadStats& st = stats ? *stats : local;

  ByteReader reader(in);
  std::array<std::uint8_t, 4> magic;
  if (!reader.read(magic)) throw std::runtime_error("pcap: truncated header");
  const std::uint32_t m = load32(magic, 0, /*swap=*/false);
  if (m == kNgShb) return read_pcapng(reader, st);
  if (m == kMagicUsec || m == __builtin_bswap32(kMagicUsec) ||
      m == kMagicNsec || m == __builtin_bswap32(kMagicNsec)) {
    return read_classic(reader, magic, st);
  }
  throw std::runtime_error("pcap: bad magic");
}

net::PacketTrace read_file(const std::string& path, ReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open " + path);
  return read_stream(in, stats);
}

}  // namespace tapo::pcap
