#include "pcap/pcap.h"

#include <algorithm>
#include <array>
#include <deque>
#include <fstream>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/checksum.h"
#include "net/endian.h"
#include "net/ipv4.h"
#include "util/logging.h"
#include "util/strings.h"

namespace tapo::pcap {
namespace {

constexpr std::uint32_t kMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kLinkRaw = 101;       // raw IP
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkNull = 0;        // BSD loopback
constexpr std::uint32_t kLinkLoop = 108;

// pcap file headers are written in *host* order by convention; we always
// write little-endian and detect byte order when reading.
void put_le16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

class ByteReader {
 public:
  explicit ByteReader(std::istream& in) : in_(in) {}

  bool read(std::span<std::uint8_t> buf) {
    in_.read(reinterpret_cast<char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
    offset_ += static_cast<std::size_t>(in_.gcount());
    return in_.gcount() == static_cast<std::streamsize>(buf.size());
  }

  bool skip(std::size_t n) {
    in_.seekg(static_cast<std::streamoff>(n), std::ios::cur);
    if (!in_) return false;
    offset_ += n;
    return true;
  }

  /// Absolute position in the input: bytes consumed so far. Carried into
  /// every parse-error message so a malformed record can be found with a
  /// hex editor.
  std::size_t offset() const { return offset_; }

 private:
  std::istream& in_;
  std::size_t offset_ = 0;
};

/// Builds "pcap: <what> (record N, offset X)" — every reader throw site
/// funnels through here so errors always locate the bad record.
[[noreturn]] void fail_at(const char* what, const char* unit,
                          std::size_t index, std::size_t offset) {
  throw std::runtime_error(
      str_format("%s (%s %llu, offset %llu)", what, unit,
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(offset)));
}

std::uint32_t load32(std::span<const std::uint8_t> b, std::size_t off,
                     bool swap) {
  std::uint32_t v = static_cast<std::uint32_t>(b[off]) |
                    (static_cast<std::uint32_t>(b[off + 1]) << 8) |
                    (static_cast<std::uint32_t>(b[off + 2]) << 16) |
                    (static_cast<std::uint32_t>(b[off + 3]) << 24);
  if (swap) v = __builtin_bswap32(v);
  return v;
}

}  // namespace

void write_stream(std::ostream& out, const net::PacketTrace& trace,
                  const WriteOptions& opts) {
  std::string header;
  put_le32(header, kMagicUsec);
  put_le16(header, 2);  // version major
  put_le16(header, 4);  // version minor
  put_le32(header, 0);  // thiszone
  put_le32(header, 0);  // sigfigs
  put_le32(header, opts.snaplen);
  put_le32(header, kLinkRaw);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::vector<std::uint8_t> pkt;
  for (const auto& cp : trace.packets()) {
    const std::size_t tcp_len = cp.tcp.header_len() + cp.payload_len;
    const std::size_t ip_len = net::kIpv4HeaderLen + tcp_len;
    pkt.assign(ip_len, 0);

    net::Ipv4Header ip;
    ip.src = cp.key.src_ip;
    ip.dst = cp.key.dst_ip;
    ip.total_length = static_cast<std::uint16_t>(ip_len);
    ip.serialize(std::span(pkt).subspan(0, net::kIpv4HeaderLen));

    net::TcpHeader tcp = cp.tcp;
    tcp.src_port = cp.key.src_port;
    tcp.dst_port = cp.key.dst_port;
    tcp.serialize(std::span(pkt).subspan(net::kIpv4HeaderLen));
    const std::uint16_t csum = net::tcp_checksum(
        ip.src, ip.dst, std::span(pkt).subspan(net::kIpv4HeaderLen, tcp_len));
    net::put_u16(std::span(pkt).subspan(net::kIpv4HeaderLen), 16, csum);

    const std::size_t caplen = std::min<std::size_t>(ip_len, opts.snaplen);
    std::string rec;
    put_le32(rec, static_cast<std::uint32_t>(cp.timestamp.us() / 1'000'000));
    put_le32(rec, static_cast<std::uint32_t>(cp.timestamp.us() % 1'000'000));
    put_le32(rec, static_cast<std::uint32_t>(caplen));
    put_le32(rec, static_cast<std::uint32_t>(ip_len));
    out.write(rec.data(), static_cast<std::streamsize>(rec.size()));
    out.write(reinterpret_cast<const char*>(pkt.data()),
              static_cast<std::streamsize>(caplen));
  }
  if (!out) throw std::runtime_error("pcap: write failed");
}

void write_file(const std::string& path, const net::PacketTrace& trace,
                const WriteOptions& opts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("pcap: cannot open " + path);
  write_stream(out, trace, opts);
}

namespace {

std::size_t link_header_for(std::uint32_t linktype) {
  switch (linktype) {
    case kLinkRaw: return 0;
    case kLinkEthernet: return 14;
    case kLinkNull:
    case kLinkLoop: return 4;
    default:
      throw std::runtime_error("pcap: unsupported linktype " +
                               std::to_string(linktype));
  }
}

/// Parses one link-layer frame straight into the trace arena: a slot is
/// claimed from the builder, the TCP header is decoded in place, and the
/// slot is rolled back for non-IPv4/non-TCP/truncated frames — no
/// CapturedPacket is ever materialized outside the arena. Returns false
/// (and bumps skipped) when the frame is rejected.
bool parse_frame(std::span<const std::uint8_t> p, std::uint32_t linktype,
                 std::int64_t ts_us, net::TraceBuilder& builder,
                 ReadStats& st) {
  const std::size_t link_header = link_header_for(linktype);
  if (link_header > 0) {
    if (p.size() < link_header) {
      ++st.skipped;
      return false;
    }
    if (linktype == kLinkEthernet && net::get_u16(p, 12) != 0x0800) {
      ++st.skipped;
      return false;
    }
    p = p.subspan(link_header);
  }

  net::Ipv4Header ip;
  std::size_t ip_hlen = 0;
  if (!net::Ipv4Header::parse(p, ip, ip_hlen) ||
      ip.protocol != net::kProtoTcp) {
    ++st.skipped;
    return false;
  }
  // Wire lengths come from the IP header; the captured bytes may stop short
  // of them when the capture ran with a small snaplen. Sizing the packet
  // from the wire (not from caplen) keeps sequence accounting correct all
  // the way through demux and the analyzer — only the uncaptured option
  // bytes are actually lost, and those are flagged via `truncated`.
  if (ip.total_length < ip_hlen + net::kTcpMinHeaderLen) {
    ++st.skipped;  // wire packet too short to hold a TCP header: malformed
    return false;
  }
  const std::size_t wire_tcp_len = ip.total_length - ip_hlen;
  const std::size_t captured_tcp_len =
      p.size() > ip_hlen ? std::min(p.size() - ip_hlen, wire_tcp_len) : 0;
  std::span<const std::uint8_t> tcp_bytes = p.subspan(ip_hlen, captured_tcp_len);

  net::CapturedPacket& cp = builder.begin_packet();
  std::size_t tcp_hlen = 0;
  bool opts_truncated = false;
  if (!net::TcpHeader::parse(tcp_bytes, cp.tcp, tcp_hlen, &opts_truncated) ||
      wire_tcp_len < tcp_hlen) {
    builder.rollback_last();
    ++st.skipped;
    return false;
  }
  cp.timestamp = TimePoint::from_us(ts_us);
  cp.key = {ip.src, ip.dst, cp.tcp.src_port, cp.tcp.dst_port};
  // Payload length is the *wire* payload — present on the path even when
  // the capture kept only a header prefix of it.
  cp.payload_len = static_cast<std::uint32_t>(wire_tcp_len - tcp_hlen);
  cp.truncated = opts_truncated;
  ++st.tcp_packets;
  return true;
}

/// Resumable frame parser: each next() call advances the input until one
/// TCP packet has been appended through the builder (true) or the input
/// ends (false). Holding parse state in the object — instead of locals of
/// a one-shot read loop — is what lets the StreamingReader pull a chunk,
/// hand it off, and come back for more.
class FrameParser {
 public:
  virtual ~FrameParser() = default;
  /// Throws std::runtime_error with record/offset context on malformed
  /// input. The same ReadStats must be passed on every call.
  virtual bool next(net::TraceBuilder& builder, ReadStats& st) = 0;
};

class ClassicParser final : public FrameParser {
 public:
  /// `magic_bytes` are the 4 already-consumed magic bytes; the remaining
  /// 20 header bytes are read here.
  ClassicParser(ByteReader& reader, std::span<const std::uint8_t> magic_bytes)
      : reader_(reader) {
    std::array<std::uint8_t, 24> gh{};
    std::copy(magic_bytes.begin(), magic_bytes.end(), gh.begin());
    if (!reader_.read(std::span(gh).subspan(4))) {
      throw std::runtime_error("pcap: truncated header");
    }

    const std::uint32_t raw_magic = load32(gh, 0, /*swap=*/false);
    if (raw_magic == kMagicUsec) {
    } else if (raw_magic == __builtin_bswap32(kMagicUsec)) {
      swap_ = true;
    } else if (raw_magic == kMagicNsec) {
      nsec_ = true;
    } else {
      swap_ = true;
      nsec_ = true;
    }
    linktype_ = load32(gh, 20, swap_);
    link_header_for(linktype_);  // validate up front
  }

  bool next(net::TraceBuilder& builder, ReadStats& st) override {
    std::array<std::uint8_t, 16> rh;
    while (true) {
      const std::size_t record_start = reader_.offset();
      if (!reader_.read(rh)) return false;
      ++st.records;
      const std::uint32_t ts_sec = load32(rh, 0, swap_);
      const std::uint32_t ts_frac = load32(rh, 4, swap_);
      const std::uint32_t caplen = load32(rh, 8, swap_);
      if (caplen > 256 * 1024) {
        fail_at(str_format("pcap: absurd caplen %u", caplen).c_str(),
                "record", st.records, record_start);
      }
      if (caplen > body_.size()) body_.resize(caplen);
      const std::span<std::uint8_t> frame(body_.data(), caplen);
      if (!reader_.read(frame)) return false;  // truncated final record:
                                               // keep everything before it
      const std::int64_t frac_us =
          nsec_ ? static_cast<std::int64_t>(ts_frac) / 1000
                : static_cast<std::int64_t>(ts_frac);
      if (parse_frame(frame, linktype_,
                      static_cast<std::int64_t>(ts_sec) * 1'000'000 + frac_us,
                      builder, st)) {
        return true;
      }
    }
  }

 private:
  ByteReader& reader_;
  bool swap_ = false;
  bool nsec_ = false;
  std::uint32_t linktype_ = kLinkRaw;
  // Scratch frame buffer, grown once to the largest caplen seen and reused
  // for every record — no per-packet resize/allocation in the read loop.
  std::vector<std::uint8_t> body_;
};

constexpr std::uint32_t kNgShb = 0x0A0D0D0A;
constexpr std::uint32_t kNgIdb = 0x00000001;
constexpr std::uint32_t kNgEpb = 0x00000006;
constexpr std::uint32_t kNgSpb = 0x00000003;
constexpr std::uint32_t kNgByteOrderMagic = 0x1A2B3C4D;

struct NgInterface {
  std::uint32_t linktype = kLinkEthernet;
  /// Timestamp units per second (default 10^6 per the spec).
  std::uint64_t ts_per_sec = 1'000'000;
};

class NgParser final : public FrameParser {
 public:
  /// Entered having consumed the 4-byte SHB type; the SHB itself is
  /// processed on the first next() call.
  explicit NgParser(ByteReader& reader) : reader_(reader) {}

  bool next(net::TraceBuilder& builder, ReadStats& st) override {
    while (true) {
      std::size_t block_start = reader_.offset();
      std::uint32_t block_type = kNgShb;
      if (!first_block_) {
        std::array<std::uint8_t, 4> tb;
        if (!reader_.read(tb)) return false;
        block_type = load32(tb, 0, /*swap=*/false);  // endianness fixed below
      } else {
        block_start = reader_.offset() - 4;  // SHB type consumed up front
      }
      ++blocks_;

      std::array<std::uint8_t, 4> lb;
      if (!reader_.read(lb)) {
        if (first_block_) {
          fail_at("pcapng: truncated SHB", "block", blocks_, block_start);
        }
        return false;
      }
      std::uint32_t total_len;
      // Every SHB (not just the first) starts a new section and may change
      // the byte order, so its own byte-order magic — not the previous
      // section's — decides how its length decodes. The SHB type value is a
      // palindrome, so reading it with the old order is safe.
      const bool is_shb = first_block_ || block_type == kNgShb ||
                          __builtin_bswap32(block_type) == kNgShb;
      if (is_shb) {
        // Peek the byte-order magic to fix endianness for this section.
        std::array<std::uint8_t, 4> bom;
        std::uint32_t raw_len = load32(lb, 0, false);
        if (!reader_.read(bom)) {
          fail_at("pcapng: truncated SHB", "block", blocks_, block_start);
        }
        const std::uint32_t magic = load32(bom, 0, false);
        if (magic == kNgByteOrderMagic) {
          swap_ = false;
        } else if (magic == __builtin_bswap32(kNgByteOrderMagic)) {
          swap_ = true;
        } else {
          fail_at("pcapng: bad byte-order magic", "block", blocks_,
                  block_start);
        }
        total_len = swap_ ? __builtin_bswap32(raw_len) : raw_len;
        if (total_len < 28 || total_len > 1 << 24) {
          fail_at(str_format("pcapng: absurd SHB length %u", total_len).c_str(),
                  "block", blocks_, block_start);
        }
        // Skip the rest of the SHB: total - (4 type + 4 len + 4 bom).
        if (!reader_.skip(total_len - 12)) return false;
        first_block_ = false;
        interfaces_.clear();  // interface ids are per-section
        continue;
      }

      if (swap_) block_type = __builtin_bswap32(block_type);
      total_len = load32(lb, 0, swap_);
      if (total_len < 12 || total_len > 1 << 24) {
        fail_at(str_format("pcapng: absurd block length %u", total_len).c_str(),
                "block", blocks_, block_start);
      }
      const std::uint32_t body_len = total_len - 12;  // minus type+2*len
      if (body_len > body_.size()) body_.resize(body_len);
      if (!reader_.read(std::span(body_.data(), body_len))) return false;
      std::array<std::uint8_t, 4> trailer;
      if (!reader_.read(trailer)) return false;

      if (block_type == kNgIdb) {
        if (body_len < 8) continue;
        NgInterface ifc;
        ifc.linktype = load32(body_, 0, swap_) & 0xffff;
        // Walk options for if_tsresol (code 9). Option code/length are
        // 16-bit values in the section's byte order.
        const auto load16 = [&](std::size_t o) {
          std::uint16_t v =
              static_cast<std::uint16_t>(body_[o] | (body_[o + 1] << 8));
          return swap_ ? __builtin_bswap16(v) : v;
        };
        std::size_t off = 8;
        while (off + 4 <= body_len) {
          const std::uint16_t c = load16(off);
          const std::uint16_t l = load16(off + 2);
          if (c == 0) break;  // opt_endofopt
          if (c == 9 && l >= 1 && off + 4 < body_len) {
            const std::uint8_t v = body_[off + 4];
            if (v & 0x80) {
              ifc.ts_per_sec = 1ull << (v & 0x7f);
            } else {
              ifc.ts_per_sec = 1;
              for (int e = 0; e < (v & 0x7f) && e < 18; ++e) {
                ifc.ts_per_sec *= 10;
              }
            }
          }
          off += 4 + ((l + 3u) & ~3u);
        }
        interfaces_.push_back(ifc);
        continue;
      }

      if (block_type == kNgEpb) {
        if (body_len < 20) continue;
        ++st.records;
        const std::uint32_t if_id = load32(body_, 0, swap_);
        const std::uint64_t ts =
            (static_cast<std::uint64_t>(load32(body_, 4, swap_)) << 32) |
            load32(body_, 8, swap_);
        const std::uint32_t caplen = load32(body_, 12, swap_);
        if (caplen > body_len - 20) {
          ++st.skipped;
          continue;
        }
        const NgInterface ifc =
            if_id < interfaces_.size() ? interfaces_[if_id] : NgInterface{};
        const std::int64_t ts_us = static_cast<std::int64_t>(
            static_cast<double>(ts) * 1e6 /
            static_cast<double>(ifc.ts_per_sec));
        if (parse_frame(std::span<const std::uint8_t>(body_.data() + 20,
                                                      caplen),
                        ifc.linktype, ts_us, builder, st)) {
          return true;
        }
        continue;
      }

      if (block_type == kNgSpb) {
        // Simple Packet Block: no timestamp; count it but skip (the
        // analyzer is useless without timing).
        ++st.records;
        ++st.skipped;
        continue;
      }
      // Unknown block: already consumed; ignore.
    }
  }

 private:
  ByteReader& reader_;
  std::vector<NgInterface> interfaces_;
  bool swap_ = false;
  bool first_block_ = true;
  std::size_t blocks_ = 0;
  // Grow-only scratch block buffer, reused across records.
  std::vector<std::uint8_t> body_;
};

/// Auto-detects the capture format from the leading magic and returns the
/// matching resumable parser. Shared by the batch readers and the
/// StreamingReader.
std::unique_ptr<FrameParser> open_parser(ByteReader& reader) {
  std::array<std::uint8_t, 4> magic;
  if (!reader.read(magic)) throw std::runtime_error("pcap: truncated header");
  const std::uint32_t m = load32(magic, 0, /*swap=*/false);
  if (m == kNgShb) return std::make_unique<NgParser>(reader);
  if (m == kMagicUsec || m == __builtin_bswap32(kMagicUsec) ||
      m == kMagicNsec || m == __builtin_bswap32(kMagicNsec)) {
    return std::make_unique<ClassicParser>(reader, magic);
  }
  throw std::runtime_error("pcap: bad magic");
}

}  // namespace

net::PacketTrace read_stream(std::istream& in, ReadStats* stats) {
  ReadStats local;
  ReadStats& st = stats ? *stats : local;

  ByteReader reader(in);
  const std::unique_ptr<FrameParser> parser = open_parser(reader);
  net::PacketTrace trace;
  net::TraceBuilder builder(trace);
  while (parser->next(builder, st)) {
  }
  return trace;
}

net::PacketTrace read_file(const std::string& path, ReadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("pcap: cannot open " + path);
  return read_stream(in, stats);
}

// ------------------------------------------------------- StreamingReader

struct StreamingReader::Impl {
  std::unique_ptr<std::ifstream> owned;  // set when constructed from a path
  ByteReader reader;
  std::unique_ptr<FrameParser> parser;
  ReadStats stats;
  /// Chunks sealed by the ChunkedTrace sink, waiting to be pulled. Lazy
  /// sealing means at most one chunk sits here between next_chunk calls.
  std::deque<net::TraceChunk> pending;
  net::ChunkedTrace chunks;
  bool eof = false;

  /// Chunks must be small relative to a limited budget: a chunk is the
  /// reader's indivisible residency unit, so if one chunk alone neared the
  /// cap the downstream evictor could never get back under it. Cap the
  /// chunk at 1/8 of the budget (min one packet) and let an explicit
  /// smaller chunk_packets override win.
  static std::size_t effective_chunk_packets(const Options& opts) {
    std::size_t n = opts.chunk_packets;
    if (opts.budget != nullptr && !opts.budget->unlimited()) {
      const std::size_t cap = std::max<std::size_t>(
          1, opts.budget->limit() / (8 * sizeof(net::CapturedPacket)));
      n = std::min(n, cap);
    }
    return n;
  }

  Impl(std::istream& in, const Options& opts,
       std::unique_ptr<std::ifstream> own)
      : owned(std::move(own)),
        reader(in),
        parser(open_parser(reader)),
        chunks(effective_chunk_packets(opts),
               [this](net::TraceChunk&& c) { pending.push_back(std::move(c)); },
               opts.budget) {}
};

StreamingReader::StreamingReader(const std::string& path, Options opts) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*in) throw std::runtime_error("pcap: cannot open " + path);
  std::istream& ref = *in;
  impl_ = std::make_unique<Impl>(ref, opts, std::move(in));
}

StreamingReader::StreamingReader(std::istream& in, Options opts)
    : impl_(std::make_unique<Impl>(in, opts, nullptr)) {}

StreamingReader::~StreamingReader() = default;
StreamingReader::StreamingReader(StreamingReader&&) noexcept = default;
StreamingReader& StreamingReader::operator=(StreamingReader&&) noexcept =
    default;

std::optional<net::TraceChunk> StreamingReader::next_chunk() {
  Impl& im = *impl_;
  while (im.pending.empty() && !im.eof) {
    net::TraceBuilder builder(im.chunks);
    if (!im.parser->next(builder, im.stats)) {
      im.eof = true;
      im.chunks.seal_open();  // tail chunk (possibly empty) flushes here
    }
  }
  if (!im.pending.empty()) {
    net::TraceChunk chunk = std::move(im.pending.front());
    im.pending.pop_front();
    return chunk;
  }
  return std::nullopt;
}

const ReadStats& StreamingReader::stats() const { return impl_->stats; }

}  // namespace tapo::pcap
