// Capture-file formats, without a libpcap dependency:
//
//  - classic libpcap (the 24-byte global header + per-record headers,
//    https://wiki.wireshark.org/Development/LibpcapFileFormat) — written
//    and read;
//  - pcapng (SHB/IDB/EPB block structure, the modern Wireshark/tcpdump
//    default) — read-only.
//
// Files are written with LINKTYPE_RAW (raw IPv4/IPv6) and microsecond
// timestamps. The readers additionally accept LINKTYPE_ETHERNET and
// LINKTYPE_NULL/LOOP so real captures can be fed straight into the TAPO
// analyzer, and handle both endiannesses, the nanosecond classic magic,
// and per-interface pcapng timestamp resolutions. The format is
// auto-detected from the leading magic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "net/chunk.h"
#include "net/trace.h"
#include "util/memory_budget.h"

namespace tapo::pcap {

struct WriteOptions {
  std::uint32_t snaplen = 65535;
};

/// Serializes `trace` as a pcap file. Payload bytes are synthesized as
/// zeros (the analyzer is payload-agnostic). Throws std::runtime_error on
/// I/O failure.
void write_file(const std::string& path, const net::PacketTrace& trace,
                const WriteOptions& opts = {});
void write_stream(std::ostream& out, const net::PacketTrace& trace,
                  const WriteOptions& opts = {});

struct ReadStats {
  std::size_t records = 0;       // pcap records seen
  std::size_t tcp_packets = 0;   // parsed into the trace
  std::size_t skipped = 0;       // non-IPv4/non-TCP/truncated records
};

/// Parses a capture file (classic pcap or pcapng, auto-detected) into a
/// PacketTrace. Non-TCP records are skipped and counted in ReadStats.
/// Throws std::runtime_error on malformed input; the message carries the
/// record/block index and absolute file offset (e.g. "pcap: absurd caplen
/// 300000 (record 7, offset 1832)").
net::PacketTrace read_file(const std::string& path, ReadStats* stats = nullptr);
net::PacketTrace read_stream(std::istream& in, ReadStats* stats = nullptr);

/// Pull-based chunked reader: the same auto-detected parsers as
/// read_stream, but packets are delivered as sealed fixed-size TraceChunks
/// so a file larger than RAM streams through bounded memory. The
/// claim-then-rollback parse semantics (and `truncated` flagging) are
/// identical to the batch path — concatenating every chunk reproduces
/// read_stream's trace bit for bit.
///
/// With Options::budget set, each chunk is charged against the pipeline's
/// MemoryBudget for as long as it lives (TraceChunk releases on
/// destruction), so the reader and the analyzer share one ledger.
struct StreamingOptions {
  std::size_t chunk_packets = net::ChunkedTrace::kDefaultChunkPackets;
  util::MemoryBudget* budget = nullptr;
};

class StreamingReader {
 public:
  using Options = StreamingOptions;

  /// Opens `path`; throws std::runtime_error if unreadable or not a
  /// capture file.
  explicit StreamingReader(const std::string& path, Options opts = {});
  /// Reads from a caller-owned stream (must outlive the reader).
  explicit StreamingReader(std::istream& in, Options opts = {});
  ~StreamingReader();
  StreamingReader(StreamingReader&&) noexcept;
  StreamingReader& operator=(StreamingReader&&) noexcept;

  /// Next sealed chunk, or nullopt at end of input. Throws on malformed
  /// records (same messages as read_stream).
  std::optional<net::TraceChunk> next_chunk();

  /// Cumulative counters over everything parsed so far.
  const ReadStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tapo::pcap
