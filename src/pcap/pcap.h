// Capture-file formats, without a libpcap dependency:
//
//  - classic libpcap (the 24-byte global header + per-record headers,
//    https://wiki.wireshark.org/Development/LibpcapFileFormat) — written
//    and read;
//  - pcapng (SHB/IDB/EPB block structure, the modern Wireshark/tcpdump
//    default) — read-only.
//
// Files are written with LINKTYPE_RAW (raw IPv4/IPv6) and microsecond
// timestamps. The readers additionally accept LINKTYPE_ETHERNET and
// LINKTYPE_NULL/LOOP so real captures can be fed straight into the TAPO
// analyzer, and handle both endiannesses, the nanosecond classic magic,
// and per-interface pcapng timestamp resolutions. The format is
// auto-detected from the leading magic.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "net/trace.h"

namespace tapo::pcap {

struct WriteOptions {
  std::uint32_t snaplen = 65535;
};

/// Serializes `trace` as a pcap file. Payload bytes are synthesized as
/// zeros (the analyzer is payload-agnostic). Throws std::runtime_error on
/// I/O failure.
void write_file(const std::string& path, const net::PacketTrace& trace,
                const WriteOptions& opts = {});
void write_stream(std::ostream& out, const net::PacketTrace& trace,
                  const WriteOptions& opts = {});

struct ReadStats {
  std::size_t records = 0;       // pcap records seen
  std::size_t tcp_packets = 0;   // parsed into the trace
  std::size_t skipped = 0;       // non-IPv4/non-TCP/truncated records
};

/// Parses a capture file (classic pcap or pcapng, auto-detected) into a
/// PacketTrace. Non-TCP records are skipped and counted in ReadStats.
/// Throws std::runtime_error on malformed file header.
net::PacketTrace read_file(const std::string& path, ReadStats* stats = nullptr);
net::PacketTrace read_stream(std::istream& in, ReadStats* stats = nullptr);

}  // namespace tapo::pcap
