// Sender scoreboard: per-transmitted-segment state used for SACK-based loss
// detection and for the Table-2 counters the paper's analysis is built on
// (packets_out, sacked_out, lost_out, retrans_out, holes, in_flight).
//
// Segments are MSS-sized except possibly the last one of a response, so the
// scoreboard is an ordered deque of contiguous ranges; fully acknowledged
// segments are popped from the front. All sequence positions are net::Seq32
// and every ordering decision goes through seq.h's wrap-safe helpers, so the
// scoreboard stays correct when a flow crosses the 2^32 wrap.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "net/seq.h"
#include "net/tcp_header.h"
#include "util/time.h"

namespace tapo::tcp {

using net::Seq32;

struct SegmentState {
  Seq32 start;  // first sequence number
  Seq32 end;    // one past last
  std::uint8_t retrans = 0;           // times retransmitted
  bool sacked = false;
  bool lost = false;                  // marked lost (pending retransmit)
  bool retrans_pending = false;       // retransmitted, not yet acked/re-lost
  bool rto_retransmitted = false;     // ever retransmitted by the native RTO
  bool fast_retransmitted = false;    // ever retransmitted by fast retransmit
  TimePoint first_sent;
  TimePoint last_sent;

  std::uint32_t len() const { return net::distance(start, end); }
  bool was_retransmitted() const { return retrans > 0; }
};

class Scoreboard {
 public:
  /// Records a newly transmitted segment [start, end). Must be contiguous
  /// with the previous segment (start == snd_nxt).
  void on_transmit(Seq32 start, Seq32 end, TimePoint now);

  /// Records a retransmission of the segment containing `seq`.
  /// `rto` marks a native timeout retransmission (vs fast retransmit /
  /// probe). No-op if the segment is not tracked.
  void on_retransmit(Seq32 seq, TimePoint now, bool rto);

  /// Cumulative ACK up to `ack`: drops fully-acked segments. Returns the
  /// acked segments' states for RTT sampling (Karn filtering by caller).
  std::vector<SegmentState> ack_to(Seq32 ack);

  /// Applies SACK blocks; returns the number of newly SACKed segments and
  /// optionally their pre-update states (for SACK-time RTT sampling).
  /// Blocks below snd_una (DSACK) are ignored here.
  std::uint32_t apply_sack(std::span<const net::SackBlock> blocks,
                           Seq32 snd_una,
                           std::vector<SegmentState>* newly_sacked = nullptr);
  std::uint32_t apply_sack(std::initializer_list<net::SackBlock> blocks,
                           Seq32 snd_una,
                           std::vector<SegmentState>* newly_sacked = nullptr) {
    return apply_sack(std::span<const net::SackBlock>(blocks.begin(), blocks.size()),
                      snd_una, newly_sacked);
  }

  /// RFC 6675-style loss marking: an unSACKed segment is lost when at least
  /// `dupthres` SACKed segments lie above it. Returns newly marked count.
  std::uint32_t mark_lost_by_sack(std::uint32_t dupthres);

  /// FACK-style loss marking (Mathis & Mahdavi): an unSACKed segment is
  /// lost when the forward-most SACKed byte is at least `dupthres` *
  /// `mss` bytes above its end — more aggressive than RFC 6675 under
  /// multiple losses in one window. Returns newly marked count.
  std::uint32_t mark_lost_by_fack(std::uint32_t dupthres, std::uint32_t mss);

  /// Highest SACKed sequence (snd_fack); snd_una when nothing is SACKed.
  Seq32 highest_sacked() const;

  /// Marks the head (first unSACKed) segment lost. Returns true if marked.
  bool mark_head_lost();

  /// Marks every unSACKed segment lost (RTO behaviour: "mark all
  /// outstanding packets as lost").
  void mark_all_lost();

  /// Clears lost/retrans flags on segments below `ack` — used on spurious
  /// timeout detection; not needed in normal operation.
  void clear_lost_marks();

  // -- Counters (all in segments, mirroring the kernel variables).
  // Maintained incrementally so every accessor is O(1): the sender queries
  // several per ACK, which would otherwise be quadratic per window. --
  std::uint32_t packets_out() const { return static_cast<std::uint32_t>(segs_.size()); }
  std::uint32_t sacked_out() const { return sacked_out_; }
  std::uint32_t lost_out() const { return lost_out_; }
  std::uint32_t retrans_out() const { return retrans_out_; }
  /// UnSACKed, unlost segments sitting between SACKed ones ("holes").
  /// O(packets_out); used by analysis, not the per-ACK fast path.
  std::uint32_t holes() const;
  /// in_flight = packets_out + retrans_out - (sacked_out + lost_out)  (Eq. 1)
  std::uint32_t in_flight() const;

  /// First / last segment not yet SACKed, or nullptr. The head is both the
  /// RTO base and the S-RTO probe target; the tail is TLP's probe target.
  const SegmentState* first_unsacked() const;
  const SegmentState* last_unsacked() const;

  bool empty() const { return segs_.empty(); }
  Seq32 snd_una() const { return segs_.empty() ? next_start_ : segs_.front().start; }
  Seq32 snd_nxt() const { return next_start_; }

  /// First segment marked lost and not yet retransmitted since marking, or
  /// nullopt. ("Not yet" = lost && !currently counted in retrans_out.)
  std::optional<Seq32> next_lost_to_retransmit() const;

  const SegmentState* find(Seq32 seq) const;
  const SegmentState* head() const { return segs_.empty() ? nullptr : &segs_.front(); }
  const SegmentState* tail() const { return segs_.empty() ? nullptr : &segs_.back(); }
  const std::deque<SegmentState>& segments() const { return segs_; }

 private:
  SegmentState* find_mut(Seq32 seq);

  void set_sacked(SegmentState& s);
  void set_lost(SegmentState& s);
  void clear_retrans_pending(SegmentState& s);

  std::deque<SegmentState> segs_;
  Seq32 next_start_;  // snd_nxt
  bool started_ = false;
  std::uint32_t sacked_out_ = 0;
  std::uint32_t lost_out_ = 0;
  std::uint32_t retrans_out_ = 0;
};

}  // namespace tapo::tcp
