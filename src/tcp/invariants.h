// Runtime TCP invariant monitor: a zero-cost-when-off observer over the
// sender, receiver, scoreboard, RTO estimator, and congestion state.
//
// Every hook is a pure *read* of the observed component (enforced by the
// tapo_lint `invariant-pure` rule — only const references to protocol
// objects may appear in this file) plus counter bumps inside the monitor
// itself, so enabling the monitor can never change protocol behavior: a
// chaos run with and without the monitor produces bit-identical traces.
//
// Violations are reported, never fatal: counters
// (`tapo_invariant_violations_total{kind}`), a bounded recent-violations
// ring for diagnostics, and a per-flow tally via FlowScope. Aborting inside
// a 1000-scenario storm would hide every violation after the first; the
// differential harness gates on the counters instead.
//
// The invariant catalog (DESIGN.md §16):
//   sequence/ACK accounting   never retransmit already-ACKed bytes,
//                             snd_una <= snd_nxt <= write_seq(+FIN)
//   scoreboard consistency    incremental sacked/lost/retrans counters match
//                             a deep recount; ranges stay contiguous;
//                             sacked+lost <= packets+retrans (Eq. 1 safety)
//   cwnd/ssthresh bounds      cwnd >= 1 always; ssthresh >= 2 outside the
//                             initial no-loss state
//   RTO discipline            rto in [min_rto, max_rto] (200 ms floor),
//                             backoff never shrinks the RTO
//   S-RTO Algorithm 1         probe armed only under the arming
//                             preconditions; cwnd halved on probe only when
//                             cwnd > T2 and not already in Recovery
//   persist liveness          zero-window with pending data always keeps a
//                             timer armed (no silent deadlock), interval
//                             bounded by max(60 s, RTO)
//   receiver sanity           rcv_nxt never regresses; out-of-order blocks
//                             stay sorted/disjoint/above rcv_nxt; emitted
//                             ACKs carry rcv_nxt and well-formed SACKs
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/seq.h"
#include "tcp/receiver.h"
#include "tcp/scoreboard.h"
#include "tcp/sender.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/time.h"

namespace tapo::tcp {

enum class InvariantKind : std::uint8_t {
  kRetransmitAckedData = 0,  // retransmission target below snd_una
  kSequenceOrder,            // snd_una <= snd_nxt <= write_seq(+FIN) broken
  kScoreboardAccounting,     // counter/recount mismatch or range overlap
  kCwndBounds,               // cwnd < 1
  kSsthreshBounds,           // ssthresh < 2
  kRtoRange,                 // rto outside [min_rto, max_rto]
  kRtoBackoffRegressed,      // backoff produced a smaller RTO
  kSrtoArming,               // probe armed outside Alg. 1 preconditions
  kSrtoCwndGuard,            // probe halved cwnd though cwnd <= T2/in Recovery
  kPersistLiveness,          // zero-window with pending data, no timer armed
  kPersistIntervalRange,     // persist interval above max(60 s, RTO)
  kRcvNxtRegression,         // receiver's rcv_nxt moved backwards
  kOooBookkeeping,           // ooo blocks unsorted/overlapping/below rcv_nxt
  kAckSpecInvalid,           // emitted ACK != rcv_nxt or malformed SACKs
  kKindCount,
};

const char* to_string(InvariantKind k);

/// One reported violation (diagnostics ring; counters are the gate).
struct InvariantViolation {
  InvariantKind kind = InvariantKind::kKindCount;
  std::uint64_t flow = 0;     // FlowScope id active at report time
  std::uint32_t seq = 0;      // raw Seq32 most relevant to the violation
  std::int64_t event_time_us = 0;
};

namespace detail {
// On/off flag mirrors telemetry::metrics_enabled(): an on/off latch with no
// ordering relationship to any other data, checked on every TCP event.
inline std::atomic<bool> g_invariants_enabled{false};
}  // namespace detail

class InvariantMonitor {
 public:
  /// Fast path, checked by every hook before doing any work.
  static bool enabled() {
    // tapo-lint: allow(relaxed-atomic) — same latch as metrics_enabled()
    return detail::g_invariants_enabled.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    // tapo-lint: allow(relaxed-atomic) — same latch as metrics_enabled()
    detail::g_invariants_enabled.store(on, std::memory_order_relaxed);
  }

  /// RAII per-flow attribution. Thread-local: a flow runs its whole life on
  /// one worker thread (ParallelRunner contract), so hooks need no plumbing
  /// of flow ids through the protocol layers.
  class FlowScope {
   public:
    explicit FlowScope(std::uint64_t flow_id);
    ~FlowScope();
    FlowScope(const FlowScope&) = delete;
    FlowScope& operator=(const FlowScope&) = delete;
    /// Violations reported since this scope was entered.
    std::uint64_t violations() const;

   private:
    std::uint64_t prev_id_;
    std::uint64_t prev_count_;
  };

  /// Records one violation: global + per-kind + per-flow counters, the
  /// telemetry counter tapo_invariant_violations_total{kind}, a trace
  /// event, and the bounded recent ring.
  static void report(InvariantKind kind, std::uint32_t seq_raw,
                     std::int64_t event_time_us);

  static std::uint64_t total_violations();
  static std::uint64_t violations(InvariantKind kind);
  /// Copy of the bounded most-recent-violations ring (diagnostics).
  static std::vector<InvariantViolation> recent();
  /// Clears counters and the ring (test isolation); leaves enabled() as is.
  static void reset();
};

// ---------------------------------------------------------------- hooks --
// Call sites in sender.cc / receiver.cc go through these. The inline guard
// keeps the off-path to one relaxed load; the _slow functions (invariants.cc)
// do the actual checking.
namespace invariants {

void sender_event_slow(const TcpSender& s, TimePoint now);
void retransmit_slow(const TcpSender& s, net::Seq32 seq, TimePoint now);
void srto_armed_slow(const TcpSender& s, Duration probe, TimePoint now);
void srto_fired_slow(const TcpSender& s, std::uint32_t cwnd_before,
                     CaState state_before, TimePoint now);
void rto_backoff_slow(const TcpSender& s, Duration old_rto, TimePoint now);
void timer_rearmed_slow(const TcpSender& s, TimePoint now);
void receiver_data_slow(const TcpReceiver& r, net::Seq32 prev_rcv_nxt,
                        TimePoint now);
void ack_spec_slow(const TcpReceiver& r, const TcpReceiver::AckSpec& spec,
                   TimePoint now);

/// Full post-event consistency sweep: sequence order, scoreboard recount,
/// cwnd/ssthresh bounds, RTO range.
inline void on_sender_event(const TcpSender& s, TimePoint now) {
  if (InvariantMonitor::enabled()) sender_event_slow(s, now);
}
/// About to retransmit the segment starting at `seq`.
inline void on_retransmit(const TcpSender& s, net::Seq32 seq, TimePoint now) {
  if (InvariantMonitor::enabled()) retransmit_slow(s, seq, now);
}
/// An S-RTO probe timer is being armed for `probe` from now.
inline void on_srto_armed(const TcpSender& s, Duration probe, TimePoint now) {
  if (InvariantMonitor::enabled()) srto_armed_slow(s, probe, now);
}
/// An S-RTO probe just fired; `cwnd_before`/`state_before` snapshot the
/// window before the conditional halving.
inline void on_srto_fired(const TcpSender& s, std::uint32_t cwnd_before,
                          CaState state_before, TimePoint now) {
  if (InvariantMonitor::enabled()) {
    srto_fired_slow(s, cwnd_before, state_before, now);
  }
}
/// The RTO estimator just backed off; `old_rto` is the pre-backoff value.
inline void on_rto_backoff(const TcpSender& s, Duration old_rto,
                           TimePoint now) {
  if (InvariantMonitor::enabled()) rto_backoff_slow(s, old_rto, now);
}
/// rearm_timer() completed: check liveness (a sender with outstanding or
/// blocked work must keep some timer armed).
inline void on_timer_rearmed(const TcpSender& s, TimePoint now) {
  if (InvariantMonitor::enabled()) timer_rearmed_slow(s, now);
}
/// Receiver consumed a data segment; `prev_rcv_nxt` is rcv_nxt on entry.
inline void on_receiver_data(const TcpReceiver& r, net::Seq32 prev_rcv_nxt,
                             TimePoint now) {
  if (InvariantMonitor::enabled()) receiver_data_slow(r, prev_rcv_nxt, now);
}
/// Receiver is about to emit `spec`.
inline void on_ack_spec(const TcpReceiver& r,
                        const TcpReceiver::AckSpec& spec, TimePoint now) {
  if (InvariantMonitor::enabled()) ack_spec_slow(r, spec, now);
}

}  // namespace invariants

// ---------------------------------------------- delivery integrity -------

/// Result of a DeliveryTracker run; intact() is the per-flow byte-stream
/// integrity gate (the chaos storm requires it for every completed flow).
struct DeliverySummary {
  std::uint64_t expected_bytes = 0;
  std::uint64_t in_order_bytes = 0;    // contiguously delivered from start
  std::uint64_t hole_ranges = 0;       // out-of-order islands never filled
  std::uint64_t duplicate_segments = 0;
  std::uint64_t expected_hash = 0;     // hash of the ideal sent stream
  std::uint64_t delivered_hash = 0;    // hash of the reassembled stream
  bool intact() const {
    return in_order_bytes == expected_bytes && hole_ranges == 0 &&
           delivered_hash == expected_hash;
  }
};

/// Shadow reassembler fed from the packets the client link actually
/// delivered (after chaos). The simulation carries no payload bytes, so
/// stream content is a pure function of stream offset; the tracker hashes
/// that synthetic content in delivery order and finalize() compares it to
/// the hash of the ideal stream. A receiver that silently skips a hole (or
/// a link that delivers bytes twice into the cursor) diverges the hash even
/// though byte *counts* match — that is the point.
class DeliveryTracker {
 public:
  /// `first_byte` is the sequence number of stream offset 0 (server ISN+1).
  explicit DeliveryTracker(net::Seq32 first_byte);

  /// Records a delivered data segment [seq, seq+len). Duplicates and
  /// overlaps are tolerated (counted); FIN/SYN are not data.
  void on_data(net::Seq32 seq, std::uint32_t len);

  /// `expected_stream_bytes` is the total response-byte count the server
  /// was asked to produce.
  DeliverySummary finalize(std::uint64_t expected_stream_bytes) const;

  /// FNV-1a over the synthetic content of stream bytes [0, bytes).
  static std::uint64_t stream_hash(std::uint64_t bytes);

 private:
  void advance_cursor(net::Seq32 end);

  net::Seq32 cursor_seq_;
  std::uint64_t cursor_off_ = 0;
  std::uint64_t hash_;
  std::vector<net::SackBlock> ooo_;
  std::uint64_t dups_ = 0;
};

}  // namespace tapo::tcp
