#include "tcp/sender.h"

#include <algorithm>
#include <cassert>

#include "tcp/invariants.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace tapo::tcp {

using telemetry::EventKind;

void TcpSender::note_segment(const SegmentOut& out) {
  TAPO_TRACE(EventKind::kSegmentTx, sim_.now().us(), out.seq.raw(),
             static_cast<std::uint64_t>(out.len) |
                 (out.retransmission ? 1ull << 63 : 0));
  if (telemetry::metrics_enabled()) {
    static auto& segments =
        telemetry::Registry::instance().counter("tapo_tcp_segments_total");
    segments.add(1);
    if (out.retransmission) {
      static auto& retrans = telemetry::Registry::instance().counter(
          "tapo_tcp_retransmissions_total");
      retrans.add(1);
    }
  }
}

void TcpSender::trace_window() {
  if (!telemetry::tracing_enabled()) return;
  if (cwnd_ != traced_cwnd_ || ssthresh_ != traced_ssthresh_) {
    traced_cwnd_ = cwnd_;
    traced_ssthresh_ = ssthresh_;
    TAPO_TRACE(EventKind::kCwnd, sim_.now().us(), cwnd_, ssthresh_);
  }
  if (state_ != traced_state_) {
    traced_state_ = state_;
    TAPO_TRACE(EventKind::kCaState, sim_.now().us(),
               static_cast<std::uint64_t>(state_), 0);
  }
}

TcpSender::TcpSender(sim::Simulator& sim, SenderConfig config, SendSegmentFn send)
    : sim_(sim),
      config_(config),
      send_(std::move(send)),
      rto_(config.rto),
      cc_(make_congestion_control(config.cc)),
      timer_(sim, [this] { on_timer_fire(); }),
      pace_timer_(sim, [this] {
        try_send();
        rearm_timer();
      }) {
  cwnd_ = config_.init_cwnd;
  dupthres_ = config_.dupthres;
}

void TcpSender::start(Seq32 isn) {
  isn_ = isn;
  snd_una_ = isn;
  snd_nxt_ = isn;
  write_seq_ = isn;
  started_ = true;
}

void TcpSender::app_write(std::uint64_t bytes) {
  assert(started_ && !fin_pending_);
  write_seq_ = net::advance(write_seq_, bytes);
  try_send();
  rearm_timer();
}

void TcpSender::app_close() {
  fin_pending_ = true;
  try_send();
  rearm_timer();
  check_done();
}

std::uint32_t TcpSender::send_window_segments() const {
  std::uint32_t quota = 0;
  if (state_ == CaState::kDisorder && config_.limited_transmit) {
    quota = std::min<std::uint32_t>(dupacks_, 2);
  }
  return cwnd_ + quota;
}

bool TcpSender::can_send_new() const {
  const bool data_left = net::before(snd_nxt_, write_seq_);
  const bool fin_left = fin_pending_ && !fin_sent_ && snd_nxt_ == write_seq_;
  if (!data_left && !fin_left) return false;
  if (board_.in_flight() >= send_window_segments()) return false;
  // Receive window: need room for at least one new byte (FIN needs none in
  // practice, but we keep it symmetric and let the persist path handle 0).
  // Wrap-safe: compare the bytes already in the window against rwnd rather
  // than materializing the (wrapping) right window edge.
  if (data_left && net::distance(snd_una_, snd_nxt_) >= rwnd_bytes_) {
    return false;
  }
  return true;
}

bool TcpSender::send_new_segment() {
  if (net::before(snd_nxt_, write_seq_)) {
    // Window room left after the bytes already in flight ([una, nxt)).
    const std::uint32_t in_window = net::distance(snd_una_, snd_nxt_);
    const std::uint32_t wnd_room =
        rwnd_bytes_ > in_window ? rwnd_bytes_ - in_window : 0;
    std::uint32_t len =
        std::min(config_.mss, net::distance(snd_nxt_, write_seq_));
    len = std::min(len, wnd_room);
    if (len == 0) return false;
    board_.on_transmit(snd_nxt_, snd_nxt_ + len, sim_.now());
    SegmentOut out;
    out.seq = snd_nxt_;
    out.len = len;
    snd_nxt_ += len;
    ++stats_.segments_sent;
    stats_.bytes_sent += len;
    note_segment(out);
    send_(out);
    return true;
  }
  if (fin_pending_ && !fin_sent_ && snd_nxt_ == write_seq_) {
    fin_seq_ = snd_nxt_;
    board_.on_transmit(snd_nxt_, snd_nxt_ + 1, sim_.now());
    snd_nxt_ += 1;
    fin_sent_ = true;
    SegmentOut out;
    out.seq = fin_seq_;
    out.len = 0;
    out.fin = true;
    note_segment(out);
    send_(out);
    return true;
  }
  return false;
}

void TcpSender::retransmit(Seq32 seq, bool rto_retrans) {
  const SegmentState* seg = board_.find(seq);
  if (seg == nullptr) return;
  invariants::on_retransmit(*this, seg->start, sim_.now());
  const bool is_fin = fin_sent_ && seg->start == fin_seq_;
  SegmentOut out;
  out.seq = seg->start;
  out.len = is_fin ? 0 : seg->len();
  out.fin = is_fin;
  out.retransmission = true;
  board_.on_retransmit(seq, sim_.now(), rto_retrans);
  ++stats_.segments_sent;
  ++stats_.retransmissions;
  stats_.bytes_sent += out.len;
  if (!rto_retrans && state_ == CaState::kRecovery) ++stats_.fast_retransmits;
  note_segment(out);
  send_(out);
}

void TcpSender::retransmit_pending_lost() {
  while (board_.in_flight() < cwnd_ || force_one_retransmit_) {
    const auto seq = board_.next_lost_to_retransmit();
    if (!seq) break;
    force_one_retransmit_ = false;
    retransmit(*seq, /*rto_retrans=*/state_ == CaState::kLoss);
  }
  force_one_retransmit_ = false;
}

Duration TcpSender::pacing_interval() const {
  const Duration gap = rto_.srtt() / std::max<std::uint32_t>(cwnd_, 1);
  return std::max(gap, config_.pacing_min_gap);
}

void TcpSender::try_send() {
  if (!started_ || finished_) return;
  // Retransmissions are never paced: recovery latency matters more than
  // burst smoothing, and there is at most a window of them.
  retransmit_pending_lost();
  const bool pace = config_.pacing && rto_.has_sample();
  bool pacing_blocked = false;
  while (can_send_new()) {
    if (pace && sim_.now() < pace_next_) {
      pace_timer_.arm(pace_next_ - sim_.now());
      pacing_blocked = true;
      break;
    }
    if (!send_new_segment()) break;
    if (pace) pace_next_ = sim_.now() + pacing_interval();
  }
  const bool data_left =
      net::before(snd_nxt_, write_seq_) || (fin_pending_ && !fin_sent_);
  // Pacing-gated rounds still count as window-limited for cwnd growth —
  // the application is not the bottleneck, the pacer is.
  cwnd_limited_ =
      data_left &&
      (pacing_blocked || board_.in_flight() >= send_window_segments());
}

void TcpSender::enter_recovery() {
  state_ = CaState::kRecovery;
  high_seq_ = snd_nxt_;
  ssthresh_ = cc_->ssthresh(cwnd_);
  cc_->on_loss_event(sim_.now());
  prr_ack_counter_ = 0;
  force_one_retransmit_ = true;
}

void TcpSender::maybe_complete_recovery() {
  if (net::before(snd_una_, high_seq_)) return;
  if (state_ == CaState::kRecovery) {
    // tcp_complete_cwr: settle at ssthresh.
    cwnd_ = std::min(cwnd_, std::max<std::uint32_t>(ssthresh_, 2));
  }
  state_ = CaState::kOpen;
  dupacks_ = 0;
  undo_armed_ = false;
  board_.clear_lost_marks();
}

void TcpSender::on_ack(Seq32 ack, std::uint32_t rwnd_bytes,
                       std::span<const net::SackBlock> sack_blocks,
                       std::optional<net::SackBlock> dsack, bool carries_data) {
  if (!started_ || finished_) return;
  TAPO_TRACE(EventKind::kAckRx, sim_.now().us(), ack.raw(), rwnd_bytes);
  const bool was_cwnd_limited = cwnd_limited_;
  const std::uint32_t prev_rwnd = rwnd_bytes_;
  rwnd_bytes_ = rwnd_bytes;
  if (rwnd_bytes == 0 && !zero_window_) {
    zero_window_ = true;
    zero_window_seq_ = snd_nxt_;
    ++stats_.zero_window_episodes;
  } else if (rwnd_bytes > 0 && zero_window_) {
    zero_window_ = false;
    persist_interval_ = Duration::zero();
  }

  if (dsack) {
    ++stats_.dsacks_received;
    // A DSACK proves a retransmission was spurious: the network reordered
    // or delayed rather than dropped. Grow dupthres so future reordering of
    // that extent no longer triggers fast retransmit (§3.1).
    if (config_.adapt_dupthres && dupthres_ < config_.max_dupthres) ++dupthres_;
    maybe_undo_spurious_rto(dsack);
    // Adaptive S-RTO verdict: the DSACK covers a recently probed range ->
    // that probe was unnecessary; stretch the probe timer.
    if (config_.srto.adaptive) {
      for (auto it = probed_ranges_.begin(); it != probed_ranges_.end(); ++it) {
        if (net::before(dsack->start, it->end) &&
            net::after(dsack->end, it->start)) {
          ++stats_.srto_spurious_probes;
          srto_backoff_level_ =
              std::min(srto_backoff_level_ + 1, config_.srto.max_backoff_level);
          probed_ranges_.erase(it);
          break;
        }
      }
    }
  }

  std::vector<SegmentState> sack_samples;
  const std::uint32_t newly_sacked =
      board_.apply_sack(sack_blocks, snd_una_, &sack_samples);
  // SACK-time RTT sampling (tcp_sacktag_write_queue does the same): a SACK
  // pinpoints the delivery time of an out-of-order segment.
  {
    TimePoint newest;
    bool have = false;
    for (const auto& s : sack_samples) {
      if (!s.was_retransmitted() && (!have || s.first_sent > newest)) {
        newest = s.first_sent;
        have = true;
      }
    }
    if (have) rto_.sample(sim_.now() - newest);
  }
  const bool ack_advanced = net::after(ack, snd_una_);
  std::uint32_t n_acked = 0;

  if (ack_advanced) {
    const auto acked = board_.ack_to(ack);
    n_acked = static_cast<std::uint32_t>(acked.size());
    // RTT sample: Karn's rule (skip retransmitted segments), skip segments
    // already SACKed (they were delivered long before this cumulative ACK),
    // and take the most recently sent candidate.
    TimePoint newest;
    bool have = false;
    for (const auto& s : acked) {
      if (!s.was_retransmitted() && !s.sacked &&
          (!have || s.first_sent > newest)) {
        newest = s.first_sent;
        have = true;
      }
    }
    if (have) rto_.sample(sim_.now() - newest);
    snd_una_ = ack;
    dupacks_ = 0;
    tlp_probe_outstanding_ = false;
    // Adaptive S-RTO verdict: a probed range acked without a DSACK means
    // the probe did its job; relax the probe timer.
    if (config_.srto.adaptive) {
      while (!probed_ranges_.empty() &&
             net::at_or_before(probed_ranges_.front().end, ack)) {
        srto_backoff_level_ = std::max(srto_backoff_level_ - 1, 0);
        probed_ranges_.pop_front();
      }
    }
  } else if (!carries_data && board_.packets_out() > 0 &&
             (newly_sacked > 0 || rwnd_bytes == prev_rwnd)) {
    ++dupacks_;
  }

  switch (state_) {
    case CaState::kOpen:
    case CaState::kDisorder: {
      state_ = (dupacks_ > 0 || board_.sacked_out() > 0) ? CaState::kDisorder
                                                         : CaState::kOpen;
      const std::uint32_t newly_lost =
          config_.fack ? board_.mark_lost_by_fack(dupthres_, config_.mss)
                       : board_.mark_lost_by_sack(dupthres_);
      bool enter = newly_lost > 0 ||
                   (dupacks_ >= dupthres_ && board_.packets_out() > 0);
      if (!enter && config_.early_retransmit && board_.packets_out() > 0 &&
          board_.packets_out() < 4 && net::at_or_after(snd_nxt_, write_seq_)) {
        // RFC 5827: with < 4 outstanding and no new data, lower the dup
        // threshold to packets_out - 1 (min 1).
        const std::uint32_t er = std::max<std::uint32_t>(
            1, board_.packets_out() > 0 ? board_.packets_out() - 1 : 1);
        enter = dupacks_ >= er || board_.sacked_out() >= er;
      }
      if (enter) {
        if (board_.lost_out() == 0) board_.mark_head_lost();
        enter_recovery();
      }
      if ((state_ == CaState::kOpen || state_ == CaState::kDisorder) &&
          ack_advanced && was_cwnd_limited) {
        cwnd_ = cc_->on_ack(cwnd_, ssthresh_, n_acked, sim_.now(), rto_.srtt());
      }
      break;
    }
    case CaState::kRecovery: {
      if (config_.fack) {
        board_.mark_lost_by_fack(dupthres_, config_.mss);
      } else {
        board_.mark_lost_by_sack(dupthres_);
      }
      if (ack_advanced && net::before(snd_una_, high_seq_) &&
          board_.packets_out() > 0) {
        // NewReno partial ACK: the next unSACKed hole is lost, and its
        // retransmission goes out immediately.
        if (board_.lost_out() == 0) board_.mark_head_lost();
        force_one_retransmit_ = true;
      }
      // Rate halving: shave one segment every second ACK until ssthresh
      // ("reduces cwnd by one segment for each second incoming ACK, until
      // cwnd is halved", §3.1).
      ++prr_ack_counter_;
      if (prr_ack_counter_ % 2 == 0 && cwnd_ > ssthresh_) --cwnd_;
      maybe_complete_recovery();
      break;
    }
    case CaState::kLoss: {
      if (ack_advanced) {
        cwnd_ = cc_->on_ack(cwnd_, ssthresh_, n_acked, sim_.now(), rto_.srtt());
      }
      maybe_complete_recovery();
      break;
    }
  }

  trace_window();
  try_send();
  rearm_timer();
  invariants::on_sender_event(*this, sim_.now());
  check_done();
}

void TcpSender::maybe_undo_spurious_rto(
    const std::optional<net::SackBlock>& dsack) {
  if (!config_.spurious_rto_undo || !undo_armed_ || !dsack) return;
  if (state_ != CaState::kLoss) return;
  // The DSACK must report the segment the RTO retransmitted: the original
  // made it after all, so the collapse to cwnd=1 was unnecessary.
  if (net::after(dsack->start, undo_seq_) ||
      net::at_or_before(dsack->end, undo_seq_)) {
    return;
  }
  undo_armed_ = false;
  ++stats_.spurious_rto_undos;
  cwnd_ = undo_cwnd_;
  ssthresh_ = undo_ssthresh_;
  state_ = CaState::kOpen;
  dupacks_ = 0;
  board_.clear_lost_marks();
}

Duration TcpSender::tlp_pto() const {
  if (!rto_.has_sample()) return rto_.rto();
  Duration pto = rto_.srtt() * 2;
  if (board_.packets_out() == 1) {
    pto = std::max(pto, rto_.srtt() * 1.5 + config_.tlp_delack_allowance);
  }
  pto = std::max(pto, config_.tlp_min_pto);
  return std::min(pto, rto_.rto());
}

void TcpSender::rearm_timer() {
  rearm_timer_impl();
  invariants::on_timer_rearmed(*this, sim_.now());
}

void TcpSender::rearm_timer_impl() {
  if (finished_) {
    timer_.cancel();
    timer_mode_ = TimerMode::kNone;
    return;
  }
  // Persist mode: the peer window is closed and everything sent *before*
  // the episode is acked — only window probes (if any) are outstanding.
  // They are governed by the doubling persist timer, not the RTO, so a
  // long-closed window never collapses cwnd.
  // An empty scoreboard trivially satisfies the "everything pre-episode is
  // acked" condition; checking it explicitly also sidesteps snd_una()'s
  // meaningless default before the first transmission (a zero window can
  // arrive that early when a hostile path rewrites the handshake ACK).
  const bool persist_mode =
      zero_window_ &&
      (net::before(snd_nxt_, write_seq_) || (fin_pending_ && !fin_sent_) ||
       board_.packets_out() > 0) &&
      (board_.empty() ||
       net::at_or_after(board_.snd_una(), zero_window_seq_));
  if (persist_mode) {
    if (timer_mode_ != TimerMode::kPersist || !timer_.armed()) {
      persist_interval_ = persist_interval_ == Duration::zero()
                              ? rto_.rto()
                              : std::min(persist_interval_ * 2,
                                         Duration::seconds(60.0));
      timer_mode_ = TimerMode::kPersist;
      timer_.arm(persist_interval_);
    }
    return;
  }

  if (board_.packets_out() == 0) {
    timer_.cancel();
    timer_mode_ = TimerMode::kNone;
    return;
  }

  // The head (first unSACKed) segment is both the RTO base time and the
  // S-RTO arming condition key.
  const SegmentState* head = board_.first_unsacked();

  // S-RTO (Algorithm 1, set_srto): probe timer 2*RTT when the head packet
  // has not been retransmitted by the native RTO and packets_out < T1.
  if (config_.recovery == RecoveryMechanism::kSrto && head != nullptr &&
      !head->rto_retransmitted && board_.packets_out() < config_.srto.t1 &&
      rto_.has_sample()) {
    double mult = config_.srto.probe_rtt_mult;
    if (config_.srto.adaptive) {
      mult *= 1.0 + config_.srto.backoff_step *
                        static_cast<double>(srto_backoff_level_);
    }
    const Duration probe = rto_.srtt() * mult;
    if (probe < rto_.rto()) {
      invariants::on_srto_armed(*this, probe, sim_.now());
      timer_mode_ = TimerMode::kSrtoProbe;
      timer_.arm(probe);
      return;
    }
  }

  // TLP: only in Open state, one probe per episode.
  if (config_.recovery == RecoveryMechanism::kTlp &&
      state_ == CaState::kOpen && !tlp_probe_outstanding_ &&
      rto_.has_sample()) {
    const Duration pto = tlp_pto();
    if (pto < rto_.rto()) {
      timer_mode_ = TimerMode::kTlpProbe;
      timer_.arm(pto);
      return;
    }
  }

  // Native RTO, based on the head segment's last transmission time
  // (tcp_rearm_rto): the timer covers the oldest outstanding data.
  Duration delay = rto_.rto();
  if (head != nullptr) {
    const Duration elapsed = sim_.now() - head->last_sent;
    delay = std::max(delay - elapsed, Duration::millis(1));
  }
  timer_mode_ = TimerMode::kRto;
  timer_.arm(delay);
}

void TcpSender::on_timer_fire() {
  const TimerMode mode = timer_mode_;
  timer_mode_ = TimerMode::kNone;
  switch (mode) {
    case TimerMode::kRto: fire_rto(); break;
    case TimerMode::kTlpProbe: fire_tlp(); break;
    case TimerMode::kSrtoProbe: fire_srto(); break;
    case TimerMode::kPersist: fire_persist(); break;
    case TimerMode::kNone: break;
  }
}

void TcpSender::fire_rto() {
  if (board_.packets_out() == 0) {
    rearm_timer();
    return;
  }
  ++stats_.rto_fires;
  TAPO_TRACE(EventKind::kRtoFire, sim_.now().us(), rto_.rto().us(),
             board_.packets_out());
  if (telemetry::metrics_enabled()) {
    static auto& rto_fires =
        telemetry::Registry::instance().counter("tapo_tcp_rto_fires_total");
    rto_fires.add(1);
  }
  if (state_ != CaState::kLoss) {
    // Save the pre-collapse window for a potential spurious-RTO undo.
    if (config_.spurious_rto_undo) {
      undo_cwnd_ = cwnd_;
      undo_ssthresh_ = ssthresh_;
      undo_seq_ = board_.snd_una();
      undo_armed_ = true;
    }
    ssthresh_ = cc_->ssthresh(cwnd_);
    cc_->on_loss_event(sim_.now());
  }
  state_ = CaState::kLoss;
  high_seq_ = snd_nxt_;
  board_.mark_all_lost();
  dupacks_ = 0;
  cwnd_ = 1;
  const Duration pre_backoff_rto = rto_.rto();
  rto_.backoff();
  invariants::on_rto_backoff(*this, pre_backoff_rto, sim_.now());
  trace_window();
  retransmit_pending_lost();  // cwnd 1 -> retransmits exactly the head
  timer_mode_ = TimerMode::kRto;
  timer_.arm(rto_.rto());
  invariants::on_sender_event(*this, sim_.now());
}

void TcpSender::fire_tlp() {
  if (board_.packets_out() == 0) {
    rearm_timer();
    return;
  }
  ++stats_.tlp_probes;
  TAPO_TRACE(EventKind::kTlpProbe, sim_.now().us(), snd_nxt_.raw(),
             board_.packets_out());
  if (telemetry::metrics_enabled()) {
    static auto& tlp_probes =
        telemetry::Registry::instance().counter("tapo_tcp_tlp_probes_total");
    tlp_probes.add(1);
  }
  tlp_probe_outstanding_ = true;
  // Probe with new data when possible, else re-send the tail segment.
  const bool sent_new = can_send_new() && send_new_segment();
  if (!sent_new) {
    if (const SegmentState* tail = board_.last_unsacked()) {
      retransmit(tail->start, /*rto_retrans=*/false);
    }
  }
  timer_mode_ = TimerMode::kRto;
  timer_.arm(rto_.rto());
}

void TcpSender::fire_srto() {
  if (board_.packets_out() == 0) {
    rearm_timer();
    return;
  }
  // Algorithm 1, trigger_srto: retransmit the first unacknowledged packet;
  // conditionally halve cwnd; enter Recovery; fall back to the native RTO.
  ++stats_.srto_probes;
  TAPO_TRACE(EventKind::kSrtoProbe, sim_.now().us(), snd_una_.raw(),
             board_.packets_out());
  if (telemetry::metrics_enabled()) {
    static auto& srto_probes =
        telemetry::Registry::instance().counter("tapo_tcp_srto_probes_total");
    srto_probes.add(1);
  }
  const SegmentState* head = board_.first_unsacked();
  if (head != nullptr) {
    if (config_.srto.adaptive) {
      probed_ranges_.push_back({head->start, head->end});
      if (probed_ranges_.size() > 16) probed_ranges_.pop_front();
    }
    retransmit(head->start, /*rto_retrans=*/false);
  }
  const std::uint32_t cwnd_before = cwnd_;
  const CaState state_before = state_;
  if (cwnd_ > config_.srto.t2 && state_ != CaState::kRecovery) {
    cwnd_ = std::max<std::uint32_t>(cwnd_ / 2, 1);
    ssthresh_ = std::max<std::uint32_t>(cwnd_, 2);
  }
  if (state_ != CaState::kRecovery) {
    state_ = CaState::kRecovery;
    high_seq_ = snd_nxt_;
    prr_ack_counter_ = 0;
  }
  invariants::on_srto_fired(*this, cwnd_before, state_before, sim_.now());
  trace_window();
  timer_mode_ = TimerMode::kRto;
  timer_.arm(rto_.rto());
  invariants::on_sender_event(*this, sim_.now());
}

void TcpSender::fire_persist() {
  ++stats_.persist_probes;
  TAPO_TRACE(EventKind::kPersistProbe, sim_.now().us(), snd_nxt_.raw(),
             rwnd_bytes_);
  if (telemetry::metrics_enabled()) {
    static auto& persist_probes = telemetry::Registry::instance().counter(
        "tapo_tcp_persist_probes_total");
    persist_probes.add(1);
  }
  // Zero-window probe: one byte of new data keeps the connection alive and
  // solicits the receiver's current window. If the previous probe byte is
  // still unacked, re-send it instead of consuming more sequence space.
  if (board_.packets_out() > 0) {
    if (const SegmentState* head = board_.head()) {
      retransmit(head->start, /*rto_retrans=*/false);
    }
  } else if (net::before(snd_nxt_, write_seq_)) {
    board_.on_transmit(snd_nxt_, snd_nxt_ + 1, sim_.now());
    SegmentOut out;
    out.seq = snd_nxt_;
    out.len = 1;
    snd_nxt_ += 1;
    ++stats_.segments_sent;
    stats_.bytes_sent += 1;
    note_segment(out);
    send_(out);
  }
  rearm_timer();
}

void TcpSender::check_done() {
  if (finished_ || !fin_pending_ || !fin_sent_) return;
  if (net::at_or_after(snd_una_, fin_seq_ + 1)) {
    finished_ = true;
    timer_.cancel();
    timer_mode_ = TimerMode::kNone;
    if (done_) done_();
  }
}

}  // namespace tapo::tcp
