// Shared TCP model types.
#pragma once

#include <cstdint>
#include <string>

namespace tapo::tcp {

/// Linux congestion-avoidance machine states (paper §3.1, Fig. 4).
enum class CaState : std::uint8_t { kOpen, kDisorder, kRecovery, kLoss };

inline const char* to_string(CaState s) {
  switch (s) {
    case CaState::kOpen: return "Open";
    case CaState::kDisorder: return "Disorder";
    case CaState::kRecovery: return "Recovery";
    case CaState::kLoss: return "Loss";
  }
  return "?";
}

/// Loss-recovery add-on active at the sender (paper §5: Native Linux vs
/// TLP vs S-RTO, switched per experiment like the sysctl in the paper).
enum class RecoveryMechanism : std::uint8_t { kNative, kTlp, kSrto };

inline const char* to_string(RecoveryMechanism m) {
  switch (m) {
    case RecoveryMechanism::kNative: return "Linux";
    case RecoveryMechanism::kTlp: return "TLP";
    case RecoveryMechanism::kSrto: return "S-RTO";
  }
  return "?";
}

enum class CcAlgo : std::uint8_t { kReno, kCubic };

}  // namespace tapo::tcp
