#include "tcp/rto.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace tapo::tcp {

void RtoEstimator::sample(Duration rtt) {
  if (rtt < Duration::micros(1)) rtt = Duration::micros(1);
  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT = R, RTTVAR = R/2.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298 (2.3): alpha = 1/8, beta = 1/4.
    const Duration err = srtt_ > rtt ? srtt_ - rtt : rtt - srtt_;
    rttvar_ = Duration::micros((3 * rttvar_.us() + err.us()) / 4);
    srtt_ = Duration::micros((7 * srtt_.us() + rtt.us()) / 8);
  }
  // Linux floors the variance term at tcp_rto_min (mdev_max logic in
  // tcp_rtt_estimator), so RTO >= SRTT + 200 ms. This is the "very
  // conservative algorithm" behind the paper's Fig. 1b observation that
  // the RTO is often an order of magnitude above the RTT.
  base_rto_ = srtt_ + std::max(rttvar_ * 4, config_.min_rto);
  backoff_ = 0;
  if (telemetry::metrics_enabled()) {
    static auto& srtt_hist =
        telemetry::Registry::instance().histogram("tapo_tcp_srtt_us");
    srtt_hist.observe(static_cast<std::uint64_t>(srtt_.us()));
  }
}

Duration RtoEstimator::rto() const {
  Duration r = has_sample_ ? base_rto_ : config_.initial_rto;
  r = std::max(r, config_.min_rto);
  for (int i = 0; i < backoff_; ++i) {
    r = r * std::int64_t{2};
    if (r >= config_.max_rto) break;
  }
  return std::min(r, config_.max_rto);
}

void RtoEstimator::backoff() {
  if (backoff_ < 16) ++backoff_;
}

}  // namespace tapo::tcp
