// Client-side TCP receive logic: cumulative ACK generation with delayed
// ACKs, SACK/DSACK blocks for out-of-order and duplicate data, and receive
// window management (fixed small windows for the paper's "old client
// software", autotuned growing buffers for modern clients, and slow-reader
// zero windows).
//
// The receiver is transport-only; request generation lives in the
// connection/application layer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/seq.h"
#include "net/tcp_header.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace tapo::tcp {

using net::Seq32;

struct ReceiverConfig {
  std::uint32_t mss = 1448;
  /// Receive buffer at connection start; also the rwnd advertised in the SYN
  /// (Fig. 6 studies this value: some clients advertise as little as 2 MSS).
  std::uint32_t init_rwnd_bytes = 64 * 1024;
  /// Autotune cap; ignored when !window_autotune.
  std::uint32_t max_rwnd_bytes = 1024 * 1024;
  /// Grow the buffer as the transfer proceeds (modern receivers). Old
  /// clients with fixed small buffers set this false.
  bool window_autotune = true;
  /// Application read rate draining the buffer; 0 = reads instantly.
  /// Slow readers cause the zero-rwnd stalls of Table 3/4.
  std::uint64_t app_read_Bps = 0;
  /// Reader pause model: after consuming `pause_every_bytes` the app stops
  /// reading for `pause_duration` (GC pauses, busy disks, paused players).
  /// Pauses are what turn a slow reader into multi-hundred-ms zero-window
  /// stalls. 0 disables.
  std::uint64_t pause_every_bytes = 0;
  Duration pause_duration = Duration::millis(500);
  /// Delayed-ACK: ack at latest after this delay (RFC 1122 allows 500 ms;
  /// Linux uses 40–200 ms).
  Duration delack_timeout = Duration::millis(40);
  /// Ack every Nth full-sized in-order segment (2 per RFC 1122).
  std::uint32_t ack_every = 2;
  bool sack_enabled = true;
  bool dsack_enabled = true;
};

class TcpReceiver {
 public:
  struct AckSpec {
    Seq32 ack;
    std::uint32_t rwnd_bytes = 0;
    net::SackList sack_blocks;  // inline, DSACK first when present
  };
  using SendAckFn = std::function<void(const AckSpec&)>;

  TcpReceiver(sim::Simulator& sim, ReceiverConfig config, SendAckFn send_ack);

  /// Initial sequence expected (end of server SYN). Call once after the
  /// handshake establishes the server's ISN.
  void start(Seq32 rcv_nxt);

  /// Processes an arriving data segment [seq, seq+len). May emit an ACK now
  /// or arm the delayed-ACK timer.
  void on_data(Seq32 seq, std::uint32_t len);

  /// Processes FIN at `seq` (after any payload): acks it immediately.
  void on_fin(Seq32 seq);

  Seq32 rcv_nxt() const { return rcv_nxt_; }
  /// Current advertised window after draining the app-read model.
  std::uint32_t current_rwnd();
  std::uint32_t buffer_capacity() const { return buffer_cap_; }

  /// Number of zero-window advertisements emitted so far.
  std::uint64_t zero_window_acks() const { return zero_window_acks_; }
  std::uint64_t dsacks_sent() const { return dsacks_sent_; }

  /// Out-of-order ranges currently buffered, sorted by start and disjoint
  /// (invariant-monitor introspection).
  const std::vector<net::SackBlock>& ooo_blocks() const { return ooo_; }

 private:
  void on_data_impl(Seq32 seq, std::uint32_t len);
  void drain_app_reads();
  void maybe_autotune();
  void emit_ack(std::optional<net::SackBlock> dsack);
  void arm_delack();
  void on_delack_fire();
  void schedule_window_update_check();
  std::uint32_t buffered_bytes() const;
  std::uint64_t ooo_bytes() const;
  void add_ooo(Seq32 start, Seq32 end);
  bool is_duplicate(Seq32 start, Seq32 end) const;

  sim::Simulator& sim_;
  ReceiverConfig config_;
  SendAckFn send_ack_;

  Seq32 rcv_nxt_;
  Seq32 read_seq_;   // app has consumed up to here
  std::uint32_t buffer_cap_ = 0;
  Seq32 tune_mark_;  // rcv_nxt at the last autotune step
  TimePoint paused_until_;
  std::uint64_t read_since_pause_ = 0;
  TimePoint last_drain_;
  double drain_remainder_ = 0.0;

  // Out-of-order ranges sorted by start; most-recently-updated block index
  // reported first in SACK.
  std::vector<net::SackBlock> ooo_;
  std::vector<net::SackBlock> recent_sacks_;  // report order

  std::uint32_t unacked_segments_ = 0;
  sim::Timer delack_timer_;
  bool advertised_zero_ = false;
  bool window_update_pending_ = false;
  bool fin_seen_ = false;

  std::uint64_t zero_window_acks_ = 0;
  std::uint64_t dsacks_sent_ = 0;
};

}  // namespace tapo::tcp
