// Congestion-control algorithms: window growth in Open/Disorder and the
// ssthresh rule applied on loss events. The sender owns cwnd/ssthresh (as
// the Linux stack does); the algorithm computes increments and reductions.
//
// Reno is the reference algorithm used by most tests (its dynamics are easy
// to assert on); CUBIC matches the kernel the paper measured (2.6.32
// defaults to CUBIC).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "tcp/types.h"
#include "util/time.h"

namespace tapo::tcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// New cwnd (in segments) after `acked` segments were newly acknowledged
  /// while in Open/Disorder. `now`/`srtt` feed time-based algorithms.
  virtual std::uint32_t on_ack(std::uint32_t cwnd, std::uint32_t ssthresh,
                               std::uint32_t acked, TimePoint now,
                               Duration srtt) = 0;

  /// ssthresh to adopt when a loss event begins.
  virtual std::uint32_t ssthresh(std::uint32_t cwnd) = 0;

  /// Notification that a loss episode started (epoch reset for CUBIC).
  virtual void on_loss_event(TimePoint now) { (void)now; }

  virtual void reset() {}
  virtual std::string name() const = 0;
};

std::unique_ptr<CongestionControl> make_congestion_control(CcAlgo algo);

/// Classic Reno: slow start below ssthresh, +1 segment per RTT above,
/// halving on loss.
class RenoCc final : public CongestionControl {
 public:
  std::uint32_t on_ack(std::uint32_t cwnd, std::uint32_t ssthresh,
                       std::uint32_t acked, TimePoint now,
                       Duration srtt) override;
  std::uint32_t ssthresh(std::uint32_t cwnd) override;
  void reset() override { growth_credit_ = 0; }
  std::string name() const override { return "reno"; }

 private:
  std::uint32_t growth_credit_ = 0;  // snd_cwnd_cnt analogue
};

/// CUBIC (Ha, Rhee, Xu 2008): W(t) = C (t - K)^3 + W_max, beta = 0.7.
class CubicCc final : public CongestionControl {
 public:
  std::uint32_t on_ack(std::uint32_t cwnd, std::uint32_t ssthresh,
                       std::uint32_t acked, TimePoint now,
                       Duration srtt) override;
  std::uint32_t ssthresh(std::uint32_t cwnd) override;
  void on_loss_event(TimePoint now) override;
  void reset() override;
  std::string name() const override { return "cubic"; }

 private:
  double w_max_ = 0.0;
  TimePoint epoch_start_;
  bool in_epoch_ = false;
  double k_ = 0.0;
  std::uint32_t growth_credit_ = 0;
};

}  // namespace tapo::tcp
