// Server-side TCP sender modeled on the Linux 2.6.32 stack the paper's
// servers ran (§3.1): congestion-avoidance state machine with Open /
// Disorder / Recovery / Loss states, SACK scoreboard loss detection with an
// adaptive dupthres, fast retransmit with rate-halving cwnd reduction,
// limited transmit, RFC 6298 RTO with exponential backoff, and a persist
// timer for zero receive windows.
//
// Three loss-recovery configurations are selectable, mirroring the paper's
// production A/B setup (§5.1): native Linux, TLP (Tail Loss Probe), and the
// paper's contribution S-RTO (Algorithm 1). Early Retransmit (RFC 5827) is
// additionally available (off by default — the measured kernel lacked it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "sim/simulator.h"
#include "tcp/congestion.h"
#include "tcp/rto.h"
#include "tcp/scoreboard.h"
#include "tcp/types.h"
#include "util/time.h"

namespace tapo::tcp {

struct SrtoConfig {
  /// Arm the probe only when packets_out < t1 (paper: 5 for web search,
  /// 10 for cloud storage).
  std::uint32_t t1 = 10;
  /// Halve cwnd on probe only when cwnd > t2 (paper: 5).
  std::uint32_t t2 = 5;
  /// Probe timer = probe_rtt_mult * SRTT (paper: 2, the stall threshold).
  double probe_rtt_mult = 2.0;

  /// Adaptive probe suppression — the paper's stated future work ("we
  /// leave the reduction of unnecessary retransmissions as future work",
  /// §5.2): every DSACK that reveals a probe to have been unnecessary
  /// stretches the probe timer by backoff_step; every probe whose segment
  /// is acked without a DSACK relaxes it again.
  bool adaptive = false;
  double backoff_step = 0.5;
  int max_backoff_level = 4;
};

struct SenderConfig {
  std::uint32_t mss = 1448;
  std::uint32_t init_cwnd = 3;  // 2.6.32 initial window
  RtoConfig rto;
  std::uint32_t dupthres = 3;
  /// Raise dupthres when DSACKs reveal spurious fast retransmits
  /// ("adjusted to the largest number of reordered packets", §3.1).
  bool adapt_dupthres = true;
  std::uint32_t max_dupthres = 10;
  bool limited_transmit = true;
  bool early_retransmit = false;
  /// FACK loss detection (Mathis & Mahdavi, cited as [13]): mark loss from
  /// the forward-most SACK instead of counting SACKed segments. Handles
  /// multiple losses per window more aggressively.
  bool fack = false;
  RecoveryMechanism recovery = RecoveryMechanism::kNative;
  SrtoConfig srto;
  /// TLP probe timeout floor and the worst-case delayed-ACK allowance used
  /// when exactly one packet is in flight.
  Duration tlp_min_pto = Duration::millis(10);
  Duration tlp_delack_allowance = Duration::millis(200);
  CcAlgo cc = CcAlgo::kReno;

  /// Pace new-data transmissions across the RTT (one segment every
  /// SRTT/cwnd) instead of bursting a whole window — the mitigation §4.3
  /// suggests for continuous-loss stalls ("spacing out the transmission of
  /// packets in a window across one RTT", citing TCP pacing).
  bool pacing = false;
  Duration pacing_min_gap = Duration::micros(100);

  /// F-RTO-style undo: when a DSACK proves the timeout retransmission was
  /// spurious (the original arrived), restore cwnd/ssthresh and return to
  /// Open instead of slow-starting from 1 (off in the measured kernel).
  bool spurious_rto_undo = false;
};

struct SenderStats {
  std::uint64_t segments_sent = 0;       // data segments incl. retransmissions
  std::uint64_t bytes_sent = 0;          // payload bytes incl. retransmissions
  std::uint64_t retransmissions = 0;     // retransmitted segments (any cause)
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_fires = 0;           // native timeout events
  std::uint64_t tlp_probes = 0;
  std::uint64_t srto_probes = 0;
  std::uint64_t persist_probes = 0;
  std::uint64_t zero_window_episodes = 0;
  std::uint64_t dsacks_received = 0;     // spurious retransmissions reported
  std::uint64_t spurious_rto_undos = 0;  // F-RTO-style cwnd restorations
  std::uint64_t srto_spurious_probes = 0;  // probes revealed useless by DSACK
};

class TcpSender {
 public:
  struct SegmentOut {
    Seq32 seq;
    std::uint32_t len = 0;  // payload bytes (0 for a bare FIN)
    bool fin = false;
    bool retransmission = false;
  };
  using SendSegmentFn = std::function<void(const SegmentOut&)>;
  /// Fires once when all written data (and FIN, if closed) is acked.
  using DoneFn = std::function<void()>;

  TcpSender(sim::Simulator& sim, SenderConfig config, SendSegmentFn send);

  /// Begins the data stream at `isn` (sequence of the first payload byte).
  void start(Seq32 isn);

  /// Seeds the RTT estimator from the handshake (SYN-ACK -> ACK), as Linux
  /// does — without it the RTO stays at the 3 s initial value until the
  /// first data segment is acked.
  void seed_rtt(Duration rtt) { rto_.sample(rtt); }

  /// Appends `bytes` of application data to the stream and tries to send.
  void app_write(std::uint64_t bytes);

  /// No more data will be written; a FIN follows the last byte.
  void app_close();

  /// Processes an incoming ACK. `rwnd_bytes` is the scaled window. `dsack`
  /// is set when the leading SACK block reported a duplicate.
  /// `carries_data` marks piggybacked ACKs (they never count as dupacks).
  void on_ack(Seq32 ack, std::uint32_t rwnd_bytes,
              std::span<const net::SackBlock> sack_blocks,
              std::optional<net::SackBlock> dsack, bool carries_data = false);
  void on_ack(Seq32 ack, std::uint32_t rwnd_bytes,
              std::initializer_list<net::SackBlock> sack_blocks,
              std::optional<net::SackBlock> dsack, bool carries_data = false) {
    on_ack(ack, rwnd_bytes,
           std::span<const net::SackBlock>(sack_blocks.begin(), sack_blocks.size()),
           dsack, carries_data);
  }

  void set_done_callback(DoneFn fn) { done_ = std::move(fn); }

  // -- Introspection (tests, benches) --
  CaState state() const { return state_; }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  std::uint32_t dupthres() const { return dupthres_; }
  Seq32 snd_una() const { return snd_una_; }
  Seq32 snd_nxt() const { return snd_nxt_; }
  Seq32 write_seq() const { return write_seq_; }
  std::uint32_t in_flight() const { return board_.in_flight(); }
  std::uint32_t packets_out() const { return board_.packets_out(); }
  std::uint32_t peer_rwnd() const { return rwnd_bytes_; }
  const RtoEstimator& rto_estimator() const { return rto_; }
  const Scoreboard& scoreboard() const { return board_; }
  const SenderStats& stats() const { return stats_; }
  bool finished() const { return finished_; }
  const SenderConfig& config() const { return config_; }
  bool zero_window() const { return zero_window_; }
  Duration persist_interval() const { return persist_interval_; }
  bool timer_armed() const { return timer_.armed(); }
  bool fin_pending() const { return fin_pending_; }
  bool fin_sent() const { return fin_sent_; }

 private:
  enum class TimerMode { kNone, kRto, kTlpProbe, kSrtoProbe, kPersist };

  void try_send();
  bool send_new_segment();
  void retransmit(Seq32 seq, bool rto_retrans);
  void retransmit_pending_lost();
  std::uint32_t send_window_segments() const;
  bool can_send_new() const;
  void enter_recovery();
  void enter_loss();
  void maybe_complete_recovery();
  void rearm_timer();
  void rearm_timer_impl();
  void on_timer_fire();
  void fire_rto();
  void fire_tlp();
  void fire_srto();
  void fire_persist();
  void check_done();
  Duration tlp_pto() const;
  Duration pacing_interval() const;
  void maybe_undo_spurious_rto(const std::optional<net::SackBlock>& dsack);
  /// Telemetry taps (no-ops unless tracing/metrics are enabled).
  void note_segment(const SegmentOut& out);
  void trace_window();

  sim::Simulator& sim_;
  SenderConfig config_;
  SendSegmentFn send_;
  DoneFn done_;

  Scoreboard board_;
  RtoEstimator rto_;
  std::unique_ptr<CongestionControl> cc_;

  CaState state_ = CaState::kOpen;
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0x7fffffff;
  std::uint32_t dupthres_ = 3;
  std::uint32_t dupacks_ = 0;
  Seq32 high_seq_;                   // recovery/loss exit point
  std::uint32_t prr_ack_counter_ = 0;

  Seq32 isn_;
  Seq32 snd_una_;
  Seq32 snd_nxt_;
  Seq32 write_seq_;                  // end of app-provided data
  bool fin_pending_ = false;         // app_close called
  bool fin_sent_ = false;
  Seq32 fin_seq_;                    // seq consumed by FIN (when sent)

  std::uint32_t rwnd_bytes_ = 0xffffffff;
  bool zero_window_ = false;
  Duration persist_interval_ = Duration::zero();
  /// snd_nxt when the current zero-window episode began: data sent before
  /// it is still governed by the RTO; probe bytes sent at/after it are
  /// governed by the persist timer.
  Seq32 zero_window_seq_;

  sim::Timer timer_;
  TimerMode timer_mode_ = TimerMode::kNone;
  bool tlp_probe_outstanding_ = false;
  sim::Timer pace_timer_;
  TimePoint pace_next_;
  /// Saved window state for spurious-RTO undo.
  std::uint32_t undo_cwnd_ = 0;
  std::uint32_t undo_ssthresh_ = 0;
  Seq32 undo_seq_;              // head seq the pending undo applies to
  bool undo_armed_ = false;

  /// Adaptive S-RTO: recently probed ranges awaiting a verdict, and the
  /// current probe-timer stretch level.
  std::deque<net::SackBlock> probed_ranges_;
  int srto_backoff_level_ = 0;
  /// Sticky tcp_is_cwnd_limited analogue, set at send time: the window was
  /// full while data remained. Gates cwnd growth (no growth when
  /// app/rwnd-limited).
  bool cwnd_limited_ = false;
  /// Fast retransmit must go out even when limited-transmit inflation left
  /// in_flight >= cwnd (the kernel guarantees one (re)transmission per
  /// recovery-entering or partial ACK).
  bool force_one_retransmit_ = false;

  SenderStats stats_;
  bool finished_ = false;
  bool started_ = false;
  /// Last cwnd/ssthresh/state reported to the tracer (dedup for the
  /// kCwnd/kCaState event streams).
  std::uint32_t traced_cwnd_ = 0;
  std::uint32_t traced_ssthresh_ = 0;
  CaState traced_state_ = CaState::kOpen;
};

}  // namespace tapo::tcp
