// One client-server TCP connection over a simulated duplex path, driven by
// an HTTP-like request/response application model.
//
// The application model reproduces every stall cause the paper's services
// exhibit (§3.4):
//   - `server_think` delays the first response byte (data unavailable:
//     front-end fetches content from back-end servers),
//   - `chunk_bytes`/`chunk_interval` throttle the server application
//     (resource constraint stalls mid-transfer),
//   - `client_gap` models client idle time between requests on a shared
//     connection (cloud storage),
//   - the receiver's small `init_rwnd_bytes` and `app_read_Bps` produce
//     zero-window stalls,
//   - the links inject loss/delay (network stalls).
//
// Packets are captured at the *server* NIC — the paper's vantage point —
// into an optional PacketTrace: server transmissions at send time, client
// packets at arrival time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/trace.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace tapo::tcp {

struct RequestSpec {
  std::uint32_t request_bytes = 200;
  std::uint64_t response_bytes = 64 * 1024;
  /// Client idle time before issuing this request (0 for the first request
  /// means "immediately after the handshake").
  Duration client_gap = Duration::zero();
  /// Server-side delay before the first response byte is available.
  Duration server_think = Duration::zero();
  /// When nonzero, the server app provides the response in chunks of this
  /// size every `chunk_interval` (resource-constraint model).
  std::uint64_t chunk_bytes = 0;
  Duration chunk_interval = Duration::zero();
};

struct ConnectionConfig {
  net::FlowKey client_to_server;  // client is src
  SenderConfig sender;
  ReceiverConfig receiver;
  std::vector<RequestSpec> requests;
  /// Initial sequence numbers for the two directions. Defaults are the
  /// historical fixed values; the wraparound property test sets an ISN just
  /// below 2^32 to drive the whole transfer across the wrap.
  net::Seq32 client_isn = net::Seq32{1000};
  net::Seq32 server_isn = net::Seq32{5000};
  /// Client SYN / request retransmission timer (stop-and-wait app layer).
  Duration client_rto = Duration::seconds(3.0);
  int max_client_retries = 8;
};

struct RequestMetrics {
  TimePoint client_sent;        // client issued the request
  TimePoint server_acked_resp;  // server saw the whole response acked
  TimePoint client_got_resp;    // client received the whole response
  std::uint64_t response_bytes = 0;
  bool completed = false;
  /// Paper §5.2 latency: request initiation to all response packets acked.
  Duration latency() const { return server_acked_resp - client_sent; }
};

struct ConnectionMetrics {
  TimePoint syn_sent;
  TimePoint established;
  TimePoint finished;  // server FIN acked
  bool completed = false;
  std::vector<RequestMetrics> requests;
  std::uint64_t total_response_bytes = 0;
};

class Connection {
 public:
  /// `down` carries server->client packets, `up` client->server.
  /// `capture` is the server-NIC tap: a detached builder (default state)
  /// disables capture; an attached one receives every packet crossing the
  /// server NIC, whichever backend (contiguous arena or chunked stream)
  /// it fronts.
  Connection(sim::Simulator& sim, sim::Link& down, sim::Link& up,
             ConnectionConfig config, net::TraceBuilder capture);
  /// Compatibility: capture straight into a caller-owned arena (nullptr
  /// disables capture).
  Connection(sim::Simulator& sim, sim::Link& down, sim::Link& up,
             ConnectionConfig config, net::PacketTrace* trace);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Kicks off the client SYN at the current simulation time.
  void start();

  bool done() const { return done_; }
  const ConnectionMetrics& metrics() const { return metrics_; }
  const TcpSender& sender() const { return *sender_; }
  const TcpReceiver& client_receiver() const { return *receiver_; }
  std::uint32_t init_rwnd_bytes() const { return config_.receiver.init_rwnd_bytes; }

 private:
  // -- client side --
  void client_send_syn();
  void client_on_packet(const net::CapturedPacket& pkt);
  void client_send_request(std::size_t idx);
  void client_emit_ack(const TcpReceiver::AckSpec& spec);
  void client_retx_fire();
  void client_maybe_next_request();

  // -- server side --
  void server_on_packet(const net::CapturedPacket& pkt);
  void server_handle_request_data(const net::CapturedPacket& pkt);
  void server_begin_response(std::size_t idx);
  void server_write_chunk(std::size_t idx, std::uint64_t remaining);
  void server_emit_segment(const TcpSender::SegmentOut& seg);
  void server_emit_pure_ack();
  void server_check_request_acked();

  void capture_at_server(const net::CapturedPacket& pkt);
  net::CapturedPacket make_packet(bool from_client) const;

  sim::Simulator& sim_;
  sim::Link& down_;
  sim::Link& up_;
  ConnectionConfig config_;
  net::TraceBuilder capture_;

  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;

  // Handshake and app-layer client state.
  enum class ClientState { kIdle, kSynSent, kEstablished, kClosed };
  ClientState client_state_ = ClientState::kIdle;
  net::Seq32 client_isn_;
  net::Seq32 server_isn_;
  net::Seq32 client_snd_nxt_;   // next client payload byte
  net::Seq32 client_req_end_;   // end seq of outstanding request
  net::Seq32 client_acked_;     // highest server ack of client data
  std::size_t next_request_ = 0;       // next request index to issue
  std::uint64_t client_resp_expect_ = 0;  // stream offset of current response end
  sim::Timer client_retx_;
  int client_retries_ = 0;
  bool syn_acked_ = false;
  std::uint8_t client_wscale_ = 0;
  std::uint8_t server_wscale_ = 0;

  // Server app state.
  net::Seq32 server_rcv_nxt_;   // next expected client payload byte
  std::size_t server_next_request_ = 0;  // next request to serve
  std::size_t responses_written_ = 0;
  TimePoint synack_sent_;
  bool handshake_rtt_seeded_ = false;
  std::uint64_t resp_stream_end_ = 0;  // cumulative response bytes written
  bool server_established_ = false;

  ConnectionMetrics metrics_;
  bool done_ = false;
};

}  // namespace tapo::tcp
