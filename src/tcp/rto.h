// RFC 6298 retransmission timer estimator, with the Linux deviations the
// paper's dataset ran under: a 200 ms RTO floor, 120 s ceiling, and a 3 s
// initial RTO before the first RTT sample (kernel 2.6.32's TCP_TIMEOUT_INIT).
// Exponential backoff is applied on consecutive timeouts and cleared by a
// new RTT sample.
#pragma once

#include "util/time.h"

namespace tapo::tcp {

struct RtoConfig {
  Duration initial_rto = Duration::seconds(3.0);
  Duration min_rto = Duration::millis(200);
  Duration max_rto = Duration::seconds(120.0);
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig config = {}) : config_(config) {}

  /// Feeds one RTT measurement (Karn's rule: callers must not sample
  /// retransmitted segments). Clears any timeout backoff.
  void sample(Duration rtt);

  /// Current RTO including backoff, clamped to [min_rto, max_rto].
  Duration rto() const;

  /// Smoothed RTT; zero before the first sample.
  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  bool has_sample() const { return has_sample_; }

  /// Doubles the backoff multiplier (call on RTO expiry).
  void backoff();
  int backoff_exponent() const { return backoff_; }

 private:
  RtoConfig config_;
  Duration srtt_ = Duration::zero();
  Duration rttvar_ = Duration::zero();
  Duration base_rto_;
  bool has_sample_ = false;
  int backoff_ = 0;
};

}  // namespace tapo::tcp
