#include "tcp/congestion.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"

namespace tapo::tcp {

namespace {

/// One loss event = one ssthresh() call (both CC variants reduce only there).
void count_loss_event(const char* algo) {
  if (!telemetry::metrics_enabled()) return;
  static auto& reno = telemetry::Registry::instance().counter(
      "tapo_tcp_loss_events_total", {{"cc", "reno"}});
  static auto& cubic = telemetry::Registry::instance().counter(
      "tapo_tcp_loss_events_total", {{"cc", "cubic"}});
  (algo[0] == 'r' ? reno : cubic).add(1);
}

}  // namespace

std::unique_ptr<CongestionControl> make_congestion_control(CcAlgo algo) {
  switch (algo) {
    case CcAlgo::kReno: return std::make_unique<RenoCc>();
    case CcAlgo::kCubic: return std::make_unique<CubicCc>();
  }
  return std::make_unique<RenoCc>();
}

std::uint32_t RenoCc::on_ack(std::uint32_t cwnd, std::uint32_t ssthresh,
                             std::uint32_t acked, TimePoint /*now*/,
                             Duration /*srtt*/) {
  if (cwnd < ssthresh) {
    // Slow start: one segment per newly acked segment, not beyond ssthresh
    // (ABC with L=1, the conservative kernel default).
    const std::uint32_t grow = std::min(acked, ssthresh - cwnd);
    return cwnd + grow;
  }
  // Congestion avoidance: +1 per cwnd acked segments.
  growth_credit_ += acked;
  if (growth_credit_ >= cwnd && cwnd > 0) {
    growth_credit_ -= cwnd;
    return cwnd + 1;
  }
  return cwnd;
}

std::uint32_t RenoCc::ssthresh(std::uint32_t cwnd) {
  count_loss_event("reno");
  return std::max<std::uint32_t>(cwnd / 2, 2);
}

void CubicCc::reset() {
  w_max_ = 0.0;
  in_epoch_ = false;
  k_ = 0.0;
  growth_credit_ = 0;
}

void CubicCc::on_loss_event(TimePoint /*now*/) { in_epoch_ = false; }

std::uint32_t CubicCc::ssthresh(std::uint32_t cwnd) {
  count_loss_event("cubic");
  // beta_cubic = 0.7; remember W_max for the next epoch (fast convergence
  // shrinks it slightly when losses come before reaching the old W_max).
  const double c = static_cast<double>(cwnd);
  w_max_ = (c < w_max_) ? c * (2.0 - 0.7) / 2.0 : c;
  return std::max<std::uint32_t>(static_cast<std::uint32_t>(c * 0.7), 2);
}

std::uint32_t CubicCc::on_ack(std::uint32_t cwnd, std::uint32_t ssthresh,
                              std::uint32_t acked, TimePoint now,
                              Duration srtt) {
  if (cwnd < ssthresh) {
    const std::uint32_t grow = std::min(acked, ssthresh - cwnd);
    return cwnd + grow;
  }
  constexpr double kC = 0.4;
  if (!in_epoch_) {
    in_epoch_ = true;
    epoch_start_ = now;
    if (w_max_ < static_cast<double>(cwnd)) w_max_ = static_cast<double>(cwnd);
    k_ = std::cbrt(w_max_ * (1.0 - 0.7) / kC);
    growth_credit_ = 0;
  }
  // Target window one RTT in the future, per the CUBIC function.
  const double t = (now - epoch_start_).sec() + srtt.sec();
  const double target = kC * std::pow(t - k_, 3.0) + w_max_;
  std::uint32_t next = cwnd;
  if (target > static_cast<double>(cwnd)) {
    // Approach the target: cwnd += (target - cwnd)/cwnd per ack, realized
    // through an ack-credit counter like the kernel's cnt/cwnd_cnt.
    const double cnt =
        static_cast<double>(cwnd) / (target - static_cast<double>(cwnd));
    growth_credit_ += acked;
    if (static_cast<double>(growth_credit_) >= std::max(cnt, 2.0)) {
      growth_credit_ = 0;
      next = cwnd + 1;
    }
  } else {
    // TCP-friendly region / plateau: grow at most 1 segment per 100 acks.
    growth_credit_ += acked;
    if (growth_credit_ >= 100 * cwnd) {
      growth_credit_ = 0;
      next = cwnd + 1;
    }
  }
  return next;
}

}  // namespace tapo::tcp
