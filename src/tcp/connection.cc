#include "tcp/connection.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace tapo::tcp {
namespace {

constexpr std::uint16_t kMaxWindowField = 65535;

/// RFC 2883 DSACK heuristic: the first SACK block reports a duplicate when
/// it lies below the cumulative ACK or inside the second block.
std::optional<net::SackBlock> extract_dsack(const net::TcpHeader& tcp) {
  if (tcp.sack_blocks.empty()) return std::nullopt;
  const auto& b0 = tcp.sack_blocks[0];
  if (net::at_or_before(b0.end, tcp.ack)) return b0;
  if (tcp.sack_blocks.size() >= 2) {
    const auto& b1 = tcp.sack_blocks[1];
    if (net::at_or_after(b0.start, b1.start) &&
        net::at_or_before(b0.end, b1.end)) {
      return b0;
    }
  }
  return std::nullopt;
}

}  // namespace

Connection::Connection(sim::Simulator& sim, sim::Link& down, sim::Link& up,
                       ConnectionConfig config, net::PacketTrace* trace)
    : Connection(sim, down, up, std::move(config),
                 trace != nullptr ? net::TraceBuilder(*trace)
                                  : net::TraceBuilder()) {}

Connection::Connection(sim::Simulator& sim, sim::Link& down, sim::Link& up,
                       ConnectionConfig config, net::TraceBuilder capture)
    : sim_(sim),
      down_(down),
      up_(up),
      config_(std::move(config)),
      capture_(capture),
      client_retx_(sim, [this] { client_retx_fire(); }) {
  client_isn_ = config_.client_isn;
  server_isn_ = config_.server_isn;
  client_wscale_ =
      config_.receiver.max_rwnd_bytes > kMaxWindowField ? 7 : 0;

  sender_ = std::make_unique<TcpSender>(
      sim_, config_.sender,
      [this](const TcpSender::SegmentOut& seg) { server_emit_segment(seg); });
  sender_->set_done_callback([this] {
    metrics_.finished = sim_.now();
    metrics_.completed = true;
    done_ = true;
  });

  receiver_ = std::make_unique<TcpReceiver>(
      sim_, config_.receiver,
      [this](const TcpReceiver::AckSpec& spec) { client_emit_ack(spec); });

  down_.set_deliver(
      [this](const net::CapturedPacket& pkt) { client_on_packet(pkt); });
  up_.set_deliver(
      [this](const net::CapturedPacket& pkt) { server_on_packet(pkt); });
}

Connection::~Connection() = default;

net::CapturedPacket Connection::make_packet(bool from_client) const {
  net::CapturedPacket pkt;
  pkt.key = from_client ? config_.client_to_server
                        : config_.client_to_server.reversed();
  pkt.timestamp = sim_.now();
  pkt.tcp.src_port = pkt.key.src_port;
  pkt.tcp.dst_port = pkt.key.dst_port;
  return pkt;
}

void Connection::capture_at_server(const net::CapturedPacket& pkt) {
  if (capture_.attached()) {
    // Write straight into the capture backend; only the capture timestamp
    // differs from the wire packet.
    net::CapturedPacket& slot = capture_.begin_packet();
    slot = pkt;
    slot.timestamp = sim_.now();
  }
}

// ---------------------------------------------------------------- client --

void Connection::start() {
  assert(!config_.requests.empty());
  metrics_.requests.resize(config_.requests.size());
  client_snd_nxt_ = client_isn_ + 1;
  metrics_.syn_sent = sim_.now();
  client_send_syn();
}

void Connection::client_send_syn() {
  client_state_ = ClientState::kSynSent;
  net::CapturedPacket pkt = make_packet(/*from_client=*/true);
  pkt.tcp.seq = client_isn_;
  pkt.tcp.flags.syn = true;
  pkt.tcp.window = static_cast<std::uint16_t>(std::min<std::uint32_t>(
      config_.receiver.init_rwnd_bytes, kMaxWindowField));
  pkt.tcp.mss = static_cast<std::uint16_t>(config_.receiver.mss);
  pkt.tcp.sack_permitted = config_.receiver.sack_enabled;
  if (client_wscale_ > 0) pkt.tcp.window_scale = client_wscale_;
  up_.send(pkt);
  client_retx_.arm(config_.client_rto * static_cast<std::int64_t>(1 << std::min(client_retries_, 6)));
}

void Connection::client_emit_ack(const TcpReceiver::AckSpec& spec) {
  net::CapturedPacket pkt = make_packet(/*from_client=*/true);
  pkt.tcp.seq = client_snd_nxt_;
  pkt.tcp.ack = spec.ack;
  pkt.tcp.flags.ack = true;
  const std::uint32_t scaled =
      std::min<std::uint32_t>(spec.rwnd_bytes >> client_wscale_, kMaxWindowField);
  pkt.tcp.window = static_cast<std::uint16_t>(scaled);
  pkt.tcp.sack_blocks = spec.sack_blocks;
  up_.send(pkt);
}

void Connection::client_send_request(std::size_t idx) {
  assert(idx < config_.requests.size());
  const RequestSpec& spec = config_.requests[idx];
  net::CapturedPacket pkt = make_packet(/*from_client=*/true);
  pkt.tcp.seq = client_snd_nxt_;
  pkt.tcp.ack = receiver_->rcv_nxt();
  pkt.tcp.flags.ack = true;
  pkt.tcp.flags.psh = true;
  pkt.payload_len = spec.request_bytes;
  const std::uint32_t scaled = std::min<std::uint32_t>(
      receiver_->current_rwnd() >> client_wscale_, kMaxWindowField);
  pkt.tcp.window = static_cast<std::uint16_t>(scaled);

  if (next_request_ == idx) {
    // First transmission (not a retry).
    metrics_.requests[idx].client_sent = sim_.now();
    metrics_.requests[idx].response_bytes = spec.response_bytes;
    client_req_end_ = client_snd_nxt_ + spec.request_bytes;
    client_snd_nxt_ = client_req_end_;
    client_resp_expect_ += spec.response_bytes;
    ++next_request_;
    client_retries_ = 0;
  } else {
    pkt.tcp.seq = client_req_end_ - spec.request_bytes;  // retry: same range
  }
  up_.send(pkt);
  client_retx_.arm(config_.client_rto * static_cast<std::int64_t>(1 << std::min(client_retries_, 6)));
}

void Connection::client_retx_fire() {
  if (done_) return;
  ++client_retries_;
  if (client_retries_ > config_.max_client_retries) {
    TAPO_WARN << "connection " << config_.client_to_server.to_string()
              << " gave up after " << client_retries_ << " retries";
    done_ = true;
    return;
  }
  if (client_state_ == ClientState::kSynSent) {
    client_send_syn();
  } else if (net::before(client_acked_, client_req_end_)) {
    client_send_request(next_request_ - 1);
  }
}

void Connection::client_on_packet(const net::CapturedPacket& pkt) {
  if (done_ && !pkt.tcp.flags.fin) return;

  if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) {
    // SYN-ACK (possibly a retransmission).
    const bool first = !syn_acked_;
    syn_acked_ = true;
    server_isn_ = pkt.tcp.seq;
    server_wscale_ = pkt.tcp.window_scale.value_or(0);
    if (first) {
      client_state_ = ClientState::kEstablished;
      metrics_.established = sim_.now();
      receiver_->start(server_isn_ + 1);
      client_retx_.cancel();
      // Handshake-completing ACK.
      TcpReceiver::AckSpec spec;
      spec.ack = receiver_->rcv_nxt();
      spec.rwnd_bytes = receiver_->current_rwnd();
      client_emit_ack(spec);
      // First request after its configured gap.
      const Duration gap = config_.requests[0].client_gap;
      sim_.schedule(gap, [this] {
        if (!done_) client_send_request(0);
      });
    } else {
      TcpReceiver::AckSpec spec;
      spec.ack = receiver_->rcv_nxt();
      spec.rwnd_bytes = receiver_->current_rwnd();
      client_emit_ack(spec);
    }
    return;
  }

  // Any established packet may acknowledge client request data.
  if (pkt.tcp.flags.ack && net::after(pkt.tcp.ack, client_acked_)) {
    client_acked_ = pkt.tcp.ack;
    if (net::at_or_after(client_acked_, client_req_end_)) {
      client_retx_.cancel();
    }
  }

  if (pkt.payload_len > 0) {
    receiver_->on_data(pkt.tcp.seq, pkt.payload_len);
    client_maybe_next_request();
  } else if (pkt.tcp.flags.fin) {
    receiver_->on_fin(pkt.tcp.seq);
    client_state_ = ClientState::kClosed;
  }
}

void Connection::client_maybe_next_request() {
  const std::uint64_t received =
      net::distance(server_isn_ + 1, receiver_->rcv_nxt());
  // Mark completed responses.
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < next_request_; ++k) {
    cum += config_.requests[k].response_bytes;
    auto& rm = metrics_.requests[k];
    if (!rm.completed && received >= cum) {
      rm.client_got_resp = sim_.now();
      rm.completed = true;
    }
  }
  // Issue the next request once the previous response fully arrived.
  if (next_request_ < config_.requests.size() &&
      received >= client_resp_expect_ &&
      net::at_or_after(client_acked_, client_req_end_)) {
    const std::size_t idx = next_request_;
    const Duration gap = config_.requests[idx].client_gap;
    if (gap == Duration::zero()) {
      client_send_request(idx);
    } else {
      sim_.schedule(gap, [this, idx] {
        if (!done_ && next_request_ == idx) client_send_request(idx);
      });
    }
  }
}

// ---------------------------------------------------------------- server --

void Connection::server_on_packet(const net::CapturedPacket& pkt) {
  capture_at_server(pkt);

  if (pkt.tcp.flags.syn && !pkt.tcp.flags.ack) {
    if (!server_established_) {
      server_established_ = true;
      server_rcv_nxt_ = pkt.tcp.seq + 1;
      sender_->start(server_isn_ + 1);
    }
    // SYN-ACK (re)transmission.
    net::CapturedPacket syn_ack = make_packet(/*from_client=*/false);
    syn_ack.tcp.seq = server_isn_;
    syn_ack.tcp.ack = server_rcv_nxt_;
    syn_ack.tcp.flags.syn = true;
    syn_ack.tcp.flags.ack = true;
    syn_ack.tcp.window = kMaxWindowField;
    syn_ack.tcp.mss = static_cast<std::uint16_t>(config_.sender.mss);
    syn_ack.tcp.sack_permitted = pkt.tcp.sack_permitted;
    if (pkt.tcp.window_scale) syn_ack.tcp.window_scale = 0;
    synack_sent_ = sim_.now();
    capture_at_server(syn_ack);
    down_.send(syn_ack);
    return;
  }

  if (!server_established_) return;  // stray packet before SYN

  if (!handshake_rtt_seeded_ && pkt.tcp.flags.ack) {
    handshake_rtt_seeded_ = true;
    sender_->seed_rtt(sim_.now() - synack_sent_);
  }

  if (pkt.payload_len > 0) {
    server_handle_request_data(pkt);
  }

  if (pkt.tcp.flags.ack) {
    const std::uint32_t rwnd_bytes = static_cast<std::uint32_t>(pkt.tcp.window)
                                     << client_wscale_;
    sender_->on_ack(pkt.tcp.ack, rwnd_bytes, pkt.tcp.sack_blocks,
                    extract_dsack(pkt.tcp), pkt.payload_len > 0);
    server_check_request_acked();
  }
}

void Connection::server_handle_request_data(const net::CapturedPacket& pkt) {
  const net::Seq32 end = pkt.tcp.seq + pkt.payload_len;
  if (net::at_or_before(pkt.tcp.seq, server_rcv_nxt_) &&
      net::after(end, server_rcv_nxt_)) {
    server_rcv_nxt_ = end;
  }
  // Acknowledge the request promptly (the response may lag behind by the
  // backend think time, so don't rely on piggybacking).
  server_emit_pure_ack();

  // Serve any requests that are now fully received, in order.
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < config_.requests.size(); ++k) {
    cum += config_.requests[k].request_bytes;
    const std::uint64_t received =
        net::distance(client_isn_ + 1, server_rcv_nxt_);
    if (k == server_next_request_ && received >= cum) {
      ++server_next_request_;
      server_begin_response(k);
    }
  }
}

void Connection::server_begin_response(std::size_t idx) {
  const RequestSpec& spec = config_.requests[idx];
  const auto begin_write = [this, idx] {
    const RequestSpec& s = config_.requests[idx];
    if (s.chunk_bytes == 0 || s.chunk_bytes >= s.response_bytes) {
      sender_->app_write(s.response_bytes);
      resp_stream_end_ += s.response_bytes;
      metrics_.total_response_bytes += s.response_bytes;
      ++responses_written_;
      if (responses_written_ == config_.requests.size()) sender_->app_close();
    } else {
      server_write_chunk(idx, s.response_bytes);
    }
  };
  if (spec.server_think == Duration::zero()) {
    begin_write();
  } else {
    sim_.schedule(spec.server_think, begin_write);
  }
}

void Connection::server_write_chunk(std::size_t idx, std::uint64_t remaining) {
  const RequestSpec& spec = config_.requests[idx];
  const std::uint64_t chunk = std::min(spec.chunk_bytes, remaining);
  sender_->app_write(chunk);
  resp_stream_end_ += chunk;
  metrics_.total_response_bytes += chunk;
  remaining -= chunk;
  if (remaining == 0) {
    ++responses_written_;
    if (responses_written_ == config_.requests.size()) sender_->app_close();
    return;
  }
  sim_.schedule(spec.chunk_interval, [this, idx, remaining] {
    server_write_chunk(idx, remaining);
  });
}

void Connection::server_emit_segment(const TcpSender::SegmentOut& seg) {
  net::CapturedPacket pkt = make_packet(/*from_client=*/false);
  pkt.tcp.seq = seg.seq;
  pkt.tcp.ack = server_rcv_nxt_;
  pkt.tcp.flags.ack = true;
  pkt.tcp.flags.fin = seg.fin;
  pkt.tcp.flags.psh = !seg.fin && seg.len > 0 && seg.len < config_.sender.mss;
  pkt.tcp.window = kMaxWindowField;
  pkt.payload_len = seg.len;
  capture_at_server(pkt);
  down_.send(pkt);
}

void Connection::server_emit_pure_ack() {
  net::CapturedPacket pkt = make_packet(/*from_client=*/false);
  pkt.tcp.seq = sender_->snd_nxt();
  pkt.tcp.ack = server_rcv_nxt_;
  pkt.tcp.flags.ack = true;
  pkt.tcp.window = kMaxWindowField;
  capture_at_server(pkt);
  down_.send(pkt);
}

void Connection::server_check_request_acked() {
  const std::uint64_t acked =
      net::distance(server_isn_ + 1, sender_->snd_una());
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < config_.requests.size(); ++k) {
    cum += config_.requests[k].response_bytes;
    auto& rm = metrics_.requests[k];
    if (rm.server_acked_resp == TimePoint() && cum <= resp_stream_end_ &&
        acked >= cum && rm.client_sent != TimePoint()) {
      rm.server_acked_resp = sim_.now();
    }
  }
}

}  // namespace tapo::tcp
