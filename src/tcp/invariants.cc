#include "tcp/invariants.h"

#include <algorithm>
#include <array>

#include "telemetry/telemetry.h"

namespace tapo::tcp {

namespace {

constexpr std::size_t kKinds =
    static_cast<std::size_t>(InvariantKind::kKindCount);
constexpr std::size_t kRecentRing = 64;

// Counters are seq_cst plain atomics: report() is the cold path (a correct
// build never reaches it), so there is nothing to shave.
std::array<std::atomic<std::uint64_t>, kKinds> g_by_kind{};
std::atomic<std::uint64_t> g_total{0};

// Per-flow attribution. One flow lives on one worker thread for its whole
// life (ParallelRunner contract), so a thread_local pair is enough and the
// protocol layers need no flow-id plumbing.
thread_local std::uint64_t t_flow_id = 0;
thread_local std::uint64_t t_flow_violations = 0;

util::Mutex g_ring_mu;
struct Ring {
  std::array<InvariantViolation, kRecentRing> slots;
  std::size_t head = 0;
  std::size_t size = 0;
};
Ring g_ring TAPO_GUARDED_BY(g_ring_mu);

}  // namespace

const char* to_string(InvariantKind k) {
  switch (k) {
    case InvariantKind::kRetransmitAckedData: return "retransmit_acked_data";
    case InvariantKind::kSequenceOrder: return "sequence_order";
    case InvariantKind::kScoreboardAccounting: return "scoreboard_accounting";
    case InvariantKind::kCwndBounds: return "cwnd_bounds";
    case InvariantKind::kSsthreshBounds: return "ssthresh_bounds";
    case InvariantKind::kRtoRange: return "rto_range";
    case InvariantKind::kRtoBackoffRegressed: return "rto_backoff_regressed";
    case InvariantKind::kSrtoArming: return "srto_arming";
    case InvariantKind::kSrtoCwndGuard: return "srto_cwnd_guard";
    case InvariantKind::kPersistLiveness: return "persist_liveness";
    case InvariantKind::kPersistIntervalRange: return "persist_interval_range";
    case InvariantKind::kRcvNxtRegression: return "rcv_nxt_regression";
    case InvariantKind::kOooBookkeeping: return "ooo_bookkeeping";
    case InvariantKind::kAckSpecInvalid: return "ack_spec_invalid";
    case InvariantKind::kKindCount: break;
  }
  return "?";
}

InvariantMonitor::FlowScope::FlowScope(std::uint64_t flow_id)
    : prev_id_(t_flow_id), prev_count_(t_flow_violations) {
  t_flow_id = flow_id;
  t_flow_violations = 0;
}

InvariantMonitor::FlowScope::~FlowScope() {
  t_flow_id = prev_id_;
  t_flow_violations = prev_count_;
}

std::uint64_t InvariantMonitor::FlowScope::violations() const {
  return t_flow_violations;
}

void InvariantMonitor::report(InvariantKind kind, std::uint32_t seq_raw,
                              std::int64_t event_time_us) {
  const auto idx = static_cast<std::size_t>(kind);
  if (idx >= kKinds) return;
  g_by_kind[idx].fetch_add(1);
  g_total.fetch_add(1);
  ++t_flow_violations;
  if (telemetry::metrics_enabled()) {
    // One static per kind would need a table; the registry lookup dedupes
    // on (name, labels) anyway and this path is cold by definition.
    telemetry::Registry::instance()
        .counter("tapo_invariant_violations_total",
                 {{"kind", to_string(kind)}})
        .add(1);
  }
  TAPO_TRACE(telemetry::EventKind::kInvariantViolation, event_time_us,
             static_cast<std::uint64_t>(idx), seq_raw);
  InvariantViolation v;
  v.kind = kind;
  v.flow = t_flow_id;
  v.seq = seq_raw;
  v.event_time_us = event_time_us;
  util::MutexLock lock(g_ring_mu);
  g_ring.slots[g_ring.head] = v;
  g_ring.head = (g_ring.head + 1) % kRecentRing;
  g_ring.size = std::min(g_ring.size + 1, kRecentRing);
}

std::uint64_t InvariantMonitor::total_violations() { return g_total.load(); }

std::uint64_t InvariantMonitor::violations(InvariantKind kind) {
  const auto idx = static_cast<std::size_t>(kind);
  return idx < kKinds ? g_by_kind[idx].load() : 0;
}

std::vector<InvariantViolation> InvariantMonitor::recent() {
  util::MutexLock lock(g_ring_mu);
  std::vector<InvariantViolation> out;
  out.reserve(g_ring.size);
  // Oldest first: head points at the next overwrite slot.
  const std::size_t start =
      g_ring.size < kRecentRing ? 0 : g_ring.head;
  for (std::size_t i = 0; i < g_ring.size; ++i) {
    out.push_back(g_ring.slots[(start + i) % kRecentRing]);
  }
  return out;
}

void InvariantMonitor::reset() {
  for (auto& c : g_by_kind) c.store(0);
  g_total.store(0);
  t_flow_violations = 0;
  util::MutexLock lock(g_ring_mu);
  g_ring.head = 0;
  g_ring.size = 0;
}

namespace invariants {

namespace {

void fail(InvariantKind kind, net::Seq32 seq, TimePoint now) {
  InvariantMonitor::report(kind, seq.raw(), now.us());
}

/// Deep scoreboard recount: the incremental sacked/lost/retrans counters
/// must match a from-scratch walk, ranges must stay contiguous and
/// non-empty, and SACKed+lost can never exceed what was sent (the safety
/// side of in_flight Eq. 1 — a violation here means in_flight() can go
/// negative and the sender bursts).
void check_scoreboard(const Scoreboard& board, TimePoint now) {
  std::uint32_t sacked = 0, lost = 0, retrans = 0;
  const SegmentState* prev = nullptr;
  for (const SegmentState& seg : board.segments()) {
    if (net::at_or_before(seg.end, seg.start)) {
      fail(InvariantKind::kScoreboardAccounting, seg.start, now);
    }
    if (prev != nullptr && !(prev->end == seg.start)) {
      fail(InvariantKind::kScoreboardAccounting, seg.start, now);
    }
    if (seg.sacked) ++sacked;
    if (seg.lost) ++lost;
    if (seg.retrans_pending) ++retrans;
    prev = &seg;
  }
  if (sacked != board.sacked_out() || lost != board.lost_out() ||
      retrans != board.retrans_out()) {
    fail(InvariantKind::kScoreboardAccounting, board.snd_una(), now);
  }
  if (sacked + lost > board.packets_out() + retrans) {
    fail(InvariantKind::kScoreboardAccounting, board.snd_una(), now);
  }
}

}  // namespace

void sender_event_slow(const TcpSender& s, TimePoint now) {
  // Sequence order: snd_una <= snd_nxt <= write_seq (+1 once the FIN has
  // consumed its sequence slot).
  const net::Seq32 una = s.snd_una();
  const net::Seq32 nxt = s.snd_nxt();
  net::Seq32 limit = s.write_seq();
  if (s.fin_sent()) limit = net::advance(limit, 1);
  if (net::after(una, nxt) || net::after(nxt, limit)) {
    fail(InvariantKind::kSequenceOrder, nxt, now);
  }
  if (s.cwnd() < 1) fail(InvariantKind::kCwndBounds, una, now);
  // ssthresh >= 2 (Linux floor) — the untouched initial "infinite" value
  // trivially passes.
  if (s.ssthresh() < 2) fail(InvariantKind::kSsthreshBounds, una, now);
  const RtoConfig& rc = s.config().rto;
  const Duration rto = s.rto_estimator().rto();
  if (rto < rc.min_rto || rto > rc.max_rto) {
    fail(InvariantKind::kRtoRange, una, now);
  }
  check_scoreboard(s.scoreboard(), now);
}

void retransmit_slow(const TcpSender& s, net::Seq32 seq, TimePoint now) {
  // Never retransmit bytes the peer has cumulatively acknowledged.
  if (net::before(seq, s.snd_una())) {
    fail(InvariantKind::kRetransmitAckedData, seq, now);
  }
}

void srto_armed_slow(const TcpSender& s, Duration probe, TimePoint now) {
  // Re-derive Algorithm 1's arming preconditions from observable state.
  const SegmentState* head = s.scoreboard().first_unsacked();
  const bool preconditions =
      s.config().recovery == RecoveryMechanism::kSrto &&
      head != nullptr && !head->rto_retransmitted &&
      s.packets_out() < s.config().srto.t1;
  if (!preconditions) {
    fail(InvariantKind::kSrtoArming, s.snd_una(), now);
    return;
  }
  // The probe must fire before the native RTO would (that is its purpose);
  // the adaptive stretch is bounded so this holds at every backoff level.
  if (s.rto_estimator().has_sample() && probe >= s.rto_estimator().rto()) {
    fail(InvariantKind::kSrtoArming, s.snd_una(), now);
  }
}

void srto_fired_slow(const TcpSender& s, std::uint32_t cwnd_before,
                     CaState state_before, TimePoint now) {
  // Halving is allowed only when cwnd > T2 and not already in Recovery
  // (Algorithm 1 lines 7-9). A cwnd drop outside those conditions is the
  // "aggressive window reduction" failure mode S-RTO was built to avoid.
  if (s.cwnd() < cwnd_before &&
      (cwnd_before <= s.config().srto.t2 ||
       state_before == CaState::kRecovery)) {
    fail(InvariantKind::kSrtoCwndGuard, s.snd_una(), now);
  }
}

void rto_backoff_slow(const TcpSender& s, Duration old_rto, TimePoint now) {
  if (s.rto_estimator().rto() < old_rto) {
    fail(InvariantKind::kRtoBackoffRegressed, s.snd_una(), now);
  }
}

void timer_rearmed_slow(const TcpSender& s, TimePoint now) {
  // Liveness: an unfinished sender with outstanding segments, or blocked by
  // a zero window while holding undelivered data/FIN, must keep some timer
  // armed — otherwise nothing can ever wake it (the zero-window deadlock
  // class of §4).
  if (!s.finished()) {
    const bool has_pending_data =
        net::before(s.snd_nxt(), s.write_seq()) ||
        (s.fin_pending() && !s.fin_sent());
    const bool must_wake =
        s.packets_out() > 0 || (s.zero_window() && has_pending_data);
    if (must_wake && !s.timer_armed()) {
      fail(InvariantKind::kPersistLiveness, s.snd_nxt(), now);
    }
  }
  // The persist interval starts at the current RTO (which may exceed the
  // 60 s doubling cap) and doubles up to 60 s: bound = max(60 s, RTO).
  const Duration bound =
      std::max(Duration::seconds(60.0), s.rto_estimator().rto());
  if (s.persist_interval() > bound) {
    fail(InvariantKind::kPersistIntervalRange, s.snd_nxt(), now);
  }
}

void receiver_data_slow(const TcpReceiver& r, net::Seq32 prev_rcv_nxt,
                        TimePoint now) {
  if (net::before(r.rcv_nxt(), prev_rcv_nxt)) {
    fail(InvariantKind::kRcvNxtRegression, r.rcv_nxt(), now);
  }
  // Out-of-order bookkeeping: sorted, pairwise disjoint, every block
  // non-empty and strictly above rcv_nxt (touching blocks must have been
  // merged; a block at/below rcv_nxt should have been absorbed).
  const std::vector<net::SackBlock>& ooo = r.ooo_blocks();
  for (std::size_t i = 0; i < ooo.size(); ++i) {
    if (net::at_or_before(ooo[i].end, ooo[i].start) ||
        net::at_or_before(ooo[i].start, r.rcv_nxt())) {
      fail(InvariantKind::kOooBookkeeping, ooo[i].start, now);
    }
    if (i > 0 && net::at_or_before(ooo[i].start, ooo[i - 1].end)) {
      fail(InvariantKind::kOooBookkeeping, ooo[i].start, now);
    }
  }
}

void ack_spec_slow(const TcpReceiver& r, const TcpReceiver::AckSpec& spec,
                   TimePoint now) {
  // A cumulative ACK always advertises exactly rcv_nxt.
  if (!(spec.ack == r.rcv_nxt())) {
    fail(InvariantKind::kAckSpecInvalid, spec.ack, now);
  }
  if (spec.rwnd_bytes > r.buffer_capacity()) {
    fail(InvariantKind::kAckSpecInvalid, spec.ack, now);
  }
  for (std::size_t i = 0; i < spec.sack_blocks.size(); ++i) {
    const net::SackBlock& b = spec.sack_blocks[i];
    if (net::at_or_before(b.end, b.start)) {
      fail(InvariantKind::kAckSpecInvalid, b.start, now);
    }
    // Non-DSACK blocks report out-of-order data, which lies strictly above
    // the cumulative ACK. Only the leading block may be a duplicate report.
    if (i > 0 && net::at_or_before(b.end, spec.ack)) {
      fail(InvariantKind::kAckSpecInvalid, b.start, now);
    }
  }
}

}  // namespace invariants

// ---------------------------------------------- delivery integrity -------

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Synthetic content of stream byte `off`: byte (off & 7) of
/// splitmix64(off >> 3). Position-dependent, so any swap, skip, or
/// double-count of bytes changes the accumulated hash.
std::uint8_t stream_byte(std::uint64_t off) {
  return static_cast<std::uint8_t>(splitmix64(off >> 3) >> ((off & 7) * 8));
}

std::uint64_t fnv_step(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

}  // namespace

DeliveryTracker::DeliveryTracker(net::Seq32 first_byte)
    : cursor_seq_(first_byte), hash_(kFnvOffset) {}

std::uint64_t DeliveryTracker::stream_hash(std::uint64_t bytes) {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t off = 0; off < bytes; ++off) {
    h = fnv_step(h, stream_byte(off));
  }
  return h;
}

void DeliveryTracker::advance_cursor(net::Seq32 end) {
  while (net::before(cursor_seq_, end)) {
    hash_ = fnv_step(hash_, stream_byte(cursor_off_));
    cursor_seq_ = net::advance(cursor_seq_, 1);
    ++cursor_off_;
  }
  // Absorb out-of-order islands the cursor has reached.
  while (!ooo_.empty() && net::at_or_after(cursor_seq_, ooo_.front().start)) {
    if (net::after(ooo_.front().end, cursor_seq_)) {
      const net::Seq32 island_end = ooo_.front().end;
      ooo_.erase(ooo_.begin());
      advance_cursor(island_end);
      return;  // recursion handled the rest of the list
    }
    ooo_.erase(ooo_.begin());
  }
}

void DeliveryTracker::on_data(net::Seq32 seq, std::uint32_t len) {
  if (len == 0) return;
  net::Seq32 start = seq;
  const net::Seq32 end = net::advance(seq, len);
  if (net::at_or_before(end, cursor_seq_)) {
    ++dups_;  // entirely old data
    return;
  }
  if (net::before(start, cursor_seq_)) {
    ++dups_;  // partial overlap with delivered bytes
    start = cursor_seq_;
  }
  if (start == cursor_seq_) {
    advance_cursor(end);
    return;
  }
  // Out-of-order: insert [start, end) and renormalize to a sorted disjoint
  // list. Deliberately independent of the receiver's add_ooo — a shared
  // helper could hide a shared bug from the integrity check.
  bool covered = false;
  for (const net::SackBlock& b : ooo_) {
    if (net::at_or_before(b.start, start) && net::at_or_after(b.end, end)) {
      covered = true;  // a full repeat of an island we already hold
      break;
    }
  }
  if (covered) {
    ++dups_;
    return;
  }
  ooo_.push_back({start, end});
  std::sort(ooo_.begin(), ooo_.end(),
            [](const net::SackBlock& a, const net::SackBlock& b) {
              return net::before(a.start, b.start);
            });
  std::vector<net::SackBlock> merged;
  for (const net::SackBlock& b : ooo_) {
    if (!merged.empty() && net::at_or_before(b.start, merged.back().end)) {
      merged.back().end = net::seq_max(merged.back().end, b.end);
    } else {
      merged.push_back(b);
    }
  }
  ooo_ = std::move(merged);
}

DeliverySummary DeliveryTracker::finalize(
    std::uint64_t expected_stream_bytes) const {
  DeliverySummary s;
  s.expected_bytes = expected_stream_bytes;
  s.in_order_bytes = cursor_off_;
  s.hole_ranges = ooo_.size();
  s.duplicate_segments = dups_;
  s.expected_hash = stream_hash(expected_stream_bytes);
  s.delivered_hash = hash_;
  return s;
}

}  // namespace tapo::tcp
