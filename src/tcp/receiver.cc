#include "tcp/receiver.h"

#include <algorithm>
#include <cassert>

#include "tcp/invariants.h"

namespace tapo::tcp {

TcpReceiver::TcpReceiver(sim::Simulator& sim, ReceiverConfig config,
                         SendAckFn send_ack)
    : sim_(sim),
      config_(config),
      send_ack_(std::move(send_ack)),
      delack_timer_(sim, [this] { on_delack_fire(); }) {
  buffer_cap_ = config_.init_rwnd_bytes;
}

void TcpReceiver::start(Seq32 rcv_nxt) {
  rcv_nxt_ = rcv_nxt;
  read_seq_ = rcv_nxt;
  tune_mark_ = rcv_nxt;
  last_drain_ = sim_.now();
}

std::uint32_t TcpReceiver::buffered_bytes() const {
  std::uint32_t b = net::distance(read_seq_, rcv_nxt_);
  for (const auto& blk : ooo_) b += blk.len();
  return b;
}

std::uint64_t TcpReceiver::ooo_bytes() const {
  std::uint64_t b = 0;
  for (const auto& blk : ooo_) b += blk.len();
  return b;
}

void TcpReceiver::drain_app_reads() {
  const TimePoint now = sim_.now();
  if (config_.app_read_Bps == 0) {
    read_seq_ = rcv_nxt_;
    last_drain_ = now;
    return;
  }
  if (now < paused_until_) {
    last_drain_ = now;
    return;
  }
  const TimePoint from = std::max(last_drain_, paused_until_);
  const double elapsed = now > from ? (now - from).sec() : 0.0;
  last_drain_ = now;
  const double readable = elapsed * static_cast<double>(config_.app_read_Bps) +
                          drain_remainder_;
  auto can_read = static_cast<std::uint64_t>(readable);
  drain_remainder_ = readable - static_cast<double>(can_read);
  const std::uint32_t inorder = net::distance(read_seq_, rcv_nxt_);
  can_read = std::min<std::uint64_t>(can_read, inorder);
  read_seq_ = net::advance(read_seq_, can_read);
  if (config_.pause_every_bytes > 0) {
    read_since_pause_ += can_read;
    if (read_since_pause_ >= config_.pause_every_bytes) {
      read_since_pause_ = 0;
      paused_until_ = now + config_.pause_duration;
    }
  }
}

void TcpReceiver::maybe_autotune() {
  if (!config_.window_autotune) return;
  // Dynamic right-sizing in the spirit of Linux DRS: once half a buffer's
  // worth of new data has arrived since the last adjustment, the transfer
  // is using the window — double the buffer (up to the cap) so the
  // advertised window stays ahead of the congestion window. Slow readers
  // still hit zero windows despite autotune, as in the wild.
  if (net::distance(tune_mark_, rcv_nxt_) >= buffer_cap_ / 2 &&
      buffer_cap_ < config_.max_rwnd_bytes) {
    tune_mark_ = rcv_nxt_;
    buffer_cap_ = std::min(buffer_cap_ * 2, config_.max_rwnd_bytes);
  }
}

std::uint32_t TcpReceiver::current_rwnd() {
  drain_app_reads();
  const std::uint32_t used = buffered_bytes();
  return used >= buffer_cap_ ? 0 : buffer_cap_ - used;
}

void TcpReceiver::add_ooo(Seq32 start, Seq32 end) {
  // Insert and merge overlapping/adjacent ranges; keep sorted by start.
  net::SackBlock blk{start, end};
  ooo_.push_back(blk);
  std::sort(ooo_.begin(), ooo_.end(),
            [](const net::SackBlock& a, const net::SackBlock& b) {
              return net::before(a.start, b.start);
            });
  std::vector<net::SackBlock> merged;
  for (const auto& b : ooo_) {
    if (!merged.empty() && net::at_or_before(b.start, merged.back().end)) {
      merged.back().end = net::seq_max(merged.back().end, b.end);
    } else {
      merged.push_back(b);
    }
  }
  ooo_ = std::move(merged);

  // Track reporting order: the block containing the new data goes first.
  const auto contains = [&](const net::SackBlock& b) {
    return net::at_or_after(start, b.start) && net::at_or_before(end, b.end);
  };
  recent_sacks_.clear();
  for (const auto& b : ooo_) {
    if (contains(b)) recent_sacks_.push_back(b);
  }
  for (const auto& b : ooo_) {
    if (!contains(b)) recent_sacks_.push_back(b);
  }
}

bool TcpReceiver::is_duplicate(Seq32 start, Seq32 end) const {
  if (net::at_or_before(end, rcv_nxt_)) return true;
  for (const auto& b : ooo_) {
    if (net::at_or_after(start, b.start) && net::at_or_before(end, b.end)) {
      return true;
    }
  }
  return false;
}

void TcpReceiver::on_data(Seq32 seq, std::uint32_t len) {
  const Seq32 prev_rcv_nxt = rcv_nxt_;
  on_data_impl(seq, len);
  invariants::on_receiver_data(*this, prev_rcv_nxt, sim_.now());
}

void TcpReceiver::on_data_impl(Seq32 seq, std::uint32_t len) {
  assert(len > 0);
  const Seq32 end = seq + len;
  drain_app_reads();

  std::optional<net::SackBlock> dsack;
  if (is_duplicate(seq, end)) {
    // Spurious retransmission: report via DSACK (RFC 2883) and ack now.
    if (config_.dsack_enabled) dsack = net::SackBlock{seq, end};
    ++dsacks_sent_;
    emit_ack(dsack);
    return;
  }

  if (net::at_or_before(seq, rcv_nxt_)) {
    // In-order (possibly partially duplicate) data.
    const bool had_holes = !ooo_.empty();
    rcv_nxt_ = net::seq_max(rcv_nxt_, end);
    // Absorb any out-of-order blocks now covered.
    while (!ooo_.empty() && net::at_or_before(ooo_.front().start, rcv_nxt_)) {
      rcv_nxt_ = net::seq_max(rcv_nxt_, ooo_.front().end);
      ooo_.erase(ooo_.begin());
    }
    if (had_holes) {
      // RFC 5681: ack immediately when a segment (partially) fills a gap,
      // with SACK blocks for whatever holes remain.
      recent_sacks_.assign(ooo_.begin(), ooo_.end());
      maybe_autotune();
      emit_ack(std::nullopt);
      return;
    }
    if (!recent_sacks_.empty()) recent_sacks_.clear();
    ++unacked_segments_;
    // tapo-lint: allow(seq-compare) — segment *counts*, not sequence numbers
    if (unacked_segments_ >= config_.ack_every) {
      emit_ack(std::nullopt);
    } else {
      arm_delack();
    }
    maybe_autotune();
    return;
  }

  // Out-of-order data: SACK it and ack immediately (dupack).
  add_ooo(seq, end);
  maybe_autotune();
  emit_ack(std::nullopt);
}

void TcpReceiver::on_fin(Seq32 seq) {
  drain_app_reads();
  if (seq == rcv_nxt_ && ooo_.empty()) {
    rcv_nxt_ = seq + 1;
    fin_seen_ = true;
  }
  emit_ack(std::nullopt);
}

void TcpReceiver::emit_ack(std::optional<net::SackBlock> dsack) {
  delack_timer_.cancel();
  unacked_segments_ = 0;

  AckSpec spec;
  spec.ack = rcv_nxt_;
  spec.rwnd_bytes = current_rwnd();
  // Receiver-side SWS avoidance (RFC 1122 4.2.3.3): advertise zero rather
  // than a sliver smaller than min(MSS, cap/2). This is what turns a slow
  // reader into the zero-window episodes of Table 3/4.
  if (spec.rwnd_bytes <
      std::min<std::uint32_t>(config_.mss, buffer_cap_ / 2)) {
    spec.rwnd_bytes = 0;
  }
  if (config_.sack_enabled) {
    if (dsack) spec.sack_blocks.push_back(*dsack);
    for (const auto& b : recent_sacks_) {
      // push_back drops the block (returns false) once the 4-slot wire
      // bound is reached.
      if (!spec.sack_blocks.push_back(b)) break;
    }
  }
  if (spec.rwnd_bytes == 0) {
    ++zero_window_acks_;
    advertised_zero_ = true;
    schedule_window_update_check();
  } else {
    advertised_zero_ = false;
  }
  invariants::on_ack_spec(*this, spec, sim_.now());
  send_ack_(spec);
}

void TcpReceiver::arm_delack() {
  if (!delack_timer_.armed()) delack_timer_.arm(config_.delack_timeout);
}

void TcpReceiver::on_delack_fire() { emit_ack(std::nullopt); }

void TcpReceiver::schedule_window_update_check() {
  if (window_update_pending_ || config_.app_read_Bps == 0) return;
  window_update_pending_ = true;
  // Re-check once the reader has had time to free at least one MSS; keep
  // polling while the window stays shut (reader pauses can hold it shut
  // for a long time).
  const double secs = static_cast<double>(config_.mss) /
                      static_cast<double>(config_.app_read_Bps);
  sim_.schedule(Duration::seconds(std::max(secs, 0.001)), [this] {
    window_update_pending_ = false;
    if (!advertised_zero_) return;
    if (current_rwnd() >= config_.mss) {
      emit_ack(std::nullopt);  // window update
    } else {
      schedule_window_update_check();
    }
  });
}

}  // namespace tapo::tcp
