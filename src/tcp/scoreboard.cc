#include "tcp/scoreboard.h"

#include <algorithm>
#include <cassert>

namespace tapo::tcp {

void Scoreboard::on_transmit(Seq32 start, Seq32 end, TimePoint now) {
  assert(net::after(end, start));
  if (started_) {
    assert(start == next_start_ && "transmissions must be contiguous");
  } else {
    started_ = true;
  }
  SegmentState seg;
  seg.start = start;
  seg.end = end;
  seg.first_sent = now;
  seg.last_sent = now;
  segs_.push_back(seg);
  next_start_ = end;
}

SegmentState* Scoreboard::find_mut(Seq32 seq) {
  for (auto& s : segs_) {
    if (net::seq_in_range(seq, s.start, s.end)) return &s;
  }
  return nullptr;
}

const SegmentState* Scoreboard::find(Seq32 seq) const {
  return const_cast<Scoreboard*>(this)->find_mut(seq);
}

void Scoreboard::set_sacked(SegmentState& s) {
  if (!s.sacked) {
    s.sacked = true;
    ++sacked_out_;
  }
  if (s.lost) {
    s.lost = false;
    --lost_out_;
  }
  clear_retrans_pending(s);
}

void Scoreboard::set_lost(SegmentState& s) {
  if (!s.lost) {
    s.lost = true;
    ++lost_out_;
  }
  clear_retrans_pending(s);
}

void Scoreboard::clear_retrans_pending(SegmentState& s) {
  if (s.retrans_pending) {
    s.retrans_pending = false;
    --retrans_out_;
  }
}

void Scoreboard::on_retransmit(Seq32 seq, TimePoint now, bool rto) {
  SegmentState* s = find_mut(seq);
  if (s == nullptr) return;
  if (s->retrans < 255) ++s->retrans;
  if (!s->retrans_pending) {
    s->retrans_pending = true;
    ++retrans_out_;
  }
  s->last_sent = now;
  if (rto) {
    s->rto_retransmitted = true;
  } else {
    s->fast_retransmitted = true;
  }
}

std::vector<SegmentState> Scoreboard::ack_to(Seq32 ack) {
  std::vector<SegmentState> acked;
  while (!segs_.empty() && net::at_or_before(segs_.front().end, ack)) {
    const SegmentState& s = segs_.front();
    if (s.sacked) --sacked_out_;
    if (s.lost) --lost_out_;
    if (s.retrans_pending) --retrans_out_;
    acked.push_back(s);
    segs_.pop_front();
  }
  return acked;
}

std::uint32_t Scoreboard::apply_sack(std::span<const net::SackBlock> blocks,
                                     Seq32 snd_una,
                                     std::vector<SegmentState>* newly_sacked) {
  std::uint32_t newly = 0;
  for (const auto& b : blocks) {
    if (net::at_or_before(b.end, snd_una)) continue;  // DSACK for acked data
    for (auto& s : segs_) {
      if (!s.sacked && net::at_or_after(s.start, b.start) &&
          net::at_or_before(s.end, b.end)) {
        if (newly_sacked != nullptr) newly_sacked->push_back(s);
        // A SACK for this segment supersedes any loss/retrans bookkeeping.
        set_sacked(s);
        ++newly;
      }
    }
  }
  return newly;
}

std::uint32_t Scoreboard::mark_lost_by_sack(std::uint32_t dupthres) {
  // Count SACKed segments above each position (scan from the back).
  std::uint32_t newly = 0;
  std::uint32_t sacked_above = 0;
  for (auto it = segs_.rbegin(); it != segs_.rend(); ++it) {
    if (it->sacked) {
      ++sacked_above;
      continue;
    }
    if (!it->lost && sacked_above >= dupthres) {
      set_lost(*it);
      ++newly;
    }
  }
  return newly;
}

Seq32 Scoreboard::highest_sacked() const {
  for (auto it = segs_.rbegin(); it != segs_.rend(); ++it) {
    if (it->sacked) return it->end;
  }
  return snd_una();
}

std::uint32_t Scoreboard::mark_lost_by_fack(std::uint32_t dupthres,
                                            std::uint32_t mss) {
  const Seq32 fack = highest_sacked();
  const std::uint64_t margin = static_cast<std::uint64_t>(dupthres) * mss;
  std::uint32_t newly = 0;
  for (auto& s : segs_) {
    if (s.sacked || s.lost) continue;
    if (net::at_or_after(s.end, fack)) break;  // nothing SACKed beyond here
    if (net::distance(s.end, fack) >= margin) {
      set_lost(s);
      ++newly;
    }
  }
  return newly;
}

bool Scoreboard::mark_head_lost() {
  for (auto& s : segs_) {
    if (s.sacked) continue;
    if (!s.lost) {
      set_lost(s);
      return true;
    }
    return false;
  }
  return false;
}

void Scoreboard::mark_all_lost() {
  for (auto& s : segs_) {
    if (!s.sacked) set_lost(s);
  }
}

void Scoreboard::clear_lost_marks() {
  for (auto& s : segs_) s.lost = false;
  lost_out_ = 0;
}

const SegmentState* Scoreboard::first_unsacked() const {
  for (const auto& s : segs_) {
    if (!s.sacked) return &s;
  }
  return nullptr;
}

const SegmentState* Scoreboard::last_unsacked() const {
  for (auto it = segs_.rbegin(); it != segs_.rend(); ++it) {
    if (!it->sacked) return &*it;
  }
  return nullptr;
}

std::uint32_t Scoreboard::holes() const {
  // UnSACKed, unlost segments with at least one SACKed segment above them.
  std::uint32_t n = 0;
  bool any_sacked_above = false;
  for (auto it = segs_.rbegin(); it != segs_.rend(); ++it) {
    if (it->sacked) {
      any_sacked_above = true;
    } else if (any_sacked_above && !it->lost) {
      ++n;
    }
  }
  return n;
}

std::uint32_t Scoreboard::in_flight() const {
  const std::uint32_t out = packets_out() + retrans_out_;
  const std::uint32_t gone = sacked_out_ + lost_out_;
  return out > gone ? out - gone : 0;
}

std::optional<Seq32> Scoreboard::next_lost_to_retransmit() const {
  for (const auto& s : segs_) {
    if (s.lost && !s.retrans_pending && !s.sacked) return s.start;
  }
  return std::nullopt;
}

}  // namespace tapo::tcp
