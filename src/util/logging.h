// Minimal leveled logger.
//
// The library is a measurement tool, so logging defaults to warnings only;
// examples and debugging sessions can raise the level. No global mutable
// singletons beyond the level itself; log lines go to stderr.
#pragma once

#include <sstream>
#include <string>

namespace tapo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; returns the previous one.
LogLevel set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

void emit_log(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit_log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TAPO_LOG(level)                                  \
  if (::tapo::log_level() <= ::tapo::LogLevel::level)    \
  ::tapo::internal::LogLine(::tapo::LogLevel::level)

#define TAPO_DEBUG TAPO_LOG(kDebug)
#define TAPO_INFO TAPO_LOG(kInfo)
#define TAPO_WARN TAPO_LOG(kWarn)
#define TAPO_ERROR TAPO_LOG(kError)

}  // namespace tapo
