// Validated environment-variable parsing for the knobs bench binaries and
// examples expose (TAPO_BENCH_FLOWS, TAPO_BENCH_THREADS, ...). Malformed
// values must never silently change an experiment: they warn and fall back
// to the caller's default instead of relying on strtol's lenient parsing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace tapo::util {

/// Strict parse of a positive decimal size. Rejects empty strings, signs,
/// non-digit characters (including trailing junk), zero, and values that
/// overflow std::size_t.
std::optional<std::size_t> parse_positive_size(const std::string& text);

/// Reads env var `name` as a positive size. Unset -> `dflt`; malformed or
/// zero -> warning on stderr + `dflt`.
std::size_t env_positive_size(const char* name, std::size_t dflt);

/// Strict parse of an unsigned decimal integer. Unlike parse_positive_size
/// it accepts zero; it still rejects empty strings, signs, trailing junk,
/// and overflow.
std::optional<std::uint64_t> parse_u64(const std::string& text);

/// Strict parse of 1-4 hexadecimal digits (no 0x prefix, either case).
/// Rejects empty strings, longer inputs, and any non-hex character.
std::optional<std::uint16_t> parse_hex_u16(const std::string& text);

/// Reads env var `name` as a non-negative size (zero allowed). Unset ->
/// `dflt`; malformed -> warning on stderr + `dflt`.
std::size_t env_size(const char* name, std::size_t dflt);

}  // namespace tapo::util
