// Validated environment-variable parsing for the knobs bench binaries and
// examples expose (TAPO_BENCH_FLOWS, TAPO_BENCH_THREADS, ...). Malformed
// values must never silently change an experiment: they warn and fall back
// to the caller's default instead of relying on strtol's lenient parsing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace tapo::util {

/// Strict parse of a positive decimal size. Rejects empty strings, signs,
/// non-digit characters (including trailing junk), zero, and values that
/// overflow std::size_t.
std::optional<std::size_t> parse_positive_size(const std::string& text);

/// Reads env var `name` as a positive size. Unset -> `dflt`; malformed or
/// zero -> warning on stderr + `dflt`.
std::size_t env_positive_size(const char* name, std::size_t dflt);

}  // namespace tapo::util
