// Deterministic random number generation.
//
// Experiments must be exactly reproducible across runs and across recovery
// mechanisms (Table 8 compares Native/TLP/S-RTO on the *same* workload), so
// every random decision in the library flows through an explicitly seeded
// Rng. The generator is xoshiro256** seeded via splitmix64 — fast,
// high-quality, and stable across platforms (unlike std::mt19937 +
// std::distributions whose output is implementation-defined for some
// distributions).
#pragma once

#include <cstdint>
#include <cmath>

namespace tapo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (no state caching; stable output).
  double normal(double mean, double stddev);

  /// Log-normal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bounded Pareto on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi);

  /// Split off an independent stream (for per-flow generators).
  Rng split();

  /// The seed `split()` would hand the child stream. Exposed so a runner
  /// can precompute per-flow seeds as a pure function of (seed, index) —
  /// seed i is the i-th `split_seed()` of a master stream — and replay any
  /// single flow without advancing a shared generator.
  std::uint64_t split_seed();

 private:
  std::uint64_t s_[4];
};

}  // namespace tapo
