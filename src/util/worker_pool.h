// Small persistent worker pool for embarrassingly parallel index spaces.
//
// The experiment runner shards independent flows across cores: each flow
// lives in a private simulator, so the only coordination needed is handing
// out indices and joining at the end. WorkerPool keeps N threads alive
// across jobs (bench binaries run several experiments back to back) and
// dispatches `fn(index, worker)` over [0, count) via an atomic cursor, so
// scheduling is dynamic (fast workers steal the tail) while results stay
// deterministic as long as `fn` depends only on `index`.
//
// Locking discipline (checked by -Wthread-safety under Clang): every piece
// of job state is TAPO_GUARDED_BY(mu_); the only lock-free member is the
// work-stealing cursor, whose ordering argument lives on its declaration.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tapo::util {

class WorkerPool {
 public:
  /// Task invoked once per index; `worker` in [0, size()) identifies the
  /// executing thread so tasks can keep per-worker accumulators without
  /// locking.
  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  /// Spawns `threads` workers (clamped to >= 1).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Runs fn(i, worker) for every i in [0, count), blocking until all
  /// indices finish. If a task throws, the first exception is rethrown
  /// here and remaining indices are abandoned. Not reentrant: one job at
  /// a time per pool.
  void for_each(std::size_t count, const Task& fn) TAPO_EXCLUDES(mu_);

  /// Per-worker seconds spent inside `fn` during the last for_each — the
  /// numerator of a utilization figure (busy / (workers * wall)). Returns
  /// a copy taken under the pool lock, so it is safe to call while the
  /// next job runs (the figures are then mid-update, but never torn).
  std::vector<double> busy_seconds() const TAPO_EXCLUDES(mu_);

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_threads();

 private:
  void worker_main(std::size_t id);

  std::vector<std::thread> threads_;  // written only in the constructor

  mutable Mutex mu_;
  CondVar cv_work_;
  CondVar cv_done_;
  const Task* task_ TAPO_GUARDED_BY(mu_) = nullptr;  // valid while a job runs
  std::size_t count_ TAPO_GUARDED_BY(mu_) = 0;  // indices in the live job
  // lock-free: pure work-stealing cursor — each fetch_add claims a distinct
  // index and no other state is published through it; the job's inputs are
  // ordered by mu_ and the results by the per-index task itself.
  std::atomic<std::size_t> next_{0};
  std::size_t active_ TAPO_GUARDED_BY(mu_) = 0;  // workers still draining
  std::uint64_t generation_ TAPO_GUARDED_BY(mu_) = 0;  // bumped per job
  bool stop_ TAPO_GUARDED_BY(mu_) = false;
  std::vector<double> busy_s_ TAPO_GUARDED_BY(mu_);
  std::exception_ptr error_ TAPO_GUARDED_BY(mu_);
};

}  // namespace tapo::util
