// Small persistent worker pool for embarrassingly parallel index spaces.
//
// The experiment runner shards independent flows across cores: each flow
// lives in a private simulator, so the only coordination needed is handing
// out indices and joining at the end. WorkerPool keeps N threads alive
// across jobs (bench binaries run several experiments back to back) and
// dispatches `fn(index, worker)` over [0, count) via an atomic cursor, so
// scheduling is dynamic (fast workers steal the tail) while results stay
// deterministic as long as `fn` depends only on `index`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tapo::util {

class WorkerPool {
 public:
  /// Task invoked once per index; `worker` in [0, size()) identifies the
  /// executing thread so tasks can keep per-worker accumulators without
  /// locking.
  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  /// Spawns `threads` workers (clamped to >= 1).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Runs fn(i, worker) for every i in [0, count), blocking until all
  /// indices finish. If a task throws, the first exception is rethrown
  /// here and remaining indices are abandoned. Not reentrant: one job at
  /// a time per pool.
  void for_each(std::size_t count, const Task& fn);

  /// Per-worker seconds spent inside `fn` during the last for_each — the
  /// numerator of a utilization figure (busy / (workers * wall)).
  const std::vector<double>& busy_seconds() const { return busy_s_; }

  /// max(1, std::thread::hardware_concurrency()).
  static std::size_t hardware_threads();

 private:
  void worker_main(std::size_t id);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const Task* task_ = nullptr;     // valid while a job is live
  std::size_t count_ = 0;          // indices in the live job
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;         // workers still draining the live job
  std::uint64_t generation_ = 0;   // bumped per job to wake workers
  bool stop_ = false;
  std::vector<double> busy_s_;
  std::exception_ptr error_;
};

}  // namespace tapo::util
