#include "util/rng.h"

namespace tapo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % range);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  double u;
  do { u = next_double(); } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do { u1 = next_double(); } while (u1 <= 0.0);
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::uint64_t Rng::split_seed() { return next_u64() ^ 0xdeadbeefcafef00dULL; }

Rng Rng::split() { return Rng(split_seed()); }

}  // namespace tapo
