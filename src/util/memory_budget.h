// Byte-level accounting for the streaming trace pipeline.
//
// A MemoryBudget is the ledger every resident byte of the pipeline is
// charged against: sealed chunks in flight (TraceChunk charges on
// construction and releases on destruction), per-flow buffered state in
// the live analyzer, and anything else a stage wants bounded. It is pure
// bookkeeping — enforcement (evicting the oldest flow when the ledger
// runs over) lives in the consumer, so this header stays dependency-free
// and usable from the lowest layer (src/net charges against it).
//
// A limit of 0 means unlimited: charges are still tracked (resident /
// high_water stay meaningful for reporting) but over_budget() is never
// true. Not thread-safe by design: one pipeline, one thread, one budget —
// the parallel runner gives each worker its own. When a budget must be
// shared across threads, it is held behind a capability instead of grown
// locks of its own: analysis::SharedLiveAnalyzer declares its owned ledger
// `util::MemoryBudget budget_ TAPO_GUARDED_BY(mu_)`, so every charge/
// release happens inside the same annotated critical section as the flow
// table it bounds, and -Wthread-safety rejects any unguarded path.
#pragma once

#include <cstddef>

namespace tapo::util {

class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(std::size_t limit_bytes) : limit_(limit_bytes) {}

  std::size_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }

  void charge(std::size_t bytes) {
    resident_ += bytes;
    if (resident_ > high_water_) high_water_ = resident_;
  }
  void release(std::size_t bytes) {
    // Clamp rather than wrap: a release that exceeds the ledger is an
    // accounting bug upstream, but turning it into a 2^64-byte resident
    // figure would disable eviction entirely — fail toward bounded memory.
    resident_ = bytes > resident_ ? 0 : resident_ - bytes;
  }

  /// Bytes currently charged.
  std::size_t resident() const { return resident_; }
  /// Largest resident() ever observed.
  std::size_t high_water() const { return high_water_; }

  bool over_budget() const { return limit_ != 0 && resident_ > limit_; }

 private:
  std::size_t limit_ = 0;
  std::size_t resident_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace tapo::util
