// Annotated mutex primitives: the project's only sanctioned locks.
//
// util::Mutex / util::MutexLock / util::CondVar wrap std::mutex,
// std::lock_guard and std::condition_variable with the Clang
// thread-safety-analysis attributes from util/thread_annotations.h, so
// every acquisition is visible to -Wthread-safety and every
// TAPO_GUARDED_BY member access is checked against it. tapo_lint's
// `lock-discipline` rule enforces the flip side: spelling std::mutex /
// std::lock_guard / std::unique_lock outside src/util/ is a finding, so
// new concurrent code cannot silently opt out of the analysis.
//
// CondVar deliberately exposes only the capability-aware shape:
//   while (!predicate) cv.wait(mu);   // inside a TAPO_REQUIRES(mu) scope
// rather than the std::condition_variable lambda-predicate overloads — a
// lambda body is a separate function to the analysis, so guarded reads
// inside one would need their own (unattachable) annotations. The
// explicit loop keeps every guarded access inside the annotated scope.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tapo::util {

class CondVar;

/// std::mutex as a Clang thread-safety capability.
class TAPO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TAPO_ACQUIRE() { mu_.lock(); }
  void unlock() TAPO_RELEASE() { mu_.unlock(); }
  bool try_lock() TAPO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() re-waits on the underlying handle
  std::mutex mu_;
};

/// RAII lock over a Mutex (std::lock_guard with a scoped capability).
class TAPO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TAPO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() TAPO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to util::Mutex. wait() declares the
/// capability contract the analysis needs: the mutex is held on entry and
/// (again) on exit; the internal release/reacquire is invisible to the
/// caller's critical section, exactly as with std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Spurious wakeups happen; always call from a `while (!pred)` loop.
  void wait(Mutex& mu) TAPO_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the annotated Mutex keeps it.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tapo::util
