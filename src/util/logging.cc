#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace tapo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel set_log_level(LogLevel level) { return g_level.exchange(level); }
LogLevel log_level() { return g_level.load(); }

namespace internal {

void emit_log(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace internal
}  // namespace tapo
