// Small string/formatting helpers shared by reports and bench output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tapo {

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.7MB", "129KB", "14KB" — human-readable byte counts as in Table 1.
std::string human_bytes(double bytes);

/// "1.2s", "143ms" — human-readable durations.
std::string human_us(double us);

/// Percentage with one decimal, e.g. "45.4%".
std::string pct(double fraction);

std::vector<std::string> split(const std::string& s, char sep);

}  // namespace tapo
