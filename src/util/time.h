// Strong time types used throughout the library.
//
// All simulation and trace timestamps are expressed in microseconds since an
// arbitrary epoch (the start of a simulation run, or the pcap epoch when
// analyzing real captures). Using an integral microsecond representation
// matches the precision of classic libpcap captures and avoids the
// floating-point drift that plagues long simulations.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tapo {

/// A span of time in microseconds. Value type; cheap to copy.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration micros(std::int64_t us) { return Duration(us); }
  constexpr static Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  constexpr static Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1'000'000.0));
  }
  constexpr static Duration zero() { return Duration(0); }
  constexpr static Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double ms() const { return static_cast<double>(us_) / 1000.0; }
  constexpr double sec() const { return static_cast<double>(us_) / 1'000'000.0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(us_ * k); }
  constexpr Duration operator*(int k) const { return Duration(us_ * k); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration(us_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }
  Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An instant on the simulation / capture timeline.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint from_us(std::int64_t us) { return TimePoint(us); }
  constexpr static TimePoint epoch() { return TimePoint(0); }
  constexpr static TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double sec() const { return static_cast<double>(us_) / 1'000'000.0; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint(us_ + d.us()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(us_ - d.us()); }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::micros(us_ - o.us_);
  }

 private:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Floors `t` to a multiple of `q` (negative-safe: -3us at q=10us floors to
/// -10us, matching what a coarse capture clock would stamp). Idempotent —
/// floor_to(floor_to(t, q), q) == floor_to(t, q) — which is what makes
/// analysis at a declared clock granularity invariant to capture-side
/// quantization at the same granularity. q <= 0 returns t unchanged.
constexpr TimePoint floor_to(TimePoint t, Duration q) {
  if (q <= Duration::zero()) return t;
  const std::int64_t us = t.us();
  const std::int64_t step = q.us();
  std::int64_t floored = us / step * step;
  if (us < 0 && us % step != 0) floored -= step;
  return TimePoint::from_us(floored);
}

inline std::string to_string(Duration d) {
  if (d.us() >= 1'000'000) return std::to_string(d.sec()) + "s";
  if (d.us() >= 1'000) return std::to_string(d.ms()) + "ms";
  return std::to_string(d.us()) + "us";
}

}  // namespace tapo
