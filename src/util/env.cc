#include "util/env.h"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "util/logging.h"

namespace tapo::util {

std::optional<std::size_t> parse_positive_size(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_size(const char* name, std::size_t dflt) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return dflt;
  if (const auto parsed = parse_positive_size(raw)) return *parsed;
  TAPO_WARN << name << "='" << raw
            << "' is not a positive integer; using default " << dflt;
  return dflt;
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint16_t> parse_hex_u16(const std::string& text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const char c : text) {
    std::uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint32_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint32_t>(c - 'A') + 10;
    } else {
      return std::nullopt;
    }
    value = value * 16 + digit;
  }
  return static_cast<std::uint16_t>(value);
}

std::size_t env_size(const char* name, std::size_t dflt) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return dflt;
  if (const auto parsed = parse_u64(raw)) {
    if (*parsed <= std::numeric_limits<std::size_t>::max()) {
      return static_cast<std::size_t>(*parsed);
    }
  }
  TAPO_WARN << name << "='" << raw
            << "' is not a non-negative integer; using default " << dflt;
  return dflt;
}

}  // namespace tapo::util
