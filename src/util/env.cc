#include "util/env.h"

#include <cctype>
#include <cstdlib>
#include <limits>

#include "util/logging.h"

namespace tapo::util {

std::optional<std::size_t> parse_positive_size(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_size(const char* name, std::size_t dflt) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return dflt;
  if (const auto parsed = parse_positive_size(raw)) return *parsed;
  TAPO_WARN << name << "='" << raw
            << "' is not a positive integer; using default " << dflt;
  return dflt;
}

}  // namespace tapo::util
