#include "util/worker_pool.h"

#include <chrono>

namespace tapo::util {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  busy_s_.assign(threads, 0.0);
  threads_.reserve(threads);
  for (std::size_t id = 0; id < threads; ++id) {
    threads_.emplace_back([this, id] { worker_main(id); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::for_each(std::size_t count, const Task& fn) {
  MutexLock lock(mu_);
  task_ = &fn;
  count_ = count;
  // tapo-lint: allow(relaxed-atomic) — publication ordered by the mutex
  next_.store(0, std::memory_order_relaxed);
  active_ = threads_.size();
  busy_s_.assign(threads_.size(), 0.0);
  error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  while (active_ != 0) cv_done_.wait(mu_);
  task_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void WorkerPool::worker_main(std::size_t id) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const Task* task = nullptr;
    std::size_t count = 0;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) cv_work_.wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
      count = count_;
    }

    double busy = 0.0;
    while (true) {
      // tapo-lint: allow(relaxed-atomic) — pure work-stealing counter
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        (*task)(i, id);
      } catch (...) {
        MutexLock lock(mu_);
        if (!error_) error_ = std::current_exception();
        // Fast-forward the cursor so every worker abandons the job.
        // tapo-lint: allow(relaxed-atomic) — best-effort cancel; mutex above
        next_.store(count, std::memory_order_relaxed);
      }
      busy += seconds_since(t0);
    }

    MutexLock lock(mu_);
    busy_s_[id] = busy;
    if (--active_ == 0) cv_done_.notify_all();
  }
}

std::vector<double> WorkerPool::busy_seconds() const {
  MutexLock lock(mu_);
  return busy_s_;
}

std::size_t WorkerPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace tapo::util
