// Portable Clang thread-safety-analysis annotations.
//
// The locking discipline of every concurrent component (WorkerPool, the
// telemetry Tracer/Registry, the runner's ordered merge, the shared live
// analyzer, the fleet aggregator) is declared with these macros so that a
// Clang build with -Wthread-safety -Werror=thread-safety turns a missing
// lock into a compile error instead of a comment violation. Under any
// other compiler (or Clang without the attribute) every macro expands to
// nothing, so the annotations cost zero and gate nothing outside the
// dedicated `thread-safety` CI configuration (tools/ci/run_matrix.sh).
//
// Vocabulary (mirrors the Clang attribute set one-to-one):
//   TAPO_CAPABILITY(name)      class is a lockable capability ("mutex")
//   TAPO_SCOPED_CAPABILITY     RAII type that acquires in its constructor
//                              and releases in its destructor (MutexLock)
//   TAPO_GUARDED_BY(mu)        data member readable/writable only with mu
//   TAPO_PT_GUARDED_BY(mu)     pointer member whose *pointee* needs mu
//   TAPO_ACQUIRE(...)          function acquires the capability and does
//                              not release it before returning
//   TAPO_RELEASE(...)          function releases the capability
//   TAPO_REQUIRES(...)         caller must hold the capability across the
//                              call (held on entry AND on exit — the shape
//                              a condition-variable wait declares)
//   TAPO_EXCLUDES(...)         caller must NOT hold the capability (the
//                              function takes it itself; deadlock guard)
//   TAPO_TRY_ACQUIRE(b, ...)   acquires only when returning `b`
//   TAPO_ASSERT_CAPABILITY(x)  runtime assertion that x is held
//   TAPO_RETURN_CAPABILITY(x)  function returns a reference to capability x
//   TAPO_NO_THREAD_SAFETY_ANALYSIS  opt a function out (init/teardown code
//                              that is single-threaded by construction);
//                              every use must say why in a comment
//
// Intentionally lock-free state (the telemetry fast paths, WorkerPool's
// work-stealing cursor) carries no annotation; the convention there is a
// `// lock-free:` comment on the member stating the ordering argument, so
// a reader can tell "analyzed and guarded" from "analyzed and deliberately
// atomic" at a glance. See DESIGN.md §15 for the capability map.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TAPO_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef TAPO_THREAD_ANNOTATION__
#define TAPO_THREAD_ANNOTATION__(x)  // not Clang: annotations are no-ops
#endif

#define TAPO_CAPABILITY(x) TAPO_THREAD_ANNOTATION__(capability(x))
#define TAPO_SCOPED_CAPABILITY TAPO_THREAD_ANNOTATION__(scoped_lockable)
#define TAPO_GUARDED_BY(x) TAPO_THREAD_ANNOTATION__(guarded_by(x))
#define TAPO_PT_GUARDED_BY(x) TAPO_THREAD_ANNOTATION__(pt_guarded_by(x))
#define TAPO_ACQUIRE(...) \
  TAPO_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define TAPO_RELEASE(...) \
  TAPO_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define TAPO_REQUIRES(...) \
  TAPO_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define TAPO_EXCLUDES(...) TAPO_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define TAPO_TRY_ACQUIRE(...) \
  TAPO_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TAPO_ASSERT_CAPABILITY(x) \
  TAPO_THREAD_ANNOTATION__(assert_capability(x))
#define TAPO_RETURN_CAPABILITY(x) TAPO_THREAD_ANNOTATION__(lock_returned(x))
#define TAPO_NO_THREAD_SAFETY_ANALYSIS \
  TAPO_THREAD_ANNOTATION__(no_thread_safety_analysis)
