#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace tapo {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string human_bytes(double bytes) {
  if (bytes >= 1e9) return str_format("%.1fGB", bytes / 1e9);
  if (bytes >= 1e6) return str_format("%.1fMB", bytes / 1e6);
  if (bytes >= 1e3) return str_format("%.0fKB", bytes / 1e3);
  return str_format("%.0fB", bytes);
}

std::string human_us(double us) {
  if (us >= 1e6) return str_format("%.1fs", us / 1e6);
  if (us >= 1e3) return str_format("%.0fms", us / 1e3);
  return str_format("%.0fus", us);
}

std::string pct(double fraction) { return str_format("%.1f%%", fraction * 100.0); }

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace tapo
