// Strong-type machinery for compile-time invariant enforcement.
//
// Two bug classes motivate this header (DESIGN.md "Static analysis &
// invariants"):
//
//  1. Wrapping counters compared with ordinary relational operators. A TCP
//     sequence number is a *serial number* (RFC 1982): a flow that crosses
//     the 2^32 wrap (any upload past 4 GB — routine for the paper's
//     cloud-storage service, Table 1) makes `seq_a < seq_b` on raw uint32_t
//     silently wrong, which misorders snd_una/snd_nxt/SACK edges and
//     misclassifies stalls. Linux bans raw comparisons with before()/
//     after(); SerialNumber<> makes the *compiler* ban them: no implicit
//     conversion to or from integers, and all comparisons go through
//     signed-difference serial arithmetic.
//
//  2. Unit mixups between integral quantities (milliseconds fed where
//     microseconds are expected, and vice versa). util/time.h's Duration /
//     TimePoint already enforce this for time; SerialNumber provides the
//     same discipline for wrap-prone counters (TCP sequence numbers via
//     net::Seq32, and any future wrapping 32-bit counter such as TCP
//     timestamp clocks).
//
// The free functions (serial_diff / serial_before / ...) are usable on raw
// unsigned values when a strong type is not warranted; SerialNumber wraps
// them into a distinct, trivially copyable value type.
#pragma once

#include <cstdint>
#include <type_traits>

namespace tapo::util {

// ---------------------------------------------------------------------------
// RFC 1982 serial-number arithmetic over any unsigned integer type.
// ---------------------------------------------------------------------------

/// Signed difference a - b in serial arithmetic: positive when `a` is ahead
/// of `b`, negative when behind. Well-defined for distances under half the
/// number space (2^31 for uint32_t) — exactly the window TCP guarantees.
template <typename UInt>
constexpr std::make_signed_t<UInt> serial_diff(UInt a, UInt b) {
  static_assert(std::is_unsigned_v<UInt>, "serial arithmetic needs an "
                                          "unsigned representation");
  return static_cast<std::make_signed_t<UInt>>(static_cast<UInt>(a - b));
}

/// Linux's before(): `a` is strictly earlier than `b` across wraparound.
template <typename UInt>
constexpr bool serial_before(UInt a, UInt b) {
  return serial_diff(a, b) < 0;
}

/// Linux's after(): `a` is strictly later than `b` across wraparound.
template <typename UInt>
constexpr bool serial_after(UInt a, UInt b) {
  return serial_diff(a, b) > 0;
}

// ---------------------------------------------------------------------------
// SerialNumber<Tag, UInt>: a wrap-safe strong serial-number type.
// ---------------------------------------------------------------------------

/// A distinct, trivially copyable serial-number type.
///
///  - Construction from the raw representation is explicit; there is no
///    conversion back (use raw()). Mixing with integers or with a
///    SerialNumber of a different Tag does not compile.
///  - operator< / <= / > / >= implement wraparound-safe serial comparison.
///    Note they are NOT a total order over the whole number space (serial
///    comparison cannot be); they are a strict weak ordering over any set
///    of values spanning less than half the space, which TCP windows
///    guarantee. Project style in src/ is the named helpers (seq.h's
///    before()/after()/...), enforced by tapo_lint's seq-compare rule;
///    the operators exist for generic code, tests and assertions.
///  - operator+/-(UInt) advance/retreat along the stream (mod 2^N);
///    operator-(SerialNumber) yields the signed serial difference.
template <typename Tag, typename UInt>
class SerialNumber {
  static_assert(std::is_unsigned_v<UInt>);

 public:
  using rep = UInt;
  using difference_type = std::make_signed_t<UInt>;

  constexpr SerialNumber() = default;
  constexpr explicit SerialNumber(UInt raw) : raw_(raw) {}

  constexpr UInt raw() const { return raw_; }

  constexpr bool operator==(const SerialNumber&) const = default;

  friend constexpr bool operator<(SerialNumber a, SerialNumber b) {
    return serial_before(a.raw_, b.raw_);
  }
  friend constexpr bool operator>(SerialNumber a, SerialNumber b) {
    return serial_after(a.raw_, b.raw_);
  }
  friend constexpr bool operator<=(SerialNumber a, SerialNumber b) {
    return !serial_after(a.raw_, b.raw_);
  }
  friend constexpr bool operator>=(SerialNumber a, SerialNumber b) {
    return !serial_before(a.raw_, b.raw_);
  }

  /// Advance / retreat along the stream; wraps mod 2^N by construction.
  friend constexpr SerialNumber operator+(SerialNumber s, UInt n) {
    return SerialNumber(static_cast<UInt>(s.raw_ + n));
  }
  friend constexpr SerialNumber operator-(SerialNumber s, UInt n) {
    return SerialNumber(static_cast<UInt>(s.raw_ - n));
  }
  constexpr SerialNumber& operator+=(UInt n) {
    raw_ = static_cast<UInt>(raw_ + n);
    return *this;
  }
  constexpr SerialNumber& operator-=(UInt n) {
    raw_ = static_cast<UInt>(raw_ - n);
    return *this;
  }

  /// Signed serial difference (ahead-of distance; see serial_diff).
  friend constexpr difference_type operator-(SerialNumber a, SerialNumber b) {
    return serial_diff(a.raw_, b.raw_);
  }

 private:
  UInt raw_ = 0;
};

}  // namespace tapo::util
