// Streaming TAPO: continuous analysis of a live packet feed.
//
// The paper's TAPO ran offline on daily traces but was "integrated into the
// TCP analysis platform for daily maintenance of the network" (§3.3). This
// is that integration surface: packets are fed one at a time (e.g. from a
// capture socket), flows are tracked in a bounded-memory table, and each
// flow is analyzed with the full offline fidelity when it finishes (FIN
// observed + quiescent) or idles out.
//
// Memory bounds: at most `max_flows` concurrent flows (least-recently-
// active evicted first) and at most `max_packets_per_flow` buffered packets
// per flow (flows exceeding it are analyzed and restarted, counted in
// `truncated_flows`). With a util::MemoryBudget attached the bound becomes
// byte-accurate: every buffered flow charges its arena footprint against
// the shared pipeline ledger, and crossing the soft limit finalizes flows
// from the LRU front instead of letting residency grow toward OOM.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "net/chunk.h"
#include "tapo/analyzer.h"
#include "tapo/sink.h"
#include "util/memory_budget.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tapo::analysis {

struct LiveConfig {
  AnalyzerConfig analyzer;
  DemuxOptions demux;
  /// A flow with no packet for this long is finished and analyzed.
  Duration idle_timeout = Duration::seconds(60.0);
  /// A flow whose FIN (both-direction quiescence) is this old is finalized.
  Duration fin_linger = Duration::seconds(3.0);
  std::size_t max_flows = 100'000;
  std::size_t max_packets_per_flow = 200'000;
  /// Optional shared pipeline ledger (non-owning; must outlive the
  /// analyzer). When set and limited, every buffered flow charges its
  /// arena footprint plus a fixed per-flow overhead; once residency
  /// crosses the soft limit (half the cap) the least-recently-active
  /// flows are analyzed-and-dropped until back under it, and a single
  /// flow that outgrows the budget alone is analyzed-and-restarted like
  /// the max_packets_per_flow truncation path. An evicted flow that
  /// keeps sending restarts mid-stream, which the classifier already
  /// surfaces as capture-suspect rather than inventing a stall cause.
  /// The half-budget headroom keeps the *peak* (which includes the open
  /// ingest chunk and the finalize-time transients that scale with the
  /// largest buffered flow) under the configured cap, not just the
  /// steady state.
  util::MemoryBudget* mem_budget = nullptr;

  // Fluent construction (aggregate-init keeps working); setters validate
  // eagerly and throw std::invalid_argument, mirroring ExperimentConfig.
  LiveConfig& with_analyzer(const AnalyzerConfig& a);
  LiveConfig& with_demux(const DemuxOptions& d);
  LiveConfig& with_idle_timeout(Duration d);   // > 0
  LiveConfig& with_fin_linger(Duration d);     // >= 0
  LiveConfig& with_max_flows(std::size_t n);   // > 0
  LiveConfig& with_max_packets_per_flow(std::size_t n);  // > 1
  LiveConfig& with_mem_budget(util::MemoryBudget* b);    // nullptr detaches

  /// Throws std::invalid_argument on any unusable field (non-positive
  /// idle_timeout, zero max_flows, ...). Called by the LiveAnalyzer
  /// constructors, plus the nested analyzer/demux validations.
  void validate() const;
};

struct LiveStats {
  std::uint64_t packets = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_finalized = 0;
  std::uint64_t flows_evicted = 0;    // table-full evictions
  std::uint64_t truncated_flows = 0;  // per-flow packet cap hit
  std::uint64_t budget_evictions = 0; // mem-budget soft-limit evictions
  std::size_t active_flows = 0;
  /// Bytes currently charged by this analyzer's flow table (subset of the
  /// shared budget's resident() when other stages charge the same ledger).
  std::size_t flow_bytes = 0;
};

class LiveAnalyzer {
 public:
  /// Called with the completed analysis whenever a flow is finalized.
  using FlowDoneFn = std::function<void(const FlowAnalysis&)>;

  explicit LiveAnalyzer(LiveConfig config, FlowDoneFn on_flow_done);

  /// Streams finalized flows into a tapo::FlowSink — the same delivery API
  /// the parallel experiment runner uses, so one sink implementation (an
  /// aggregator, a CSV writer) serves both producers. Each finalized flow
  /// becomes one FlowResult{index = finalize ordinal, analyses, packets};
  /// the simulation-only outcome fields stay default. flush() calls
  /// sink.finish() once with the flows-finalized total. The sink must
  /// outlive the analyzer.
  LiveAnalyzer(LiveConfig config, FlowSink& sink);

  /// Feeds one packet. Packets must arrive in (roughly) capture order;
  /// the packet's timestamp drives idle-timeout bookkeeping.
  void add_packet(const net::CapturedPacket& pkt);

  /// Feeds every packet of a sealed chunk (the StreamingReader hand-off).
  /// The chunk stays owned by the caller; its packets are copied into the
  /// per-flow arenas, so the caller should drop the chunk right after —
  /// holding both doubles residency.
  void add_chunk(const net::TraceChunk& chunk);

  /// Finalizes every remaining flow (end of capture / shutdown). With a
  /// FlowSink attached, also invokes its finish() — call flush() once.
  void flush();

  const LiveStats& stats() const { return stats_; }

 private:
  struct Entry {
    net::PacketTrace trace;
    TimePoint last_activity;
    std::size_t charged_bytes = 0;  // what this flow holds in the budget
    bool fin_seen = false;
    std::list<net::FlowKey>::iterator lru_it;
  };

  /// Ledger charge per tracked flow beyond its packet arena (hash-table
  /// slot, LRU node, Entry bookkeeping). A coarse constant: the point is
  /// that a million tiny flows still register, not byte-exact malloc math.
  static constexpr std::size_t kFlowOverheadBytes = 512;

  void finalize(const net::FlowKey& key);
  void reap(TimePoint now);
  /// Re-syncs `entry`'s budget charge with its current arena capacity.
  void recharge(Entry& entry);
  /// Ledger bytes `entry` will hold after one more append — mirrors
  /// PacketTrace's geometric growth so eviction can run BEFORE the
  /// allocation that would overshoot the cap.
  std::size_t charge_after_append(const Entry& entry) const;
  /// Eviction threshold: half the cap (see LiveConfig::mem_budget).
  std::size_t soft_limit() const;
  /// Analyzes-and-drops LRU-front flows while the shared ledger plus
  /// `incoming` bytes sits above the soft limit. Never drops `keep`
  /// (the flow about to receive the incoming bytes).
  void evict_for(std::size_t incoming, const net::FlowKey* keep);
  void evict_over_budget() { evict_for(0, nullptr); }
  void update_resident_gauge();

  LiveConfig config_;
  FlowDoneFn on_flow_done_;
  FlowSink* sink_ = nullptr;        // optional streaming delivery target
  std::size_t sink_ordinal_ = 0;    // FlowResult::index for the next flow
  Analyzer analyzer_;

  std::unordered_map<net::FlowKey, Entry, net::FlowKeyHash> flows_;
  /// LRU order: front = least recently active.
  std::list<net::FlowKey> lru_;
  LiveStats stats_;
};

/// Thread-safe facade over LiveAnalyzer for multi-threaded capture: N
/// ingest threads call add_packet()/add_chunk() concurrently while another
/// thread polls stats(), all serialized by one annotated util::Mutex
/// capability. LiveAnalyzer itself (and util::MemoryBudget, its ledger)
/// stays deliberately single-threaded — one pipeline, one thread — so the
/// facade owns a private MemoryBudget and rebinds the config's ledger
/// pointer to it, making the budget's every charge/release/evict decision
/// happen under the same capability as the flow table it bounds
/// (TAPO_GUARDED_BY below is the compile-time form of that contract).
///
/// Callback caveat: on_flow_done / sink callbacks fire while the lock is
/// held (finalization happens inside ingest). They must not call back into
/// the same SharedLiveAnalyzer — the annotated API makes that re-entrance
/// a -Wthread-safety error in any code path the analysis can see.
class SharedLiveAnalyzer {
 public:
  using FlowDoneFn = LiveAnalyzer::FlowDoneFn;

  /// Both constructors mirror LiveAnalyzer's. When `config.mem_budget` is
  /// set, only its *limit* is taken: the facade charges an owned ledger
  /// instead, so an external (unguarded) MemoryBudget is never shared
  /// across the ingest threads.
  SharedLiveAnalyzer(const LiveConfig& config, FlowDoneFn on_flow_done);
  SharedLiveAnalyzer(const LiveConfig& config, FlowSink& sink);

  void add_packet(const net::CapturedPacket& pkt) TAPO_EXCLUDES(mu_);
  void add_chunk(const net::TraceChunk& chunk) TAPO_EXCLUDES(mu_);
  /// Finalizes every remaining flow; call once, after ingest threads join.
  void flush() TAPO_EXCLUDES(mu_);

  /// Snapshot by value (the underlying stats mutate under the lock).
  LiveStats stats() const TAPO_EXCLUDES(mu_);
  /// Owned ledger readings (0 / high-water when no budget was configured).
  std::size_t budget_resident() const TAPO_EXCLUDES(mu_);
  std::size_t budget_high_water() const TAPO_EXCLUDES(mu_);

 private:
  /// Returns `config` with its ledger pointer rebound to `owned` (when a
  /// budget was configured at all). Static so constructor member-init can
  /// use it without touching guarded members outside the ctor exemption.
  static LiveConfig rebind(LiveConfig config, util::MemoryBudget* owned);

  mutable util::Mutex mu_;
  util::MemoryBudget budget_ TAPO_GUARDED_BY(mu_);
  LiveAnalyzer live_ TAPO_GUARDED_BY(mu_);
};

}  // namespace tapo::analysis
