// Streaming TAPO: continuous analysis of a live packet feed.
//
// The paper's TAPO ran offline on daily traces but was "integrated into the
// TCP analysis platform for daily maintenance of the network" (§3.3). This
// is that integration surface: packets are fed one at a time (e.g. from a
// capture socket), flows are tracked in a bounded-memory table, and each
// flow is analyzed with the full offline fidelity when it finishes (FIN
// observed + quiescent) or idles out.
//
// Memory bounds: at most `max_flows` concurrent flows (least-recently-
// active evicted first) and at most `max_packets_per_flow` buffered packets
// per flow (flows exceeding it are analyzed and restarted, counted in
// `truncated_flows`).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "tapo/analyzer.h"
#include "tapo/sink.h"

namespace tapo::analysis {

struct LiveConfig {
  AnalyzerConfig analyzer;
  DemuxOptions demux;
  /// A flow with no packet for this long is finished and analyzed.
  Duration idle_timeout = Duration::seconds(60.0);
  /// A flow whose FIN (both-direction quiescence) is this old is finalized.
  Duration fin_linger = Duration::seconds(3.0);
  std::size_t max_flows = 100'000;
  std::size_t max_packets_per_flow = 200'000;

  // Fluent construction (aggregate-init keeps working); setters validate
  // eagerly and throw std::invalid_argument, mirroring ExperimentConfig.
  LiveConfig& with_analyzer(const AnalyzerConfig& a);
  LiveConfig& with_demux(const DemuxOptions& d);
  LiveConfig& with_idle_timeout(Duration d);   // > 0
  LiveConfig& with_fin_linger(Duration d);     // >= 0
  LiveConfig& with_max_flows(std::size_t n);   // > 0
  LiveConfig& with_max_packets_per_flow(std::size_t n);  // > 1

  /// Throws std::invalid_argument on any unusable field (non-positive
  /// idle_timeout, zero max_flows, ...). Called by the LiveAnalyzer
  /// constructors, plus the nested analyzer/demux validations.
  void validate() const;
};

struct LiveStats {
  std::uint64_t packets = 0;
  std::uint64_t flows_started = 0;
  std::uint64_t flows_finalized = 0;
  std::uint64_t flows_evicted = 0;    // table-full evictions
  std::uint64_t truncated_flows = 0;  // per-flow packet cap hit
  std::size_t active_flows = 0;
};

class LiveAnalyzer {
 public:
  /// Called with the completed analysis whenever a flow is finalized.
  using FlowDoneFn = std::function<void(const FlowAnalysis&)>;

  explicit LiveAnalyzer(LiveConfig config, FlowDoneFn on_flow_done);

  /// Streams finalized flows into a tapo::FlowSink — the same delivery API
  /// the parallel experiment runner uses, so one sink implementation (an
  /// aggregator, a CSV writer) serves both producers. Each finalized flow
  /// becomes one FlowResult{index = finalize ordinal, analyses, packets};
  /// the simulation-only outcome fields stay default. flush() calls
  /// sink.finish() once with the flows-finalized total. The sink must
  /// outlive the analyzer.
  LiveAnalyzer(LiveConfig config, FlowSink& sink);

  /// Feeds one packet. Packets must arrive in (roughly) capture order;
  /// the packet's timestamp drives idle-timeout bookkeeping.
  void add_packet(const net::CapturedPacket& pkt);

  /// Finalizes every remaining flow (end of capture / shutdown). With a
  /// FlowSink attached, also invokes its finish() — call flush() once.
  void flush();

  const LiveStats& stats() const { return stats_; }

 private:
  struct Entry {
    net::PacketTrace trace;
    TimePoint last_activity;
    bool fin_seen = false;
    std::list<net::FlowKey>::iterator lru_it;
  };

  void finalize(const net::FlowKey& key);
  void reap(TimePoint now);

  LiveConfig config_;
  FlowDoneFn on_flow_done_;
  FlowSink* sink_ = nullptr;        // optional streaming delivery target
  std::size_t sink_ordinal_ = 0;    // FlowResult::index for the next flow
  Analyzer analyzer_;

  std::unordered_map<net::FlowKey, Entry, net::FlowKeyHash> flows_;
  /// LRU order: front = least recently active.
  std::list<net::FlowKey> lru_;
  LiveStats stats_;
};

}  // namespace tapo::analysis
