#include "tapo/live.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::analysis {

namespace {

void count_flow_event(const char* which) {
  if (!telemetry::metrics_enabled()) return;
  static auto& finalized = telemetry::Registry::instance().counter(
      "tapo_live_flows_finalized_total");
  static auto& evicted =
      telemetry::Registry::instance().counter("tapo_live_flows_evicted_total");
  static auto& truncated = telemetry::Registry::instance().counter(
      "tapo_live_flows_truncated_total");
  switch (which[0]) {
    case 'f': finalized.add(1); break;
    case 'e': evicted.add(1); break;
    case 't': truncated.add(1); break;
  }
}

}  // namespace

LiveAnalyzer::LiveAnalyzer(LiveConfig config, FlowDoneFn on_flow_done)
    : config_(config),
      on_flow_done_(std::move(on_flow_done)),
      analyzer_(config.analyzer) {}

void LiveAnalyzer::finalize(const net::FlowKey& key) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  Entry entry = std::move(it->second);
  lru_.erase(entry.lru_it);
  flows_.erase(it);
  ++stats_.flows_finalized;
  TAPO_TRACE(telemetry::EventKind::kFlowFinalize,
             entry.last_activity.us(), entry.trace.size(), flows_.size());
  count_flow_event("finalize");
  stats_.active_flows = flows_.size();
  if (entry.trace.empty()) return;
  const auto result = analyzer_.analyze(entry.trace, config_.demux);
  if (on_flow_done_) {
    for (const auto& fa : result.flows) on_flow_done_(fa);
  }
}

void LiveAnalyzer::reap(TimePoint now) {
  // Finalize idle / lingering-after-FIN flows from the LRU front.
  while (!lru_.empty()) {
    const net::FlowKey key = lru_.front();
    const auto it = flows_.find(key);
    if (it == flows_.end()) {
      lru_.pop_front();
      continue;
    }
    const Entry& e = it->second;
    const Duration idle = now - e.last_activity;
    const bool idle_out = idle >= config_.idle_timeout;
    const bool fin_out = e.fin_seen && idle >= config_.fin_linger;
    if (!idle_out && !fin_out) break;  // LRU front is freshest of the stale
    finalize(key);
  }
}

void LiveAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  ++stats_.packets;
  const net::FlowKey key = pkt.key.canonical();

  auto [it, inserted] = flows_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    ++stats_.flows_started;
    lru_.push_back(key);
    entry.lru_it = std::prev(lru_.end());
  } else {
    // Move to the back of the LRU.
    lru_.erase(entry.lru_it);
    lru_.push_back(key);
    entry.lru_it = std::prev(lru_.end());
  }

  entry.trace.add(pkt);
  entry.last_activity = pkt.timestamp;
  if (pkt.tcp.flags.fin) entry.fin_seen = true;

  if (entry.trace.size() >= config_.max_packets_per_flow) {
    // Long-lived elephant: analyze what we have and restart the window.
    ++stats_.truncated_flows;
    TAPO_TRACE(telemetry::EventKind::kFlowTruncate, pkt.timestamp.us(),
               entry.trace.size(), flows_.size());
    count_flow_event("truncate");
    finalize(key);
  }

  reap(pkt.timestamp);

  // Table-full eviction: kick the least recently active flow.
  while (flows_.size() > config_.max_flows && !lru_.empty()) {
    ++stats_.flows_evicted;
    TAPO_TRACE(telemetry::EventKind::kFlowEvict, pkt.timestamp.us(),
               flows_.size(), config_.max_flows);
    count_flow_event("evict");
    finalize(lru_.front());
  }
  stats_.active_flows = flows_.size();
}

void LiveAnalyzer::flush() {
  while (!lru_.empty()) finalize(lru_.front());
  stats_.active_flows = 0;
}

}  // namespace tapo::analysis
