#include "tapo/live.h"

#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::analysis {

LiveConfig& LiveConfig::with_analyzer(const AnalyzerConfig& a) {
  a.validate();
  analyzer = a;
  return *this;
}

LiveConfig& LiveConfig::with_demux(const DemuxOptions& d) {
  d.validate();
  demux = d;
  return *this;
}

LiveConfig& LiveConfig::with_idle_timeout(Duration d) {
  if (d <= Duration::zero()) {
    throw std::invalid_argument(
        "LiveConfig: idle_timeout must be > 0 (flows would finalize on "
        "every packet)");
  }
  idle_timeout = d;
  return *this;
}

LiveConfig& LiveConfig::with_fin_linger(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("LiveConfig: fin_linger must be >= 0");
  }
  fin_linger = d;
  return *this;
}

LiveConfig& LiveConfig::with_max_flows(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "LiveConfig: max_flows must be > 0 (the table could hold nothing)");
  }
  max_flows = n;
  return *this;
}

LiveConfig& LiveConfig::with_max_packets_per_flow(std::size_t n) {
  if (n <= 1) {
    throw std::invalid_argument(
        "LiveConfig: max_packets_per_flow must be > 1 (every flow would be "
        "truncated on arrival)");
  }
  max_packets_per_flow = n;
  return *this;
}

LiveConfig& LiveConfig::with_mem_budget(util::MemoryBudget* b) {
  mem_budget = b;
  return *this;
}

void LiveConfig::validate() const {
  analyzer.validate();
  demux.validate();
  if (idle_timeout <= Duration::zero()) {
    throw std::invalid_argument("LiveConfig: idle_timeout must be > 0");
  }
  if (fin_linger < Duration::zero()) {
    throw std::invalid_argument("LiveConfig: fin_linger must be >= 0");
  }
  if (max_flows == 0) {
    throw std::invalid_argument("LiveConfig: max_flows must be > 0");
  }
  if (max_packets_per_flow <= 1) {
    throw std::invalid_argument(
        "LiveConfig: max_packets_per_flow must be > 1");
  }
}

namespace {

void count_flow_event(const char* which) {
  if (!telemetry::metrics_enabled()) return;
  static auto& finalized = telemetry::Registry::instance().counter(
      "tapo_live_flows_finalized_total");
  static auto& evicted =
      telemetry::Registry::instance().counter("tapo_live_flows_evicted_total");
  static auto& truncated = telemetry::Registry::instance().counter(
      "tapo_live_flows_truncated_total");
  static auto& budget = telemetry::Registry::instance().counter(
      "tapo_live_flows_budget_evicted_total");
  switch (which[0]) {
    case 'f': finalized.add(1); break;
    case 'e': evicted.add(1); break;
    case 't': truncated.add(1); break;
    case 'b': budget.add(1); break;
  }
}

}  // namespace

LiveAnalyzer::LiveAnalyzer(LiveConfig config, FlowDoneFn on_flow_done)
    : config_(config),
      on_flow_done_(std::move(on_flow_done)),
      analyzer_(config.analyzer) {
  config_.validate();
}

LiveAnalyzer::LiveAnalyzer(LiveConfig config, FlowSink& sink)
    : config_(config), sink_(&sink), analyzer_(config.analyzer) {
  config_.validate();
}

void LiveAnalyzer::finalize(const net::FlowKey& key) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  Entry entry = std::move(it->second);
  lru_.erase(entry.lru_it);
  flows_.erase(it);
  ++stats_.flows_finalized;
  TAPO_TRACE(telemetry::EventKind::kFlowFinalize,
             entry.last_activity.us(), entry.trace.size(), flows_.size());
  count_flow_event("finalize");
  stats_.active_flows = flows_.size();
  if (!entry.trace.empty()) {
    // The one analysis engine: demux core + per-flow kernel, invoked
    // directly. Analyzer::analyze is a wrapper over *this* class, so
    // calling it here would recurse.
    const FlowViewSet views = demux_flow_views(entry.trace, config_.demux);
    AnalysisResult result;
    result.flows.reserve(views.size());
    for (const FlowView& view : views) {
      result.flows.push_back(analyzer_.analyze_flow(view));
    }
    if (on_flow_done_) {
      for (const auto& fa : result.flows) on_flow_done_(fa);
    }
    if (sink_ != nullptr && !result.flows.empty()) {
      FlowResult fr;
      fr.index = sink_ordinal_++;
      fr.packets = entry.trace.size();
      fr.analyses = std::move(result.flows);
      sink_->consume(std::move(fr));
    }
  }
  // Release only after analysis: the arena was live until here.
  if (config_.mem_budget != nullptr && entry.charged_bytes != 0) {
    config_.mem_budget->release(entry.charged_bytes);
    stats_.flow_bytes -= entry.charged_bytes;
    update_resident_gauge();
  }
}

void LiveAnalyzer::recharge(Entry& entry) {
  if (config_.mem_budget == nullptr) return;
  const std::size_t want = entry.trace.capacity_bytes() + kFlowOverheadBytes;
  if (want > entry.charged_bytes) {
    config_.mem_budget->charge(want - entry.charged_bytes);
    stats_.flow_bytes += want - entry.charged_bytes;
    entry.charged_bytes = want;
  }
}

std::size_t LiveAnalyzer::charge_after_append(const Entry& entry) const {
  std::size_t cap =
      entry.trace.capacity_bytes() / sizeof(net::CapturedPacket);
  // Mirrors PacketTrace::grow_to: 64 slots first, then doubling.
  if (entry.trace.size() == cap) cap = cap == 0 ? 64 : cap * 2;
  return cap * sizeof(net::CapturedPacket) + kFlowOverheadBytes;
}

std::size_t LiveAnalyzer::soft_limit() const {
  // Evict down to half the cap, not the cap itself: the headroom absorbs
  // the open ingest chunk plus the finalize-time transients (demux index
  // pool, per-packet analysis state), which scale with the largest
  // buffered flow — i.e. with the retained half. This is what keeps the
  // allocator-measured process peak, not just the ledger, under the cap
  // (bench/streaming_scale gates exactly that).
  return config_.mem_budget->limit() / 2;
}

void LiveAnalyzer::evict_for(std::size_t incoming, const net::FlowKey* keep) {
  util::MemoryBudget* budget = config_.mem_budget;
  if (budget == nullptr || budget->unlimited()) return;
  const std::size_t soft = soft_limit();
  while (budget->resident() + incoming > soft && !lru_.empty()) {
    if (keep != nullptr && lru_.front() == *keep) break;
    const std::size_t before = budget->resident();
    ++stats_.budget_evictions;
    TAPO_TRACE(telemetry::EventKind::kFlowEvict, 0, budget->resident(),
               budget->limit());
    count_flow_event("budget");
    finalize(lru_.front());
    if (budget->resident() >= before) break;  // other stages hold the rest
  }
}

void LiveAnalyzer::update_resident_gauge() {
  if (!telemetry::metrics_enabled() || config_.mem_budget == nullptr) return;
  static auto& resident =
      telemetry::Registry::instance().gauge("tapo_pipeline_resident_bytes");
  resident.set(static_cast<double>(config_.mem_budget->resident()));
}

void LiveAnalyzer::reap(TimePoint now) {
  // Finalize idle / lingering-after-FIN flows from the LRU front.
  while (!lru_.empty()) {
    const net::FlowKey key = lru_.front();
    const auto it = flows_.find(key);
    if (it == flows_.end()) {
      lru_.pop_front();
      continue;
    }
    const Entry& e = it->second;
    const Duration idle = now - e.last_activity;
    const bool idle_out = idle >= config_.idle_timeout;
    const bool fin_out = e.fin_seen && idle >= config_.fin_linger;
    if (!idle_out && !fin_out) break;  // LRU front is freshest of the stale
    finalize(key);
  }
}

void LiveAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  ++stats_.packets;
  const net::FlowKey key = pkt.key.canonical();

  auto [it, inserted] = flows_.try_emplace(key);
  if (inserted) {
    ++stats_.flows_started;
    lru_.push_back(key);
    it->second.lru_it = std::prev(lru_.end());
  } else {
    // Move to the back of the LRU.
    lru_.erase(it->second.lru_it);
    lru_.push_back(key);
    it->second.lru_it = std::prev(lru_.end());
  }

  // Make room for the projected arena growth BEFORE add() allocates it —
  // evicting afterwards could not undo the peak. Other entries may be
  // finalized here; unordered_map erasure leaves `it` valid, and `key`
  // itself (just moved to the LRU back) is pinned.
  if (config_.mem_budget != nullptr && !config_.mem_budget->unlimited()) {
    const std::size_t want = charge_after_append(it->second);
    if (want > it->second.charged_bytes) {
      const std::size_t delta = want - it->second.charged_bytes;
      evict_for(delta, &key);
      // Still no room with every other flow gone: this one flow outgrows
      // the budget on its own. Analyze what we have and restart the
      // window, exactly like the max_packets_per_flow truncation path.
      if (config_.mem_budget->resident() + delta > soft_limit() &&
          !it->second.trace.empty()) {
        ++stats_.budget_evictions;
        count_flow_event("budget");
        finalize(key);  // invalidates `it`
        it = flows_.try_emplace(key).first;
        lru_.push_back(key);
        it->second.lru_it = std::prev(lru_.end());
      }
    }
  }

  Entry& entry = it->second;
  entry.trace.add(pkt);
  entry.last_activity = pkt.timestamp;
  if (pkt.tcp.flags.fin) entry.fin_seen = true;
  recharge(entry);

  if (entry.trace.size() >= config_.max_packets_per_flow) {
    // Long-lived elephant: analyze what we have and restart the window.
    ++stats_.truncated_flows;
    TAPO_TRACE(telemetry::EventKind::kFlowTruncate, pkt.timestamp.us(),
               entry.trace.size(), flows_.size());
    count_flow_event("truncate");
    finalize(key);
  }

  reap(pkt.timestamp);

  // Table-full eviction: kick the least recently active flow.
  while (flows_.size() > config_.max_flows && !lru_.empty()) {
    ++stats_.flows_evicted;
    TAPO_TRACE(telemetry::EventKind::kFlowEvict, pkt.timestamp.us(),
               flows_.size(), config_.max_flows);
    count_flow_event("evict");
    finalize(lru_.front());
  }
  evict_over_budget();
  stats_.active_flows = flows_.size();
  update_resident_gauge();
}

void LiveAnalyzer::add_chunk(const net::TraceChunk& chunk) {
  for (const net::CapturedPacket& pkt : chunk.packets()) add_packet(pkt);
}

void LiveAnalyzer::flush() {
  while (!lru_.empty()) finalize(lru_.front());
  stats_.active_flows = 0;
  if (sink_ != nullptr) {
    RunStats rs;
    rs.flows = sink_ordinal_;
    rs.threads = 1;
    sink_->finish(rs);
  }
}

// ------------------------------------------------- SharedLiveAnalyzer

LiveConfig SharedLiveAnalyzer::rebind(LiveConfig config,
                                      util::MemoryBudget* owned) {
  if (config.mem_budget != nullptr) config.with_mem_budget(owned);
  return config;
}

SharedLiveAnalyzer::SharedLiveAnalyzer(const LiveConfig& config,
                                       FlowDoneFn on_flow_done)
    : budget_(config.mem_budget != nullptr ? config.mem_budget->limit() : 0),
      live_(rebind(config, &budget_), std::move(on_flow_done)) {}

SharedLiveAnalyzer::SharedLiveAnalyzer(const LiveConfig& config,
                                       FlowSink& sink)
    : budget_(config.mem_budget != nullptr ? config.mem_budget->limit() : 0),
      live_(rebind(config, &budget_), sink) {}

void SharedLiveAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  util::MutexLock lock(mu_);
  live_.add_packet(pkt);
}

void SharedLiveAnalyzer::add_chunk(const net::TraceChunk& chunk) {
  util::MutexLock lock(mu_);
  live_.add_chunk(chunk);
}

void SharedLiveAnalyzer::flush() {
  util::MutexLock lock(mu_);
  live_.flush();
}

LiveStats SharedLiveAnalyzer::stats() const {
  util::MutexLock lock(mu_);
  return live_.stats();
}

std::size_t SharedLiveAnalyzer::budget_resident() const {
  util::MutexLock lock(mu_);
  return budget_.resident();
}

std::size_t SharedLiveAnalyzer::budget_high_water() const {
  util::MutexLock lock(mu_);
  return budget_.high_water();
}

}  // namespace tapo::analysis
