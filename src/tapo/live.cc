#include "tapo/live.h"

#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::analysis {

LiveConfig& LiveConfig::with_analyzer(const AnalyzerConfig& a) {
  a.validate();
  analyzer = a;
  return *this;
}

LiveConfig& LiveConfig::with_demux(const DemuxOptions& d) {
  d.validate();
  demux = d;
  return *this;
}

LiveConfig& LiveConfig::with_idle_timeout(Duration d) {
  if (d <= Duration::zero()) {
    throw std::invalid_argument(
        "LiveConfig: idle_timeout must be > 0 (flows would finalize on "
        "every packet)");
  }
  idle_timeout = d;
  return *this;
}

LiveConfig& LiveConfig::with_fin_linger(Duration d) {
  if (d < Duration::zero()) {
    throw std::invalid_argument("LiveConfig: fin_linger must be >= 0");
  }
  fin_linger = d;
  return *this;
}

LiveConfig& LiveConfig::with_max_flows(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "LiveConfig: max_flows must be > 0 (the table could hold nothing)");
  }
  max_flows = n;
  return *this;
}

LiveConfig& LiveConfig::with_max_packets_per_flow(std::size_t n) {
  if (n <= 1) {
    throw std::invalid_argument(
        "LiveConfig: max_packets_per_flow must be > 1 (every flow would be "
        "truncated on arrival)");
  }
  max_packets_per_flow = n;
  return *this;
}

void LiveConfig::validate() const {
  analyzer.validate();
  demux.validate();
  if (idle_timeout <= Duration::zero()) {
    throw std::invalid_argument("LiveConfig: idle_timeout must be > 0");
  }
  if (fin_linger < Duration::zero()) {
    throw std::invalid_argument("LiveConfig: fin_linger must be >= 0");
  }
  if (max_flows == 0) {
    throw std::invalid_argument("LiveConfig: max_flows must be > 0");
  }
  if (max_packets_per_flow <= 1) {
    throw std::invalid_argument(
        "LiveConfig: max_packets_per_flow must be > 1");
  }
}

namespace {

void count_flow_event(const char* which) {
  if (!telemetry::metrics_enabled()) return;
  static auto& finalized = telemetry::Registry::instance().counter(
      "tapo_live_flows_finalized_total");
  static auto& evicted =
      telemetry::Registry::instance().counter("tapo_live_flows_evicted_total");
  static auto& truncated = telemetry::Registry::instance().counter(
      "tapo_live_flows_truncated_total");
  switch (which[0]) {
    case 'f': finalized.add(1); break;
    case 'e': evicted.add(1); break;
    case 't': truncated.add(1); break;
  }
}

}  // namespace

LiveAnalyzer::LiveAnalyzer(LiveConfig config, FlowDoneFn on_flow_done)
    : config_(config),
      on_flow_done_(std::move(on_flow_done)),
      analyzer_(config.analyzer) {
  config_.validate();
}

LiveAnalyzer::LiveAnalyzer(LiveConfig config, FlowSink& sink)
    : config_(config), sink_(&sink), analyzer_(config.analyzer) {
  config_.validate();
}

void LiveAnalyzer::finalize(const net::FlowKey& key) {
  auto it = flows_.find(key);
  if (it == flows_.end()) return;
  Entry entry = std::move(it->second);
  lru_.erase(entry.lru_it);
  flows_.erase(it);
  ++stats_.flows_finalized;
  TAPO_TRACE(telemetry::EventKind::kFlowFinalize,
             entry.last_activity.us(), entry.trace.size(), flows_.size());
  count_flow_event("finalize");
  stats_.active_flows = flows_.size();
  if (entry.trace.empty()) return;
  auto result = analyzer_.analyze(entry.trace, config_.demux);
  if (on_flow_done_) {
    for (const auto& fa : result.flows) on_flow_done_(fa);
  }
  if (sink_ != nullptr && !result.flows.empty()) {
    FlowResult fr;
    fr.index = sink_ordinal_++;
    fr.packets = entry.trace.size();
    fr.analyses = std::move(result.flows);
    sink_->consume(std::move(fr));
  }
}

void LiveAnalyzer::reap(TimePoint now) {
  // Finalize idle / lingering-after-FIN flows from the LRU front.
  while (!lru_.empty()) {
    const net::FlowKey key = lru_.front();
    const auto it = flows_.find(key);
    if (it == flows_.end()) {
      lru_.pop_front();
      continue;
    }
    const Entry& e = it->second;
    const Duration idle = now - e.last_activity;
    const bool idle_out = idle >= config_.idle_timeout;
    const bool fin_out = e.fin_seen && idle >= config_.fin_linger;
    if (!idle_out && !fin_out) break;  // LRU front is freshest of the stale
    finalize(key);
  }
}

void LiveAnalyzer::add_packet(const net::CapturedPacket& pkt) {
  ++stats_.packets;
  const net::FlowKey key = pkt.key.canonical();

  auto [it, inserted] = flows_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    ++stats_.flows_started;
    lru_.push_back(key);
    entry.lru_it = std::prev(lru_.end());
  } else {
    // Move to the back of the LRU.
    lru_.erase(entry.lru_it);
    lru_.push_back(key);
    entry.lru_it = std::prev(lru_.end());
  }

  entry.trace.add(pkt);
  entry.last_activity = pkt.timestamp;
  if (pkt.tcp.flags.fin) entry.fin_seen = true;

  if (entry.trace.size() >= config_.max_packets_per_flow) {
    // Long-lived elephant: analyze what we have and restart the window.
    ++stats_.truncated_flows;
    TAPO_TRACE(telemetry::EventKind::kFlowTruncate, pkt.timestamp.us(),
               entry.trace.size(), flows_.size());
    count_flow_event("truncate");
    finalize(key);
  }

  reap(pkt.timestamp);

  // Table-full eviction: kick the least recently active flow.
  while (flows_.size() > config_.max_flows && !lru_.empty()) {
    ++stats_.flows_evicted;
    TAPO_TRACE(telemetry::EventKind::kFlowEvict, pkt.timestamp.us(),
               flows_.size(), config_.max_flows);
    count_flow_event("evict");
    finalize(lru_.front());
  }
  stats_.active_flows = flows_.size();
}

void LiveAnalyzer::flush() {
  while (!lru_.empty()) finalize(lru_.front());
  stats_.active_flows = 0;
  if (sink_ != nullptr) {
    RunStats rs;
    rs.flows = sink_ordinal_;
    rs.threads = 1;
    sink_->finish(rs);
  }
}

}  // namespace tapo::analysis
