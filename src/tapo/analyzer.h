// TAPO: the paper's TCP stall diagnosis tool (§3).
//
// Per flow, the analyzer (1) mimics the server TCP stack from the trace to
// reconstruct the Table-2 parameters (congestion state, cwnd estimate,
// in_flight, sacked_out/lost_out, retransmission counts, SRTT/RTO per
// RFC 6298), (2) detects stalls — inter-packet gaps at the server larger
// than min(tau*SRTT, RTO), tau = 2 (§2.2) — and (3) classifies each stall's
// root cause with the Fig.-5 decision tree, sub-classifying timeout-
// retransmission stalls in the Table-5 precedence order.
//
// Unlike the live sender, the analyzer sees the whole trace, so it refines
// lost_out with DSACK evidence (spurious retransmissions) and can resolve
// the loss-vs-delay ambiguity retrospectively (§3.3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tapo/flow.h"
#include "tcp/rto.h"
#include "tcp/types.h"

namespace tapo::analysis {

/// Top-level stall causes (Table 3 rows).
enum class StallCause : std::uint8_t {
  kDataUnavailable,     // server: content fetched from back-end
  kResourceConstraint,  // server: app starved the socket mid-transfer
  kClientIdle,          // client: no request pending
  kZeroWindow,          // client: advertised rwnd hit zero
  kPacketDelay,         // network: delay without timeout retransmission
  kRetransmission,      // network: timeout retransmission
  kUndetermined,
};
constexpr std::size_t kNumStallCauses = 7;
const char* to_string(StallCause c);

/// Timeout-retransmission stall breakdown (Table 5 rows, in the paper's
/// examination order).
enum class RetransCause : std::uint8_t {
  kDoubleRetrans,
  kTailRetrans,
  kSmallCwnd,
  kSmallRwnd,
  kContinuousLoss,
  kAckDelayLoss,
  kUndetermined,
  kNone,  // stall is not a timeout-retransmission stall
};
constexpr std::size_t kNumRetransCauses = 7;  // excluding kNone
const char* to_string(RetransCause c);

struct StallRecord {
  TimePoint start;
  TimePoint end;
  Duration duration;
  StallCause cause = StallCause::kUndetermined;
  RetransCause retrans_cause = RetransCause::kNone;
  /// Double-retransmission split (Table 6): true when the *first*
  /// retransmission of the segment was a fast retransmit (f-double).
  bool f_double = false;
  /// Congestion-avoidance state when the stall began (Table 7).
  tcp::CaState state_at_stall = tcp::CaState::kOpen;
  /// Eq.-1 in-flight estimate when the stall began (Fig. 7b / 10b / 12).
  std::uint32_t in_flight = 0;
  /// Retransmitted packet index / data packets in flow (Fig. 7a / 10a).
  double rel_position = 0.0;
  /// Index (into the flow's packet sequence — Flow::packets or a
  /// FlowView's packet_indices positions) of the packet ending the stall.
  std::size_t cur_pkt_index = 0;
};

struct FlowAnalysis {
  net::FlowKey key;
  // -- transfer level --
  Duration transmission_time;        // first to last packet
  std::uint64_t unique_bytes = 0;    // de-duplicated server payload
  std::uint64_t data_segments = 0;   // server data packets incl. retrans
  std::uint64_t retrans_segments = 0;
  double avg_speed_Bps = 0.0;
  // -- RTT / RTO --
  std::vector<double> rtt_samples_us;      // per non-retransmitted segment
  std::vector<double> rto_at_timeout_us;   // RTO at each timeout retrans
  double avg_rtt_us = 0.0;
  /// Mean RTO recorded at timeout retransmissions ("the RTO is recorded
  /// for each timeout retransmission", §2.1) — includes backoff. Zero when
  /// the flow had no timeouts.
  double avg_rto_us = 0.0;
  /// Mean RTO estimate sampled on every ACK (estimator state, no backoff).
  double avg_rto_on_ack_us = 0.0;
  // -- stalls --
  std::vector<StallRecord> stalls;
  Duration stalled_time;
  double stall_ratio = 0.0;  // stalled / transmission (Fig. 3)
  // -- receiver side --
  std::uint32_t init_rwnd_bytes = 0;
  std::uint32_t init_rwnd_mss = 0;
  bool had_zero_rwnd = false;
  // -- in-flight samples on every ACK (Fig. 11) --
  std::vector<std::uint32_t> inflight_on_ack;

  std::uint64_t timeout_retrans = 0;  // timeout retransmissions observed
  std::uint64_t fast_retrans = 0;
  std::uint64_t spurious_retrans = 0;  // DSACK-confirmed
};

struct AnalyzerConfig {
  /// Stall threshold multiplier: gap > min(tau*SRTT, RTO).
  double tau = 2.0;
  std::uint32_t dupthres = 3;
  /// "Small" in-flight bound for the small-cwnd/rwnd rules (< 4 MSS, §4.3).
  std::uint32_t small_inflight = 4;
  /// RTO parameters matching the measured kernel.
  tcp::RtoConfig rto;
  /// A retransmission counts as timeout-driven when the segment had been
  /// quiet for at least this fraction of the estimated RTO.
  double rto_fraction = 0.9;
  /// Collect Fig.-11 in-flight samples (costs memory on big traces).
  bool sample_inflight_on_ack = true;
};

struct AnalysisResult {
  std::vector<FlowAnalysis> flows;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {}) : config_(config) {}

  /// Both overloads run the identical mimic/classifier over a packet
  /// cursor; the Flow one reads owned FlowPackets, the FlowView one reads
  /// the PacketTrace arena in place (zero-copy).
  FlowAnalysis analyze_flow(const Flow& flow) const;
  FlowAnalysis analyze_flow(const FlowView& view) const;

  /// Demuxes with demux_flow_views and analyzes each view in place — no
  /// per-flow packet copies anywhere on this path.
  AnalysisResult analyze(const net::PacketTrace& trace,
                         const DemuxOptions& demux = {}) const;

  const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
};

}  // namespace tapo::analysis
