// TAPO: the paper's TCP stall diagnosis tool (§3).
//
// Per flow, the analyzer (1) mimics the server TCP stack from the trace to
// reconstruct the Table-2 parameters (congestion state, cwnd estimate,
// in_flight, sacked_out/lost_out, retransmission counts, SRTT/RTO per
// RFC 6298), (2) detects stalls — inter-packet gaps at the server larger
// than min(tau*SRTT, RTO), tau = 2 (§2.2) — and (3) classifies each stall's
// root cause with the Fig.-5 decision tree, sub-classifying timeout-
// retransmission stalls in the Table-5 precedence order.
//
// Unlike the live sender, the analyzer sees the whole trace, so it refines
// lost_out with DSACK evidence (spurious retransmissions) and can resolve
// the loss-vs-delay ambiguity retrospectively (§3.3).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "tapo/flow.h"
#include "tcp/rto.h"
#include "tcp/types.h"

namespace tapo::analysis {

/// Top-level stall causes (Table 3 rows).
enum class StallCause : std::uint8_t {
  kDataUnavailable,     // server: content fetched from back-end
  kResourceConstraint,  // server: app starved the socket mid-transfer
  kClientIdle,          // client: no request pending
  kZeroWindow,          // client: advertised rwnd hit zero
  kPacketDelay,         // network: delay without timeout retransmission
  kRetransmission,      // network: timeout retransmission
  kUndetermined,
};
constexpr std::size_t kNumStallCauses = 7;
const char* to_string(StallCause c);

/// Timeout-retransmission stall breakdown (Table 5 rows, in the paper's
/// examination order).
enum class RetransCause : std::uint8_t {
  kDoubleRetrans,
  kTailRetrans,
  kSmallCwnd,
  kSmallRwnd,
  kContinuousLoss,
  kAckDelayLoss,
  kUndetermined,
  kNone,  // stall is not a timeout-retransmission stall
};
constexpr std::size_t kNumRetransCauses = 7;  // excluding kNone
const char* to_string(RetransCause c);

struct StallRecord {
  TimePoint start;
  TimePoint end;
  Duration duration;
  StallCause cause = StallCause::kUndetermined;
  RetransCause retrans_cause = RetransCause::kNone;
  /// Double-retransmission split (Table 6): true when the *first*
  /// retransmission of the segment was a fast retransmit (f-double).
  bool f_double = false;
  /// Congestion-avoidance state when the stall began (Table 7).
  tcp::CaState state_at_stall = tcp::CaState::kOpen;
  /// Eq.-1 in-flight estimate when the stall began (Fig. 7b / 10b / 12).
  std::uint32_t in_flight = 0;
  /// Retransmitted packet index / data packets in flow (Fig. 7a / 10a).
  double rel_position = 0.0;
  /// Index (into the flow's packet sequence — Flow::packets or a
  /// FlowView's packet_indices positions) of the packet ending the stall.
  std::size_t cur_pkt_index = 0;
  /// The classifier demoted this stall to kUndetermined because capture
  /// artifacts (a sequence gap, a mid-stream start) made the cause
  /// evidence untrustworthy. Counted in CaptureQuality::suspect_stalls.
  bool capture_suspect = false;
};

/// Per-flow capture-trustworthiness record: what the analyzer inferred
/// about the *capture* (as opposed to the connection) while mimicking the
/// flow. Default-constructed values mean "pristine capture". Populated on
/// every analysis; the robustness harness (bench/robustness_stability.cc)
/// cross-checks these sums against the tapo_capture_artifacts_total
/// telemetry counters, which are incremented from the same sites.
struct CaptureQuality {
  /// Adjacent identical-header records suppressed as capture duplicates
  /// (mirror ports / dual taps), not counted as retransmissions.
  std::uint64_t dup_packets = 0;
  /// Server-side sequence gaps: data the server must have sent but the
  /// capture never recorded (kernel capture drops).
  std::uint64_t seq_gaps = 0;
  std::uint64_t gap_bytes = 0;
  /// Packets whose TCP options were cut by the snaplen (SACK blocks or
  /// timestamps possibly missing).
  std::uint64_t truncated_packets = 0;
  /// No handshake observed; sequence state was seeded from the first
  /// server data packet (rotated / mid-stream capture).
  bool mid_stream = false;
  /// Stalls demoted to StallCause::kUndetermined because artifacts made
  /// the evidence ambiguous (see StallRecord::capture_suspect).
  std::uint64_t suspect_stalls = 0;
  /// Estimated capture drop rate: gap_bytes / unique stream bytes.
  double est_drop_rate = 0.0;
  /// Deterministic trust score in (0, 1]:
  ///   (1 - est_drop_rate) * (mid_stream ? 0.5 : 1) * (truncated ? 0.9 : 1).
  double confidence = 1.0;

  /// Any artifact at all — the flow counts toward tapo_flows_degraded_total.
  bool degraded() const {
    return dup_packets != 0 || seq_gaps != 0 || truncated_packets != 0 ||
           mid_stream;
  }
};

struct FlowAnalysis {
  net::FlowKey key;
  // -- transfer level --
  Duration transmission_time;        // first to last packet
  std::uint64_t unique_bytes = 0;    // de-duplicated server payload
  std::uint64_t data_segments = 0;   // server data packets incl. retrans
  std::uint64_t retrans_segments = 0;
  double avg_speed_Bps = 0.0;
  // -- RTT / RTO --
  std::vector<double> rtt_samples_us;      // per non-retransmitted segment
  std::vector<double> rto_at_timeout_us;   // RTO at each timeout retrans
  double avg_rtt_us = 0.0;
  /// Mean RTO recorded at timeout retransmissions ("the RTO is recorded
  /// for each timeout retransmission", §2.1) — includes backoff. Zero when
  /// the flow had no timeouts.
  double avg_rto_us = 0.0;
  /// Mean RTO estimate sampled on every ACK (estimator state, no backoff).
  double avg_rto_on_ack_us = 0.0;
  // -- stalls --
  std::vector<StallRecord> stalls;
  Duration stalled_time;
  double stall_ratio = 0.0;  // stalled / transmission (Fig. 3)
  // -- receiver side --
  std::uint32_t init_rwnd_bytes = 0;
  std::uint32_t init_rwnd_mss = 0;
  bool had_zero_rwnd = false;
  // -- in-flight samples on every ACK (Fig. 11) --
  std::vector<std::uint32_t> inflight_on_ack;

  std::uint64_t timeout_retrans = 0;  // timeout retransmissions observed
  std::uint64_t fast_retrans = 0;
  std::uint64_t spurious_retrans = 0;  // DSACK-confirmed

  /// How much the capture itself can be trusted (default = pristine).
  CaptureQuality capture;
};

struct AnalyzerConfig {
  /// Stall threshold multiplier: gap > min(tau*SRTT, RTO).
  double tau = 2.0;
  std::uint32_t dupthres = 3;
  /// "Small" in-flight bound for the small-cwnd/rwnd rules (< 4 MSS, §4.3).
  std::uint32_t small_inflight = 4;
  /// RTO parameters matching the measured kernel.
  tcp::RtoConfig rto;
  /// A retransmission counts as timeout-driven when the segment had been
  /// quiet for at least this fraction of the estimated RTO.
  double rto_fraction = 0.9;
  /// Collect Fig.-11 in-flight samples (costs memory on big traces).
  bool sample_inflight_on_ack = true;
  /// Suppress adjacent identical-header records as capture duplicates
  /// (mirror ports / dual taps deliver both copies back to back). Off by
  /// default: even a pristine single-tap capture can legitimately contain
  /// back-to-back byte-identical pure ACKs (dupacks emitted in the same
  /// microsecond), which no analyzer can tell from a mirror copy — enable
  /// this only when the capture setup is known to duplicate. Enabling it
  /// is what makes dup-impaired captures classify identically to pristine
  /// ones (bench/robustness_stability.cc).
  bool suppress_capture_dups = false;
  /// With suppression on, records count as duplicates when their headers
  /// match and their timestamps differ by at most this much (0 = exact).
  Duration dup_window = Duration::zero();
  /// Declared capture-clock granularity: every packet timestamp is floored
  /// to a multiple of this before the mimic sees it (0 = off). Flooring is
  /// idempotent, so analysis at quantum q is *invariant* to capture-side
  /// timestamp quantization at any granularity dividing q — the pristine
  /// tap and the coarse-clock capture classify bit-identically
  /// (bench/robustness_stability.cc). Costs timing resolution: stall
  /// boundaries and RTT samples are only accurate to +-q.
  Duration ts_quantum = Duration::zero();

  // Fluent construction (aggregate-init keeps working); each setter
  // validates eagerly and throws std::invalid_argument on a value the
  // classifier cannot run with, mirroring ExperimentConfig::with_*.
  AnalyzerConfig& with_tau(double t);                    // > 0
  AnalyzerConfig& with_dupthres(std::uint32_t n);        // > 0
  AnalyzerConfig& with_small_inflight(std::uint32_t n);  // > 0
  AnalyzerConfig& with_rto(const tcp::RtoConfig& cfg);
  AnalyzerConfig& with_rto_fraction(double f);           // > 0
  AnalyzerConfig& with_inflight_sampling(bool on);
  /// Enables duplicate suppression with the given window (>= 0).
  AnalyzerConfig& with_dup_window(Duration w);
  /// Sets the declared capture-clock granularity (>= 0; 0 disables).
  AnalyzerConfig& with_ts_quantum(Duration q);

  /// Throws std::invalid_argument on any out-of-range field. Called by the
  /// Analyzer constructor, so a bad config fails at construction, not as a
  /// silent misclassification deep in a run.
  void validate() const;
};

struct AnalysisResult {
  std::vector<FlowAnalysis> flows;
};

class Analyzer {
 public:
  /// Validates the config (std::invalid_argument on out-of-range fields).
  explicit Analyzer(AnalyzerConfig config = {});

  /// Both overloads run the identical mimic/classifier over a packet
  /// cursor; the Flow one reads owned FlowPackets, the FlowView one reads
  /// the PacketTrace arena in place (zero-copy).
  FlowAnalysis analyze_flow(const Flow& flow) const;
  FlowAnalysis analyze_flow(const FlowView& view) const;

  /// Batch entry point, now a veneer over the streaming engine: every
  /// packet is fed through an unbounded LiveAnalyzer (one engine for the
  /// offline and live paths) and the finalized flows are returned in
  /// first-packet order — exactly the order the old multi-pass batch
  /// demux produced. Still zero-copy per flow: the per-flow arenas are
  /// demuxed with demux_flow_views and analyzed in place.
  AnalysisResult analyze(const net::PacketTrace& trace,
                         const DemuxOptions& demux = {}) const;
  /// Same, over a chunked trace (retained chunks + open tail, in order).
  AnalysisResult analyze(const net::ChunkedTrace& trace,
                         const DemuxOptions& demux = {}) const;

  const AnalyzerConfig& config() const { return config_; }

 private:
  AnalyzerConfig config_;
};

}  // namespace tapo::analysis
