#include "tapo/flow.h"

#include <stdexcept>
#include <unordered_map>

namespace tapo::analysis {
namespace {

// Folds one packet's header facts into the flow meta. Shared by the view
// demux (reading the arena) and kept deliberately orientation-only: the
// caller decides from_server.
void fold_meta(FlowMeta& m, const net::CapturedPacket& cp, bool from_server) {
  const net::TcpHeader& tcp = cp.tcp;
  if (tcp.flags.syn && !tcp.flags.ack && !from_server) {
    m.saw_syn = true;
    m.client_isn = tcp.seq;
    m.syn_window = tcp.window;
    if (tcp.mss) m.mss = *tcp.mss;
    m.sack_permitted = tcp.sack_permitted;
    m.client_wscale = tcp.window_scale.value_or(0);
  } else if (tcp.flags.syn && tcp.flags.ack && from_server) {
    m.saw_synack = true;
    m.server_isn = tcp.seq;
  } else if (!from_server && m.init_rwnd_bytes == 0 && m.saw_synack &&
             tcp.flags.ack && !tcp.flags.syn) {
    m.init_rwnd_bytes = static_cast<std::uint32_t>(tcp.window)
                        << m.client_wscale;
  }
  if (tcp.flags.fin) m.saw_fin = true;
  if (from_server) {
    m.server_payload_bytes += cp.payload_len;
    if (cp.payload_len > 0 && !m.saw_server_data) {
      m.saw_server_data = true;
      m.first_server_data_seq = tcp.seq;
    }
  } else {
    m.client_payload_bytes += cp.payload_len;
  }
}

}  // namespace

DemuxOptions& DemuxOptions::with_server_port(std::uint16_t port) {
  server_port = port;
  return *this;
}

DemuxOptions& DemuxOptions::with_min_packets(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "DemuxOptions: min_packets must be > 0 (a zero-packet flow cannot "
        "exist; use 1 to keep every flow)");
  }
  min_packets = n;
  return *this;
}

void DemuxOptions::validate() const {
  if (min_packets == 0) {
    throw std::invalid_argument("DemuxOptions: min_packets must be > 0");
  }
}

FlowAccumulator::FlowAccumulator(const DemuxOptions& opts) : opts_(opts) {
  opts_.validate();
}

void FlowAccumulator::ingest(const net::CapturedPacket& pkt,
                             std::uint32_t index) {
  // Hash the packet's canonical key to a flow slot (first-seen order),
  // tallying counts and orientation evidence. slot_of_ remembers each
  // packet's flow so finish() never rehashes.
  const net::FlowKey canon = pkt.key.canonical();
  auto [it, inserted] =
      table_.try_emplace(canon, static_cast<std::uint32_t>(accums_.size()));
  if (inserted) {
    accums_.emplace_back();
    accums_.back().canonical = canon;
  }
  Accum& a = accums_[it->second];
  slot_of_.push_back(it->second);
  index_of_.push_back(index);
  ++a.count;
  const bool from_a = pkt.key == canon;
  if (from_a) {
    a.payload_a += pkt.payload_len;
    if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) a.synack_from_a = true;
  } else {
    a.payload_b += pkt.payload_len;
    if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) a.synack_from_b = true;
  }
}

FlowViewSet FlowAccumulator::finish(const net::PacketTrace& trace) {
  // Prefix-sum the counts into pool offsets (every flow gets a segment;
  // below-min flows are simply never wrapped in a view).
  FlowViewSet out;
  out.index_pool_.resize(index_of_.size());
  std::uint32_t running = 0;
  for (Accum& a : accums_) {
    a.offset = running;
    running += a.count;
  }

  // Scatter packet indices into each flow's segment, preserving capture
  // order within the flow.
  {
    std::vector<std::uint32_t> cursor(accums_.size());
    for (std::size_t i = 0; i < accums_.size(); ++i) {
      cursor[i] = accums_[i].offset;
    }
    for (std::size_t i = 0; i < index_of_.size(); ++i) {
      out.index_pool_[cursor[slot_of_[i]]++] = index_of_[i];
    }
  }

  // Orient each kept flow and walk its segment once to extract the
  // handshake/transfer meta.
  out.flows_.reserve(accums_.size());
  for (const Accum& a : accums_) {
    if (a.count < opts_.min_packets) continue;

    // Decide which endpoint is the server.
    bool server_is_a;
    if (opts_.server_port != 0) {
      server_is_a = a.canonical.src_port == opts_.server_port;
    } else if (a.synack_from_a != a.synack_from_b) {
      server_is_a = a.synack_from_a;
    } else {
      server_is_a = a.payload_a >= a.payload_b;
    }

    FlowView view;
    view.server_to_client = server_is_a ? a.canonical : a.canonical.reversed();
    view.trace = &trace;
    view.packet_indices = std::span<const std::uint32_t>(out.index_pool_)
                              .subspan(a.offset, a.count);
    for (std::uint32_t idx : view.packet_indices) {
      const net::CapturedPacket& cp = trace[idx];
      fold_meta(view, cp, cp.key == view.server_to_client);
    }
    if (view.init_rwnd_bytes == 0) view.init_rwnd_bytes = view.syn_window;
    view.mid_stream =
        !view.saw_syn && !view.saw_synack && view.saw_server_data;
    out.flows_.push_back(view);
  }
  return out;
}

FlowViewSet demux_flow_views(const net::PacketTrace& trace,
                             const DemuxOptions& opts) {
  FlowAccumulator acc(opts);
  const std::span<const net::CapturedPacket> pkts = trace.packets();
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    acc.ingest(pkts[i], static_cast<std::uint32_t>(i));
  }
  return acc.finish(trace);
}

std::vector<Flow> demux_flows(const net::PacketTrace& trace,
                              const DemuxOptions& opts) {
  const FlowViewSet views = demux_flow_views(trace, opts);

  std::vector<Flow> flows;
  flows.reserve(views.size());
  for (const FlowView& view : views) {
    Flow flow;
    static_cast<FlowMeta&>(flow) = view;  // meta is already extracted
    flow.packets.reserve(view.size());
    for (std::uint32_t idx : view.packet_indices) {
      const net::CapturedPacket& cp = trace[idx];
      FlowPacket& fp = flow.append_packet();
      fp.ts = cp.timestamp;
      fp.from_server = cp.key == flow.server_to_client;
      fp.seq = cp.tcp.seq;
      fp.ack = cp.tcp.ack;
      fp.payload = cp.payload_len;
      fp.flags = cp.tcp.flags;
      fp.window = cp.tcp.window;
      fp.truncated = cp.truncated;
      for (const net::SackBlock& b : cp.tcp.sack_blocks) {
        flow.append_sack(b);
      }
    }
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace tapo::analysis
