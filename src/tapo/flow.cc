#include "tapo/flow.h"

#include <unordered_map>

namespace tapo::analysis {
namespace {

struct Builder {
  net::FlowKey canonical;
  std::vector<const net::CapturedPacket*> pkts;
  // Per-endpoint bookkeeping keyed by "is packet's src == canonical.src".
  std::uint64_t payload_a = 0, payload_b = 0;
  bool synack_from_a = false, synack_from_b = false;
};

}  // namespace

std::vector<Flow> demux_flows(const net::PacketTrace& trace,
                              const DemuxOptions& opts) {
  std::unordered_map<net::FlowKey, Builder, net::FlowKeyHash> table;
  std::vector<net::FlowKey> order;  // stable output order

  for (const auto& pkt : trace.packets()) {
    const net::FlowKey canon = pkt.key.canonical();
    auto [it, inserted] = table.try_emplace(canon);
    if (inserted) {
      it->second.canonical = canon;
      order.push_back(canon);
    }
    Builder& b = it->second;
    b.pkts.push_back(&pkt);
    const bool from_a = pkt.key == canon;
    if (from_a) {
      b.payload_a += pkt.payload_len;
      if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) b.synack_from_a = true;
    } else {
      b.payload_b += pkt.payload_len;
      if (pkt.tcp.flags.syn && pkt.tcp.flags.ack) b.synack_from_b = true;
    }
  }

  std::vector<Flow> flows;
  flows.reserve(order.size());
  for (const auto& key : order) {
    Builder& b = table.at(key);
    if (b.pkts.size() < opts.min_packets) continue;

    // Decide which endpoint is the server.
    bool server_is_a;
    if (opts.server_port != 0) {
      server_is_a = b.canonical.src_port == opts.server_port;
    } else if (b.synack_from_a != b.synack_from_b) {
      server_is_a = b.synack_from_a;
    } else {
      server_is_a = b.payload_a >= b.payload_b;
    }

    Flow flow;
    flow.server_to_client =
        server_is_a ? b.canonical : b.canonical.reversed();
    flow.packets.reserve(b.pkts.size());

    for (const net::CapturedPacket* cp : b.pkts) {
      FlowPacket fp;
      fp.ts = cp->timestamp;
      fp.from_server = cp->key == flow.server_to_client;
      fp.seq = cp->tcp.seq;
      fp.ack = cp->tcp.ack;
      fp.payload = cp->payload_len;
      fp.flags = cp->tcp.flags;
      fp.window = cp->tcp.window;
      fp.sacks = cp->tcp.sack_blocks;

      if (fp.flags.syn && !fp.flags.ack && !fp.from_server) {
        flow.saw_syn = true;
        flow.client_isn = fp.seq;
        flow.syn_window = fp.window;
        if (cp->tcp.mss) flow.mss = *cp->tcp.mss;
        flow.sack_permitted = cp->tcp.sack_permitted;
        flow.client_wscale = cp->tcp.window_scale.value_or(0);
      } else if (fp.flags.syn && fp.flags.ack && fp.from_server) {
        flow.saw_synack = true;
        flow.server_isn = fp.seq;
      } else if (!fp.from_server && flow.init_rwnd_bytes == 0 &&
                 flow.saw_synack && fp.flags.ack && !fp.flags.syn) {
        flow.init_rwnd_bytes = static_cast<std::uint32_t>(fp.window)
                               << flow.client_wscale;
      }
      if (fp.flags.fin) flow.saw_fin = true;
      if (fp.from_server) {
        flow.server_payload_bytes += fp.payload;
      } else {
        flow.client_payload_bytes += fp.payload;
      }
      flow.packets.push_back(std::move(fp));
    }
    if (flow.init_rwnd_bytes == 0) flow.init_rwnd_bytes = flow.syn_window;
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace tapo::analysis
