#include "tapo/report.h"

#include "util/strings.h"

namespace tapo::analysis {
namespace {

double frac(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0.0 : static_cast<double>(a) / static_cast<double>(b);
}

double frac_time(Duration a, Duration b) {
  return b == Duration::zero() ? 0.0 : a / b;
}

}  // namespace

double StallBreakdown::volume_fraction(StallCause c) const {
  return frac(by_cause[static_cast<std::size_t>(c)].count, total_count);
}

double StallBreakdown::time_fraction(StallCause c) const {
  return frac_time(by_cause[static_cast<std::size_t>(c)].time, total_time);
}

double RetransBreakdown::volume_fraction(RetransCause c) const {
  return frac(by_cause[static_cast<std::size_t>(c)].count, total_count);
}

double RetransBreakdown::time_fraction(RetransCause c) const {
  return frac_time(by_cause[static_cast<std::size_t>(c)].time, total_time);
}

void StallBreakdown::add(const FlowAnalysis& flow) {
  for (const auto& s : flow.stalls) {
    auto& agg = by_cause[static_cast<std::size_t>(s.cause)];
    ++agg.count;
    agg.time += s.duration;
    ++total_count;
    total_time += s.duration;
  }
}

void StallBreakdown::merge(const StallBreakdown& other) {
  for (std::size_t c = 0; c < kNumStallCauses; ++c) {
    by_cause[c].count += other.by_cause[c].count;
    by_cause[c].time += other.by_cause[c].time;
  }
  total_count += other.total_count;
  total_time += other.total_time;
}

void RetransBreakdown::add(const FlowAnalysis& flow) {
  for (const auto& s : flow.stalls) {
    if (s.cause != StallCause::kRetransmission) continue;
    auto& agg = by_cause[static_cast<std::size_t>(s.retrans_cause)];
    ++agg.count;
    agg.time += s.duration;
    ++total_count;
    total_time += s.duration;
    if (s.retrans_cause == RetransCause::kDoubleRetrans) {
      if (s.f_double) {
        f_double_time += s.duration;
      } else {
        t_double_time += s.duration;
      }
    }
    if (s.retrans_cause == RetransCause::kTailRetrans) {
      if (s.state_at_stall == tcp::CaState::kRecovery ||
          s.state_at_stall == tcp::CaState::kDisorder) {
        tail_recovery_time += s.duration;
      } else {
        tail_open_time += s.duration;
      }
    }
  }
}

void RetransBreakdown::merge(const RetransBreakdown& other) {
  for (std::size_t c = 0; c < kNumRetransCauses; ++c) {
    by_cause[c].count += other.by_cause[c].count;
    by_cause[c].time += other.by_cause[c].time;
  }
  total_count += other.total_count;
  total_time += other.total_time;
  f_double_time += other.f_double_time;
  t_double_time += other.t_double_time;
  tail_open_time += other.tail_open_time;
  tail_recovery_time += other.tail_recovery_time;
}

StallBreakdown make_stall_breakdown(const std::vector<FlowAnalysis>& flows) {
  StallBreakdown bd;
  for (const auto& f : flows) bd.add(f);
  return bd;
}

RetransBreakdown make_retrans_breakdown(
    const std::vector<FlowAnalysis>& flows) {
  RetransBreakdown bd;
  for (const auto& f : flows) bd.add(f);
  return bd;
}

ServiceSummary make_service_summary(const std::vector<FlowAnalysis>& flows) {
  ServiceSummary s;
  double speed_sum = 0, bytes_sum = 0, rtt_sum = 0, rto_sum = 0;
  std::uint64_t data = 0, retrans = 0, rtt_flows = 0, rto_flows = 0;
  for (const auto& f : flows) {
    ++s.flows;
    speed_sum += f.avg_speed_Bps;
    bytes_sum += static_cast<double>(f.unique_bytes);
    data += f.data_segments;
    retrans += f.retrans_segments;
    if (f.avg_rtt_us > 0) {
      rtt_sum += f.avg_rtt_us;
      ++rtt_flows;
    }
    if (f.avg_rto_us > 0) {
      rto_sum += f.avg_rto_us;
      ++rto_flows;
    }
  }
  if (s.flows > 0) {
    speed_sum /= static_cast<double>(s.flows);
    bytes_sum /= static_cast<double>(s.flows);
  }
  s.avg_speed_Bps = speed_sum;
  s.avg_flow_bytes = bytes_sum;
  s.pkt_loss = frac(retrans, data);
  if (rtt_flows) s.avg_rtt_us = rtt_sum / static_cast<double>(rtt_flows);
  if (rto_flows) s.avg_rto_us = rto_sum / static_cast<double>(rto_flows);
  return s;
}

stats::Cdf stall_ratio_cdf(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    if (f.transmission_time > Duration::zero()) cdf.add(f.stall_ratio);
  }
  return cdf;
}

stats::Cdf flow_rtt_cdf_ms(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    if (f.avg_rtt_us > 0) cdf.add(f.avg_rtt_us / 1000.0);
  }
  return cdf;
}

stats::Cdf flow_rto_cdf_ms(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    if (f.avg_rto_us > 0) cdf.add(f.avg_rto_us / 1000.0);
  }
  return cdf;
}

stats::Cdf rto_over_rtt_cdf(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    if (f.avg_rtt_us > 0 && f.avg_rto_us > 0) {
      cdf.add(f.avg_rto_us / f.avg_rtt_us);
    }
  }
  return cdf;
}

stats::Cdf init_rwnd_cdf_mss(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    cdf.add(static_cast<double>(f.init_rwnd_mss));
  }
  return cdf;
}

stats::Cdf stall_position_cdf(const std::vector<FlowAnalysis>& flows,
                              RetransCause cause) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    for (const auto& s : f.stalls) {
      if (s.retrans_cause == cause) cdf.add(s.rel_position);
    }
  }
  return cdf;
}

stats::Cdf stall_inflight_cdf(const std::vector<FlowAnalysis>& flows,
                              RetransCause cause) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    for (const auto& s : f.stalls) {
      if (s.retrans_cause == cause) cdf.add(static_cast<double>(s.in_flight));
    }
  }
  return cdf;
}

stats::Cdf inflight_on_ack_cdf(const std::vector<FlowAnalysis>& flows) {
  stats::Cdf cdf;
  for (const auto& f : flows) {
    for (const auto v : f.inflight_on_ack) cdf.add(static_cast<double>(v));
  }
  return cdf;
}

std::vector<double> zero_rwnd_probability(
    const std::vector<FlowAnalysis>& flows,
    const std::vector<std::uint32_t>& bucket_edges_mss) {
  if (bucket_edges_mss.size() < 2) return {};
  const std::size_t buckets = bucket_edges_mss.size() - 1;
  std::vector<std::uint64_t> total(buckets, 0), zero(buckets, 0);
  for (const auto& f : flows) {
    for (std::size_t i = 0; i < buckets; ++i) {
      if (f.init_rwnd_mss >= bucket_edges_mss[i] &&
          f.init_rwnd_mss < bucket_edges_mss[i + 1]) {
        ++total[i];
        if (f.had_zero_rwnd) ++zero[i];
        break;
      }
    }
  }
  std::vector<double> prob(buckets, 0.0);
  for (std::size_t i = 0; i < buckets; ++i) prob[i] = frac(zero[i], total[i]);
  return prob;
}

std::string describe_flow(const FlowAnalysis& fa) {
  std::string out = str_format(
      "flow %s\n  bytes=%llu segments=%llu retrans=%llu (timeout=%llu "
      "fast=%llu spurious=%llu)\n  time=%s stalled=%s (ratio %.2f) "
      "avg_rtt=%s avg_rto=%s init_rwnd=%uB\n",
      fa.key.to_string().c_str(),
      static_cast<unsigned long long>(fa.unique_bytes),
      static_cast<unsigned long long>(fa.data_segments),
      static_cast<unsigned long long>(fa.retrans_segments),
      static_cast<unsigned long long>(fa.timeout_retrans),
      static_cast<unsigned long long>(fa.fast_retrans),
      static_cast<unsigned long long>(fa.spurious_retrans),
      human_us(static_cast<double>(fa.transmission_time.us())).c_str(),
      human_us(static_cast<double>(fa.stalled_time.us())).c_str(),
      fa.stall_ratio,
      human_us(fa.avg_rtt_us).c_str(), human_us(fa.avg_rto_us).c_str(),
      fa.init_rwnd_bytes);
  for (const auto& s : fa.stalls) {
    out += str_format("  stall @%.3fs +%s cause=%s", s.start.sec(),
                      human_us(static_cast<double>(s.duration.us())).c_str(),
                      to_string(s.cause));
    if (s.cause == StallCause::kRetransmission) {
      out += str_format(" [%s%s, state=%s, in_flight=%u, pos=%.2f]",
                        to_string(s.retrans_cause),
                        s.retrans_cause == RetransCause::kDoubleRetrans
                            ? (s.f_double ? "/f-double" : "/t-double")
                            : "",
                        tcp::to_string(s.state_at_stall), s.in_flight,
                        s.rel_position);
    }
    out += "\n";
  }
  return out;
}

}  // namespace tapo::analysis
