// Umbrella header for the TAPO public API.
//
// Typical usage:
//
//   #include "tapo/tapo.h"
//
//   // Analyze a capture:
//   auto trace = tapo::pcap::read_file("capture.pcap");
//   tapo::analysis::Analyzer analyzer;
//   auto result = analyzer.analyze(trace);
//   auto causes = tapo::analysis::make_stall_breakdown(result.flows);
//
//   // Or simulate a workload and analyze it:
//   tapo::workload::ExperimentConfig cfg;
//   cfg.profile = tapo::workload::web_search_profile();
//   auto res = tapo::workload::run_experiment(cfg);
#pragma once

#include "net/trace.h"       // IWYU pragma: export
#include "pcap/pcap.h"       // IWYU pragma: export
#include "tapo/analyzer.h"   // IWYU pragma: export
#include "tapo/csv.h"        // IWYU pragma: export
#include "tapo/flow.h"       // IWYU pragma: export
#include "tapo/live.h"       // IWYU pragma: export
#include "tapo/report.h"     // IWYU pragma: export
#include "tcp/connection.h"  // IWYU pragma: export
#include "workload/experiment.h"  // IWYU pragma: export
#include "workload/runner.h"      // IWYU pragma: export
