// Umbrella header for the TAPO public API.
//
// Typical usage:
//
//   #include "tapo/tapo.h"
//
//   // Analyze a capture:
//   auto trace = tapo::pcap::read_file("capture.pcap");
//   tapo::analysis::Analyzer analyzer;
//   auto result = analyzer.analyze(trace);
//   auto causes = tapo::analysis::make_stall_breakdown(result.flows);
//
//   // Or simulate a workload and analyze it:
//   auto cfg = tapo::workload::ExperimentConfig{}
//                  .with_profile(tapo::workload::web_search_profile())
//                  .with_flows(500);
//   auto res = tapo::workload::run_experiment(cfg);
//
// Result delivery is unified on tapo::FlowSink (tapo/sink.h): the parallel
// ParallelRunner, the streaming LiveAnalyzer, and the CSV writers
// (analysis::CsvSink) all produce/consume the same FlowResult stream, so a
// sink written once (aggregator, CSV exporter, custom) works offline,
// parallel, and live. Capture realism lives in sim::CaptureChannel
// (sim/capture_channel.h), wired into experiments via
// ExperimentConfig::with_impairments; the analyzer reports per-flow
// degradation in analysis::CaptureQuality.
#pragma once

#include "net/trace.h"            // IWYU pragma: export
#include "pcap/pcap.h"            // IWYU pragma: export
#include "sim/capture_channel.h"  // IWYU pragma: export
#include "tapo/analyzer.h"        // IWYU pragma: export
#include "tapo/csv.h"             // IWYU pragma: export
#include "tapo/flow.h"            // IWYU pragma: export
#include "tapo/live.h"            // IWYU pragma: export
#include "tapo/report.h"          // IWYU pragma: export
#include "tapo/sink.h"            // IWYU pragma: export
#include "tcp/connection.h"       // IWYU pragma: export
#include "workload/experiment.h"  // IWYU pragma: export
#include "workload/runner.h"      // IWYU pragma: export
