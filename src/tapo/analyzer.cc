#include "tapo/analyzer.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "net/chunk.h"
#include "tapo/live.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace tapo::analysis {

const char* to_string(StallCause c) {
  switch (c) {
    case StallCause::kDataUnavailable: return "data_unavailable";
    case StallCause::kResourceConstraint: return "resource_constraint";
    case StallCause::kClientIdle: return "client_idle";
    case StallCause::kZeroWindow: return "zero_rwnd";
    case StallCause::kPacketDelay: return "packet_delay";
    case StallCause::kRetransmission: return "retransmission";
    case StallCause::kUndetermined: return "undetermined";
  }
  return "?";
}

const char* to_string(RetransCause c) {
  switch (c) {
    case RetransCause::kDoubleRetrans: return "double_retrans";
    case RetransCause::kTailRetrans: return "tail_retrans";
    case RetransCause::kSmallCwnd: return "small_cwnd";
    case RetransCause::kSmallRwnd: return "small_rwnd";
    case RetransCause::kContinuousLoss: return "continuous_loss";
    case RetransCause::kAckDelayLoss: return "ack_delay_loss";
    case RetransCause::kUndetermined: return "undetermined";
    case RetransCause::kNone: return "none";
  }
  return "?";
}

AnalyzerConfig& AnalyzerConfig::with_tau(double t) {
  if (!(t > 0.0)) {
    throw std::invalid_argument("AnalyzerConfig: tau must be > 0, got " +
                                std::to_string(t));
  }
  tau = t;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_dupthres(std::uint32_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "AnalyzerConfig: dupthres must be > 0 (zero would classify every "
        "retransmission as fast)");
  }
  dupthres = n;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_small_inflight(std::uint32_t n) {
  if (n == 0) {
    throw std::invalid_argument(
        "AnalyzerConfig: small_inflight must be > 0");
  }
  small_inflight = n;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_rto(const tcp::RtoConfig& cfg) {
  rto = cfg;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_rto_fraction(double f) {
  // Values above 1 are legitimate (stricter timeout attribution: the
  // segment must have been quiet for more than a full RTO).
  if (!(f > 0.0)) {
    throw std::invalid_argument(
        "AnalyzerConfig: rto_fraction must be > 0, got " + std::to_string(f));
  }
  rto_fraction = f;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_inflight_sampling(bool on) {
  sample_inflight_on_ack = on;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_dup_window(Duration w) {
  if (w < Duration::zero()) {
    throw std::invalid_argument("AnalyzerConfig: dup_window must be >= 0");
  }
  dup_window = w;
  suppress_capture_dups = true;
  return *this;
}

AnalyzerConfig& AnalyzerConfig::with_ts_quantum(Duration q) {
  if (q < Duration::zero()) {
    throw std::invalid_argument("AnalyzerConfig: ts_quantum must be >= 0");
  }
  ts_quantum = q;
  return *this;
}

void AnalyzerConfig::validate() const {
  if (!(tau > 0.0)) {
    throw std::invalid_argument("AnalyzerConfig: tau must be > 0");
  }
  if (dupthres == 0) {
    throw std::invalid_argument("AnalyzerConfig: dupthres must be > 0");
  }
  if (small_inflight == 0) {
    throw std::invalid_argument("AnalyzerConfig: small_inflight must be > 0");
  }
  if (!(rto_fraction > 0.0)) {
    throw std::invalid_argument("AnalyzerConfig: rto_fraction must be > 0");
  }
  if (dup_window < Duration::zero()) {
    throw std::invalid_argument("AnalyzerConfig: dup_window must be >= 0");
  }
  if (ts_quantum < Duration::zero()) {
    throw std::invalid_argument("AnalyzerConfig: ts_quantum must be >= 0");
  }
}

namespace {

/// Telemetry tap for every classified stall. The per-cause counters are the
/// ground truth the Prometheus snapshot exposes: any stall table a consumer
/// builds from FlowAnalysis sums to exactly these totals, because both are
/// incremented from the same classification site. The trace event packs the
/// classification into the payload words (decoded by the Chrome exporter):
///   a = duration in us
///   b = cause | retrans_cause<<8 | state<<16 | f_double<<24 | in_flight<<32
void record_stall(const StallRecord& rec) {
  const auto dur_us = static_cast<std::uint64_t>(rec.duration.us());
  TAPO_TRACE(telemetry::EventKind::kStallSpan, rec.start.us(), dur_us,
             static_cast<std::uint64_t>(rec.cause) |
                 static_cast<std::uint64_t>(rec.retrans_cause) << 8 |
                 static_cast<std::uint64_t>(rec.state_at_stall) << 16 |
                 static_cast<std::uint64_t>(rec.f_double) << 24 |
                 static_cast<std::uint64_t>(rec.in_flight) << 32);
  if (!telemetry::metrics_enabled()) return;
  auto& registry = telemetry::Registry::instance();
  // Not cached: stalls are rare (the registry lookup is off the hot path)
  // and the label set varies per call.
  const std::vector<telemetry::Label> by_cause = {
      {"cause", to_string(rec.cause)}};
  registry.counter("tapo_stalls_total", by_cause).add(1);
  registry.counter("tapo_stall_time_us_total", by_cause).add(dur_us);
  if (rec.cause == StallCause::kRetransmission) {
    registry
        .counter("tapo_stall_retrans_total",
                 {{"retrans_cause", to_string(rec.retrans_cause)}})
        .add(1);
  }
  static auto& duration_hist = registry.histogram("tapo_stall_duration_us");
  duration_hist.observe(dur_us);
}

/// Telemetry tap for the per-flow CaptureQuality record, incremented once
/// per analyzed flow from the record's own totals, so the counters and any
/// sum over FlowAnalysis::capture agree exactly (the robustness harness
/// asserts this).
void record_capture_quality(const CaptureQuality& q) {
  if (!telemetry::metrics_enabled()) return;
  auto& registry = telemetry::Registry::instance();
  const auto bump = [&registry](const char* kind, std::uint64_t n) {
    if (n == 0) return;
    registry.counter("tapo_capture_artifacts_total", {{"kind", kind}}).add(n);
  };
  bump("duplicate", q.dup_packets);
  bump("seq_gap", q.seq_gaps);
  bump("truncated", q.truncated_packets);
  bump("mid_stream", q.mid_stream ? 1 : 0);
  bump("suspect_stall", q.suspect_stalls);
  if (q.degraded()) {
    registry.counter("tapo_flows_degraded_total").add(1);
  }
}

/// Per-segment state reconstructed by the mimic. Segments persist for the
/// whole analysis (never popped) so stall classification can look ahead.
struct SegMimic {
  net::Seq32 start;
  net::Seq32 end;
  std::size_t index = 0;  // ordinal among unique data segments
  std::vector<TimePoint> tx_times;
  TimePoint acked_time = TimePoint::max();
  TimePoint sacked_time = TimePoint::max();
  bool first_retrans_was_rto = false;
  bool rto_retransmitted = false;
  bool fast_retransmitted = false;
  bool dsacked = false;
  /// Synthesized for a server-side sequence gap: the capture never recorded
  /// the original transmission of these bytes. Never yields RTT samples;
  /// "retransmissions" of it demote their stall to kUndetermined.
  bool inferred = false;
  // Live flags during the walk (scoreboard mirror).
  bool acked = false;
  bool sacked = false;
  bool lost_est = false;
  bool retrans_pending = false;

  std::uint32_t len() const { return net::distance(start, end); }
  int transmissions() const { return static_cast<int>(tx_times.size()); }
};

/// Per-packet snapshot written during the mimic walk (pass 1) and consumed
/// by the stall detector/classifier (pass 2).
struct PktAnno {
  tcp::CaState state = tcp::CaState::kOpen;
  std::uint32_t in_flight = 0;
  std::uint32_t outstanding = 0;  // packets_out
  std::uint32_t cwnd_est = 0;
  std::uint32_t rwnd_scaled = 0;
  bool has_srtt = false;
  Duration srtt;
  Duration rto;
  bool established = false;

  bool server_data = false;
  bool is_retrans = false;
  bool is_timeout_retrans = false;
  int prior_retrans = 0;
  bool first_retrans_was_rto = false;
  int seg_idx = -1;
  bool is_request = false;
  /// This packet's evidence overlaps a capture artifact (retransmission of
  /// an inferred gap segment): cause classification cannot be trusted.
  bool capture_suspect = false;
};


/// The one packet shape the mimic understands. Both cursors lower their
/// storage to it on the fly; it is stack data plus a borrowed SACK span.
struct PacketView {
  TimePoint ts;
  net::Seq32 seq;
  net::Seq32 ack;
  std::uint32_t payload = 0;
  std::uint16_t window = 0;
  net::TcpFlags flags;
  bool from_server = false;
  std::span<const net::SackBlock> sacks;
  bool truncated = false;  // snaplen cut this record's options
};

/// Cursor over an owning Flow (compact FlowPackets + out-of-line sack pool).
class FlowCursor {
 public:
  explicit FlowCursor(const Flow& flow) : flow_(&flow) {}
  const FlowMeta& meta() const { return *flow_; }
  std::size_t size() const { return flow_->packets.size(); }
  PacketView at(std::size_t i) const {
    const FlowPacket& p = flow_->packets[i];
    return {p.ts,          p.seq,    p.ack,          p.payload,
            p.window,      p.flags,  p.from_server,  flow_->sacks_of(p),
            p.truncated};
  }

 private:
  const Flow* flow_;
};

/// Cursor over a non-owning FlowView: reads CapturedPackets straight from
/// the PacketTrace arena; nothing per packet is materialized anywhere.
class ViewCursor {
 public:
  explicit ViewCursor(const FlowView& view) : view_(&view) {}
  const FlowMeta& meta() const { return *view_; }
  std::size_t size() const { return view_->size(); }
  PacketView at(std::size_t i) const {
    const net::CapturedPacket& cp = view_->packet(i);
    return {cp.timestamp,
            cp.tcp.seq,
            cp.tcp.ack,
            cp.payload_len,
            cp.tcp.window,
            cp.tcp.flags,
            cp.key == view_->server_to_client,
            cp.tcp.sack_blocks.span(),
            cp.truncated};
  }

 private:
  const FlowView* view_;
};

/// The TCP-stack mimic + stall classifier, generic over packet storage:
/// instantiated with FlowCursor (owning path) and ViewCursor (zero-copy
/// path) so both run byte-identical classification code.
template <typename Cursor>
class FlowMimic {
 public:
  FlowMimic(Cursor cursor, const AnalyzerConfig& config)
      : cursor_(cursor),
        meta_(cursor.meta()),
        config_(config),
        rto_(config.rto) {
    if (meta_.mid_stream) {
      // No handshake in the capture: seed sequence state from the first
      // server data packet and remember that this "stream head" is
      // synthetic — it is where the *capture* starts, not necessarily
      // where a response starts.
      snd_nxt_ = meta_.first_server_data_seq;
      quality_.mid_stream = true;
    } else {
      snd_nxt_ = meta_.server_isn + 1;
    }
    snd_una_ = snd_nxt_;
    stream_head_ = snd_nxt_;
    head_seqs_.insert(snd_nxt_);  // the first response starts the stream
  }

  void run(FlowAnalysis& out);

 private:
  /// The one packet accessor the mimic uses: cursor record with the
  /// timestamp floored to config ts_quantum (identity when the quantum is
  /// off). Keeping this the single ingest point is what makes the
  /// quantization-invariance guarantee structural rather than per-site.
  PacketView pkt(std::size_t i) const {
    PacketView p = cursor_.at(i);
    p.ts = floor_to(p.ts, config_.ts_quantum);
    return p;
  }

  SegMimic* find_seg(net::Seq32 seq);
  bool is_capture_dup(const PacketView& a, const PacketView& b) const;
  std::uint32_t packets_out() const;
  std::uint32_t in_flight() const;
  void mark_lost_by_sack();
  void process_server_packet(const PacketView& p, PktAnno& a);
  void process_client_packet(const PacketView& p, PktAnno& a,
                             FlowAnalysis& out);
  void snapshot(PktAnno& a) const;
  void detect_and_classify(FlowAnalysis& out);
  StallRecord classify_stall(std::size_t prev_idx, std::size_t cur_idx) const;
  RetransCause classify_retrans(const PktAnno& prev, const PktAnno& cur,
                                TimePoint stall_start, bool& f_double) const;
  net::Seq32 response_end_for(const SegMimic& seg) const;

  const Cursor cursor_;
  const FlowMeta& meta_;
  const AnalyzerConfig& config_;
  tcp::RtoEstimator rto_;

  std::vector<SegMimic> segs_;
  std::vector<PktAnno> annos_;
  // Response start sequences, serial-ordered: per-flow values span far
  // less than 2^31 bytes, so SeqLess is a strict weak ordering here.
  std::set<net::Seq32, net::SeqLess> head_seqs_;

  net::Seq32 snd_una_;
  net::Seq32 snd_nxt_;
  net::Seq32 stream_head_;  // initial snd_nxt_ (synthetic when mid-stream)
  std::size_t first_unacked_idx_ = 0;  // index into segs_ (monotone)
  CaptureQuality quality_;

  tcp::CaState state_ = tcp::CaState::kOpen;
  std::uint32_t cwnd_est_ = 3;
  std::uint32_t ssthresh_est_ = 0x7fffffff;
  std::uint32_t cwnd_credit_ = 0;
  std::uint32_t dupacks_ = 0;
  net::Seq32 high_seq_est_;
  std::uint32_t rwnd_scaled_ = 0xffffffff;
  bool established_ = false;
  TimePoint synack_ts_;
  bool saw_synack_ = false;
  bool handshake_sampled_ = false;

  double rto_sample_sum_us_ = 0.0;
  std::uint64_t rto_sample_count_ = 0;
};

template <typename Cursor>
SegMimic* FlowMimic<Cursor>::find_seg(net::Seq32 seq) {
  // Segments are sorted by start; binary search for the containing one.
  auto it = std::upper_bound(
      segs_.begin(), segs_.end(), seq,
      [](net::Seq32 s, const SegMimic& seg) { return net::before(s, seg.start); });
  if (it == segs_.begin()) return nullptr;
  --it;
  return net::seq_in_range(seq, it->start, it->end) ? &*it : nullptr;
}

template <typename Cursor>
bool FlowMimic<Cursor>::is_capture_dup(const PacketView& a,
                                       const PacketView& b) const {
  // Identical header (direction, seq/ack, length, window, flags, SACKs)
  // within dup_window of each other. A retransmission repeats seq but
  // arrives at least an RTT later; capture duplicates arrive back to back
  // (same timestamp for mirror ports), so the window separates the two.
  if (a.from_server != b.from_server || a.seq != b.seq || a.ack != b.ack ||
      a.payload != b.payload || a.window != b.window ||
      !(a.flags == b.flags)) {
    return false;
  }
  if (a.sacks.size() != b.sacks.size()) return false;
  for (std::size_t i = 0; i < a.sacks.size(); ++i) {
    if (!(a.sacks[i] == b.sacks[i])) return false;
  }
  const Duration d = b.ts >= a.ts ? b.ts - a.ts : a.ts - b.ts;
  return d <= config_.dup_window;
}

template <typename Cursor>
std::uint32_t FlowMimic<Cursor>::packets_out() const {
  std::uint32_t n = 0;
  for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
    if (!segs_[i].acked) ++n;
  }
  return n;
}

template <typename Cursor>
std::uint32_t FlowMimic<Cursor>::in_flight() const {
  // Eq. 1: packets_out + retrans_out - (sacked_out + lost_out).
  std::uint32_t out = 0, retrans = 0, sacked = 0, lost = 0;
  for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
    const SegMimic& s = segs_[i];
    if (s.acked) continue;
    ++out;
    if (s.retrans_pending) ++retrans;
    if (s.sacked) ++sacked;
    if (s.lost_est) ++lost;
  }
  const std::uint32_t gone = sacked + lost;
  const std::uint32_t total = out + retrans;
  return total > gone ? total - gone : 0;
}

template <typename Cursor>
void FlowMimic<Cursor>::mark_lost_by_sack() {
  std::uint32_t sacked_above = 0;
  for (std::size_t i = segs_.size(); i-- > first_unacked_idx_;) {
    SegMimic& s = segs_[i];
    if (s.acked) break;
    if (s.sacked) {
      ++sacked_above;
    } else if (!s.lost_est && sacked_above >= config_.dupthres) {
      s.lost_est = true;
      s.retrans_pending = false;
    }
  }
}

template <typename Cursor>
void FlowMimic<Cursor>::snapshot(PktAnno& a) const {
  a.state = state_;
  a.in_flight = in_flight();
  a.outstanding = packets_out();
  a.cwnd_est = cwnd_est_;
  a.rwnd_scaled = rwnd_scaled_;
  a.has_srtt = rto_.has_sample();
  a.srtt = rto_.srtt();
  a.rto = rto_.rto();
  a.established = established_;
}

template <typename Cursor>
void FlowMimic<Cursor>::process_server_packet(const PacketView& p,
                                              PktAnno& a) {
  const std::uint32_t eff_len = p.payload + (p.flags.fin ? 1u : 0u);
  if (p.flags.syn) {
    synack_ts_ = p.ts;
    saw_synack_ = true;
    return;
  }
  if (eff_len == 0) return;  // pure ACK

  a.server_data = true;
  const net::Seq32 end = p.seq + eff_len;

  if (net::at_or_after(p.seq, snd_nxt_)) {
    if (net::after(p.seq, snd_nxt_)) {
      // Capture gap: the server must have sent [snd_nxt_, p.seq) for this
      // packet to exist, but the capture never recorded it (kernel capture
      // drop). Track an inferred segment so ACK/SACK bookkeeping stays
      // consistent; it never yields RTT samples, and a later
      // "retransmission" of it demotes its stall to kUndetermined.
      SegMimic gap;
      gap.start = snd_nxt_;
      gap.end = p.seq;
      gap.index = segs_.size();
      gap.tx_times.push_back(p.ts);
      gap.inferred = true;
      segs_.push_back(std::move(gap));
      ++quality_.seq_gaps;
      quality_.gap_bytes += net::distance(snd_nxt_, p.seq);
    }
    // New data.
    SegMimic seg;
    seg.start = p.seq;
    seg.end = end;
    seg.index = segs_.size();
    seg.tx_times.push_back(p.ts);
    a.seg_idx = static_cast<int>(seg.index);
    segs_.push_back(std::move(seg));
    snd_nxt_ = end;
    return;
  }

  // Retransmission — or a late record filling an inferred capture gap.
  SegMimic* seg = find_seg(p.seq);
  if (seg == nullptr) return;  // overlap we cannot attribute
  if (seg->inferred && seg->start == p.seq && seg->end == end) {
    // Local capture reordering, not a retransmission: the record for
    // exactly these bytes arrived one slot late. Adopt it as the original
    // transmission and un-count the gap.
    seg->inferred = false;
    seg->tx_times.back() = p.ts;
    a.seg_idx = static_cast<int>(seg->index);
    --quality_.seq_gaps;
    quality_.gap_bytes -= seg->len();
    return;
  }
  a.is_retrans = true;
  a.seg_idx = static_cast<int>(seg->index);
  a.prior_retrans = seg->transmissions() - 1;
  if (seg->inferred) a.capture_suspect = true;

  const Duration elapsed = p.ts - seg->tx_times.back();
  const Duration rto_now = rto_.rto();
  bool is_rto;
  if (dupacks_ >= config_.dupthres && elapsed < rto_now) {
    is_rto = false;  // enough dupacks and before the timer: fast retransmit
  } else {
    is_rto = elapsed >= rto_now * config_.rto_fraction;
  }
  a.is_timeout_retrans = is_rto;
  a.first_retrans_was_rto = seg->first_retrans_was_rto;

  if (seg->transmissions() == 1) seg->first_retrans_was_rto = is_rto;
  seg->tx_times.push_back(p.ts);
  seg->retrans_pending = true;

  if (is_rto) {
    seg->rto_retransmitted = true;
    if (state_ != tcp::CaState::kLoss) {
      ssthresh_est_ = std::max<std::uint32_t>(cwnd_est_ / 2, 2);
    }
    state_ = tcp::CaState::kLoss;
    high_seq_est_ = snd_nxt_;
    cwnd_est_ = 1;
    dupacks_ = 0;
    for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
      SegMimic& s = segs_[i];
      if (!s.acked && !s.sacked) s.lost_est = true;
    }
    seg->lost_est = true;  // keep consistent (it is being retransmitted)
  } else {
    seg->fast_retransmitted = true;
    seg->lost_est = true;
    if (state_ != tcp::CaState::kRecovery && state_ != tcp::CaState::kLoss) {
      state_ = tcp::CaState::kRecovery;
      ssthresh_est_ = std::max<std::uint32_t>(cwnd_est_ / 2, 2);
      high_seq_est_ = snd_nxt_;
    }
  }
}

template <typename Cursor>
void FlowMimic<Cursor>::process_client_packet(const PacketView& p, PktAnno& a,
                                      FlowAnalysis& out) {
  if (p.flags.syn) return;
  if (!established_) established_ = true;

  // Handshake RTT seed (SYN-ACK -> first client ACK), as the kernel does.
  if (saw_synack_ && !handshake_sampled_ && p.flags.ack) {
    handshake_sampled_ = true;
    const Duration rtt = p.ts - synack_ts_;
    rto_.sample(rtt);
    out.rtt_samples_us.push_back(static_cast<double>(rtt.us()));
  }

  rwnd_scaled_ = static_cast<std::uint32_t>(p.window) << meta_.client_wscale;
  if (rwnd_scaled_ == 0) out.had_zero_rwnd = true;

  if (p.payload > 0) {
    a.is_request = true;
    // The next new server data starts a fresh response.
    head_seqs_.insert(snd_nxt_);
  }

  if (!p.flags.ack) return;

  // DSACK detection (RFC 2883): leading block below the cumulative ACK or
  // contained in the second block.
  if (!p.sacks.empty()) {
    const auto& b0 = p.sacks[0];
    const bool below_ack = net::at_or_before(b0.end, p.ack);
    const bool inside_second =
        p.sacks.size() >= 2 &&
        net::at_or_after(b0.start, p.sacks[1].start) &&
        net::at_or_before(b0.end, p.sacks[1].end);
    if (below_ack || inside_second) {
      if (SegMimic* seg = find_seg(b0.start)) {
        if (!seg->dsacked && seg->transmissions() > 1) {
          seg->dsacked = true;
          ++out.spurious_retrans;
        }
      }
    }
  }

  // SACK application (blocks above snd_una).
  std::uint32_t newly_sacked = 0;
  for (const auto& b : p.sacks) {
    if (net::at_or_before(b.end, snd_una_)) continue;
    for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
      SegMimic& s = segs_[i];
      if (s.acked || s.sacked) continue;
      if (net::at_or_after(s.start, b.start) &&
          net::at_or_before(s.end, b.end)) {
        s.sacked = true;
        s.sacked_time = std::min(s.sacked_time, p.ts);
        s.lost_est = false;
        s.retrans_pending = false;
        ++newly_sacked;
        if (s.transmissions() == 1 && !s.inferred) {
          // SACK-time RTT sample, mirroring the sender.
          const Duration rtt = p.ts - s.tx_times.front();
          rto_.sample(rtt);
          out.rtt_samples_us.push_back(static_cast<double>(rtt.us()));
        }
      }
    }
  }

  const bool ack_advanced = net::after(p.ack, snd_una_);
  std::uint32_t n_acked = 0;
  if (ack_advanced) {
    // Karn's rule + newest-candidate sampling, mirroring the sender.
    TimePoint newest;
    bool have = false;
    for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
      SegMimic& s = segs_[i];
      if (net::after(s.end, p.ack)) break;
      if (!s.acked) {
        s.acked = true;
        s.acked_time = p.ts;
        ++n_acked;
        if (s.transmissions() == 1 && !s.sacked && !s.inferred &&
            (!have || s.tx_times.front() > newest)) {
          newest = s.tx_times.front();
          have = true;
        }
      }
      first_unacked_idx_ = i + 1;
    }
    if (have) {
      const Duration rtt = p.ts - newest;
      rto_.sample(rtt);
      out.rtt_samples_us.push_back(static_cast<double>(rtt.us()));
    }
    snd_una_ = p.ack;
    dupacks_ = 0;
  } else if (p.payload == 0 && packets_out() > 0) {
    ++dupacks_;
  }

  // State transitions mirroring Fig. 4.
  switch (state_) {
    case tcp::CaState::kOpen:
    case tcp::CaState::kDisorder: {
      std::uint32_t sacked_out = 0;
      for (std::size_t i = first_unacked_idx_; i < segs_.size(); ++i) {
        if (!segs_[i].acked && segs_[i].sacked) ++sacked_out;
      }
      state_ = (dupacks_ > 0 || sacked_out > 0) ? tcp::CaState::kDisorder
                                                : tcp::CaState::kOpen;
      mark_lost_by_sack();
      if (ack_advanced) {
        // Window growth (Reno-like estimate).
        if (cwnd_est_ < ssthresh_est_) {
          cwnd_est_ += n_acked;
        } else {
          cwnd_credit_ += n_acked;
          if (cwnd_credit_ >= cwnd_est_ && cwnd_est_ > 0) {
            cwnd_credit_ -= cwnd_est_;
            ++cwnd_est_;
          }
        }
      }
      break;
    }
    case tcp::CaState::kRecovery: {
      mark_lost_by_sack();
      if (net::at_or_after(snd_una_, high_seq_est_)) {
        state_ = tcp::CaState::kOpen;
        cwnd_est_ = std::min(cwnd_est_, std::max<std::uint32_t>(ssthresh_est_, 2));
        dupacks_ = 0;
      } else if (++cwnd_credit_ % 2 == 0 && cwnd_est_ > ssthresh_est_) {
        --cwnd_est_;  // rate halving
      }
      break;
    }
    case tcp::CaState::kLoss: {
      if (ack_advanced) {
        if (cwnd_est_ < ssthresh_est_) cwnd_est_ += n_acked;
      }
      if (net::at_or_after(snd_una_, high_seq_est_)) {
        state_ = tcp::CaState::kOpen;
        dupacks_ = 0;
      }
      break;
    }
  }

  if (config_.sample_inflight_on_ack) {
    out.inflight_on_ack.push_back(in_flight());
  }
  rto_sample_sum_us_ += static_cast<double>(rto_.rto().us());
  ++rto_sample_count_;
  (void)newly_sacked;
}

template <typename Cursor>
net::Seq32 FlowMimic<Cursor>::response_end_for(const SegMimic& seg) const {
  auto it = head_seqs_.upper_bound(seg.start);
  if (it != head_seqs_.end()) return *it;
  return snd_nxt_;  // final: end of everything the server sent
}

template <typename Cursor>
void FlowMimic<Cursor>::run(FlowAnalysis& out) {
  out.key = meta_.server_to_client;
  out.init_rwnd_bytes = meta_.init_rwnd_bytes;
  out.init_rwnd_mss = meta_.mss ? meta_.init_rwnd_bytes / meta_.mss : 0;

  annos_.resize(cursor_.size());
  for (std::size_t i = 0; i < cursor_.size(); ++i) {
    const PacketView p = pkt(i);
    PktAnno& a = annos_[i];
    if (p.truncated) ++quality_.truncated_packets;
    if (config_.suppress_capture_dups && i > 0 &&
        is_capture_dup(pkt(i - 1), p)) {
      // Capture duplicate (mirror port / dual tap): the stack saw this
      // packet once. Carry the previous packet's state snapshot forward
      // without re-processing, so the copy adds no data, retransmission,
      // or request accounting.
      a = annos_[i - 1];
      a.server_data = false;
      a.is_retrans = false;
      a.is_timeout_retrans = false;
      a.is_request = false;
      a.seg_idx = -1;
      a.capture_suspect = false;
      ++quality_.dup_packets;
      continue;
    }
    if (p.from_server) {
      process_server_packet(p, a);
      if (a.server_data) {
        ++out.data_segments;
        if (a.is_retrans) {
          ++out.retrans_segments;
          if (a.is_timeout_retrans) {
            ++out.timeout_retrans;
            // The observed inter-transmission gap IS the timer that fired,
            // including any exponential backoff.
            const auto& seg = segs_[static_cast<std::size_t>(a.seg_idx)];
            const auto n = seg.tx_times.size();
            const Duration fired =
                seg.tx_times[n - 1] - seg.tx_times[n - 2];
            out.rto_at_timeout_us.push_back(static_cast<double>(fired.us()));
          } else {
            ++out.fast_retrans;
          }
        }
      }
    } else {
      process_client_packet(p, a, out);
    }
    snapshot(a);
    // The packet-specific fields were filled before snapshot; snapshot only
    // fills the state fields.
  }

  // Transfer-level metrics.
  if (cursor_.size() > 0) {
    out.transmission_time =
        pkt(cursor_.size() - 1).ts - pkt(0).ts;
  }
  for (const auto& s : segs_) out.unique_bytes += s.len();
  if (!out.rtt_samples_us.empty()) {
    double sum = 0;
    for (double r : out.rtt_samples_us) sum += r;
    out.avg_rtt_us = sum / static_cast<double>(out.rtt_samples_us.size());
  }
  if (rto_sample_count_ > 0) {
    out.avg_rto_on_ack_us =
        rto_sample_sum_us_ / static_cast<double>(rto_sample_count_);
  }
  if (!out.rto_at_timeout_us.empty()) {
    double sum = 0;
    for (double r : out.rto_at_timeout_us) sum += r;
    out.avg_rto_us = sum / static_cast<double>(out.rto_at_timeout_us.size());
  }

  detect_and_classify(out);

  // Capture quality: drop-rate estimate + deterministic confidence score.
  if (out.unique_bytes > 0) {
    quality_.est_drop_rate =
        std::min(1.0, static_cast<double>(quality_.gap_bytes) /
                          static_cast<double>(out.unique_bytes));
  }
  quality_.confidence = (1.0 - quality_.est_drop_rate) *
                        (quality_.mid_stream ? 0.5 : 1.0) *
                        (quality_.truncated_packets > 0 ? 0.9 : 1.0);
  out.capture = quality_;
  record_capture_quality(quality_);

  // Average speed over the *active* data phase: first payload transmission
  // to flow end, minus stalled time — i.e. the transfer rate the service
  // delivers while actually moving data.
  if (!segs_.empty() && cursor_.size() > 0) {
    const Duration data_phase =
        pkt(cursor_.size() - 1).ts - segs_.front().tx_times.front();
    // Stalls that straddle the start of the data phase (e.g. a back-end
    // fetch ending in the first data packet) can push `active` to zero;
    // fall back to the raw data-phase rate then.
    Duration active = data_phase - out.stalled_time;
    if (active <= Duration::zero()) active = data_phase;
    if (active > Duration::zero()) {
      out.avg_speed_Bps = static_cast<double>(out.unique_bytes) / active.sec();
    }
  }
}

template <typename Cursor>
void FlowMimic<Cursor>::detect_and_classify(FlowAnalysis& out) {
  if (cursor_.size() == 0) return;
  TimePoint prev_ts = pkt(0).ts;
  for (std::size_t i = 0; i + 1 < cursor_.size(); ++i) {
    const TimePoint cur_ts = pkt(i + 1).ts;
    const Duration gap = cur_ts - prev_ts;
    prev_ts = cur_ts;
    const PktAnno& prev = annos_[i];
    if (!prev.established || !prev.has_srtt) continue;
    const Duration thresh = std::min(prev.srtt * config_.tau, prev.rto);
    if (gap <= thresh) continue;

    StallRecord rec = classify_stall(i, i + 1);
    if (rec.capture_suspect) ++quality_.suspect_stalls;
    out.stalled_time += rec.duration;
    record_stall(rec);
    out.stalls.push_back(rec);
  }
  if (out.transmission_time > Duration::zero()) {
    out.stall_ratio = out.stalled_time / out.transmission_time;
  }
}

template <typename Cursor>
StallRecord FlowMimic<Cursor>::classify_stall(std::size_t prev_idx,
                                      std::size_t cur_idx) const {
  const PktAnno& prev = annos_[prev_idx];
  const PktAnno& cur = annos_[cur_idx];
  StallRecord rec;
  rec.start = pkt(prev_idx).ts;
  rec.end = pkt(cur_idx).ts;
  rec.duration = rec.end - rec.start;
  rec.state_at_stall = prev.state;
  rec.in_flight = prev.in_flight;
  rec.cur_pkt_index = cur_idx;
  if (cur.seg_idx >= 0 && !segs_.empty()) {
    rec.rel_position = static_cast<double>(cur.seg_idx) /
                       static_cast<double>(segs_.size());
  }

  if (cur.server_data && cur.is_retrans) {
    if (cur.capture_suspect) {
      // The "retransmission" covers bytes whose original transmission the
      // capture never recorded; genuine loss and a capture drop of the
      // first copy are indistinguishable, so no cause can be asserted.
      rec.cause = StallCause::kUndetermined;
      rec.capture_suspect = true;
      return rec;
    }
    if (cur.is_timeout_retrans) {
      rec.cause = StallCause::kRetransmission;
      bool f_double = false;
      rec.retrans_cause = classify_retrans(prev, cur, rec.start, f_double);
      rec.f_double = f_double;
    } else {
      // A fast retransmit after a long gap: the network delayed the dupacks
      // or data; no timeout fired.
      rec.cause = StallCause::kPacketDelay;
    }
    return rec;
  }

  if (prev.rwnd_scaled == 0) {
    rec.cause = StallCause::kZeroWindow;
    return rec;
  }

  if (cur.is_request && prev.outstanding == 0) {
    rec.cause = StallCause::kClientIdle;
    return rec;
  }

  if (cur.server_data && !cur.is_retrans && cur.seg_idx >= 0 &&
      prev.outstanding == 0) {
    // (seg_idx can be -1 for malformed traces where a transmission below
    // snd_nxt matches no tracked segment — those fall through.)
    const SegMimic& seg = segs_[static_cast<std::size_t>(cur.seg_idx)];
    rec.cause = head_seqs_.count(seg.start)
                    ? StallCause::kDataUnavailable
                    : StallCause::kResourceConstraint;
    if (rec.cause == StallCause::kDataUnavailable && quality_.mid_stream &&
        seg.start == stream_head_) {
      // The stream head is synthetic (mid-stream capture seed), not an
      // observed request boundary — a back-end fetch cannot be asserted.
      rec.cause = StallCause::kUndetermined;
      rec.capture_suspect = true;
    }
    return rec;
  }

  if (prev.outstanding > 0) {
    // Something was in flight and eventually showed up without any
    // retransmission: the network delayed data or ACKs.
    rec.cause = StallCause::kPacketDelay;
    return rec;
  }

  rec.cause = StallCause::kUndetermined;
  return rec;
}

template <typename Cursor>
RetransCause FlowMimic<Cursor>::classify_retrans(const PktAnno& prev,
                                         const PktAnno& cur,
                                         TimePoint stall_start,
                                         bool& f_double) const {
  const SegMimic& seg = segs_[static_cast<std::size_t>(cur.seg_idx)];

  // 1. Double retransmission: the segment had already been retransmitted
  //    before this timeout retransmission (§4.1).
  if (cur.prior_retrans >= 1) {
    f_double = !cur.first_retrans_was_rto;
    return RetransCause::kDoubleRetrans;
  }

  // The tail / small-window / continuous-loss rules all describe *genuine
  // loss* scenarios. A DSACK for this segment proves the data arrived and
  // only the feedback path failed, so those rules do not apply (§4.3:
  // "segments are identified as not lost through DSACK").
  const bool genuinely_lost = !seg.dsacked;

  // 2. Tail retransmission: the segment sits at the end of its response
  //    (within dupthres segments of the response boundary), so the receiver
  //    cannot generate enough dupacks (§4.2).
  const net::Seq32 resp_end = response_end_for(seg);
  const std::uint32_t tail_zone =
      config_.dupthres * static_cast<std::uint32_t>(meta_.mss);
  if (genuinely_lost && net::distance(seg.end, resp_end) < tail_zone) {
    return RetransCause::kTailRetrans;
  }

  // 3/4. Small in-flight: fast retransmit cannot trigger (< 4 MSS, §4.3);
  //      attribute to whichever of cwnd / rwnd was the limit.
  if (genuinely_lost && prev.in_flight < config_.small_inflight) {
    const std::uint64_t cwnd_bytes =
        static_cast<std::uint64_t>(prev.cwnd_est) * meta_.mss;
    if (cwnd_bytes <= prev.rwnd_scaled) return RetransCause::kSmallCwnd;
    return RetransCause::kSmallRwnd;
  }

  // 5. Continuous loss: every outstanding packet in the window was lost
  //    (>= 4 outstanding, §4.3). Look ahead: each segment outstanding and
  //    unSACKed at stall start was retransmitted later (or never delivered).
  std::uint32_t outstanding = 0;
  bool all_lost = true;
  for (const auto& s : segs_) {
    if (s.tx_times.front() > stall_start) continue;   // sent after the stall
    if (s.acked_time <= stall_start) continue;        // already acked
    if (s.sacked_time <= stall_start) continue;       // already sacked
    ++outstanding;
    bool retransmitted_after = false;
    for (const TimePoint t : s.tx_times) {
      if (t > stall_start) {
        retransmitted_after = true;
        break;
      }
    }
    const bool never_delivered = s.acked_time == TimePoint::max() &&
                                 s.sacked_time == TimePoint::max();
    if (!retransmitted_after && !never_delivered) {
      all_lost = false;
    }
  }
  if (genuinely_lost && outstanding >= 4 && all_lost) {
    return RetransCause::kContinuousLoss;
  }

  // 6. ACK delay/loss: DSACK proves the data arrived — only the feedback
  //    path failed (§4.3).
  if (seg.dsacked) return RetransCause::kAckDelayLoss;

  return RetransCause::kUndetermined;
}

}  // namespace

Analyzer::Analyzer(AnalyzerConfig config) : config_(config) {
  config_.validate();
}

FlowAnalysis Analyzer::analyze_flow(const Flow& flow) const {
  FlowAnalysis out;
  FlowMimic<FlowCursor> mimic(FlowCursor(flow), config_);
  mimic.run(out);
  return out;
}

FlowAnalysis Analyzer::analyze_flow(const FlowView& view) const {
  FlowAnalysis out;
  FlowMimic<ViewCursor> mimic(ViewCursor(view), config_);
  mimic.run(out);
  return out;
}

namespace {

/// Batch-over-streaming adapter: feeds every packet `for_each` yields
/// through an unbounded LiveAnalyzer (no timeouts, no caps — nothing
/// finalizes until flush, so every flow is analyzed whole, exactly like
/// the old batch path), then restores first-packet flow order, which the
/// LRU-driven flush does not preserve.
template <typename ForEachPacket>
AnalysisResult analyze_streamed(const AnalyzerConfig& config,
                                const DemuxOptions& demux,
                                ForEachPacket&& for_each) {
  LiveConfig live_config;
  live_config.with_analyzer(config)
      .with_demux(demux)
      .with_idle_timeout(Duration::max())
      .with_fin_linger(Duration::max())
      .with_max_flows(std::numeric_limits<std::size_t>::max())
      .with_max_packets_per_flow(std::numeric_limits<std::size_t>::max());

  AnalysisResult result;
  LiveAnalyzer live(live_config, LiveAnalyzer::FlowDoneFn(
      [&result](const FlowAnalysis& fa) { result.flows.push_back(fa); }));
  std::unordered_map<net::FlowKey, std::size_t, net::FlowKeyHash> first_seen;
  for_each([&](const net::CapturedPacket& pkt) {
    first_seen.try_emplace(pkt.key.canonical(), first_seen.size());
    live.add_packet(pkt);
  });
  live.flush();
  std::stable_sort(result.flows.begin(), result.flows.end(),
                   [&first_seen](const FlowAnalysis& a, const FlowAnalysis& b) {
                     return first_seen.at(a.key.canonical()) <
                            first_seen.at(b.key.canonical());
                   });
  return result;
}

}  // namespace

AnalysisResult Analyzer::analyze(const net::PacketTrace& trace,
                                 const DemuxOptions& demux) const {
  return analyze_streamed(config_, demux, [&trace](auto&& feed) {
    for (const net::CapturedPacket& pkt : trace.packets()) feed(pkt);
  });
}

AnalysisResult Analyzer::analyze(const net::ChunkedTrace& trace,
                                 const DemuxOptions& demux) const {
  return analyze_streamed(config_, demux, [&trace](auto&& feed) {
    for (const net::TraceChunk& chunk : trace.chunks()) {
      for (const net::CapturedPacket& pkt : chunk.packets()) feed(pkt);
    }
    for (const net::CapturedPacket& pkt : trace.open_packets()) feed(pkt);
  });
}

}  // namespace tapo::analysis
