#include "tapo/csv.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "net/ipv4.h"
#include "util/strings.h"

namespace tapo::analysis {
namespace {

std::string endpoint(std::uint32_t ip, std::uint16_t port) {
  return net::ipv4_to_string(ip) + ":" + std::to_string(port);
}

constexpr const char* kFlowsHeader =
    "flow,server,client,bytes,segments,retrans,timeout_retrans,"
    "fast_retrans,spurious,transmission_s,stalled_s,stall_ratio,"
    "avg_rtt_ms,avg_rto_ms,avg_speed_Bps,init_rwnd_bytes,"
    "had_zero_rwnd,stalls\n";

constexpr const char* kStallsHeader =
    "flow,start_s,duration_s,cause,retrans_cause,f_double,state,"
    "in_flight,rel_position\n";

// One-row emitters shared by the buffered writers and the streaming
// CsvSink, so both produce byte-identical rows.
void write_flow_row(std::ostream& out, std::size_t id,
                    const FlowAnalysis& f) {
  out << id << ',' << endpoint(f.key.src_ip, f.key.src_port) << ','
      << endpoint(f.key.dst_ip, f.key.dst_port) << ',' << f.unique_bytes
      << ',' << f.data_segments << ',' << f.retrans_segments << ','
      << f.timeout_retrans << ',' << f.fast_retrans << ','
      << f.spurious_retrans << ','
      << str_format("%.6f", f.transmission_time.sec()) << ','
      << str_format("%.6f", f.stalled_time.sec()) << ','
      << str_format("%.4f", f.stall_ratio) << ','
      << str_format("%.3f", f.avg_rtt_us / 1000.0) << ','
      << str_format("%.3f", f.avg_rto_us / 1000.0) << ','
      << str_format("%.1f", f.avg_speed_Bps) << ',' << f.init_rwnd_bytes
      << ',' << (f.had_zero_rwnd ? 1 : 0) << ',' << f.stalls.size() << '\n';
}

void write_stall_rows(std::ostream& out, std::size_t id,
                      const FlowAnalysis& f) {
  for (const auto& s : f.stalls) {
    out << id << ',' << str_format("%.6f", s.start.sec()) << ','
        << str_format("%.6f", s.duration.sec()) << ',' << to_string(s.cause)
        << ','
        << (s.cause == StallCause::kRetransmission
                ? to_string(s.retrans_cause)
                : "")
        << ',' << (s.f_double ? 1 : 0) << ','
        << tcp::to_string(s.state_at_stall) << ',' << s.in_flight << ','
        << str_format("%.4f", s.rel_position) << '\n';
  }
}

}  // namespace

void write_flows_csv(std::ostream& out,
                     const std::vector<FlowAnalysis>& flows) {
  out << kFlowsHeader;
  std::size_t id = 0;
  for (const auto& f : flows) write_flow_row(out, id++, f);
}

void write_stalls_csv(std::ostream& out,
                      const std::vector<FlowAnalysis>& flows) {
  out << kStallsHeader;
  std::size_t id = 0;
  for (const auto& f : flows) write_stall_rows(out, id++, f);
}

CsvSink::CsvSink(std::ostream& flows_out, std::ostream* stalls_out)
    : flows_out_(&flows_out), stalls_out_(stalls_out) {
  *flows_out_ << kFlowsHeader;
  if (stalls_out_ != nullptr) *stalls_out_ << kStallsHeader;
}

void CsvSink::consume(FlowResult&& result) {
  for (const auto& fa : result.analyses) {
    write_flow_row(*flows_out_, result.index, fa);
    if (stalls_out_ != nullptr) write_stall_rows(*stalls_out_, result.index, fa);
  }
}

void CsvSink::finish(const RunStats& stats) {
  (void)stats;
  flows_out_->flush();
  if (stalls_out_ != nullptr) stalls_out_->flush();
}

namespace {

template <typename Fn>
void write_file(const std::string& path,
                const std::vector<FlowAnalysis>& flows, Fn fn) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv: cannot open " + path);
  fn(out, flows);
  if (!out) throw std::runtime_error("csv: write failed for " + path);
}

}  // namespace

void write_flows_csv_file(const std::string& path,
                          const std::vector<FlowAnalysis>& flows) {
  write_file(path, flows,
             [](std::ostream& o, const auto& f) { write_flows_csv(o, f); });
}

void write_stalls_csv_file(const std::string& path,
                           const std::vector<FlowAnalysis>& flows) {
  write_file(path, flows,
             [](std::ostream& o, const auto& f) { write_stalls_csv(o, f); });
}

}  // namespace tapo::analysis
