// Aggregation of per-flow analyses into the paper's tables and figures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/cdf.h"
#include "tapo/analyzer.h"

namespace tapo::analysis {

/// Count + total stalled time for one cause bucket.
struct CauseAgg {
  std::uint64_t count = 0;
  Duration time;
};

/// Table 3: stall breakdown by top-level cause, by volume and time.
/// Mergeable aggregate: build incrementally with add() (streaming sinks)
/// or combine per-shard partials with merge().
struct StallBreakdown {
  std::array<CauseAgg, kNumStallCauses> by_cause;
  std::uint64_t total_count = 0;
  Duration total_time;

  void add(const FlowAnalysis& flow);
  void merge(const StallBreakdown& other);

  double volume_fraction(StallCause c) const;
  double time_fraction(StallCause c) const;
};

/// Table 5: retransmission-stall breakdown. Mergeable like StallBreakdown.
struct RetransBreakdown {
  std::array<CauseAgg, kNumRetransCauses> by_cause;
  std::uint64_t total_count = 0;
  Duration total_time;
  // Table 6: f-double vs t-double (time).
  Duration f_double_time;
  Duration t_double_time;
  // Table 7: tail stalls by state (time).
  Duration tail_open_time;
  Duration tail_recovery_time;

  void add(const FlowAnalysis& flow);
  void merge(const RetransBreakdown& other);

  double volume_fraction(RetransCause c) const;
  double time_fraction(RetransCause c) const;
};

/// Table 1-style service summary.
struct ServiceSummary {
  std::uint64_t flows = 0;
  double avg_speed_Bps = 0.0;
  double avg_flow_bytes = 0.0;
  double pkt_loss = 0.0;  // retransmitted / sent data segments
  double avg_rtt_us = 0.0;
  double avg_rto_us = 0.0;
};

StallBreakdown make_stall_breakdown(const std::vector<FlowAnalysis>& flows);
RetransBreakdown make_retrans_breakdown(const std::vector<FlowAnalysis>& flows);
ServiceSummary make_service_summary(const std::vector<FlowAnalysis>& flows);

/// Fig. 3: stalled-time / transmission-time ratio per flow (flows with at
/// least one packet; flows without stalls contribute 0).
stats::Cdf stall_ratio_cdf(const std::vector<FlowAnalysis>& flows);

/// Fig. 1a: per-flow average RTT and RTO (ms).
stats::Cdf flow_rtt_cdf_ms(const std::vector<FlowAnalysis>& flows);
stats::Cdf flow_rto_cdf_ms(const std::vector<FlowAnalysis>& flows);
/// Fig. 1b: per-flow RTO/RTT ratio.
stats::Cdf rto_over_rtt_cdf(const std::vector<FlowAnalysis>& flows);

/// Fig. 6: initial receive window in MSS.
stats::Cdf init_rwnd_cdf_mss(const std::vector<FlowAnalysis>& flows);

/// Fig. 7 / Fig. 10 context: relative position and in-flight size of
/// double- / tail-retransmission stalls.
stats::Cdf stall_position_cdf(const std::vector<FlowAnalysis>& flows,
                              RetransCause cause);
stats::Cdf stall_inflight_cdf(const std::vector<FlowAnalysis>& flows,
                              RetransCause cause);

/// Fig. 11: in-flight size sampled on every ACK.
stats::Cdf inflight_on_ack_cdf(const std::vector<FlowAnalysis>& flows);

/// Table 4: fraction of flows in an init-rwnd bucket that hit a zero
/// receive window. Buckets are [edges[i], edges[i+1]) in MSS.
std::vector<double> zero_rwnd_probability(
    const std::vector<FlowAnalysis>& flows,
    const std::vector<std::uint32_t>& bucket_edges_mss);

/// One-flow human-readable stall report (used by the TAPO CLI example).
std::string describe_flow(const FlowAnalysis& fa);

}  // namespace tapo::analysis
