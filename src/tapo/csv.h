// CSV export of analysis results — for feeding the per-flow and per-stall
// data into external plotting/statistics pipelines (the production TAPO
// deployment fed a daily-maintenance dashboard; this is the equivalent
// integration surface).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tapo/analyzer.h"

namespace tapo::analysis {

/// One row per flow: transfer stats, RTT/RTO, stall totals.
/// Columns: flow,server,client,bytes,segments,retrans,timeout_retrans,
/// fast_retrans,spurious,transmission_s,stalled_s,stall_ratio,avg_rtt_ms,
/// avg_rto_ms,avg_speed_Bps,init_rwnd_bytes,had_zero_rwnd,stalls
void write_flows_csv(std::ostream& out, const std::vector<FlowAnalysis>& flows);

/// One row per stall: flow,start_s,duration_s,cause,retrans_cause,
/// f_double,state,in_flight,rel_position
void write_stalls_csv(std::ostream& out, const std::vector<FlowAnalysis>& flows);

/// Convenience file writers; throw std::runtime_error on I/O failure.
void write_flows_csv_file(const std::string& path,
                          const std::vector<FlowAnalysis>& flows);
void write_stalls_csv_file(const std::string& path,
                           const std::vector<FlowAnalysis>& flows);

}  // namespace tapo::analysis
