// CSV export of analysis results — for feeding the per-flow and per-stall
// data into external plotting/statistics pipelines (the production TAPO
// deployment fed a daily-maintenance dashboard; this is the equivalent
// integration surface).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tapo/analyzer.h"
#include "tapo/sink.h"

namespace tapo::analysis {

/// One row per flow: transfer stats, RTT/RTO, stall totals.
/// Columns: flow,server,client,bytes,segments,retrans,timeout_retrans,
/// fast_retrans,spurious,transmission_s,stalled_s,stall_ratio,avg_rtt_ms,
/// avg_rto_ms,avg_speed_Bps,init_rwnd_bytes,had_zero_rwnd,stalls
void write_flows_csv(std::ostream& out, const std::vector<FlowAnalysis>& flows);

/// One row per stall: flow,start_s,duration_s,cause,retrans_cause,
/// f_double,state,in_flight,rel_position
void write_stalls_csv(std::ostream& out, const std::vector<FlowAnalysis>& flows);

/// Convenience file writers; throw std::runtime_error on I/O failure.
void write_flows_csv_file(const std::string& path,
                          const std::vector<FlowAnalysis>& flows);
void write_stalls_csv_file(const std::string& path,
                           const std::vector<FlowAnalysis>& flows);

/// Streaming CSV writer on the shared tapo::FlowSink API: plugs into the
/// parallel experiment runner and the LiveAnalyzer alike, emitting the same
/// rows as write_flows_csv / write_stalls_csv without ever buffering the
/// per-flow analyses. Flow ids are the FlowResult indices, so runner output
/// matches the buffered writer line for line. Streams must outlive the
/// sink; pass nullptr for stalls_out to skip the per-stall table.
class CsvSink : public FlowSink {
 public:
  explicit CsvSink(std::ostream& flows_out, std::ostream* stalls_out = nullptr);

  void consume(FlowResult&& result) override;
  void finish(const RunStats& stats) override;  // flushes both streams

 private:
  std::ostream* flows_out_;
  std::ostream* stalls_out_;
};

}  // namespace tapo::analysis
