// The shared result-delivery surface: one FlowResult shape and one FlowSink
// abstraction, consumed identically by the parallel experiment runner
// (workload/runner.h), the streaming LiveAnalyzer (tapo/live.h), and the
// CSV exporters (tapo/csv.h). A sink written once — an aggregator, a CSV
// writer, a dashboard feeder — plugs into any of the three producers.
//
// These types live in namespace tapo (not tapo::workload) because the
// streaming analyzer sits below the workload layer: tapo_core must not
// depend on tapo_workload. The workload namespace re-exports them under
// their historical names, so existing callers compile unchanged.
//
// Ordering contract (all producers honor it): consume() is invoked exactly
// once per flow, in ascending index order, from one thread at a time —
// sinks need no internal synchronization. finish() is called once, after
// the last flow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/trace.h"
#include "tapo/analyzer.h"
#include "tcp/connection.h"
#include "tcp/invariants.h"

namespace tapo {

/// How one simulated flow ended. Completed flows may still be unhealthy
/// (retransmissions, stalls) — this classifies only the *termination*, so a
/// chaos harness can separate "slow but sound" from "wedged" from "the
/// simulator itself ran away".
enum class FlowStatus : std::uint8_t {
  kCompleted,    // all requests served, server FIN acked
  kTimeCapped,   // hit max_flow_time while nominally making progress
  kRwndLimited,  // hit max_flow_time parked on a zero receive window
  kSimDiverged,  // watchdog: per-flow event budget exhausted (runaway loop)
};

inline const char* to_string(FlowStatus s) {
  switch (s) {
    case FlowStatus::kCompleted: return "completed";
    case FlowStatus::kTimeCapped: return "time_capped";
    case FlowStatus::kRwndLimited: return "rwnd_limited";
    case FlowStatus::kSimDiverged: return "sim_diverged";
  }
  return "?";
}

/// What one simulated flow produced (simulation-level view). Produced by
/// workload::run_flow; a trace-driven producer (LiveAnalyzer) leaves the
/// simulation-only fields default-constructed.
struct FlowOutcome {
  tcp::ConnectionMetrics metrics;
  tcp::SenderStats sender_stats;
  std::uint32_t init_rwnd_bytes = 0;
  std::uint64_t response_bytes = 0;
  bool completed = false;
  FlowStatus status = FlowStatus::kTimeCapped;
  /// Byte-stream integrity verdict when FlowGuards::verify_delivery was on.
  std::optional<tcp::DeliverySummary> delivery;
  /// Invariant violations attributed to this flow (monitor enabled only).
  std::uint64_t invariant_violations = 0;
  /// Packets the chaos engine touched (0 when chaos was off).
  std::uint64_t chaos_injected = 0;
  /// Server-NIC capture when workload::TraceCapture::kServerNic was
  /// requested (simulation) — absent for trace-driven producers.
  std::optional<net::PacketTrace> trace;
};

/// Everything a producer delivers for one flow.
struct FlowResult {
  std::size_t index = 0;  // flow index (runner) / finalize ordinal (live)
  FlowOutcome outcome;    // simulation-level facts; default when trace-driven
  /// Per-flow analyses (normally exactly one; empty when analysis is off).
  std::vector<analysis::FlowAnalysis> analyses;
  std::uint64_t packets = 0;  // captured at the server NIC
};

/// Run-level observability: wall clock, per-phase worker time, throughput.
/// Trace-driven producers fill what they can (flows; zeros elsewhere).
struct RunStats {
  std::size_t flows = 0;
  std::size_t threads = 1;
  double wall_seconds = 0.0;
  /// Worker seconds summed across threads, split by pipeline phase.
  double generate_seconds = 0.0;  // draw_scenario
  double simulate_seconds = 0.0;  // run_flow
  double analyze_seconds = 0.0;   // Analyzer::analyze
  double flows_per_second = 0.0;
  /// Busy worker time / (threads * wall), in [0, 1].
  double worker_utilization = 0.0;
};

/// Streaming consumer of per-flow results (see ordering contract above).
class FlowSink {
 public:
  virtual ~FlowSink() = default;
  virtual void consume(FlowResult&& result) = 0;
  /// Called once, after the last flow, with the run's performance stats.
  virtual void finish(const RunStats& stats) { (void)stats; }
};

}  // namespace tapo
