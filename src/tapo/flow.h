// Flow reconstruction: demultiplexes a server-side packet trace into
// per-connection flows oriented server->client, and extracts the handshake
// parameters TAPO's classifier needs (MSS, SACK permission, window scale,
// initial receive window — Table 2's "receiver side" category).
//
// Two representations share one extraction pass:
//  - FlowView (preferred, zero-copy): per-flow spans of packet *indices*
//    into the PacketTrace arena, produced by demux_flow_views. Nothing per
//    packet is copied; the analyzer reads the arena through a cursor.
//  - Flow (owning): compact FlowPacket records copied out of the trace,
//    produced by demux_flows — now a thin adapter over the view demux.
//    Kept for callers that outlive the trace (and for hand-built tests).
//
// View lifetime rule: a FlowView borrows both the PacketTrace arena and the
// FlowViewSet index pool; it is valid until either is mutated or destroyed.
// PacketTrace::sort_by_time permutes indices, so sort first, demux after.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "net/trace.h"

namespace tapo::analysis {

/// One packet of a reconstructed flow, reduced to the fields the analyzer
/// uses. Trivially copyable and 32 bytes (half the legacy record): flags
/// pack into one byte and SACK blocks live out-of-line in the owning
/// Flow's sack pool (most packets carry none), addressed by offset+count.
struct FlowPacket {
  TimePoint ts;
  net::Seq32 seq;
  net::Seq32 ack;
  std::uint32_t payload = 0;
  std::uint32_t sack_offset = 0;  // into Flow::sack_pool
  std::uint16_t window = 0;       // raw field (unscaled)
  net::TcpFlags flags;
  std::uint8_t sack_count = 0;
  /// Orients the packet relative to the data sender.
  bool from_server = false;
  /// Snaplen truncation cut this packet's TCP options (CapturedPacket::
  /// truncated carried through the owning demux).
  bool truncated = false;

  net::Seq32 end_seq() const {
    return seq + (payload + (flags.syn ? 1u : 0u) + (flags.fin ? 1u : 0u));
  }
};
static_assert(std::is_trivially_copyable_v<FlowPacket>,
              "FlowPacket must stay a POD for flat per-flow storage");
static_assert(sizeof(FlowPacket) <= 32,
              "FlowPacket is the per-packet cost of the owning path; keep "
              "it at half the legacy (heap-backed) record size");

/// Flow-level handshake/transfer facts shared by the owning Flow and the
/// non-owning FlowView, so both run the same classification code.
struct FlowMeta {
  net::FlowKey server_to_client;  // orientation key (server is src)

  bool saw_syn = false;
  bool saw_synack = false;
  bool saw_fin = false;

  net::Seq32 client_isn;
  net::Seq32 server_isn;
  std::uint16_t mss = 1448;
  bool sack_permitted = false;
  std::uint8_t client_wscale = 0;
  /// Window advertised by the client in its SYN (unscaled, bytes).
  std::uint32_t syn_window = 0;
  /// First data-phase window from the client, scaled (bytes). This is the
  /// "initial rwnd" the paper studies (Fig. 6 / Table 4); falls back to
  /// syn_window when the client never sent a data-phase ACK.
  std::uint32_t init_rwnd_bytes = 0;

  std::uint64_t server_payload_bytes = 0;  // sum over packets (incl. retrans)
  std::uint64_t client_payload_bytes = 0;

  /// Capture started mid-connection: no SYN or SYN-ACK was observed but
  /// server data was (rotated captures, mid-stream taps). The mimic then
  /// seeds its sequence state from first_server_data_seq instead of the
  /// (never seen) ISN and records the degradation in CaptureQuality.
  bool mid_stream = false;
  bool saw_server_data = false;
  /// Sequence number of the first server data packet in capture order
  /// (valid when saw_server_data).
  net::Seq32 first_server_data_seq;
};

struct Flow : FlowMeta {
  std::vector<FlowPacket> packets;
  /// Out-of-line SACK storage: each packet's blocks are contiguous at
  /// [sack_offset, sack_offset + sack_count).
  std::vector<net::SackBlock> sack_pool;

  /// Appends a packet whose sack range starts at the current pool end.
  FlowPacket& append_packet() {
    FlowPacket p;
    p.sack_offset = static_cast<std::uint32_t>(sack_pool.size());
    packets.push_back(p);
    return packets.back();
  }
  /// Appends one SACK block to the most recently appended packet. Must be
  /// called before the next append_packet() so pool ranges stay contiguous.
  void append_sack(const net::SackBlock& b) {
    sack_pool.push_back(b);
    ++packets.back().sack_count;
  }
  std::span<const net::SackBlock> sacks_of(const FlowPacket& p) const {
    return std::span<const net::SackBlock>(sack_pool)
        .subspan(p.sack_offset, p.sack_count);
  }
};

/// Non-owning flow: a span of packet indices into the demuxed PacketTrace.
/// Packets keep capture order. Borrowed storage — see the lifetime rule in
/// the file comment.
struct FlowView : FlowMeta {
  const net::PacketTrace* trace = nullptr;
  std::span<const std::uint32_t> packet_indices;

  std::size_t size() const { return packet_indices.size(); }
  const net::CapturedPacket& packet(std::size_t i) const {
    return (*trace)[packet_indices[i]];
  }
};

struct DemuxOptions {
  /// The server's port; 0 auto-detects (the endpoint that sent a SYN-ACK,
  /// falling back to the endpoint with more payload bytes).
  std::uint16_t server_port = 0;
  /// Drop flows with fewer packets than this (noise in real captures).
  std::size_t min_packets = 1;

  // Fluent construction (aggregate-init keeps working); setters validate
  // eagerly and throw std::invalid_argument, mirroring ExperimentConfig.
  DemuxOptions& with_server_port(std::uint16_t port);
  DemuxOptions& with_min_packets(std::size_t n);  // must be > 0

  /// Throws std::invalid_argument on an unusable combination (min_packets
  /// of zero). Called by demux_flow_views on entry.
  void validate() const;
};

/// Result of a view-based demux: the per-flow views plus the index pool
/// they point into. Movable (spans chase the pool's heap buffer); not
/// copyable — copying would silently duplicate the pool while the views
/// keep pointing at the original.
class FlowViewSet {
 public:
  FlowViewSet() = default;
  FlowViewSet(FlowViewSet&&) noexcept = default;
  FlowViewSet& operator=(FlowViewSet&&) noexcept = default;
  FlowViewSet(const FlowViewSet&) = delete;
  FlowViewSet& operator=(const FlowViewSet&) = delete;

  const std::vector<FlowView>& flows() const { return flows_; }
  std::size_t size() const { return flows_.size(); }
  bool empty() const { return flows_.empty(); }
  const FlowView& operator[](std::size_t i) const { return flows_[i]; }
  auto begin() const { return flows_.begin(); }
  auto end() const { return flows_.end(); }

  /// Index-pool footprint — the entire per-packet cost of a view demux.
  std::size_t index_bytes() const {
    return index_pool_.size() * sizeof(std::uint32_t);
  }

 private:
  friend class FlowAccumulator;
  std::vector<std::uint32_t> index_pool_;
  std::vector<FlowView> flows_;
};

/// Streaming core of the demux. Packets fold in one at a time — per
/// canonical key it accumulates membership (arena indices) and
/// orientation evidence (payload per endpoint, SYN-ACK sightings) — and
/// finish() orients each kept flow and extracts its meta. demux_flow_views
/// is a thin wrapper that feeds one whole trace through an accumulator;
/// chunked producers feed the same accumulator incrementally instead of
/// requiring the batch multi-pass plumbing this replaced.
class FlowAccumulator {
 public:
  explicit FlowAccumulator(const DemuxOptions& opts);

  /// Folds in the packet stored at arena index `index`. Indices must be
  /// strictly increasing (capture order).
  void ingest(const net::CapturedPacket& pkt, std::uint32_t index);

  /// Builds the per-flow views over `trace` — the arena the ingested
  /// indices point into. Call once, after the last ingest.
  FlowViewSet finish(const net::PacketTrace& trace);

  std::size_t packets() const { return index_of_.size(); }
  std::size_t flows() const { return accums_.size(); }

 private:
  /// Per-flow tallies; packet membership lives in index_of_/slot_of_ and
  /// is scattered into the FlowViewSet pool by finish().
  struct Accum {
    net::FlowKey canonical;
    std::uint32_t count = 0;
    std::uint32_t offset = 0;  // filled by finish()'s prefix sum
    // Per-endpoint bookkeeping keyed by "is packet's src == canonical.src".
    std::uint64_t payload_a = 0, payload_b = 0;
    bool synack_from_a = false, synack_from_b = false;
  };

  DemuxOptions opts_;
  std::unordered_map<net::FlowKey, std::uint32_t, net::FlowKeyHash> table_;
  std::vector<Accum> accums_;
  std::vector<std::uint32_t> slot_of_;   // per ingested packet: flow slot
  std::vector<std::uint32_t> index_of_;  // per ingested packet: arena index
};

/// Splits `trace` into non-owning per-flow views without copying a single
/// packet. Packets within a flow keep capture order; flows appear in
/// first-packet order.
FlowViewSet demux_flow_views(const net::PacketTrace& trace,
                             const DemuxOptions& opts = {});

/// Splits `trace` into owning flows (adapter over demux_flow_views: same
/// flow set, packets materialized as compact FlowPackets).
std::vector<Flow> demux_flows(const net::PacketTrace& trace,
                              const DemuxOptions& opts = {});

}  // namespace tapo::analysis
