// Flow reconstruction: demultiplexes a server-side packet trace into
// per-connection flows oriented server->client, and extracts the handshake
// parameters TAPO's classifier needs (MSS, SACK permission, window scale,
// initial receive window — Table 2's "receiver side" category).
#pragma once

#include <cstdint>
#include <vector>

#include "net/trace.h"

namespace tapo::analysis {

/// One packet of a reconstructed flow, reduced to the fields the analyzer
/// uses. `from_server` orients the packet relative to the data sender.
struct FlowPacket {
  TimePoint ts;
  bool from_server = false;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t payload = 0;
  net::TcpFlags flags;
  std::uint32_t window = 0;  // raw field (unscaled)
  std::vector<net::SackBlock> sacks;

  std::uint32_t end_seq() const {
    return seq + payload + (flags.syn ? 1u : 0u) + (flags.fin ? 1u : 0u);
  }
};

struct Flow {
  net::FlowKey server_to_client;  // orientation key (server is src)
  std::vector<FlowPacket> packets;

  bool saw_syn = false;
  bool saw_synack = false;
  bool saw_fin = false;

  std::uint32_t client_isn = 0;
  std::uint32_t server_isn = 0;
  std::uint16_t mss = 1448;
  bool sack_permitted = false;
  std::uint8_t client_wscale = 0;
  /// Window advertised by the client in its SYN (unscaled, bytes).
  std::uint32_t syn_window = 0;
  /// First data-phase window from the client, scaled (bytes). This is the
  /// "initial rwnd" the paper studies (Fig. 6 / Table 4); falls back to
  /// syn_window when the client never sent a data-phase ACK.
  std::uint32_t init_rwnd_bytes = 0;

  std::uint64_t server_payload_bytes = 0;  // sum over packets (incl. retrans)
  std::uint64_t client_payload_bytes = 0;
};

struct DemuxOptions {
  /// The server's port; 0 auto-detects (the endpoint that sent a SYN-ACK,
  /// falling back to the endpoint with more payload bytes).
  std::uint16_t server_port = 0;
  /// Drop flows with fewer packets than this (noise in real captures).
  std::size_t min_packets = 1;
};

/// Splits `trace` into flows. Packets within a flow keep capture order.
std::vector<Flow> demux_flows(const net::PacketTrace& trace,
                              const DemuxOptions& opts = {});

}  // namespace tapo::analysis
