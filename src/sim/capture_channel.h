// Capture-imperfection stage between the simulator's server-side tap and
// the PacketTrace the analyzer consumes.
//
// The paper's TAPO ran on tcpdump captures from production front-ends (§3),
// and a production capture lies in well-known ways: the kernel drops records
// under load (i.i.d. and in bursts), a short snaplen cuts TCP options off,
// mirror ports duplicate frames, multi-queue NICs locally reorder, timestamps
// are quantized or jittered, and rotated captures start mid-stream. This
// stage injects exactly those imperfections — composable, seeded, and
// default-off — so the analyzer's robustness to a lying capture can be
// measured (bench/robustness_stability.cc) instead of assumed.
//
// Determinism contract: every decision flows from the CaptureImpairments
// seed through one util::Rng, so the same pristine trace and config always
// produce the same impaired trace. With no impairment enabled, feed() is a
// plain copy and apply_impairments() returns a bit-identical clone — the
// pristine pipeline never changes shape.
#pragma once

#include <cstdint>
#include <optional>

#include "net/trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace tapo::sim {

/// Composable capture impairments. All default-off; fluent validated
/// setters mirror the ExperimentConfig builder idiom (aggregate-init keeps
/// working for tests that want to set fields directly).
struct CaptureImpairments {
  /// Per-record i.i.d. capture-drop probability in [0, 1).
  double drop_prob = 0.0;
  /// Bursty (Gilbert-Elliott) capture drop: probability of *entering* a
  /// drop burst per record, and of *staying* in it per subsequent record
  /// (geometric burst length 1 / (1 - burst_continue_prob)).
  double burst_drop_prob = 0.0;
  double burst_continue_prob = 0.0;
  /// Snaplen in wire bytes from the IP header on (tcpdump -s). 0 = full
  /// capture. Values that cut into the TCP options drop the tail options
  /// (SACK blocks, timestamps) and mark the packet truncated; payload-only
  /// cuts are invisible in-memory because packet lengths come from the IP
  /// header, matching the pcap reader's wire-length model.
  std::uint32_t snaplen = 0;
  /// Mirror-port duplication probability: the record is captured twice,
  /// back to back, with identical timestamps.
  double dup_prob = 0.0;
  /// Local (adjacent-swap) reordering probability: the record is held back
  /// one slot, so it appears after its successor. Timestamps ride with
  /// their packets, so the impaired trace is slightly time-disordered —
  /// exactly what multi-queue capture produces.
  double reorder_prob = 0.0;
  /// Timestamp quantization granularity (floor to a multiple); zero = off.
  Duration quantize = Duration::zero();
  /// Uniform timestamp jitter in [-jitter, +jitter]; zero = off.
  Duration jitter = Duration::zero();
  /// Mid-stream capture start: the first N records never reach the trace
  /// (capture rotation began after the flow did).
  std::size_t skip_first = 0;
  /// Seed for the impairment RNG (combined with a per-flow seed by the
  /// experiment runner so parallel runs stay deterministic).
  std::uint64_t seed = 1;

  // Fluent construction; each setter validates eagerly and returns *this.
  CaptureImpairments& with_drop(double p);  // throws unless 0 <= p < 1
  CaptureImpairments& with_burst_drop(double enter, double cont);
  CaptureImpairments& with_snaplen(std::uint32_t bytes);  // >= 40 wire bytes
  CaptureImpairments& with_duplication(double p);
  CaptureImpairments& with_reordering(double p);
  CaptureImpairments& with_quantization(Duration granularity);  // > 0
  CaptureImpairments& with_jitter(Duration j);                  // >= 0
  CaptureImpairments& with_mid_stream_start(std::size_t skip);
  CaptureImpairments& with_seed(std::uint64_t s);

  /// True when any impairment is active (the channel is a no-op otherwise).
  bool enabled() const;

  /// Full validation (same contract as ExperimentConfig::validate): throws
  /// std::invalid_argument with a self-explanatory message on out-of-range
  /// probabilities, a snaplen too small to hold the fixed headers, or a
  /// negative duration.
  void validate() const;
};

/// What the channel did to one trace, per impairment kind.
struct CaptureChannelStats {
  std::uint64_t seen = 0;       // records offered to the channel
  std::uint64_t delivered = 0;  // records written to the output trace
  std::uint64_t dropped = 0;    // i.i.d. + bursty capture drops
  std::uint64_t duplicated = 0; // extra copies emitted
  std::uint64_t truncated = 0;  // records whose options were cut
  std::uint64_t reordered = 0;  // adjacent swaps performed
  std::uint64_t skipped_head = 0;  // mid-stream-start records discarded

  void merge(const CaptureChannelStats& o);
};

/// Streaming impairment stage: packets from the tap are fed one at a time
/// and the survivors land in the output PacketTrace. finish() must be
/// called once after the last packet (it flushes the reorder hold slot).
class CaptureChannel {
 public:
  /// `out` must outlive the channel. The config is validated here.
  CaptureChannel(net::PacketTrace& out, const CaptureImpairments& impairments);

  void feed(const net::CapturedPacket& pkt);
  void finish();

  const CaptureChannelStats& stats() const { return stats_; }

 private:
  /// Applies the per-record impairments (quantize, jitter, truncate) and
  /// writes the record — plus a mirror duplicate when drawn — to the trace.
  void emit(const net::CapturedPacket& pkt);
  net::CapturedPacket impair_record(const net::CapturedPacket& pkt);

  // Documented borrow: the ctor contract pins `out` for the channel's
  // whole lifetime, and the sink is a caller-owned batch trace, never a
  // sealed chunk. tapo-lint: allow(trace-retain)
  net::PacketTrace* out_;
  CaptureImpairments imp_;
  Rng rng_;
  CaptureChannelStats stats_;
  bool in_burst_ = false;
  std::optional<net::CapturedPacket> held_;  // reorder hold slot
};

/// Replays a pristine trace through a CaptureChannel. With no impairment
/// enabled the result is a bit-identical clone of the input.
net::PacketTrace apply_impairments(const net::PacketTrace& pristine,
                                   const CaptureImpairments& impairments,
                                   CaptureChannelStats* stats = nullptr);

}  // namespace tapo::sim
