#include "sim/chaos.h"

#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::sim {

namespace {

void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}

void require_rate(double rate, Duration duration, const char* what) {
  if (rate < 0.0) {
    throw std::invalid_argument(std::string("ChaosConfig: ") + what +
                                " rate must be >= 0");
  }
  if (rate > 0.0 && duration <= Duration::zero()) {
    throw std::invalid_argument(std::string("ChaosConfig: ") + what +
                                " duration must be positive when enabled");
  }
}

}  // namespace

ChaosConfig& ChaosConfig::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

ChaosConfig& ChaosConfig::with_reorder_storms(double rate, Duration duration,
                                              double prob, Duration hold) {
  require_rate(rate, duration, "reorder storm");
  require(prob >= 0.0 && prob <= 1.0,
          "ChaosConfig: reorder_prob must be in [0, 1]");
  require(hold > Duration::zero(),
          "ChaosConfig: reorder_hold must be positive");
  reorder_storm_rate = rate;
  reorder_storm_duration = duration;
  reorder_prob = prob;
  reorder_hold = hold;
  return *this;
}

ChaosConfig& ChaosConfig::with_ack_loss(double rate, Duration duration,
                                        double prob) {
  require_rate(rate, duration, "ACK loss");
  require(prob >= 0.0 && prob <= 1.0,
          "ChaosConfig: ack_loss_prob must be in [0, 1]");
  ack_loss_rate = rate;
  ack_loss_duration = duration;
  ack_loss_prob = prob;
  return *this;
}

ChaosConfig& ChaosConfig::with_ack_compression(double rate, Duration duration) {
  require_rate(rate, duration, "ACK compression");
  ack_compress_rate = rate;
  ack_compress_duration = duration;
  return *this;
}

ChaosConfig& ChaosConfig::with_rwnd_flaps(double rate, Duration duration) {
  require_rate(rate, duration, "rwnd flap");
  rwnd_flap_rate = rate;
  rwnd_flap_duration = duration;
  return *this;
}

ChaosConfig& ChaosConfig::with_rtt_spikes(double rate, Duration duration,
                                          Duration extra) {
  require_rate(rate, duration, "RTT spike");
  require(extra > Duration::zero(),
          "ChaosConfig: rtt_spike_extra must be positive");
  rtt_spike_rate = rate;
  rtt_spike_duration = duration;
  rtt_spike_extra = extra;
  return *this;
}

ChaosConfig& ChaosConfig::with_blackholes(double rate, Duration duration) {
  require_rate(rate, duration, "blackhole");
  blackhole_rate = rate;
  blackhole_duration = duration;
  return *this;
}

ChaosConfig& ChaosConfig::with_retrans_drops(double prob) {
  require(prob >= 0.0 && prob < 1.0,
          "ChaosConfig: retrans_drop_prob must be in [0, 1) — a probability "
          "of 1 would drop every retransmission forever and the flow could "
          "never complete");
  retrans_drop_prob = prob;
  return *this;
}

void ChaosConfig::validate() const {
  require_rate(reorder_storm_rate, reorder_storm_duration, "reorder storm");
  require_rate(ack_loss_rate, ack_loss_duration, "ACK loss");
  require_rate(ack_compress_rate, ack_compress_duration, "ACK compression");
  require_rate(rwnd_flap_rate, rwnd_flap_duration, "rwnd flap");
  require_rate(rtt_spike_rate, rtt_spike_duration, "RTT spike");
  require_rate(blackhole_rate, blackhole_duration, "blackhole");
  require(reorder_prob >= 0.0 && reorder_prob <= 1.0,
          "ChaosConfig: reorder_prob must be in [0, 1]");
  // tapo-lint: allow(seq-compare) — a drop probability, not a sequence number
  require(ack_loss_prob >= 0.0 && ack_loss_prob <= 1.0,
          "ChaosConfig: ack_loss_prob must be in [0, 1]");
  require(retrans_drop_prob >= 0.0 && retrans_drop_prob < 1.0,
          "ChaosConfig: retrans_drop_prob must be in [0, 1)");
  if (reorder_storm_rate > 0.0) {
    require(reorder_hold > Duration::zero(),
            "ChaosConfig: reorder_hold must be positive");
  }
  if (rtt_spike_rate > 0.0) {
    require(rtt_spike_extra > Duration::zero(),
            "ChaosConfig: rtt_spike_extra must be positive");
  }
}

void ChaosStats::merge(const ChaosStats& o) {
  episodes += o.episodes;
  reordered += o.reordered;
  acks_dropped += o.acks_dropped;
  acks_compressed += o.acks_compressed;
  rwnd_rewrites += o.rwnd_rewrites;
  delayed += o.delayed;
  blackholed += o.blackholed;
  retrans_dropped += o.retrans_dropped;
}

const std::vector<ChaosScenario>& ChaosScenario::catalog() {
  static const std::vector<ChaosScenario> kCatalog = [] {
    std::vector<ChaosScenario> v;
    v.push_back({"reorder-storm",
                 ChaosConfig{}.with_reorder_storms(
                     0.8, Duration::millis(400), 0.5, Duration::millis(40))});
    v.push_back({"ack-squeeze",
                 ChaosConfig{}
                     .with_ack_loss(0.6, Duration::millis(250), 0.9)
                     .with_ack_compression(0.6, Duration::millis(150))});
    v.push_back({"rwnd-flap",
                 ChaosConfig{}.with_rwnd_flaps(0.5, Duration::millis(500))});
    v.push_back({"rtt-quake",
                 ChaosConfig{}.with_rtt_spikes(0.7, Duration::millis(300),
                                               Duration::millis(250))});
    v.push_back({"blackhole",
                 ChaosConfig{}.with_blackholes(0.3, Duration::millis(350))});
    v.push_back(
        {"retrans-reaper", ChaosConfig{}.with_retrans_drops(0.5)});
    v.push_back({"everything",
                 ChaosConfig{}
                     .with_reorder_storms(0.4, Duration::millis(300), 0.4,
                                          Duration::millis(30))
                     .with_ack_loss(0.3, Duration::millis(200), 0.8)
                     .with_ack_compression(0.3, Duration::millis(120))
                     .with_rwnd_flaps(0.25, Duration::millis(400))
                     .with_rtt_spikes(0.3, Duration::millis(250),
                                      Duration::millis(200))
                     .with_blackholes(0.15, Duration::millis(300))
                     .with_retrans_drops(0.3)});
    return v;
  }();
  return kCatalog;
}

const ChaosScenario* ChaosScenario::by_name(std::string_view name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ChaosInjector::ChaosInjector(Simulator& sim, Link& data_link, Link& ack_link,
                             ChaosConfig config)
    : sim_(sim),
      data_link_(data_link),
      ack_link_(ack_link),
      config_(std::move(config)),
      rng_(config_.seed) {
  config_.validate();
}

void ChaosInjector::count_injected(const char* kind) {
  if (!telemetry::metrics_enabled()) return;
  auto& c = telemetry::Registry::instance().counter(
      "tapo_chaos_injected_total", {{"kind", kind}});
  c.add(1);
}

double ChaosInjector::rate_for(Episode e) const {
  switch (e) {
    case kReorder: return config_.reorder_storm_rate;
    case kAckLoss: return config_.ack_loss_rate;
    case kAckCompress: return config_.ack_compress_rate;
    case kRwndFlap: return config_.rwnd_flap_rate;
    case kRttSpike: return config_.rtt_spike_rate;
    case kBlackhole: return config_.blackhole_rate;
    case kEpisodeKinds: break;
  }
  return 0.0;
}

Duration ChaosInjector::duration_for(Episode e) const {
  switch (e) {
    case kReorder: return config_.reorder_storm_duration;
    case kAckLoss: return config_.ack_loss_duration;
    case kAckCompress: return config_.ack_compress_duration;
    case kRwndFlap: return config_.rwnd_flap_duration;
    case kRttSpike: return config_.rtt_spike_duration;
    case kBlackhole: return config_.blackhole_duration;
    case kEpisodeKinds: break;
  }
  return Duration::zero();
}

void ChaosInjector::attach(std::function<bool()> active) {
  active_ = std::move(active);
  inner_data_ = data_link_.swap_deliver(
      [this](const net::CapturedPacket& pkt) { on_data_packet(pkt); });
  inner_ack_ = ack_link_.swap_deliver(
      [this](const net::CapturedPacket& pkt) { on_ack_packet(pkt); });
  for (int e = 0; e < kEpisodeKinds; ++e) {
    if (rate_for(static_cast<Episode>(e)) > 0.0) {
      schedule_next(static_cast<Episode>(e));
    }
  }
}

void ChaosInjector::schedule_next(Episode e) {
  const Duration gap =
      Duration::seconds(rng_.exponential(1.0 / rate_for(e)));
  sim_.schedule(gap, [this, e] {
    if (active_ && !active_()) return;  // flow done: let the chain die out
    begin(e);
  });
}

void ChaosInjector::begin(Episode e) {
  episode_on_[e] = true;
  ++stats_.episodes;
  sim_.schedule(duration_for(e), [this, e] { end(e); });
}

void ChaosInjector::end(Episode e) {
  episode_on_[e] = false;
  if (e == kAckCompress && !held_acks_.empty()) {
    // Release the compressed burst in arrival (FIFO) order. This happens
    // even when the flow finished mid-episode — held packets are never
    // silently swallowed.
    std::vector<net::CapturedPacket> burst;
    burst.swap(held_acks_);
    for (auto& pkt : burst) {
      pkt.timestamp = sim_.now();
      if (inner_ack_) inner_ack_(pkt);
    }
  }
  if (!active_ || active_()) schedule_next(e);
}

void ChaosInjector::deliver_later(bool data_path, net::CapturedPacket pkt,
                                  Duration extra) {
  sim_.schedule(extra, [this, data_path, pkt]() mutable {
    pkt.timestamp = sim_.now();
    const Link::DeliverFn& inner = data_path ? inner_data_ : inner_ack_;
    if (inner) inner(pkt);
  });
}

void ChaosInjector::on_data_packet(const net::CapturedPacket& pkt) {
  if (episode_on_[kBlackhole]) {
    ++stats_.blackholed;
    count_injected("blackhole");
    return;
  }
  if (config_.retrans_drop_prob > 0.0 && pkt.payload_len > 0) {
    const net::Seq32 end = pkt.end_seq();
    const bool retrans = seen_data_ && net::before(pkt.tcp.seq, high_end_);
    if (!seen_data_ || net::after(end, high_end_)) {
      high_end_ = end;
      seen_data_ = true;
    }
    if (retrans && rng_.chance(config_.retrans_drop_prob)) {
      ++stats_.retrans_dropped;
      count_injected("retrans_drop");
      return;
    }
  }
  if (episode_on_[kRttSpike]) {
    ++stats_.delayed;
    count_injected("rtt_spike");
    deliver_later(/*data_path=*/true, pkt, config_.rtt_spike_extra);
    return;
  }
  if (episode_on_[kReorder] && pkt.payload_len > 0 &&
      rng_.chance(config_.reorder_prob)) {
    ++stats_.reordered;
    count_injected("reorder");
    deliver_later(/*data_path=*/true, pkt, config_.reorder_hold);
    return;
  }
  if (inner_data_) inner_data_(pkt);
}

void ChaosInjector::on_ack_packet(const net::CapturedPacket& pkt) {
  if (episode_on_[kBlackhole]) {
    ++stats_.blackholed;
    count_injected("blackhole");
    return;
  }
  const bool pure_ack =
      pkt.tcp.flags.ack && !pkt.tcp.flags.syn && pkt.payload_len == 0;
  if (episode_on_[kAckLoss] && pure_ack &&
      rng_.chance(config_.ack_loss_prob)) {
    ++stats_.acks_dropped;
    count_injected("ack_loss");
    return;
  }
  net::CapturedPacket out = pkt;
  if (episode_on_[kRwndFlap] && pkt.tcp.flags.ack && !pkt.tcp.flags.syn) {
    out.tcp.window = 0;
    ++stats_.rwnd_rewrites;
    count_injected("rwnd_flap");
  }
  if (episode_on_[kAckCompress] && pure_ack) {
    ++stats_.acks_compressed;
    count_injected("ack_compress");
    held_acks_.push_back(out);
    return;
  }
  if (episode_on_[kRttSpike]) {
    ++stats_.delayed;
    count_injected("rtt_spike");
    deliver_later(/*data_path=*/false, out, config_.rtt_spike_extra);
    return;
  }
  if (inner_ack_) inner_ack_(out);
}

}  // namespace tapo::sim
