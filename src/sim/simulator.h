// Discrete-event simulation core.
//
// A single-threaded event loop with microsecond virtual time. Events
// scheduled for the same instant fire in scheduling order (FIFO), which
// keeps runs fully deterministic. Timers are cancellable handles — TCP
// rearms/cancels its RTO, delayed-ACK, probe and persist timers constantly,
// so cancellation is O(1): cancel() just erases the handler, and stale
// queue entries (ids with no handler) are dropped lazily at pop time. The
// handler map is the single source of truth for what is pending.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace tapo::sim {

using EventFn = std::function<void()>;

/// Identifies a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

class Simulator {
 public:
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to now.
  EventId schedule(Duration delay, EventFn fn);
  EventId schedule_at(TimePoint when, EventFn fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that cancel them).
  void cancel(EventId id);

  /// Runs until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= deadline.
  std::size_t run_until(TimePoint deadline);

  /// Watchdog variant: runs events with timestamp <= deadline, but at most
  /// `max_events` of them. Returns the number executed; a return value equal
  /// to `max_events` with runnable work still pending (next_event_time() at
  /// or before the deadline) means the budget tripped — the caller decides
  /// whether that is divergence. Event order is identical to the unbudgeted
  /// overload, so a budget that never trips changes nothing.
  std::size_t run_until(TimePoint deadline, std::size_t max_events);

  /// Timestamp of the earliest pending (non-cancelled) event, if any.
  /// Non-const: lazily drops cancelled tombstones off the queue head.
  std::optional<TimePoint> next_event_time();

  bool empty() const { return handlers_.empty(); }
  std::size_t pending() const { return handlers_.size(); }

 private:
  struct Event {
    TimePoint when;
    EventId id;
    // Heap entry ordering: earliest time first; FIFO among equal times.
    bool operator>(const Event& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;
    }
  };

  using HandlerMap = std::unordered_map<EventId, EventFn>;

  /// Drops cancelled entries off the top of the queue until the head is a
  /// live event (its handler iterator is returned through `it`; the event
  /// itself stays queued so callers can peek the deadline first) or the
  /// queue is exhausted. One hash lookup per popped entry.
  bool peek_runnable(HandlerMap::iterator& it);

  TimePoint now_ = TimePoint::epoch();
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  HandlerMap handlers_;
};

/// A self-rearming timer bound to one Simulator. Guarantees at most one
/// pending expiry; arm() while pending reschedules.
class Timer {
 public:
  Timer(Simulator& sim, EventFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void arm(Duration delay);
  void cancel();
  bool armed() const { return pending_ != 0; }
  TimePoint deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  EventFn on_fire_;
  EventId pending_ = 0;
  TimePoint deadline_;
};

}  // namespace tapo::sim
