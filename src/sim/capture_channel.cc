#include "sim/capture_channel.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/ipv4.h"
#include "telemetry/registry.h"

namespace tapo::sim {
namespace {

void require_prob(double p, const char* what) {
  if (!(p >= 0.0 && p < 1.0)) {
    throw std::invalid_argument(std::string("CaptureImpairments: ") + what +
                                " must be in [0, 1), got " +
                                std::to_string(p));
  }
}

telemetry::Counter& injected_counter(const char* kind) {
  return telemetry::Registry::instance().counter("tapo_capture_injected_total",
                                                 {{"kind", kind}});
}

}  // namespace

CaptureImpairments& CaptureImpairments::with_drop(double p) {
  require_prob(p, "drop_prob");
  drop_prob = p;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_burst_drop(double enter,
                                                        double cont) {
  require_prob(enter, "burst_drop_prob");
  require_prob(cont, "burst_continue_prob");
  burst_drop_prob = enter;
  burst_continue_prob = cont;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_snaplen(std::uint32_t bytes) {
  if (bytes != 0 &&
      bytes < net::kIpv4HeaderLen + net::kTcpMinHeaderLen) {
    throw std::invalid_argument(
        "CaptureImpairments: snaplen must be 0 (full capture) or >= " +
        std::to_string(net::kIpv4HeaderLen + net::kTcpMinHeaderLen) +
        " wire bytes (IP + fixed TCP header), got " + std::to_string(bytes));
  }
  snaplen = bytes;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_duplication(double p) {
  require_prob(p, "dup_prob");
  dup_prob = p;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_reordering(double p) {
  require_prob(p, "reorder_prob");
  reorder_prob = p;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_quantization(Duration granularity) {
  if (granularity <= Duration::zero()) {
    throw std::invalid_argument(
        "CaptureImpairments: quantization granularity must be > 0");
  }
  quantize = granularity;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_jitter(Duration j) {
  if (j < Duration::zero()) {
    throw std::invalid_argument("CaptureImpairments: jitter must be >= 0");
  }
  jitter = j;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_mid_stream_start(
    std::size_t skip) {
  skip_first = skip;
  return *this;
}

CaptureImpairments& CaptureImpairments::with_seed(std::uint64_t s) {
  seed = s;
  return *this;
}

bool CaptureImpairments::enabled() const {
  return drop_prob > 0.0 || burst_drop_prob > 0.0 || snaplen != 0 ||
         dup_prob > 0.0 || reorder_prob > 0.0 ||
         quantize > Duration::zero() || jitter > Duration::zero() ||
         skip_first != 0;
}

void CaptureImpairments::validate() const {
  require_prob(drop_prob, "drop_prob");
  require_prob(burst_drop_prob, "burst_drop_prob");
  require_prob(burst_continue_prob, "burst_continue_prob");
  require_prob(dup_prob, "dup_prob");
  require_prob(reorder_prob, "reorder_prob");
  if (snaplen != 0 &&
      snaplen < net::kIpv4HeaderLen + net::kTcpMinHeaderLen) {
    throw std::invalid_argument(
        "CaptureImpairments: snaplen must be 0 or >= " +
        std::to_string(net::kIpv4HeaderLen + net::kTcpMinHeaderLen) +
        " wire bytes");
  }
  if (quantize < Duration::zero()) {
    throw std::invalid_argument(
        "CaptureImpairments: quantization granularity must be >= 0");
  }
  if (jitter < Duration::zero()) {
    throw std::invalid_argument("CaptureImpairments: jitter must be >= 0");
  }
}

void CaptureChannelStats::merge(const CaptureChannelStats& o) {
  seen += o.seen;
  delivered += o.delivered;
  dropped += o.dropped;
  duplicated += o.duplicated;
  truncated += o.truncated;
  reordered += o.reordered;
  skipped_head += o.skipped_head;
}

CaptureChannel::CaptureChannel(net::PacketTrace& out,
                               const CaptureImpairments& impairments)
    : out_(&out), imp_(impairments), rng_(impairments.seed) {
  imp_.validate();
}

void CaptureChannel::feed(const net::CapturedPacket& pkt) {
  ++stats_.seen;

  // Mid-stream start: capture rotation began after the flow did.
  if (stats_.seen <= imp_.skip_first) {
    ++stats_.skipped_head;
    injected_counter("mid_stream_skip").add();
    return;
  }

  // Capture drop, bursty (Gilbert-Elliott) then i.i.d. Burst state advances
  // per record regardless of the i.i.d. draw so the two are independent.
  if (imp_.burst_drop_prob > 0.0) {
    if (in_burst_) {
      in_burst_ = rng_.chance(imp_.burst_continue_prob);
      ++stats_.dropped;
      injected_counter("drop").add();
      return;
    }
    if (rng_.chance(imp_.burst_drop_prob)) {
      in_burst_ = rng_.chance(imp_.burst_continue_prob);
      ++stats_.dropped;
      injected_counter("drop").add();
      return;
    }
  }
  if (imp_.drop_prob > 0.0 && rng_.chance(imp_.drop_prob)) {
    ++stats_.dropped;
    injected_counter("drop").add();
    return;
  }

  // Local reordering: hold this record one slot so it lands after its
  // successor. A held record is never held twice (adjacent swap only).
  if (imp_.reorder_prob > 0.0) {
    if (held_) {
      const net::CapturedPacket first = pkt;
      const net::CapturedPacket second = *held_;
      held_.reset();
      ++stats_.reordered;
      injected_counter("reorder").add();
      emit(first);
      emit(second);
      return;
    }
    if (rng_.chance(imp_.reorder_prob)) {
      held_ = pkt;
      return;
    }
  }

  emit(pkt);
}

void CaptureChannel::finish() {
  if (held_) {
    // Nothing followed the held record; it comes out last, un-swapped.
    const net::CapturedPacket last = *held_;
    held_.reset();
    emit(last);
  }
}

net::CapturedPacket CaptureChannel::impair_record(
    const net::CapturedPacket& pkt) {
  net::CapturedPacket out = pkt;

  if (imp_.quantize > Duration::zero()) {
    out.timestamp = floor_to(out.timestamp, imp_.quantize);
  }
  if (imp_.jitter > Duration::zero()) {
    const std::int64_t j = imp_.jitter.us();
    out.timestamp =
        TimePoint::from_us(out.timestamp.us() + rng_.uniform_int(-j, j));
  }

  if (imp_.snaplen != 0) {
    // tcpdump -s semantics: snaplen caps wire bytes captured from the IP
    // header on. Cutting into the TCP options drops the tail options in
    // wire (serialize) order; payload-only cuts are invisible here because
    // packet lengths come from the IP header, not the captured bytes.
    const std::size_t hdr_budget =
        imp_.snaplen > net::kIpv4HeaderLen ? imp_.snaplen - net::kIpv4HeaderLen
                                           : 0;
    const std::size_t wire_hdr = out.tcp.header_len();
    if (hdr_budget < wire_hdr) {
      std::size_t used = net::kTcpMinHeaderLen;
      bool cut = false;
      auto fits = [&](std::size_t cost) {
        if (cut || used + cost > hdr_budget) {
          cut = true;
          return false;
        }
        used += cost;
        return true;
      };
      if (out.tcp.mss && !fits(4)) out.tcp.mss.reset();
      if (out.tcp.window_scale && !fits(3)) out.tcp.window_scale.reset();
      if (out.tcp.sack_permitted && !fits(2)) out.tcp.sack_permitted = false;
      if (out.tcp.timestamps && !fits(10)) out.tcp.timestamps.reset();
      if (!out.tcp.sack_blocks.empty()) {
        // Partial SACK option: keep the leading blocks that fit after the
        // 2-byte kind/len prefix.
        std::size_t keep = 0;
        if (!cut && used + 2 <= hdr_budget) {
          keep = std::min(out.tcp.sack_blocks.size(),
                          (hdr_budget - used - 2) / 8);
        }
        if (keep < out.tcp.sack_blocks.size()) {
          cut = true;
          net::SackList kept;
          for (std::size_t i = 0; i < keep; ++i) {
            kept.push_back(out.tcp.sack_blocks[i]);
          }
          out.tcp.sack_blocks = kept;
        }
      }
      if (cut) {
        out.truncated = true;
        ++stats_.truncated;
        injected_counter("truncate").add();
      }
    }
  }

  return out;
}

void CaptureChannel::emit(const net::CapturedPacket& pkt) {
  const net::CapturedPacket rec = impair_record(pkt);
  out_->add(rec);
  ++stats_.delivered;
  if (imp_.dup_prob > 0.0 && rng_.chance(imp_.dup_prob)) {
    // Mirror duplicate: identical header and timestamp, back to back.
    out_->add(rec);
    ++stats_.delivered;
    ++stats_.duplicated;
    injected_counter("duplicate").add();
  }
}

net::PacketTrace apply_impairments(const net::PacketTrace& pristine,
                                   const CaptureImpairments& impairments,
                                   CaptureChannelStats* stats) {
  if (!impairments.enabled()) {
    if (stats != nullptr) {
      stats->seen += pristine.size();
      stats->delivered += pristine.size();
    }
    return pristine.clone();
  }
  net::PacketTrace out;
  out.reserve(pristine.size());
  CaptureChannel ch(out, impairments);
  for (const net::CapturedPacket& p : pristine.packets()) ch.feed(p);
  ch.finish();
  if (stats != nullptr) stats->merge(ch.stats());
  return out;
}

}  // namespace tapo::sim
