// Unidirectional link model: drop-tail queue + serialization at a
// configurable bandwidth, propagation delay with jitter, and two loss
// processes (i.i.d. random loss and Gilbert-Elliott bursts — the latter
// drives the paper's continuous-loss and double-retransmission stalls,
// which need correlated drops).
#pragma once

#include <cstdint>
#include <functional>

#include "net/trace.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace tapo::sim {

struct LinkConfig {
  /// One-way propagation delay.
  Duration prop_delay = Duration::millis(50);
  /// Extra per-packet delay drawn ~ Exp(jitter_mean); 0 disables. With
  /// `fifo` set (default) jitter stretches delivery without reordering,
  /// like a real queue: packets never overtake each other.
  Duration jitter_mean = Duration::micros(0);
  bool fifo = true;
  /// With this probability a packet is held an extra `reorder_delay` and
  /// exempted from FIFO, letting later packets overtake it.
  double reorder_prob = 0.0;
  Duration reorder_delay = Duration::millis(5);
  /// Bottleneck bandwidth in bytes/second; 0 = infinite.
  std::uint64_t bandwidth_Bps = 0;
  /// Drop-tail queue capacity in packets (only meaningful with bandwidth).
  std::size_t queue_packets = 64;

  /// i.i.d. loss probability applied to every packet.
  double random_loss = 0.0;

  /// Correlated delay bursts (transient congestion / routing events): each
  /// packet triggers an episode with probability delay_burst_prob; for
  /// ~Exp(delay_burst_duration) of wall-clock time every packet is held an
  /// extra delay_burst_extra. Unlike per-packet jitter this moves whole
  /// windows late, producing the paper's "RTT variation" stalls without
  /// inflating the steady-state SRTT.
  double delay_burst_prob = 0.0;
  Duration delay_burst_duration = Duration::millis(250);
  Duration delay_burst_extra = Duration::millis(200);

  /// Time-based burst loss (outage windows — congested middlebox buffers).
  /// Each packet triggers an outage with probability p_good_to_bad; the
  /// outage lasts ~ Exp(burst_duration) of wall-clock time, during which
  /// packets drop with `bad_loss`. Time-based (not per-packet Gilbert-
  /// Elliott) so that a retransmission seconds later sees a recovered path.
  double p_good_to_bad = 0.0;
  Duration burst_duration = Duration::millis(150);
  double bad_loss = 0.9;
};

struct LinkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_total() const {
    return dropped_random + dropped_burst + dropped_queue;
  }
};

class Link {
 public:
  using DeliverFn = std::function<void(const net::CapturedPacket&)>;

  Link(Simulator& sim, LinkConfig config, Rng rng)
      : sim_(sim), config_(config), rng_(rng) {}

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Replaces the delivery handler and returns the previous one, so an
  /// interceptor installed after construction (chaos injection, delivery
  /// tracking) can wrap whatever the connection already registered.
  DeliverFn swap_deliver(DeliverFn fn) {
    DeliverFn old = std::move(deliver_);
    deliver_ = std::move(fn);
    return old;
  }

  /// Injects a packet at the link head. Drops are silent (counted in stats).
  void send(net::CapturedPacket pkt);

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }

  /// Runtime re-configuration (used by scripted scenarios, e.g. Fig. 2's
  /// mid-flow loss episode).
  void set_random_loss(double p) { config_.random_loss = p; }
  void set_burst(double p_g2b, Duration duration, double bad_loss);
  void set_jitter_mean(Duration d) { config_.jitter_mean = d; }
  /// Forces an outage starting now for `duration` (scripted scenarios).
  void force_outage(Duration duration);

 private:
  bool decide_drop();
  std::size_t wire_size(const net::CapturedPacket& pkt) const;

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  DeliverFn deliver_;
  LinkStats stats_;

  TimePoint bad_until_ = TimePoint::epoch();
  TimePoint slow_until_ = TimePoint::epoch();
  TimePoint busy_until_ = TimePoint::epoch();
  TimePoint last_arrival_ = TimePoint::epoch();
  std::size_t queued_ = 0;
};

}  // namespace tapo::sim
