// Protocol chaos engine: a seeded hostile-network scenario generator
// layered on sim::Link. Where LinkConfig models a *plausible* path (loss,
// jitter, bursts), ChaosConfig models an *adversarial* one — the dynamics
// that historically break TCP implementations rather than merely slow them:
//
//   - reorder storms      data packets overtake each other en masse
//   - ACK-loss bursts     the return path eats pure ACKs
//   - ACK compression     ACKs bunch up and arrive in one burst
//   - rwnd flapping       the advertised window is rewritten to zero
//   - RTT spikes          step-changes in path delay (both directions)
//   - blackholes          transient bidirectional outages
//   - retrans-targeted    drops aimed specifically at retransmissions
//
// The injector wraps both links' delivery handlers *after* the connection
// has registered its own (Link::swap_deliver), so the TCP endpoints are
// untouched and unaware. Determinism contract, mirroring CaptureImpairments:
// every decision comes from one Rng seeded from `seed` and advanced only by
// packets and episode timers inside the flow's own simulator, so a per-flow
// derived seed (scenario_seed ^ flow_seed) makes parallel runs bit-identical
// to serial. Default-off config = bit-identical passthrough (the injector
// is not even constructed).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/trace.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace tapo::sim {

struct ChaosConfig {
  std::uint64_t seed = 1;

  /// Reorder storms (data direction): episodes arrive ~Poisson(rate) per
  /// second; during one, each data packet is independently held an extra
  /// `reorder_hold` with probability `reorder_prob`, bypassing FIFO so
  /// later packets overtake it.
  double reorder_storm_rate = 0.0;  // episodes per second; 0 = off
  Duration reorder_storm_duration = Duration::millis(400);
  double reorder_prob = 0.5;
  Duration reorder_hold = Duration::millis(40);

  /// ACK-loss bursts (ack direction): pure ACKs drop with `ack_loss_prob`
  /// for the episode duration.
  double ack_loss_rate = 0.0;
  Duration ack_loss_duration = Duration::millis(250);
  double ack_loss_prob = 0.9;

  /// ACK compression: pure ACKs are held for the episode and released
  /// back-to-back (FIFO) when it ends.
  double ack_compress_rate = 0.0;
  Duration ack_compress_duration = Duration::millis(150);

  /// rwnd flapping: every non-SYN ACK's advertised window is rewritten to
  /// zero for the episode — a hostile receiver/middlebox oscillating the
  /// window. Recovery relies on the sender's persist probes soliciting a
  /// fresh (honest) ACK after the episode.
  double rwnd_flap_rate = 0.0;
  Duration rwnd_flap_duration = Duration::millis(500);

  /// RTT spikes: every packet (both directions) is held an extra
  /// `rtt_spike_extra` for the episode — a routing-event step change. The
  /// same extra applies to all packets in the episode, so order holds.
  double rtt_spike_rate = 0.0;
  Duration rtt_spike_duration = Duration::millis(300);
  Duration rtt_spike_extra = Duration::millis(250);

  /// Transient blackholes: both directions drop everything for the episode.
  double blackhole_rate = 0.0;
  Duration blackhole_duration = Duration::millis(350);

  /// Retransmission-targeted drops (always-on, not episodic): a data packet
  /// whose range was already seen drops with this probability. Capped below
  /// 1 by validate() so a retransmission eventually survives.
  double retrans_drop_prob = 0.0;

  /// True when any impairment is configured; false = the injector is never
  /// constructed and the flow is bit-identical to a chaos-free run.
  bool enabled() const {
    // tapo-lint: allow(seq-compare) — episode rates, not sequence numbers
    return reorder_storm_rate > 0.0 || ack_loss_rate > 0.0 ||
           // tapo-lint: allow(seq-compare) — episode rates
           ack_compress_rate > 0.0 || rwnd_flap_rate > 0.0 ||
           rtt_spike_rate > 0.0 || blackhole_rate > 0.0 ||
           retrans_drop_prob > 0.0;
  }

  // Fluent construction; each setter validates eagerly and returns *this.
  ChaosConfig& with_seed(std::uint64_t s);
  ChaosConfig& with_reorder_storms(double rate, Duration duration,
                                   double prob, Duration hold);
  ChaosConfig& with_ack_loss(double rate, Duration duration, double prob);
  ChaosConfig& with_ack_compression(double rate, Duration duration);
  ChaosConfig& with_rwnd_flaps(double rate, Duration duration);
  ChaosConfig& with_rtt_spikes(double rate, Duration duration, Duration extra);
  ChaosConfig& with_blackholes(double rate, Duration duration);
  ChaosConfig& with_retrans_drops(double prob);

  /// Throws std::invalid_argument on nonsensical values (negative rates,
  /// probabilities outside [0,1], retrans_drop_prob >= 1, non-positive
  /// durations for an enabled episode kind).
  void validate() const;
};

/// Injection counters, one per impairment mechanism.
struct ChaosStats {
  std::uint64_t episodes = 0;         // episode onsets, all kinds
  std::uint64_t reordered = 0;        // data packets held out of order
  std::uint64_t acks_dropped = 0;
  std::uint64_t acks_compressed = 0;  // ACKs held for burst release
  std::uint64_t rwnd_rewrites = 0;    // windows rewritten to zero
  std::uint64_t delayed = 0;          // packets held by an RTT spike
  std::uint64_t blackholed = 0;       // packets dropped by a blackhole
  std::uint64_t retrans_dropped = 0;  // targeted retransmission drops

  std::uint64_t total_injected() const {
    return reordered + acks_dropped + acks_compressed + rwnd_rewrites +
           delayed + blackholed + retrans_dropped;
  }
  void merge(const ChaosStats& o);
};

/// A named chaos configuration. The catalog gives the storm harness and the
/// failure-replay flags (--scenario=<name>) a stable, human-readable set of
/// hostile regimes; per-run variation comes from reseeding via with_seed().
struct ChaosScenario {
  std::string name;
  ChaosConfig config;

  /// The built-in hostile regimes, one per mechanism plus one combined.
  static const std::vector<ChaosScenario>& catalog();
  /// Catalog lookup; nullptr when `name` is unknown.
  static const ChaosScenario* by_name(std::string_view name);
};

/// Wraps a flow's two links with the configured impairments. Construct
/// after the connection has registered its delivery handlers, then call
/// attach(). The injector must outlive the simulation run.
class ChaosInjector {
 public:
  /// `data_link` carries server->client data, `ack_link` client->server.
  ChaosInjector(Simulator& sim, Link& data_link, Link& ack_link,
                ChaosConfig config);

  /// Installs the wrappers and schedules the first episode of each enabled
  /// kind. `active` gates episode rescheduling: once it returns false (the
  /// flow is done), episode chains stop so they cannot keep the event queue
  /// alive forever.
  void attach(std::function<bool()> active);

  const ChaosStats& stats() const { return stats_; }

 private:
  enum Episode {
    kReorder,
    kAckLoss,
    kAckCompress,
    kRwndFlap,
    kRttSpike,
    kBlackhole,
    kEpisodeKinds,
  };

  double rate_for(Episode e) const;
  Duration duration_for(Episode e) const;
  void schedule_next(Episode e);
  void begin(Episode e);
  void end(Episode e);
  void on_data_packet(const net::CapturedPacket& pkt);
  void on_ack_packet(const net::CapturedPacket& pkt);
  void deliver_later(bool data_path, net::CapturedPacket pkt, Duration extra);
  void count_injected(const char* kind);

  Simulator& sim_;
  Link& data_link_;
  Link& ack_link_;
  ChaosConfig config_;
  Rng rng_;
  std::function<bool()> active_;
  Link::DeliverFn inner_data_;
  Link::DeliverFn inner_ack_;
  bool episode_on_[kEpisodeKinds] = {};
  std::vector<net::CapturedPacket> held_acks_;
  net::Seq32 high_end_;     // highest data end-seq seen (retrans detection)
  bool seen_data_ = false;
  ChaosStats stats_;
};

}  // namespace tapo::sim
