#include "sim/simulator.h"

#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::sim {

namespace {

/// Batched event accounting: one registry add per run()/run_until() call,
/// never per event, so the event loop's hot path is untouched.
void count_executed(std::size_t executed) {
  if (executed == 0 || !telemetry::metrics_enabled()) return;
  static auto& events =
      telemetry::Registry::instance().counter("tapo_sim_events_total");
  events.add(executed);
}

}  // namespace

EventId Simulator::schedule(Duration delay, EventFn fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(EventId id) {
  // The queue entry becomes a stale tombstone, dropped by peek_runnable.
  handlers_.erase(id);
}

bool Simulator::peek_runnable(HandlerMap::iterator& it) {
  while (!queue_.empty()) {
    it = handlers_.find(queue_.top().id);
    if (it != handlers_.end()) return true;
    queue_.pop();  // cancelled: no handler left for this id
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  HandlerMap::iterator it;
  while (executed < limit && peek_runnable(it)) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  count_executed(executed);
  return executed;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  return run_until(deadline, SIZE_MAX);
}

std::size_t Simulator::run_until(TimePoint deadline, std::size_t max_events) {
  std::size_t executed = 0;
  HandlerMap::iterator it;
  while (executed < max_events && peek_runnable(it)) {
    const Event ev = queue_.top();
    // Beyond the deadline: leave it queued (handler intact) for a later
    // run call — no re-push needed since we only peeked.
    if (ev.when > deadline) break;
    queue_.pop();
    now_ = ev.when;
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  // Budget exhaustion leaves virtual time at the last executed event, so a
  // tripped watchdog reports where the run stuck rather than the deadline.
  const bool exhausted = executed >= max_events && peek_runnable(it) &&
                         queue_.top().when <= deadline;
  if (!exhausted && now_ < deadline) now_ = deadline;
  count_executed(executed);
  return executed;
}

std::optional<TimePoint> Simulator::next_event_time() {
  HandlerMap::iterator it;
  if (!peek_runnable(it)) return std::nullopt;
  return queue_.top().when;
}

void Timer::arm(Duration delay) {
  cancel();
  deadline_ = sim_.now() + delay;
  pending_ = sim_.schedule(delay, [this] {
    pending_ = 0;
    on_fire_();
  });
}

void Timer::cancel() {
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace tapo::sim
