#include "sim/simulator.h"

#include <cassert>
#include <utility>

#include "telemetry/telemetry.h"

namespace tapo::sim {

namespace {

/// Batched event accounting: one registry add per run()/run_until() call,
/// never per event, so the event loop's hot path is untouched.
void count_executed(std::size_t executed) {
  if (executed == 0 || !telemetry::metrics_enabled()) return;
  static auto& events =
      telemetry::Registry::instance().counter("tapo_sim_events_total");
  events.add(executed);
}

}  // namespace

EventId Simulator::schedule(Duration delay, EventFn fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(EventId id) {
  if (handlers_.count(id)) cancelled_.insert(id);
}

bool Simulator::pop_runnable(Event& ev) {
  while (!queue_.empty()) {
    ev = queue_.top();
    queue_.pop();
    const auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      handlers_.erase(ev.id);
      continue;
    }
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t limit) {
  std::size_t executed = 0;
  Event ev;
  while (executed < limit && pop_runnable(ev)) {
    now_ = ev.when;
    auto it = handlers_.find(ev.id);
    assert(it != handlers_.end());
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  count_executed(executed);
  return executed;
}

std::size_t Simulator::run_until(TimePoint deadline) {
  std::size_t executed = 0;
  Event ev;
  while (pop_runnable(ev)) {
    if (ev.when > deadline) {
      // Put it back; it stays pending for a later run call.
      queue_.push(ev);
      break;
    }
    now_ = ev.when;
    auto it = handlers_.find(ev.id);
    assert(it != handlers_.end());
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  count_executed(executed);
  return executed;
}

void Timer::arm(Duration delay) {
  cancel();
  deadline_ = sim_.now() + delay;
  pending_ = sim_.schedule(delay, [this] {
    pending_ = 0;
    on_fire_();
  });
}

void Timer::cancel() {
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace tapo::sim
