#include "sim/link.h"

#include <algorithm>

#include "net/ipv4.h"

namespace tapo::sim {

void Link::set_burst(double p_g2b, Duration duration, double bad_loss) {
  config_.p_good_to_bad = p_g2b;
  config_.burst_duration = duration;
  config_.bad_loss = bad_loss;
  if (p_g2b == 0.0) bad_until_ = TimePoint::epoch();
}

void Link::force_outage(Duration duration) {
  bad_until_ = sim_.now() + duration;
}

bool Link::decide_drop() {
  if (config_.random_loss > 0.0 && rng_.chance(config_.random_loss)) {
    ++stats_.dropped_random;
    return true;
  }
  if (config_.p_good_to_bad > 0.0 && sim_.now() >= bad_until_ &&
      rng_.chance(config_.p_good_to_bad)) {
    bad_until_ = sim_.now() + Duration::seconds(rng_.exponential(
                                 config_.burst_duration.sec()));
  }
  if (sim_.now() < bad_until_ && rng_.chance(config_.bad_loss)) {
    ++stats_.dropped_burst;
    return true;
  }
  return false;
}

std::size_t Link::wire_size(const net::CapturedPacket& pkt) const {
  return net::kIpv4HeaderLen + pkt.tcp.header_len() + pkt.payload_len;
}

void Link::send(net::CapturedPacket pkt) {
  ++stats_.sent;
  if (decide_drop()) return;

  const TimePoint now = sim_.now();
  TimePoint depart = now;
  if (config_.bandwidth_Bps > 0) {
    if (queued_ >= config_.queue_packets) {
      ++stats_.dropped_queue;
      return;
    }
    const Duration tx = Duration::micros(static_cast<std::int64_t>(
        static_cast<double>(wire_size(pkt)) * 1e6 /
        static_cast<double>(config_.bandwidth_Bps)));
    depart = std::max(now, busy_until_) + tx;
    busy_until_ = depart;
    ++queued_;
    sim_.schedule_at(depart, [this] { --queued_; });
  }

  Duration extra = Duration::zero();
  if (config_.jitter_mean > Duration::zero()) {
    extra += Duration::micros(static_cast<std::int64_t>(
        rng_.exponential(static_cast<double>(config_.jitter_mean.us()))));
  }
  if (config_.delay_burst_prob > 0.0) {
    if (now >= slow_until_ && rng_.chance(config_.delay_burst_prob)) {
      slow_until_ = now + Duration::seconds(rng_.exponential(
                              config_.delay_burst_duration.sec()));
    }
    if (now < slow_until_) extra += config_.delay_burst_extra;
  }
  // Bufferbloat coupling: a packet that survives a loss outage sits behind
  // the congested queue that caused it, so its delay spikes too. This is
  // what drives the sender's RTTVAR — and hence the RTO — up around loss
  // episodes (the paper's RTO is ~10x the RTT, Fig. 1b).
  if (now < bad_until_) {
    extra += (bad_until_ - now) + Duration::millis(50);
  }
  const bool reordered =
      config_.reorder_prob > 0.0 && rng_.chance(config_.reorder_prob);
  if (reordered) extra += config_.reorder_delay;

  TimePoint arrive = depart + config_.prop_delay + extra;
  if (config_.fifo && !reordered) {
    if (arrive < last_arrival_) arrive = last_arrival_;
    last_arrival_ = arrive;
  }
  sim_.schedule_at(arrive, [this, pkt = std::move(pkt)]() mutable {
    ++stats_.delivered;
    if (deliver_) {
      pkt.timestamp = sim_.now();
      deliver_(pkt);
    }
  });
}

}  // namespace tapo::sim
