#include "net/checksum.h"

namespace tapo::net {
namespace {

std::uint32_t sum16(std::span<const std::uint8_t> data, std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i] << 8);
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold(sum16(data, 0));
}

std::uint16_t tcp_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                           std::span<const std::uint8_t> tcp_segment) {
  std::uint32_t acc = 0;
  acc += src_ip >> 16;
  acc += src_ip & 0xffff;
  acc += dst_ip >> 16;
  acc += dst_ip & 0xffff;
  acc += 6;  // protocol: TCP
  acc += static_cast<std::uint32_t>(tcp_segment.size());
  return fold(sum16(tcp_segment, acc));
}

}  // namespace tapo::net
