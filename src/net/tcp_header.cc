#include "net/tcp_header.h"

#include <cassert>

#include "net/endian.h"

namespace tapo::net {
namespace {

constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptWscale = 3;
constexpr std::uint8_t kOptSackPermitted = 4;
constexpr std::uint8_t kOptSack = 5;
constexpr std::uint8_t kOptTimestamps = 8;

}  // namespace

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (psh) b |= 0x08;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = b & 0x01;
  f.syn = b & 0x02;
  f.rst = b & 0x04;
  f.psh = b & 0x08;
  f.ack = b & 0x10;
  return f;
}

std::size_t TcpHeader::header_len() const {
  std::size_t opts = 0;
  if (mss) opts += 4;
  if (window_scale) opts += 3;
  if (sack_permitted) opts += 2;
  if (timestamps) opts += 10;
  if (!sack_blocks.empty()) opts += 2 + 8 * sack_blocks.size();
  return kTcpMinHeaderLen + (opts + 3) / 4 * 4;
}

std::size_t TcpHeader::serialize(std::span<std::uint8_t> out) const {
  const std::size_t len = header_len();
  assert(out.size() >= len);
  put_u16(out, 0, src_port);
  put_u16(out, 2, dst_port);
  put_u32(out, 4, seq.raw());
  put_u32(out, 8, ack.raw());
  put_u8(out, 12, static_cast<std::uint8_t>((len / 4) << 4));
  put_u8(out, 13, flags.to_byte());
  put_u16(out, 14, window);
  put_u16(out, 16, 0);  // checksum (filled by caller if needed)
  put_u16(out, 18, 0);  // urgent pointer

  std::size_t off = kTcpMinHeaderLen;
  if (mss) {
    put_u8(out, off++, kOptMss);
    put_u8(out, off++, 4);
    put_u16(out, off, *mss);
    off += 2;
  }
  if (window_scale) {
    put_u8(out, off++, kOptWscale);
    put_u8(out, off++, 3);
    put_u8(out, off++, *window_scale);
  }
  if (sack_permitted) {
    put_u8(out, off++, kOptSackPermitted);
    put_u8(out, off++, 2);
  }
  if (timestamps) {
    put_u8(out, off++, kOptTimestamps);
    put_u8(out, off++, 10);
    put_u32(out, off, timestamps->value);
    off += 4;
    put_u32(out, off, timestamps->echo_reply);
    off += 4;
  }
  if (!sack_blocks.empty()) {
    const std::size_t n = sack_blocks.size();
    put_u8(out, off++, kOptSack);
    put_u8(out, off++, static_cast<std::uint8_t>(2 + 8 * n));
    for (std::size_t i = 0; i < n; ++i) {
      put_u32(out, off, sack_blocks[i].start.raw());
      off += 4;
      put_u32(out, off, sack_blocks[i].end.raw());
      off += 4;
    }
  }
  while (off < len) put_u8(out, off++, kOptNop);
  return len;
}

bool TcpHeader::parse(std::span<const std::uint8_t> in, TcpHeader& out,
                      std::size_t& header_len, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  if (in.size() < kTcpMinHeaderLen) return false;
  out = TcpHeader{};
  out.src_port = get_u16(in, 0);
  out.dst_port = get_u16(in, 2);
  out.seq = Seq32{get_u32(in, 4)};
  out.ack = Seq32{get_u32(in, 8)};
  header_len = static_cast<std::size_t>(get_u8(in, 12) >> 4) * 4;
  if (header_len < kTcpMinHeaderLen) return false;
  if (header_len > in.size()) {
    if (truncated == nullptr) return false;
    *truncated = true;
  }
  out.flags = TcpFlags::from_byte(get_u8(in, 13));
  out.window = get_u16(in, 14);

  // Options are walked over what was actually captured; bounds against
  // `header_len` (the wire) distinguish a malformed header from one the
  // snaplen merely cut short.
  const std::size_t avail = std::min(header_len, in.size());
  std::size_t off = kTcpMinHeaderLen;
  while (off < avail) {
    const std::uint8_t kind = get_u8(in, off);
    if (kind == kOptEnd) break;
    if (kind == kOptNop) {
      ++off;
      continue;
    }
    if (off + 1 >= header_len) return false;
    if (off + 1 >= avail) break;  // optlen byte cut off (truncated set above)
    const std::uint8_t optlen = get_u8(in, off + 1);
    if (optlen < 2 || off + optlen > header_len) return false;
    if (off + optlen > avail) break;  // option body cut off
    switch (kind) {
      case kOptMss:
        if (optlen != 4) return false;
        out.mss = get_u16(in, off + 2);
        break;
      case kOptWscale:
        if (optlen != 3) return false;
        out.window_scale = get_u8(in, off + 2);
        break;
      case kOptSackPermitted:
        if (optlen != 2) return false;
        out.sack_permitted = true;
        break;
      case kOptTimestamps:
        if (optlen != 10) return false;
        out.timestamps = TcpTimestamps{get_u32(in, off + 2), get_u32(in, off + 6)};
        break;
      case kOptSack: {
        if ((optlen - 2) % 8 != 0) return false;
        const std::size_t n = static_cast<std::size_t>(optlen - 2) / 8;
        for (std::size_t i = 0; i < n; ++i) {
          out.sack_blocks.push_back(
              SackBlock{Seq32{get_u32(in, off + 2 + 8 * i)},
                        Seq32{get_u32(in, off + 6 + 8 * i)}});
        }
        break;
      }
      default:
        break;  // unknown option: skip
    }
    off += optlen;
  }
  return true;
}

}  // namespace tapo::net
