#include "net/chunk.h"

#include <cassert>
#include <utility>

namespace tapo::net {

TraceChunk::TraceChunk(std::size_t capacity_packets, util::MemoryBudget* budget)
    : slots_(std::make_unique<CapturedPacket[]>(capacity_packets)),
      cap_(capacity_packets),
      budget_(budget) {
  if (budget_ != nullptr) budget_->charge(bytes());
}

TraceChunk::~TraceChunk() { release_budget(); }

TraceChunk::TraceChunk(TraceChunk&& other) noexcept
    : slots_(std::move(other.slots_)),
      size_(other.size_),
      cap_(other.cap_),
      budget_(other.budget_) {
  other.size_ = 0;
  other.cap_ = 0;
  other.budget_ = nullptr;
}

TraceChunk& TraceChunk::operator=(TraceChunk&& other) noexcept {
  if (this != &other) {
    release_budget();
    slots_ = std::move(other.slots_);
    size_ = other.size_;
    cap_ = other.cap_;
    budget_ = other.budget_;
    other.size_ = 0;
    other.cap_ = 0;
    other.budget_ = nullptr;
  }
  return *this;
}

void TraceChunk::release_budget() {
  if (budget_ != nullptr && cap_ > 0) budget_->release(bytes());
  budget_ = nullptr;
}

CapturedPacket& TraceChunk::append() {
  assert(size_ < cap_);
  slots_[size_] = CapturedPacket{};
  return slots_[size_++];
}

void TraceChunk::pop_back() {
  if (size_ > 0) --size_;
}

ChunkedTrace::ChunkedTrace(std::size_t chunk_packets, ChunkSink sink,
                           util::MemoryBudget* budget)
    : chunk_packets_(chunk_packets == 0 ? 1 : chunk_packets),
      sink_(std::move(sink)),
      budget_(budget) {}

void ChunkedTrace::emit(TraceChunk&& chunk) {
  if (sink_) {
    sink_(std::move(chunk));
  } else {
    retained_.push_back(std::move(chunk));
  }
}

CapturedPacket& ChunkedTrace::append() {
  if (open_.capacity() == 0) {
    open_ = TraceChunk(chunk_packets_, budget_);
  } else if (open_.full()) {
    // Lazy seal: the previous chunk leaves only now that a new packet
    // arrives, so the last appended packet was still reachable for
    // rollback until this moment.
    emit(std::move(open_));
    open_ = TraceChunk(chunk_packets_, budget_);
  }
  ++size_;
  return open_.append();
}

void ChunkedTrace::pop_back() {
  if (open_.empty()) return;
  open_.pop_back();
  --size_;
}

void ChunkedTrace::seal_open() {
  if (!open_.empty()) emit(std::move(open_));
  open_ = TraceChunk();
}

std::size_t ChunkedTrace::resident_bytes() const {
  std::size_t total = open_.bytes();
  for (const TraceChunk& c : retained_) total += c.bytes();
  return total;
}

PacketTrace ChunkedTrace::to_trace() const {
  PacketTrace out;
  out.reserve(size_);
  for (const TraceChunk& c : retained_) {
    for (const CapturedPacket& pkt : c.packets()) out.add(pkt);
  }
  for (const CapturedPacket& pkt : open_.packets()) out.add(pkt);
  return out;
}

}  // namespace tapo::net
