// Minimal IPv4 header model: enough to frame TCP segments for pcap
// round-trips and to parse real captures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tapo::net {

constexpr std::size_t kIpv4HeaderLen = 20;  // no options
constexpr std::uint8_t kProtoTcp = 6;

struct Ipv4Header {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoTcp;

  /// Serializes (with checksum) into `out`, which must hold kIpv4HeaderLen.
  void serialize(std::span<std::uint8_t> out) const;

  /// Parses from `in`; returns false on truncation / non-v4 / bad length.
  static bool parse(std::span<const std::uint8_t> in, Ipv4Header& out,
                    std::size_t& header_len);
};

/// "a.b.c.d" <-> host-order u32 helpers.
std::string ipv4_to_string(std::uint32_t addr);
std::uint32_t ipv4_from_string(const std::string& dotted);

}  // namespace tapo::net
