// Internet checksum (RFC 1071) and the TCP pseudo-header checksum.
#pragma once

#include <cstdint>
#include <span>

namespace tapo::net {

/// One's-complement sum over `data`, folded to 16 bits, complemented.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP checksum: pseudo-header (src, dst, protocol 6, tcp length) + segment.
std::uint16_t tcp_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                           std::span<const std::uint8_t> tcp_segment);

}  // namespace tapo::net
