// Fixed-size trace chunks: the bounded-memory counterpart of PacketTrace.
//
// A TraceChunk is a sealed-capacity arena of CapturedPacket PODs. A
// ChunkedTrace strings chunks together behind the same append/rollback
// surface TraceBuilder exposes over a PacketTrace, but instead of growing
// one arena forever it *seals* each chunk when the next one starts and
// either hands it to a sink (streaming mode — the chunk's memory is
// released as soon as the consumer drops it) or retains it (batch mode).
//
// Sealing is lazy: a full chunk is only emitted when the following append
// arrives, so TraceBuilder::rollback_last can always reach the packet it
// just claimed — the pcap readers' claim-then-rollback parse style keeps
// working unchanged on the chunked path.
//
// Budget accounting is RAII: a chunk constructed against a
// util::MemoryBudget charges its capacity up front and releases it on
// destruction, wherever the chunk ends up — this is the "bytes in live
// chunks" half of the pipeline ledger (DESIGN.md §14).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "net/trace.h"
#include "util/memory_budget.h"

namespace tapo::net {

/// One fixed-capacity arena of packets. Move-only; the capacity is chosen
/// at construction and never grows — full() tells the producer to start
/// the next chunk.
class TraceChunk {
 public:
  TraceChunk() = default;
  explicit TraceChunk(std::size_t capacity_packets,
                      util::MemoryBudget* budget = nullptr);
  ~TraceChunk();
  TraceChunk(TraceChunk&& other) noexcept;
  TraceChunk& operator=(TraceChunk&& other) noexcept;
  TraceChunk(const TraceChunk&) = delete;
  TraceChunk& operator=(const TraceChunk&) = delete;

  /// Claims the next slot. Precondition: !full().
  CapturedPacket& append();
  /// Drops the most recently appended packet (TraceBuilder rollback).
  void pop_back();

  std::span<const CapturedPacket> packets() const { return {slots_.get(), size_}; }
  const CapturedPacket& operator[](std::size_t i) const { return slots_[i]; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == cap_; }
  /// Arena footprint in bytes (what the budget was charged).
  std::size_t bytes() const { return cap_ * sizeof(CapturedPacket); }

 private:
  void release_budget();

  std::unique_ptr<CapturedPacket[]> slots_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  util::MemoryBudget* budget_ = nullptr;
};

/// Append surface producing sealed TraceChunks. With a sink: streaming —
/// every sealed chunk is handed over immediately and only the open tail
/// chunk stays resident. Without a sink: the sealed chunks are retained
/// in order (a chunked drop-in for a growing PacketTrace).
class ChunkedTrace {
 public:
  using ChunkSink = std::function<void(TraceChunk&&)>;

  /// Default chunk granularity: ~4K packets per chunk keeps the open-chunk
  /// residency in the hundreds of KiB while amortizing sink overhead.
  static constexpr std::size_t kDefaultChunkPackets = 4096;

  explicit ChunkedTrace(std::size_t chunk_packets = kDefaultChunkPackets,
                        ChunkSink sink = nullptr,
                        util::MemoryBudget* budget = nullptr);

  CapturedPacket& append();
  void add(const CapturedPacket& pkt) { append() = pkt; }
  /// Drops the most recently appended packet. Lazy sealing guarantees it
  /// still lives in the open chunk.
  void pop_back();

  /// Seals and emits the open tail chunk (end of input). Appending after
  /// this starts a fresh chunk.
  void seal_open();

  /// Total packets appended (net of rollbacks), across all chunks.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t chunk_packets() const { return chunk_packets_; }

  /// Retained chunks (batch mode; empty when a sink drains them).
  const std::vector<TraceChunk>& chunks() const { return retained_; }
  /// Packets in the open (unsealed) tail chunk, after the retained ones.
  std::span<const CapturedPacket> open_packets() const {
    return open_.packets();
  }
  /// Bytes held by this object right now: retained chunks + open tail.
  std::size_t resident_bytes() const;

  /// Materializes retained + open packets into one contiguous trace
  /// (batch-mode adapter; order preserved).
  PacketTrace to_trace() const;

 private:
  void emit(TraceChunk&& chunk);

  std::size_t chunk_packets_;
  ChunkSink sink_;
  util::MemoryBudget* budget_;
  TraceChunk open_;
  std::vector<TraceChunk> retained_;
  std::size_t size_ = 0;
};

}  // namespace tapo::net
