#include "net/ipv4.h"

#include <cassert>

#include "net/checksum.h"
#include "net/endian.h"
#include "util/env.h"
#include "util/strings.h"

namespace tapo::net {

void Ipv4Header::serialize(std::span<std::uint8_t> out) const {
  assert(out.size() >= kIpv4HeaderLen);
  put_u8(out, 0, 0x45);  // version 4, IHL 5
  put_u8(out, 1, 0);     // DSCP/ECN
  put_u16(out, 2, total_length);
  put_u16(out, 4, identification);
  put_u16(out, 6, 0x4000);  // DF, no fragment offset
  put_u8(out, 8, ttl);
  put_u8(out, 9, protocol);
  put_u16(out, 10, 0);  // checksum placeholder
  put_u32(out, 12, src);
  put_u32(out, 16, dst);
  const std::uint16_t csum = internet_checksum(out.subspan(0, kIpv4HeaderLen));
  put_u16(out, 10, csum);
}

bool Ipv4Header::parse(std::span<const std::uint8_t> in, Ipv4Header& out,
                       std::size_t& header_len) {
  if (in.size() < kIpv4HeaderLen) return false;
  const std::uint8_t ver_ihl = get_u8(in, 0);
  if ((ver_ihl >> 4) != 4) return false;
  header_len = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (header_len < kIpv4HeaderLen || in.size() < header_len) return false;
  out.total_length = get_u16(in, 2);
  if (out.total_length < header_len) return false;
  out.identification = get_u16(in, 4);
  out.ttl = get_u8(in, 8);
  out.protocol = get_u8(in, 9);
  out.src = get_u32(in, 12);
  out.dst = get_u32(in, 16);
  return true;
}

std::string ipv4_to_string(std::uint32_t addr) {
  return str_format("%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                    (addr >> 8) & 0xff, addr & 0xff);
}

std::uint32_t ipv4_from_string(const std::string& dotted) {
  std::uint32_t addr = 0;
  for (const auto& part : split(dotted, '.')) {
    const auto octet = util::parse_u64(part);
    if (!octet) return 0;  // malformed dotted quad
    addr = (addr << 8) | (static_cast<std::uint32_t>(*octet) & 0xff);
  }
  return addr;
}

}  // namespace tapo::net
