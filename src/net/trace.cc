#include "net/trace.h"

#include <algorithm>
#include <tuple>

#include "net/ipv4.h"
#include "util/strings.h"

namespace tapo::net {

FlowKey FlowKey::canonical() const {
  const auto a = std::make_tuple(src_ip, src_port);
  const auto b = std::make_tuple(dst_ip, dst_port);
  return a <= b ? *this : reversed();
}

std::string FlowKey::to_string() const {
  return str_format("%s:%u -> %s:%u", ipv4_to_string(src_ip).c_str(), src_port,
                    ipv4_to_string(dst_ip).c_str(), dst_port);
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const {
  // FNV-1a over the tuple fields.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.src_ip);
  mix(k.dst_ip);
  mix(k.src_port);
  mix(k.dst_port);
  return static_cast<std::size_t>(h);
}

void PacketTrace::sort_by_time() {
  std::stable_sort(packets_.begin(), packets_.end(),
                   [](const CapturedPacket& a, const CapturedPacket& b) {
                     return a.timestamp < b.timestamp;
                   });
}

}  // namespace tapo::net
