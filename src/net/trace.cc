#include "net/trace.h"

#include <algorithm>
#include <tuple>

#include "net/chunk.h"
#include "net/ipv4.h"
#include "util/strings.h"

namespace tapo::net {

FlowKey FlowKey::canonical() const {
  const auto a = std::make_tuple(src_ip, src_port);
  const auto b = std::make_tuple(dst_ip, dst_port);
  return a <= b ? *this : reversed();
}

std::string FlowKey::to_string() const {
  return str_format("%s:%u -> %s:%u", ipv4_to_string(src_ip).c_str(), src_port,
                    ipv4_to_string(dst_ip).c_str(), dst_port);
}

std::size_t FlowKeyHash::operator()(const FlowKey& k) const {
  // FNV-1a over the tuple fields.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.src_ip);
  mix(k.dst_ip);
  mix(k.src_port);
  mix(k.dst_port);
  return static_cast<std::size_t>(h);
}

CapturedPacket& PacketTrace::append() {
  if (size_ == cap_) grow_to(size_ + 1);
  slots_[size_] = CapturedPacket{};
  return slots_[size_++];
}

void PacketTrace::pop_back() {
  if (size_ > 0) --size_;
}

void PacketTrace::grow_to(std::size_t need) {
  if (need <= cap_) return;
  // Geometric growth; packets are relocated with a flat copy (they are
  // trivially copyable by static_assert).
  std::size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
  if (new_cap < need) new_cap = need;
  auto new_slots = std::make_unique<CapturedPacket[]>(new_cap);
  if (size_ > 0) std::copy_n(slots_.get(), size_, new_slots.get());
  slots_ = std::move(new_slots);
  cap_ = new_cap;
}

void PacketTrace::sort_by_time() {
  std::stable_sort(slots_.get(), slots_.get() + size_,
                   [](const CapturedPacket& a, const CapturedPacket& b) {
                     return a.timestamp < b.timestamp;
                   });
}

CapturedPacket& TraceBuilder::begin_packet() {
  return trace_ != nullptr ? trace_->append() : chunks_->append();
}

void TraceBuilder::rollback_last() {
  if (trace_ != nullptr) {
    trace_->pop_back();
  } else {
    chunks_->pop_back();
  }
}

void TraceBuilder::reserve(std::size_t n) {
  if (trace_ != nullptr) trace_->reserve(n);
}

std::size_t TraceBuilder::size() const {
  if (trace_ != nullptr) return trace_->size();
  return chunks_ != nullptr ? chunks_->size() : 0;
}

PacketTrace PacketTrace::clone() const {
  PacketTrace out;
  out.grow_to(size_);
  if (size_ > 0) std::copy_n(slots_.get(), size_, out.slots_.get());
  out.size_ = size_;
  return out;
}

}  // namespace tapo::net
