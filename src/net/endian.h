// Explicit big-endian (network byte order) serialization helpers.
//
// All wire formats in this library are written/read through these functions
// rather than through struct casts, so the code is independent of host
// endianness and free of alignment traps.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>

namespace tapo::net {

inline void put_u8(std::span<std::uint8_t> buf, std::size_t off, std::uint8_t v) {
  buf[off] = v;
}

inline void put_u16(std::span<std::uint8_t> buf, std::size_t off, std::uint16_t v) {
  buf[off] = static_cast<std::uint8_t>(v >> 8);
  buf[off + 1] = static_cast<std::uint8_t>(v);
}

inline void put_u32(std::span<std::uint8_t> buf, std::size_t off, std::uint32_t v) {
  buf[off] = static_cast<std::uint8_t>(v >> 24);
  buf[off + 1] = static_cast<std::uint8_t>(v >> 16);
  buf[off + 2] = static_cast<std::uint8_t>(v >> 8);
  buf[off + 3] = static_cast<std::uint8_t>(v);
}

inline std::uint8_t get_u8(std::span<const std::uint8_t> buf, std::size_t off) {
  return buf[off];
}

inline std::uint16_t get_u16(std::span<const std::uint8_t> buf, std::size_t off) {
  return static_cast<std::uint16_t>((buf[off] << 8) | buf[off + 1]);
}

inline std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t off) {
  return (static_cast<std::uint32_t>(buf[off]) << 24) |
         (static_cast<std::uint32_t>(buf[off + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[off + 2]) << 8) |
         static_cast<std::uint32_t>(buf[off + 3]);
}

}  // namespace tapo::net
