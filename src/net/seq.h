// Seq32: the TCP sequence-number domain type, plus the only sanctioned
// vocabulary for comparing sequence numbers.
//
// Raw `uint32_t` sequence comparisons are a latent correctness bug: any
// flow whose byte stream crosses the 2^32 wrap (a >4 GB cloud-storage
// upload, Table 1) silently misorders snd_una/snd_nxt/SACK edges under
// `<` / `>=`, and the analyzer then misclassifies its stalls. Linux bans
// such comparisons with before()/after() serial arithmetic; here the type
// system bans them — Seq32 does not convert to or from integers, so every
// comparison and every advance goes through wraparound-safe operations.
//
// Project style (enforced by tools/tapo_lint's seq-compare rule): inside
// src/, sequence ordering uses the named helpers below — before(),
// after(), at_or_before(), at_or_after() — never bare relational
// operators, so a token-level linter can vouch that no raw-integer
// comparison snuck back in. The relational operators on Seq32 itself are
// wrap-safe and remain available for generic code and tests.
//
// Distances: distance(from, to) is the forward byte count (mod 2^32) and
// is the wrap-safe spelling of `to - from`; the subtraction operator
// yields the signed serial difference. Both are exact while the values
// span less than 2^31 bytes, which TCP's window rules guarantee.
#pragma once

#include <cstdint>
#include <string>

#include "util/strong_types.h"

namespace tapo::net {

/// TCP sequence number (RFC 793 §3.3 sequence space, RFC 1982 ordering).
using Seq32 = util::SerialNumber<struct Seq32Tag, std::uint32_t>;

/// `a` is strictly earlier in the stream than `b` (Linux before()).
constexpr bool before(Seq32 a, Seq32 b) {
  return util::serial_before(a.raw(), b.raw());
}

/// `a` is strictly later in the stream than `b` (Linux after()).
constexpr bool after(Seq32 a, Seq32 b) {
  return util::serial_after(a.raw(), b.raw());
}

/// a == b || before(a, b) — the wrap-safe `<=`.
constexpr bool at_or_before(Seq32 a, Seq32 b) { return !after(a, b); }

/// a == b || after(a, b) — the wrap-safe `>=`.
constexpr bool at_or_after(Seq32 a, Seq32 b) { return !before(a, b); }

/// Forward byte count from `from` to `to` (mod 2^32). The wrap-safe
/// spelling of `to - from` for ranges known to run forward.
constexpr std::uint32_t distance(Seq32 from, Seq32 to) {
  return static_cast<std::uint32_t>(to.raw() - from.raw());
}

/// `s` advanced by `n` bytes (mod 2^32). Accepts 64-bit counts so stream
/// offsets can be folded in directly.
constexpr Seq32 advance(Seq32 s, std::uint64_t n) {
  return Seq32(static_cast<std::uint32_t>(s.raw() + n));
}

/// Later / earlier of two sequence numbers under serial ordering — the
/// wrap-safe std::max / std::min.
constexpr Seq32 seq_max(Seq32 a, Seq32 b) { return after(a, b) ? a : b; }
constexpr Seq32 seq_min(Seq32 a, Seq32 b) { return before(a, b) ? a : b; }

/// `s` in [start, end) under serial ordering.
constexpr bool seq_in_range(Seq32 s, Seq32 start, Seq32 end) {
  return at_or_after(s, start) && before(s, end);
}

/// Comparator for ordered containers (std::set, std::sort). A strict weak
/// ordering as long as all stored values span < 2^31 bytes — true for any
/// per-flow working set (sequence windows are far smaller than 2 GB).
struct SeqLess {
  constexpr bool operator()(Seq32 a, Seq32 b) const { return before(a, b); }
};

inline std::string to_string(Seq32 s) { return std::to_string(s.raw()); }

}  // namespace tapo::net
