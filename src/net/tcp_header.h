// TCP header model with the options that matter for stall analysis:
// MSS, window scale, SACK-permitted, SACK blocks (including DSACK), and
// timestamps. Serializes to/parses from the real wire format so simulator
// traces round-trip through libpcap files and real captures can be analyzed.
//
// The header is a POD: SACK blocks live in an inline fixed-capacity
// SackList (at most 4 blocks ever fit in the 40-byte TCP option space, even
// when split across multiple SACK options), so a TcpHeader — and therefore
// a CapturedPacket — is trivially copyable and never touches the heap.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <type_traits>

#include "net/seq.h"

namespace tapo::net {

constexpr std::size_t kTcpMinHeaderLen = 20;
constexpr std::size_t kTcpMaxHeaderLen = 60;

struct TcpFlags {
  // Bitfields: the whole flag set packs into one byte, which is what keeps
  // CapturedPacket/FlowPacket records cache-dense on the analyzer hot path.
  bool fin : 1 = false;
  bool syn : 1 = false;
  bool rst : 1 = false;
  bool psh : 1 = false;
  bool ack : 1 = false;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
  bool operator==(const TcpFlags&) const = default;
};
static_assert(sizeof(TcpFlags) == 1);

/// One SACK block: [start, end) in sequence space.
/// Per RFC 2883, a DSACK is signalled by the *first* block covering already
/// cumulatively-ACKed (or previously SACKed) data; receivers in this library
/// always place the duplicate block first.
struct SackBlock {
  Seq32 start;
  Seq32 end;
  bool operator==(const SackBlock&) const = default;

  /// Bytes covered by the block (wrap-safe).
  std::uint32_t len() const { return distance(start, end); }
};

/// Inline fixed-capacity list of SACK blocks. The 40 bytes of TCP option
/// space bound the wire to 4 blocks total (each SACK option costs 2 bytes
/// plus 8 per block), so the list never needs to spill; push_back beyond
/// capacity drops the block, mirroring what a sender would do when running
/// out of option space.
class SackList {
 public:
  static constexpr std::size_t kMaxBlocks = 4;

  constexpr SackList() = default;
  SackList(std::initializer_list<SackBlock> blocks) {
    for (const SackBlock& b : blocks) push_back(b);
  }

  /// Appends a block; returns false (and drops it) when full.
  bool push_back(const SackBlock& b) {
    if (count_ == kMaxBlocks) return false;
    blocks_[count_++] = b;
    return true;
  }
  void clear() { count_ = 0; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const SackBlock& operator[](std::size_t i) const { return blocks_[i]; }
  SackBlock& operator[](std::size_t i) { return blocks_[i]; }
  const SackBlock* begin() const { return blocks_.data(); }
  const SackBlock* end() const { return blocks_.data() + count_; }

  std::span<const SackBlock> span() const { return {blocks_.data(), count_}; }
  operator std::span<const SackBlock>() const { return span(); }

  friend bool operator==(const SackList& a, const SackList& b) {
    if (a.count_ != b.count_) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (!(a.blocks_[i] == b.blocks_[i])) return false;
    }
    return true;
  }

 private:
  std::array<SackBlock, kMaxBlocks> blocks_{};
  std::uint8_t count_ = 0;
};
static_assert(std::is_trivially_copyable_v<SackList>);

struct TcpTimestamps {
  std::uint32_t value = 0;
  std::uint32_t echo_reply = 0;
  bool operator==(const TcpTimestamps&) const = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Seq32 seq;
  Seq32 ack;
  TcpFlags flags;
  std::uint16_t window = 0;  // raw (unscaled) window field

  // Options (each optional on the wire).
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  bool sack_permitted = false;
  SackList sack_blocks;  // inline; the wire bounds this to 4 blocks
  std::optional<TcpTimestamps> timestamps;

  /// Size of the serialized header including options (padded to 4 bytes).
  std::size_t header_len() const;

  /// Serializes into `out` (must hold header_len()); checksum is written by
  /// the caller via tcp_checksum() if needed. Returns bytes written.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses header + options. Returns false on malformed input.
  ///
  /// `header_len` is always the *wire* header length from the data-offset
  /// field. With `truncated` null (the default) the input must hold the
  /// whole header. With `truncated` non-null the parse tolerates snaplen
  /// truncation: when `in` ends before the wire header does, the options
  /// that fit are parsed, anything cut off (typically tail options — SACK
  /// blocks, timestamps) is dropped, and `*truncated` is set so the caller
  /// can record the capture artifact. At least the 20 fixed bytes must be
  /// present either way.
  static bool parse(std::span<const std::uint8_t> in, TcpHeader& out,
                    std::size_t& header_len, bool* truncated = nullptr);
};
static_assert(std::is_trivially_copyable_v<TcpHeader>,
              "TcpHeader must stay a POD: CapturedPacket records are stored "
              "in a contiguous arena and relocated with memcpy");

}  // namespace tapo::net
