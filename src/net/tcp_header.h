// TCP header model with the options that matter for stall analysis:
// MSS, window scale, SACK-permitted, SACK blocks (including DSACK), and
// timestamps. Serializes to/parses from the real wire format so simulator
// traces round-trip through libpcap files and real captures can be analyzed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace tapo::net {

constexpr std::size_t kTcpMinHeaderLen = 20;
constexpr std::size_t kTcpMaxHeaderLen = 60;

struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
  bool operator==(const TcpFlags&) const = default;
};

/// One SACK block: [start, end) in sequence space.
/// Per RFC 2883, a DSACK is signalled by the *first* block covering already
/// cumulatively-ACKed (or previously SACKed) data; receivers in this library
/// always place the duplicate block first.
struct SackBlock {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
  bool operator==(const SackBlock&) const = default;
};

struct TcpTimestamps {
  std::uint32_t value = 0;
  std::uint32_t echo_reply = 0;
  bool operator==(const TcpTimestamps&) const = default;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;  // raw (unscaled) window field

  // Options (each optional on the wire).
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> window_scale;
  bool sack_permitted = false;
  std::vector<SackBlock> sack_blocks;  // at most 4 fit on the wire
  std::optional<TcpTimestamps> timestamps;

  /// Size of the serialized header including options (padded to 4 bytes).
  std::size_t header_len() const;

  /// Serializes into `out` (must hold header_len()); checksum is written by
  /// the caller via tcp_checksum() if needed. Returns bytes written.
  std::size_t serialize(std::span<std::uint8_t> out) const;

  /// Parses header + options. Returns false on malformed input.
  static bool parse(std::span<const std::uint8_t> in, TcpHeader& out,
                    std::size_t& header_len);
};

}  // namespace tapo::net
