// Packet-trace representation shared by the simulator, the pcap codec and
// the TAPO analyzer.
//
// A CapturedPacket is one TCP/IPv4 packet observed at the capture point (the
// server NIC in this reproduction, matching the paper's tcpdump vantage
// point). The analyzer never cares about payload bytes, only lengths and
// header fields, so payloads are represented by their length alone; the pcap
// writer synthesizes zero payload bytes of the right size.
//
// Memory layout: CapturedPacket is a trivially copyable POD (no heap
// pointers — SACK blocks are inline in the TcpHeader), and a PacketTrace is
// a contiguous arena of them. Growth relocates with a flat copy, consumers
// read through std::span views, and whole traces move between pipeline
// stages (simulator -> analyzer -> sink) by pointer swap, never by copying
// packets. View lifetime rule: spans/indices into the arena stay valid
// until the next mutating call (append/add/sort_by_time) — demux after any
// sort, and only then hand out views.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>

#include "net/tcp_header.h"
#include "util/time.h"

namespace tapo::net {

/// Connection 4-tuple. Oriented: src is the packet sender.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// The same key with the two endpoints swapped (reply direction).
  FlowKey reversed() const { return {dst_ip, src_ip, dst_port, src_port}; }

  /// Direction-insensitive canonical form (smaller endpoint first) so both
  /// directions of a connection map to the same table entry.
  FlowKey canonical() const;

  bool operator==(const FlowKey&) const = default;
  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const;
};

struct CapturedPacket {
  TimePoint timestamp;
  FlowKey key;
  TcpHeader tcp;
  std::uint32_t payload_len = 0;
  /// Snaplen truncation cut into this packet's TCP options: tail options
  /// (SACK blocks, timestamps) may be missing even though the lengths above
  /// reflect the full wire packet. Set by the pcap reader for records with
  /// caplen < wire len and by sim::CaptureChannel's snaplen impairment; the
  /// analyzer counts it into the flow's CaptureQuality.
  bool truncated = false;

  Seq32 end_seq() const {
    // SYN and FIN each consume one sequence number.
    return tcp.seq + (payload_len + (tcp.flags.syn ? 1u : 0u) +
                      (tcp.flags.fin ? 1u : 0u));
  }
  bool has_payload() const { return payload_len > 0; }
};
static_assert(std::is_trivially_copyable_v<CapturedPacket>,
              "CapturedPacket must stay a POD so PacketTrace can keep its "
              "packets in a flat arena and relocate them with memcpy");

/// An ordered (by capture time) sequence of packets, stored in one
/// contiguous arena. Move-only: whole traces are handed between pipeline
/// stages by pointer swap; use clone() for the rare deliberate deep copy.
class PacketTrace {
 public:
  PacketTrace() = default;
  PacketTrace(PacketTrace&&) noexcept = default;
  PacketTrace& operator=(PacketTrace&&) noexcept = default;
  PacketTrace(const PacketTrace&) = delete;
  PacketTrace& operator=(const PacketTrace&) = delete;

  /// Appends a default-initialized slot and returns it for in-place
  /// filling — the zero-copy write path used by the simulator capture
  /// point and the pcap reader.
  CapturedPacket& append();

  void add(const CapturedPacket& pkt) { append() = pkt; }
  void reserve(std::size_t n) { grow_to(n); }
  /// Drops the most recently appended packet (TraceBuilder rollback).
  void pop_back();

  /// Stable view of the whole arena; valid until the next mutating call.
  std::span<const CapturedPacket> packets() const { return {slots_.get(), size_}; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const CapturedPacket& operator[](std::size_t i) const { return slots_[i]; }

  /// Arena footprint in bytes (capacity, not just size).
  std::size_t capacity_bytes() const { return cap_ * sizeof(CapturedPacket); }

  /// Stable-sorts by timestamp (pcap files are usually already ordered, but
  /// multi-interface captures may interleave slightly out of order).
  /// Invalidates any packet *indices* previously derived from this trace —
  /// sort first, demux after.
  void sort_by_time();

  /// Deliberate deep copy of the arena.
  PacketTrace clone() const;

 private:
  void grow_to(std::size_t need);

  std::unique_ptr<CapturedPacket[]> slots_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

class ChunkedTrace;

/// Append-only writer facade over a packet arena. Producers (the
/// simulator's server-NIC capture point, the pcap readers) obtain a slot
/// with begin_packet(), fill it in place, and either keep it or roll it
/// back when the frame turns out not to be a TCP packet — no intermediate
/// CapturedPacket is ever materialized outside the arena.
///
/// Two backends share the facade: a growing PacketTrace (batch) or a
/// ChunkedTrace (streaming — sealed chunks leave as the producer writes,
/// so residency stays bounded). A default-constructed builder is detached:
/// attached() is false and begin_packet() must not be called, which lets
/// capture points carry one builder member for both captured and
/// capture-off runs.
class TraceBuilder {
 public:
  TraceBuilder() = default;
  explicit TraceBuilder(PacketTrace& trace) : trace_(&trace) {}
  explicit TraceBuilder(ChunkedTrace& chunks) : chunks_(&chunks) {}

  bool attached() const { return trace_ != nullptr || chunks_ != nullptr; }

  CapturedPacket& begin_packet();
  /// Discards the slot handed out by the last begin_packet().
  void rollback_last();
  /// Capacity hint; the chunked backend sizes itself and ignores it.
  void reserve(std::size_t n);
  std::size_t size() const;

 private:
  PacketTrace* trace_ = nullptr;
  ChunkedTrace* chunks_ = nullptr;
};

}  // namespace tapo::net
