// Packet-trace representation shared by the simulator, the pcap codec and
// the TAPO analyzer.
//
// A CapturedPacket is one TCP/IPv4 packet observed at the capture point (the
// server NIC in this reproduction, matching the paper's tcpdump vantage
// point). The analyzer never cares about payload bytes, only lengths and
// header fields, so payloads are represented by their length alone; the pcap
// writer synthesizes zero payload bytes of the right size.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/tcp_header.h"
#include "util/time.h"

namespace tapo::net {

/// Connection 4-tuple. Oriented: src is the packet sender.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// The same key with the two endpoints swapped (reply direction).
  FlowKey reversed() const { return {dst_ip, src_ip, dst_port, src_port}; }

  /// Direction-insensitive canonical form (smaller endpoint first) so both
  /// directions of a connection map to the same table entry.
  FlowKey canonical() const;

  bool operator==(const FlowKey&) const = default;
  std::string to_string() const;
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const;
};

struct CapturedPacket {
  TimePoint timestamp;
  FlowKey key;
  TcpHeader tcp;
  std::uint32_t payload_len = 0;

  std::uint32_t end_seq() const {
    // SYN and FIN each consume one sequence number.
    return tcp.seq + payload_len + (tcp.flags.syn ? 1u : 0u) +
           (tcp.flags.fin ? 1u : 0u);
  }
  bool has_payload() const { return payload_len > 0; }
};

/// An ordered (by capture time) sequence of packets.
class PacketTrace {
 public:
  void add(CapturedPacket pkt) { packets_.push_back(std::move(pkt)); }
  void reserve(std::size_t n) { packets_.reserve(n); }

  const std::vector<CapturedPacket>& packets() const { return packets_; }
  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }
  const CapturedPacket& operator[](std::size_t i) const { return packets_[i]; }

  /// Stable-sorts by timestamp (pcap files are usually already ordered, but
  /// multi-interface captures may interleave slightly out of order).
  void sort_by_time();

 private:
  std::vector<CapturedPacket> packets_;
};

}  // namespace tapo::net
