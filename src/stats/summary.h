// Streaming summary statistics (count/mean/variance/min/max) using
// Welford's online algorithm so that very long runs stay numerically stable.
#pragma once

#include <cstdint>
#include <limits>

namespace tapo::stats {

class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tapo::stats
