#include "stats/sketch.h"

#include <cmath>
#include <stdexcept>

namespace tapo::stats {

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  if (!(relative_accuracy > 0.0) || !(relative_accuracy < 1.0)) {
    throw std::invalid_argument(
        "QuantileSketch: relative accuracy must be in (0, 1)");
  }
}

void QuantileSketch::observe(double v) {
  ++total_;
  if (!(v >= kMinTracked)) {  // negatives, zeros, and NaN all land here
    ++zero_count_;
    return;
  }
  const double idx = std::ceil(std::log(v) * inv_log_gamma_);
  ++buckets_[static_cast<std::int32_t>(idx)];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (alpha_ != other.alpha_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: mismatched relative accuracy");
  }
  total_ += other.total_;
  zero_count_ += other.zero_count_;
  for (const auto& [idx, n] : other.buckets_) buckets_[idx] += n;
}

double QuantileSketch::quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target the order statistic at index floor(rank): walk cumulative
  // counts in ascending bucket order until the target index is covered.
  const double rank = q * static_cast<double>(total_ - 1);
  std::uint64_t cum = zero_count_;
  if (static_cast<double>(cum) > rank) return 0.0;
  for (const auto& [idx, n] : buckets_) {
    cum += n;
    if (static_cast<double>(cum) > rank) {
      return 2.0 * std::pow(gamma_, idx) / (gamma_ + 1.0);
    }
  }
  // Floating-point slack at q == 1: return the top bucket's estimate.
  if (buckets_.empty()) return 0.0;
  return 2.0 * std::pow(gamma_, buckets_.rbegin()->first) / (gamma_ + 1.0);
}

}  // namespace tapo::stats
