#include "stats/table.h"

#include <algorithm>

namespace tapo::stats {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), false});
}

void Table::add_separator() { rows_.push_back({{}, true}); }

std::string Table::render() const {
  // Compute column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r.cells);

  std::size_t line_width = 0;
  for (std::size_t w : widths) line_width += w + 3;
  if (line_width >= 1) line_width -= 1;

  auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      line += c;
      line.append(widths[i] - c.size(), ' ');
      if (i + 1 < widths.size()) line += " | ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  if (!header_.empty()) {
    out += render_cells(header_);
    out += std::string(line_width, '-') + "\n";
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      out += std::string(line_width, '-') + "\n";
    } else {
      out += render_cells(r.cells);
    }
  }
  return out;
}

}  // namespace tapo::stats
