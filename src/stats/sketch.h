// Mergeable quantile sketch with a fixed relative-error bound.
//
// DDSketch-style log-bucket sketch: a value v > 0 lands in bucket
// i = ceil(log_gamma(v)) with gamma = (1 + alpha) / (1 - alpha), so bucket
// i covers (gamma^(i-1), gamma^i]. The bucket's representative value
// 2 * gamma^i / (gamma + 1) is within a factor of [1 - alpha, 1 + alpha]
// of every value in the bucket, which gives the guarantee: quantile(q)
// returns an estimate within alpha *relative* error of the exact order
// statistic at rank floor(q * (count - 1)).
//
// Unlike the exact stats::Cdf (which stores every sample), the sketch is
// bounded-size and *mergeable*: merge() adds integer bucket counts, so it
// is exactly associative and commutative — N shard sketches collapse to
// one fleet sketch whose state is bit-identical regardless of shard count
// and merge order. That property is what the fleet aggregation tier's
// determinism contract (DESIGN.md §13) is built on; it is property-tested
// in tests/fleet_sketch_test.cc.
#pragma once

#include <cstdint>
#include <map>

namespace tapo::stats {

class QuantileSketch {
 public:
  /// Default relative accuracy: 2% — coarse enough that a fleet-wide
  /// sketch over microsecond durations stays under ~1k buckets.
  static constexpr double kDefaultAlpha = 0.02;

  /// Values below this are counted in the zero bucket (durations of zero,
  /// and anything too small to matter at microsecond granularity).
  static constexpr double kMinTracked = 1e-9;

  /// Throws std::invalid_argument unless 0 < relative_accuracy < 1.
  explicit QuantileSketch(double relative_accuracy = kDefaultAlpha);

  /// Records one sample. Values < kMinTracked (including negatives and
  /// NaN) land in the zero bucket and report as 0 from quantile().
  void observe(double v);

  /// Adds `other`'s buckets into this sketch. Integer adds: exactly
  /// associative and commutative. Throws std::invalid_argument when the
  /// two sketches were built with different relative accuracies.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  double relative_accuracy() const { return alpha_; }

  /// Estimate of the order statistic at rank floor(q * (count - 1)),
  /// within alpha relative error (exact 0.0 for zero-bucket ranks).
  /// q is clamped to [0, 1]; an empty sketch reports 0.0.
  double quantile(double q) const;

  /// Bit-identical-state comparison (the merge-determinism contract).
  bool operator==(const QuantileSketch&) const = default;

  // Introspection for tests and serializers.
  std::uint64_t zero_count() const { return zero_count_; }
  const std::map<std::int32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::int32_t, std::uint64_t> buckets_;
};

}  // namespace tapo::stats
