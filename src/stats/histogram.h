// Fixed-bin histogram with linear or logarithmic bin edges.
//
// Used by benches that report distributions over discrete buckets (e.g.
// Table 4's init-rwnd buckets) and for ASCII bar rendering in examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tapo::stats {

class Histogram {
 public:
  /// `edges` must be strictly increasing; bin i covers [edges[i], edges[i+1]).
  /// Samples below the first edge or at/above the last are counted in
  /// underflow/overflow.
  explicit Histogram(std::vector<double> edges);

  static Histogram linear(double lo, double hi, std::size_t bins);
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  /// Pools another histogram built over the *same* edges into this one
  /// (per-shard partials from parallel runs). Throws std::invalid_argument
  /// when the bin edges differ.
  void merge(const Histogram& other);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const { return edges_[i]; }
  double bin_hi(std::size_t i) const { return edges_[i + 1]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Fraction of all samples (incl. under/overflow) landing in bin i.
  double fraction(std::size_t i) const;

  /// Multi-line ASCII rendering with proportional bars.
  std::string render(std::size_t width = 50) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tapo::stats
