#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace tapo::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  assert(edges_.size() >= 2);
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  counts_.assign(edges_.size() - 1, 0);
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  std::vector<double> edges;
  edges.reserve(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges.push_back(lo + (hi - lo) * static_cast<double>(i) /
                             static_cast<double>(bins));
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  assert(lo > 0 && hi > lo);
  std::vector<double> edges;
  edges.reserve(bins + 1);
  const double llo = std::log(lo), lhi = std::log(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges.push_back(std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                      static_cast<double>(bins)));
  }
  return Histogram(std::move(edges));
}

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += weight;
}

void Histogram::merge(const Histogram& other) {
  if (edges_ != other.edges_) {
    throw std::invalid_argument("Histogram::merge: bin edges differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::fraction(std::size_t i) const {
  return total_ ? static_cast<double>(counts_[i]) / static_cast<double>(total_)
                : 0.0;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out += str_format("[%10.3g, %10.3g) %8llu |", edges_[i], edges_[i + 1],
                      static_cast<unsigned long long>(counts_[i]));
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tapo::stats
