#include "stats/cdf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/strings.h"

namespace tapo::stats {

void Cdf::add_n(double x, std::size_t n) {
  samples_.insert(samples_.end(), n, x);
  sorted_ = false;
}

void Cdf::merge(const Cdf& other) {
  if (&other == this) {
    // Self-merge: double every sample without aliasing the source range.
    const std::size_t n = samples_.size();
    samples_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) samples_.push_back(samples_[i]);
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::percentile(double q) const {
  assert(!samples_.empty());
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  // Linear interpolation between closest ranks (type-7 quantile, the R and
  // NumPy default) so that tests have a precise definition to check against.
  const double h = q * static_cast<double>(samples_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const double frac = h - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double Cdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::curve(std::size_t points) const {
  std::vector<Point> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i + 1) / static_cast<double>(points);
    out.push_back({percentile(q), q});
  }
  return out;
}

std::vector<Cdf::Point> Cdf::curve_at(const std::vector<double>& xs) const {
  std::vector<Point> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back({x, fraction_at_most(x)});
  return out;
}

std::string describe(const Cdf& cdf, const std::string& unit) {
  if (cdf.empty()) return "(no samples)";
  return str_format("n=%zu p10=%.3g p50=%.3g p90=%.3g p99=%.3g%s%s",
                    cdf.count(), cdf.percentile(0.10), cdf.percentile(0.50),
                    cdf.percentile(0.90), cdf.percentile(0.99),
                    unit.empty() ? "" : " ", unit.c_str());
}

}  // namespace tapo::stats
