// ASCII table renderer used by every bench binary to print paper-style
// tables (Table 1, 3, 4, 5, ...) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace tapo::stats {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows_;
};

}  // namespace tapo::stats
