// Empirical CDF accumulator.
//
// Collects samples, then answers percentile and P(X <= x) queries and renders
// the distribution as (x, F(x)) rows — the form in which the paper's figures
// (Fig. 1, 3, 6, 7, 10, 11, 12) are reported. Samples are stored exactly;
// the datasets in this reproduction are small enough (millions of doubles)
// that a sketch is unnecessary and exactness simplifies testing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tapo::stats {

class Cdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_n(double x, std::size_t n);
  /// Pools another CDF's samples into this one.
  void merge(const Cdf& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Value at quantile q in [0, 1] (q=0.5 -> median). Requires non-empty.
  double percentile(double q) const;

  /// Fraction of samples <= x.
  double fraction_at_most(double x) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Render `points` evenly spaced (in rank) CDF rows "x F(x)".
  struct Point { double x; double f; };
  std::vector<Point> curve(std::size_t points = 20) const;

  /// CDF evaluated at caller-chosen x positions (for log-scale figures).
  std::vector<Point> curve_at(const std::vector<double>& xs) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Renders a one-line sparkline-style summary: p10/p50/p90/p99.
std::string describe(const Cdf& cdf, const std::string& unit = "");

}  // namespace tapo::stats
