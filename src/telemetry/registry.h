// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms with Prometheus-text and JSON snapshot exporters.
//
// Hot-path cost model: registration (name + label lookup under a mutex)
// happens once per call site — callers cache the returned reference in a
// function-local static, which stays valid forever because the registry
// zeroes metrics on reset() instead of deleting them. Recording is then a
// relaxed atomic add into one of a small set of cache-line-padded cells
// selected by a thread-local shard index, so concurrent workers do not
// bounce a shared counter line.
//
// Snapshots sum the cells; they are linearizable enough for exporters
// (each individual metric is exact once recording threads are quiescent,
// which the runner's join guarantees).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tapo::telemetry {

using Label = std::pair<std::string, std::string>;

namespace detail {
constexpr std::size_t kCells = 8;

struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> v{0};
};

/// Stable per-thread cell index.
std::size_t this_thread_cell();
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[detail::this_thread_cell()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  void reset();

 private:
  // lock-free: per-thread-striped relaxed cells; value() sums them and is
  // exact once recording threads are quiescent (the exporters' contract).
  std::array<detail::PaddedCell, detail::kCells> cells_;
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  // lock-free: last-writer-wins gauge; a single relaxed cell is the whole
  // consistency story (no read-modify-write races worth ordering).
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over non-negative integer samples (durations in
/// us, byte counts, ...). Bucket i counts samples with value < 2^i
/// (cumulative export, Prometheus "le" convention); 2^kBuckets-1 and above
/// land in the overflow bucket.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // le 2^0 .. 2^39 (~9 days in us)

  void observe(std::uint64_t v);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Samples in bucket i, i.e. with 2^(i-1) <= v < 2^i (bucket 0: v == 0).
  std::uint64_t bucket(std::size_t i) const;
  void reset();

 private:
  std::array<detail::PaddedCell, detail::kCells> counts_[kBuckets + 1];
  std::array<detail::PaddedCell, detail::kCells> sum_;
};

/// One metric's snapshot row (see Registry::snapshot).
struct MetricSample {
  std::string name;
  std::vector<Label> labels;
  enum class Type { kCounter, kGauge, kHistogram } type = Type::kCounter;
  double value = 0.0;                         // counter / gauge
  std::vector<std::uint64_t> bucket_counts;   // histogram, non-cumulative
  std::uint64_t hist_count = 0, hist_sum = 0; // histogram
};

class Registry {
 public:
  static Registry& instance();

  /// Registers (or finds) a metric. References stay valid for the process
  /// lifetime; cache them at the call site:
  ///   static auto& c = Registry::instance().counter("tapo_x_total");
  Counter& counter(const std::string& name, std::vector<Label> labels = {})
      TAPO_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name, std::vector<Label> labels = {})
      TAPO_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name, std::vector<Label> labels = {})
      TAPO_EXCLUDES(mu_);

  std::vector<MetricSample> snapshot() const TAPO_EXCLUDES(mu_);

  /// Prometheus text exposition format (one # TYPE line per family).
  void export_prometheus(std::ostream& os) const TAPO_EXCLUDES(mu_);
  /// {"metrics":[{name, labels, type, value | buckets}...]}
  void export_json(std::ostream& os) const TAPO_EXCLUDES(mu_);

  /// Zeroes every metric value. Never deletes metrics, so references
  /// cached by instrumentation sites stay valid.
  void reset() TAPO_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string name;
    std::vector<Label> labels;
    MetricSample::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Registry() = default;
  Entry& entry(const std::string& name, std::vector<Label> labels,
               MetricSample::Type type) TAPO_EXCLUDES(mu_);

  /// Guards the registration map only. The Counter/Gauge/Histogram cells
  /// behind the returned references are intentionally lock-free (striped
  /// relaxed atomics — see the header comment's cost model); entries are
  /// never deleted, so a reference escapes the lock safely.
  mutable util::Mutex mu_;
  std::map<std::string, Entry> entries_ TAPO_GUARDED_BY(mu_);
};

}  // namespace tapo::telemetry
