// Structured event tracer with lock-free-per-thread bounded ring buffers.
//
// Each recording thread owns a shard (a fixed-capacity ring of TraceEvents)
// handed out by the tracer on first use; recording is a plain store into
// the ring, so instrumented hot paths never contend on a lock. When a ring
// wraps, the oldest events are overwritten and counted in dropped().
//
// Recording is gated three ways, cheapest first:
//   1. compile time — with -DTAPO_TELEMETRY=OFF every TAPO_TRACE site is
//      dead code (see telemetry.h);
//   2. a process-wide enabled flag (one relaxed atomic load);
//   3. per-flow sampling — FlowScope marks the current thread's flow, and
//      only every `sample_every`-th flow records (plus a category mask
//      that keeps high-volume packet events off by default).
//
// Export (Chrome trace_event JSON for chrome://tracing / Perfetto, and
// JSONL for scripting) must run after the recording threads have been
// joined — the runner's pool join / sim completion provides that ordering.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/events.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tapo::telemetry {

class Tracer {
 public:
  static Tracer& instance();

  void set_enabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Category mask (Category bits). Default: control + lifecycle — packet
  /// tx/rx events are high-volume and opt-in.
  void set_categories(unsigned mask) { categories_.store(mask, std::memory_order_relaxed); }
  unsigned categories() const { return categories_.load(std::memory_order_relaxed); }

  /// Record events only for flows whose index is a multiple of `n`
  /// (1 = every flow, the default; 0 behaves as 1).
  void set_sample_every(std::uint64_t n) { sample_every_.store(n ? n : 1, std::memory_order_relaxed); }
  std::uint64_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  /// Ring capacity (events) for shards created after the call.
  void set_shard_capacity(std::size_t events) TAPO_EXCLUDES(mu_);
  std::size_t shard_capacity() const TAPO_EXCLUDES(mu_);

  /// True when an event of `kind` would be recorded on this thread right
  /// now (enabled + category on + current flow sampled).
  bool should_record(EventKind kind) const;

  /// Appends one event to the calling thread's ring. The flow id is taken
  /// from the active FlowScope (0 outside any scope).
  void record(EventKind kind, std::int64_t ts_us, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Registers a run (e.g. one ParallelRunner invocation) and returns its
  /// id, used as the pid in Chrome-trace output. `label` becomes the
  /// process name ("web search", ...).
  std::uint32_t begin_run(const std::string& label) TAPO_EXCLUDES(mu_);

  /// All buffered events, merged across shards, ordered by (flow, ts).
  std::vector<TraceEvent> collect() const TAPO_EXCLUDES(mu_);
  std::uint64_t dropped() const TAPO_EXCLUDES(mu_);

  /// {"traceEvents": [...]} — loads in chrome://tracing and Perfetto.
  /// Stall spans render as duration ("X") slices named by root cause; cwnd
  /// changes as counter ("C") tracks; everything else as instants.
  void export_chrome_trace(std::ostream& os) const TAPO_EXCLUDES(mu_);
  /// One JSON object per line, one line per event.
  void export_jsonl(std::ostream& os) const TAPO_EXCLUDES(mu_);

  /// Drops all buffered events, run labels, and drop counts. Shards are
  /// recycled, not freed, so recording threads re-register lazily.
  void reset() TAPO_EXCLUDES(mu_);

 private:
  struct Shard {
    std::vector<TraceEvent> ring;
    std::size_t cap = 0;         // fixed at creation; ring wraps at cap
    std::size_t head = 0;        // next write position
    std::uint64_t recorded = 0;  // monotone; recorded - size() = dropped
  };

  Tracer() = default;
  Shard* shard_for_this_thread() TAPO_EXCLUDES(mu_);

  // lock-free: recording-path gates — one relaxed load each on the hot
  // path; a stale value only delays an enable/sample-rate change by one
  // event, it never corrupts state.
  std::atomic<bool> enabled_{false};
  std::atomic<unsigned> categories_{kControl | kLifecycle};
  std::atomic<std::uint64_t> sample_every_{1};
  // lock-free: reset() epoch; recording threads compare it (acquire) to
  // invalidate their cached shard pointer. Bumped only under mu_.
  std::atomic<std::uint64_t> epoch_{1};

  /// Guards the shard *registry*; each Shard's contents are owned by the
  /// registering thread until it quiesces (the collect()/export contract).
  mutable util::Mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_ TAPO_GUARDED_BY(mu_);
  std::vector<std::string> run_labels_ TAPO_GUARDED_BY(mu_);  // run id - 1
  std::size_t capacity_ TAPO_GUARDED_BY(mu_) = 1 << 16;
};

/// RAII marker: events recorded by this thread while the scope is alive are
/// attributed to `flow_id` (runner: run_id << 32 | flow_index). Also
/// decides, from the tracer's sampling rate, whether the flow records at
/// all. Scopes nest; the previous attribution is restored on destruction.
class FlowScope {
 public:
  explicit FlowScope(std::uint64_t flow_id);
  ~FlowScope();
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  std::uint64_t prev_flow_;
  bool prev_sampled_;
};

namespace detail {
extern thread_local std::uint64_t t_flow;
extern thread_local bool t_flow_sampled;
}  // namespace detail

}  // namespace tapo::telemetry
