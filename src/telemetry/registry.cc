#include "telemetry/registry.h"

#include <bit>
#include <functional>
#include <thread>

#include "telemetry/json.h"

namespace tapo::telemetry {

namespace detail {

std::size_t this_thread_cell() {
  static thread_local const std::size_t cell =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCells;
  return cell;
}

namespace {
std::uint64_t sum_cells(const std::array<PaddedCell, kCells>& cells) {
  std::uint64_t total = 0;
  for (const auto& c : cells) total += c.v.load(std::memory_order_relaxed);
  return total;
}
void zero_cells(std::array<PaddedCell, kCells>& cells) {
  for (auto& c : cells) c.v.store(0, std::memory_order_relaxed);
}
}  // namespace

}  // namespace detail

std::uint64_t Counter::value() const { return detail::sum_cells(cells_); }
void Counter::reset() { detail::zero_cells(cells_); }

namespace {
/// Bucket index for a sample: 0 for v == 0, else 1 + floor(log2(v)),
/// clamped to the overflow bucket.
std::size_t bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  const std::size_t i = static_cast<std::size_t>(std::bit_width(v));
  return i > Histogram::kBuckets ? Histogram::kBuckets : i;
}
}  // namespace

void Histogram::observe(std::uint64_t v) {
  const std::size_t cell = detail::this_thread_cell();
  counts_[bucket_index(v)][cell].v.fetch_add(1, std::memory_order_relaxed);
  sum_[cell].v.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= kBuckets; ++i) total += detail::sum_cells(counts_[i]);
  return total;
}

std::uint64_t Histogram::sum() const { return detail::sum_cells(sum_); }

std::uint64_t Histogram::bucket(std::size_t i) const {
  return detail::sum_cells(counts_[i]);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= kBuckets; ++i) detail::zero_cells(counts_[i]);
  detail::zero_cells(sum_);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {
std::string render_labels(const std::vector<Label>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}
}  // namespace

Registry::Entry& Registry::entry(const std::string& name,
                                 std::vector<Label> labels,
                                 MetricSample::Type type) {
  const std::string key = name + render_labels(labels);
  util::MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.name = name;
    e.labels = std::move(labels);
    e.type = type;
    switch (type) {
      case MetricSample::Type::kCounter: e.counter = std::make_unique<Counter>(); break;
      case MetricSample::Type::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case MetricSample::Type::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(key, std::move(e)).first;
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name, std::vector<Label> labels) {
  return *entry(name, std::move(labels), MetricSample::Type::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, std::vector<Label> labels) {
  return *entry(name, std::move(labels), MetricSample::Type::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<Label> labels) {
  return *entry(name, std::move(labels), MetricSample::Type::kHistogram).histogram;
}

std::vector<MetricSample> Registry::snapshot() const {
  util::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.type = e.type;
    switch (e.type) {
      case MetricSample::Type::kCounter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case MetricSample::Type::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricSample::Type::kHistogram:
        s.hist_count = e.histogram->count();
        s.hist_sum = e.histogram->sum();
        s.bucket_counts.resize(Histogram::kBuckets + 1);
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
          s.bucket_counts[i] = e.histogram->bucket(i);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
const char* prom_type(MetricSample::Type t) {
  switch (t) {
    case MetricSample::Type::kCounter: return "counter";
    case MetricSample::Type::kGauge: return "gauge";
    case MetricSample::Type::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string prom_number(double v) {
  // Counters are integral in this registry; print them without the
  // trailing ".000000" a %f would add.
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    return std::to_string(static_cast<std::uint64_t>(v));
  }
  return std::to_string(v);
}
}  // namespace

void Registry::export_prometheus(std::ostream& os) const {
  const auto samples = snapshot();
  std::string last_family;
  for (const auto& s : samples) {
    if (s.name != last_family) {
      os << "# TYPE " << s.name << " " << prom_type(s.type) << "\n";
      last_family = s.name;
    }
    const std::string labels = render_labels(s.labels);
    if (s.type != MetricSample::Type::kHistogram) {
      os << s.name << labels << " " << prom_number(s.value) << "\n";
      continue;
    }
    // Cumulative le buckets: le="1", "2", "4", ... then "+Inf".
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cum += s.bucket_counts[i];
      std::vector<Label> bl = s.labels;
      bl.push_back({"le", std::to_string(1ull << i)});
      os << s.name << "_bucket" << render_labels(bl) << " " << cum << "\n";
    }
    std::vector<Label> inf = s.labels;
    inf.push_back({"le", "+Inf"});
    os << s.name << "_bucket" << render_labels(inf) << " " << s.hist_count << "\n";
    os << s.name << "_sum" << labels << " " << s.hist_sum << "\n";
    os << s.name << "_count" << labels << " " << s.hist_count << "\n";
  }
}

void Registry::export_json(std::ostream& os) const {
  const auto samples = snapshot();
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":" << json_quote(s.name) << ",\"type\":\""
       << prom_type(s.type) << "\",\"labels\":{";
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
      if (i) os << ",";
      os << json_quote(s.labels[i].first) << ":" << json_quote(s.labels[i].second);
    }
    os << "}";
    if (s.type == MetricSample::Type::kHistogram) {
      os << ",\"count\":" << s.hist_count << ",\"sum\":" << s.hist_sum
         << ",\"buckets\":[";
      for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
        if (i) os << ",";
        os << s.bucket_counts[i];
      }
      os << "]";
    } else {
      os << ",\"value\":" << prom_number(s.value);
    }
    os << "}";
  }
  os << "\n]}\n";
}

void Registry::reset() {
  util::MutexLock lock(mu_);
  for (auto& [key, e] : entries_) {
    switch (e.type) {
      case MetricSample::Type::kCounter: e.counter->reset(); break;
      case MetricSample::Type::kGauge: e.gauge->reset(); break;
      case MetricSample::Type::kHistogram: e.histogram->reset(); break;
    }
  }
}

}  // namespace tapo::telemetry
