// Minimal JSON support for the telemetry exporters and their validation.
//
// Writing: exporters emit JSON by hand (the formats are flat and hot), so
// the only writer helper needed is string quoting/escaping. Reading: a
// small recursive-descent parser used by the schema validator
// (bench/telemetry_validate) and the telemetry tests to check that emitted
// artifacts are well-formed without an external JSON dependency.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tapo::telemetry {

/// Quotes and escapes `s` as a JSON string literal (including the quotes).
std::string json_quote(const std::string& s);

/// Parsed JSON value. Numbers are doubles (the telemetry formats never
/// need 64-bit-exact integers on the read side).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool boolean() const { return bool_; }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& array() const { return arr_; }
  const std::map<std::string, Json>& object() const { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  static Json make_null();
  static Json make_bool(bool b);
  static Json make_number(double d);
  static Json make_string(std::string s);
  static Json make_array(std::vector<Json> a);
  static Json make_object(std::map<std::string, Json> o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

/// Parses one JSON document. std::nullopt on any syntax error or trailing
/// garbage; `error` (when non-null) receives a byte offset + message.
std::optional<Json> json_parse(const std::string& text,
                               std::string* error = nullptr);

}  // namespace tapo::telemetry
