#include "telemetry/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/env.h"

namespace tapo::telemetry {

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

Json Json::make_null() { return Json{}; }
Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}
Json Json::make_number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = d;
  return j;
}
Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}
Json Json::make_array(std::vector<Json> a) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(a);
  return j;
}
Json Json::make_object(std::map<std::string, Json> o) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(o);
  return j;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> parse() {
    skip_ws();
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  std::optional<Json> fail(const std::string& msg) {
    if (error_ && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Json> value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string();
      if (!s) return std::nullopt;
      return Json::make_string(std::move(*s));
    }
    if (literal("true")) return Json::make_bool(true);
    if (literal("false")) return Json::make_bool(false);
    if (literal("null")) return Json::make_null();
    return number();
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return fail("bad number '" + tok + "'");
    return Json::make_number(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            // Decode to a single byte when in range; multi-byte code
            // points are not produced by our exporters.
            const auto hex = util::parse_hex_u16(text_.substr(pos_, 4));
            if (!hex) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            const unsigned cp = *hex;
            pos_ += 4;
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else {
              out += '?';
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array() {
    consume('[');
    std::vector<Json> items;
    skip_ws();
    if (consume(']')) return Json::make_array(std::move(items));
    while (true) {
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Json::make_array(std::move(items));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> object() {
    consume('{');
    std::map<std::string, Json> members;
    skip_ws();
    if (consume('}')) return Json::make_object(std::move(members));
    while (true) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto v = value();
      if (!v) return std::nullopt;
      members.emplace(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return Json::make_object(std::move(members));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> json_parse(const std::string& text, std::string* error) {
  return Parser(text, error).parse();
}

}  // namespace tapo::telemetry
