// Telemetry subsystem entry point: event tracing + metrics registry.
//
// Instrumented layers (sim, tcp, tapo, workload, bench) include only this
// header. Two gates keep the cost at zero when telemetry is off:
//
//  - Compile time: the TAPO_TELEMETRY macro (CMake option, default ON).
//    With -DTAPO_TELEMETRY=OFF, tracing_enabled()/metrics_enabled() are
//    constant false and every TAPO_TRACE site folds away.
//  - Run time: both the tracer and the metrics side start DISABLED and
//    cost one relaxed atomic load + branch per site until enable_all()
//    (or the bench --telemetry-out flag / TAPO_TELEMETRY_OUT env var)
//    turns them on.
//
// Instrumentation idioms:
//
//   TAPO_TRACE(EventKind::kRtoFire, now_us, rto_us, packets_out);
//
//   if (tapo::telemetry::metrics_enabled()) {
//     static auto& c = tapo::telemetry::Registry::instance().counter(
//         "tapo_tcp_rto_fires_total");
//     c.add(1);
//   }
//
// The function-local static caches the registry lookup; the reference
// stays valid forever (Registry::reset zeroes, never deletes).
#pragma once

#include "telemetry/events.h"
#include "telemetry/registry.h"
#include "telemetry/tracer.h"

#ifndef TAPO_TELEMETRY
#define TAPO_TELEMETRY 1
#endif

namespace tapo::telemetry {

namespace detail {
#if TAPO_TELEMETRY
extern std::atomic<bool> g_metrics_enabled;
#endif
}  // namespace detail

inline bool metrics_enabled() {
#if TAPO_TELEMETRY
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

inline bool tracing_enabled() {
#if TAPO_TELEMETRY
  return Tracer::instance().enabled();
#else
  return false;
#endif
}

void set_metrics_enabled(bool on);

/// Turns on both tracing and metrics (bench --telemetry-out path).
void enable_all();
/// Turns both off and clears all buffered events and metric values.
void disable_and_reset_all();

}  // namespace tapo::telemetry

#if TAPO_TELEMETRY
#define TAPO_TRACE(kind, ts_us, a, b)                                     \
  do {                                                                    \
    if (tapo::telemetry::tracing_enabled()) {                             \
      tapo::telemetry::Tracer::instance().record((kind), (ts_us), (a), (b)); \
    }                                                                     \
  } while (0)
#else
#define TAPO_TRACE(kind, ts_us, a, b) \
  do {                                \
  } while (0)
#endif
