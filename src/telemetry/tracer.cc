#include "telemetry/tracer.h"

#include <algorithm>

#include "telemetry/json.h"

namespace tapo::telemetry {

namespace detail {
thread_local std::uint64_t t_flow = 0;
thread_local bool t_flow_sampled = true;
}  // namespace detail

namespace {

/// Thread-local shard cache. The epoch detects Tracer::reset(): stale
/// cached pointers are discarded instead of dereferenced.
struct ShardCache {
  void* shard = nullptr;
  std::uint64_t epoch = 0;
};
thread_local ShardCache t_shard_cache;

}  // namespace

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kSegmentTx: return "segment_tx";
    case EventKind::kAckRx: return "ack_rx";
    case EventKind::kRtoFire: return "rto_fire";
    case EventKind::kTlpProbe: return "tlp_probe";
    case EventKind::kSrtoProbe: return "srto_probe";
    case EventKind::kPersistProbe: return "persist_probe";
    case EventKind::kInvariantViolation: return "invariant_violation";
    case EventKind::kCwnd: return "cwnd";
    case EventKind::kCaState: return "ca_state";
    case EventKind::kStallSpan: return "stall";
    case EventKind::kFlowFinalize: return "flow_finalize";
    case EventKind::kFlowEvict: return "flow_evict";
    case EventKind::kFlowTruncate: return "flow_truncate";
    case EventKind::kFlowDone: return "flow_done";
    case EventKind::kRunBegin: return "run_begin";
    case EventKind::kRunEnd: return "run_end";
  }
  return "?";
}

unsigned category_of(EventKind k) {
  switch (k) {
    case EventKind::kSegmentTx:
    case EventKind::kAckRx:
      return kPackets;
    case EventKind::kRtoFire:
    case EventKind::kTlpProbe:
    case EventKind::kSrtoProbe:
    case EventKind::kPersistProbe:
    case EventKind::kInvariantViolation:
    case EventKind::kCwnd:
    case EventKind::kCaState:
    case EventKind::kStallSpan:
      return kControl;
    case EventKind::kFlowFinalize:
    case EventKind::kFlowEvict:
    case EventKind::kFlowTruncate:
    case EventKind::kFlowDone:
    case EventKind::kRunBegin:
    case EventKind::kRunEnd:
      return kLifecycle;
  }
  return kControl;
}

// Mirrors analysis::to_string(StallCause/RetransCause); telemetry_test
// asserts the mirror holds.
const char* stall_cause_name(std::uint8_t cause) {
  switch (cause) {
    case 0: return "data_unavailable";
    case 1: return "resource_constraint";
    case 2: return "client_idle";
    case 3: return "zero_rwnd";
    case 4: return "packet_delay";
    case 5: return "retransmission";
    case 6: return "undetermined";
  }
  return "?";
}

const char* retrans_cause_name(std::uint8_t cause) {
  switch (cause) {
    case 0: return "double_retrans";
    case 1: return "tail_retrans";
    case 2: return "small_cwnd";
    case 3: return "small_rwnd";
    case 4: return "continuous_loss";
    case 5: return "ack_delay_loss";
    case 6: return "undetermined";
    case 7: return "none";
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::set_shard_capacity(std::size_t events) {
  util::MutexLock lock(mu_);
  capacity_ = std::max<std::size_t>(events, 16);
}

std::size_t Tracer::shard_capacity() const {
  util::MutexLock lock(mu_);
  return capacity_;
}

bool Tracer::should_record(EventKind kind) const {
  if (!enabled()) return false;
  if (!(category_of(kind) & categories())) return false;
  return detail::t_flow_sampled;
}

Tracer::Shard* Tracer::shard_for_this_thread() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (t_shard_cache.shard != nullptr && t_shard_cache.epoch == epoch) {
    return static_cast<Shard*>(t_shard_cache.shard);
  }
  util::MutexLock lock(mu_);
  auto shard = std::make_unique<Shard>();
  shard->cap = capacity_;
  shard->ring.reserve(capacity_);
  Shard* raw = shard.get();
  shards_.push_back(std::move(shard));
  t_shard_cache = {raw, epoch};
  return raw;
}

void Tracer::record(EventKind kind, std::int64_t ts_us, std::uint64_t a,
                    std::uint64_t b) {
  if (!should_record(kind)) return;
  Shard* shard = shard_for_this_thread();
  TraceEvent ev;
  ev.ts_us = ts_us;
  ev.flow = detail::t_flow;
  ev.a = a;
  ev.b = b;
  ev.kind = kind;
  const std::size_t cap = shard->cap;
  if (shard->ring.size() < cap) {
    shard->ring.push_back(ev);
  } else {
    shard->ring[shard->head] = ev;  // wrap: overwrite the oldest
  }
  shard->head = (shard->head + 1) % cap;
  ++shard->recorded;
}

std::uint32_t Tracer::begin_run(const std::string& label) {
  util::MutexLock lock(mu_);
  run_labels_.push_back(label);
  return static_cast<std::uint32_t>(run_labels_.size());
}

std::vector<TraceEvent> Tracer::collect() const {
  std::vector<TraceEvent> all;
  {
    util::MutexLock lock(mu_);
    for (const auto& shard : shards_) {
      all.insert(all.end(), shard->ring.begin(), shard->ring.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const TraceEvent& x, const TraceEvent& y) {
    if (x.flow != y.flow) return x.flow < y.flow;
    return x.ts_us < y.ts_us;
  });
  return all;
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    dropped += shard->recorded - shard->ring.size();
  }
  return dropped;
}

void Tracer::reset() {
  util::MutexLock lock(mu_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  shards_.clear();
  run_labels_.clear();
}

namespace {

std::uint32_t run_of(const TraceEvent& ev) {
  return static_cast<std::uint32_t>(ev.flow >> 32);
}
std::uint32_t index_of(const TraceEvent& ev) {
  return static_cast<std::uint32_t>(ev.flow & 0xffffffffu);
}

/// Decoded kStallSpan payload (see events.h for the packing).
struct StallFields {
  std::uint8_t cause, retrans_cause, state;
  bool f_double;
  std::uint32_t in_flight;
};
StallFields decode_stall(const TraceEvent& ev) {
  return {static_cast<std::uint8_t>(ev.b & 0xff),
          static_cast<std::uint8_t>((ev.b >> 8) & 0xff),
          static_cast<std::uint8_t>((ev.b >> 16) & 0xff),
          ((ev.b >> 24) & 0x1) != 0,
          static_cast<std::uint32_t>(ev.b >> 32)};
}

std::string stall_span_name(const TraceEvent& ev) {
  const StallFields f = decode_stall(ev);
  std::string name = "stall:";
  name += stall_cause_name(f.cause);
  if (stall_cause_name(f.cause) == std::string("retransmission")) {
    name += "/";
    name += retrans_cause_name(f.retrans_cause);
  }
  return name;
}

}  // namespace

void Tracer::export_chrome_trace(std::ostream& os) const {
  const auto events = collect();
  std::vector<std::string> labels;
  {
    util::MutexLock lock(mu_);
    labels = run_labels_;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) os << ",";
    first = false;
    os << "\n" << body;
  };
  for (std::size_t r = 0; r < labels.size(); ++r) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(r + 1) + ",\"tid\":0,\"args\":{\"name\":" +
         json_quote(labels[r]) + "}}");
  }
  for (const TraceEvent& ev : events) {
    const std::string pid = std::to_string(run_of(ev));
    const std::string tid = std::to_string(index_of(ev));
    const std::string ts = std::to_string(ev.ts_us);
    switch (ev.kind) {
      case EventKind::kStallSpan: {
        const StallFields f = decode_stall(ev);
        emit("{\"name\":" + json_quote(stall_span_name(ev)) +
             ",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":" + ts +
             ",\"dur\":" + std::to_string(ev.a) + ",\"pid\":" + pid +
             ",\"tid\":" + tid + ",\"args\":{\"cause\":" +
             json_quote(stall_cause_name(f.cause)) + ",\"retrans_cause\":" +
             json_quote(retrans_cause_name(f.retrans_cause)) +
             ",\"in_flight\":" + std::to_string(f.in_flight) +
             ",\"f_double\":" + (f.f_double ? "true" : "false") + "}}");
        break;
      }
      case EventKind::kCwnd:
        // Counter track per flow: cwnd/ssthresh plotted over sim time.
        emit("{\"name\":\"cwnd[f" + tid + "]\",\"ph\":\"C\",\"ts\":" + ts +
             ",\"pid\":" + pid + ",\"tid\":" + tid +
             ",\"args\":{\"cwnd\":" + std::to_string(ev.a) +
             ",\"ssthresh\":" + std::to_string(ev.b) + "}}");
        break;
      default:
        emit("{\"name\":" + json_quote(to_string(ev.kind)) +
             ",\"cat\":\"tapo\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" + ts +
             ",\"pid\":" + pid + ",\"tid\":" + tid +
             ",\"args\":{\"a\":" + std::to_string(ev.a) +
             ",\"b\":" + std::to_string(ev.b) + "}}");
        break;
    }
  }
  os << "\n]}\n";
}

void Tracer::export_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : collect()) {
    os << "{\"kind\":" << json_quote(to_string(ev.kind))
       << ",\"run\":" << run_of(ev) << ",\"flow\":" << index_of(ev)
       << ",\"ts_us\":" << ev.ts_us;
    if (ev.kind == EventKind::kStallSpan) {
      const StallFields f = decode_stall(ev);
      os << ",\"dur_us\":" << ev.a
         << ",\"cause\":" << json_quote(stall_cause_name(f.cause))
         << ",\"retrans_cause\":" << json_quote(retrans_cause_name(f.retrans_cause))
         << ",\"in_flight\":" << f.in_flight;
    } else {
      os << ",\"a\":" << ev.a << ",\"b\":" << ev.b;
    }
    os << "}\n";
  }
}

FlowScope::FlowScope(std::uint64_t flow_id)
    : prev_flow_(detail::t_flow), prev_sampled_(detail::t_flow_sampled) {
  detail::t_flow = flow_id;
  const std::uint64_t every = Tracer::instance().sample_every();
  detail::t_flow_sampled = (flow_id & 0xffffffffu) % every == 0;
}

FlowScope::~FlowScope() {
  detail::t_flow = prev_flow_;
  detail::t_flow_sampled = prev_sampled_;
}

}  // namespace tapo::telemetry
