#include "telemetry/telemetry.h"

namespace tapo::telemetry {

namespace detail {
#if TAPO_TELEMETRY
std::atomic<bool> g_metrics_enabled{false};
#endif
}  // namespace detail

void set_metrics_enabled(bool on) {
#if TAPO_TELEMETRY
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void enable_all() {
  set_metrics_enabled(true);
  Tracer::instance().set_enabled(true);
}

void disable_and_reset_all() {
  set_metrics_enabled(false);
  Tracer::instance().set_enabled(false);
  Tracer::instance().reset();
  Registry::instance().reset();
}

}  // namespace tapo::telemetry
