// Typed trace-event vocabulary for the telemetry tracer.
//
// Events are small PODs so the per-thread ring buffers stay cache-friendly:
// a kind, a timestamp on the simulation/capture timeline, the flow the event
// belongs to, and two generic payload words whose meaning depends on the
// kind (documented per enumerator). Exporters decode the payload into
// Chrome-trace / JSONL fields.
#pragma once

#include <cstdint>

namespace tapo::telemetry {

enum class EventKind : std::uint8_t {
  // -- packet-level (category kPackets; high volume, off by default) --
  kSegmentTx,    // a = seq, b = len | (retrans ? 1ull << 63 : 0)
  kAckRx,        // a = ack, b = rwnd bytes
  // -- TCP control plane (category kControl) --
  kRtoFire,      // a = backed-off RTO in us, b = packets_out
  kTlpProbe,     // a = PTO in us
  kSrtoProbe,    // a = probe seq, b = cwnd after conditional halving
  kPersistProbe, // a = probe seq
  kInvariantViolation,  // a = tcp::InvariantKind, b = seq
  kCwnd,         // a = cwnd segments, b = ssthresh segments
  kCaState,      // a = tcp::CaState
  // -- analyzer (category kControl) --
  // a = duration us; b = StallCause | RetransCause << 8 | state << 16 |
  //     f_double << 24 | in_flight << 32
  kStallSpan,
  // -- flow / run lifecycle (category kLifecycle) --
  kFlowFinalize, // live analyzer finalized a flow; a = packets buffered
  kFlowEvict,    // table-full LRU eviction (finalize follows); a = packets
  kFlowTruncate, // per-flow packet cap hit; a = packets
  kFlowDone,     // runner finished a flow; a = sim packets, b = completed
  kRunBegin,     // a = flows in the run
  kRunEnd,       // a = flows emitted
};

/// Category bits for runtime filtering (Tracer::set_categories).
enum Category : unsigned {
  kPackets = 1u << 0,
  kControl = 1u << 1,
  kLifecycle = 1u << 2,
};

const char* to_string(EventKind k);
unsigned category_of(EventKind k);

/// Names for the cause bytes packed into kStallSpan's payload. Kept here so
/// the exporter needs no dependency on tapo_core; telemetry_test asserts
/// they match analysis::to_string enumerator for enumerator.
const char* stall_cause_name(std::uint8_t cause);
const char* retrans_cause_name(std::uint8_t cause);

struct TraceEvent {
  std::int64_t ts_us = 0;   // simulation / capture timeline
  std::uint64_t flow = 0;   // run_id << 32 | flow_index
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  EventKind kind = EventKind::kFlowDone;
};

}  // namespace tapo::telemetry
