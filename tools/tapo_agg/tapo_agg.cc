// tapo_agg: fleet aggregation CLI.
//
//   tapo_agg emit --out=<dir> [--shards=N] [--flows=N] [--seed=N]
//       Simulates N server shards (all three calibrated service profiles
//       each) and writes one binary flow-record file per shard:
//       <dir>/shard-<id>.tflr. Deterministic for a given seed.
//
//   tapo_agg merge [--window-s=N] [--prom=<file>] [--ingest-dir=<dir>]
//                  [file...]
//       Ingests shard record files (every *.tflr under --ingest-dir, in
//       sorted name order, plus any positional paths), merges them into
//       one fleet view, and prints the ASCII fleet report to stdout.
//       --prom additionally writes the fleet metrics as a Prometheus text
//       exposition via the telemetry registry.
//
// Robustness: a corrupt or truncated shard file is *reported* (typed error
// + byte offset on stderr) and its valid record prefix is still ingested;
// only an unreadable file is a hard failure. The merged view is identical
// for any order/grouping of the same shard files (DESIGN.md §13).
//
// Flag values are parsed strictly (util::parse_positive_size/parse_u64):
// malformed values are a usage error, not a silent fallback, because a CLI
// typo — unlike an inherited environment variable — is always a mistake.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/record.h"
#include "fleet/record_sink.h"
#include "fleet/window.h"
#include "telemetry/registry.h"
#include "util/env.h"
#include "util/time.h"
#include "workload/experiment.h"
#include "workload/profiles.h"
#include "workload/runner.h"

using namespace tapo;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s emit --out=<dir> [--shards=N] [--flows=N] [--seed=N]\n"
      "       %s merge [--window-s=N] [--prom=<file>] [--ingest-dir=<dir>] "
      "[file...]\n",
      argv0, argv0);
  return 1;
}

/// Returns the value of --<name>=<value> when `arg` matches, else nullopt.
std::optional<std::string> flag_value(const std::string& arg,
                                      const std::string& name) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return std::nullopt;
  return arg.substr(prefix.size());
}

// ------------------------------------------------------------------ emit

int run_emit(const std::vector<std::string>& args, const char* argv0) {
  std::string out_dir;
  std::size_t shards = 4;
  std::size_t flows = 50;
  std::uint64_t seed = 2015;
  for (const auto& arg : args) {
    if (auto v = flag_value(arg, "out")) {
      out_dir = *v;
    } else if (auto s = flag_value(arg, "shards")) {
      const auto parsed = util::parse_positive_size(*s);
      if (!parsed) {
        std::fprintf(stderr, "tapo_agg: bad --shards=%s\n", s->c_str());
        return usage(argv0);
      }
      shards = *parsed;
    } else if (auto f = flag_value(arg, "flows")) {
      const auto parsed = util::parse_positive_size(*f);
      if (!parsed) {
        std::fprintf(stderr, "tapo_agg: bad --flows=%s\n", f->c_str());
        return usage(argv0);
      }
      flows = *parsed;
    } else if (auto sd = flag_value(arg, "seed")) {
      const auto parsed = util::parse_u64(*sd);
      if (!parsed) {
        std::fprintf(stderr, "tapo_agg: bad --seed=%s\n", sd->c_str());
        return usage(argv0);
      }
      seed = *parsed;
    } else {
      std::fprintf(stderr, "tapo_agg: unknown emit argument %s\n",
                   arg.c_str());
      return usage(argv0);
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr, "tapo_agg: emit needs --out=<dir>\n");
    return usage(argv0);
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "tapo_agg: cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    const auto path = std::filesystem::path(out_dir) /
                      ("shard-" + std::to_string(shard) + ".tflr");
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "tapo_agg: cannot open %s for writing\n",
                   path.string().c_str());
      return 1;
    }
    fleet::RecordWriter writer(os);
    for (auto svc : {workload::Service::kCloudStorage,
                     workload::Service::kSoftwareDownload,
                     workload::Service::kWebSearch}) {
      auto cfg = workload::ExperimentConfig{}
                     .with_profile(workload::profile_for(svc))
                     .with_flows(flows)
                     .with_seed(seed + shard)
                     .with_analysis(true);
      fleet::RecordSink sink(
          writer,
          fleet::RecordSinkConfig{}
              .with_shard_id(shard)
              .with_service(static_cast<std::uint8_t>(svc))
              // Stagger shards so their windows interleave at merge time.
              .with_base_time_us(static_cast<std::int64_t>(shard) * 250'000)
              .with_flow_spacing(Duration::millis(500)));
      workload::ParallelRunner runner(cfg);
      runner.run(sink);
    }
    std::printf("wrote %s: %llu records, %llu bytes\n", path.string().c_str(),
                static_cast<unsigned long long>(writer.records()),
                static_cast<unsigned long long>(writer.bytes()));
  }
  return 0;
}

// ----------------------------------------------------------------- merge

int run_merge(const std::vector<std::string>& args, const char* argv0) {
  std::vector<std::string> files;
  std::string prom_path;
  std::int64_t window_s = 60;
  for (const auto& arg : args) {
    if (auto w = flag_value(arg, "window-s")) {
      const auto parsed = util::parse_positive_size(*w);
      if (!parsed) {
        std::fprintf(stderr, "tapo_agg: bad --window-s=%s\n", w->c_str());
        return usage(argv0);
      }
      window_s = static_cast<std::int64_t>(*parsed);
    } else if (auto p = flag_value(arg, "prom")) {
      prom_path = *p;
    } else if (auto d = flag_value(arg, "ingest-dir")) {
      const fleet::ListResult listing = fleet::collect_record_files(*d);
      if (!listing.ok()) {
        std::fprintf(stderr, "tapo_agg: %s\n", listing.error.c_str());
        return 1;
      }
      files.insert(files.end(), listing.files.begin(), listing.files.end());
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tapo_agg: unknown merge argument %s\n",
                   arg.c_str());
      return usage(argv0);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "tapo_agg: merge needs record files (positional or "
                         "--ingest-dir=<dir>)\n");
    return usage(argv0);
  }

  fleet::WindowAggregator agg(
      fleet::FleetConfig{}.with_window(Duration::micros(window_s * 1'000'000)));
  bool hard_failure = false;
  for (const auto& file : files) {
    const auto result = fleet::read_record_file(file);
    if (result.error.has_value()) {
      std::fprintf(stderr, "tapo_agg: %s: %s at offset %llu%s%s\n",
                   file.c_str(), fleet::to_string(result.error->kind),
                   static_cast<unsigned long long>(result.error->offset),
                   result.error->detail.empty() ? "" : ": ",
                   result.error->detail.c_str());
      if (result.error->kind == fleet::RecordErrorKind::kIoError) {
        hard_failure = true;
        continue;
      }
      std::fprintf(stderr, "tapo_agg: %s: ingesting the %zu-record valid "
                           "prefix\n",
                   file.c_str(), result.records.size());
    }
    agg.ingest(result.records);
    std::printf("ingested %s: %zu records\n", file.c_str(),
                result.records.size());
  }

  const fleet::FleetSnapshot& snap = agg.snapshot();
  std::printf("\n%s", fleet::render_fleet_report(snap).c_str());

  if (!prom_path.empty()) {
    auto& registry = telemetry::Registry::instance();
    registry.reset();
    fleet::publish_fleet_metrics(snap);
    std::ofstream os(prom_path);
    if (!os) {
      std::fprintf(stderr, "tapo_agg: cannot open %s for writing\n",
                   prom_path.c_str());
      return 1;
    }
    registry.export_prometheus(os);
    std::printf("\nwrote prometheus metrics to %s\n", prom_path.c_str());
  }

  if (hard_failure) return 1;
  return snap.records == 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (mode == "emit") return run_emit(args, argv[0]);
  if (mode == "merge") return run_merge(args, argv[0]);
  std::fprintf(stderr, "tapo_agg: unknown mode %s\n", mode.c_str());
  return usage(argv[0]);
}
