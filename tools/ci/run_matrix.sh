#!/usr/bin/env bash
# CI entry point: build + test the full configuration matrix.
#
#   tools/ci/run_matrix.sh            # every configuration
#   tools/ci/run_matrix.sh default    # one configuration by name
#   tools/ci/run_matrix.sh lint asan  # any subset
#
# Configurations:
#   lint     tapo_lint self-test + full-tree lint, plus clang-tidy when
#            available (with CI=1 a missing clang-tidy fails the build —
#            see the tidy target in CMakeLists.txt)
#   default  plain RelWithDebInfo build, full ctest
#   asan     -fsanitize=address, full ctest
#   ubsan    -fsanitize=undefined, full ctest
#   tsan     -fsanitize=thread, full ctest (includes the runner_parallel_tsan
#            and telemetry_tsan race-check entries)
#   robustness  -fsanitize=address, `robustness`-labeled tests only: the
#            capture-channel/degradation suites plus the differential
#            stability harness (bench/robustness_stability.cc), so fault
#            injection runs under ASan without repeating the full sweep
#   fleet    -fsanitize=address, `fleet`-labeled tests only: the fleet
#            record/sketch/window suites (corruption property tests under
#            ASan), the fleet_scale merge-determinism harness, and the
#            tapo_agg emit -> merge -> prometheus-validate smoke chain
#   streaming  -fsanitize=address, `streaming`-labeled tests only: the
#            chunked-vs-batch bit-equivalence suites plus the
#            streaming_scale peak-residency gate, so the chunk-lifetime
#            and budget-eviction paths run under ASan
#

# Each configuration gets its own build tree under build-ci/ so sanitizer
# flags never bleed between them.
set -euo pipefail

cd "$(dirname "$0")/../.."

JOBS="${JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(lint default asan ubsan tsan robustness fleet streaming)
fi

build_and_test() {
  local name="$1" sanitize="$2" label="${3:-}"
  local dir="build-ci/${name}"
  echo "=== [${name}] configure (TAPO_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DTAPO_SANITIZE="${sanitize}" -DTAPO_WERROR=ON
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  if [ -n "${label}" ]; then
    echo "=== [${name}] ctest -L ${label} ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L "${label}"
  else
    echo "=== [${name}] ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

for cfg in "${CONFIGS[@]}"; do
  case "${cfg}" in
    lint)
      dir="build-ci/lint"
      cmake -B "${dir}" -S . -DTAPO_WERROR=ON
      cmake --build "${dir}" -j "${JOBS}" --target tapo_lint
      "${dir}"/tools/tapo_lint/tapo_lint --self-test tools/tapo_lint/fixtures
      cmake --build "${dir}" --target lint
      # tidy is part of the lint job: clang-tidy runs when installed; under
      # CI=1 a missing binary is a hard failure instead of a silent skip.
      cmake --build "${dir}" --target tidy
      ;;
    default) build_and_test default "" ;;
    asan)    build_and_test asan address ;;
    ubsan)   build_and_test ubsan undefined ;;
    tsan)    build_and_test tsan thread ;;
    robustness) build_and_test robustness address robustness ;;
    fleet)   build_and_test fleet address fleet ;;
    streaming) build_and_test streaming address streaming ;;
    *)
      echo "unknown configuration: ${cfg}" >&2
      exit 2
      ;;
  esac
done

echo "=== matrix OK: ${CONFIGS[*]} ==="
