#!/usr/bin/env bash
# CI entry point: build + test the full configuration matrix.
#
#   tools/ci/run_matrix.sh            # every configuration
#   tools/ci/run_matrix.sh default    # one configuration by name
#   tools/ci/run_matrix.sh lint asan  # any subset
#
# Configurations:
#   lint     tapo_lint self-test + full-tree lint, plus clang-tidy when
#            available (with CI=1 a missing clang-tidy fails the build —
#            see the tidy target in CMakeLists.txt)
#   default  plain RelWithDebInfo build, full ctest
#   asan     -fsanitize=address, full ctest
#   ubsan    -fsanitize=undefined, full ctest
#   tsan     -fsanitize=thread, full ctest (includes the runner_parallel_tsan
#            and telemetry_tsan race-check entries), then an explicit
#            `concurrency`-labeled pass: the annotated-mutex API tests and
#            the Registry/SharedLiveAnalyzer/FleetAggregator lock-contention
#            stress suites race-checked under TSan
#   thread-safety  Clang-only static gate: builds with clang++ and
#            -DTAPO_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety
#            over the TAPO_* capability annotations, plus the configure-time
#            positive/negative try_compile probes), then runs the
#            `concurrency` label. Skipped loudly when clang++ is not
#            installed — unless CI is set, where missing clang++ is a hard
#            failure instead of a silent skip
#   robustness  -fsanitize=address, `robustness`-labeled tests only: the
#            capture-channel/degradation suites plus the differential
#            stability harness (bench/robustness_stability.cc), so fault
#            injection runs under ASan without repeating the full sweep
#   fleet    -fsanitize=address, `fleet`-labeled tests only: the fleet
#            record/sketch/window suites (corruption property tests under
#            ASan), the fleet_scale merge-determinism harness, and the
#            tapo_agg emit -> merge -> prometheus-validate smoke chain
#   streaming  -fsanitize=address, `streaming`-labeled tests only: the
#            chunked-vs-batch bit-equivalence suites plus the
#            streaming_scale peak-residency gate, so the chunk-lifetime
#            and budget-eviction paths run under ASan
#   chaos    `chaos`-labeled tests under BOTH -fsanitize=address and
#            -fsanitize=undefined: the chaos-engine gate suites
#            (tests/chaos_test.cc) and the differential storm harness
#            (bench/chaos_storm.cc) — hostile-network paths are exactly
#            where latent memory and UB bugs hide, so the storm runs
#            instrumented both ways without repeating the full sweep
#

# Each configuration gets its own build tree under build-ci/ so sanitizer
# flags never bleed between them.
set -euo pipefail

cd "$(dirname "$0")/../.."

JOBS="${JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(lint default asan ubsan tsan thread-safety robustness fleet streaming chaos)
fi

build_and_test() {
  local name="$1" sanitize="$2" label="${3:-}"
  local dir="build-ci/${name}"
  echo "=== [${name}] configure (TAPO_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DTAPO_SANITIZE="${sanitize}" -DTAPO_WERROR=ON
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  if [ -n "${label}" ]; then
    echo "=== [${name}] ctest -L ${label} ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L "${label}"
  else
    echo "=== [${name}] ctest ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
  fi
}

for cfg in "${CONFIGS[@]}"; do
  case "${cfg}" in
    lint)
      dir="build-ci/lint"
      cmake -B "${dir}" -S . -DTAPO_WERROR=ON
      cmake --build "${dir}" -j "${JOBS}" --target tapo_lint
      "${dir}"/tools/tapo_lint/tapo_lint --self-test tools/tapo_lint/fixtures
      cmake --build "${dir}" --target lint
      # tidy is part of the lint job: clang-tidy runs when installed; under
      # CI=1 a missing binary is a hard failure instead of a silent skip.
      cmake --build "${dir}" --target tidy
      ;;
    default) build_and_test default "" ;;
    asan)    build_and_test asan address ;;
    ubsan)   build_and_test ubsan undefined ;;
    tsan)
      build_and_test tsan thread
      # The full sweep above already ran every test instrumented; this
      # labeled pass gives CI one stable race-check gate to point at.
      echo "=== [tsan] ctest -L concurrency ==="
      ctest --test-dir build-ci/tsan --output-on-failure -j "${JOBS}" \
        -L concurrency
      ;;
    thread-safety)
      dir="build-ci/thread-safety"
      if command -v clang++ >/dev/null 2>&1; then
        echo "=== [thread-safety] configure (clang++, -Werror=thread-safety) ==="
        cmake -B "${dir}" -S . -DCMAKE_CXX_COMPILER=clang++ \
          -DTAPO_THREAD_SAFETY=ON -DTAPO_WERROR=ON
        echo "=== [thread-safety] build ==="
        cmake --build "${dir}" -j "${JOBS}"
        echo "=== [thread-safety] ctest -L concurrency ==="
        ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" \
          -L concurrency
      elif [ -n "${CI:-}" ]; then
        echo "FATAL: thread-safety config needs clang++ but it is not" \
          "installed and CI is set; the static gate cannot run" >&2
        exit 1
      else
        echo "=== [thread-safety] SKIPPED: clang++ not found (the" \
          "-Wthread-safety analysis is Clang-only; install clang to run" \
          "this configuration locally) ==="
      fi
      ;;
    robustness) build_and_test robustness address robustness ;;
    fleet)   build_and_test fleet address fleet ;;
    streaming) build_and_test streaming address streaming ;;
    chaos)
      # The storm harness reuses the asan/ubsan build trees' flags but gets
      # its own directories so the label runs stay independently cacheable.
      build_and_test chaos-asan address chaos
      build_and_test chaos-ubsan undefined chaos
      ;;
    *)
      echo "unknown configuration: ${cfg}" >&2
      exit 2
      ;;
  esac
done

echo "=== matrix OK: ${CONFIGS[*]} ==="
