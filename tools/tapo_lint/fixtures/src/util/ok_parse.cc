// Fixture: src/util/ implements the validated parse helpers, so the
// naked-parse rule must not fire on the primitives it wraps.
#include <cstdlib>

namespace fixture {
long primitive(const char* s) { return std::strtol(s, nullptr, 10); }
}  // namespace fixture
