// Fixture: trace-retain is exempt inside src/net/ — the trace/chunk layer
// itself is the sanctioned home of arena retention (TraceBuilder's
// attachment pointer, ChunkedTrace's open-chunk state).
namespace tapo::net {

class PacketTrace;

class TraceBuilderLike {
 private:
  PacketTrace* trace_ = nullptr;  // fine here: the layer manages lifetime
};

}  // namespace tapo::net
