// Fixture: raw standard-library lock primitives outside util/. Everything
// here must go through the annotated util::Mutex / util::MutexLock /
// util::CondVar wrappers instead so -Wthread-safety sees the acquisition.
#include <condition_variable>
#include <mutex>

namespace fixture {

int counter;

int bump() {
  static std::mutex mu;                  // expect-lint: lock-discipline
  std::lock_guard<std::mutex> lock(mu);  // expect-lint: lock-discipline
  return ++counter;
}

void wait_ready(std::condition_variable& cv,       // expect-lint: lock-discipline
                std::unique_lock<std::mutex>& lk)  // expect-lint: lock-discipline
{
  cv.wait(lk);
}

int drain(std::mutex& a, std::mutex& b) {  // expect-lint: lock-discipline
  std::scoped_lock lock(a, b);             // expect-lint: lock-discipline
  return counter;
}

}  // namespace fixture
