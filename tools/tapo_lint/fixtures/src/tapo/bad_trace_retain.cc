// Fixture: trace-retain — members holding a PacketTrace by pointer or
// reference outside src/net/ can dangle once the streaming pipeline seals
// or evicts the arena they point into.
namespace tapo::analysis {

class PacketTrace;  // stand-in for net::PacketTrace

class DanglingCache {
 public:
  explicit DanglingCache(PacketTrace& t) : trace_(&t) {}

 private:
  PacketTrace* trace_;  // expect-lint: trace-retain
};

class DanglingConstView {
 private:
  const PacketTrace* source_ = nullptr;  // expect-lint: trace-retain
};

class DanglingRef {
 private:
  PacketTrace& backing_;  // expect-lint: trace-retain
};

class DocumentedBorrow {
 private:
  // The owner pins the trace for this object's whole lifetime (see the
  // class contract above).
  // tapo-lint: allow(trace-retain)
  const PacketTrace* pinned_ = nullptr;
};

class OwnedOrLocalUses {
 public:
  // Parameters and locals don't outlive the call: no finding.
  void scan(const PacketTrace& trace, PacketTrace* scratch);
};

}  // namespace tapo::analysis
