#pragma once
// Fixture: mutex-typed members that no thread-safety annotation in the
// class references, next to properly guarded ones.
#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

// No annotation anywhere references mu_: the capability guards nothing the
// analysis can check.
class UnguardedCache {
 public:
  void put(std::size_t v);
  std::size_t get() const;

 private:
  mutable util::Mutex mu_;  // expect-lint: mutex-annotation
  std::size_t value_ = 0;
};

// mu_ is referenced (TAPO_EXCLUDES + TAPO_GUARDED_BY) but flush_mu_ is an
// orphan capability.
class HalfGuarded {
 public:
  void put(std::size_t v) TAPO_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  util::Mutex flush_mu_;  // expect-lint: mutex-annotation
  std::size_t value_ TAPO_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
