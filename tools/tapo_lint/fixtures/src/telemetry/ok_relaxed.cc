// Fixture: src/telemetry/ is the sanctioned home for relaxed atomics; no
// finding may fire here.
#include <atomic>

namespace fixture {
int fast_counter(std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);
}
}  // namespace fixture
