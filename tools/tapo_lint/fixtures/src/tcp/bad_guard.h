// Fixture: first directive is #include, not #pragma once.  expect-lint: pragma-once
#include <cstdint>

namespace fixture {
inline std::uint32_t id(std::uint32_t v) { return v; }
}  // namespace fixture
