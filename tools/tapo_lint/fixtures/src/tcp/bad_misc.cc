// Fixture: relaxed atomics, unseeded RNG, trace side effects and naked
// parses outside their sanctioned homes.
#include <atomic>
#include <cstdlib>
#include <random>

namespace fixture {

int counters(std::atomic<int>& v) {
  return v.load(std::memory_order_relaxed);  // expect-lint: relaxed-atomic
}

int suppressed_counter(std::atomic<int>& v) {
  // tapo-lint: allow(relaxed-atomic) — fixture: justified relaxed load
  return v.load(std::memory_order_relaxed);
}

int dice() {
  std::mt19937 gen;                          // expect-lint: raw-rand
  (void)gen;
  return std::rand() % 6;                    // expect-lint: raw-rand
}

int seeded_ok(unsigned seed) {
  std::mt19937 gen(seed);  // explicit seed: fine
  return static_cast<int>(gen());
}

int parse(const char* s) {
  return std::atoi(s);                       // expect-lint: naked-parse
}

long parse2(const char* s) {
  return std::strtoul(s, nullptr, 10);       // expect-lint: naked-parse
}

void trace(int x, long now) {
  TAPO_TRACE(kKind, now, x++, 0);            // expect-lint: trace-side-effect
  TAPO_TRACE(kKind, now, x, 0);  // plain reads: fine
  // A multi-line invocation is reported at its first line, where the
  // macro name sits, not at the line holding the mutation:
  TAPO_TRACE(kKind, now,                     // expect-lint: trace-side-effect
             x += 2,
             0);
}

}  // namespace fixture
