// Fixture: the invariant monitor may only *observe* protocol objects.
// The path contains src/tcp/invariants, so the invariant-pure rule is in
// scope; every mutable handle to an observed type must fire.
#pragma once

namespace tapo::tcp {

class TcpSender;
class TcpReceiver;
class Scoreboard;
class RtoEstimator;

void hook_mutable_ref(TcpSender& sender);  // expect-lint: invariant-pure

void hook_mutable_ptr(TcpReceiver* receiver);  // expect-lint: invariant-pure

// A const first parameter does not sanctify a mutable second one.
void hook_mixed(const TcpSender& sender,
                Scoreboard* board);  // expect-lint: invariant-pure

void hook_qualified(tapo::tcp::RtoEstimator& rto);  // expect-lint: invariant-pure

// The sanctioned observer shapes: const references and const pointers.
void ok_hook(const TcpSender& sender, const Scoreboard& board);
void ok_ptr(const TcpReceiver* receiver);

}  // namespace tapo::tcp
