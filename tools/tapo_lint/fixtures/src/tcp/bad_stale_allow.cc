// Fixture: suppression pragmas that suppress nothing (the named rule does
// not fire on the pragma's line or the one below) or name a rule the
// linter does not have, next to a live suppression that stays silent.
#include <atomic>

namespace fixture {

// tapo-lint: allow(seq-compare) — nothing here compares sequence numbers;  expect-lint: stale-allow
int idle() { return 0; }

// tapo-lint: allow(no-such-rule) — misspelled rule name;  expect-lint: stale-allow
int also_idle() { return 1; }

int live(std::atomic<int>& v) {
  // tapo-lint: allow(relaxed-atomic) — fixture: live suppression, no stale-allow
  return v.load(std::memory_order_relaxed);
}

}  // namespace fixture
