// Fixture: a fully clean header — the negative control. No rule may fire
// anywhere in this file.
#pragma once

#include <cstdint>

#include "net/seq.h"

namespace fixture {

// Sequence ordering through the sanctioned helpers, not raw operators.
inline bool in_order(tapo::net::Seq32 a, tapo::net::Seq32 b) {
  return tapo::net::at_or_before(a, b);
}

// Ordinary arithmetic comparisons on non-sequence identifiers are fine.
inline bool small(std::uint32_t payload_len) { return payload_len < 1500; }

}  // namespace fixture
