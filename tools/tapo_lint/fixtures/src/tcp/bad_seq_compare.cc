// Fixture: raw relational comparisons on sequence-number identifiers.
// Each annotated line must produce exactly the named finding.
#include <cstdint>

namespace fixture {

struct Pkt {
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
};

bool checks(std::uint32_t snd_una, std::uint32_t snd_nxt, const Pkt& pkt) {
  bool r = false;
  r |= snd_una < snd_nxt;                   // expect-lint: seq-compare
  r |= pkt.seq >= snd_una;                  // expect-lint: seq-compare
  r |= snd_nxt > pkt.ack;                   // expect-lint: seq-compare
  r |= pkt.tcp_ack() <= snd_nxt;            // expect-lint: seq-compare
  // A raw-integer comparison hiding behind an innocently named left side
  // still trips on the right operand chain.
  r |= threshold() < pkt.seq;               // expect-lint: seq-compare
  return r;
}

// Negative cases: none of these may fire.
bool fine(std::uint32_t payload_len, std::uint32_t dupacks,
          std::uint32_t back) {
  bool r = false;
  r |= payload_len > 0;         // no sequence word
  r |= dupacks >= 3;            // "dupacks" is not the segment "ack"
  r |= back < 10;               // "back" is not the segment "ack"
  // "seq < 100" inside a comment or string must not fire:
  const char* s = "seq < 100";
  r |= s != nullptr;
  return r;
}

// Template argument lists closing before a sequence-named declarator are
// declarations, not comparisons — none of these may fire:
std::vector<std::uint32_t> ack_history;
std::map<std::uint32_t, Pkt> seq_index;
std::vector<Pkt> ack_to(std::uint32_t ack);

bool suppressed(std::uint32_t seq_a, std::uint32_t seq_b) {
  // Suppression on the preceding line:
  // tapo-lint: allow(seq-compare) — fixture exercising the escape hatch
  return seq_a < seq_b;
}

}  // namespace fixture
