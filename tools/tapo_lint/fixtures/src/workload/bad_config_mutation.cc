// Fixture: direct field mutation of validated configs outside the with_*
// builders / aggregate init (config-mutation rule).
namespace fixture {

struct AnalyzerConfig {
  double tau = 2.0;  // default member initializer: fine
  unsigned dupthres = 3;
  AnalyzerConfig& with_tau(double t);
};

struct CaptureImpairments {
  double drop_prob = 0.0;
  unsigned long long seed = 0;
};

AnalyzerConfig& AnalyzerConfig::with_tau(double t) {
  tau = t;  // builder body assigns the bare field: fine
  return *this;
}

void mutate(AnalyzerConfig& cfg, CaptureImpairments& imp) {
  cfg.tau = 3.0;                 // expect-lint: config-mutation
  imp.drop_prob = 0.05;          // expect-lint: config-mutation
  imp.seed ^= 0x9e3779b9ull;     // expect-lint: config-mutation
}

void mutate_through_pointer(AnalyzerConfig* acfg) {
  acfg->dupthres += 1;           // expect-lint: config-mutation
}

void suppressed(CaptureImpairments& imp, unsigned long long flow_seed) {
  // tapo-lint: allow(config-mutation) — fixture: justified per-flow reseed
  imp.seed ^= flow_seed;
}

void fine(const AnalyzerConfig& cfg) {
  AnalyzerConfig acfg = cfg;                    // declaration init: fine
  acfg.with_tau(4.0);                           // builder call: fine
  CaptureImpairments imp{.drop_prob = 0.01};    // designated init: fine
  const bool eq = cfg.tau == 2.0;               // comparisons: fine
  const bool le = cfg.tau <= 2.0;
  (void)imp;
  (void)eq;
  (void)le;
}

class Holder {
 public:
  // A class mutating its own config_ member through a sanctioned setter is
  // not a config in flight: fine.
  void set_tau(double t) { config_.tau = t; }

 private:
  AnalyzerConfig config_;
};

}  // namespace fixture
