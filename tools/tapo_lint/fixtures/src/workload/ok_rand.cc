// Fixture: src/workload/ owns RNG construction (it builds the seeded
// generators for everyone else); the raw-rand rule is off here.
#include <random>

namespace fixture {
unsigned roll() {
  std::mt19937 gen;
  return static_cast<unsigned>(gen());
}
}  // namespace fixture
