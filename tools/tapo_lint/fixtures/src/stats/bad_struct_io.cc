// raw-struct-io fixtures: raw struct images written to files or copied
// into byte buffers outside the sanctioned serializer directories.
#include <cstdio>
#include <cstring>

struct Sample {
  int a;
  double b;
};

void bad_fwrite(std::FILE* fp, const Sample& s) {
  std::fwrite(&s, sizeof(s), 1, fp);  // expect-lint: raw-struct-io
}

void bad_fread(std::FILE* fp, Sample& s) {
  std::fread(&s, sizeof(s), 1, fp);  // expect-lint: raw-struct-io
}

void bad_fwrite_unqualified(std::FILE* fp, const Sample& s) {
  fwrite(&s, sizeof(Sample), 1, fp);  // expect-lint: raw-struct-io
}

void bad_memcpy_image(unsigned char* buf, const Sample& s) {
  std::memcpy(buf, &s, sizeof(s));  // expect-lint: raw-struct-io
}

void ok_memcpy_bytes(unsigned char* dst, const unsigned char* src,
                     unsigned long n) {
  // A byte-count copy is not a struct image; no finding.
  std::memcpy(dst, src, n);
}

void ok_suppressed(std::FILE* fp, const Sample& s) {
  // legacy import path, format documented elsewhere:
  // tapo-lint: allow(raw-struct-io)
  std::fwrite(&s, sizeof(s), 1, fp);
}
