// src/fleet/ is a sanctioned home of binary struct I/O (the versioned,
// CRC-framed record codec): the raw-struct-io rule must stay silent here.
#include <cstdio>
#include <cstring>

struct WireHeader {
  unsigned char magic[4];
  unsigned short version;
};

void sanctioned_write(std::FILE* fp, const WireHeader& h) {
  std::fwrite(&h, sizeof(h), 1, fp);
}

void sanctioned_copy(unsigned char* buf, const WireHeader& h) {
  std::memcpy(buf, &h, sizeof(h));
}
