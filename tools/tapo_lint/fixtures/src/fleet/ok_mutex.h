#pragma once
// Fixture: properly annotated shared state — the mutex member is
// referenced by TAPO_GUARDED_BY/TAPO_EXCLUDES and only the annotated
// wrappers are used, so no finding may fire here.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fixture {

class GuardedCounter {
 public:
  void add(std::uint64_t n) TAPO_EXCLUDES(mu_);
  std::uint64_t total() const TAPO_EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::uint64_t total_ TAPO_GUARDED_BY(mu_) = 0;
};

inline void touch(GuardedCounter& c) { c.add(1); }

}  // namespace fixture
