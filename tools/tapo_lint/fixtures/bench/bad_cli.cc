// Fixture: bench binaries must route CLI/env numbers through the util
// validated-parse helpers.
#include <cstdlib>

namespace fixture {
int flows(const char* arg) {
  return std::atoi(arg);  // expect-lint: naked-parse
}
}  // namespace fixture
