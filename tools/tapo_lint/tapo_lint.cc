// tapo_lint — project-specific static checks the type system alone cannot
// express, as a single self-contained token-level pass (no libclang).
//
// v2 is symbol-aware: before the per-line rules run, a structural pass
// builds a per-class member table (class spans by brace depth, mutex-typed
// members, and the capability names referenced by TAPO_* thread-safety
// annotations anywhere in the class body). Rules that need to know "which
// class am I in" and "what does it guard" consume that table instead of
// squinting at single lines.
//
// Rules (see DESIGN.md "Static analysis & invariants" for rationale):
//
//   seq-compare        Relational operators (< > <= >=) applied to an
//                      identifier whose snake_case segments name a TCP
//                      sequence variable (seq, ack, una, nxt, fack, rxt).
//                      Sequence ordering must go through net/seq.h's
//                      wrap-safe helpers; a raw comparison silently breaks
//                      on flows crossing the 2^32 wrap. net/seq.h itself
//                      (the one sanctioned home of serial arithmetic) is
//                      exempt.
//   relaxed-atomic     memory_order_relaxed outside src/telemetry/. The
//                      telemetry fast path owns the only sanctioned relaxed
//                      atomics; anywhere else it is usually an unintended
//                      consistency bug.
//   raw-rand           rand()/srand()/random() or a default-seeded standard
//                      engine (std::mt19937 g;) outside src/workload/.
//                      Experiments must be reproducible from an explicit
//                      seed (util::Rng).
//   trace-side-effect  Side effects (++ / -- / assignment) inside
//                      TAPO_TRACE(...) arguments. The macro's arguments are
//                      evaluated only when tracing is enabled and compile
//                      away entirely under -DTAPO_TELEMETRY=OFF, so side
//                      effects there change behaviour between builds.
//   pragma-once        Header files must start their preprocessor life with
//                      #pragma once (the project's include-guard idiom).
//   naked-parse        atoi/strtoul/std::stoul-family calls outside
//                      src/util/. CLI/env numbers must go through the
//                      validated util parse helpers (util::parse_u64,
//                      util::env_positive_size, ...) so malformed input
//                      warns instead of silently truncating to 0.
//   config-mutation    Direct field assignment through a config-named
//                      receiver (`cfg.tau = ...`, `imp.seed ^= ...`) in
//                      src/. The validated config structs (AnalyzerConfig,
//                      LiveConfig, DemuxOptions, ExperimentConfig,
//                      CaptureImpairments) are built with aggregate init or
//                      the fluent with_* setters, both of which validate
//                      eagerly; a later field poke skips that validation.
//                      Bare assignments inside with_* bodies, designated
//                      initializers (`.field = v`), declarations with
//                      initializers and a class mutating its own `config_`
//                      member through its sanctioned setters are all exempt
//                      by construction.
//   raw-struct-io      fwrite()/fread() calls, or memcpy() with a sizeof
//                      operand (a struct image copied to/from a byte
//                      buffer), outside src/net/ and src/fleet/. Raw struct
//                      images are unversioned, unchecksummed and padding/
//                      endianness-dependent; persistent or wire data must
//                      go through the fleet record codec (versioned +
//                      CRC-framed) or the net/ packet codecs.
//   trace-retain       A PacketTrace pointer/reference stored in a member
//                      variable (trailing-underscore identifier) outside
//                      src/net/. In the streaming pipeline the arena behind
//                      such a pointer can be a sealed chunk or an evicted
//                      flow that is gone by the time the member is used;
//                      long-lived capture state must go through
//                      net::TraceBuilder (which survives arena hand-offs)
//                      or copy into an owned trace. Documented borrow-views
//                      whose lifetime contract is explicit suppress with
//                      tapo-lint: allow(trace-retain).
//   mutex-annotation   A class in src/ (outside src/util/, the annotated
//                      wrapper's home) declares a mutex-typed member that
//                      no TAPO_GUARDED_BY / TAPO_REQUIRES / TAPO_ACQUIRE /
//                      TAPO_EXCLUDES / ... annotation in the class body
//                      references. An unreferenced capability guards
//                      nothing -Wthread-safety can check: the lock exists
//                      but the invariant it protects was never written
//                      down.
//   lock-discipline    Raw std::mutex / std::lock_guard / std::unique_lock
//                      / std::scoped_lock / std::condition_variable outside
//                      util/ paths. Everything else must go through the
//                      annotated util::Mutex / util::MutexLock / util::
//                      CondVar (src/util/mutex.h) so Clang's thread-safety
//                      analysis sees every acquisition.
//   invariant-pure     A non-const reference or pointer to an observed
//                      protocol object (TcpSender, TcpReceiver, Scoreboard,
//                      RtoEstimator, CongestionControl) in the invariant
//                      monitor's files (src/tcp/invariants.*). Invariant
//                      checks are pure observers: a mutable handle would
//                      let a check perturb the very state machine it
//                      audits, and the zero-cost-when-off contract (hooks
//                      are side-effect-free) would silently break.
//   stale-allow        A `tapo-lint: allow(<rule>)` pragma that suppresses
//                      nothing — the named rule does not fire on that line
//                      or the line below — or that names a rule this
//                      linter does not have. Dead suppressions rot: the
//                      next real finding on that line would be silently
//                      swallowed. stale-allow findings are themselves
//                      unsuppressable.
//
// Suppressions: a comment containing `tapo-lint: allow(<rule>)` disables
// that rule on the same line and on the line directly below (so a
// standalone comment can annotate the statement it precedes). Every
// suppression should say why.
//
// Modes:
//   tapo_lint <file>...            lint files; findings to stdout; exit 1
//   tapo_lint --recurse <dir>...   lint every *.h/*.cc under the trees
//   tapo_lint --self-test <dir>    fixture mode: every `// expect-lint: r`
//                                  annotation must produce finding r on
//                                  that line, and no unannotated finding
//                                  may appear. Prints a one-line per-rule
//                                  coverage summary and fails if any
//                                  registered rule has no bad fixture
//                                  exercising it; exit 1 on any mismatch.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `id` is a lowercase identifier with a snake_case segment that
/// names a sequence variable. CamelCase identifiers are type names in this
/// codebase (Seq32, SeqLess) and are exempt: types appear as template
/// arguments next to '<' and '>' all the time.
bool names_sequence_var(const std::string& id) {
  static const std::set<std::string> kWords = {"seq", "ack", "una",
                                               "nxt", "fack", "rxt"};
  if (std::any_of(id.begin(), id.end(), [](char c) {
        return std::isupper(static_cast<unsigned char>(c)) != 0;
      })) {
    return false;
  }
  std::string segment;
  for (const char c : id + "_") {
    if (c == '_' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (kWords.count(segment) > 0) return true;
      segment.clear();
    } else {
      segment += c;
    }
  }
  return false;
}

/// One scanned file: per-line code with comments, string and char literals
/// blanked out (so token rules never fire inside them), plus the raw lines
/// (for suppression / fixture annotations).
struct FileText {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

FileText strip_comments(const std::string& path, const std::string& text) {
  FileText out;
  out.path = path;
  std::string raw_line, code_line;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      out.raw.push_back(raw_line);
      out.code.push_back(code_line);
      raw_line.clear();
      code_line.clear();
      if (st == State::kLineComment) st = State::kCode;
      continue;
    }
    raw_line += c;
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLineComment;
          code_line += ' ';
        } else if (c == '/' && next == '*') {
          st = State::kBlockComment;
          code_line += ' ';
        } else if (c == '"') {
          st = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          st = State::kChar;
          code_line += ' ';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        code_line += ' ';
        break;
      case State::kBlockComment:
        code_line += ' ';
        if (c == '*' && next == '/') {
          st = State::kCode;
          ++i;
          raw_line += '/';
          code_line += ' ';
        }
        break;
      case State::kString:
        code_line += ' ';
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] != '\n') {
            raw_line += text[i];
            code_line += ' ';
          }
        } else if (c == '"') {
          st = State::kCode;
        }
        break;
      case State::kChar:
        code_line += ' ';
        if (c == '\\') {
          ++i;
          if (i < text.size() && text[i] != '\n') {
            raw_line += text[i];
            code_line += ' ';
          }
        } else if (c == '\'') {
          st = State::kCode;
        }
        break;
    }
  }
  if (!raw_line.empty() || !code_line.empty()) {
    out.raw.push_back(raw_line);
    out.code.push_back(code_line);
  }
  return out;
}

std::string normalized(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return normalized(path).find(piece) != std::string::npos;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `id` names a shared analysis/experiment config value: a
/// lowercase identifier with a snake_case segment naming a config noun
/// (config, cfg, options, opts, imp, impairments) or a cfg/config suffix
/// (acfg, dup_cfg). Trailing-underscore identifiers (config_) are a class's
/// own member behind its sanctioned setters, not a config in flight, and
/// are exempt.
bool names_config_var(const std::string& id) {
  if (id.empty() || id.back() == '_') return false;
  if (std::any_of(id.begin(), id.end(), [](char c) {
        return std::isupper(static_cast<unsigned char>(c)) != 0;
      })) {
    return false;
  }
  static const std::set<std::string> kWords = {
      "config", "cfg", "options", "opts", "imp", "impairments"};
  std::string segment;
  for (const char c : id + "_") {
    if (c == '_' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (kWords.count(segment) > 0) return true;
      segment.clear();
    } else {
      segment += c;
    }
  }
  return ends_with(id, "cfg") || ends_with(id, "config");
}

/// Identifiers chained by '.' or '->' to the left of position `pos`
/// (exclusive), skipping one balanced ')' group: `b.snd_una() ` yields
/// {snd_una, b}.
std::vector<std::string> left_operand_chain(const std::string& line,
                                            std::size_t pos) {
  std::vector<std::string> ids;
  std::size_t i = pos;
  for (;;) {
    while (i > 0 && line[i - 1] == ' ') --i;
    if (i > 0 && line[i - 1] == ')') {
      int depth = 0;
      while (i > 0) {
        --i;
        if (line[i] == ')') ++depth;
        if (line[i] == '(') {
          --depth;
          if (depth == 0) break;
        }
      }
      continue;  // then read the identifier being called
    }
    std::size_t end = i;
    while (i > 0 && is_ident_char(line[i - 1])) --i;
    if (i == end) break;
    ids.push_back(line.substr(i, end - i));
    while (i > 0 && line[i - 1] == ' ') --i;
    if (i >= 2 && line[i - 2] == '-' && line[i - 1] == '>') {
      i -= 2;
    } else if (i >= 1 && line[i - 1] == '.') {
      i -= 1;
    } else {
      break;
    }
  }
  return ids;
}

/// Identifiers chained by '.' or '->' starting at/after position `pos`:
/// `pkt.tcp.seq` yields {pkt, tcp, seq}.
std::vector<std::string> right_operand_chain(const std::string& line,
                                             std::size_t pos) {
  std::vector<std::string> ids;
  std::size_t i = pos;
  for (;;) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t start = i;
    while (i < line.size() && is_ident_char(line[i])) ++i;
    if (i == start) break;
    ids.push_back(line.substr(start, i - start));
    while (i < line.size() && line[i] == ' ') ++i;
    if (i + 1 < line.size() && line[i] == '-' && line[i + 1] == '>') {
      i += 2;
    } else if (i < line.size() && line[i] == '.') {
      i += 1;
    } else {
      break;
    }
  }
  return ids;
}

/// True when the '>' at `pos` closes a template argument list rather than
/// comparing: there is a matching '<' to the left on the same line, the
/// span between them holds only type-ish tokens (identifiers, '::', commas,
/// nested angles, '*' and spaces), and the '<' directly follows an
/// identifier (`vector<`, `optional<`, ...).
bool is_template_closer(const std::string& line, std::size_t pos) {
  int depth = 1;
  for (std::size_t j = pos; j-- > 0;) {
    const char c = line[j];
    if (c == '>') {
      ++depth;
    } else if (c == '<') {
      if (--depth == 0) return j > 0 && is_ident_char(line[j - 1]);
    } else if (!is_ident_char(c) && c != ':' && c != ',' && c != '*' &&
               c != ' ') {
      return false;
    }
  }
  return false;
}

// --------------------------------------------------- class/member table

bool word_at(const std::string& line, std::size_t pos,
             const std::string& word) {
  if (line.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(line[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < line.size() && is_ident_char(line[end])) return false;
  return true;
}

/// One class/struct definition found by the structural pass.
struct ClassInfo {
  std::string name;
  int body_depth = 0;  // brace depth inside the class body
  /// Mutex-typed members: {identifier, 0-based declaration line}.
  std::vector<std::pair<std::string, std::size_t>> mutex_members;
  /// Every identifier referenced inside a TAPO_* thread-safety annotation
  /// argument list anywhere in the class body (mu_, other.mu_, ...).
  std::set<std::string> annotation_refs;
};

/// Symbol tables built once per file, shared by every symbol-aware rule.
struct FileAnalysis {
  FileText text;
  std::vector<ClassInfo> classes;
};

/// Records a mutex-typed member declared on `line` (a line whose start sits
/// at the class's body depth): optional `mutable`, a mutex type, one
/// identifier, and a terminating ';'. Pointer/reference members are skipped
/// — a borrowed mutex is annotated where it lives.
void scan_mutex_member(const std::string& line, std::size_t n,
                       ClassInfo& cls) {
  std::size_t i = line.find_first_not_of(' ');
  if (i == std::string::npos) return;
  if (word_at(line, i, "mutable")) {
    i += std::string("mutable").size();
    while (i < line.size() && line[i] == ' ') ++i;
  }
  static const std::vector<std::string> kTypes = {
      "std::mutex",        "std::timed_mutex", "std::recursive_mutex",
      "std::shared_mutex", "util::Mutex",      "Mutex"};
  for (const auto& type : kTypes) {
    if (line.compare(i, type.size(), type) != 0) continue;
    std::size_t j = i + type.size();
    if (j >= line.size() || line[j] != ' ') continue;  // Mutex& / MutexLock
    while (j < line.size() && line[j] == ' ') ++j;
    const std::size_t id_start = j;
    while (j < line.size() && is_ident_char(line[j])) ++j;
    if (j == id_start) continue;
    if (line.find(';', j) == std::string::npos) continue;  // not a decl
    cls.mutex_members.push_back({line.substr(id_start, j - id_start), n});
    return;
  }
}

/// Adds every identifier inside a TAPO_*(...) annotation argument list on
/// `line` to the class's reference set.
void collect_annotation_refs(const std::string& line, ClassInfo& cls) {
  static const std::vector<std::string> kMacros = {
      "TAPO_GUARDED_BY",  "TAPO_PT_GUARDED_BY",     "TAPO_REQUIRES",
      "TAPO_ACQUIRE",     "TAPO_RELEASE",           "TAPO_EXCLUDES",
      "TAPO_TRY_ACQUIRE", "TAPO_ASSERT_CAPABILITY", "TAPO_RETURN_CAPABILITY"};
  for (const auto& mac : kMacros) {
    for (std::size_t pos = line.find(mac); pos != std::string::npos;
         pos = line.find(mac, pos + 1)) {
      if (!word_at(line, pos, mac)) continue;
      std::size_t i = pos + mac.size();
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '(') continue;
      int depth = 0;
      for (; i < line.size(); ++i) {
        if (line[i] == '(') {
          ++depth;
        } else if (line[i] == ')') {
          if (--depth == 0) break;
        } else if (is_ident_char(line[i])) {
          const std::size_t s = i;
          while (i + 1 < line.size() && is_ident_char(line[i + 1])) ++i;
          cls.annotation_refs.insert(line.substr(s, i - s + 1));
        }
      }
    }
  }
}

/// Structural pass: tracks brace depth line by line and collects every
/// class/struct definition with its mutex members and annotation
/// references. Token-level like everything else here — template parameter
/// lists (`template <class T>`) and enum classes are recognized and
/// skipped; pathological constructs a real frontend would need are out of
/// scope for this codebase's style.
std::vector<ClassInfo> build_class_table(const FileText& f) {
  std::vector<ClassInfo> done;
  std::vector<ClassInfo> stack;
  int depth = 0;
  bool pending = false;      // saw a class/struct head, awaiting '{' or ';'
  bool name_locked = false;  // past ':' — identifiers now name bases
  std::string pending_name;
  int pending_parens = 0;  // attribute-macro args in the head
  std::string prev_tok;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    if (!stack.empty()) {
      // Members sit at the innermost class's body depth; annotations can
      // sit anywhere in its span (inline method bodies included).
      if (depth == stack.back().body_depth) {
        scan_mutex_member(line, n, stack.back());
      }
      collect_annotation_refs(line, stack.back());
    }
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (is_ident_char(c)) {
        const std::size_t s = i;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        const std::string tok = line.substr(s, i - s);
        if ((tok == "class" || tok == "struct") && prev_tok != "enum") {
          pending = true;
          name_locked = false;
          pending_name.clear();
          pending_parens = 0;
        } else if (pending && !name_locked && pending_parens == 0 &&
                   tok != "final" && tok != "alignas") {
          pending_name = tok;  // last head identifier wins (skips macros)
        }
        prev_tok = tok;
        continue;
      }
      if (pending) {
        if (c == '(') {
          ++pending_parens;
        } else if (c == ')') {
          if (pending_parens > 0) --pending_parens;
        } else if (pending_parens == 0) {
          const char prev = i > 0 ? line[i - 1] : '\0';
          const char next = i + 1 < line.size() ? line[i + 1] : '\0';
          if (c == ';') {
            pending = false;  // forward declaration
          } else if (c == ':' && prev != ':' && next != ':') {
            name_locked = true;  // base clause begins
          } else if ((c == '<' || c == '>' || c == '=') && !name_locked) {
            pending = false;  // `template <class T>` / alias, not a head
          } else if (c == '{') {
            ++depth;
            ClassInfo ci;
            ci.name = pending_name.empty() ? "<anonymous>" : pending_name;
            ci.body_depth = depth;
            stack.push_back(std::move(ci));
            pending = false;
            ++i;
            continue;
          }
        }
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (!stack.empty() && depth < stack.back().body_depth) {
          done.push_back(std::move(stack.back()));
          stack.pop_back();
        }
      }
      ++i;
    }
  }
  // Unterminated classes (truncated file): keep what was collected.
  for (auto& ci : stack) done.push_back(std::move(ci));
  return done;
}

void rule_seq_compare(const FileText& f, std::vector<Finding>& out) {
  if (ends_with(normalized(f.path), "net/seq.h")) return;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    const std::size_t first = line.find_first_not_of(' ');
    if (first != std::string::npos && line[first] == '#') continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c != '<' && c != '>') continue;
      const char prev = i > 0 ? line[i - 1] : '\0';
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      // Exclude <<, >>, ->, <<=, >>= and the digraph-free single tokens.
      if (next == c || prev == c) continue;
      if (c == '>' && prev == '-') continue;
      if (c == '>' && is_template_closer(line, i)) continue;
      std::size_t after = i + 1;
      if (next == '=') ++after;  // <= / >=
      bool hit = false;
      for (const auto& id : left_operand_chain(line, i)) {
        if (names_sequence_var(id)) hit = true;
      }
      for (const auto& id : right_operand_chain(line, after)) {
        if (names_sequence_var(id)) hit = true;
      }
      if (hit) {
        out.push_back({f.path, n + 1, "seq-compare",
                       "relational operator on a sequence-number identifier; "
                       "use net/seq.h before()/after()/at_or_before()/"
                       "at_or_after() instead"});
        break;  // one finding per line is enough
      }
    }
  }
}

void rule_relaxed_atomic(const FileText& f, std::vector<Finding>& out) {
  if (path_contains(f.path, "src/telemetry/")) return;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    if (f.code[n].find("memory_order_relaxed") != std::string::npos) {
      out.push_back({f.path, n + 1, "relaxed-atomic",
                     "memory_order_relaxed outside src/telemetry/; justify "
                     "with a tapo-lint: allow(relaxed-atomic) comment or use "
                     "a stronger ordering"});
    }
  }
}

bool word_then_paren(const std::string& line, const std::string& word) {
  for (std::size_t pos = line.find(word); pos != std::string::npos;
       pos = line.find(word, pos + 1)) {
    if (!word_at(line, pos, word)) continue;
    std::size_t i = pos + word.size();
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

void rule_raw_rand(const FileText& f, std::vector<Finding>& out) {
  if (path_contains(f.path, "src/workload/")) return;
  static const std::vector<std::string> kCalls = {"rand", "srand", "random",
                                                  "drand48"};
  static const std::vector<std::string> kEngines = {
      "mt19937", "mt19937_64", "minstd_rand", "default_random_engine"};
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    for (const auto& call : kCalls) {
      if (word_then_paren(line, call)) {
        out.push_back({f.path, n + 1, "raw-rand",
                       call + "() is unseeded/global; use util::Rng with an "
                              "explicit seed"});
        break;
      }
    }
    for (const auto& eng : kEngines) {
      for (std::size_t pos = line.find(eng); pos != std::string::npos;
           pos = line.find(eng, pos + 1)) {
        if (!word_at(line, pos, eng)) continue;
        // `std::mt19937 g;` (no seed argument) is a fixed-sequence RNG.
        std::size_t i = pos + eng.size();
        while (i < line.size() && line[i] == ' ') ++i;
        const std::size_t id_start = i;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        if (i == id_start) continue;
        while (i < line.size() && line[i] == ' ') ++i;
        if (i < line.size() && line[i] == ';') {
          out.push_back({f.path, n + 1, "raw-rand",
                         "default-constructed " + eng +
                             " has a fixed seed; pass an explicit seed "
                             "(util::Rng) so runs are reproducible on "
                             "purpose"});
        }
      }
    }
  }
}

void rule_trace_side_effect(const FileText& f, std::vector<Finding>& out) {
  // TAPO_TRACE argument lists are evaluated only when tracing is enabled
  // and vanish under -DTAPO_TELEMETRY=OFF. Find each invocation, collect
  // the balanced argument text (possibly spanning lines), and flag
  // mutations inside it. The macro definition itself (src/telemetry/) is
  // exempt.
  if (path_contains(f.path, "src/telemetry/")) return;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    // Any TAPO_TRACE* variant counts; all of them compile away.
    const std::size_t pos = line.find("TAPO_TRACE");
    if (pos == std::string::npos) continue;
    if (pos > 0 && is_ident_char(line[pos - 1])) continue;
    // Collect text until the invocation's parentheses balance out.
    std::string args;
    int depth = 0;
    bool started = false;
    for (std::size_t m = n; m < f.code.size() && (!started || depth > 0);
         ++m) {
      const std::string& l = f.code[m];
      for (std::size_t i = m == n ? pos : 0; i < l.size(); ++i) {
        if (l[i] == '(') {
          ++depth;
          started = true;
        } else if (l[i] == ')') {
          --depth;
          if (started && depth == 0) break;
        } else if (started && depth > 0) {
          args += l[i];
        }
      }
    }
    bool mutation = false;
    for (std::size_t i = 0; i < args.size() && !mutation; ++i) {
      const char c = args[i];
      const char prev = i > 0 ? args[i - 1] : '\0';
      const char next = i + 1 < args.size() ? args[i + 1] : '\0';
      if ((c == '+' && next == '+') || (c == '-' && next == '-')) {
        mutation = true;
      }
      // '=' that is not part of ==, !=, <=, >= is an assignment (compound
      // assignments like += keep their '=' and are caught here too).
      if (c == '=' && next != '=' && prev != '=' && prev != '!' &&
          prev != '<' && prev != '>') {
        mutation = true;
      }
    }
    if (mutation) {
      out.push_back({f.path, n + 1, "trace-side-effect",
                     "side effect inside TAPO_TRACE arguments; the macro "
                     "compiles away under TAPO_TELEMETRY=OFF, so behaviour "
                     "would differ between builds"});
    }
  }
}

void rule_pragma_once(const FileText& f, std::vector<Finding>& out) {
  if (!ends_with(normalized(f.path), ".h")) return;
  for (const std::string& line : f.code) {
    const std::size_t first = line.find_first_not_of(' ');
    if (first == std::string::npos) continue;
    if (line[first] != '#') {
      break;  // real code before any directive: no guard at all
    }
    if (line.find("#pragma") != std::string::npos &&
        line.find("once") != std::string::npos) {
      return;  // guarded
    }
    break;  // the first directive is something else (#include, #ifndef...)
  }
  out.push_back({f.path, 1, "pragma-once",
                 "header does not start with #pragma once (the project's "
                 "include-guard idiom)"});
}

void rule_naked_parse(const FileText& f, std::vector<Finding>& out) {
  if (path_contains(f.path, "src/util/")) return;
  static const std::vector<std::string> kParsers = {
      "atoi", "atol", "atoll", "strtol", "strtoul", "strtoull",
      "stoi", "stol", "stoll", "stoul", "stoull"};
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    for (const auto& p : kParsers) {
      if (word_then_paren(f.code[n], p)) {
        out.push_back({f.path, n + 1, "naked-parse",
                       p + "() accepts malformed input silently; use the "
                           "validated util parse helpers (util::parse_u64, "
                           "util::env_positive_size, ...)"});
        break;
      }
    }
  }
}

void rule_config_mutation(const FileText& f, std::vector<Finding>& out) {
  // The validated config structs are constructed by aggregate init or the
  // fluent with_* setters, both of which validate eagerly; assigning a
  // field through a config-named receiver afterwards skips validation.
  // Builder bodies assign the bare field (no receiver), designated
  // initializers have no receiver either, and declarations-with-init have
  // no '.' chain — all exempt by construction. src/ only: tests and
  // benches deliberately build invalid configs to test the validators.
  if (!path_contains(f.path, "src/")) return;
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    const std::size_t first = line.find_first_not_of(' ');
    if (first != std::string::npos && line[first] == '#') continue;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] != '=') continue;
      const char prev = i > 0 ? line[i - 1] : '\0';
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      // Skip comparisons: == (either half), !=, <=, >=.
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>') {
        continue;
      }
      // Compound assignments (+= ^= |= ...) mutate too; their left
      // operand ends before the operator character.
      std::size_t lhs_end = i;
      if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
          prev == '%' || prev == '^' || prev == '&' || prev == '|') {
        lhs_end = i - 1;
      }
      const auto ids = left_operand_chain(line, lhs_end);
      // Only `receiver.field = ...` (chain of >= 2) can bypass the
      // builders; a bare identifier is a declaration or a builder body.
      if (ids.size() < 2 || !names_config_var(ids.back())) continue;
      out.push_back(
          {f.path, n + 1, "config-mutation",
           "direct field mutation of a validated config (" + ids.back() +
               "." + ids.front() +
               " = ...) bypasses with_*/aggregate-init validation; use the "
               "builders or justify with tapo-lint: allow(config-mutation)"});
      break;  // one finding per line is enough
    }
  }
}

void rule_raw_struct_io(const FileText& f, std::vector<Finding>& out) {
  // src/net/ (the packet wire codecs) and src/fleet/ (the versioned,
  // CRC-framed record serializer) are the sanctioned homes of binary
  // struct I/O; anywhere else a raw struct image on disk or in a buffer is
  // an unversioned format waiting to corrupt silently.
  if (path_contains(f.path, "src/net/") ||
      path_contains(f.path, "src/fleet/")) {
    return;
  }
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    bool hit = false;
    for (const char* call : {"fwrite", "fread"}) {
      if (word_then_paren(line, call)) {
        out.push_back({f.path, n + 1, "raw-struct-io",
                       std::string(call) +
                           "() of a raw struct image is unversioned and "
                           "unchecksummed; serialize through the fleet "
                           "record codec (src/fleet/record.h) instead"});
        hit = true;
        break;
      }
    }
    if (!hit && word_then_paren(line, "memcpy") &&
        line.find("sizeof") != std::string::npos) {
      out.push_back({f.path, n + 1, "raw-struct-io",
                     "memcpy() of sizeof(...) bytes copies a struct image "
                     "with padding and native endianness; encode fields "
                     "explicitly (src/fleet/record.h, src/net/) instead"});
    }
  }
}

void rule_trace_retain(const FileText& f, std::vector<Finding>& out) {
  // src/net/ is the trace/chunk layer itself: TraceBuilder's attachment
  // pointer and ChunkedTrace's internals are the sanctioned retention
  // points whose lifetimes the layer manages. Anywhere else, a member
  // (trailing-underscore identifier) holding `PacketTrace*` or
  // `PacketTrace&` can dangle once streaming seals/evicts the arena it
  // points into. src/ only: tests and benches pin traces on the stack.
  if (!path_contains(f.path, "src/") || path_contains(f.path, "src/net/")) {
    return;
  }
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    for (std::size_t pos = line.find("PacketTrace"); pos != std::string::npos;
         pos = line.find("PacketTrace", pos + 1)) {
      if (!word_at(line, pos, "PacketTrace")) continue;
      std::size_t i = pos + std::string("PacketTrace").size();
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || (line[i] != '*' && line[i] != '&')) continue;
      while (i < line.size() && (line[i] == '*' || line[i] == '&' ||
                                 line[i] == ' ')) {
        ++i;
      }
      const std::size_t id_start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i == id_start) continue;
      const std::string id = line.substr(id_start, i - id_start);
      if (id.back() != '_') continue;  // locals/parameters don't outlive
      out.push_back(
          {f.path, n + 1, "trace-retain",
           "member `" + id +
               "` retains a PacketTrace pointer/reference that can outlive "
               "the chunk or flow arena backing it; hold a net::TraceBuilder "
               "or copy into an owned trace, or document the borrow with "
               "tapo-lint: allow(trace-retain)"});
      break;  // one finding per line is enough
    }
  }
}

void rule_invariant_pure(const FileText& f, std::vector<Finding>& out) {
  // The invariant monitor observes the TCP machinery; it must never be able
  // to mutate it. Inside src/tcp/invariants.* any reference/pointer to an
  // observed protocol type has to be const — a mutable handle would let a
  // "check" perturb the state machine it audits.
  if (!path_contains(f.path, "src/tcp/invariants")) return;
  static const std::vector<std::string> kObserved = {
      "TcpSender", "TcpReceiver", "Scoreboard", "RtoEstimator",
      "CongestionControl"};
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    for (const auto& type : kObserved) {
      bool hit = false;
      for (std::size_t pos = line.find(type); pos != std::string::npos;
           pos = line.find(type, pos + 1)) {
        if (!word_at(line, pos, type)) continue;
        // `TypeName&` / `TypeName*` (a handle, not a value or mention)?
        std::size_t i = pos + type.size();
        while (i < line.size() && line[i] == ' ') ++i;
        if (i >= line.size() || (line[i] != '&' && line[i] != '*')) continue;
        // Walk left over namespace qualifiers to the word before the type;
        // `const tcp::TcpSender&` is the sanctioned observer shape.
        std::size_t j = pos;
        while (j > 0 && (is_ident_char(line[j - 1]) || line[j - 1] == ':')) {
          --j;
        }
        while (j > 0 && line[j - 1] == ' ') --j;
        std::size_t word_end = j;
        while (j > 0 && is_ident_char(line[j - 1])) --j;
        if (line.substr(j, word_end - j) == "const") continue;
        out.push_back(
            {f.path, n + 1, "invariant-pure",
             "non-const " + type +
                 (line[i] == '&' ? "&" : "*") +
                 " in the invariant monitor; checks are pure observers — "
                 "take `const " + type + "&` so a check cannot mutate the "
                 "state machine it audits"});
        hit = true;
        break;  // one finding per line per type is enough
      }
      if (hit) break;
    }
  }
}

void rule_mutex_annotation(const FileAnalysis& a, std::vector<Finding>& out) {
  // src/util/ hosts the annotated wrapper itself (util::Mutex's own
  // std::mutex member is the one sanctioned raw lock); everywhere else in
  // src/ a mutex member that no annotation references is a capability the
  // analysis cannot check anything against.
  const FileText& f = a.text;
  if (!path_contains(f.path, "src/") || path_contains(f.path, "util/")) {
    return;
  }
  for (const auto& cls : a.classes) {
    for (const auto& [name, line] : cls.mutex_members) {
      if (cls.annotation_refs.count(name) > 0) continue;
      out.push_back(
          {f.path, line + 1, "mutex-annotation",
           "class " + cls.name + " declares mutex member `" + name +
               "` but no TAPO_GUARDED_BY/TAPO_REQUIRES/TAPO_ACQUIRE/"
               "TAPO_EXCLUDES annotation in the class references it; an "
               "unreferenced capability guards nothing -Wthread-safety can "
               "check (see src/util/thread_annotations.h)"});
    }
  }
}

void rule_lock_discipline(const FileAnalysis& a, std::vector<Finding>& out) {
  // util/ paths (src/util/) are the sanctioned home of the raw
  // primitives: the annotated wrappers must be built out of something.
  const FileText& f = a.text;
  if (path_contains(f.path, "util/")) return;
  static const std::vector<std::string> kPrimitives = {
      "std::mutex",       "std::timed_mutex",
      "std::recursive_mutex", "std::shared_mutex",
      "std::lock_guard",  "std::unique_lock",
      "std::scoped_lock", "std::condition_variable"};
  for (std::size_t n = 0; n < f.code.size(); ++n) {
    const std::string& line = f.code[n];
    for (const auto& prim : kPrimitives) {
      const std::size_t pos = line.find(prim);
      if (pos == std::string::npos) continue;
      if (pos > 0 && is_ident_char(line[pos - 1])) continue;
      out.push_back(
          {f.path, n + 1, "lock-discipline",
           prim + " outside util/; use the annotated util::Mutex/"
                  "util::MutexLock/util::CondVar (src/util/mutex.h) so "
                  "Clang's -Wthread-safety sees the acquisition"});
      break;  // one finding per line is enough
    }
  }
}

// ------------------------------------------------------------ registry

using RuleFn = void (*)(const FileAnalysis&, std::vector<Finding>&);

struct RuleSpec {
  const char* name;
  RuleFn fn;
};

/// Every per-file rule, in execution order. stale-allow is not here: it is
/// a post-pass over the other rules' pre-suppression output (and over the
/// pragma text itself), run last by lint_file().
const std::vector<RuleSpec>& rule_registry() {
  static const std::vector<RuleSpec> kRules = {
      {"seq-compare",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_seq_compare(a.text, out);
       }},
      {"relaxed-atomic",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_relaxed_atomic(a.text, out);
       }},
      {"raw-rand",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_raw_rand(a.text, out);
       }},
      {"trace-side-effect",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_trace_side_effect(a.text, out);
       }},
      {"pragma-once",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_pragma_once(a.text, out);
       }},
      {"naked-parse",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_naked_parse(a.text, out);
       }},
      {"config-mutation",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_config_mutation(a.text, out);
       }},
      {"raw-struct-io",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_raw_struct_io(a.text, out);
       }},
      {"trace-retain",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_trace_retain(a.text, out);
       }},
      {"invariant-pure",
       [](const FileAnalysis& a, std::vector<Finding>& out) {
         rule_invariant_pure(a.text, out);
       }},
      {"mutex-annotation", rule_mutex_annotation},
      {"lock-discipline", rule_lock_discipline},
  };
  return kRules;
}

/// Every rule name a pragma or fixture may legally reference.
std::vector<std::string> all_rule_names() {
  std::vector<std::string> names;
  for (const auto& rule : rule_registry()) names.emplace_back(rule.name);
  names.emplace_back("stale-allow");
  return names;
}

/// Post-pass: audits every `tapo-lint: allow(<rule>)` pragma against the
/// pre-suppression findings in `out`. A pragma naming an unknown rule, or
/// one whose rule fires neither on its own line nor the line below, is a
/// stale-allow finding at the pragma's line. Must run after every rule in
/// the registry; its findings are exempt from suppression (allowing away
/// the suppression auditor would defeat it).
void rule_stale_allow(const FileText& f, std::vector<Finding>& out) {
  static const std::set<std::string> kKnown = [] {
    const auto names = all_rule_names();
    return std::set<std::string>(names.begin(), names.end());
  }();
  const std::size_t pre_existing = out.size();
  const std::string kKey = "tapo-lint: allow(";
  for (std::size_t m = 0; m < f.raw.size(); ++m) {
    const std::string& line = f.raw[m];
    for (std::size_t pos = line.find(kKey); pos != std::string::npos;
         pos = line.find(kKey, pos + 1)) {
      const std::size_t start = pos + kKey.size();
      const std::size_t end = line.find(')', start);
      if (end == std::string::npos) continue;
      const std::string rule = line.substr(start, end - start);
      if (kKnown.count(rule) == 0) {
        out.push_back({f.path, m + 1, "stale-allow",
                       "allow(" + rule +
                           ") names a rule this linter does not have; fix "
                           "the name or delete the pragma"});
        continue;
      }
      bool live = false;
      for (std::size_t k = 0; k < pre_existing && !live; ++k) {
        live = out[k].rule == rule &&
               (out[k].line == m + 1 || out[k].line == m + 2);
      }
      if (!live) {
        out.push_back({f.path, m + 1, "stale-allow",
                       "allow(" + rule +
                           ") suppresses nothing — the rule does not fire "
                           "on this line or the one below; delete the "
                           "pragma so suppressions cannot rot"});
      }
    }
  }
}

/// Rules suppressed on line `n` (0-based) via `tapo-lint: allow(<rule>)` on
/// the same line or the line directly above.
std::set<std::string> suppressions_for_line(const FileText& f, std::size_t n) {
  std::set<std::string> rules;
  for (std::size_t m = n == 0 ? 0 : n - 1; m <= n && m < f.raw.size(); ++m) {
    const std::string& line = f.raw[m];
    const std::string kKey = "tapo-lint: allow(";
    for (std::size_t pos = line.find(kKey); pos != std::string::npos;
         pos = line.find(kKey, pos + 1)) {
      const std::size_t start = pos + kKey.size();
      const std::size_t end = line.find(')', start);
      if (end != std::string::npos) {
        rules.insert(line.substr(start, end - start));
      }
    }
  }
  return rules;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io-error", "cannot open file"}};
  }
  std::stringstream ss;
  ss << in.rdbuf();
  FileAnalysis a;
  a.text = strip_comments(path, ss.str());
  a.classes = build_class_table(a.text);
  const FileText& f = a.text;

  std::vector<Finding> found;
  for (const auto& rule : rule_registry()) rule.fn(a, found);
  rule_stale_allow(f, found);  // audits the pre-suppression output; last

  std::vector<Finding> kept;
  for (const auto& finding : found) {
    if (finding.rule != "stale-allow" && finding.line > 0) {
      const auto allowed = suppressions_for_line(f, finding.line - 1);
      if (allowed.count(finding.rule) > 0) continue;
    }
    kept.push_back(finding);
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return a.line < b.line;
  });
  return kept;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::vector<std::string> collect_tree(const std::string& root) {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int run_lint(const std::vector<std::string>& files) {
  std::size_t count = 0;
  for (const auto& file : files) {
    for (const auto& f : lint_file(file)) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++count;
    }
  }
  if (count > 0) {
    std::printf("tapo_lint: %zu finding%s\n", count, count == 1 ? "" : "s");
    return 1;
  }
  return 0;
}

/// Fixture mode: `// expect-lint: <rule>` marks the line where a finding
/// must fire. Any missing expected finding or any unexpected finding
/// fails. On top of the per-line matching, every registered rule must be
/// exercised by at least one bad fixture — a rule nothing triggers is a
/// rule whose regressions nothing would catch — and the per-rule counts
/// are printed as a one-line coverage summary.
int run_self_test(const std::string& dir) {
  int failures = 0;
  std::size_t checked = 0;
  std::map<std::string, std::size_t> coverage;
  for (const auto& name : all_rule_names()) coverage[name] = 0;
  for (const auto& file : collect_tree(dir)) {
    std::ifstream in(file, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const FileText f = strip_comments(file, ss.str());

    std::set<std::pair<std::size_t, std::string>> expected;
    const std::string kKey = "expect-lint:";
    for (std::size_t n = 0; n < f.raw.size(); ++n) {
      std::size_t pos = f.raw[n].find(kKey);
      if (pos == std::string::npos) continue;
      pos += kKey.size();
      while (pos < f.raw[n].size() && f.raw[n][pos] == ' ') ++pos;
      std::size_t end = pos;
      while (end < f.raw[n].size() &&
             (is_ident_char(f.raw[n][end]) || f.raw[n][end] == '-')) {
        ++end;
      }
      expected.insert({n + 1, f.raw[n].substr(pos, end - pos)});
    }

    std::set<std::pair<std::size_t, std::string>> actual;
    for (const auto& finding : lint_file(file)) {
      actual.insert({finding.line, finding.rule});
    }

    for (const auto& [line, rule] : expected) {
      ++checked;
      if (coverage.count(rule) == 0) {
        std::printf(
            "SELF-TEST FAIL %s:%zu: expectation names unknown rule [%s]\n",
            file.c_str(), line, rule.c_str());
        ++failures;
      }
      if (actual.count({line, rule}) == 0) {
        std::printf("SELF-TEST FAIL %s:%zu: expected [%s], not reported\n",
                    file.c_str(), line, rule.c_str());
        ++failures;
      } else if (coverage.count(rule) > 0) {
        ++coverage[rule];  // exercised: expected AND actually fired
      }
    }
    for (const auto& [line, rule] : actual) {
      if (expected.count({line, rule}) == 0) {
        std::printf("SELF-TEST FAIL %s:%zu: unexpected [%s]\n", file.c_str(),
                    line, rule.c_str());
        ++failures;
      }
    }
  }
  std::string summary = "tapo_lint rule coverage:";
  for (const auto& name : all_rule_names()) {
    summary += " " + name + "=" + std::to_string(coverage[name]);
    if (coverage[name] == 0) {
      std::printf(
          "SELF-TEST FAIL rule [%s] has no bad fixture exercising it\n",
          name.c_str());
      ++failures;
    }
  }
  std::printf("%s\n", summary.c_str());
  std::printf("tapo_lint self-test: %zu expectation%s, %d failure%s\n",
              checked, checked == 1 ? "" : "s", failures,
              failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: tapo_lint <file>... | --recurse <dir>... | "
                 "--self-test <dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "usage: tapo_lint --self-test <fixture-dir>\n");
      return 2;
    }
    return run_self_test(args[1]);
  }
  std::vector<std::string> files;
  if (args[0] == "--recurse") {
    for (std::size_t i = 1; i < args.size(); ++i) {
      const auto tree = collect_tree(args[i]);
      files.insert(files.end(), tree.begin(), tree.end());
    }
  } else {
    files = args;
  }
  return run_lint(files);
}
