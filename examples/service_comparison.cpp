// Compares TCP stall behaviour across the paper's three services using the
// calibrated workload profiles — the library-API walkthrough for the
// measurement half of the paper (§2-§4).
//
//   ./service_comparison [flows_per_service]
#include <cstdio>
#include <cstdlib>

#include "stats/table.h"
#include "tapo/report.h"
#include "util/env.h"
#include "util/strings.h"
#include "workload/experiment.h"

using namespace tapo;
using namespace tapo::workload;

int main(int argc, char** argv) {
  std::size_t flows = 150;
  if (argc > 1) {
    const auto parsed = util::parse_positive_size(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "error: flow count must be a positive integer\n");
      return 1;
    }
    flows = *parsed;
  }

  stats::Table summary("per-service summary:");
  summary.set_header({"service", "flows", "avg size", "speed", "loss",
                      "rtt", "stalls", "stalled%"});

  for (auto svc : {Service::kCloudStorage, Service::kSoftwareDownload,
                   Service::kWebSearch}) {
    ExperimentConfig cfg;
    cfg.profile = profile_for(svc);
    cfg.flows = flows;
    cfg.seed = 7;
    const auto res = run_experiment(cfg);
    const auto sum = analysis::make_service_summary(res.analyses);
    const auto bd = analysis::make_stall_breakdown(res.analyses);

    Duration total_time, total_stalled;
    for (const auto& fa : res.analyses) {
      total_time += fa.transmission_time;
      total_stalled += fa.stalled_time;
    }
    summary.add_row({
        to_string(svc),
        str_format("%llu", static_cast<unsigned long long>(sum.flows)),
        human_bytes(sum.avg_flow_bytes),
        human_bytes(sum.avg_speed_Bps) + "/s",
        pct(sum.pkt_loss),
        human_us(sum.avg_rtt_us),
        str_format("%llu", static_cast<unsigned long long>(bd.total_count)),
        pct(total_time > Duration::zero() ? total_stalled / total_time : 0.0),
    });

    std::printf("%s: top stall causes by time —\n", to_string(svc));
    for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
      const auto cause = static_cast<analysis::StallCause>(c);
      const double frac = bd.time_fraction(cause);
      if (frac > 0.05) {
        std::printf("    %-20s %s\n", analysis::to_string(cause),
                    pct(frac).c_str());
      }
    }
  }
  std::printf("\n%s", summary.render().c_str());
  std::printf("\n(compare with Tables 1 and 3 of the paper; see "
              "bench/table1_flow_stats and bench/table3_stall_categories "
              "for the full paper-vs-measured comparison)\n");
  return 0;
}
