// TAPO command-line tool: analyze TCP stalls in a pcap capture.
//
// This is the reproduction of the paper's publicly released tool: point it
// at a server-side capture and it prints per-flow stall diagnoses plus the
// aggregate Table-3 / Table-5 breakdowns.
//
//   pcap_analyze <capture.pcap> [--server-port N] [--tau X] [--summary]
//   pcap_analyze --demo [out.pcap]     # generate a demo capture first
//
// The capture may come from tcpdump (Ethernet, raw-IP and loopback
// linktypes are supported) or from this library's own simulator.
#include <cstdio>
#include <cstring>
#include <string>

#include "pcap/pcap.h"
#include "tapo/csv.h"
#include "tapo/live.h"
#include "stats/table.h"
#include "tapo/analyzer.h"
#include "tapo/report.h"
#include "util/env.h"
#include "util/strings.h"
#include "workload/experiment.h"

using namespace tapo;

namespace {

void print_usage() {
  std::printf(
      "usage: pcap_analyze <capture.pcap> [--server-port N] [--tau X] "
      "[--summary] [--csv PREFIX] [--live] [--mem-budget BYTES]\n"
      "       pcap_analyze --demo [out.pcap]   generate & analyze a demo "
      "capture\n"
      "\n"
      "  --mem-budget BYTES  cap pipeline residency (chunks in flight +\n"
      "                      buffered flow state); 0 = unlimited. Also read\n"
      "                      from TAPO_MEM_BUDGET; the flag wins. Budgeted\n"
      "                      runs use --live's engine and evict the least\n"
      "                      recently active flows instead of growing.\n");
}

std::string make_demo(const std::string& path) {
  // Simulate a handful of lossy software-download flows into one pcap.
  net::PacketTrace all;
  auto profile = workload::software_download_profile();
  Rng master(42);
  for (int i = 0; i < 8; ++i) {
    Rng flow_rng = master.split();
    const auto scenario =
        workload::draw_scenario(profile, flow_rng, static_cast<std::uint64_t>(i + 1));
    const auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    for (const auto& pkt : outcome.trace->packets()) all.add(pkt);
  }
  all.sort_by_time();
  pcap::write_file(path, all);
  std::printf("wrote demo capture with %zu packets to %s\n\n", all.size(),
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }

  std::string path;
  analysis::AnalyzerConfig config;
  analysis::DemuxOptions demux;
  bool summary_only = false;
  bool live_mode = false;
  std::size_t mem_budget = util::env_size("TAPO_MEM_BUDGET", 0);
  std::string csv_prefix;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      // Only consume the next token as the output path if it is not a flag.
      const bool has_path = i + 1 < argc && argv[i + 1][0] != '-';
      path = make_demo(has_path ? argv[++i] : "/tmp/tapo_demo.pcap");
    } else if (arg == "--server-port" && i + 1 < argc) {
      const auto port = tapo::util::parse_u64(argv[++i]);
      if (!port || *port == 0 || *port > 65535) {
        std::fprintf(stderr, "error: --server-port must be 1..65535\n");
        return 1;
      }
      demux.with_server_port(static_cast<std::uint16_t>(*port));
    } else if (arg == "--tau" && i + 1 < argc) {
      const double tau = std::atof(argv[++i]);
      if (tau <= 0.0) {
        std::fprintf(stderr, "error: --tau must be a positive number\n");
        return 1;
      }
      config.with_tau(tau);
    } else if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_prefix = argv[++i];
    } else if (arg == "--live") {
      live_mode = true;
    } else if (arg == "--mem-budget" && i + 1 < argc) {
      const auto bytes = tapo::util::parse_u64(argv[++i]);
      if (!bytes) {
        std::fprintf(stderr,
                     "error: --mem-budget must be a byte count (0 = "
                     "unlimited)\n");
        return 1;
      }
      mem_budget = static_cast<std::size_t>(*bytes);
    } else if (arg[0] != '-') {
      path = arg;
    } else {
      print_usage();
      return 1;
    }
  }
  if (path.empty()) {
    print_usage();
    return 1;
  }

  // One ingest surface for every mode: the chunked streaming reader. A
  // budgeted or --live run hands each sealed chunk straight to the live
  // analyzer and drops it (bounded residency, files larger than RAM are
  // fine); the plain batch run retains the chunks and analyzes them with
  // the same engine — bit-identical output either way.
  util::MemoryBudget budget(mem_budget);
  if (mem_budget != 0) live_mode = true;
  analysis::AnalysisResult result;
  pcap::ReadStats rstats;
  try {
    pcap::StreamingReader reader(path, pcap::StreamingOptions{
                                           .budget = &budget});
    if (live_mode) {
      const auto live_cfg = analysis::LiveConfig{}
                                .with_analyzer(config)
                                .with_demux(demux)
                                .with_mem_budget(&budget);
      analysis::LiveAnalyzer live(
          live_cfg,
          [&](const analysis::FlowAnalysis& fa) { result.flows.push_back(fa); });
      while (auto chunk = reader.next_chunk()) live.add_chunk(*chunk);
      rstats = reader.stats();
      std::printf("%s: %zu records, %zu TCP packets (%zu skipped)\n",
                  path.c_str(), rstats.records, rstats.tcp_packets,
                  rstats.skipped);
      live.flush();
      std::printf("%zu flows finalized (live mode; %llu packets, peak table "
                  "%zu flows, peak resident %zu bytes%s)\n\n",
                  result.flows.size(),
                  static_cast<unsigned long long>(live.stats().packets),
                  live.stats().active_flows, budget.high_water(),
                  mem_budget != 0 ? ", budgeted" : "");
    } else {
      net::ChunkedTrace chunks(net::ChunkedTrace::kDefaultChunkPackets,
                               nullptr, &budget);
      while (auto chunk = reader.next_chunk()) {
        for (const auto& pkt : chunk->packets()) chunks.add(pkt);
      }
      rstats = reader.stats();
      std::printf("%s: %zu records, %zu TCP packets (%zu skipped)\n",
                  path.c_str(), rstats.records, rstats.tcp_packets,
                  rstats.skipped);
      analysis::Analyzer analyzer(config);
      result = analyzer.analyze(chunks, demux);
      std::printf("%zu flows reconstructed\n\n", result.flows.size());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!csv_prefix.empty()) {
    try {
      analysis::write_flows_csv_file(csv_prefix + "_flows.csv", result.flows);
      analysis::write_stalls_csv_file(csv_prefix + "_stalls.csv", result.flows);
      std::printf("wrote %s_flows.csv and %s_stalls.csv\n\n",
                  csv_prefix.c_str(), csv_prefix.c_str());
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 1;
    }
  }

  if (!summary_only) {
    for (const auto& fa : result.flows) {
      std::printf("%s\n", analysis::describe_flow(fa).c_str());
    }
  }

  // Aggregate summaries (Table 3 / Table 5 form).
  const auto bd = analysis::make_stall_breakdown(result.flows);
  const auto rbd = analysis::make_retrans_breakdown(result.flows);
  const auto sum = analysis::make_service_summary(result.flows);

  std::printf("== aggregate ==\n");
  std::printf("flows=%llu avg_speed=%s/s pkt_loss=%s avg_rtt=%s avg_rto=%s\n",
              static_cast<unsigned long long>(sum.flows),
              human_bytes(sum.avg_speed_Bps).c_str(),
              pct(sum.pkt_loss).c_str(), human_us(sum.avg_rtt_us).c_str(),
              human_us(sum.avg_rto_us).c_str());
  std::printf("stalls: %llu total, %.1fs stalled time\n",
              static_cast<unsigned long long>(bd.total_count),
              bd.total_time.sec());

  stats::Table t("\nstall causes (volume / time):");
  t.set_header({"cause", "volume", "time"});
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    const auto cause = static_cast<analysis::StallCause>(c);
    if (bd.by_cause[c].count == 0) continue;
    t.add_row({analysis::to_string(cause), pct(bd.volume_fraction(cause)),
               pct(bd.time_fraction(cause))});
  }
  std::printf("%s", t.render().c_str());

  if (rbd.total_count > 0) {
    stats::Table rt("\ntimeout-retransmission stall causes (volume / time):");
    rt.set_header({"cause", "volume", "time"});
    for (std::size_t c = 0; c < analysis::kNumRetransCauses; ++c) {
      const auto cause = static_cast<analysis::RetransCause>(c);
      if (rbd.by_cause[c].count == 0) continue;
      rt.add_row({analysis::to_string(cause), pct(rbd.volume_fraction(cause)),
                  pct(rbd.time_fraction(cause))});
    }
    std::printf("%s", rt.render().c_str());
  }
  return 0;
}
