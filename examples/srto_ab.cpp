// A/B test of loss-recovery mechanisms — the mitigation half of the paper
// (§5): replay the same workload under native Linux recovery, TLP, and
// S-RTO, and compare request latency.
//
//   ./srto_ab [web|cloud|soft] [flows] [loss]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "stats/cdf.h"
#include "stats/table.h"
#include "util/env.h"
#include "util/strings.h"
#include "workload/experiment.h"

using namespace tapo;
using namespace tapo::workload;
using tcp::RecoveryMechanism;

int main(int argc, char** argv) {
  Service svc = Service::kWebSearch;
  if (argc > 1) {
    if (std::strcmp(argv[1], "cloud") == 0) svc = Service::kCloudStorage;
    if (std::strcmp(argv[1], "soft") == 0) svc = Service::kSoftwareDownload;
  }
  std::size_t flows = 400;
  if (argc > 2) {
    const auto parsed = util::parse_positive_size(argv[2]);
    if (!parsed) {
      std::fprintf(stderr, "error: flow count must be a positive integer\n");
      return 1;
    }
    flows = *parsed;
  }
  const double loss = argc > 3 ? std::atof(argv[3]) : 0.0;

  ExperimentConfig base;
  base.profile = profile_for(svc);
  base.flows = flows;
  base.seed = 99;
  base.analyze = false;
  if (loss > 0) {
    // Override the loss model with a fixed rate for controlled comparison.
    base.profile.path.clean_prob = 0.0;
    base.profile.path.loss_mean = loss;
  }

  std::printf("A/B over %zu %s flows (same seed per mechanism)\n\n", flows,
              to_string(svc));

  stats::Table t;
  t.set_header({"mechanism", "p50", "p90", "p99", "mean", "retrans%", "RTOs",
                "probes"});
  stats::Cdf native_lat;
  for (auto mech : {RecoveryMechanism::kNative, RecoveryMechanism::kTlp,
                    RecoveryMechanism::kSrto}) {
    ExperimentConfig cfg = base;
    cfg.recovery = mech;
    const auto res = run_experiment(cfg);
    stats::Cdf lat;
    std::uint64_t rtos = 0, probes = 0;
    for (const auto& o : res.outcomes) {
      rtos += o.sender_stats.rto_fires;
      probes += o.sender_stats.tlp_probes + o.sender_stats.srto_probes;
      for (const auto& r : o.metrics.requests) {
        if (r.completed && r.server_acked_resp != TimePoint()) {
          lat.add(r.latency().sec());
        }
      }
    }
    if (mech == RecoveryMechanism::kNative) native_lat = lat;
    auto cell = [&](double q) {
      const double v = q < 0 ? lat.mean() : lat.percentile(q);
      const double b = q < 0 ? native_lat.mean() : native_lat.percentile(q);
      if (mech == RecoveryMechanism::kNative) return str_format("%.3fs", v);
      return str_format("%.3fs (%+.1f%%)", v, b > 0 ? (v - b) / b * 100 : 0.0);
    };
    t.add_row({tcp::to_string(mech), cell(0.5), cell(0.9), cell(0.99),
               cell(-1), pct(res.retrans_ratio()),
               str_format("%llu", static_cast<unsigned long long>(rtos)),
               str_format("%llu", static_cast<unsigned long long>(probes))});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\npaper (Table 8): S-RTO cuts short-flow latency roughly 2x "
              "more than TLP, at a modest retransmission-ratio cost "
              "(Table 9).\n");
  return 0;
}
