// Quickstart: simulate one lossy TCP transfer, capture the server-side
// packet trace, run the TAPO analyzer on it, and print the stall report.
//
//   ./quickstart [loss] [rtt_ms] [bytes]
#include <cstdio>
#include <cstdlib>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tapo/analyzer.h"
#include "tapo/report.h"
#include "tcp/connection.h"
#include "util/rng.h"

using namespace tapo;

namespace {

double parse_double(const char* s, const char* name) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || v < 0) {
    std::fprintf(stderr, "error: %s must be a non-negative number, got '%s'\n",
                 name, s);
    std::exit(1);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const double loss = argc > 1 ? parse_double(argv[1], "loss") : 0.03;
  const double rtt_ms = argc > 2 ? parse_double(argv[2], "rtt_ms") : 120.0;
  const std::uint64_t bytes =
      argc > 3 ? static_cast<std::uint64_t>(parse_double(argv[3], "bytes"))
               : 400 * 1024;

  // 1. A duplex path: data path with random loss, cleaner ACK path.
  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::seconds(rtt_ms / 2000.0);
  down_cfg.jitter_mean = Duration::millis(2);
  down_cfg.random_loss = loss;
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = down_cfg.prop_delay;
  up_cfg.random_loss = loss / 2;
  sim::Link down(sim, down_cfg, Rng(1));
  sim::Link up(sim, up_cfg, Rng(2));

  // 2. One connection: a single HTTP-like request/response.
  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  tcp::RequestSpec req;
  req.response_bytes = bytes;
  req.server_think = Duration::millis(150);  // back-end fetch
  cfg.requests.push_back(req);

  net::PacketTrace trace;
  tcp::Connection conn(sim, down, up, cfg, &trace);
  conn.start();
  sim.run_until(TimePoint::from_us(0) + Duration::seconds(600.0));

  std::printf("simulated flow: %s, %llu bytes, completed=%d, took %.3fs\n",
              cfg.client_to_server.to_string().c_str(),
              static_cast<unsigned long long>(bytes), conn.done(),
              (conn.metrics().finished - conn.metrics().syn_sent).sec());
  std::printf("sender: sent=%llu retrans=%llu rto_fires=%llu\n",
              static_cast<unsigned long long>(conn.sender().stats().segments_sent),
              static_cast<unsigned long long>(conn.sender().stats().retransmissions),
              static_cast<unsigned long long>(conn.sender().stats().rto_fires));
  std::printf("trace: %zu packets captured at the server NIC\n\n", trace.size());

  // 3. TAPO analysis of the captured trace.
  analysis::Analyzer analyzer;
  const auto result = analyzer.analyze(trace);
  for (const auto& fa : result.flows) {
    std::printf("%s", analysis::describe_flow(fa).c_str());
  }
  return 0;
}
