# Configure-time thread-safety probes (Clang-only).
#
# Two try_compile checks against the annotated mutex wrappers:
#   guarded_ok.cc       correctly guarded access — must COMPILE under
#                       -Wthread-safety -Werror=thread-safety
#   unguarded_fail.cc   reads a TAPO_GUARDED_BY member without the lock —
#                       must FAIL to compile under the same flags
#
# The negative probe is the important half: it proves the annotation
# macros actually expand to Clang attributes and the analysis actually
# rejects unguarded access. If TAPO_* ever degraded to no-ops under Clang
# (a broken feature-detect in thread_annotations.h), the bad probe would
# start compiling and configuration would fail loudly.
#
# Under non-Clang compilers the probes are meaningless (the annotations
# are deliberate no-ops there), so they are skipped with a status note.
function(tapo_thread_safety_checks)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(STATUS
      "tapo: thread-safety try_compile probes skipped "
      "(Clang-only; compiler is ${CMAKE_CXX_COMPILER_ID})")
    return()
  endif()

  set(probe_flags "-DCMAKE_CXX_FLAGS=-Wthread-safety -Werror=thread-safety")
  set(probe_includes "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src")

  try_compile(TAPO_TS_GUARDED_OK
    ${CMAKE_BINARY_DIR}/tapo_ts_guarded_ok
    SOURCES ${CMAKE_SOURCE_DIR}/cmake/thread_safety/guarded_ok.cc
    CMAKE_FLAGS ${probe_includes} ${probe_flags}
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE guarded_ok_output)
  if(NOT TAPO_TS_GUARDED_OK)
    message(FATAL_ERROR
      "tapo: correctly guarded probe failed to compile under "
      "-Werror=thread-safety; the annotations or wrappers are broken:\n"
      "${guarded_ok_output}")
  endif()

  try_compile(TAPO_TS_UNGUARDED_COMPILED
    ${CMAKE_BINARY_DIR}/tapo_ts_unguarded_fail
    SOURCES ${CMAKE_SOURCE_DIR}/cmake/thread_safety/unguarded_fail.cc
    CMAKE_FLAGS ${probe_includes} ${probe_flags}
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    OUTPUT_VARIABLE unguarded_output)
  if(TAPO_TS_UNGUARDED_COMPILED)
    message(FATAL_ERROR
      "tapo: unguarded access to a TAPO_GUARDED_BY member compiled under "
      "-Werror=thread-safety; the annotation macros are not reaching the "
      "compiler (check src/util/thread_annotations.h feature detection)")
  endif()

  message(STATUS
    "tapo: thread-safety probes passed "
    "(guarded code compiles, unguarded access rejected)")
endfunction()
