// Negative configure-time probe (cmake/ThreadSafetyCheck.cmake): reading
// a TAPO_GUARDED_BY member without holding its capability must FAIL to
// compile under -Wthread-safety -Werror=thread-safety. If this file ever
// compiles under Clang, the annotation macros are not reaching the
// compiler and the whole static gate is inert.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // Deliberate violation: no lock held, no TAPO_REQUIRES declared.
  int read_unguarded() const { return value_; }

 private:
  mutable tapo::util::Mutex mu_;
  int value_ TAPO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  const Guarded g;
  return g.read_unguarded();
}
