// Positive configure-time probe (cmake/ThreadSafetyCheck.cmake):
// correctly guarded access through the annotated wrappers must compile
// under -Wthread-safety -Werror=thread-safety.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void bump() TAPO_EXCLUDES(mu_) {
    tapo::util::MutexLock lock(mu_);
    ++value_;
  }

  int read() const TAPO_EXCLUDES(mu_) {
    tapo::util::MutexLock lock(mu_);
    return value_;
  }

  void bump_locked() TAPO_REQUIRES(mu_) { ++value_; }

  void bump_via_requires() TAPO_EXCLUDES(mu_) {
    mu_.lock();
    bump_locked();
    mu_.unlock();
  }

 private:
  mutable tapo::util::Mutex mu_;
  int value_ TAPO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.bump();
  g.bump_via_requires();
  return g.read() == 2 ? 0 : 1;
}
