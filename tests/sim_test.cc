// Tests for the discrete-event simulator and link models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/link.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace tapo::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().us(), 30'000);
}

TEST(Simulator, FifoAmongEqualTimes) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Duration::millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelUnknownIsNoop) {
  Simulator sim;
  sim.cancel(9999);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) sim.schedule(Duration::millis(1), tick);
  };
  sim.schedule(Duration::millis(1), tick);
  sim.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().us(), 5'000);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> seen;
  sim.schedule(Duration::millis(10), [&] { seen.push_back(1); });
  sim.schedule(Duration::millis(30), [&] { seen.push_back(2); });
  sim.run_until(TimePoint::from_us(20'000));
  EXPECT_EQ(seen, std::vector<int>{1});
  EXPECT_EQ(sim.now().us(), 20'000);
  sim.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunWithLimit) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration::millis(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, NegativeDelayClamps) {
  Simulator sim;
  bool fired = false;
  sim.schedule(Duration::millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().us(), 0);
}

TEST(Timer, ArmAndFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(Duration::millis(10));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(Duration::millis(10));
  t.arm(Duration::millis(50));
  sim.run_until(TimePoint::from_us(20'000));
  EXPECT_EQ(fires, 0);
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sim.now().us(), 50'000);
}

TEST(Timer, CancelStopsFire) {
  Simulator sim;
  int fires = 0;
  Timer t(sim, [&] { ++fires; });
  t.arm(Duration::millis(10));
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, RearmInsideCallback) {
  Simulator sim;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fires < 3) tp->arm(Duration::millis(10));
  });
  tp = &t;
  t.arm(Duration::millis(10));
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now().us(), 30'000);
}

net::CapturedPacket test_packet(std::uint32_t seq, std::uint32_t payload) {
  net::CapturedPacket p;
  p.key = {1, 2, 3, 4};
  p.tcp.seq = net::Seq32{seq};
  p.payload_len = payload;
  return p;
}

TEST(Link, DeliversAfterPropDelay) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(25);
  Link link(sim, cfg, Rng(1));
  std::vector<std::int64_t> arrivals;
  link.set_deliver([&](const net::CapturedPacket& p) {
    arrivals.push_back(p.timestamp.us());
  });
  link.send(test_packet(1, 100));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 25'000);
  EXPECT_EQ(link.stats().delivered, 1u);
}

TEST(Link, FifoPreservedUnderJitter) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(10);
  cfg.jitter_mean = Duration::millis(20);  // heavy jitter
  Link link(sim, cfg, Rng(7));
  std::vector<std::uint32_t> seqs;
  link.set_deliver(
      [&](const net::CapturedPacket& p) { seqs.push_back(p.tcp.seq.raw()); });
  for (std::uint32_t i = 0; i < 100; ++i) link.send(test_packet(i, 100));
  sim.run();
  ASSERT_EQ(seqs.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(seqs[i], i);
}

TEST(Link, ReorderEventsOvertake) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(10);
  cfg.reorder_prob = 0.3;
  cfg.reorder_delay = Duration::millis(50);
  Link link(sim, cfg, Rng(21));
  std::vector<std::uint32_t> seqs;
  link.set_deliver(
      [&](const net::CapturedPacket& p) { seqs.push_back(p.tcp.seq.raw()); });
  for (std::uint32_t i = 0; i < 200; ++i) link.send(test_packet(i, 100));
  sim.run();
  ASSERT_EQ(seqs.size(), 200u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] < seqs[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(Link, RandomLossRate) {
  Simulator sim;
  LinkConfig cfg;
  cfg.random_loss = 0.1;
  Link link(sim, cfg, Rng(3));
  int delivered = 0;
  link.set_deliver([&](const net::CapturedPacket&) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(test_packet(1, 1));
  sim.run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.9, 0.01);
  EXPECT_EQ(link.stats().dropped_random + link.stats().delivered,
            static_cast<std::uint64_t>(n));
}

TEST(Link, BandwidthSerialization) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(0);
  cfg.bandwidth_Bps = 100'000;  // 100 KB/s
  cfg.queue_packets = 100;
  Link link(sim, cfg, Rng(5));
  std::vector<std::int64_t> arrivals;
  link.set_deliver([&](const net::CapturedPacket& p) {
    arrivals.push_back(p.timestamp.us());
  });
  // Two 1000-byte payload packets: wire size 1040 each -> 10.4 ms each.
  link.send(test_packet(1, 1000));
  link.send(test_packet(2, 1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(static_cast<double>(arrivals[0]), 10'400.0, 100.0);
  EXPECT_NEAR(static_cast<double>(arrivals[1]), 20'800.0, 200.0);
}

TEST(Link, QueueOverflowDrops) {
  Simulator sim;
  LinkConfig cfg;
  cfg.bandwidth_Bps = 10'000;
  cfg.queue_packets = 5;
  Link link(sim, cfg, Rng(5));
  int delivered = 0;
  link.set_deliver([&](const net::CapturedPacket&) { ++delivered; });
  for (int i = 0; i < 20; ++i) link.send(test_packet(1, 1000));
  sim.run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(link.stats().dropped_queue, 15u);
}

TEST(Link, ForcedOutageDropsWindow) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(1);
  cfg.bad_loss = 1.0;
  Link link(sim, cfg, Rng(9));
  int delivered = 0;
  link.set_deliver([&](const net::CapturedPacket&) { ++delivered; });
  link.force_outage(Duration::millis(100));
  for (int i = 0; i < 10; ++i) link.send(test_packet(1, 1));
  // After the outage, packets flow again.
  sim.schedule(Duration::millis(200), [&] {
    for (int i = 0; i < 10; ++i) link.send(test_packet(1, 1));
  });
  sim.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(link.stats().dropped_burst, 10u);
}

TEST(Link, BurstOutageIsTimeBased) {
  Simulator sim;
  LinkConfig cfg;
  cfg.prop_delay = Duration::millis(1);
  cfg.p_good_to_bad = 1.0;  // first packet triggers an outage
  cfg.burst_duration = Duration::millis(50);
  cfg.bad_loss = 1.0;
  Link link(sim, cfg, Rng(11));
  int delivered = 0;
  link.set_deliver([&](const net::CapturedPacket&) { ++delivered; });
  link.send(test_packet(1, 1));  // triggers outage; may itself drop
  // A retransmission long after the outage must survive the bad state
  // (time-based, not per-packet-chain). p_good_to_bad=1 means it will
  // trigger a new outage, but the packet itself is evaluated against the
  // *previous* state expiry... so send after a long quiet period and only
  // count that burst triggers do not last forever.
  int late_delivered = 0;
  sim.schedule(Duration::seconds(10.0), [&] {
    link.set_burst(0.0, Duration::millis(50), 1.0);
    link.send(test_packet(2, 1));
  });
  sim.run();
  (void)delivered;
  late_delivered = static_cast<int>(link.stats().delivered);
  EXPECT_GE(late_delivered, 1);
}

TEST(Link, DeterministicGivenSeed) {
  auto run_once = [] {
    Simulator sim;
    LinkConfig cfg;
    cfg.random_loss = 0.3;
    cfg.jitter_mean = Duration::millis(5);
    Link link(sim, cfg, Rng(42));
    std::vector<std::int64_t> arrivals;
    link.set_deliver([&](const net::CapturedPacket& p) {
      arrivals.push_back(p.timestamp.us());
    });
    for (int i = 0; i < 100; ++i) link.send(test_packet(1, 100));
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(), run_once());
}


// --- cancellation bookkeeping: the handler map is the source of truth ---

TEST(Simulator, PendingAndEmptyTrackCancellationImmediately) {
  Simulator sim;
  const EventId a = sim.schedule(Duration::millis(1), [] {});
  const EventId b = sim.schedule(Duration::millis(2), [] {});
  sim.schedule(Duration::millis(3), [] {});
  EXPECT_EQ(sim.pending(), 3u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_FALSE(sim.empty());
  sim.cancel(b);
  sim.cancel(b);  // double-cancel is a no-op
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] { ++fired; });
  const EventId late = sim.schedule(Duration::millis(10), [&] { ++fired; });
  EXPECT_EQ(sim.run_until(TimePoint::epoch() + Duration::millis(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.cancel(late);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunUntilSkipsCancelledHead) {
  Simulator sim;
  bool fired = false;
  const EventId head = sim.schedule(Duration::millis(1), [&] { fired = true; });
  sim.schedule(Duration::millis(8), [&] { fired = true; });
  sim.cancel(head);
  // The cancelled head must not stop run_until from seeing that the next
  // *live* event is beyond the deadline.
  EXPECT_EQ(sim.run_until(TimePoint::epoch() + Duration::millis(5)), 0u);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, CancelFromWithinHandler) {
  Simulator sim;
  bool second_fired = false;
  const EventId second =
      sim.schedule(Duration::millis(2), [&] { second_fired = true; });
  sim.schedule(Duration::millis(1), [&] { sim.cancel(second); });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(second_fired);
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace tapo::sim
