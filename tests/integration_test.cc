// Cross-module integration tests: simulate -> pcap round-trip -> analyze,
// and headline shape results (S-RTO/TLP vs native Linux).
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "pcap/pcap.h"
#include "stats/cdf.h"
#include "tapo/report.h"
#include "workload/experiment.h"

namespace tapo {
namespace {

using namespace workload;
using namespace analysis;

TEST(Integration, TraceSurvivesPcapRoundTrip) {
  // Simulate a service trace, write it as a pcap, read it back, and check
  // the analyzer produces identical results on both representations.
  ExperimentConfig cfg;
  cfg.profile = web_search_profile();
  cfg.flows = 1;
  cfg.seed = 4;
  cfg.analyze = false;

  Rng master(cfg.seed);
  Rng flow_rng = master.split();
  const auto scenario = draw_scenario(cfg.profile, flow_rng, 1);
  auto outcome = run_flow(scenario, flow_rng.split(), cfg.max_flow_time,
                          TraceCapture::kServerNic);
  const net::PacketTrace trace = std::move(*outcome.trace);
  ASSERT_GT(trace.size(), 5u);

  std::stringstream ss;
  pcap::write_stream(ss, trace);
  const auto back = pcap::read_stream(ss);
  ASSERT_EQ(back.size(), trace.size());

  Analyzer analyzer;
  const auto direct = analyzer.analyze(trace);
  const auto roundtrip = analyzer.analyze(back);
  ASSERT_EQ(direct.flows.size(), 1u);
  ASSERT_EQ(roundtrip.flows.size(), 1u);
  EXPECT_EQ(direct.flows[0].unique_bytes, roundtrip.flows[0].unique_bytes);
  EXPECT_EQ(direct.flows[0].stalls.size(), roundtrip.flows[0].stalls.size());
  EXPECT_EQ(direct.flows[0].data_segments, roundtrip.flows[0].data_segments);
  for (std::size_t i = 0; i < direct.flows[0].stalls.size(); ++i) {
    EXPECT_EQ(direct.flows[0].stalls[i].cause,
              roundtrip.flows[0].stalls[i].cause);
  }
}

TEST(Integration, AnalyzerByteAccounting) {
  ExperimentConfig cfg;
  cfg.profile = software_download_profile();
  cfg.flows = 15;
  cfg.seed = 6;
  const auto res = run_experiment(cfg);
  ASSERT_EQ(res.analyses.size(), res.outcomes.size());
  for (std::size_t i = 0; i < res.analyses.size(); ++i) {
    if (!res.outcomes[i].completed) continue;
    // Unique bytes seen by TAPO = response bytes + 1 (FIN) for completed
    // flows (persist probes are part of the stream).
    EXPECT_EQ(res.analyses[i].unique_bytes,
              res.outcomes[i].response_bytes + 1);
  }
}

stats::Cdf latency_cdf(const ExperimentResult& res) {
  stats::Cdf cdf;
  for (const auto& o : res.outcomes) {
    for (const auto& r : o.metrics.requests) {
      if (r.completed && r.server_acked_resp != TimePoint()) {
        cdf.add(r.latency().sec());
      }
    }
  }
  return cdf;
}

// The headline Table-8 *shape*: on short lossy flows, S-RTO beats native
// Linux at the tail, and beats TLP on mean latency.
TEST(Integration, SrtoImprovesShortFlowTailLatency) {
  ExperimentConfig base;
  base.profile = web_search_profile();
  // Force loss so recovery matters (higher than the calibrated default to
  // keep the test fast at a modest flow count).
  base.profile.path.clean_prob = 0.0;
  base.profile.path.loss_mean = 0.06;
  base.profile.backend_miss_prob = 0.0;  // isolate the transport effect
  base.flows = 500;
  base.seed = 31;
  base.analyze = false;

  ExperimentConfig srto = base;
  srto.recovery = tcp::RecoveryMechanism::kSrto;

  const auto native = run_experiment(base);
  const auto with_srto = run_experiment(srto);
  const auto lat_native = latency_cdf(native);
  const auto lat_srto = latency_cdf(with_srto);
  ASSERT_GT(lat_native.count(), 400u);
  ASSERT_GT(lat_srto.count(), 400u);

  // The mean and the extreme tail improve (paper: -45% p90 on
  // cloud-storage short flows, -11.3% mean on web search). We assert
  // direction, not magnitude.
  EXPECT_LE(lat_srto.percentile(0.90), lat_native.percentile(0.90));
  EXPECT_LE(lat_srto.percentile(0.99), lat_native.percentile(0.99));
  EXPECT_LT(lat_srto.mean(), lat_native.mean());
}

TEST(Integration, SrtoReducesRtoFires) {
  ExperimentConfig base;
  base.profile = web_search_profile();
  base.profile.path.clean_prob = 0.0;
  base.profile.path.loss_mean = 0.06;
  base.flows = 100;
  base.seed = 13;
  base.analyze = false;
  ExperimentConfig srto = base;
  srto.recovery = tcp::RecoveryMechanism::kSrto;

  auto count_rtos = [](const ExperimentResult& r) {
    std::uint64_t n = 0;
    for (const auto& o : r.outcomes) n += o.sender_stats.rto_fires;
    return n;
  };
  const auto native = run_experiment(base);
  const auto with = run_experiment(srto);
  EXPECT_LT(count_rtos(with), count_rtos(native));
}

TEST(Integration, SrtoIncreasesRetransmissionsSlightly) {
  // Table 9: the price of aggression is a slightly higher retransmission
  // ratio (2.2% -> 3.0% for web search).
  ExperimentConfig base;
  base.profile = web_search_profile();
  base.profile.path.clean_prob = 0.0;
  base.profile.path.loss_mean = 0.05;
  base.flows = 150;
  base.seed = 23;
  base.analyze = false;
  ExperimentConfig srto = base;
  srto.recovery = tcp::RecoveryMechanism::kSrto;

  const auto native = run_experiment(base);
  const auto with = run_experiment(srto);
  EXPECT_GE(with.retrans_ratio(), native.retrans_ratio());
  // But not catastrophically so (stays within ~2x).
  EXPECT_LT(with.retrans_ratio(), native.retrans_ratio() * 2.0 + 0.02);
}

TEST(Integration, StallTimeNeverExceedsTransmissionTime) {
  for (auto svc : {Service::kCloudStorage, Service::kSoftwareDownload,
                   Service::kWebSearch}) {
    ExperimentConfig cfg;
    cfg.profile = profile_for(svc);
    cfg.flows = 25;
    cfg.seed = 41;
    const auto res = run_experiment(cfg);
    for (const auto& fa : res.analyses) {
      EXPECT_LE(fa.stalled_time, fa.transmission_time);
      EXPECT_GE(fa.stall_ratio, 0.0);
      EXPECT_LE(fa.stall_ratio, 1.0);
    }
  }
}

TEST(Integration, BreakdownCountsConserved) {
  ExperimentConfig cfg;
  cfg.profile = cloud_storage_profile();
  cfg.flows = 30;
  cfg.seed = 8;
  const auto res = run_experiment(cfg);
  const auto bd = make_stall_breakdown(res.analyses);
  std::uint64_t sum = 0;
  Duration time_sum;
  for (std::size_t c = 0; c < kNumStallCauses; ++c) {
    sum += bd.by_cause[c].count;
    time_sum += bd.by_cause[c].time;
  }
  EXPECT_EQ(sum, bd.total_count);
  EXPECT_EQ(time_sum, bd.total_time);

  const auto rbd = make_retrans_breakdown(res.analyses);
  std::uint64_t rsum = 0;
  for (std::size_t c = 0; c < kNumRetransCauses; ++c) {
    rsum += rbd.by_cause[c].count;
  }
  EXPECT_EQ(rsum, rbd.total_count);
  EXPECT_EQ(
      rbd.total_count,
      bd.by_cause[static_cast<std::size_t>(StallCause::kRetransmission)].count);
}

TEST(Integration, MimicCountersMatchSenderStats) {
  // The analyzer reconstructs retransmissions from the trace alone; its
  // totals should closely match the sender's ground-truth stats.
  ExperimentConfig cfg;
  cfg.profile = software_download_profile();
  cfg.profile.path.clean_prob = 0.0;
  cfg.profile.path.loss_mean = 0.04;
  cfg.flows = 20;
  cfg.seed = 19;
  const auto res = run_experiment(cfg);
  std::uint64_t sender_retrans = 0, mimic_retrans = 0;
  for (const auto& o : res.outcomes) sender_retrans += o.sender_stats.retransmissions;
  for (const auto& fa : res.analyses) mimic_retrans += fa.retrans_segments;
  EXPECT_EQ(mimic_retrans, sender_retrans);
}

}  // namespace
}  // namespace tapo
