// Tests for the sender scoreboard (SACK bookkeeping, Eq.-1 counters).
#include <gtest/gtest.h>

#include "tcp/scoreboard.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;

// Shorthand: tests build sequence positions from small raw integers.
constexpr Seq32 S(std::uint32_t v) { return Seq32{v}; }

Scoreboard make_board(int segments, TimePoint t = TimePoint::epoch()) {
  Scoreboard b;
  for (int i = 0; i < segments; ++i) {
    const auto s = static_cast<std::uint32_t>(1 + i * kMss);
    b.on_transmit(S(s), S(s + kMss), t);
  }
  return b;
}

TEST(Scoreboard, TransmitTracksCounters) {
  auto b = make_board(5);
  EXPECT_EQ(b.packets_out(), 5u);
  EXPECT_EQ(b.in_flight(), 5u);
  EXPECT_EQ(b.snd_una(), S(1));
  EXPECT_EQ(b.snd_nxt(), S(1 + 5 * kMss));
  EXPECT_EQ(b.sacked_out(), 0u);
  EXPECT_EQ(b.lost_out(), 0u);
}

TEST(Scoreboard, AckToPopsFullyAcked) {
  auto b = make_board(5);
  const auto acked = b.ack_to(S(1 + 2 * kMss));
  EXPECT_EQ(acked.size(), 2u);
  EXPECT_EQ(b.packets_out(), 3u);
  EXPECT_EQ(b.snd_una(), S(1 + 2 * kMss));
}

TEST(Scoreboard, PartialAckKeepsSegment) {
  auto b = make_board(2);
  const auto acked = b.ack_to(S(1 + kMss / 2));
  EXPECT_EQ(acked.size(), 0u);
  EXPECT_EQ(b.packets_out(), 2u);
}

TEST(Scoreboard, SackMarksSegments) {
  auto b = make_board(5);
  // SACK covering segments 3 and 4 (0-indexed 2,3).
  const std::uint32_t s3 = 1 + 2 * kMss;
  const auto n = b.apply_sack({{S(s3), S(s3 + 2 * kMss)}}, b.snd_una());
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(b.sacked_out(), 2u);
  EXPECT_EQ(b.in_flight(), 3u);
  // Re-applying the same SACK is idempotent.
  EXPECT_EQ(b.apply_sack({{S(s3), S(s3 + 2 * kMss)}}, b.snd_una()), 0u);
}

TEST(Scoreboard, SackBelowUnaIgnored) {
  auto b = make_board(5);
  b.ack_to(S(1 + 2 * kMss));
  EXPECT_EQ(b.apply_sack({{S(1), S(1 + kMss)}}, S(1 + 2 * kMss)), 0u);
}

TEST(Scoreboard, PartialSackBlockDoesNotMark) {
  auto b = make_board(2);
  // Block covers only half of segment 1.
  EXPECT_EQ(b.apply_sack({{S(1), S(1 + kMss / 2)}}, S(1)), 0u);
  EXPECT_EQ(b.sacked_out(), 0u);
}

TEST(Scoreboard, MarkLostBySackThreshold) {
  auto b = make_board(6);
  // SACK the last three segments: segments 1..3 have 3 SACKed above.
  const std::uint32_t s4 = 1 + 3 * kMss;
  b.apply_sack({{S(s4), S(s4 + 3 * kMss)}}, S(1));
  const auto newly = b.mark_lost_by_sack(3);
  EXPECT_EQ(newly, 3u);
  EXPECT_EQ(b.lost_out(), 3u);
  // in_flight = 6 + 0 - (3 + 3) = 0.
  EXPECT_EQ(b.in_flight(), 0u);
  // Idempotent.
  EXPECT_EQ(b.mark_lost_by_sack(3), 0u);
}

TEST(Scoreboard, MarkLostRespectsDupthres) {
  auto b = make_board(4);
  const std::uint32_t s3 = 1 + 2 * kMss;
  b.apply_sack({{S(s3), S(s3 + 2 * kMss)}}, S(1));  // two SACKed above
  EXPECT_EQ(b.mark_lost_by_sack(3), 0u);   // below threshold
  EXPECT_EQ(b.mark_lost_by_sack(2), 2u);   // threshold reached
}

TEST(Scoreboard, Holes) {
  auto b = make_board(5);
  const std::uint32_t s2 = 1 + kMss;
  const std::uint32_t s5 = 1 + 4 * kMss;
  b.apply_sack({{S(s2), S(s2 + kMss)}, {S(s5), S(s5 + kMss)}}, S(1));
  // Segments 1, 3, 4 are unSACKed; 1, 3, 4 all have a SACKed block above.
  EXPECT_EQ(b.holes(), 3u);
  b.mark_lost_by_sack(1);  // marks holes lost
  EXPECT_EQ(b.holes(), 0u);
}

TEST(Scoreboard, RetransmitBookkeeping) {
  auto b = make_board(3, TimePoint::from_us(1000));
  b.on_retransmit(S(1), TimePoint::from_us(5000), /*rto=*/false);
  EXPECT_EQ(b.retrans_out(), 1u);
  const SegmentState* s = b.find(S(1));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->retrans, 1);
  EXPECT_TRUE(s->fast_retransmitted);
  EXPECT_FALSE(s->rto_retransmitted);
  EXPECT_EQ(s->last_sent, TimePoint::from_us(5000));
  EXPECT_EQ(s->first_sent, TimePoint::from_us(1000));

  b.on_retransmit(S(1), TimePoint::from_us(9000), /*rto=*/true);
  EXPECT_TRUE(b.find(S(1))->rto_retransmitted);
  EXPECT_EQ(b.find(S(1))->retrans, 2);
}

TEST(Scoreboard, InFlightEquationWithRetrans) {
  auto b = make_board(5);
  // Mark head lost and retransmit it.
  EXPECT_TRUE(b.mark_head_lost());
  EXPECT_EQ(b.lost_out(), 1u);
  // in_flight = 5 + 0 - (0 + 1) = 4.
  EXPECT_EQ(b.in_flight(), 4u);
  b.on_retransmit(S(1), TimePoint::epoch(), false);
  // in_flight = 5 + 1 - (0 + 1) = 5.
  EXPECT_EQ(b.in_flight(), 5u);
}

TEST(Scoreboard, SackClearsLostAndRetransPending) {
  auto b = make_board(3);
  b.mark_head_lost();
  b.on_retransmit(S(1), TimePoint::epoch(), false);
  b.apply_sack({{S(1), S(1 + kMss)}}, S(1));
  EXPECT_EQ(b.lost_out(), 0u);
  EXPECT_EQ(b.retrans_out(), 0u);
  EXPECT_EQ(b.sacked_out(), 1u);
}

TEST(Scoreboard, MarkAllLostSkipsSacked) {
  auto b = make_board(4);
  const std::uint32_t s2 = 1 + kMss;
  b.apply_sack({{S(s2), S(s2 + kMss)}}, S(1));
  b.mark_all_lost();
  EXPECT_EQ(b.lost_out(), 3u);
  EXPECT_EQ(b.sacked_out(), 1u);
}

TEST(Scoreboard, NextLostToRetransmitInOrder) {
  auto b = make_board(4);
  b.mark_all_lost();
  auto seq = b.next_lost_to_retransmit();
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, S(1));
  b.on_retransmit(*seq, TimePoint::epoch(), true);
  seq = b.next_lost_to_retransmit();
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(*seq, S(1 + kMss));
}

TEST(Scoreboard, MarkHeadLostSkipsSackedHead) {
  auto b = make_board(3);
  b.apply_sack({{S(1), S(1 + kMss)}}, S(1));
  EXPECT_TRUE(b.mark_head_lost());  // marks segment 2
  EXPECT_FALSE(b.find(S(1))->lost);
  EXPECT_TRUE(b.find(S(1 + kMss))->lost);
}

TEST(Scoreboard, ClearLostMarks) {
  auto b = make_board(3);
  b.mark_all_lost();
  b.clear_lost_marks();
  EXPECT_EQ(b.lost_out(), 0u);
}

TEST(Scoreboard, FindBoundaries) {
  auto b = make_board(2);
  EXPECT_EQ(b.find(S(0)), nullptr);
  EXPECT_NE(b.find(S(1)), nullptr);
  EXPECT_NE(b.find(S(kMss)), nullptr);       // last byte of segment 1
  EXPECT_EQ(b.find(S(1 + 2 * kMss)), nullptr);  // beyond snd_nxt
}

TEST(Scoreboard, NewlySackedOutParam) {
  auto b = make_board(3, TimePoint::from_us(777));
  std::vector<SegmentState> newly;
  const std::uint32_t s2 = 1 + kMss;
  b.apply_sack({{S(s2), S(s2 + kMss)}}, S(1), &newly);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0].start, S(s2));
  EXPECT_EQ(newly[0].first_sent, TimePoint::from_us(777));
  EXPECT_FALSE(newly[0].sacked);  // snapshot taken before marking
}

}  // namespace
}  // namespace tapo::tcp
