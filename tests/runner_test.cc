// Tests for the sharded parallel experiment runner and the streaming
// FlowSink API: bit-identical parallel-vs-serial results, sink ordering,
// bounded-memory aggregation, trace capture, and config validation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "stats/table.h"
#include "tapo/report.h"
#include "util/strings.h"
#include "workload/runner.h"

namespace tapo::workload {
namespace {

ExperimentConfig small_config(const ServiceProfile& profile,
                              std::size_t flows = 18, std::uint64_t seed = 77) {
  return ExperimentConfig{}
      .with_profile(profile)
      .with_flows(flows)
      .with_seed(seed);
}

/// Renders the paper-style stall table for byte-for-byte comparison.
std::string stall_table(const ExperimentResult& res) {
  const auto bd = analysis::make_stall_breakdown(res.analyses);
  stats::Table t("stalls");
  t.set_header({"cause", "count", "time_us", "vol%", "time%"});
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    const auto cause = static_cast<analysis::StallCause>(c);
    t.add_row({analysis::to_string(cause),
               std::to_string(bd.by_cause[c].count),
               std::to_string(bd.by_cause[c].time.us()),
               str_format("%.6f", bd.volume_fraction(cause)),
               str_format("%.6f", bd.time_fraction(cause))});
  }
  t.add_row({"total", std::to_string(bd.total_count),
             std::to_string(bd.total_time.us()), "", ""});
  return t.render();
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(stall_table(a), stall_table(b));
  EXPECT_EQ(a.retrans_ratio(), b.retrans_ratio());  // bitwise
  EXPECT_EQ(a.total_packets, b.total_packets);
  EXPECT_EQ(a.data_segments_sent, b.data_segments_sent);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].response_bytes, b.outcomes[i].response_bytes);
    EXPECT_EQ(a.outcomes[i].init_rwnd_bytes, b.outcomes[i].init_rwnd_bytes);
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].sender_stats.segments_sent,
              b.outcomes[i].sender_stats.segments_sent);
  }
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    EXPECT_EQ(a.analyses[i].unique_bytes, b.analyses[i].unique_bytes);
    EXPECT_EQ(a.analyses[i].stalls.size(), b.analyses[i].stalls.size());
    EXPECT_EQ(a.analyses[i].stalled_time, b.analyses[i].stalled_time);
    EXPECT_EQ(a.analyses[i].retrans_segments, b.analyses[i].retrans_segments);
  }
}

TEST(ParallelRunner, BitIdenticalAcrossThreadCountsAllProfiles) {
  for (const auto& profile :
       {cloud_storage_profile(), software_download_profile(),
        web_search_profile()}) {
    const auto cfg = small_config(profile);
    const auto serial = run_experiment(cfg);  // threads = 1, inline path
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      const auto parallel = run_experiment(cfg, threads);
      SCOPED_TRACE(profile.name + " @ " + std::to_string(threads) +
                   " threads");
      expect_identical(serial, parallel);
    }
  }
}

TEST(ParallelRunner, SinkSeesFlowsInIndexOrder) {
  struct OrderSink : FlowSink {
    std::vector<std::size_t> indices;
    bool finished = false;
    RunStats stats;
    void consume(FlowResult&& r) override { indices.push_back(r.index); }
    void finish(const RunStats& s) override {
      finished = true;
      stats = s;
    }
  };

  const auto cfg = small_config(web_search_profile(), 24);
  OrderSink sink;
  RunOptions options;
  options.threads = 4;
  const auto stats = ParallelRunner(cfg, options).run(sink);

  ASSERT_EQ(sink.indices.size(), 24u);
  for (std::size_t i = 0; i < sink.indices.size(); ++i) {
    EXPECT_EQ(sink.indices[i], i);
  }
  EXPECT_TRUE(sink.finished);
  EXPECT_EQ(sink.stats.flows, 24u);
  EXPECT_EQ(stats.flows, 24u);
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.simulate_seconds, 0.0);
  EXPECT_GT(stats.flows_per_second, 0.0);
  EXPECT_GE(stats.worker_utilization, 0.0);
  EXPECT_LE(stats.worker_utilization, 1.0);
}

TEST(ParallelRunner, ProgressCallbackCountsEveryFlow) {
  const auto cfg = small_config(web_search_profile(), 12);
  std::vector<std::size_t> done;
  RunOptions options;
  options.threads = 3;
  options.progress = [&](std::size_t d, std::size_t total) {
    EXPECT_EQ(total, 12u);
    done.push_back(d);
  };
  CollectingSink sink;
  ParallelRunner(cfg, options).run(sink);
  ASSERT_EQ(done.size(), 12u);
  for (std::size_t i = 0; i < done.size(); ++i) EXPECT_EQ(done[i], i + 1);
}

TEST(ParallelRunner, BreakdownSinkMatchesBufferedAggregation) {
  const auto cfg = small_config(software_download_profile(), 16, 5);
  const auto buffered = run_experiment(cfg);
  const auto ref = analysis::make_stall_breakdown(buffered.analyses);

  BreakdownSink sink;
  RunOptions options;
  options.threads = 2;
  ParallelRunner(cfg, options).run(sink);

  EXPECT_EQ(sink.flows(), 16u);
  EXPECT_EQ(sink.total_packets(), buffered.total_packets);
  EXPECT_EQ(sink.retrans_ratio(), buffered.retrans_ratio());
  EXPECT_EQ(sink.stalls().total_count, ref.total_count);
  EXPECT_EQ(sink.stalls().total_time, ref.total_time);
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    EXPECT_EQ(sink.stalls().by_cause[c].count, ref.by_cause[c].count);
    EXPECT_EQ(sink.stalls().by_cause[c].time, ref.by_cause[c].time);
  }
  const auto rref = analysis::make_retrans_breakdown(buffered.analyses);
  EXPECT_EQ(sink.retrans().total_count, rref.total_count);
  EXPECT_EQ(sink.retrans().f_double_time, rref.f_double_time);
}

// The serialization contract (runner.h): consume() and the progress
// callback run one-at-a-time under the merge lock, so plain unsynchronized
// state is safe to mutate from either. The counters below are deliberately
// non-atomic; the TSan build's runner_parallel_tsan entry runs this test
// under ThreadSanitizer, which would flag any unlocked concurrent access.
TEST(ParallelRunner, ProgressCallbackSerializedWithSink) {
  const auto cfg = small_config(web_search_profile(), 32, 11);
  struct PlainSink : FlowSink {
    std::uint64_t consumed = 0;        // unsynchronized on purpose
    std::uint64_t packets = 0;
    void consume(FlowResult&& r) override {
      ++consumed;
      packets += r.packets;
    }
  };
  PlainSink sink;
  std::uint64_t progress_calls = 0;    // unsynchronized on purpose
  std::size_t last_done = 0;
  RunOptions options;
  options.threads = 8;
  options.progress = [&](std::size_t done, std::size_t) {
    ++progress_calls;
    EXPECT_EQ(done, last_done + 1);  // strictly sequential, never reordered
    last_done = done;
  };
  ParallelRunner(cfg, options).run(sink);
  EXPECT_EQ(sink.consumed, 32u);
  EXPECT_EQ(progress_calls, 32u);
  EXPECT_EQ(last_done, 32u);
  EXPECT_GT(sink.packets, 0u);
}

TEST(ParallelRunner, BreakdownSinkShardedBitwiseEqualsSerial) {
  // One BreakdownSink fed by an 8-thread run must equal a serial run field
  // for field — the aggregates are integer counts and integer-us times, so
  // "close" is not good enough.
  const auto cfg = small_config(cloud_storage_profile(), 24, 3);
  BreakdownSink serial;
  ParallelRunner(cfg, {}).run(serial);

  BreakdownSink sharded;
  RunOptions options;
  options.threads = 8;
  ParallelRunner(cfg, options).run(sharded);

  EXPECT_EQ(sharded.flows(), serial.flows());
  EXPECT_EQ(sharded.total_packets(), serial.total_packets());
  EXPECT_EQ(sharded.data_segments_sent(), serial.data_segments_sent());
  EXPECT_EQ(sharded.retransmissions(), serial.retransmissions());
  EXPECT_EQ(sharded.retrans_ratio(), serial.retrans_ratio());  // bitwise
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    EXPECT_EQ(sharded.stalls().by_cause[c].count, serial.stalls().by_cause[c].count);
    EXPECT_EQ(sharded.stalls().by_cause[c].time, serial.stalls().by_cause[c].time);
  }
  for (std::size_t c = 0; c < analysis::kNumRetransCauses; ++c) {
    EXPECT_EQ(sharded.retrans().by_cause[c].count, serial.retrans().by_cause[c].count);
    EXPECT_EQ(sharded.retrans().by_cause[c].time, serial.retrans().by_cause[c].time);
  }
  EXPECT_EQ(sharded.retrans().f_double_time, serial.retrans().f_double_time);
  EXPECT_EQ(sharded.retrans().t_double_time, serial.retrans().t_double_time);
  EXPECT_EQ(sharded.stall_ratio_cdf().count(), serial.stall_ratio_cdf().count());
}

TEST(ParallelRunner, DeriveFlowSeedsIsPureAndMatchesMasterSplits) {
  const auto a = derive_flow_seeds(9, 50);
  const auto b = derive_flow_seeds(9, 50);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_EQ(a, b);
  // Prefix-stability: the first k seeds do not depend on the total count.
  const auto prefix = derive_flow_seeds(9, 10);
  for (std::size_t i = 0; i < prefix.size(); ++i) EXPECT_EQ(prefix[i], a[i]);
  // And the scheme is exactly the master-split sequence.
  Rng master(9);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(master.split_seed(), a[i]);
}

TEST(ParallelRunner, TraceCaptureReturnsOwnedTraces) {
  auto cfg = small_config(web_search_profile(), 4);
  cfg.capture = TraceCapture::kServerNic;
  const auto res = run_experiment(cfg, 2);
  ASSERT_EQ(res.outcomes.size(), 4u);
  std::uint64_t packets = 0;
  for (const auto& o : res.outcomes) {
    ASSERT_TRUE(o.trace.has_value());
    EXPECT_GT(o.trace->size(), 0u);
    packets += o.trace->size();
  }
  EXPECT_EQ(packets, res.total_packets);

  // Default: no traces retained, analysis still runs.
  cfg.capture = TraceCapture::kNone;
  const auto lean = run_experiment(cfg, 2);
  for (const auto& o : lean.outcomes) EXPECT_FALSE(o.trace.has_value());
  EXPECT_EQ(lean.analyses.size(), 4u);
  EXPECT_EQ(lean.total_packets, res.total_packets);
}

TEST(ParallelRunner, RunFlowCaptureMatchesAnalyzePath) {
  const auto profile = web_search_profile();
  Rng rng(3);
  const auto scenario = draw_scenario(profile, rng, 1);
  const auto with = run_flow(scenario, Rng(11), Duration::seconds(600.0),
                             TraceCapture::kServerNic);
  const auto without = run_flow(scenario, Rng(11), Duration::seconds(600.0));
  ASSERT_TRUE(with.trace.has_value());
  EXPECT_FALSE(without.trace.has_value());
  EXPECT_GT(with.trace->size(), 0u);
  // Capture does not perturb the simulation itself.
  EXPECT_EQ(with.sender_stats.segments_sent, without.sender_stats.segments_sent);
  EXPECT_EQ(with.completed, without.completed);
}

TEST(ExperimentConfigValidation, RejectsZeroFlowsEagerly) {
  EXPECT_THROW(ExperimentConfig{}.with_flows(0), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsNonPositiveFlowCap) {
  EXPECT_THROW(ExperimentConfig{}.with_max_flow_time(Duration::zero()),
               std::invalid_argument);
}

TEST(ExperimentConfigValidation, RunnerRejectsDefaultProfile) {
  // A default-constructed profile has no rwnd classes; the old harness
  // silently produced empty tables for it.
  ExperimentConfig cfg;
  cfg.flows = 1;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);

  cfg.profile = web_search_profile();
  cfg.flows = 0;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(ExperimentConfigValidation, FluentChainBuildsValidConfig) {
  const auto cfg = ExperimentConfig{}
                       .with_profile(web_search_profile())
                       .with_flows(7)
                       .with_seed(123)
                       .with_recovery(tcp::RecoveryMechanism::kSrto)
                       .with_analysis(false)
                       .with_capture(TraceCapture::kServerNic)
                       .with_max_flow_time(Duration::seconds(30.0));
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.flows, 7u);
  EXPECT_EQ(cfg.seed, 123u);
  ASSERT_TRUE(cfg.recovery.has_value());
  EXPECT_EQ(*cfg.recovery, tcp::RecoveryMechanism::kSrto);
  EXPECT_FALSE(cfg.analyze);
  EXPECT_EQ(cfg.capture, TraceCapture::kServerNic);
  const auto res = run_experiment(cfg, 2);
  EXPECT_EQ(res.outcomes.size(), 7u);
  EXPECT_TRUE(res.analyses.empty());
}

}  // namespace
}  // namespace tapo::workload
