// Tests for the Linux-style TCP sender: window management, the
// Open/Disorder/Recovery/Loss machine, fast retransmit, RTO behaviour, and
// the TLP / S-RTO recovery mechanisms.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/sender.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr net::Seq32 kIsn{1};

SenderConfig test_config() {
  SenderConfig cfg;
  cfg.mss = kMss;
  cfg.init_cwnd = 3;
  cfg.cc = CcAlgo::kReno;
  return cfg;
}

struct Harness {
  sim::Simulator sim;
  std::vector<TcpSender::SegmentOut> sent;
  std::unique_ptr<TcpSender> sender;
  bool done = false;

  explicit Harness(SenderConfig cfg = test_config()) {
    sender = std::make_unique<TcpSender>(
        sim, cfg, [this](const TcpSender::SegmentOut& s) { sent.push_back(s); });
    sender->set_done_callback([this] { done = true; });
    sender->start(kIsn);
  }

  /// Seeds SRTT so RTO ~ 100 + 200 = 300 ms.
  void seed_rtt_100ms() {
    for (int i = 0; i < 20; ++i) sender->seed_rtt(Duration::millis(100));
  }

  void ack(net::Seq32 ack_seq, std::vector<net::SackBlock> sacks = {},
           std::uint32_t rwnd = 1 << 20) {
    sender->on_ack(ack_seq, rwnd, sacks, std::nullopt);
  }

  /// Runs the simulator forward by `d`.
  void advance(Duration d) { sim.run_until(sim.now() + d); }

  net::Seq32 seg_start(int i) const {
    return kIsn + static_cast<std::uint32_t>(i) * kMss;
  }
  net::SackBlock sack_of(int i, int n = 1) const {
    return {seg_start(i), seg_start(i + n)};
  }
};

TEST(Sender, InitialWindowLimitsFirstBurst) {
  Harness h;
  h.sender->app_write(10 * kMss);
  ASSERT_EQ(h.sent.size(), 3u);  // init_cwnd = 3
  EXPECT_EQ(h.sent[0].seq, kIsn);
  EXPECT_EQ(h.sent[1].seq, kIsn + kMss);
  EXPECT_EQ(h.sent[2].seq, kIsn + 2 * kMss);
  EXPECT_EQ(h.sender->in_flight(), 3u);
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
}

TEST(Sender, SlowStartGrowsWindowOnAcks) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(100 * kMss);
  h.advance(Duration::millis(100));
  h.ack(h.seg_start(2));  // 2 segments acked
  // cwnd 3 -> 5; 2 acked + 2 growth -> 4 more segments on the wire.
  EXPECT_EQ(h.sender->cwnd(), 5u);
  EXPECT_EQ(h.sent.size(), 7u);
  EXPECT_EQ(h.sender->in_flight(), 5u);
}

TEST(Sender, NoGrowthWhenAppLimited) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(2 * kMss);  // less than the window
  h.advance(Duration::millis(100));
  h.ack(h.seg_start(2));
  EXPECT_EQ(h.sender->cwnd(), 3u);  // not cwnd-limited, no growth
}

TEST(Sender, PartialSegmentAtStreamEnd) {
  Harness h;
  h.sender->app_write(kMss + 300);
  ASSERT_EQ(h.sent.size(), 2u);
  EXPECT_EQ(h.sent[1].len, 300u);
}

TEST(Sender, FastRetransmitAfterDupthresSackedDupacks) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg_start(2));  // grow window, 7 sent
  const auto sent_before = h.sent.size();
  // Segment 2 (seq_start(2)) is lost; SACKs for 3, 4, 5 arrive.
  h.ack(h.seg_start(2), {h.sack_of(3)});
  EXPECT_EQ(h.sender->state(), CaState::kDisorder);
  h.ack(h.seg_start(2), {h.sack_of(3, 2)});
  h.ack(h.seg_start(2), {h.sack_of(3, 3)});
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
  // The head segment was retransmitted.
  bool head_retrans = false;
  for (std::size_t i = sent_before; i < h.sent.size(); ++i) {
    if (h.sent[i].retransmission && h.sent[i].seq == h.seg_start(2)) {
      head_retrans = true;
    }
  }
  EXPECT_TRUE(head_retrans);
  EXPECT_GE(h.sender->stats().fast_retransmits, 1u);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
}

TEST(Sender, PureDupacksTriggerFastRetransmitWithoutSack) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(8 * kMss);
  h.advance(Duration::millis(10));
  const auto before = h.sent.size();
  // The first ACK establishes the peer window (a window change suppresses
  // dupack counting, as in the kernel); the next three are pure dupacks.
  h.ack(kIsn);
  h.ack(kIsn);
  h.ack(kIsn);
  h.ack(kIsn);
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
  ASSERT_GT(h.sent.size(), before);
  EXPECT_TRUE(h.sent.back().retransmission);
  EXPECT_EQ(h.sent.back().seq, kIsn);
}

TEST(Sender, LimitedTransmitSendsNewDataOnFirstDupacks) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(20 * kMss);  // 3 in flight, more pending
  h.advance(Duration::millis(10));
  const auto before = h.sent.size();
  h.ack(kIsn, {h.sack_of(1)});  // first dupack
  EXPECT_EQ(h.sender->state(), CaState::kDisorder);
  // Limited transmit plus SACK-freed window space let new (never
  // retransmitted) segments flow before fast retransmit triggers.
  ASSERT_GT(h.sent.size(), before);
  for (std::size_t i = before; i < h.sent.size(); ++i) {
    EXPECT_FALSE(h.sent[i].retransmission);
  }
  const auto after_first = h.sent.size();
  h.ack(kIsn, {h.sack_of(1, 2)});  // second dupack
  EXPECT_GT(h.sent.size(), after_first);
  EXPECT_FALSE(h.sent.back().retransmission);
  EXPECT_EQ(h.sender->state(), CaState::kDisorder);
}

TEST(Sender, RecoveryCompletionRestoresOpenAndSsthresh) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg_start(2));
  // Lose segment 2; recover it.
  h.ack(h.seg_start(2), {h.sack_of(3)});
  h.ack(h.seg_start(2), {h.sack_of(3, 2)});
  h.ack(h.seg_start(2), {h.sack_of(3, 3)});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  const std::uint32_t ssthresh = h.sender->ssthresh();
  // Full ACK beyond high_seq ends recovery.
  h.ack(h.sender->snd_nxt());
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
  EXPECT_LE(h.sender->cwnd(), std::max(ssthresh, 2u));
}

TEST(Sender, RtoFiresWithInitialTimerWithoutRttSample) {
  Harness h;
  h.sender->app_write(2 * kMss);
  h.advance(Duration::seconds(2.9));
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  h.advance(Duration::seconds(0.2));  // past the 3 s initial RTO
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
  EXPECT_EQ(h.sender->state(), CaState::kLoss);
  EXPECT_EQ(h.sender->cwnd(), 1u);
  // Head was retransmitted.
  EXPECT_TRUE(h.sent.back().retransmission);
  EXPECT_EQ(h.sent.back().seq, kIsn);
}

TEST(Sender, RtoBackoffDoubles) {
  Harness h;
  h.seed_rtt_100ms();  // RTO = 300 ms
  h.sender->app_write(kMss);
  h.advance(Duration::millis(350));
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
  // Next RTO should take ~600 ms, not ~300.
  h.advance(Duration::millis(450));
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
  h.advance(Duration::millis(250));
  EXPECT_EQ(h.sender->stats().rto_fires, 2u);
}

TEST(Sender, LossStateRecoversViaSlowStart) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(6 * kMss);
  h.advance(Duration::millis(400));  // RTO fires, all marked lost
  ASSERT_EQ(h.sender->state(), CaState::kLoss);
  // Acks arrive for retransmissions; window regrows and segments flow.
  h.ack(h.seg_start(1));
  EXPECT_GE(h.sender->cwnd(), 2u);
  h.ack(h.seg_start(3));
  h.ack(h.seg_start(6));
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
  EXPECT_EQ(h.sender->in_flight(), 0u);
}

TEST(Sender, RwndLimitsSending) {
  Harness h;
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  // Client advertises only 2 MSS.
  h.ack(h.seg_start(3), {}, 2 * kMss);
  // snd_nxt can be at most snd_una + 2*kMss.
  EXPECT_LE(h.sender->snd_nxt(), h.seg_start(3) + 2 * kMss);
}

TEST(Sender, ZeroWindowTriggersPersistProbes) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg_start(3), {}, 0);  // zero window, everything acked
  EXPECT_EQ(h.sender->stats().zero_window_episodes, 1u);
  EXPECT_EQ(h.sender->in_flight(), 0u);
  const auto before = h.sent.size();
  h.advance(Duration::seconds(1.0));
  // At least one 1-byte window probe went out.
  ASSERT_GT(h.sent.size(), before);
  EXPECT_EQ(h.sent[before].len, 1u);
  EXPECT_GE(h.sender->stats().persist_probes, 1u);
  // Window reopens: transfer resumes with full segments.
  h.ack(h.sender->snd_nxt(), {}, 1 << 20);
  EXPECT_GT(h.sender->in_flight(), 0u);
  EXPECT_EQ(h.sent.back().len, kMss);
}

TEST(Sender, FinAfterDataAndDoneCallback) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(2 * kMss);
  h.sender->app_close();
  // Data segments + FIN on the wire.
  ASSERT_EQ(h.sent.size(), 3u);
  EXPECT_TRUE(h.sent[2].fin);
  EXPECT_EQ(h.sent[2].len, 0u);
  EXPECT_FALSE(h.done);
  h.ack(h.seg_start(2) + 1);  // covers data + FIN
  EXPECT_TRUE(h.done);
  EXPECT_TRUE(h.sender->finished());
}

TEST(Sender, FinRetransmittedOnRto) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(kMss);
  h.sender->app_close();
  h.ack(h.seg_start(1));  // data acked; FIN outstanding
  const auto before = h.sent.size();
  h.advance(Duration::seconds(1.0));
  ASSERT_GT(h.sent.size(), before);
  EXPECT_TRUE(h.sent.back().fin);
  EXPECT_TRUE(h.sent.back().retransmission);
  h.ack(h.seg_start(1) + 1);
  EXPECT_TRUE(h.done);
}

TEST(Sender, DupthresAdaptsOnDsack) {
  SenderConfig cfg = test_config();
  cfg.adapt_dupthres = true;
  Harness h(cfg);
  h.sender->app_write(3 * kMss);
  EXPECT_EQ(h.sender->dupthres(), 3u);
  h.sender->on_ack(kIsn, 1 << 20, {}, net::SackBlock{kIsn, kIsn + kMss});
  EXPECT_EQ(h.sender->dupthres(), 4u);
  EXPECT_EQ(h.sender->stats().dsacks_received, 1u);
}

TEST(Sender, DataCarryingAcksAreNotDupacks) {
  Harness h;
  h.seed_rtt_100ms();
  h.sender->app_write(8 * kMss);
  h.advance(Duration::millis(10));
  for (int i = 0; i < 5; ++i) {
    h.sender->on_ack(kIsn, 1 << 20, {}, std::nullopt, /*carries_data=*/true);
  }
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
  EXPECT_EQ(h.sender->stats().retransmissions, 0u);
}

// ---------------------------------------------------------------- TLP ----

TEST(Tlp, ProbeRetransmitsTailBeforeRto) {
  SenderConfig cfg = test_config();
  cfg.recovery = RecoveryMechanism::kTlp;
  Harness h(cfg);
  h.seed_rtt_100ms();  // PTO = 2*SRTT = 200 ms < RTO 300 ms
  h.sender->app_write(3 * kMss);  // everything sent; no more new data
  const auto before = h.sent.size();
  h.advance(Duration::millis(250));
  ASSERT_GT(h.sent.size(), before);
  EXPECT_EQ(h.sender->stats().tlp_probes, 1u);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  // The probe re-sends the *tail* segment.
  EXPECT_TRUE(h.sent.back().retransmission);
  EXPECT_EQ(h.sent.back().seq, h.seg_start(2));
  // cwnd untouched by the probe.
  EXPECT_EQ(h.sender->cwnd(), 3u);
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
}

TEST(Tlp, ProbeSendsNewDataWhenAvailable) {
  SenderConfig cfg = test_config();
  cfg.recovery = RecoveryMechanism::kTlp;
  cfg.init_cwnd = 2;
  Harness h(cfg);
  h.seed_rtt_100ms();
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(20));
  h.ack(h.seg_start(1));       // one acked; cwnd-limited? one left
  h.sender->app_write(kMss);   // new data appears
  // Force the in-flight below cwnd so the probe can take the new-data path.
  const auto before = h.sent.size();
  h.advance(Duration::millis(400));
  ASSERT_GT(h.sent.size(), before);
  EXPECT_GE(h.sender->stats().tlp_probes, 1u);
}

TEST(Tlp, OneProbePerEpisodeThenRto) {
  SenderConfig cfg = test_config();
  cfg.recovery = RecoveryMechanism::kTlp;
  Harness h(cfg);
  h.seed_rtt_100ms();
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(250));
  EXPECT_EQ(h.sender->stats().tlp_probes, 1u);
  // No second probe: the native RTO takes over.
  h.advance(Duration::millis(400));
  EXPECT_EQ(h.sender->stats().tlp_probes, 1u);
  EXPECT_GE(h.sender->stats().rto_fires, 1u);
}

TEST(Tlp, NotArmedOutsideOpenState) {
  SenderConfig cfg = test_config();
  cfg.recovery = RecoveryMechanism::kTlp;
  Harness h(cfg);
  h.seed_rtt_100ms();
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg_start(2));
  // Enter recovery.
  h.ack(h.seg_start(2), {h.sack_of(3)});
  h.ack(h.seg_start(2), {h.sack_of(3, 2)});
  h.ack(h.seg_start(2), {h.sack_of(3, 3)});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  const auto probes = h.sender->stats().tlp_probes;
  h.advance(Duration::millis(250));
  EXPECT_EQ(h.sender->stats().tlp_probes, probes);
}

// --------------------------------------------------------------- S-RTO ---

SenderConfig srto_config() {
  SenderConfig cfg = test_config();
  cfg.recovery = RecoveryMechanism::kSrto;
  cfg.srto.t1 = 10;
  cfg.srto.t2 = 5;
  return cfg;
}

TEST(Srto, ProbeRetransmitsHeadAtTwoSrtt) {
  Harness h(srto_config());
  h.seed_rtt_100ms();
  h.sender->app_write(3 * kMss);
  const auto before = h.sent.size();
  h.advance(Duration::millis(210));  // 2*SRTT = 200 ms
  ASSERT_GT(h.sent.size(), before);
  EXPECT_EQ(h.sender->stats().srto_probes, 1u);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  // Unlike TLP, S-RTO retransmits the *first* unacked segment.
  EXPECT_TRUE(h.sent.back().retransmission);
  EXPECT_EQ(h.sent.back().seq, kIsn);
  // Alg. 1: enters Recovery.
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
  // cwnd (3) <= T2 (5): no halving.
  EXPECT_EQ(h.sender->cwnd(), 3u);
}

TEST(Srto, HalvesCwndOnlyAboveT2) {
  Harness h(srto_config());
  h.seed_rtt_100ms();
  h.sender->app_write(50 * kMss);
  // Grow cwnd past T2 with clean acks.
  std::uint32_t acked = 0;
  while (h.sender->cwnd() < 8) {
    h.advance(Duration::millis(100));
    acked += 2;
    h.ack(h.seg_start(static_cast<int>(acked)));
  }
  const std::uint32_t cwnd = h.sender->cwnd();
  // Probe fires at 2*SRTT, comfortably before the RTO (SRTT + 200 ms).
  h.advance(h.sender->rto_estimator().srtt() * 2 + Duration::millis(20));
  EXPECT_EQ(h.sender->stats().srto_probes, 1u);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  EXPECT_EQ(h.sender->cwnd(), cwnd / 2);
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
}

TEST(Srto, NotArmedWhenPacketsOutAtLeastT1) {
  SenderConfig cfg = srto_config();
  cfg.srto.t1 = 3;
  cfg.init_cwnd = 4;
  Harness h(cfg);
  h.seed_rtt_100ms();
  h.sender->app_write(4 * kMss);  // packets_out = 4 >= T1
  h.advance(Duration::millis(250));
  EXPECT_EQ(h.sender->stats().srto_probes, 0u);
  // The native RTO eventually fires instead.
  h.advance(Duration::millis(200));
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
}

TEST(Srto, FallsBackToNativeRtoAfterProbe) {
  Harness h(srto_config());
  h.seed_rtt_100ms();
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(210));
  ASSERT_EQ(h.sender->stats().srto_probes, 1u);
  // Probe lost too: native RTO follows (300 ms after the probe).
  h.advance(Duration::millis(350));
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
  // The head is now rto_retransmitted -> no further S-RTO probes for it.
  const auto probes = h.sender->stats().srto_probes;
  h.advance(Duration::seconds(1.0));
  EXPECT_EQ(h.sender->stats().srto_probes, probes);
}

TEST(Srto, RecoversDoubleRetransmissionWithoutRto) {
  // The f-double scenario (Fig. 9): a fast-retransmitted segment is lost
  // again. Native TCP needs a timeout; S-RTO repairs it with a probe.
  Harness h(srto_config());
  h.seed_rtt_100ms();
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg_start(2));
  // Segment 2 lost; fast retransmit fires after 3 sacked dupacks.
  h.ack(h.seg_start(2), {h.sack_of(3)});
  h.ack(h.seg_start(2), {h.sack_of(3, 2)});
  h.ack(h.seg_start(2), {h.sack_of(3, 3)});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  const auto fast = h.sender->stats().fast_retransmits;
  ASSERT_GE(fast, 1u);
  // The retransmission is lost as well. More sacks arrive, then silence.
  h.ack(h.seg_start(2), {h.sack_of(3, 5)});
  const auto before_probes = h.sender->stats().srto_probes;
  h.advance(Duration::millis(250));
  // S-RTO fires (packets_out < T1, head never RTO-retransmitted) and
  // re-sends the head — no RTO needed.
  EXPECT_GT(h.sender->stats().srto_probes, before_probes);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  EXPECT_EQ(h.sent.back().seq, h.seg_start(2));
  // The probe repairs the hole.
  h.ack(h.sender->snd_nxt());
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
}

}  // namespace
}  // namespace tapo::tcp
