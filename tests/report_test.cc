// Tests for the aggregation/report layer.
#include <gtest/gtest.h>

#include "tapo/report.h"

namespace tapo::analysis {
namespace {

StallRecord stall(StallCause cause, double secs,
                  RetransCause rc = RetransCause::kNone) {
  StallRecord s;
  s.cause = cause;
  s.duration = Duration::seconds(secs);
  s.retrans_cause = rc;
  return s;
}

FlowAnalysis flow_with(std::vector<StallRecord> stalls) {
  FlowAnalysis fa;
  fa.transmission_time = Duration::seconds(10.0);
  for (const auto& s : stalls) {
    fa.stalled_time += s.duration;
    fa.stalls.push_back(s);
  }
  fa.stall_ratio = fa.stalled_time / fa.transmission_time;
  return fa;
}

TEST(Report, StallBreakdownFractions) {
  std::vector<FlowAnalysis> flows;
  flows.push_back(flow_with({
      stall(StallCause::kRetransmission, 2.0, RetransCause::kTailRetrans),
      stall(StallCause::kZeroWindow, 1.0),
      stall(StallCause::kClientIdle, 1.0),
  }));
  const auto bd = make_stall_breakdown(flows);
  EXPECT_EQ(bd.total_count, 3u);
  EXPECT_DOUBLE_EQ(bd.total_time.sec(), 4.0);
  EXPECT_DOUBLE_EQ(bd.volume_fraction(StallCause::kZeroWindow), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(bd.time_fraction(StallCause::kRetransmission), 0.5);
  EXPECT_DOUBLE_EQ(bd.time_fraction(StallCause::kDataUnavailable), 0.0);
}

TEST(Report, RetransBreakdownWithSplits) {
  auto d1 = stall(StallCause::kRetransmission, 3.0, RetransCause::kDoubleRetrans);
  d1.f_double = true;
  auto d2 = stall(StallCause::kRetransmission, 1.0, RetransCause::kDoubleRetrans);
  d2.f_double = false;
  auto t1 = stall(StallCause::kRetransmission, 2.0, RetransCause::kTailRetrans);
  t1.state_at_stall = tcp::CaState::kOpen;
  auto t2 = stall(StallCause::kRetransmission, 2.0, RetransCause::kTailRetrans);
  t2.state_at_stall = tcp::CaState::kRecovery;
  // Non-retransmission stalls are excluded from this breakdown.
  auto zw = stall(StallCause::kZeroWindow, 5.0);

  std::vector<FlowAnalysis> flows{flow_with({d1, d2, t1, t2, zw})};
  const auto bd = make_retrans_breakdown(flows);
  EXPECT_EQ(bd.total_count, 4u);
  EXPECT_DOUBLE_EQ(bd.total_time.sec(), 8.0);
  EXPECT_DOUBLE_EQ(bd.volume_fraction(RetransCause::kDoubleRetrans), 0.5);
  EXPECT_DOUBLE_EQ(bd.time_fraction(RetransCause::kDoubleRetrans), 0.5);
  EXPECT_DOUBLE_EQ(bd.f_double_time.sec(), 3.0);
  EXPECT_DOUBLE_EQ(bd.t_double_time.sec(), 1.0);
  EXPECT_DOUBLE_EQ(bd.tail_open_time.sec(), 2.0);
  EXPECT_DOUBLE_EQ(bd.tail_recovery_time.sec(), 2.0);
}

TEST(Report, ServiceSummaryAverages) {
  std::vector<FlowAnalysis> flows(2);
  flows[0].avg_speed_Bps = 100.0;
  flows[0].unique_bytes = 1000;
  flows[0].data_segments = 10;
  flows[0].retrans_segments = 1;
  flows[0].avg_rtt_us = 100'000;
  flows[0].avg_rto_us = 400'000;
  flows[1].avg_speed_Bps = 300.0;
  flows[1].unique_bytes = 3000;
  flows[1].data_segments = 30;
  flows[1].retrans_segments = 1;
  flows[1].avg_rtt_us = 200'000;
  flows[1].avg_rto_us = 600'000;
  const auto s = make_service_summary(flows);
  EXPECT_EQ(s.flows, 2u);
  EXPECT_DOUBLE_EQ(s.avg_speed_Bps, 200.0);
  EXPECT_DOUBLE_EQ(s.avg_flow_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(s.pkt_loss, 2.0 / 40.0);
  EXPECT_DOUBLE_EQ(s.avg_rtt_us, 150'000.0);
  EXPECT_DOUBLE_EQ(s.avg_rto_us, 500'000.0);
}

TEST(Report, StallRatioCdf) {
  std::vector<FlowAnalysis> flows;
  flows.push_back(flow_with({stall(StallCause::kClientIdle, 5.0)}));
  flows.push_back(flow_with({}));
  const auto cdf = stall_ratio_cdf(flows);
  EXPECT_EQ(cdf.count(), 2u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.max(), 0.5);
}

TEST(Report, RttRtoCdfsSkipEmptyFlows) {
  std::vector<FlowAnalysis> flows(3);
  flows[0].avg_rtt_us = 100'000;
  flows[0].avg_rto_us = 300'000;
  flows[1].avg_rtt_us = 0;  // no samples
  flows[2].avg_rtt_us = 200'000;
  flows[2].avg_rto_us = 800'000;
  EXPECT_EQ(flow_rtt_cdf_ms(flows).count(), 2u);
  EXPECT_EQ(flow_rto_cdf_ms(flows).count(), 2u);
  const auto ratio = rto_over_rtt_cdf(flows);
  EXPECT_EQ(ratio.count(), 2u);
  EXPECT_DOUBLE_EQ(ratio.min(), 3.0);
  EXPECT_DOUBLE_EQ(ratio.max(), 4.0);
}

TEST(Report, ZeroRwndProbabilityBuckets) {
  std::vector<FlowAnalysis> flows(4);
  flows[0].init_rwnd_mss = 2;
  flows[0].had_zero_rwnd = true;
  flows[1].init_rwnd_mss = 2;
  flows[1].had_zero_rwnd = false;
  flows[2].init_rwnd_mss = 50;
  flows[2].had_zero_rwnd = false;
  flows[3].init_rwnd_mss = 50;
  flows[3].had_zero_rwnd = false;
  const auto prob = zero_rwnd_probability(flows, {0, 10, 100});
  ASSERT_EQ(prob.size(), 2u);
  EXPECT_DOUBLE_EQ(prob[0], 0.5);
  EXPECT_DOUBLE_EQ(prob[1], 0.0);
}

TEST(Report, StallContextCdfs) {
  auto s1 = stall(StallCause::kRetransmission, 1.0, RetransCause::kDoubleRetrans);
  s1.rel_position = 0.25;
  s1.in_flight = 5;
  auto s2 = stall(StallCause::kRetransmission, 1.0, RetransCause::kTailRetrans);
  s2.rel_position = 0.9;
  s2.in_flight = 1;
  std::vector<FlowAnalysis> flows{flow_with({s1, s2})};
  const auto pos = stall_position_cdf(flows, RetransCause::kDoubleRetrans);
  ASSERT_EQ(pos.count(), 1u);
  EXPECT_DOUBLE_EQ(pos.max(), 0.25);
  const auto infl = stall_inflight_cdf(flows, RetransCause::kTailRetrans);
  ASSERT_EQ(infl.count(), 1u);
  EXPECT_DOUBLE_EQ(infl.max(), 1.0);
}

TEST(Report, InflightOnAckCdf) {
  std::vector<FlowAnalysis> flows(1);
  flows[0].inflight_on_ack = {1, 2, 3, 10};
  const auto cdf = inflight_on_ack_cdf(flows);
  EXPECT_EQ(cdf.count(), 4u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(3.0), 0.75);
}

TEST(Report, DescribeFlowMentionsCauses) {
  auto fa = flow_with(
      {stall(StallCause::kRetransmission, 1.0, RetransCause::kDoubleRetrans)});
  fa.stalls[0].f_double = true;
  const std::string d = describe_flow(fa);
  EXPECT_NE(d.find("retransmission"), std::string::npos);
  EXPECT_NE(d.find("double_retrans"), std::string::npos);
  EXPECT_NE(d.find("f-double"), std::string::npos);
}

TEST(Report, CauseNames) {
  EXPECT_STREQ(to_string(StallCause::kZeroWindow), "zero_rwnd");
  EXPECT_STREQ(to_string(StallCause::kDataUnavailable), "data_unavailable");
  EXPECT_STREQ(to_string(RetransCause::kContinuousLoss), "continuous_loss");
  EXPECT_STREQ(to_string(RetransCause::kNone), "none");
}

}  // namespace
}  // namespace tapo::analysis
