// Lock-contention stress tests for the annotated concurrent facades
// (ctest label: concurrency; run under TSan by tools/ci/run_matrix.sh).
//
//   ConcurrencyRegistry  N writer threads hammer shared + per-thread
//                        counters and a histogram while a snapshotter
//                        loops snapshot()/export_prometheus(); totals must
//                        be exact after join.
//   ConcurrencyLive      M ingest threads feed whole flows into a
//                        SharedLiveAnalyzer under a deliberately small
//                        memory budget (forcing the eviction paths to run
//                        under contention) while a reader polls stats().
//   ConcurrencyFleet     Shard threads ingest records concurrently into a
//                        FleetAggregator; the result must be identical to
//                        a single-threaded WindowAggregator over the same
//                        records (the merge-determinism contract survives
//                        locking).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/window.h"
#include "tapo/live.h"
#include "telemetry/registry.h"
#include "util/memory_budget.h"
#include "workload/experiment.h"

#include "support/sync.h"

namespace tapo {
namespace {

TEST(ConcurrencyRegistry, WritersRaceSnapshotters) {
  auto& reg = telemetry::Registry::instance();
  reg.reset();
  constexpr int kWriters = 4;
  constexpr int kIters = 5000;
  test::Latch start(1);
  std::atomic<bool> done{false};
  std::size_t snapshots_taken = 0;
  std::thread snapshotter([&] {
    start.wait();
    while (!done.load()) {
      const auto snap = reg.snapshot();
      std::ostringstream prom;
      reg.export_prometheus(prom);
      ASSERT_GE(prom.str().size(), snap.empty() ? 0u : 1u);
      ++snapshots_taken;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg, &start, t] {
      start.wait();
      auto& mine = reg.counter("tapo_test_conc_writer_total",
                               {{"writer", std::to_string(t)}});
      auto& shared = reg.counter("tapo_test_conc_shared_total");
      auto& hist = reg.histogram("tapo_test_conc_us");
      for (int i = 0; i < kIters; ++i) {
        mine.add(1);
        shared.add(1);
        hist.observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  start.count_down();
  for (auto& th : writers) th.join();
  done.store(true);
  snapshotter.join();

  EXPECT_GE(snapshots_taken, 1u);
  EXPECT_EQ(reg.counter("tapo_test_conc_shared_total").value(),
            static_cast<std::uint64_t>(kWriters) * kIters);
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(reg.counter("tapo_test_conc_writer_total",
                          {{"writer", std::to_string(t)}})
                  .value(),
              static_cast<std::uint64_t>(kIters));
  }
  EXPECT_EQ(reg.histogram("tapo_test_conc_us").count(),
            static_cast<std::uint64_t>(kWriters) * kIters);
  reg.reset();
}

/// Per-flow packet vectors from the simulated workload (each flow's
/// private simulator starts at t = 0; keys are distinct per flow).
std::vector<std::vector<net::CapturedPacket>> per_flow_packets(
    std::size_t flows, std::uint64_t seed) {
  std::vector<std::vector<net::CapturedPacket>> out;
  auto profile = workload::web_search_profile();
  Rng master(seed);
  for (std::size_t i = 0; i < flows; ++i) {
    Rng flow_rng = master.split();
    const auto sc = workload::draw_scenario(profile, flow_rng, i + 1);
    const auto outcome =
        workload::run_flow(sc, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    std::vector<net::CapturedPacket> pkts;
    for (const auto& pkt : outcome.trace->packets()) pkts.push_back(pkt);
    out.push_back(std::move(pkts));
  }
  return out;
}

TEST(ConcurrencyLive, ParallelIngestUnderSmallBudget) {
  constexpr std::size_t kFlows = 12;
  constexpr std::size_t kThreads = 4;
  const auto flows = per_flow_packets(kFlows, 33);
  std::size_t total_packets = 0;
  for (const auto& f : flows) total_packets += f.size();

  // The facade must take only the limit from an external budget, never
  // share the (unguarded) ledger itself.
  util::MemoryBudget external(48 * 1024);
  analysis::LiveConfig cfg;
  cfg.mem_budget = &external;

  // The callback fires under the facade's lock, so a plain counter is safe.
  std::size_t finalized_callbacks = 0;
  analysis::SharedLiveAnalyzer shared(
      cfg, [&](const analysis::FlowAnalysis&) { ++finalized_callbacks; });

  test::Latch start(1);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    start.wait();
    while (!done.load()) {
      const auto s = shared.stats();
      EXPECT_LE(s.flow_bytes, shared.budget_high_water());
      (void)shared.budget_resident();
    }
  });
  std::vector<std::thread> ingest;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ingest.emplace_back([&, t] {
      start.wait();
      for (std::size_t i = t; i < kFlows; i += kThreads) {
        for (const auto& pkt : flows[i]) shared.add_packet(pkt);
      }
    });
  }
  start.count_down();
  for (auto& th : ingest) th.join();
  done.store(true);
  reader.join();
  shared.flush();

  const auto s = shared.stats();
  EXPECT_EQ(s.packets, total_packets);
  EXPECT_EQ(finalized_callbacks, s.flows_finalized);
  // Every distinct flow is finalized at least once; budget evictions and
  // truncations can split a flow into several analyses but never lose it.
  EXPECT_GE(s.flows_finalized, kFlows);
  EXPECT_GT(shared.budget_high_water(), 0u);
  // 12 buffered flows against a 48 KiB cap: the eviction machinery must
  // have actually run under contention.
  EXPECT_GE(s.budget_evictions + s.truncated_flows + s.flows_evicted, 1u);
  // The external budget was template only — the facade never charges it.
  EXPECT_EQ(external.resident(), 0u);
  EXPECT_EQ(external.high_water(), 0u);
}

std::vector<fleet::FlowRecord> shard_records(std::uint32_t shard,
                                             std::size_t n) {
  std::vector<fleet::FlowRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    fleet::FlowRecord r;
    r.shard_id = shard;
    r.service = static_cast<std::uint8_t>(i % 3);
    r.flow_index = i;
    r.start_us = static_cast<std::int64_t>((i % 7) * 20'000'000);
    r.transmission_us = 2'000 + static_cast<std::int64_t>(i);
    r.stalled_us = (i % 2) != 0 ? 700 : 0;
    r.completed = (i % 5) != 0;
    r.unique_bytes = 1'000 + i;
    r.data_segments = 10 + i % 4;
    r.retrans_segments = i % 3;
    if ((i % 2) != 0) {
      fleet::StallEntry st;
      st.cause = static_cast<std::uint8_t>(i % 4);
      st.duration_us = 700;
      r.stalls.push_back(st);
    }
    out.push_back(std::move(r));
  }
  return out;
}

TEST(ConcurrencyFleet, ParallelIngestMatchesSequentialAggregation) {
  constexpr std::uint32_t kShards = 4;
  constexpr std::size_t kPerShard = 300;
  fleet::FleetConfig cfg;
  cfg.window = Duration::seconds(10);

  fleet::WindowAggregator reference(cfg);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (const auto& r : shard_records(s, kPerShard)) reference.ingest(r);
  }

  fleet::FleetAggregator agg(cfg);
  test::Latch start(1);
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    start.wait();
    while (!done.load()) {
      const auto snap = agg.snapshot();
      EXPECT_LE(snap.records, kShards * kPerShard);
      EXPECT_LE(agg.records(), kShards * kPerShard);
    }
  });
  std::vector<std::thread> shards;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    shards.emplace_back([&agg, &start, s] {
      start.wait();
      for (const auto& r : shard_records(s, kPerShard)) agg.ingest(r);
    });
  }
  start.count_down();
  for (auto& th : shards) th.join();
  done.store(true);
  publisher.join();

  EXPECT_EQ(agg.records(), kShards * kPerShard);
  // Locking must not perturb the merge-determinism contract: any
  // interleaving of concurrent ingest yields the sequential snapshot.
  EXPECT_EQ(agg.snapshot(), reference.snapshot());
}

}  // namespace
}  // namespace tapo
