// Parameterized property sweeps: invariants that must hold across loss
// rates, RTTs, window configurations, and recovery mechanisms.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tapo/report.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace tapo {
namespace {

using tcp::RecoveryMechanism;

struct RunResult {
  bool completed = false;
  net::PacketTrace trace;
  tcp::SenderStats stats;
  tcp::ConnectionMetrics metrics;
};

RunResult run_transfer(double loss, double rtt_ms, std::uint64_t bytes,
                       RecoveryMechanism mech, std::uint64_t seed,
                       std::uint32_t init_rwnd = 1 << 20) {
  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::seconds(rtt_ms / 2000.0);
  down_cfg.random_loss = loss;
  down_cfg.jitter_mean = Duration::millis(1);
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = down_cfg.prop_delay;
  up_cfg.random_loss = loss / 2;
  sim::Link down(sim, down_cfg, Rng(seed));
  sim::Link up(sim, up_cfg, Rng(seed + 1));

  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  cfg.sender.recovery = mech;
  cfg.receiver.init_rwnd_bytes = init_rwnd;
  cfg.receiver.max_rwnd_bytes = std::max(init_rwnd, 1u << 20);
  tcp::RequestSpec req;
  req.response_bytes = bytes;
  cfg.requests.push_back(req);

  RunResult r;
  tcp::Connection conn(sim, down, up, cfg, &r.trace);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(900.0));
  r.completed = conn.metrics().completed;
  r.stats = conn.sender().stats();
  r.metrics = conn.metrics();
  return r;
}

// ---- Reliability sweep: loss x mechanism ----

using LossMechParam = std::tuple<double, RecoveryMechanism, std::uint64_t>;

class ReliabilitySweep : public ::testing::TestWithParam<LossMechParam> {};

TEST_P(ReliabilitySweep, TransferAlwaysCompletes) {
  const auto [loss, mech, seed] = GetParam();
  const auto r = run_transfer(loss, 100.0, 80'000, mech, seed);
  EXPECT_TRUE(r.completed) << "loss=" << loss;
  // Every transmitted byte range is within the stream.
  for (const auto& p : r.trace.packets()) {
    if (p.key.src_port == 80 && p.payload_len > 0) {
      EXPECT_LE(p.payload_len, 1448u);
    }
  }
}

TEST_P(ReliabilitySweep, AnalyzerInvariantsHold) {
  const auto [loss, mech, seed] = GetParam();
  const auto r = run_transfer(loss, 100.0, 80'000, mech, seed);
  analysis::Analyzer analyzer;
  const auto result = analyzer.analyze(r.trace);
  ASSERT_EQ(result.flows.size(), 1u);
  const auto& fa = result.flows[0];
  // Conservation and sanity invariants.
  EXPECT_LE(fa.stalled_time, fa.transmission_time);
  EXPECT_GE(fa.retrans_segments, fa.timeout_retrans);
  EXPECT_EQ(fa.retrans_segments, fa.timeout_retrans + fa.fast_retrans);
  EXPECT_LE(fa.spurious_retrans, fa.retrans_segments);
  for (const auto& s : fa.stalls) {
    EXPECT_GT(s.duration, Duration::zero());
    EXPECT_GE(s.rel_position, 0.0);
    EXPECT_LE(s.rel_position, 1.0);
    if (s.cause == analysis::StallCause::kRetransmission) {
      EXPECT_NE(s.retrans_cause, analysis::RetransCause::kNone);
    } else {
      EXPECT_EQ(s.retrans_cause, analysis::RetransCause::kNone);
    }
  }
  // The analyzer counted exactly the sender's retransmissions.
  EXPECT_EQ(fa.retrans_segments, r.stats.retransmissions);
}

INSTANTIATE_TEST_SUITE_P(
    LossLevels, ReliabilitySweep,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05, 0.12, 0.25),
                       ::testing::Values(RecoveryMechanism::kNative,
                                         RecoveryMechanism::kTlp,
                                         RecoveryMechanism::kSrto),
                       ::testing::Values(1001, 2002)));

// ---- RTT sweep ----

class RttSweep : public ::testing::TestWithParam<double> {};

TEST_P(RttSweep, LatencyScalesWithRtt) {
  const double rtt = GetParam();
  const auto r = run_transfer(0.0, rtt, 30'000, RecoveryMechanism::kNative, 5);
  ASSERT_TRUE(r.completed);
  const Duration latency = r.metrics.requests[0].latency();
  // At least 1 RTT (request + response), at most ~10 RTTs for 21 segments
  // of slow start plus delack allowances.
  EXPECT_GE(latency, Duration::seconds(rtt / 1000.0));
  EXPECT_LE(latency, Duration::seconds(10.0 * rtt / 1000.0 + 0.5));
}

INSTANTIATE_TEST_SUITE_P(Rtts, RttSweep,
                         ::testing::Values(20.0, 50.0, 100.0, 200.0, 400.0));

// ---- Receive window sweep ----

class RwndSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RwndSweep, ThroughputBoundedByWindow) {
  const std::uint32_t rwnd_mss = GetParam();
  const std::uint32_t rwnd = rwnd_mss * 1448;
  const std::uint64_t bytes = 500'000;
  sim::Simulator sim;
  sim::LinkConfig link_cfg;
  link_cfg.prop_delay = Duration::millis(50);  // RTT = 100 ms
  sim::Link down(sim, link_cfg, Rng(1));
  sim::Link up(sim, link_cfg, Rng(2));
  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  cfg.receiver.init_rwnd_bytes = rwnd;
  cfg.receiver.max_rwnd_bytes = rwnd;
  cfg.receiver.window_autotune = false;
  tcp::RequestSpec req;
  req.response_bytes = bytes;
  cfg.requests.push_back(req);
  tcp::Connection conn(sim, down, up, cfg, nullptr);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(900.0));
  ASSERT_TRUE(conn.done());
  const double secs = conn.metrics().requests[0].latency().sec();
  const double rate = static_cast<double>(bytes) / secs;
  // rate <= rwnd / RTT (window-bound), with slack for delack timing.
  EXPECT_LE(rate, static_cast<double>(rwnd) / 0.1 * 1.25);
}

INSTANTIATE_TEST_SUITE_P(Windows, RwndSweep, ::testing::Values(4u, 16u, 64u));

// ---- Determinism across the full matrix ----

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<double, RecoveryMechanism>> {};

TEST_P(DeterminismSweep, IdenticalTraces) {
  const auto [loss, mech] = GetParam();
  const auto a = run_transfer(loss, 80.0, 60'000, mech, 77);
  const auto b = run_transfer(loss, 80.0, 60'000, mech, 77);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].timestamp, b.trace[i].timestamp);
    EXPECT_EQ(a.trace[i].tcp.seq, b.trace[i].tcp.seq);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeterminismSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1),
                       ::testing::Values(RecoveryMechanism::kNative,
                                         RecoveryMechanism::kTlp,
                                         RecoveryMechanism::kSrto)));

// ---- Stall-detection threshold property ----

class TauSweep : public ::testing::TestWithParam<double> {};

TEST_P(TauSweep, HigherTauDetectsFewerStalls) {
  const auto r = run_transfer(0.12, 100.0, 60'000, RecoveryMechanism::kNative,
                              909);
  analysis::AnalyzerConfig strict;
  strict.tau = GetParam();
  analysis::AnalyzerConfig lax;
  lax.tau = GetParam() * 2.0;
  const auto s = analysis::Analyzer(strict).analyze(r.trace);
  const auto l = analysis::Analyzer(lax).analyze(r.trace);
  ASSERT_EQ(s.flows.size(), 1u);
  EXPECT_GE(s.flows[0].stalls.size(), l.flows[0].stalls.size());
}

INSTANTIATE_TEST_SUITE_P(Taus, TauSweep, ::testing::Values(1.0, 2.0, 3.0));

}  // namespace
}  // namespace tapo
