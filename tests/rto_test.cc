// Tests for the RFC 6298 / Linux-style RTO estimator.
#include <gtest/gtest.h>

#include "tcp/rto.h"

namespace tapo::tcp {
namespace {

TEST(Rto, InitialValueBeforeSamples) {
  RtoEstimator e;
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.rto(), Duration::seconds(3.0));  // TCP_TIMEOUT_INIT
  EXPECT_EQ(e.srtt(), Duration::zero());
}

TEST(Rto, FirstSampleSetsSrttAndVar) {
  RtoEstimator e;
  e.sample(Duration::millis(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), Duration::millis(100));
  EXPECT_EQ(e.rttvar(), Duration::millis(50));
  // RTO = srtt + max(4*rttvar, min_rto) = 100 + 200 = 300ms.
  EXPECT_EQ(e.rto(), Duration::millis(300));
}

TEST(Rto, LinuxFloorDominatesSmallVariance) {
  RtoEstimator e;
  // Feed identical samples until rttvar decays.
  for (int i = 0; i < 100; ++i) e.sample(Duration::millis(100));
  // rttvar -> ~0, so RTO -> srtt + min_rto = 300ms.
  EXPECT_EQ(e.srtt(), Duration::millis(100));
  EXPECT_LT(e.rttvar(), Duration::millis(5));
  EXPECT_EQ(e.rto(), Duration::millis(300));
}

TEST(Rto, Ewma) {
  RtoEstimator e;
  e.sample(Duration::millis(100));
  e.sample(Duration::millis(200));
  // SRTT = 7/8*100 + 1/8*200 = 112.5ms.
  EXPECT_EQ(e.srtt().us(), 112'500);
  // RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5ms.
  EXPECT_EQ(e.rttvar().us(), 62'500);
}

TEST(Rto, HighVarianceRaisesRto) {
  RtoEstimator e;
  e.sample(Duration::millis(100));
  e.sample(Duration::millis(500));
  // rttvar grows well past 50ms -> 4*rttvar term dominates the floor.
  EXPECT_GT(e.rto(), Duration::millis(500));
}

TEST(Rto, MinimumFloor) {
  RtoEstimator e;
  for (int i = 0; i < 50; ++i) e.sample(Duration::micros(100));
  EXPECT_GE(e.rto(), Duration::millis(200));
}

TEST(Rto, BackoffDoubles) {
  RtoEstimator e;
  for (int i = 0; i < 50; ++i) e.sample(Duration::millis(100));
  const Duration base = e.rto();
  e.backoff();
  EXPECT_EQ(e.rto(), base * 2);
  e.backoff();
  EXPECT_EQ(e.rto(), base * 4);
}

TEST(Rto, BackoffClearedBySample) {
  RtoEstimator e;
  e.sample(Duration::millis(100));
  e.backoff();
  e.backoff();
  const Duration backed = e.rto();
  e.sample(Duration::millis(100));
  EXPECT_LT(e.rto(), backed);
  EXPECT_EQ(e.backoff_exponent(), 0);
}

TEST(Rto, MaxClamp) {
  RtoEstimator e;
  e.sample(Duration::millis(500));
  for (int i = 0; i < 20; ++i) e.backoff();
  EXPECT_EQ(e.rto(), Duration::seconds(120.0));
}

TEST(Rto, CustomConfig) {
  RtoConfig cfg;
  cfg.initial_rto = Duration::seconds(1.0);
  cfg.min_rto = Duration::millis(50);
  cfg.max_rto = Duration::seconds(10.0);
  RtoEstimator e(cfg);
  EXPECT_EQ(e.rto(), Duration::seconds(1.0));
  for (int i = 0; i < 100; ++i) e.sample(Duration::millis(20));
  EXPECT_EQ(e.rto(), Duration::millis(70));  // srtt 20 + floor 50
  for (int i = 0; i < 20; ++i) e.backoff();
  EXPECT_EQ(e.rto(), Duration::seconds(10.0));
}

TEST(Rto, ZeroSampleClamped) {
  RtoEstimator e;
  e.sample(Duration::zero());
  EXPECT_TRUE(e.has_sample());
  EXPECT_GE(e.rto(), Duration::millis(200));
}

}  // namespace
}  // namespace tapo::tcp
