// Robustness tests: random/adversarial inputs must never crash the parsers
// or the analyzer, and invariants must survive garbage.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "net/ipv4.h"
#include "net/tcp_header.h"
#include "pcap/pcap.h"
#include "tapo/analyzer.h"
#include "util/rng.h"

namespace tapo {
namespace {

TEST(Fuzz, TcpHeaderParseNeverCrashes) {
  Rng rng(1234);
  std::array<std::uint8_t, net::kTcpMaxHeaderLen + 16> buf{};
  for (int iter = 0; iter < 50'000; ++iter) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(buf.size())));
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::uint8_t>(rng.next_u64());
    }
    net::TcpHeader h;
    std::size_t hlen = 0;
    const bool ok =
        net::TcpHeader::parse(std::span(buf).subspan(0, len), h, hlen);
    if (ok) {
      EXPECT_LE(hlen, len);
      EXPECT_GE(hlen, net::kTcpMinHeaderLen);
      EXPECT_LE(h.sack_blocks.size(), 4u);
    }
  }
}

TEST(Fuzz, Ipv4ParseNeverCrashes) {
  Rng rng(77);
  std::array<std::uint8_t, 64> buf{};
  for (int iter = 0; iter < 50'000; ++iter) {
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(buf.size())));
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::uint8_t>(rng.next_u64());
    }
    net::Ipv4Header h;
    std::size_t hlen = 0;
    if (net::Ipv4Header::parse(std::span(buf).subspan(0, len), h, hlen)) {
      EXPECT_LE(hlen, len);
      EXPECT_GE(h.total_length, hlen);
    }
  }
}

TEST(Fuzz, PcapReaderSurvivesCorruption) {
  // Take a valid file and flip random bytes; the reader must either parse
  // a prefix, skip records, or throw — never crash or loop forever.
  net::PacketTrace trace;
  for (int i = 0; i < 20; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i * 1000);
    p.key = {1, 2, 1000, 80};
    p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(i)};
    p.payload_len = 100;
    trace.add(p);
  }
  std::stringstream base;
  pcap::write_stream(base, trace);
  const std::string good = base.str();

  Rng rng(5);
  for (int iter = 0; iter < 2'000; ++iter) {
    std::string bad = good;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bad.size() - 1)));
      bad[pos] = static_cast<char>(rng.next_u64());
    }
    std::stringstream ss(bad);
    try {
      const auto back = pcap::read_stream(ss);
      EXPECT_LE(back.size(), 200u);  // corruption can split records, not explode
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
}

TEST(Fuzz, AnalyzerSurvivesRandomTraces) {
  // Random garbage "packets" (valid structs, nonsense semantics): the
  // analyzer must not crash and its outputs must respect invariants.
  Rng rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    net::PacketTrace trace;
    std::int64_t t = 0;
    const int n = static_cast<int>(rng.uniform_int(2, 120));
    for (int i = 0; i < n; ++i) {
      t += rng.uniform_int(0, 400'000);
      net::CapturedPacket p;
      p.timestamp = TimePoint::from_us(t);
      const bool from_server = rng.chance(0.5);
      p.key = from_server ? net::FlowKey{2, 1, 80, 1000}
                          : net::FlowKey{1, 2, 1000, 80};
      p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(rng.next_u64() % 100'000)};
      p.tcp.ack = net::Seq32{static_cast<std::uint32_t>(rng.next_u64() % 100'000)};
      p.tcp.flags.ack = rng.chance(0.9);
      p.tcp.flags.syn = rng.chance(0.05);
      p.tcp.flags.fin = rng.chance(0.05);
      p.tcp.window = static_cast<std::uint16_t>(rng.next_u64());
      p.payload_len = static_cast<std::uint32_t>(rng.uniform_int(0, 1448));
      if (rng.chance(0.2)) {
        const std::uint32_t s = static_cast<std::uint32_t>(rng.next_u64() % 100'000);
        p.tcp.sack_blocks.push_back({net::Seq32{s}, net::Seq32{s + 1448}});
      }
      trace.add(p);
    }
    analysis::Analyzer analyzer;
    const auto result = analyzer.analyze(trace);
    for (const auto& fa : result.flows) {
      EXPECT_GE(fa.stall_ratio, 0.0);
      for (const auto& s : fa.stalls) {
        EXPECT_GT(s.duration, Duration::zero());
        EXPECT_GE(s.rel_position, 0.0);
        EXPECT_LE(s.rel_position, 1.0);
      }
      EXPECT_EQ(fa.retrans_segments, fa.timeout_retrans + fa.fast_retrans);
    }
  }
}

TEST(Fuzz, DemuxHandlesManyFlows) {
  Rng rng(3);
  net::PacketTrace trace;
  for (int i = 0; i < 5'000; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i);
    p.key = {static_cast<std::uint32_t>(rng.uniform_int(1, 50)),
             static_cast<std::uint32_t>(rng.uniform_int(1, 50)),
             static_cast<std::uint16_t>(rng.uniform_int(1, 100)),
             static_cast<std::uint16_t>(rng.uniform_int(1, 100))};
    p.payload_len = 100;
    trace.add(p);
  }
  const auto flows = analysis::demux_flows(trace);
  std::size_t total = 0;
  for (const auto& f : flows) total += f.packets.size();
  EXPECT_EQ(total, 5'000u);  // every packet lands in exactly one flow
}

TEST(Fuzz, AnalyzerHandlesSingleDirectionTrace) {
  // Captures sometimes miss one direction entirely.
  net::PacketTrace trace;
  for (int i = 0; i < 30; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i * 50'000);
    p.key = {2, 1, 80, 1000};
    p.tcp.seq = net::Seq32{1 + static_cast<std::uint32_t>(i) * 1448};
    p.tcp.flags.ack = true;
    p.payload_len = 1448;
    trace.add(p);
  }
  analysis::Analyzer analyzer;
  const auto result = analyzer.analyze(trace);
  ASSERT_EQ(result.flows.size(), 1u);
  // No ACKs -> no RTT samples -> no stall detection, but counters work.
  EXPECT_EQ(result.flows[0].data_segments, 30u);
  EXPECT_TRUE(result.flows[0].stalls.empty());
}

TEST(Fuzz, AnalyzerHandlesDuplicateTimestamps) {
  net::PacketTrace trace;
  for (int i = 0; i < 20; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(1000);  // all identical
    p.key = i % 2 ? net::FlowKey{2, 1, 80, 1000} : net::FlowKey{1, 2, 1000, 80};
    p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(i)};
    p.tcp.flags.ack = true;
    p.payload_len = i % 2 ? 100 : 0;
    trace.add(p);
  }
  analysis::Analyzer analyzer;
  EXPECT_NO_THROW(analyzer.analyze(trace));
}

}  // namespace
}  // namespace tapo
