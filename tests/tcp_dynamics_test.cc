// Macro-level validation of the TCP substrate against known theory:
// the Mathis et al. throughput model (rate ~ MSS / (RTT * sqrt(p))) and
// qualitative CUBIC-vs-Reno behaviour. If these hold, the congestion
// machinery as a whole behaves like TCP, not just its parts in isolation.
#include <gtest/gtest.h>

#include <cmath>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace tapo::tcp {
namespace {

/// Steady-state goodput of a long transfer at given loss/RTT.
double goodput_Bps(double loss, double rtt_ms, CcAlgo cc, std::uint64_t seed,
                   std::uint64_t bytes = 4'000'000) {
  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::seconds(rtt_ms / 2000.0);
  down_cfg.random_loss = loss;
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = down_cfg.prop_delay;
  sim::Link down(sim, down_cfg, Rng(seed));
  sim::Link up(sim, up_cfg, Rng(seed + 1));
  ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  cfg.sender.cc = cc;
  cfg.receiver.max_rwnd_bytes = 8 << 20;  // never window-bound
  RequestSpec req;
  req.response_bytes = bytes;
  cfg.requests.push_back(req);
  Connection conn(sim, down, up, cfg, nullptr);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(3600.0));
  if (!conn.done()) return 0.0;
  return static_cast<double>(bytes) /
         conn.metrics().requests[0].latency().sec();
}

class MathisSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MathisSweep, RenoGoodputTracksTheFormula) {
  const auto [loss, rtt_ms] = GetParam();
  // Average over seeds: the formula describes the mean behaviour.
  double sum = 0;
  const int runs = 3;
  for (int s = 0; s < runs; ++s) {
    const double g = goodput_Bps(loss, rtt_ms, CcAlgo::kReno, 100 + s);
    ASSERT_GT(g, 0.0);
    sum += g;
  }
  const double measured = sum / runs;
  // Mathis et al.: rate = (MSS / (RTT * sqrt(p))) * sqrt(3/2).
  const double mss = 1448, rtt = rtt_ms / 1000.0;
  const double predicted = mss / (rtt * std::sqrt(loss)) * std::sqrt(1.5);
  // Within a factor band: timeouts and delayed ACKs push the real value
  // below the model, while the initial slow-start overshoot (significant
  // for a finite transfer at low loss) pushes it above.
  EXPECT_GT(measured, predicted * 0.25)
      << "loss=" << loss << " rtt=" << rtt_ms;
  EXPECT_LT(measured, predicted * 2.5)
      << "loss=" << loss << " rtt=" << rtt_ms;
}

INSTANTIATE_TEST_SUITE_P(
    LossRtt, MathisSweep,
    ::testing::Combine(::testing::Values(0.005, 0.01, 0.02, 0.04),
                       ::testing::Values(40.0, 100.0, 200.0)));

TEST(TcpDynamics, GoodputDecreasesWithLoss) {
  const double g1 = goodput_Bps(0.005, 80, CcAlgo::kReno, 7);
  const double g2 = goodput_Bps(0.02, 80, CcAlgo::kReno, 7);
  const double g3 = goodput_Bps(0.08, 80, CcAlgo::kReno, 7, 1'000'000);
  EXPECT_GT(g1, g2);
  EXPECT_GT(g2, g3);
}

TEST(TcpDynamics, GoodputDecreasesWithRtt) {
  const double fast = goodput_Bps(0.01, 30, CcAlgo::kReno, 9);
  const double slow = goodput_Bps(0.01, 300, CcAlgo::kReno, 9);
  // Roughly inverse in RTT (10x RTT -> ~10x slower under the model).
  EXPECT_GT(fast / slow, 4.0);
}

TEST(TcpDynamics, CubicOutperformsRenoOnLongFatPipes) {
  // High bandwidth-delay product, light loss: CUBIC's faster window
  // regrowth should win. Average over a few seeds.
  double cubic = 0, reno = 0;
  for (int s = 0; s < 3; ++s) {
    cubic += goodput_Bps(0.002, 200, CcAlgo::kCubic, 40 + s, 12'000'000);
    reno += goodput_Bps(0.002, 200, CcAlgo::kReno, 40 + s, 12'000'000);
  }
  EXPECT_GT(cubic, reno * 1.1);
}

TEST(TcpDynamics, LosslessTransferIsSlowStartBound) {
  // Without loss, completion time ~ RTT * log2(bytes/mss/init_cwnd) plus
  // drain: far faster than any lossy run and bounded below by a few RTTs.
  sim::Simulator sim;
  sim::LinkConfig link_cfg;
  link_cfg.prop_delay = Duration::millis(50);
  sim::Link down(sim, link_cfg, Rng(1));
  sim::Link up(sim, link_cfg, Rng(2));
  ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  cfg.receiver.max_rwnd_bytes = 8 << 20;
  RequestSpec req;
  req.response_bytes = 1'000'000;
  cfg.requests.push_back(req);
  Connection conn(sim, down, up, cfg, nullptr);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(60.0));
  ASSERT_TRUE(conn.done());
  const double secs = conn.metrics().requests[0].latency().sec();
  EXPECT_GT(secs, 0.4);  // >= ~4 RTTs of slow start
  EXPECT_LT(secs, 2.5);  // and nowhere near lossy-path times
}

}  // namespace
}  // namespace tapo::tcp
