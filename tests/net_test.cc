// Tests for the net library: endian helpers, checksums, IPv4/TCP header
// wire round-trips, flow keys and packet traces.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "net/checksum.h"
#include "net/endian.h"
#include "net/ipv4.h"
#include "net/tcp_header.h"
#include "net/trace.h"

namespace tapo::net {
namespace {

TEST(Endian, RoundTrip) {
  std::array<std::uint8_t, 8> buf{};
  put_u16(buf, 0, 0xbeef);
  put_u32(buf, 2, 0xdeadc0de);
  put_u8(buf, 6, 0x42);
  EXPECT_EQ(get_u16(buf, 0), 0xbeef);
  EXPECT_EQ(get_u32(buf, 2), 0xdeadc0deu);
  EXPECT_EQ(get_u8(buf, 6), 0x42);
  // Big-endian layout on the wire.
  EXPECT_EQ(buf[0], 0xbe);
  EXPECT_EQ(buf[1], 0xef);
  EXPECT_EQ(buf[2], 0xde);
}

TEST(Checksum, Rfc1071Example) {
  // Example bytes from RFC 1071 discussions: 00 01 f2 03 f4 f5 f6 f7.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2 -> ~ = 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLength) {
  const std::vector<std::uint8_t> data = {0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(Checksum, ValidatesToZero) {
  // A buffer with its own checksum folded in verifies to 0.
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34,
                                    0x40, 0x00, 0x40, 0x06, 0x00, 0x00,
                                    0x0a, 0x00, 0x00, 0x01, 0xc0, 0xa8,
                                    0x01, 0x01};
  const std::uint16_t csum = internet_checksum(data);
  put_u16(data, 10, csum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Ipv4, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.src = ipv4_from_string("10.1.2.3");
  h.dst = ipv4_from_string("192.168.1.1");
  h.total_length = 40;
  h.identification = 0x1234;
  h.ttl = 63;
  std::array<std::uint8_t, kIpv4HeaderLen> buf{};
  h.serialize(buf);

  Ipv4Header p;
  std::size_t hlen = 0;
  ASSERT_TRUE(Ipv4Header::parse(buf, p, hlen));
  EXPECT_EQ(hlen, kIpv4HeaderLen);
  EXPECT_EQ(p.src, h.src);
  EXPECT_EQ(p.dst, h.dst);
  EXPECT_EQ(p.total_length, 40);
  EXPECT_EQ(p.ttl, 63);
  EXPECT_EQ(p.protocol, kProtoTcp);
  // Serialized header checksums to zero.
  EXPECT_EQ(internet_checksum(buf), 0);
}

TEST(Ipv4, ParseRejectsBadInput) {
  Ipv4Header p;
  std::size_t hlen = 0;
  std::array<std::uint8_t, 10> shorty{};
  EXPECT_FALSE(Ipv4Header::parse(shorty, p, hlen));
  std::array<std::uint8_t, kIpv4HeaderLen> v6{};
  v6[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::parse(v6, p, hlen));
}

TEST(Ipv4, StringConversions) {
  EXPECT_EQ(ipv4_to_string(0xc0a80101u), "192.168.1.1");
  EXPECT_EQ(ipv4_from_string("192.168.1.1"), 0xc0a80101u);
  EXPECT_EQ(ipv4_from_string(ipv4_to_string(0x0a000001u)), 0x0a000001u);
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    const TcpFlags f = TcpFlags::from_byte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(f.to_byte(), b & 0x1f);
  }
  TcpFlags f;
  f.syn = true;
  f.ack = true;
  EXPECT_EQ(f.to_byte(), 0x12);
}

TEST(TcpHeader, MinimalRoundTrip) {
  TcpHeader h;
  h.src_port = 80;
  h.dst_port = 40000;
  h.seq = Seq32{0x01020304};
  h.ack = Seq32{0xa0b0c0d0};
  h.flags.ack = true;
  h.window = 5840;

  std::array<std::uint8_t, kTcpMaxHeaderLen> buf{};
  const std::size_t n = h.serialize(buf);
  EXPECT_EQ(n, kTcpMinHeaderLen);

  TcpHeader p;
  std::size_t hlen = 0;
  ASSERT_TRUE(TcpHeader::parse(std::span(buf).subspan(0, n), p, hlen));
  EXPECT_EQ(hlen, n);
  EXPECT_EQ(p.src_port, 80);
  EXPECT_EQ(p.dst_port, 40000);
  EXPECT_EQ(p.seq, Seq32{0x01020304});
  EXPECT_EQ(p.ack, Seq32{0xa0b0c0d0});
  EXPECT_TRUE(p.flags.ack);
  EXPECT_EQ(p.window, 5840);
  EXPECT_FALSE(p.mss.has_value());
  EXPECT_TRUE(p.sack_blocks.empty());
}

TEST(TcpHeader, SynOptionsRoundTrip) {
  TcpHeader h;
  h.flags.syn = true;
  h.mss = 1448;
  h.window_scale = 7;
  h.sack_permitted = true;
  h.timestamps = TcpTimestamps{12345, 0};

  std::array<std::uint8_t, kTcpMaxHeaderLen> buf{};
  const std::size_t n = h.serialize(buf);
  EXPECT_GT(n, kTcpMinHeaderLen);
  EXPECT_EQ(n % 4, 0u);

  TcpHeader p;
  std::size_t hlen = 0;
  ASSERT_TRUE(TcpHeader::parse(std::span(buf).subspan(0, n), p, hlen));
  ASSERT_TRUE(p.mss.has_value());
  EXPECT_EQ(*p.mss, 1448);
  ASSERT_TRUE(p.window_scale.has_value());
  EXPECT_EQ(*p.window_scale, 7);
  EXPECT_TRUE(p.sack_permitted);
  ASSERT_TRUE(p.timestamps.has_value());
  EXPECT_EQ(p.timestamps->value, 12345u);
}

TEST(TcpHeader, SackBlocksRoundTrip) {
  TcpHeader h;
  h.flags.ack = true;
  h.sack_blocks = {{Seq32{1000}, Seq32{2448}},
                   {Seq32{3896}, Seq32{5344}},
                   {Seq32{6792}, Seq32{8240}}};

  std::array<std::uint8_t, kTcpMaxHeaderLen> buf{};
  const std::size_t n = h.serialize(buf);
  TcpHeader p;
  std::size_t hlen = 0;
  ASSERT_TRUE(TcpHeader::parse(std::span(buf).subspan(0, n), p, hlen));
  ASSERT_EQ(p.sack_blocks.size(), 3u);
  EXPECT_EQ(p.sack_blocks[0], (SackBlock{Seq32{1000}, Seq32{2448}}));
  EXPECT_EQ(p.sack_blocks[2], (SackBlock{Seq32{6792}, Seq32{8240}}));
}

TEST(TcpHeader, AtMostFourSackBlocksSerialized) {
  TcpHeader h;
  h.sack_blocks = {{Seq32{1}, Seq32{2}},
                   {Seq32{3}, Seq32{4}},
                   {Seq32{5}, Seq32{6}},
                   {Seq32{7}, Seq32{8}},
                   {Seq32{9}, Seq32{10}}};
  std::array<std::uint8_t, kTcpMaxHeaderLen> buf{};
  const std::size_t n = h.serialize(buf);
  ASSERT_LE(n, kTcpMaxHeaderLen);
  TcpHeader p;
  std::size_t hlen = 0;
  ASSERT_TRUE(TcpHeader::parse(std::span(buf).subspan(0, n), p, hlen));
  EXPECT_EQ(p.sack_blocks.size(), 4u);
}

TEST(TcpHeader, ParseRejectsMalformed) {
  TcpHeader p;
  std::size_t hlen = 0;
  std::array<std::uint8_t, 10> shorty{};
  EXPECT_FALSE(TcpHeader::parse(shorty, p, hlen));

  // Data offset claims more than the buffer holds.
  std::array<std::uint8_t, kTcpMinHeaderLen> bad{};
  bad[12] = 0xf0;  // 60-byte header in a 20-byte buffer
  EXPECT_FALSE(TcpHeader::parse(bad, p, hlen));

  // Truncated option.
  std::array<std::uint8_t, 24> opt{};
  opt[12] = 0x60;  // 24-byte header
  opt[20] = 2;     // MSS option kind
  opt[21] = 10;    // bogus length beyond header
  EXPECT_FALSE(TcpHeader::parse(opt, p, hlen));
}

TEST(TcpHeader, UnknownOptionSkipped) {
  TcpHeader h;
  h.mss = 1460;
  std::array<std::uint8_t, kTcpMaxHeaderLen> buf{};
  std::size_t n = h.serialize(buf);
  // Replace the MSS option with an unknown kind 254 of same length.
  buf[kTcpMinHeaderLen] = 254;
  TcpHeader p;
  std::size_t hlen = 0;
  ASSERT_TRUE(TcpHeader::parse(std::span(buf).subspan(0, n), p, hlen));
  EXPECT_FALSE(p.mss.has_value());
}

TEST(FlowKey, ReversedAndCanonical) {
  const FlowKey k{0x0a000001, 0xc0a80101, 40000, 80};
  const FlowKey r = k.reversed();
  EXPECT_EQ(r.src_ip, k.dst_ip);
  EXPECT_EQ(r.src_port, k.dst_port);
  EXPECT_EQ(k.canonical(), r.canonical());
  EXPECT_TRUE(k.canonical() == k || k.canonical() == r);
}

TEST(FlowKey, HashDistinguishes) {
  FlowKeyHash h;
  const FlowKey a{1, 2, 3, 4};
  const FlowKey b{1, 2, 3, 5};
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(FlowKey{1, 2, 3, 4}));
}

TEST(FlowKey, ToString) {
  const FlowKey k{0x0a000001, 0xc0a80101, 40000, 80};
  EXPECT_EQ(k.to_string(), "10.0.0.1:40000 -> 192.168.1.1:80");
}

TEST(CapturedPacket, EndSeqCountsSynFin) {
  CapturedPacket p;
  p.tcp.seq = Seq32{100};
  p.payload_len = 10;
  EXPECT_EQ(p.end_seq(), Seq32{110});
  p.tcp.flags.syn = true;
  EXPECT_EQ(p.end_seq(), Seq32{111});
  p.tcp.flags.fin = true;
  EXPECT_EQ(p.end_seq(), Seq32{112});
}

TEST(PacketTrace, SortByTimeIsStable) {
  PacketTrace t;
  CapturedPacket a;
  a.timestamp = TimePoint::from_us(200);
  a.tcp.seq = Seq32{1};
  CapturedPacket b;
  b.timestamp = TimePoint::from_us(100);
  b.tcp.seq = Seq32{2};
  CapturedPacket c;
  c.timestamp = TimePoint::from_us(200);
  c.tcp.seq = Seq32{3};
  t.add(a);
  t.add(b);
  t.add(c);
  t.sort_by_time();
  EXPECT_EQ(t[0].tcp.seq, Seq32{2});
  EXPECT_EQ(t[1].tcp.seq, Seq32{1});  // stable: a before c
  EXPECT_EQ(t[2].tcp.seq, Seq32{3});
}

}  // namespace
}  // namespace tapo::net
