// Streaming-pipeline tests: chunked ingest and the live analysis engine
// must be bit-identical to the batch path for every chunk granularity and
// workload profile (with and without capture impairments), budgets must
// bound residency deterministically, and pcap parse errors must locate the
// bad record by index and absolute file offset.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "net/chunk.h"
#include "pcap/pcap.h"
#include "sim/capture_channel.h"
#include "tapo/analyzer.h"
#include "tapo/live.h"
#include "util/memory_budget.h"
#include "util/rng.h"
#include "workload/experiment.h"
#include "workload/profiles.h"

namespace tapo::analysis {
namespace {

// ---------------------------------------------------------------------------
// Deep FlowAnalysis equality. EXPECT_EQ on doubles is deliberate: both paths
// must execute the identical instruction stream, so results are bit-equal,
// not merely close.
// ---------------------------------------------------------------------------

void expect_same_stall(const StallRecord& a, const StallRecord& b) {
  EXPECT_EQ(a.start.us(), b.start.us());
  EXPECT_EQ(a.end.us(), b.end.us());
  EXPECT_EQ(a.duration.us(), b.duration.us());
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.retrans_cause, b.retrans_cause);
  EXPECT_EQ(a.f_double, b.f_double);
  EXPECT_EQ(a.state_at_stall, b.state_at_stall);
  EXPECT_EQ(a.in_flight, b.in_flight);
  EXPECT_EQ(a.rel_position, b.rel_position);
  EXPECT_EQ(a.cur_pkt_index, b.cur_pkt_index);
}

void expect_same_analysis(const FlowAnalysis& a, const FlowAnalysis& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.transmission_time.us(), b.transmission_time.us());
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(a.data_segments, b.data_segments);
  EXPECT_EQ(a.retrans_segments, b.retrans_segments);
  EXPECT_EQ(a.avg_speed_Bps, b.avg_speed_Bps);
  EXPECT_EQ(a.rtt_samples_us, b.rtt_samples_us);
  EXPECT_EQ(a.rto_at_timeout_us, b.rto_at_timeout_us);
  EXPECT_EQ(a.avg_rtt_us, b.avg_rtt_us);
  EXPECT_EQ(a.avg_rto_us, b.avg_rto_us);
  EXPECT_EQ(a.avg_rto_on_ack_us, b.avg_rto_on_ack_us);
  EXPECT_EQ(a.stalled_time.us(), b.stalled_time.us());
  EXPECT_EQ(a.stall_ratio, b.stall_ratio);
  EXPECT_EQ(a.init_rwnd_bytes, b.init_rwnd_bytes);
  EXPECT_EQ(a.init_rwnd_mss, b.init_rwnd_mss);
  EXPECT_EQ(a.had_zero_rwnd, b.had_zero_rwnd);
  EXPECT_EQ(a.inflight_on_ack, b.inflight_on_ack);
  EXPECT_EQ(a.timeout_retrans, b.timeout_retrans);
  EXPECT_EQ(a.fast_retrans, b.fast_retrans);
  EXPECT_EQ(a.spurious_retrans, b.spurious_retrans);
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    expect_same_stall(a.stalls[i], b.stalls[i]);
  }
}

void expect_same_result(const AnalysisResult& a, const AnalysisResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i));
    expect_same_analysis(a.flows[i], b.flows[i]);
  }
}

/// Simulates `n_flows` flows of `profile` and merges their server-NIC
/// captures into one time-sorted arena.
net::PacketTrace merged_trace(const workload::ServiceProfile& profile,
                              std::uint64_t seed, std::uint64_t n_flows) {
  Rng master(seed);
  net::PacketTrace merged;
  for (std::uint64_t f = 0; f < n_flows; ++f) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(profile, flow_rng, f);
    auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    if (!outcome.trace.has_value()) {
      ADD_FAILURE() << "flow " << f << " produced no capture";
      continue;
    }
    for (const auto& p : outcome.trace->packets()) merged.add(p);
  }
  merged.sort_by_time();
  return merged;
}

struct ProfileCase {
  const char* name;
  workload::ServiceProfile profile;
};

std::vector<ProfileCase> all_profiles() {
  return {{"cloud_storage", workload::cloud_storage_profile()},
          {"software_download", workload::software_download_profile()},
          {"web_search", workload::web_search_profile()}};
}

struct ChunkCase {
  const char* name;
  std::size_t packets;
};

/// The ISSUE-mandated chunk granularities: one packet, ~4 KiB, ~1 MiB, and
/// the whole trace in one chunk.
std::vector<ChunkCase> chunk_cases(std::size_t whole_trace_packets) {
  const auto per = sizeof(net::CapturedPacket);
  return {{"1pkt", 1},
          {"4KiB", std::max<std::size_t>(1, 4096 / per)},
          {"1MiB", std::max<std::size_t>(1, (std::size_t{1} << 20) / per)},
          {"whole", std::max<std::size_t>(1, whole_trace_packets)}};
}

/// Rebuilds `trace` as a retained ChunkedTrace of the given granularity.
net::ChunkedTrace rechunk(const net::PacketTrace& trace,
                          std::size_t chunk_packets) {
  net::ChunkedTrace chunks(chunk_packets);
  for (const auto& pkt : trace.packets()) chunks.add(pkt);
  return chunks;
}

/// Streams `trace` through a pcap file and an unbounded LiveAnalyzer in
/// `chunk_packets`-sized chunks — the full production streaming pipeline —
/// and returns the flows restored to first-packet order (what the batch
/// path emits).
AnalysisResult analyze_via_streaming_pipeline(const net::PacketTrace& trace,
                                              std::size_t chunk_packets,
                                              util::MemoryBudget* budget,
                                              LiveStats* stats_out = nullptr) {
  std::stringstream bytes;
  pcap::write_stream(bytes, trace);

  auto config =
      LiveConfig{}
          .with_idle_timeout(Duration::max())
          .with_fin_linger(Duration::max())
          .with_max_flows(std::numeric_limits<std::size_t>::max())
          .with_max_packets_per_flow(std::numeric_limits<std::size_t>::max())
          .with_mem_budget(budget);
  AnalysisResult result;
  LiveAnalyzer live(config, LiveAnalyzer::FlowDoneFn(
      [&result](const FlowAnalysis& fa) { result.flows.push_back(fa); }));

  std::unordered_map<net::FlowKey, std::size_t, net::FlowKeyHash> first_seen;
  pcap::StreamingReader reader(
      bytes, pcap::StreamingOptions{.chunk_packets = chunk_packets,
                                    .budget = budget});
  while (auto chunk = reader.next_chunk()) {
    for (const auto& pkt : chunk->packets()) {
      first_seen.try_emplace(pkt.key.canonical(), first_seen.size());
      live.add_packet(pkt);
    }
  }
  live.flush();
  if (stats_out != nullptr) *stats_out = live.stats();
  std::stable_sort(result.flows.begin(), result.flows.end(),
                   [&first_seen](const FlowAnalysis& a, const FlowAnalysis& b) {
                     return first_seen.at(a.key.canonical()) <
                            first_seen.at(b.key.canonical());
                   });
  return result;
}

// ---------------------------------------------------------------------------
// The tentpole invariant: with unlimited budget, streaming output is
// bit-identical to batch output for every profile and every chunk size.
// ---------------------------------------------------------------------------

TEST(StreamingEquivalence, ChunkedAnalysisBitIdenticalToBatch) {
  const Analyzer analyzer;
  for (const auto& [pname, profile] : all_profiles()) {
    SCOPED_TRACE(pname);
    const net::PacketTrace trace = merged_trace(profile, /*seed=*/1234, 5);
    ASSERT_GT(trace.size(), 0u);
    const AnalysisResult batch = analyzer.analyze(trace);
    for (const auto& [cname, packets] : chunk_cases(trace.size())) {
      SCOPED_TRACE(cname);
      const net::ChunkedTrace chunks = rechunk(trace, packets);
      ASSERT_EQ(chunks.size(), trace.size());
      expect_same_result(analyzer.analyze(chunks), batch);
    }
  }
}

TEST(StreamingEquivalence, HoldsUnderCaptureImpairments) {
  const Analyzer analyzer;
  const auto imp = sim::CaptureImpairments{}
                       .with_drop(0.02)
                       .with_burst_drop(0.01, 0.5)
                       .with_snaplen(60)
                       .with_duplication(0.01)
                       .with_reordering(0.05)
                       .with_jitter(Duration::micros(40))
                       .with_mid_stream_start(3)
                       .with_seed(7);
  for (const auto& [pname, profile] : all_profiles()) {
    SCOPED_TRACE(pname);
    const net::PacketTrace pristine = merged_trace(profile, /*seed=*/88, 4);
    ASSERT_GT(pristine.size(), 0u);
    const net::PacketTrace degraded = sim::apply_impairments(pristine, imp);
    const AnalysisResult batch = analyzer.analyze(degraded);
    for (const auto& [cname, packets] : chunk_cases(degraded.size())) {
      SCOPED_TRACE(cname);
      expect_same_result(analyzer.analyze(rechunk(degraded, packets)), batch);
    }
  }
}

TEST(StreamingEquivalence, FullPipelineMatchesBatchForEveryChunkSize) {
  // pcap serialization -> StreamingReader chunks -> unbounded LiveAnalyzer:
  // the whole streaming stack against batch analysis of the same bytes.
  const Analyzer analyzer;
  for (const auto& [pname, profile] : all_profiles()) {
    SCOPED_TRACE(pname);
    const net::PacketTrace trace = merged_trace(profile, /*seed=*/4321, 4);
    ASSERT_GT(trace.size(), 0u);
    std::stringstream bytes;
    pcap::write_stream(bytes, trace);
    const net::PacketTrace reread = pcap::read_stream(bytes);
    const AnalysisResult batch = analyzer.analyze(reread);
    for (const auto& [cname, packets] : chunk_cases(trace.size())) {
      SCOPED_TRACE(cname);
      const AnalysisResult streamed =
          analyze_via_streaming_pipeline(trace, packets, nullptr);
      expect_same_result(streamed, batch);
    }
  }
}

// ---------------------------------------------------------------------------
// StreamingReader: chunk concatenation reproduces read_stream bit for bit,
// truncation semantics included.
// ---------------------------------------------------------------------------

TEST(StreamingReader, ChunksConcatenateToReadStream) {
  const net::PacketTrace trace =
      merged_trace(workload::web_search_profile(), /*seed=*/15, 3);
  ASSERT_GT(trace.size(), 0u);
  std::stringstream bytes;
  pcap::write_stream(bytes, trace);
  const std::string blob = bytes.str();

  std::stringstream batch_in(blob);
  pcap::ReadStats batch_stats;
  const net::PacketTrace batch = pcap::read_stream(batch_in, &batch_stats);

  for (const auto& [cname, packets] : chunk_cases(trace.size())) {
    SCOPED_TRACE(cname);
    std::stringstream in(blob);
    pcap::StreamingReader reader(
        in, pcap::StreamingOptions{.chunk_packets = packets});
    net::PacketTrace concat;
    while (auto chunk = reader.next_chunk()) {
      for (const auto& pkt : chunk->packets()) concat.add(pkt);
    }
    ASSERT_EQ(concat.size(), batch.size());
    for (std::size_t i = 0; i < concat.size(); ++i) {
      EXPECT_EQ(concat[i].timestamp.us(), batch[i].timestamp.us());
      EXPECT_EQ(concat[i].key, batch[i].key);
      EXPECT_EQ(concat[i].tcp.seq, batch[i].tcp.seq);
      EXPECT_EQ(concat[i].tcp.ack, batch[i].tcp.ack);
      EXPECT_EQ(concat[i].payload_len, batch[i].payload_len);
      EXPECT_EQ(concat[i].truncated, batch[i].truncated);
    }
    EXPECT_EQ(reader.stats().records, batch_stats.records);
    EXPECT_EQ(reader.stats().tcp_packets, batch_stats.tcp_packets);
    EXPECT_EQ(reader.stats().skipped, batch_stats.skipped);
  }
}

TEST(StreamingReader, KeepsCompleteRecordsOnTruncatedTail) {
  // Same rollback semantics as read_stream: a capture cut mid-record keeps
  // everything before the cut.
  const net::PacketTrace trace =
      merged_trace(workload::web_search_profile(), /*seed=*/42, 1);
  ASSERT_GE(trace.size(), 3u);
  std::stringstream full;
  pcap::write_stream(full, trace);
  const std::string blob = full.str();
  // Cut inside the last record's body (records are 16-byte header + body).
  const std::string cut = blob.substr(0, blob.size() - 4);

  std::stringstream in(cut);
  pcap::StreamingReader reader(in,
                               pcap::StreamingOptions{.chunk_packets = 2});
  std::size_t total = 0;
  while (auto chunk = reader.next_chunk()) total += chunk->size();
  EXPECT_EQ(total, trace.size() - 1);
  EXPECT_EQ(reader.stats().tcp_packets, trace.size() - 1);
}

// ---------------------------------------------------------------------------
// Satellite: parse errors report the absolute file offset and frame index.
// ---------------------------------------------------------------------------

TEST(PcapErrors, ClassicCaplenErrorCarriesRecordIndexAndOffset) {
  net::PacketTrace trace =
      merged_trace(workload::web_search_profile(), /*seed=*/9, 1);
  ASSERT_GE(trace.size(), 2u);
  std::stringstream out;
  pcap::write_stream(out, trace);
  std::string blob = out.str();

  // Corrupt record 2's caplen field. Record 1 starts after the 24-byte
  // global header; its caplen sits at bytes [8, 12) of the record header.
  constexpr std::size_t kGlobalHeader = 24;
  constexpr std::size_t kRecordHeader = 16;
  const auto u8 = [&blob](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<std::uint8_t>(blob[i]));
  };
  const std::uint32_t caplen1 =
      u8(kGlobalHeader + 8) | (u8(kGlobalHeader + 9) << 8) |
      (u8(kGlobalHeader + 10) << 16) | (u8(kGlobalHeader + 11) << 24);
  const std::size_t record2 = kGlobalHeader + kRecordHeader + caplen1;
  ASSERT_LT(record2 + kRecordHeader, blob.size());
  // 8 MiB caplen: far over the reader's 256 KiB sanity cap.
  blob[record2 + 8] = 0;
  blob[record2 + 9] = 0;
  blob[record2 + 10] = static_cast<char>(0x80);
  blob[record2 + 11] = 0;

  const std::string expected = "pcap: absurd caplen 8388608 (record 2, offset " +
                               std::to_string(record2) + ")";
  std::stringstream in(blob);
  try {
    pcap::read_stream(in);
    FAIL() << "read_stream must reject the absurd caplen";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }

  // The streaming reader throws the identical message from next_chunk.
  // (Sealing is lazy, so the parse error can surface before the first
  // chunk is handed out — any next_chunk call may throw.)
  std::stringstream in2(blob);
  pcap::StreamingReader reader(in2,
                               pcap::StreamingOptions{.chunk_packets = 1});
  try {
    while (reader.next_chunk()) {
    }
    FAIL() << "StreamingReader must reject the absurd caplen";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

TEST(PcapErrors, PcapngBlockErrorCarriesBlockIndexAndOffset) {
  // Minimal pcapng: a valid SHB, then a block with an absurd length.
  std::string blob;
  const auto put32 = [&blob](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put32(0x0A0D0D0A);  // SHB type
  put32(28);          // SHB length
  put32(0x1A2B3C4D);  // byte-order magic
  put32(0x00000001);  // version 1.0
  put32(0xFFFFFFFF);  // section length (unspecified), low
  put32(0xFFFFFFFF);  // section length, high
  put32(28);          // trailing length
  const std::size_t block2 = blob.size();
  put32(0x00000006);   // EPB type
  put32(0xFFFFFFF0u);  // absurd total length

  std::stringstream in(blob);
  try {
    pcap::read_stream(in);
    FAIL() << "read_stream must reject the absurd block length";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset " + std::to_string(block2)), std::string::npos)
        << msg;
  }
}

// ---------------------------------------------------------------------------
// MemoryBudget ledger and chunk RAII accounting.
// ---------------------------------------------------------------------------

TEST(MemoryBudget, LedgerTracksChargesReleasesAndHighWater) {
  util::MemoryBudget budget(1000);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_FALSE(budget.over_budget());
  budget.charge(600);
  EXPECT_EQ(budget.resident(), 600u);
  budget.charge(600);
  EXPECT_TRUE(budget.over_budget());
  EXPECT_EQ(budget.high_water(), 1200u);
  budget.release(700);
  EXPECT_EQ(budget.resident(), 500u);
  EXPECT_FALSE(budget.over_budget());
  // Over-release clamps to zero instead of wrapping.
  budget.release(10'000);
  EXPECT_EQ(budget.resident(), 0u);
  EXPECT_EQ(budget.high_water(), 1200u);

  util::MemoryBudget unlimited;
  EXPECT_TRUE(unlimited.unlimited());
  unlimited.charge(std::size_t{1} << 40);
  EXPECT_FALSE(unlimited.over_budget());  // tracked, never enforced
  EXPECT_EQ(unlimited.resident(), std::size_t{1} << 40);
}

TEST(MemoryBudget, TraceChunkChargesAreRaii) {
  const std::size_t chunk_bytes = 16 * sizeof(net::CapturedPacket);
  util::MemoryBudget budget(1 << 20);
  {
    net::TraceChunk chunk(16, &budget);
    EXPECT_EQ(budget.resident(), chunk_bytes);
    // Moving transfers the charge; it is never doubled or dropped.
    net::TraceChunk moved = std::move(chunk);
    EXPECT_EQ(budget.resident(), chunk_bytes);
  }
  EXPECT_EQ(budget.resident(), 0u);
  EXPECT_EQ(budget.high_water(), chunk_bytes);
}

// ---------------------------------------------------------------------------
// ChunkedTrace: lazy sealing keeps rollback reachable across boundaries.
// ---------------------------------------------------------------------------

TEST(ChunkedTrace, LazySealingKeepsRollbackReachable) {
  std::vector<std::vector<std::uint32_t>> sealed;
  net::ChunkedTrace ct(2, [&sealed](net::TraceChunk&& c) {
    std::vector<std::uint32_t> payloads;
    for (const auto& p : c.packets()) payloads.push_back(p.payload_len);
    sealed.push_back(std::move(payloads));
  });
  net::TraceBuilder builder(ct);
  builder.begin_packet().payload_len = 1;
  builder.begin_packet().payload_len = 2;
  // The chunk is full but NOT yet emitted — rollback can still reach it.
  EXPECT_TRUE(sealed.empty());
  builder.rollback_last();
  builder.begin_packet().payload_len = 3;  // refills the slot in place
  builder.begin_packet().payload_len = 4;  // NOW the first chunk seals
  ASSERT_EQ(sealed.size(), 1u);
  EXPECT_EQ(sealed[0], (std::vector<std::uint32_t>{1, 3}));
  ct.seal_open();
  ASSERT_EQ(sealed.size(), 2u);
  EXPECT_EQ(sealed[1], (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(ct.size(), 3u);
}

TEST(ChunkedTrace, RetainedModeRoundTripsThroughToTrace) {
  const net::PacketTrace trace =
      merged_trace(workload::cloud_storage_profile(), /*seed=*/2, 2);
  ASSERT_GT(trace.size(), 0u);
  const net::ChunkedTrace chunks = rechunk(trace, 7);
  const net::PacketTrace back = chunks.to_trace();
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp.us(), trace[i].timestamp.us());
    EXPECT_EQ(back[i].key, trace[i].key);
    EXPECT_EQ(back[i].tcp.seq, trace[i].tcp.seq);
  }
}

// ---------------------------------------------------------------------------
// Budget enforcement: bounded, deterministic, and surfaced in stats.
// ---------------------------------------------------------------------------

TEST(BudgetEnforcement, EvictionKeepsResidencyBoundedAndIsDeterministic) {
  // Many interleaved small flows, analyzed under a budget far smaller than
  // the trace: the pipeline must evict (not grow), keep the ledger under
  // the cap, and produce the identical result on a second run.
  net::PacketTrace trace;
  {
    Rng master(501);
    const auto profile = workload::web_search_profile();
    for (int f = 0; f < 24; ++f) {
      Rng flow_rng = master.split();
      const auto scenario = workload::draw_scenario(
          profile, flow_rng, static_cast<std::uint64_t>(f + 1));
      auto outcome = workload::run_flow(scenario, flow_rng.split(),
                                        Duration::seconds(600.0),
                                        workload::TraceCapture::kServerNic);
      ASSERT_TRUE(outcome.trace.has_value());
      for (const auto& p : outcome.trace->packets()) trace.add(p);
    }
    trace.sort_by_time();
  }
  const std::size_t trace_bytes = trace.size() * sizeof(net::CapturedPacket);
  const std::size_t limit = trace_bytes / 4;
  ASSERT_GT(limit, 16u * sizeof(net::CapturedPacket));

  auto run_once = [&](LiveStats* stats) {
    util::MemoryBudget budget(limit);
    AnalysisResult r = analyze_via_streaming_pipeline(
        trace, /*chunk_packets=*/64, &budget, stats);
    EXPECT_LE(budget.high_water(), limit)
        << "ledger peak must stay under the configured cap";
    EXPECT_EQ(budget.resident(), 0u) << "everything released at flush";
    return r;
  };

  LiveStats s1, s2;
  const AnalysisResult first = run_once(&s1);
  const AnalysisResult second = run_once(&s2);
  EXPECT_GT(s1.budget_evictions, 0u) << "undersized budget must evict";
  EXPECT_EQ(s1.budget_evictions, s2.budget_evictions);
  EXPECT_EQ(s1.flows_finalized, s2.flows_finalized);
  expect_same_result(first, second);
  // Evicted-and-restarted flows still surface: nothing silently vanishes.
  EXPECT_GE(first.flows.size(), 24u);
}

TEST(BudgetEnforcement, UnlimitedBudgetChangesNothing) {
  const Analyzer analyzer;
  const net::PacketTrace trace =
      merged_trace(workload::software_download_profile(), /*seed=*/31, 3);
  ASSERT_GT(trace.size(), 0u);
  std::stringstream bytes;
  pcap::write_stream(bytes, trace);
  const net::PacketTrace reread = pcap::read_stream(bytes);
  const AnalysisResult batch = analyzer.analyze(reread);

  util::MemoryBudget budget;  // limit 0 = unlimited, still tracked
  LiveStats stats;
  const AnalysisResult streamed = analyze_via_streaming_pipeline(
      trace, /*chunk_packets=*/64, &budget, &stats);
  EXPECT_EQ(stats.budget_evictions, 0u);
  EXPECT_GT(budget.high_water(), 0u);
  EXPECT_EQ(budget.resident(), 0u);
  expect_same_result(streamed, batch);
}

}  // namespace
}  // namespace tapo::analysis
