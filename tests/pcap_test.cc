// Tests for the pcap codec: round-trips, foreign-endian and nanosecond
// files, Ethernet framing, and malformed input handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "net/ipv4.h"
#include "pcap/pcap.h"
#include "util/rng.h"

namespace tapo::pcap {
namespace {

net::CapturedPacket make_pkt(std::int64_t us, std::uint32_t seq,
                             std::uint32_t payload, bool from_server) {
  net::CapturedPacket p;
  p.timestamp = TimePoint::from_us(us);
  if (from_server) {
    p.key = {net::ipv4_from_string("192.168.1.1"),
             net::ipv4_from_string("10.0.0.1"), 80, 40000};
  } else {
    p.key = {net::ipv4_from_string("10.0.0.1"),
             net::ipv4_from_string("192.168.1.1"), 40000, 80};
  }
  p.tcp.seq = net::Seq32{seq};
  p.tcp.ack = net::Seq32{1};
  p.tcp.flags.ack = true;
  p.tcp.window = 1000;
  p.payload_len = payload;
  return p;
}

TEST(Pcap, StreamRoundTrip) {
  net::PacketTrace trace;
  auto syn = make_pkt(1'500'000, 0, 0, false);
  syn.tcp.flags = net::TcpFlags{};
  syn.tcp.flags.syn = true;
  syn.tcp.mss = 1448;
  syn.tcp.sack_permitted = true;
  syn.tcp.window_scale = 7;
  trace.add(syn);
  trace.add(make_pkt(1'600'123, 1, 1448, true));
  auto ack = make_pkt(1'700'456, 1, 0, false);
  ack.tcp.sack_blocks = {{net::Seq32{2897}, net::Seq32{4345}}};
  trace.add(ack);

  std::stringstream ss;
  write_stream(ss, trace);

  ReadStats stats;
  const auto back = read_stream(ss, &stats);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.tcp_packets, 3u);
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(back.size(), 3u);

  EXPECT_EQ(back[0].timestamp.us(), 1'500'000);
  EXPECT_TRUE(back[0].tcp.flags.syn);
  ASSERT_TRUE(back[0].tcp.mss.has_value());
  EXPECT_EQ(*back[0].tcp.mss, 1448);
  EXPECT_TRUE(back[0].tcp.sack_permitted);
  EXPECT_EQ(back[0].key.src_port, 40000);

  EXPECT_EQ(back[1].timestamp.us(), 1'600'123);
  EXPECT_EQ(back[1].payload_len, 1448u);
  EXPECT_EQ(back[1].key.src_ip, net::ipv4_from_string("192.168.1.1"));

  ASSERT_EQ(back[2].tcp.sack_blocks.size(), 1u);
  EXPECT_EQ(back[2].tcp.sack_blocks[0],
            (net::SackBlock{net::Seq32{2897}, net::Seq32{4345}}));
}

TEST(Pcap, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tapo_test.pcap").string();
  net::PacketTrace trace;
  for (int i = 0; i < 50; ++i) {
    trace.add(make_pkt(1000 * i, 1 + 1448 * i, 1448, i % 2 == 0));
  }
  write_file(path, trace);
  ReadStats stats;
  const auto back = read_file(path, &stats);
  EXPECT_EQ(back.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(back[i].timestamp.us(), 1000 * i);
    EXPECT_EQ(back[i].tcp.seq.raw(), 1u + 1448u * i);
  }
  std::remove(path.c_str());
}

TEST(Pcap, BadMagicThrows) {
  std::stringstream ss;
  ss.write("not a pcap file at all....", 26);
  EXPECT_THROW(read_stream(ss), std::runtime_error);
}

TEST(Pcap, TruncatedHeaderThrows) {
  std::stringstream ss;
  ss.write("\xd4\xc3\xb2\xa1", 4);
  EXPECT_THROW(read_stream(ss), std::runtime_error);
}

TEST(Pcap, TruncatedFinalRecordKeepsPrefix) {
  net::PacketTrace trace;
  trace.add(make_pkt(100, 1, 100, true));
  trace.add(make_pkt(200, 101, 100, true));
  std::stringstream ss;
  write_stream(ss, trace);
  std::string bytes = ss.str();
  bytes.resize(bytes.size() - 30);  // cut into the last record
  std::stringstream cut(bytes);
  const auto back = read_stream(cut);
  EXPECT_EQ(back.size(), 1u);
}

TEST(Pcap, SwappedEndianHeader) {
  net::PacketTrace trace;
  trace.add(make_pkt(123'456, 1, 10, true));
  std::stringstream ss;
  write_stream(ss, trace);
  std::string bytes = ss.str();
  // Byte-swap the global header and the record header manually so the file
  // looks like it was written on a big-endian machine.
  auto swap32 = [&bytes](std::size_t off) {
    std::swap(bytes[off], bytes[off + 3]);
    std::swap(bytes[off + 1], bytes[off + 2]);
  };
  auto swap16 = [&bytes](std::size_t off) { std::swap(bytes[off], bytes[off + 1]); };
  swap32(0);             // magic
  swap16(4);             // version major
  swap16(6);             // version minor
  swap32(8);
  swap32(12);
  swap32(16);            // snaplen
  swap32(20);            // linktype
  for (std::size_t off = 24; off < 24 + 16; off += 4) swap32(off);
  std::stringstream swapped(bytes);
  const auto back = read_stream(swapped);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].timestamp.us(), 123'456);
}

TEST(Pcap, EthernetLinktype) {
  // Hand-assemble a 1-record Ethernet pcap containing an IPv4/TCP packet.
  std::string bytes;
  auto le32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  auto le16 = [&bytes](std::uint16_t v) {
    bytes.push_back(static_cast<char>(v & 0xff));
    bytes.push_back(static_cast<char>(v >> 8));
  };
  le32(0xa1b2c3d4);
  le16(2);
  le16(4);
  le32(0);
  le32(0);
  le32(65535);
  le32(1);  // LINKTYPE_ETHERNET

  // Build the IP/TCP payload via the writer on a raw trace, then wrap.
  net::PacketTrace tmp;
  tmp.add(make_pkt(42, 7, 5, false));
  std::stringstream raw;
  write_stream(raw, tmp);
  const std::string raw_bytes = raw.str();
  const std::string ip_pkt = raw_bytes.substr(24 + 16);  // skip headers

  le32(0);  // ts sec
  le32(42);  // ts usec
  le32(static_cast<std::uint32_t>(14 + ip_pkt.size()));  // caplen
  le32(static_cast<std::uint32_t>(14 + ip_pkt.size()));  // len
  // Ethernet header: dst, src, ethertype 0x0800.
  bytes.append(12, '\0');
  bytes.push_back(0x08);
  bytes.push_back(0x00);
  bytes += ip_pkt;

  std::stringstream ss(bytes);
  ReadStats stats;
  const auto back = read_stream(ss, &stats);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].tcp.seq, net::Seq32{7});
  EXPECT_EQ(back[0].payload_len, 5u);
  EXPECT_EQ(back[0].timestamp.us(), 42);
}

TEST(Pcap, NonTcpRecordsSkipped) {
  net::PacketTrace trace;
  trace.add(make_pkt(1, 1, 10, true));
  std::stringstream ss;
  write_stream(ss, trace);
  std::string bytes = ss.str();
  // Flip the IP protocol byte (offset: 24 global + 16 record + 9) to UDP.
  bytes[24 + 16 + 9] = 17;
  // Fix the IP checksum? The reader does not verify checksums; fine.
  std::stringstream mod(bytes);
  ReadStats stats;
  const auto back = read_stream(mod, &stats);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(stats.skipped, 1u);
}

TEST(Pcap, LargeRandomTraceRoundTrip) {
  Rng rng(99);
  net::PacketTrace trace;
  std::int64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.uniform_int(0, 5000);
    auto p = make_pkt(t, static_cast<std::uint32_t>(rng.next_u64()),
                      static_cast<std::uint32_t>(rng.uniform_int(0, 1448)),
                      rng.chance(0.5));
    if (rng.chance(0.2)) {
      p.tcp.sack_blocks.push_back(
          {net::Seq32{static_cast<std::uint32_t>(rng.next_u64())},
           net::Seq32{static_cast<std::uint32_t>(rng.next_u64())}});
    }
    trace.add(p);
  }
  std::stringstream ss;
  write_stream(ss, trace);
  const auto back = read_stream(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].tcp.seq, trace[i].tcp.seq);
    EXPECT_EQ(back[i].payload_len, trace[i].payload_len);
    EXPECT_EQ(back[i].timestamp, trace[i].timestamp);
    EXPECT_EQ(back[i].tcp.sack_blocks, trace[i].tcp.sack_blocks);
  }
}

}  // namespace
}  // namespace tapo::pcap
