// Tests for flow demultiplexing and handshake parameter extraction.
#include <gtest/gtest.h>

#include "tapo/flow.h"

namespace tapo::analysis {
namespace {

net::CapturedPacket pkt(std::int64_t us, std::uint32_t sip, std::uint32_t dip,
                        std::uint16_t sport, std::uint16_t dport,
                        std::uint32_t payload = 0) {
  net::CapturedPacket p;
  p.timestamp = TimePoint::from_us(us);
  p.key = {sip, dip, sport, dport};
  p.tcp.src_port = sport;
  p.tcp.dst_port = dport;
  p.tcp.flags.ack = true;
  p.payload_len = payload;
  return p;
}

TEST(Demux, SplitsByFourTuple) {
  net::PacketTrace trace;
  // Two connections, interleaved.
  trace.add(pkt(1, 10, 20, 1111, 80, 100));
  trace.add(pkt(2, 11, 20, 2222, 80, 100));
  trace.add(pkt(3, 20, 10, 80, 1111, 500));
  trace.add(pkt(4, 20, 11, 80, 2222, 500));
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_EQ(flows[1].packets.size(), 2u);
}

TEST(Demux, BothDirectionsSameFlow) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 80, 100));
  trace.add(pkt(2, 20, 10, 80, 1111, 1000));
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_FALSE(flows[0].packets[0].from_server);
  EXPECT_TRUE(flows[0].packets[1].from_server);
}

TEST(Demux, ServerIdentifiedBySynAck) {
  net::PacketTrace trace;
  auto syn = pkt(1, 10, 20, 1111, 80);
  syn.tcp.flags = net::TcpFlags{};
  syn.tcp.flags.syn = true;
  trace.add(syn);
  auto synack = pkt(2, 20, 10, 80, 1111);
  synack.tcp.flags.syn = true;
  synack.tcp.flags.ack = true;
  trace.add(synack);
  // Client sends MORE payload than the server here — SYN-ACK still wins.
  trace.add(pkt(3, 10, 20, 1111, 80, 5000));
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].server_to_client.src_ip, 20u);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_TRUE(flows[0].saw_synack);
}

TEST(Demux, ServerIdentifiedByPayloadWithoutHandshake) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 80, 100));
  trace.add(pkt(2, 20, 10, 80, 1111, 9000));
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].server_to_client.src_ip, 20u);
}

TEST(Demux, ServerPortOptionOverrides) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 8080, 9000));  // "client" sends a lot
  trace.add(pkt(2, 20, 10, 8080, 1111, 10));
  DemuxOptions opts;
  opts.server_port = 8080;
  const auto flows = demux_flows(trace, opts);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].server_to_client.src_port, 8080);
}

TEST(Demux, HandshakeParamsExtracted) {
  net::PacketTrace trace;
  auto syn = pkt(1, 10, 20, 1111, 80);
  syn.tcp.flags = net::TcpFlags{};
  syn.tcp.flags.syn = true;
  syn.tcp.seq = net::Seq32{999};
  syn.tcp.window = 5840;
  syn.tcp.mss = 1400;
  syn.tcp.sack_permitted = true;
  syn.tcp.window_scale = 7;
  trace.add(syn);
  auto synack = pkt(2, 20, 10, 80, 1111);
  synack.tcp.flags.syn = true;
  synack.tcp.flags.ack = true;
  synack.tcp.seq = net::Seq32{7777};
  trace.add(synack);
  auto ack = pkt(3, 10, 20, 1111, 80);
  ack.tcp.window = 100;  // scaled by 2^7 = 12800 bytes
  trace.add(ack);

  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  const auto& f = flows[0];
  EXPECT_EQ(f.client_isn, net::Seq32{999});
  EXPECT_EQ(f.server_isn, net::Seq32{7777});
  EXPECT_EQ(f.mss, 1400);
  EXPECT_TRUE(f.sack_permitted);
  EXPECT_EQ(f.client_wscale, 7);
  EXPECT_EQ(f.syn_window, 5840u);
  EXPECT_EQ(f.init_rwnd_bytes, 100u << 7);
}

TEST(Demux, InitRwndFallsBackToSynWindow) {
  net::PacketTrace trace;
  auto syn = pkt(1, 10, 20, 1111, 80);
  syn.tcp.flags = net::TcpFlags{};
  syn.tcp.flags.syn = true;
  syn.tcp.window = 4096;
  trace.add(syn);
  auto synack = pkt(2, 20, 10, 80, 1111);
  synack.tcp.flags.syn = true;
  synack.tcp.flags.ack = true;
  trace.add(synack);
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].init_rwnd_bytes, 4096u);
}

TEST(Demux, MinPacketsFilters) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 80, 100));  // singleton flow
  trace.add(pkt(2, 11, 20, 2222, 80, 100));
  trace.add(pkt(3, 20, 11, 80, 2222, 100));
  DemuxOptions opts;
  opts.min_packets = 2;
  const auto flows = demux_flows(trace, opts);
  EXPECT_EQ(flows.size(), 1u);
}

TEST(Demux, PayloadByteCounters) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 80, 100));
  trace.add(pkt(2, 20, 10, 80, 1111, 1448));
  trace.add(pkt(3, 20, 10, 80, 1111, 1448));
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].server_payload_bytes, 2896u);
  EXPECT_EQ(flows[0].client_payload_bytes, 100u);
}

TEST(Demux, FinTracked) {
  net::PacketTrace trace;
  trace.add(pkt(1, 10, 20, 1111, 80, 100));
  auto fin = pkt(2, 20, 10, 80, 1111);
  fin.tcp.flags.fin = true;
  trace.add(fin);
  const auto flows = demux_flows(trace);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].saw_fin);
}

}  // namespace
}  // namespace tapo::analysis
