// Telemetry subsystem tests: tracer ring semantics, flow sampling, the
// metrics registry and its exporters, the minimal JSON parser, the
// cause-name mirror against the analyzer, and the acceptance-criteria
// equivalence between tapo_stalls_total{cause=...} and the stall breakdown
// a BreakdownSink computes from the same run.
//
// Suite names all start with "Telemetry" so the TSan build's explicit
// telemetry_tsan ctest entry (--gtest_filter=Telemetry*.*) covers them.
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tapo/analyzer.h"
#include "tapo/report.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "workload/experiment.h"
#include "workload/runner.h"

#include "support/sync.h"

namespace tapo {
namespace {

using telemetry::EventKind;
using telemetry::FlowScope;
using telemetry::Json;
using telemetry::json_parse;
using telemetry::Registry;
using telemetry::Tracer;

/// Puts the tracer in a known state for one test and restores the shipped
/// defaults afterwards.
class TelemetryTracer : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& tracer = Tracer::instance();
    tracer.reset();
    tracer.set_shard_capacity(1 << 16);
    tracer.set_sample_every(1);
    tracer.set_categories(telemetry::kControl | telemetry::kLifecycle);
    tracer.set_enabled(true);
  }
  void TearDown() override {
    auto& tracer = Tracer::instance();
    tracer.set_enabled(false);
    tracer.set_sample_every(1);
    tracer.set_categories(telemetry::kControl | telemetry::kLifecycle);
    tracer.reset();
  }
};

TEST_F(TelemetryTracer, RingOverwritesOldestAndCountsDrops) {
  auto& tracer = Tracer::instance();
  tracer.reset();
  tracer.set_shard_capacity(16);
  {
    FlowScope scope(7);
    for (std::int64_t i = 0; i < 100; ++i) {
      tracer.record(EventKind::kRtoFire, i, 1, 2);
    }
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.flow, 7u);
    EXPECT_GE(ev.ts_us, 84);  // the oldest 84 were overwritten
    EXPECT_EQ(ev.kind, EventKind::kRtoFire);
  }
}

TEST_F(TelemetryTracer, FlowScopeSamplingRecordsEveryNth) {
  auto& tracer = Tracer::instance();
  tracer.set_sample_every(2);
  for (std::uint64_t f = 0; f < 4; ++f) {
    FlowScope scope(f);
    tracer.record(EventKind::kRtoFire, static_cast<std::int64_t>(f), 0, 0);
  }
  std::set<std::uint64_t> flows;
  for (const auto& ev : tracer.collect()) flows.insert(ev.flow);
  EXPECT_EQ(flows, (std::set<std::uint64_t>{0, 2}));
}

TEST_F(TelemetryTracer, FlowScopeNestsAndRestores) {
  auto& tracer = Tracer::instance();
  {
    FlowScope outer(1);
    {
      FlowScope inner(2);
      tracer.record(EventKind::kRtoFire, 10, 0, 0);
    }
    tracer.record(EventKind::kRtoFire, 20, 0, 0);
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].flow, 1u);  // collect() orders by (flow, ts)
  EXPECT_EQ(events[1].flow, 2u);
}

TEST_F(TelemetryTracer, CategoryMaskFiltersPacketEvents) {
  auto& tracer = Tracer::instance();
  // Default mask: control + lifecycle. Packet events must not record.
  EXPECT_FALSE(tracer.should_record(EventKind::kSegmentTx));
  tracer.record(EventKind::kSegmentTx, 1, 0, 0);
  EXPECT_TRUE(tracer.collect().empty());

  tracer.set_categories(telemetry::kPackets | telemetry::kControl |
                        telemetry::kLifecycle);
  EXPECT_TRUE(tracer.should_record(EventKind::kSegmentTx));
  tracer.record(EventKind::kSegmentTx, 1, 0, 0);
  EXPECT_EQ(tracer.collect().size(), 1u);
}

TEST_F(TelemetryTracer, DisabledRecordsNothing) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(false);
  tracer.record(EventKind::kRtoFire, 1, 0, 0);
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

/// Packs a kStallSpan payload the way analyzer.cc does.
std::uint64_t pack_stall(std::uint8_t cause, std::uint8_t retrans_cause,
                         std::uint8_t state, bool f_double,
                         std::uint32_t in_flight) {
  return static_cast<std::uint64_t>(cause) |
         static_cast<std::uint64_t>(retrans_cause) << 8 |
         static_cast<std::uint64_t>(state) << 16 |
         static_cast<std::uint64_t>(f_double) << 24 |
         static_cast<std::uint64_t>(in_flight) << 32;
}

TEST_F(TelemetryTracer, ChromeTraceExportsLabeledStallSpans) {
  auto& tracer = Tracer::instance();
  const std::uint32_t run = tracer.begin_run("web search");
  ASSERT_EQ(run, 1u);
  {
    FlowScope scope(static_cast<std::uint64_t>(run) << 32 | 3);
    // A retransmission (tail) stall and a client-idle stall.
    tracer.record(EventKind::kStallSpan, 1000, 2500,
                  pack_stall(5, 1, 2, true, 7));
    tracer.record(EventKind::kStallSpan, 9000, 400,
                  pack_stall(2, 7, 0, false, 0));
    tracer.record(EventKind::kCwnd, 500, 10, 20);
  }

  std::ostringstream os;
  tracer.export_chrome_trace(os);
  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type(), Json::Type::kArray);

  std::map<std::string, const Json*> by_name;
  const Json* meta = nullptr;
  for (const Json& ev : events->array()) {
    const std::string ph = ev.find("ph")->str();
    if (ph == "M") meta = &ev;
    if (ph == "X" || ph == "C") by_name[ev.find("name")->str()] = &ev;
  }

  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("args")->find("name")->str(), "web search");
  EXPECT_EQ(meta->find("pid")->number(), 1.0);

  const Json* tail = by_name["stall:retransmission/tail_retrans"];
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->find("ph")->str(), "X");
  EXPECT_EQ(tail->find("ts")->number(), 1000.0);
  EXPECT_EQ(tail->find("dur")->number(), 2500.0);
  EXPECT_EQ(tail->find("pid")->number(), 1.0);
  EXPECT_EQ(tail->find("tid")->number(), 3.0);
  const Json* args = tail->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("cause")->str(), "retransmission");
  EXPECT_EQ(args->find("retrans_cause")->str(), "tail_retrans");
  EXPECT_EQ(args->find("in_flight")->number(), 7.0);
  EXPECT_TRUE(args->find("f_double")->boolean());

  const Json* idle = by_name["stall:client_idle"];
  ASSERT_NE(idle, nullptr);  // non-retransmission stalls omit the sub-cause
  EXPECT_EQ(idle->find("args")->find("cause")->str(), "client_idle");

  const Json* cwnd = by_name["cwnd[f3]"];
  ASSERT_NE(cwnd, nullptr);
  EXPECT_EQ(cwnd->find("ph")->str(), "C");
  EXPECT_EQ(cwnd->find("args")->find("cwnd")->number(), 10.0);
  EXPECT_EQ(cwnd->find("args")->find("ssthresh")->number(), 20.0);
}

TEST_F(TelemetryTracer, JsonlExportOneValidObjectPerLine) {
  auto& tracer = Tracer::instance();
  {
    FlowScope scope(static_cast<std::uint64_t>(2) << 32 | 5);
    tracer.record(EventKind::kRtoFire, 100, 600000, 3);
    tracer.record(EventKind::kStallSpan, 200, 999, pack_stall(5, 0, 3, false, 2));
  }
  std::ostringstream os;
  tracer.export_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    std::string error;
    const auto doc = json_parse(line, &error);
    ASSERT_TRUE(doc.has_value()) << line << ": " << error;
    EXPECT_EQ(doc->find("run")->number(), 2.0);
    EXPECT_EQ(doc->find("flow")->number(), 5.0);
    if (doc->find("kind")->str() == "stall") {
      EXPECT_EQ(doc->find("cause")->str(), "retransmission");
      EXPECT_EQ(doc->find("retrans_cause")->str(), "double_retrans");
      EXPECT_EQ(doc->find("dur_us")->number(), 999.0);
    }
  }
  EXPECT_EQ(lines, 2u);
}

TEST(TelemetryNames, MirrorAnalysisToString) {
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    EXPECT_STREQ(telemetry::stall_cause_name(static_cast<std::uint8_t>(c)),
                 analysis::to_string(static_cast<analysis::StallCause>(c)));
  }
  // kNumRetransCauses excludes kNone; the name table must cover it too.
  for (std::size_t c = 0; c <= analysis::kNumRetransCauses; ++c) {
    EXPECT_STREQ(telemetry::retrans_cause_name(static_cast<std::uint8_t>(c)),
                 analysis::to_string(static_cast<analysis::RetransCause>(c)));
  }
}

TEST(TelemetryRegistry, CounterSumsAcrossThreads) {
  auto& counter = Registry::instance().counter("ttest_mt_total");
  counter.reset();
  // Start gate (tests/support/sync.h) so the adds genuinely contend
  // instead of the first thread finishing before the last one spawns.
  test::Latch start(1);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&counter, &start] {
      start.wait();
      for (int i = 0; i < 1000; ++i) counter.add(1);
    });
  }
  start.count_down();
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(), 4000u);
}

TEST(TelemetryRegistry, SameNameAndLabelsSameMetric) {
  auto& a = Registry::instance().counter("ttest_dedup_total", {{"k", "v"}});
  auto& b = Registry::instance().counter("ttest_dedup_total", {{"k", "v"}});
  auto& c = Registry::instance().counter("ttest_dedup_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(TelemetryRegistry, HistogramLogBuckets) {
  auto& hist = Registry::instance().histogram("ttest_hist_us");
  hist.reset();
  hist.observe(0);     // bucket 0
  hist.observe(1);     // bucket 1: [1, 2)
  hist.observe(2);     // bucket 2: [2, 4)
  hist.observe(3);     // bucket 2
  hist.observe(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.sum(), 1030u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(2), 2u);
  EXPECT_EQ(hist.bucket(11), 1u);
  hist.reset();
}

TEST(TelemetryRegistry, ResetZeroesButKeepsReferences) {
  auto& counter = Registry::instance().counter("ttest_reset_total");
  counter.add(5);
  Registry::instance().reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(2);  // the cached reference must still be live
  EXPECT_EQ(counter.value(), 2u);
  counter.reset();
}

TEST(TelemetryRegistry, PrometheusExportFormat) {
  auto& registry = Registry::instance();
  auto& counter = registry.counter("ttest_prom_total", {{"svc", "a"}});
  counter.reset();
  counter.add(3);
  auto& hist = registry.histogram("ttest_prom_lat_us");
  hist.reset();
  hist.observe(5);

  std::ostringstream os;
  registry.export_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE ttest_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("ttest_prom_total{svc=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ttest_prom_lat_us histogram"), std::string::npos);
  // 5 lands in [4, 8): cumulative le="4" is 0, le="8" is 1.
  EXPECT_NE(text.find("ttest_prom_lat_us_bucket{le=\"4\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("ttest_prom_lat_us_bucket{le=\"8\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("ttest_prom_lat_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("ttest_prom_lat_us_sum 5\n"), std::string::npos);
  EXPECT_NE(text.find("ttest_prom_lat_us_count 1\n"), std::string::npos);
  counter.reset();
  hist.reset();
}

TEST(TelemetryRegistry, JsonExportParses) {
  auto& registry = Registry::instance();
  registry.counter("ttest_json_total").add(1);
  std::ostringstream os;
  registry.export_json(os);
  std::string error;
  const auto doc = json_parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type(), Json::Type::kArray);
  bool found = false;
  for (const Json& m : metrics->array()) {
    if (m.find("name")->str() != "ttest_json_total") continue;
    found = true;
    EXPECT_EQ(m.find("type")->str(), "counter");
    EXPECT_GE(m.find("value")->number(), 1.0);
  }
  EXPECT_TRUE(found);
  registry.counter("ttest_json_total").reset();
}

TEST(TelemetryJson, ParserRoundTrip) {
  std::string error;
  const auto doc = json_parse(
      R"({"a":[1,2.5,"x\nA",true,null],"b":{"c":-3e2},"d":""})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 5u);
  EXPECT_EQ(a->array()[0].number(), 1.0);
  EXPECT_EQ(a->array()[1].number(), 2.5);
  EXPECT_EQ(a->array()[2].str(), "x\nA");
  EXPECT_TRUE(a->array()[3].boolean());
  EXPECT_TRUE(a->array()[4].is_null());
  EXPECT_EQ(doc->find("b")->find("c")->number(), -300.0);
  EXPECT_EQ(doc->find("d")->str(), "");
}

TEST(TelemetryJson, ParserRejectsMalformedInput) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "12 34", "\"unterminated",
                          "{\"a\" 1}", "tru"}) {
    std::string error;
    EXPECT_FALSE(json_parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(TelemetryJson, QuoteEscapesControlCharacters) {
  EXPECT_EQ(telemetry::json_quote("a\"b\\c\n\t"), "\"a\\\"b\\\\c\\n\\t\"");
  const auto back = json_parse(telemetry::json_quote("\x01\x1f plain"));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->str(), "\x01\x1f plain");
}

// Acceptance criterion: the per-cause stall counters the analyzer
// increments must sum to exactly the stall table a BreakdownSink builds
// from the same flows — both count at the same classification site.
TEST(TelemetryStallCounters, MatchBreakdownSinkExactly) {
#if !TAPO_TELEMETRY
  GTEST_SKIP() << "instrumentation hooks compiled out (TAPO_TELEMETRY=OFF)";
#endif
  telemetry::disable_and_reset_all();
  telemetry::enable_all();

  const auto cfg = workload::ExperimentConfig{}
                       .with_profile(workload::web_search_profile())
                       .with_flows(60)
                       .with_seed(2015);
  workload::RunOptions options;
  options.threads = 2;
  workload::ParallelRunner runner(cfg, options);
  workload::BreakdownSink sink;
  runner.run(sink);

  auto& registry = Registry::instance();
  const auto& breakdown = sink.stalls();
  std::uint64_t counter_total = 0;
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    const auto cause = static_cast<analysis::StallCause>(c);
    const std::vector<telemetry::Label> labels = {
        {"cause", analysis::to_string(cause)}};
    const std::uint64_t count =
        registry.counter("tapo_stalls_total", labels).value();
    EXPECT_EQ(count, breakdown.by_cause[c].count) << analysis::to_string(cause);
    EXPECT_EQ(registry.counter("tapo_stall_time_us_total", labels).value(),
              static_cast<std::uint64_t>(breakdown.by_cause[c].time.us()))
        << analysis::to_string(cause);
    counter_total += count;
  }
  EXPECT_EQ(counter_total, breakdown.total_count);
  EXPECT_GT(counter_total, 0u) << "workload produced no stalls to compare";
  EXPECT_EQ(registry.histogram("tapo_stall_duration_us").count(),
            breakdown.total_count);

  telemetry::disable_and_reset_all();
}

// The runner tags every flow with run_id << 32 | flow_index; the Chrome
// export then groups events per run (pid) and flow (tid).
TEST(TelemetryRunnerTrace, EventsCarryRunAndFlowIds) {
#if !TAPO_TELEMETRY
  GTEST_SKIP() << "instrumentation hooks compiled out (TAPO_TELEMETRY=OFF)";
#endif
  telemetry::disable_and_reset_all();
  telemetry::enable_all();

  const auto cfg = workload::ExperimentConfig{}
                       .with_profile(workload::web_search_profile())
                       .with_flows(8)
                       .with_seed(7);
  workload::ParallelRunner runner(cfg, {});
  workload::CollectingSink sink;
  runner.run(sink);

  const auto events = Tracer::instance().collect();
  ASSERT_FALSE(events.empty());
  std::set<std::uint32_t> runs;
  std::set<std::uint32_t> flows;
  for (const auto& ev : events) {
    if (ev.flow == 0) continue;  // events outside any FlowScope
    runs.insert(static_cast<std::uint32_t>(ev.flow >> 32));
    flows.insert(static_cast<std::uint32_t>(ev.flow & 0xffffffffu));
  }
  EXPECT_EQ(runs, (std::set<std::uint32_t>{1}));
  EXPECT_FALSE(flows.empty());
  for (const std::uint32_t f : flows) EXPECT_LT(f, 8u);

  telemetry::disable_and_reset_all();
}

}  // namespace
}  // namespace tapo
