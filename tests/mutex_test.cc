// Unit tests for the annotated lock wrappers (util::Mutex / util::MutexLock
// / util::CondVar) and the tests/support/sync.h helpers built on them. The
// compile-time half of the contract — unguarded access to a
// TAPO_GUARDED_BY member failing the build — lives in
// cmake/thread_safety/ as a try_compile check; these tests cover the
// runtime semantics the annotations describe.
#include "util/mutex.h"

#include <array>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/sync.h"
#include "util/thread_annotations.h"

namespace tapo {
namespace {

TEST(MutexApi, MutualExclusionUnderContention) {
  util::Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  test::Latch start(1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      start.wait();
      for (int i = 0; i < kIters; ++i) {
        util::MutexLock lock(mu);
        ++counter;
      }
    });
  }
  start.count_down();
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexApi, TryLockFailsWhileHeldElsewhere) {
  util::Mutex mu;
  mu.lock();
  bool grabbed = true;
  std::thread probe([&] {
    const bool ok = mu.try_lock();
    if (ok) mu.unlock();
    grabbed = ok;
  });
  probe.join();
  EXPECT_FALSE(grabbed);
  mu.unlock();

  const bool ok_now = mu.try_lock();
  EXPECT_TRUE(ok_now);
  if (ok_now) mu.unlock();
}

TEST(MutexApi, CondVarWakesWaiterOnPredicate) {
  util::Mutex mu;
  util::CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    util::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    observed = true;
  });
  {
    util::MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(SyncSupport, LatchCountsDownFromWorkers) {
  constexpr std::size_t kThreads = 6;
  test::Latch done(kThreads);
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      completed.fetch_add(1);
      done.count_down();
    });
  }
  done.wait();  // returns only after every worker counted down
  EXPECT_EQ(completed.load(), static_cast<int>(kThreads));
  for (auto& th : threads) th.join();
}

TEST(SyncSupport, BarrierIsReusableAcrossRounds) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 3;
  test::Barrier barrier(kThreads);
  std::array<std::atomic<int>, kRounds> arrivals{};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        arrivals[r].fetch_add(1);
        barrier.arrive_and_wait();
        // After the rendezvous, every thread of this round has arrived.
        EXPECT_EQ(arrivals[r].load(), static_cast<int>(kThreads));
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
}  // namespace tapo
