// Seq32 serial-arithmetic unit tests plus the sequence-wraparound property
// test: a transfer whose ISN sits just below 2^32 (so every sequence number
// crosses the wrap mid-flow) must classify bit-identically to the same
// transfer started from a small ISN.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>

#include "net/ipv4.h"
#include "net/seq.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tapo/analyzer.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace tapo::net {
namespace {

constexpr Seq32 S(std::uint32_t v) { return Seq32{v}; }

TEST(Seq32, OrderingWithoutWrap) {
  EXPECT_TRUE(before(S(1), S(2)));
  EXPECT_FALSE(before(S(2), S(1)));
  EXPECT_FALSE(before(S(7), S(7)));
  EXPECT_TRUE(after(S(2), S(1)));
  EXPECT_TRUE(at_or_before(S(7), S(7)));
  EXPECT_TRUE(at_or_after(S(7), S(7)));
  EXPECT_TRUE(S(1) < S(2));
  EXPECT_TRUE(S(2) >= S(2));
}

TEST(Seq32, OrderingAcrossWrap) {
  // 0xFFFFFFF0 is *earlier* in the stream than 0x10: serial ordering, not
  // integer ordering.
  EXPECT_TRUE(before(S(0xFFFFFFF0u), S(0x10)));
  EXPECT_TRUE(after(S(0x10), S(0xFFFFFFF0u)));
  EXPECT_TRUE(S(0xFFFFFFF0u) < S(0x10));
  EXPECT_TRUE(at_or_before(S(0xFFFFFFFFu), S(0x0)));
  EXPECT_TRUE(seq_in_range(S(0x5), S(0xFFFFFFF0u), S(0x10)));
  EXPECT_FALSE(seq_in_range(S(0x10), S(0xFFFFFFF0u), S(0x10)));
}

TEST(Seq32, OrderingAtHalfSpace) {
  // The serial-arithmetic boundary: values exactly 2^31 apart. RFC 1982
  // leaves this undefined; our signed-difference form resolves it
  // consistently — (s32)(a - b) is INT32_MIN either way, so s + 2^31
  // compares before() s and never after() it. What matters is that the
  // answer is deterministic and both directions agree.
  const Seq32 s = S(1000);
  const Seq32 opposite = advance(s, 0x80000000u);
  EXPECT_TRUE(before(opposite, s));
  EXPECT_FALSE(after(opposite, s));
  EXPECT_TRUE(before(s, opposite));
  EXPECT_FALSE(after(s, opposite));
  // One byte short of half-space is unambiguous in both directions.
  EXPECT_TRUE(before(s, advance(s, 0x7FFFFFFFu)));
  EXPECT_TRUE(after(advance(s, 0x7FFFFFFFu), s));
}

TEST(Seq32, DistanceAndAdvanceAcrossWrap) {
  EXPECT_EQ(distance(S(0xFFFFFF00u), S(0x100)), 0x200u);
  EXPECT_EQ(distance(S(10), S(10)), 0u);
  EXPECT_EQ(advance(S(0xFFFFFFFFu), 1), S(0));
  EXPECT_EQ(advance(S(0xFFFFFF00u), 0x200), S(0x100));
  // 64-bit stream offsets fold in mod 2^32.
  EXPECT_EQ(advance(S(0), std::uint64_t{1} << 32 | 42), S(42));
  // Operator forms agree with the named helpers.
  EXPECT_EQ(S(0xFFFFFF00u) + 0x200u, S(0x100));
  EXPECT_EQ(S(0x100) - S(0xFFFFFF00u), 0x200);
}

TEST(Seq32, MinMaxAndComparatorAcrossWrap) {
  EXPECT_EQ(seq_max(S(0xFFFFFFF0u), S(0x10)), S(0x10));
  EXPECT_EQ(seq_min(S(0xFFFFFFF0u), S(0x10)), S(0xFFFFFFF0u));
  // A std::set ordered by SeqLess iterates in stream order even when the
  // working set straddles the wrap.
  std::set<Seq32, SeqLess> window{S(0x10), S(0xFFFFFFF0u), S(0x0), S(0x20)};
  std::vector<Seq32> order(window.begin(), window.end());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], S(0xFFFFFFF0u));
  EXPECT_EQ(order[1], S(0x0));
  EXPECT_EQ(order[2], S(0x10));
  EXPECT_EQ(order[3], S(0x20));
}

// -- wraparound property test ----------------------------------------------

struct RunResult {
  analysis::FlowAnalysis flow;
  bool completed = false;
};

RunResult run_lossy_transfer(Seq32 client_isn, Seq32 server_isn) {
  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::millis(40);
  down_cfg.random_loss = 0.03;
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = Duration::millis(40);
  up_cfg.random_loss = 0.01;
  sim::Link down(sim, down_cfg, Rng(11));
  sim::Link up(sim, up_cfg, Rng(12));

  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {ipv4_from_string("10.0.0.1"),
                          ipv4_from_string("192.168.1.1"), 40001, 80};
  tcp::RequestSpec req;
  req.response_bytes = 200'000;  // ~140 segments: crosses the wrap when
                                 // server_isn sits < 2^32 - 200'000 away
  cfg.requests.push_back(req);
  cfg.client_isn = client_isn;
  cfg.server_isn = server_isn;

  PacketTrace trace;
  tcp::Connection conn(sim, down, up, std::move(cfg), &trace);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(300.0));

  analysis::Analyzer analyzer;
  auto result = analyzer.analyze(trace);
  RunResult out;
  out.completed = conn.done() && conn.metrics().completed;
  if (result.flows.size() == 1) out.flow = std::move(result.flows[0]);
  return out;
}

TEST(Seq32Property, WrapMidTransferClassifiesIdentically) {
  // Control: small historical ISNs; the whole transfer stays far from the
  // wrap. Probe: ISNs just below 2^32, so snd_una/snd_nxt, every SACK edge
  // and every retransmission decision crosses 0 mid-flow. Identical links,
  // identical seeds — the packet schedule is byte-for-byte the same modulo
  // the sequence offset, so every classification output must match exactly.
  const RunResult lo = run_lossy_transfer(S(1000), S(5000));
  const RunResult hi = run_lossy_transfer(S(0xFFFFFFB0u), S(0xFFFFFF00u));

  ASSERT_TRUE(lo.completed);
  ASSERT_TRUE(hi.completed);
  // The probe really wrapped: isn + bytes overflows 2^32.
  EXPECT_LT(advance(S(0xFFFFFF00u), 200'000).raw(), 0xFFFFFF00u);

  const analysis::FlowAnalysis& a = lo.flow;
  const analysis::FlowAnalysis& b = hi.flow;
  EXPECT_GE(a.unique_bytes, 200'000u);  // payload (+1 for the FIN)
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(a.data_segments, b.data_segments);
  EXPECT_EQ(a.retrans_segments, b.retrans_segments);
  EXPECT_EQ(a.timeout_retrans, b.timeout_retrans);
  EXPECT_EQ(a.fast_retrans, b.fast_retrans);
  EXPECT_EQ(a.transmission_time, b.transmission_time);
  EXPECT_EQ(a.stalled_time, b.stalled_time);
  EXPECT_EQ(a.rtt_samples_us, b.rtt_samples_us);
  EXPECT_EQ(a.rto_at_timeout_us, b.rto_at_timeout_us);
  EXPECT_EQ(a.inflight_on_ack, b.inflight_on_ack);
  EXPECT_EQ(a.init_rwnd_bytes, b.init_rwnd_bytes);
  EXPECT_EQ(a.had_zero_rwnd, b.had_zero_rwnd);

  // Loss at 3% over ~140 segments: the run is expected to produce stalls,
  // otherwise this property test exercises nothing.
  EXPECT_GT(a.retrans_segments, 0u);
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    EXPECT_EQ(a.stalls[i].start, b.stalls[i].start) << "stall " << i;
    EXPECT_EQ(a.stalls[i].end, b.stalls[i].end) << "stall " << i;
    EXPECT_EQ(a.stalls[i].duration, b.stalls[i].duration) << "stall " << i;
    EXPECT_EQ(a.stalls[i].cause, b.stalls[i].cause) << "stall " << i;
    EXPECT_EQ(a.stalls[i].retrans_cause, b.stalls[i].retrans_cause)
        << "stall " << i;
    EXPECT_EQ(a.stalls[i].f_double, b.stalls[i].f_double) << "stall " << i;
    EXPECT_EQ(a.stalls[i].state_at_stall, b.stalls[i].state_at_stall)
        << "stall " << i;
    EXPECT_EQ(a.stalls[i].in_flight, b.stalls[i].in_flight) << "stall " << i;
    EXPECT_EQ(a.stalls[i].cur_pkt_index, b.stalls[i].cur_pkt_index)
        << "stall " << i;
  }
}

}  // namespace
}  // namespace tapo::net
