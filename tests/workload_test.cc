// Tests for workload profiles and the experiment harness.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/experiment.h"
#include "workload/profiles.h"

namespace tapo::workload {
namespace {

TEST(Profiles, ThreeServicesDistinct) {
  const auto cloud = cloud_storage_profile();
  const auto soft = software_download_profile();
  const auto web = web_search_profile();
  EXPECT_EQ(cloud.service, Service::kCloudStorage);
  EXPECT_EQ(soft.service, Service::kSoftwareDownload);
  EXPECT_EQ(web.service, Service::kWebSearch);
  // Table 1 orderings: cloud >> soft >> web in flow size.
  EXPECT_GT(cloud.resp_lognorm_mu, soft.resp_lognorm_mu);
  EXPECT_GT(soft.resp_lognorm_mu, web.resp_lognorm_mu);
  // Web search has the lowest RTT.
  EXPECT_LT(web.path.rtt_lognorm_mu, cloud.path.rtt_lognorm_mu);
  // Cloud storage uses shared connections (multiple requests).
  EXPECT_GT(cloud.max_requests, 1);
  EXPECT_EQ(soft.max_requests, 1);
  // S-RTO T1 per the paper: 5 for web search, 10 for cloud storage.
  EXPECT_EQ(web.sender.srto.t1, 5u);
  EXPECT_EQ(cloud.sender.srto.t1, 10u);
}

TEST(Profiles, RwndMixWeightsPositive) {
  for (const auto& p : {cloud_storage_profile(), software_download_profile(),
                        web_search_profile()}) {
    double total = 0;
    for (const auto& c : p.rwnd_mix) {
      EXPECT_GT(c.weight, 0.0);
      EXPECT_GE(c.init_rwnd_bytes, 2 * 1448u);
      total += c.weight;
    }
    EXPECT_NEAR(total, 1.0, 0.01);
  }
}

TEST(DrawScenario, FieldsWithinBounds) {
  const auto p = software_download_profile();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto sc = draw_scenario(p, rng, static_cast<std::uint64_t>(i));
    ASSERT_EQ(sc.connection.requests.size(), 1u);
    const auto& req = sc.connection.requests[0];
    EXPECT_GE(req.response_bytes, p.resp_min_bytes);
    EXPECT_LE(req.response_bytes, p.resp_max_bytes);
    EXPECT_GE(sc.down_link.prop_delay.ms(), p.path.rtt_min_ms / 2 - 1e-9);
    EXPECT_LE(sc.down_link.prop_delay.ms(), p.path.rtt_max_ms / 2 + 1e-9);
    EXPECT_LE(sc.down_link.random_loss, p.path.loss_cap);
    EXPECT_GE(sc.down_link.random_loss, 0.0);
    EXPECT_EQ(sc.connection.client_to_server.dst_port, 80);
  }
}

TEST(DrawScenario, UniqueFlowKeys) {
  const auto p = web_search_profile();
  Rng rng(5);
  std::set<std::pair<std::uint32_t, std::uint16_t>> keys;
  for (int i = 0; i < 100; ++i) {
    const auto sc = draw_scenario(p, rng, static_cast<std::uint64_t>(i));
    keys.insert({sc.connection.client_to_server.src_ip,
                 sc.connection.client_to_server.src_port});
  }
  EXPECT_EQ(keys.size(), 100u);
}

TEST(DrawScenario, ResponseSizeAverageMatchesProfile) {
  const auto p = web_search_profile();
  Rng rng(11);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto sc = draw_scenario(p, rng, static_cast<std::uint64_t>(i));
    sum += static_cast<double>(sc.connection.requests[0].response_bytes);
  }
  // Clamping shifts the lognormal mean; just check the right ballpark
  // (Table 1: 14 KB average for web search).
  EXPECT_GT(sum / n, 6e3);
  EXPECT_LT(sum / n, 30e3);
}

TEST(Experiment, RunsAndAnalyzes) {
  ExperimentConfig cfg;
  cfg.profile = web_search_profile();
  cfg.flows = 20;
  cfg.seed = 3;
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.outcomes.size(), 20u);
  EXPECT_EQ(res.analyses.size(), 20u);
  EXPECT_GT(res.total_packets, 100u);
  int completed = 0;
  for (const auto& o : res.outcomes) completed += o.completed;
  EXPECT_GE(completed, 18);
  for (const auto& fa : res.analyses) {
    EXPECT_GT(fa.data_segments, 0u);
    EXPECT_LE(fa.stalled_time, fa.transmission_time);
  }
}

TEST(Experiment, DeterministicGivenSeed) {
  ExperimentConfig cfg;
  cfg.profile = web_search_profile();
  cfg.flows = 10;
  cfg.seed = 9;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  ASSERT_EQ(a.total_packets, b.total_packets);
  ASSERT_EQ(a.analyses.size(), b.analyses.size());
  for (std::size_t i = 0; i < a.analyses.size(); ++i) {
    EXPECT_EQ(a.analyses[i].stalls.size(), b.analyses[i].stalls.size());
    EXPECT_EQ(a.analyses[i].unique_bytes, b.analyses[i].unique_bytes);
  }
}

TEST(Experiment, RecoveryOverrideReplaysSameWorkload) {
  ExperimentConfig native;
  native.profile = web_search_profile();
  native.flows = 10;
  native.seed = 17;
  ExperimentConfig srto = native;
  srto.recovery = tcp::RecoveryMechanism::kSrto;
  const auto a = run_experiment(native);
  const auto b = run_experiment(srto);
  // The workload (response sizes) is identical; only recovery differs.
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].response_bytes, b.outcomes[i].response_bytes);
    EXPECT_EQ(a.outcomes[i].init_rwnd_bytes, b.outcomes[i].init_rwnd_bytes);
  }
}

TEST(Experiment, RetransRatioComputed) {
  ExperimentConfig cfg;
  cfg.profile = software_download_profile();
  cfg.flows = 20;
  cfg.seed = 5;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.data_segments_sent, 0u);
  EXPECT_GE(res.retrans_ratio(), 0.0);
  EXPECT_LT(res.retrans_ratio(), 0.5);
}

TEST(Experiment, ServiceName) {
  EXPECT_STREQ(to_string(Service::kCloudStorage), "cloud storage");
  EXPECT_STREQ(to_string(Service::kWebSearch), "web search");
}

}  // namespace
}  // namespace tapo::workload
