// Tests for util: time types, deterministic RNG, strings, env parsing,
// and the worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "util/env.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/time.h"
#include "util/worker_pool.h"

namespace tapo {
namespace {

TEST(Duration, Conversions) {
  EXPECT_EQ(Duration::millis(1).us(), 1000);
  EXPECT_EQ(Duration::seconds(1.5).us(), 1'500'000);
  EXPECT_DOUBLE_EQ(Duration::micros(2500).ms(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::millis(500).sec(), 0.5);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(3);
  EXPECT_EQ((a + b).us(), 13'000);
  EXPECT_EQ((a - b).us(), 7'000);
  EXPECT_EQ((a * 3).us(), 30'000);
  EXPECT_EQ((a / 2).us(), 5'000);
  EXPECT_DOUBLE_EQ(a / b, 10.0 / 3.0);
  EXPECT_EQ((a * 2.5).us(), 25'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_GT(Duration::max(), Duration::seconds(1e6));
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t = TimePoint::from_us(1'000);
  EXPECT_EQ((t + Duration::micros(500)).us(), 1'500);
  EXPECT_EQ((t - Duration::micros(500)).us(), 500);
  EXPECT_EQ((t + Duration::millis(1)) - t, Duration::millis(1));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, BoundedParetoInRange) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.bounded_pareto(1.2, 1000.0, 1e7);
    EXPECT_GE(v, 1000.0 * 0.999);
    EXPECT_LE(v, 1e7 * 1.001);
  }
}

TEST(Rng, ChanceProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitIndependence) {
  Rng a(21);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Strings, Format) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(1.7e6), "1.7MB");
  EXPECT_EQ(human_bytes(129e3), "129KB");
  EXPECT_EQ(human_bytes(14e3), "14KB");
  EXPECT_EQ(human_bytes(500), "500B");
  EXPECT_EQ(human_bytes(2.5e9), "2.5GB");
}

TEST(Strings, HumanUs) {
  EXPECT_EQ(human_us(1.2e6), "1.2s");
  EXPECT_EQ(human_us(143e3), "143ms");
  EXPECT_EQ(human_us(42), "42us");
}

TEST(Strings, Pct) { EXPECT_EQ(pct(0.454), "45.4%"); }

TEST(Strings, Split) {
  const auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(split("xyz", '.').size(), 1u);
  EXPECT_EQ(split("", '.').size(), 1u);
}

TEST(Rng, SplitSeedMatchesSplit) {
  Rng a(42), b(42);
  const auto seed = a.split_seed();
  Rng from_seed(seed);
  Rng from_split = b.split();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(from_seed.next_u64(), from_split.next_u64());
  }
}

TEST(Env, ParsePositiveSizeAcceptsPlainDecimals) {
  EXPECT_EQ(util::parse_positive_size("400"), 400u);
  EXPECT_EQ(util::parse_positive_size("1"), 1u);
  EXPECT_EQ(util::parse_positive_size("6400000"), 6'400'000u);
}

TEST(Env, ParsePositiveSizeRejectsMalformedInput) {
  EXPECT_FALSE(util::parse_positive_size(""));
  EXPECT_FALSE(util::parse_positive_size("0"));
  EXPECT_FALSE(util::parse_positive_size("-3"));
  EXPECT_FALSE(util::parse_positive_size("+3"));
  EXPECT_FALSE(util::parse_positive_size("12x"));
  EXPECT_FALSE(util::parse_positive_size("x12"));
  EXPECT_FALSE(util::parse_positive_size(" 4"));
  EXPECT_FALSE(util::parse_positive_size("4 "));
  EXPECT_FALSE(util::parse_positive_size("1e6"));
  EXPECT_FALSE(util::parse_positive_size("0x10"));
  // Overflows std::size_t.
  EXPECT_FALSE(util::parse_positive_size("99999999999999999999999999"));
}

TEST(Env, EnvPositiveSizeFallsBackOnBadValues) {
  ::setenv("TAPO_TEST_ENV_SIZE", "123", 1);
  EXPECT_EQ(util::env_positive_size("TAPO_TEST_ENV_SIZE", 7), 123u);
  ::setenv("TAPO_TEST_ENV_SIZE", "bogus", 1);
  EXPECT_EQ(util::env_positive_size("TAPO_TEST_ENV_SIZE", 7), 7u);
  ::setenv("TAPO_TEST_ENV_SIZE", "0", 1);
  EXPECT_EQ(util::env_positive_size("TAPO_TEST_ENV_SIZE", 7), 7u);
  ::unsetenv("TAPO_TEST_ENV_SIZE");
  EXPECT_EQ(util::env_positive_size("TAPO_TEST_ENV_SIZE", 7), 7u);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  util::WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(500);
  pool.for_each(hits.size(), [&](std::size_t i, std::size_t worker) {
    EXPECT_LT(worker, 4u);
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.busy_seconds().size(), 4u);
}

TEST(WorkerPool, ReusableAcrossJobs) {
  util::WorkerPool pool(2);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> sum{0};
    pool.for_each(100, [&](std::size_t i, std::size_t) {
      sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(WorkerPool, PropagatesFirstTaskException) {
  util::WorkerPool pool(3);
  EXPECT_THROW(pool.for_each(50,
                             [&](std::size_t i, std::size_t) {
                               if (i == 10) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  // Pool survives the failed job.
  std::atomic<int> count{0};
  pool.for_each(10, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(WorkerPool, ZeroThreadsClampsToOne) {
  util::WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_GE(util::WorkerPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace tapo
