// Tests for the streaming (live) analyzer: equivalence with offline
// analysis, idle/FIN finalization, LRU eviction, and truncation bounds.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "tapo/live.h"
#include "workload/experiment.h"

namespace tapo::analysis {
namespace {

/// Builds an interleaved multi-flow trace from simulated service flows,
/// staggering flow start times by `stagger` (each flow's private simulator
/// starts at t = 0).
net::PacketTrace sample_trace(std::size_t flows, std::uint64_t seed = 21,
                              Duration stagger = Duration::zero()) {
  net::PacketTrace all;
  auto profile = workload::web_search_profile();
  Rng master(seed);
  for (std::size_t i = 0; i < flows; ++i) {
    Rng flow_rng = master.split();
    const auto sc = workload::draw_scenario(profile, flow_rng, i + 1);
    const auto outcome =
        workload::run_flow(sc, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    for (auto pkt : outcome.trace->packets()) {
      pkt.timestamp =
          pkt.timestamp + stagger * static_cast<std::int64_t>(i);
      all.add(std::move(pkt));
    }
  }
  all.sort_by_time();
  return all;
}

TEST(Live, MatchesOfflineAnalysis) {
  const auto trace = sample_trace(12);
  // Offline reference.
  Analyzer offline;
  const auto ref = offline.analyze(trace);
  std::map<std::string, std::size_t> ref_stalls;
  for (const auto& fa : ref.flows) {
    ref_stalls[fa.key.to_string()] = fa.stalls.size();
  }

  // Live run over the same packets.
  std::map<std::string, std::size_t> live_stalls;
  LiveAnalyzer live({}, [&](const FlowAnalysis& fa) {
    live_stalls[fa.key.to_string()] = fa.stalls.size();
  });
  for (const auto& pkt : trace.packets()) live.add_packet(pkt);
  live.flush();

  EXPECT_EQ(live.stats().packets, trace.size());
  EXPECT_EQ(live_stalls, ref_stalls);
  EXPECT_EQ(live.stats().flows_finalized, ref.flows.size());
}

TEST(Live, FinLingerFinalizesPromptly) {
  const auto trace = sample_trace(3, 21, Duration::seconds(30.0));
  std::size_t done = 0;
  LiveConfig cfg;
  cfg.fin_linger = Duration::seconds(1.0);
  LiveAnalyzer live(cfg, [&](const FlowAnalysis&) { ++done; });
  for (const auto& pkt : trace.packets()) live.add_packet(pkt);
  // The trace interleaves flows spanning seconds; earlier FIN'd flows are
  // finalized before the feed ends.
  EXPECT_GE(done, 1u);
  live.flush();
  EXPECT_EQ(done, 3u);
}

TEST(Live, IdleTimeoutWithoutFin) {
  LiveConfig cfg;
  cfg.idle_timeout = Duration::seconds(5.0);
  std::size_t done = 0;
  LiveAnalyzer live(cfg, [&](const FlowAnalysis&) { ++done; });

  auto pkt_at = [](std::int64_t us, std::uint16_t sport) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(us);
    p.key = {1, 2, sport, 80};
    p.payload_len = 100;
    p.tcp.flags.ack = true;
    return p;
  };
  live.add_packet(pkt_at(0, 1000));
  live.add_packet(pkt_at(100, 1000));
  // A second flow starts much later: the first idles out.
  live.add_packet(pkt_at(10'000'000, 2000));
  EXPECT_EQ(done, 1u);
  EXPECT_EQ(live.stats().active_flows, 1u);
}

TEST(Live, LruEvictionBoundsTable) {
  LiveConfig cfg;
  cfg.max_flows = 4;
  std::size_t done = 0;
  LiveAnalyzer live(cfg, [&](const FlowAnalysis&) { ++done; });
  for (std::uint16_t port = 1; port <= 10; ++port) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(port * 1000);
    p.key = {1, 2, port, 80};
    p.payload_len = 10;
    p.tcp.flags.ack = true;
    live.add_packet(p);
  }
  EXPECT_LE(live.stats().active_flows, 4u);
  EXPECT_EQ(live.stats().flows_evicted, 6u);
  EXPECT_EQ(done, 6u);
  live.flush();
  EXPECT_EQ(done, 10u);
}

TEST(Live, ElephantFlowTruncated) {
  LiveConfig cfg;
  cfg.max_packets_per_flow = 50;
  std::size_t done = 0;
  LiveAnalyzer live(cfg, [&](const FlowAnalysis&) { ++done; });
  for (int i = 0; i < 120; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i * 100);
    p.key = {1, 2, 1000, 80};
    p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(1 + i * 100)};
    p.payload_len = 100;
    p.tcp.flags.ack = true;
    live.add_packet(p);
  }
  EXPECT_EQ(live.stats().truncated_flows, 2u);  // at 50 and 100 packets
  EXPECT_EQ(done, 2u);
  live.flush();
  EXPECT_EQ(done, 3u);
}

TEST(Live, LruEvictionOrderIsLeastRecentlyActive) {
  LiveConfig cfg;
  cfg.max_flows = 2;
  std::vector<std::uint16_t> evicted_ports;
  LiveAnalyzer live(cfg, [&](const FlowAnalysis& fa) {
    evicted_ports.push_back(fa.key.src_port == 80 ? fa.key.dst_port
                                                  : fa.key.src_port);
  });
  auto pkt = [](std::int64_t us, std::uint16_t port) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(us);
    p.key = {1, 2, port, 80};
    p.payload_len = 10;
    p.tcp.flags.ack = true;
    return p;
  };
  live.add_packet(pkt(0, 1));     // flow A
  live.add_packet(pkt(1000, 2));  // flow B
  live.add_packet(pkt(2000, 1));  // touch A: B is now least recently active
  live.add_packet(pkt(3000, 3));  // flow C -> evicts B, not A
  live.add_packet(pkt(4000, 4));  // flow D -> evicts A
  EXPECT_EQ(evicted_ports, (std::vector<std::uint16_t>{2, 1}));
  EXPECT_EQ(live.stats().flows_evicted, 2u);
  EXPECT_EQ(live.stats().active_flows, 2u);
}

TEST(Live, EvictedFlowStillProducesAnalysis) {
  LiveConfig cfg;
  cfg.max_flows = 1;
  std::vector<FlowAnalysis> analyses;
  LiveAnalyzer live(cfg,
                    [&](const FlowAnalysis& fa) { analyses.push_back(fa); });
  // Give the evicted flow real content: three data packets from the server
  // endpoint so its analysis has observable segments.
  for (int i = 0; i < 3; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i * 1000);
    p.key = {2, 1, 80, 1000};  // server -> client
    p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(1 + i * 100)};
    p.payload_len = 100;
    p.tcp.flags.ack = true;
    live.add_packet(p);
  }
  net::CapturedPacket other;
  other.timestamp = TimePoint::from_us(10'000);
  other.key = {1, 2, 2000, 80};
  other.payload_len = 10;
  other.tcp.flags.ack = true;
  live.add_packet(other);  // table full -> first flow evicted

  EXPECT_EQ(live.stats().flows_evicted, 1u);
  ASSERT_EQ(analyses.size(), 1u);  // eviction went through full analysis
  const FlowAnalysis& fa = analyses.front();
  EXPECT_TRUE(fa.key.src_port == 80 || fa.key.dst_port == 80);
  EXPECT_EQ(fa.data_segments, 3u);
  EXPECT_EQ(fa.unique_bytes, 300u);
}

TEST(Live, TruncationAccounting) {
  LiveConfig cfg;
  cfg.max_packets_per_flow = 10;
  std::vector<std::uint64_t> segment_counts;
  LiveAnalyzer live(cfg, [&](const FlowAnalysis& fa) {
    segment_counts.push_back(fa.data_segments);
  });
  for (int i = 0; i < 25; ++i) {
    net::CapturedPacket p;
    p.timestamp = TimePoint::from_us(i * 100);
    p.key = {2, 1, 80, 1000};
    p.tcp.seq = net::Seq32{static_cast<std::uint32_t>(1 + i * 100)};
    p.payload_len = 100;
    p.tcp.flags.ack = true;
    live.add_packet(p);
  }
  // Cap hit at packets 10 and 20; 5 remain buffered until flush.
  EXPECT_EQ(live.stats().truncated_flows, 2u);
  EXPECT_EQ(live.stats().flows_finalized, 2u);
  live.flush();
  EXPECT_EQ(live.stats().truncated_flows, 2u);  // flush is not a truncation
  EXPECT_EQ(live.stats().flows_finalized, 3u);
  EXPECT_EQ(segment_counts, (std::vector<std::uint64_t>{10, 10, 5}));
  EXPECT_EQ(live.stats().packets, 25u);
}

TEST(Live, FlushOnEmptyIsSafe) {
  LiveAnalyzer live({}, nullptr);
  EXPECT_NO_THROW(live.flush());
  EXPECT_EQ(live.stats().flows_finalized, 0u);
}

}  // namespace
}  // namespace tapo::analysis
