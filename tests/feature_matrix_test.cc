// Property sweep across the sender feature matrix: every combination of
// optional mechanisms must preserve reliability and analyzer invariants
// under loss.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tapo/report.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace tapo {
namespace {

struct Features {
  bool pacing;
  bool fack;
  bool undo;
  bool early_retransmit;
  tcp::RecoveryMechanism recovery;
  bool adaptive_srto;
};

using Param = std::tuple<int /*feature preset*/, double /*loss*/>;

Features preset(int i) {
  switch (i) {
    case 0: return {false, false, false, false, tcp::RecoveryMechanism::kNative, false};
    case 1: return {true, false, false, false, tcp::RecoveryMechanism::kNative, false};
    case 2: return {false, true, false, false, tcp::RecoveryMechanism::kNative, false};
    case 3: return {false, false, true, false, tcp::RecoveryMechanism::kNative, false};
    case 4: return {false, false, false, true, tcp::RecoveryMechanism::kNative, false};
    case 5: return {false, false, false, false, tcp::RecoveryMechanism::kTlp, false};
    case 6: return {false, false, false, false, tcp::RecoveryMechanism::kSrto, false};
    case 7: return {false, false, false, false, tcp::RecoveryMechanism::kSrto, true};
    case 8: return {true, true, true, true, tcp::RecoveryMechanism::kSrto, true};
    default: return preset(0);
  }
}

class FeatureMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(FeatureMatrix, ReliableAndAnalyzable) {
  const auto [idx, loss] = GetParam();
  const Features f = preset(idx);

  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::millis(60);
  down_cfg.random_loss = loss;
  down_cfg.jitter_mean = Duration::millis(2);
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = Duration::millis(60);
  up_cfg.random_loss = loss / 3;
  sim::Link down(sim, down_cfg, Rng(1000 + static_cast<std::uint64_t>(idx)));
  sim::Link up(sim, up_cfg, Rng(2000 + static_cast<std::uint64_t>(idx)));

  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  cfg.sender.pacing = f.pacing;
  cfg.sender.fack = f.fack;
  cfg.sender.spurious_rto_undo = f.undo;
  cfg.sender.early_retransmit = f.early_retransmit;
  cfg.sender.recovery = f.recovery;
  cfg.sender.srto.adaptive = f.adaptive_srto;
  tcp::RequestSpec req;
  req.response_bytes = 120'000;
  cfg.requests.push_back(req);

  net::PacketTrace trace;
  tcp::Connection conn(sim, down, up, cfg, &trace);
  conn.start();
  sim.run_until(sim.now() + Duration::seconds(900.0));

  // Reliability: the transfer always completes.
  ASSERT_TRUE(conn.done()) << "preset " << idx << " loss " << loss;
  ASSERT_TRUE(conn.metrics().completed);

  // Analyzer invariants hold on the resulting trace.
  analysis::Analyzer analyzer;
  const auto result = analyzer.analyze(trace);
  ASSERT_EQ(result.flows.size(), 1u);
  const auto& fa = result.flows[0];
  EXPECT_EQ(fa.unique_bytes, 120'001u);  // data + FIN
  EXPECT_LE(fa.stalled_time, fa.transmission_time);
  EXPECT_EQ(fa.retrans_segments, fa.timeout_retrans + fa.fast_retrans);
  EXPECT_EQ(fa.retrans_segments, conn.sender().stats().retransmissions);
  for (const auto& s : fa.stalls) {
    EXPECT_GT(s.duration, Duration::zero());
    if (s.cause == analysis::StallCause::kRetransmission) {
      EXPECT_NE(s.retrans_cause, analysis::RetransCause::kNone);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFeaturesAllLosses, FeatureMatrix,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(0.0, 0.03, 0.10, 0.20)));

}  // namespace
}  // namespace tapo
