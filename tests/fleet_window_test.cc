// WindowAggregator / FleetSnapshot: the merge-determinism contract
// (N shard snapshots collapse to one fleet view bit-identically, for any
// shard grouping and merge order), window bucketing including negative
// logical timestamps, the EWMA regression detector, and the report /
// Prometheus render paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/window.h"
#include "telemetry/registry.h"
#include "util/rng.h"

namespace tapo::fleet {
namespace {

// A deterministic synthetic fleet: records across several shards,
// services, windows and stall causes.
std::vector<FlowRecord> synthetic_fleet(std::uint64_t seed,
                                        std::size_t count) {
  Rng rng(seed);
  std::vector<FlowRecord> out;
  for (std::size_t i = 0; i < count; ++i) {
    FlowRecord r;
    r.shard_id = static_cast<std::uint32_t>(rng.uniform_int(0, 7));
    r.service = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
    r.flow_index = i;
    r.start_us = rng.uniform_int(-3, 20) * 30'000'000;  // spans windows < 0
    r.transmission_us = rng.uniform_int(50'000, 4'000'000);
    r.completed = rng.uniform_int(0, 9) != 0;
    r.response_bytes = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    r.unique_bytes = r.response_bytes;
    r.packets = r.response_bytes / 1400 + 1;
    r.data_segments = r.packets;
    const auto stalls = rng.uniform_int(0, 3);
    for (std::int64_t s = 0; s < stalls; ++s) {
      StallEntry e;
      e.cause = static_cast<std::uint8_t>(rng.uniform_int(0, 6));
      e.retrans_cause = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
      e.duration_us = rng.uniform_int(201'000, 2'000'000);
      r.stalls.push_back(e);
      r.stalled_us += e.duration_us;
    }
    r.retrans_segments = static_cast<std::uint64_t>(rng.uniform_int(0, 5));
    r.avg_rtt_us = rng.uniform(10'000.0, 80'000.0);
    r.avg_rto_us = r.avg_rtt_us * 4.0;
    out.push_back(std::move(r));
  }
  return out;
}

FleetSnapshot aggregate_all(const std::vector<FlowRecord>& records,
                            const FleetConfig& cfg) {
  WindowAggregator agg(cfg);
  agg.ingest(records);
  return agg.snapshot();
}

std::string prometheus_dump() {
  std::ostringstream os;
  telemetry::Registry::instance().export_prometheus(os);
  return os.str();
}

TEST(FleetWindow, BucketsOnFloorDivisionIncludingNegativeTime) {
  WindowAggregator agg(FleetConfig{}.with_window(Duration::seconds(60)));
  const auto at = [](std::int64_t us) {
    FlowRecord r;
    r.transmission_us = 1'000;
    r.start_us = us;
    return r;
  };
  agg.ingest(at(0));
  agg.ingest(at(59'999'999));
  agg.ingest(at(60'000'000));
  agg.ingest(at(-1));
  agg.ingest(at(-60'000'001));
  const FleetSnapshot& snap = agg.snapshot();
  ASSERT_EQ(snap.windows.size(), 4u);
  EXPECT_EQ(snap.windows.at(0).at(0).flows, 2u);
  EXPECT_EQ(snap.windows.at(1).at(0).flows, 1u);
  EXPECT_EQ(snap.windows.at(-1).at(0).flows, 1u);
  EXPECT_EQ(snap.windows.at(-2).at(0).flows, 1u);
}

TEST(FleetWindow, ConfigValidation) {
  EXPECT_THROW(FleetConfig{}.with_window(Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW(FleetConfig{}.with_sketch_alpha(1.5), std::invalid_argument);
  EXPECT_THROW(WindowAggregator(FleetConfig{.window = Duration::micros(-5)}),
               std::invalid_argument);
}

TEST(FleetWindow, MergeRejectsMismatchedConfigs) {
  const auto records = synthetic_fleet(1, 10);
  auto a = aggregate_all(records, FleetConfig{});
  const auto b = aggregate_all(
      records, FleetConfig{}.with_window(Duration::seconds(30)));
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  const auto c = aggregate_all(records, FleetConfig{}.with_sketch_alpha(0.01));
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(FleetWindow, MergeIsInvariantToShardGroupingAndOrder) {
  const FleetConfig cfg = FleetConfig{}.with_window(Duration::seconds(60));
  const auto records = synthetic_fleet(42, 600);
  const FleetSnapshot whole = aggregate_all(records, cfg);

  // Split by shard id into 8 per-shard snapshots.
  std::vector<FleetSnapshot> shards;
  for (std::uint32_t s = 0; s < 8; ++s) {
    WindowAggregator agg(cfg);
    for (const FlowRecord& r : records) {
      if (r.shard_id == s) agg.ingest(r);
    }
    shards.push_back(agg.snapshot());
  }

  // Grouping A: fold all 8 in ascending order.
  FleetSnapshot ascending = shards[0];
  for (std::size_t i = 1; i < shards.size(); ++i) ascending.merge(shards[i]);

  // Grouping B: two intermediate groups of 4, folded in reverse.
  FleetSnapshot left = shards[3];
  left.merge(shards[1]);
  left.merge(shards[2]);
  left.merge(shards[0]);
  FleetSnapshot right = shards[7];
  right.merge(shards[5]);
  right.merge(shards[6]);
  right.merge(shards[4]);
  FleetSnapshot grouped = right;
  grouped.merge(left);

  // Grouping C: shuffled pairwise tree.
  Rng rng(99);
  std::vector<FleetSnapshot> pool = shards;
  while (pool.size() > 1) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    FleetSnapshot taken = pool[i];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1));
    pool[j].merge(taken);
  }

  // Bit-identical snapshots...
  EXPECT_EQ(ascending, whole);
  EXPECT_EQ(grouped, whole);
  EXPECT_EQ(pool[0], whole);
  EXPECT_EQ(whole.shard_ids.size(), 8u);

  // ...and byte-identical derived artifacts.
  const std::string report = render_fleet_report(whole);
  EXPECT_EQ(render_fleet_report(ascending), report);
  EXPECT_EQ(render_fleet_report(grouped), report);
  EXPECT_EQ(render_fleet_report(pool[0]), report);

  telemetry::Registry::instance().reset();
  publish_fleet_metrics(whole);
  const std::string prom = prometheus_dump();
  telemetry::Registry::instance().reset();
  publish_fleet_metrics(grouped);
  EXPECT_EQ(prometheus_dump(), prom);
  telemetry::Registry::instance().reset();
  publish_fleet_metrics(pool[0]);
  EXPECT_EQ(prometheus_dump(), prom);
}

TEST(FleetWindow, SnapshotTotalsMatchHandComputedSums) {
  FleetConfig cfg = FleetConfig{}.with_window(Duration::seconds(60));
  const auto records = synthetic_fleet(7, 200);
  const FleetSnapshot snap = aggregate_all(records, cfg);

  std::uint64_t flows = 0;
  std::int64_t stalled = 0;
  for (const auto& [w, services] : snap.windows) {
    (void)w;
    for (const auto& [svc, sw] : services) {
      (void)svc;
      flows += sw.flows;
      stalled += sw.stalled_us;
    }
  }
  std::int64_t expect_stalled = 0;
  for (const FlowRecord& r : records) expect_stalled += r.stalled_us;
  EXPECT_EQ(flows, records.size());
  EXPECT_EQ(snap.records, records.size());
  EXPECT_EQ(stalled, expect_stalled);
}

// Builds one record whose single stall gives the window an exact
// stall-time / transmission-time ratio.
FlowRecord ratio_record(std::int64_t window_idx, std::uint8_t service,
                        std::uint8_t cause, double ratio) {
  FlowRecord r;
  r.service = service;
  r.start_us = window_idx * 60'000'000;
  r.transmission_us = 1'000'000;
  r.completed = true;
  if (ratio > 0.0) {
    StallEntry e;
    e.cause = cause;
    e.duration_us = static_cast<std::int64_t>(ratio * 1e6);
    r.stalled_us = e.duration_us;
    r.stalls.push_back(e);
  }
  return r;
}

TEST(FleetRegression, FlagsSpikeAfterWarmupAndMarksDropsImproved) {
  WindowAggregator agg;
  constexpr std::uint8_t kRetrans = 5;  // StallCause::kRetransmission
  constexpr std::uint8_t kZeroRwnd = 3;
  // Service 0: stable 0.10 ratio, then a spike to 0.60 in window 8.
  for (std::int64_t w = 0; w < 8; ++w) {
    agg.ingest(ratio_record(w, 0, kRetrans, 0.10));
  }
  agg.ingest(ratio_record(8, 0, kRetrans, 0.60));
  // Service 1: stable 0.50, then a mitigation-style drop to 0.02.
  for (std::int64_t w = 0; w < 8; ++w) {
    agg.ingest(ratio_record(w, 1, kZeroRwnd, 0.50));
  }
  agg.ingest(ratio_record(8, 1, kZeroRwnd, 0.02));

  const auto regs = detect_regressions(agg.snapshot());
  ASSERT_EQ(regs.size(), 2u);
  // Output is (window, service, cause)-ordered.
  EXPECT_EQ(regs[0].window_index, 8);
  EXPECT_EQ(regs[0].service, 0);
  EXPECT_EQ(regs[0].cause, kRetrans);
  EXPECT_FALSE(regs[0].improved);
  EXPECT_NEAR(regs[0].ratio, 0.60, 1e-9);
  EXPECT_NEAR(regs[0].baseline, 0.10, 1e-9);
  EXPECT_EQ(regs[1].service, 1);
  EXPECT_EQ(regs[1].cause, kZeroRwnd);
  EXPECT_TRUE(regs[1].improved);
}

TEST(FleetRegression, WarmupSuppressesEarlyDeviations) {
  WindowAggregator agg;
  // Wild swings inside the warmup period must not be flagged.
  agg.ingest(ratio_record(0, 0, 5, 0.05));
  agg.ingest(ratio_record(1, 0, 5, 0.80));
  agg.ingest(ratio_record(2, 0, 5, 0.01));
  EXPECT_TRUE(
      detect_regressions(agg.snapshot(),
                         RegressionConfig{}.with_warmup(3))
          .empty());
  // With warmup 1 the same data does get flagged.
  EXPECT_FALSE(
      detect_regressions(agg.snapshot(),
                         RegressionConfig{}.with_warmup(1))
          .empty());
}

TEST(FleetRegression, ConfigValidation) {
  EXPECT_THROW(RegressionConfig{}.with_ewma_alpha(0.0),
               std::invalid_argument);
  EXPECT_THROW(RegressionConfig{}.with_rel_threshold(-1.0),
               std::invalid_argument);
  EXPECT_THROW(RegressionConfig{}.with_abs_floor(-0.1),
               std::invalid_argument);
  EXPECT_THROW(detect_regressions(FleetSnapshot{},
                                  RegressionConfig{.ewma_alpha = 2.0}),
               std::invalid_argument);
}

TEST(FleetReport, ContainsSectionsAndServiceNames) {
  const auto records = synthetic_fleet(11, 300);
  const auto snap =
      aggregate_all(records, FleetConfig{}.with_window(Duration::seconds(60)));
  const std::string report = render_fleet_report(snap);
  EXPECT_NE(report.find("TAPO fleet report"), std::string::npos);
  EXPECT_NE(report.find("cloud-storage"), std::string::npos);
  EXPECT_NE(report.find("software-download"), std::string::npos);
  EXPECT_NE(report.find("web-search"), std::string::npos);
  EXPECT_NE(report.find("shards 8"), std::string::npos);

  const std::string empty = render_fleet_report(FleetSnapshot{});
  EXPECT_NE(empty.find("(no records)"), std::string::npos);
}

TEST(FleetMetrics, PublishesExpectedValues) {
  WindowAggregator agg;
  agg.ingest(ratio_record(0, 2, 5, 0.25));
  agg.ingest(ratio_record(0, 2, 5, 0.25));
  agg.ingest(ratio_record(1, 2, 0, 0.0));

  auto& registry = telemetry::Registry::instance();
  registry.reset();
  publish_fleet_metrics(agg.snapshot());

  double flows = -1, stalls = -1, ratio = -1, windows = -1;
  for (const auto& m : registry.snapshot()) {
    const auto has = [&m](const char* k, const char* v) {
      for (const auto& [lk, lv] : m.labels) {
        if (lk == k && lv == v) return true;
      }
      return false;
    };
    if (m.name == "fleet_flows_total" && has("service", "web-search")) {
      flows = m.value;
    } else if (m.name == "fleet_stalls_total" &&
               has("cause", "retransmission")) {
      stalls = m.value;
    } else if (m.name == "fleet_stall_ratio" && has("service", "web-search")) {
      ratio = m.value;
    } else if (m.name == "fleet_windows") {
      windows = m.value;
    }
  }
  EXPECT_EQ(flows, 3.0);
  EXPECT_EQ(stalls, 2.0);
  // 500ms stalled over 3s transmitted.
  EXPECT_NEAR(ratio, 0.5 / 3.0, 1e-12);
  EXPECT_EQ(windows, 2.0);
}

}  // namespace
}  // namespace tapo::fleet
