// QuantileSketch correctness: the documented relative-error bound must
// hold against the exact empirical distribution on uniform, lognormal and
// (bounded) Pareto samples — the three shapes the workload profiles
// generate — and merge must be exactly associative and commutative, since
// fleet merge determinism rests on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/cdf.h"
#include "stats/sketch.h"
#include "util/rng.h"

namespace tapo::stats {
namespace {

constexpr double kQuantiles[] = {0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                                 0.95, 0.99, 0.999};

// The sketch targets the order statistic at floor(q * (n - 1)); compute
// the exact one from the sorted sample so the bound check is strict.
double exact_order_statistic(std::vector<double> sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[std::min(rank, sorted.size() - 1)];
}

void expect_within_bound(const std::vector<double>& sample, double alpha) {
  QuantileSketch sketch(alpha);
  for (double v : sample) sketch.observe(v);
  ASSERT_EQ(sketch.count(), sample.size());

  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (double q : kQuantiles) {
    const double exact = exact_order_statistic(sorted, q);
    const double est = sketch.quantile(q);
    // Allow a hair of slack for the floating-point log/pow round trip.
    EXPECT_LE(std::abs(est - exact), alpha * exact * (1.0 + 1e-9))
        << "q=" << q << " exact=" << exact << " est=" << est
        << " alpha=" << alpha;
  }
}

TEST(QuantileSketch, BoundHoldsOnUniform) {
  Rng rng(101);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.uniform(1.0, 5000.0));
  expect_within_bound(sample, 0.02);
  expect_within_bound(sample, 0.005);
}

TEST(QuantileSketch, BoundHoldsOnLognormal) {
  Rng rng(202);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.lognormal(8.0, 1.5));
  expect_within_bound(sample, 0.02);
}

TEST(QuantileSketch, BoundHoldsOnPareto) {
  Rng rng(303);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) {
    sample.push_back(rng.bounded_pareto(1.2, 100.0, 1e7));
  }
  expect_within_bound(sample, 0.02);
}

TEST(QuantileSketch, TracksInterpolatedCdfWithinCombinedSlack) {
  // Cdf::percentile interpolates between adjacent order statistics
  // (type 7), so the sketch can differ from it by the relative bound
  // plus at most one inter-order-statistic gap.
  Rng rng(404);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.lognormal(10.0, 1.0));
  QuantileSketch sketch;
  Cdf cdf;
  for (double v : sample) {
    sketch.observe(v);
    cdf.add(v);
  }
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto lo_rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    const double gap = sorted[std::min(lo_rank + 1, sorted.size() - 1)] -
                       sorted[lo_rank];
    const double exact = cdf.percentile(q);
    const double est = sketch.quantile(q);
    EXPECT_LE(std::abs(est - exact),
              QuantileSketch::kDefaultAlpha * exact + gap + 1e-9)
        << "q=" << q;
  }
}

TEST(QuantileSketch, HandlesZerosNegativesAndNan) {
  QuantileSketch sketch(0.01);
  sketch.observe(0.0);
  sketch.observe(-3.5);
  sketch.observe(std::nan(""));
  sketch.observe(10.0);
  EXPECT_EQ(sketch.count(), 4u);
  EXPECT_EQ(sketch.zero_count(), 3u);
  EXPECT_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_NEAR(sketch.quantile(1.0), 10.0, 0.01 * 10.0);
}

TEST(QuantileSketch, QuantileClampsAndEmptyReportsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  sketch.observe(42.0);
  EXPECT_EQ(sketch.quantile(-1.0), sketch.quantile(0.0));
  EXPECT_EQ(sketch.quantile(2.0), sketch.quantile(1.0));
}

TEST(QuantileSketch, InvalidAccuracyThrows) {
  EXPECT_THROW(QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(-0.1), std::invalid_argument);
}

TEST(QuantileSketch, MergeMismatchedAccuracyThrows) {
  QuantileSketch a(0.02);
  QuantileSketch b(0.01);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

QuantileSketch sketch_of(std::span<const double> values) {
  QuantileSketch s;
  for (double v : values) s.observe(v);
  return s;
}

TEST(QuantileSketch, MergeEqualsObservingTheUnion) {
  Rng rng(505);
  std::vector<double> all;
  for (int i = 0; i < 9000; ++i) all.push_back(rng.lognormal(7.0, 2.0));

  QuantileSketch whole = sketch_of(all);
  QuantileSketch merged = sketch_of({all.data(), 3000});
  merged.merge(sketch_of({all.data() + 3000, 3000}));
  merged.merge(sketch_of({all.data() + 6000, 3000}));
  EXPECT_EQ(merged, whole);  // bit-identical state, not merely close
}

TEST(QuantileSketch, MergeIsCommutative) {
  Rng rng(606);
  std::vector<double> xs, ys;
  for (int i = 0; i < 4000; ++i) xs.push_back(rng.uniform(0.5, 100.0));
  for (int i = 0; i < 4000; ++i) ys.push_back(rng.bounded_pareto(1.5, 1.0, 1e6));

  QuantileSketch ab = sketch_of(xs);
  ab.merge(sketch_of(ys));
  QuantileSketch ba = sketch_of(ys);
  ba.merge(sketch_of(xs));
  EXPECT_EQ(ab, ba);
}

TEST(QuantileSketch, MergeIsAssociative) {
  Rng rng(707);
  std::vector<std::vector<double>> parts(3);
  for (auto& part : parts) {
    for (int i = 0; i < 2500; ++i) part.push_back(rng.lognormal(5.0, 1.0));
  }
  // (a + b) + c
  QuantileSketch left = sketch_of(parts[0]);
  left.merge(sketch_of(parts[1]));
  left.merge(sketch_of(parts[2]));
  // a + (b + c)
  QuantileSketch bc = sketch_of(parts[1]);
  bc.merge(sketch_of(parts[2]));
  QuantileSketch right = sketch_of(parts[0]);
  right.merge(bc);
  EXPECT_EQ(left, right);
}

TEST(QuantileSketch, RandomPartitionMergePropertyTest) {
  // Property test: any partition of the sample into any number of shards,
  // merged in any order, reproduces the single-sketch state exactly.
  Rng rng(808);
  std::vector<double> all;
  for (int i = 0; i < 5000; ++i) all.push_back(rng.lognormal(6.0, 1.8));
  const QuantileSketch whole = sketch_of(all);

  for (int iter = 0; iter < 20; ++iter) {
    const auto shards = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<QuantileSketch> parts(shards);
    for (double v : all) {
      parts[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(shards) - 1))]
          .observe(v);
    }
    // Merge in a shuffled order.
    std::vector<std::size_t> order(shards);
    for (std::size_t i = 0; i < shards; ++i) order[i] = i;
    for (std::size_t i = shards; i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    QuantileSketch merged(QuantileSketch::kDefaultAlpha);
    for (std::size_t i : order) merged.merge(parts[i]);
    ASSERT_EQ(merged, whole) << "iter " << iter << " shards " << shards;
  }
}

}  // namespace
}  // namespace tapo::stats
