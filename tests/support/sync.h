#pragma once
// One home for test-thread synchronization: a single-use Latch (start gate
// / completion count) and a reusable Barrier (round rendezvous), built on
// the annotated util::Mutex / util::CondVar so the helpers themselves
// compile clean under -Wthread-safety. Tests that spawn threads should
// coordinate through these instead of ad-hoc sleeps or bare flags — a
// sleep-based "gate" starts threads at best approximately and turns every
// scheduler hiccup into a flake.
#include <cstddef>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tapo::test {

/// Single-use countdown. Two idioms:
///   start gate:  Latch start(1); workers start.wait(); main count_down()
///   completion:  Latch done(kN); workers done.count_down(); main wait()
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void count_down() TAPO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() TAPO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (count_ != 0) cv_.wait(mu_);
  }

 private:
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::size_t count_ TAPO_GUARDED_BY(mu_);
};

/// Reusable rendezvous: every call blocks until `parties` threads have
/// arrived, then all are released and the barrier resets for the next
/// round (generation counter, so a fast thread re-arriving cannot slip
/// through the previous round's wakeup).
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() TAPO_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == my_generation) cv_.wait(mu_);
  }

 private:
  const std::size_t parties_;
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::size_t arrived_ TAPO_GUARDED_BY(mu_) = 0;
  std::size_t generation_ TAPO_GUARDED_BY(mu_) = 0;
};

}  // namespace tapo::test
