// FlowRecord binary format: lossless round-trip, typed errors with file
// offsets, and the corruption-robustness property tests (bit flips and
// truncations must yield valid-prefix records plus a typed error — never
// a crash or UB; the full ctest suite runs under ASan/UBSan in CI, which
// is what makes these property tests a memory-safety gate).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "fleet/record.h"
#include "fleet/record_sink.h"
#include "util/rng.h"
#include "workload/profiles.h"
#include "workload/runner.h"

namespace tapo::fleet {
namespace {

FlowRecord sample_record(std::uint64_t i) {
  FlowRecord r;
  r.shard_id = static_cast<std::uint32_t>(7 + i);
  r.service = static_cast<std::uint8_t>(i % 3);
  r.flow_index = i;
  r.start_us = static_cast<std::int64_t>(i) * 500'000 - 1'000'000;  // negative too
  r.transmission_us = 1'200'000 + static_cast<std::int64_t>(i * 7919);
  r.stalled_us = static_cast<std::int64_t>(i % 5) * 210'000;
  r.completed = i % 4 != 0;
  r.response_bytes = 100'000 + i * 13;
  r.unique_bytes = 99'000 + i * 11;
  r.packets = 80 + i;
  r.data_segments = 70 + i;
  r.retrans_segments = i % 6;
  r.timeout_retrans = i % 3;
  r.fast_retrans = i % 2;
  r.spurious_retrans = i % 7 == 0 ? 1 : 0;
  r.init_rwnd_bytes = static_cast<std::uint32_t>(65535 * ((i % 4) + 1));
  r.had_zero_rwnd = i % 9 == 0;
  r.degraded = i % 11 == 0;
  r.suspect_stalls = i % 11 == 0 ? 2 : 0;
  r.avg_rtt_us = 35'000.25 + static_cast<double>(i) * 0.125;
  r.avg_rto_us = 230'017.75 - static_cast<double>(i) * 0.5;
  for (std::uint64_t s = 0; s < i % 5; ++s) {
    StallEntry e;
    e.cause = static_cast<std::uint8_t>(s % 7);
    e.retrans_cause = static_cast<std::uint8_t>((s + i) % 8);
    e.duration_us = 400'000 + static_cast<std::int64_t>(s) * 123'456;
    r.stalls.push_back(e);
  }
  return r;
}

std::vector<std::uint8_t> sample_file(std::size_t n) {
  std::vector<std::uint8_t> bytes;
  append_file_header(bytes);
  for (std::size_t i = 0; i < n; ++i) append_record(bytes, sample_record(i));
  return bytes;
}

TEST(FleetRecord, RoundTripIsLosslessForEveryField) {
  std::vector<FlowRecord> originals;
  for (std::uint64_t i = 0; i < 40; ++i) originals.push_back(sample_record(i));

  std::ostringstream os;
  RecordWriter writer(os);
  for (const FlowRecord& r : originals) writer.write(r);
  EXPECT_EQ(writer.records(), originals.size());

  const std::string blob = os.str();
  const auto result = read_records(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  ASSERT_TRUE(result.ok()) << to_string(result.error->kind);
  ASSERT_EQ(result.records.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(result.records[i], originals[i]) << "record " << i;
  }
  EXPECT_EQ(result.bytes_consumed, blob.size());
}

TEST(FleetRecord, DoubleBitPatternsSurviveRoundTrip) {
  FlowRecord r = sample_record(3);
  r.avg_rtt_us = 0.1 + 0.2;  // a value with a messy mantissa
  r.avg_rto_us = -0.0;
  std::vector<std::uint8_t> bytes;
  append_file_header(bytes);
  append_record(bytes, r);
  const auto result = read_records(bytes);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0], r);
  EXPECT_TRUE(std::signbit(result.records[0].avg_rto_us));
}

TEST(FleetRecord, EmptyDataHoldsZeroRecords) {
  const auto result = read_records({});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.records.empty());
}

TEST(FleetRecord, HeaderErrorsAreTyped) {
  auto bytes = sample_file(2);

  auto short_hdr = std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + 5);
  auto r1 = read_records(short_hdr);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error->kind, RecordErrorKind::kTruncatedHeader);

  auto bad_magic = bytes;
  bad_magic[1] ^= 0xFF;
  auto r2 = read_records(bad_magic);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error->kind, RecordErrorKind::kBadMagic);
  EXPECT_TRUE(r2.records.empty());

  auto bad_version = bytes;
  bad_version[4] = 99;
  auto r3 = read_records(bad_version);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.error->kind, RecordErrorKind::kBadVersion);
  EXPECT_EQ(r3.error->offset, 4u);
}

TEST(FleetRecord, CrcCatchesPayloadMutationWithFrameOffset) {
  std::vector<std::uint8_t> bytes;
  append_file_header(bytes);
  append_record(bytes, sample_record(0));
  const std::size_t second_frame = bytes.size();
  append_record(bytes, sample_record(1));

  auto corrupt = bytes;
  corrupt[second_frame + 3] ^= 0x40;  // inside record 1's payload
  const auto result = read_records(corrupt);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->kind, RecordErrorKind::kCrcMismatch);
  EXPECT_EQ(result.error->offset, second_frame);
  ASSERT_EQ(result.records.size(), 1u);  // the valid prefix survives
  EXPECT_EQ(result.records[0], sample_record(0));
}

TEST(FleetRecord, OversizedLengthPrefixIsRejectedWithoutAllocating) {
  std::vector<std::uint8_t> bytes;
  append_file_header(bytes);
  // Varint length of ~2^40: far beyond kMaxRecordPayload.
  for (int i = 0; i < 5; ++i) bytes.push_back(0xFF);
  bytes.push_back(0x7F);
  const auto result = read_records(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->kind, RecordErrorKind::kOversizedRecord);
  EXPECT_EQ(result.error->offset, kFileHeaderBytes);
}

TEST(FleetRecord, TruncationSweepAlwaysYieldsValidPrefix) {
  const auto bytes = sample_file(12);
  const auto full = read_records(bytes);
  ASSERT_TRUE(full.ok());

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const auto result = read_records(
        std::span<const std::uint8_t>(bytes.data(), cut));
    // Prefix property: every returned record matches the pristine read.
    ASSERT_LE(result.records.size(), full.records.size());
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      ASSERT_EQ(result.records[i], full.records[i])
          << "cut=" << cut << " record " << i;
    }
    if (result.error.has_value()) {
      EXPECT_LE(result.error->offset, cut);
    } else {
      // No error only when the cut landed exactly on a frame boundary
      // (or inside the never-started file: cut == 0).
      EXPECT_TRUE(cut == 0 || result.bytes_consumed == cut);
    }
  }
}

TEST(FleetRecord, RandomByteFlipsNeverCrashAndKeepPrefix) {
  const auto bytes = sample_file(20);
  const auto full = read_records(bytes);
  ASSERT_TRUE(full.ok());

  Rng rng(0xF1EE7);
  for (int iter = 0; iter < 3000; ++iter) {
    auto corrupt = bytes;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      corrupt[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    const auto result = read_records(corrupt);
    ASSERT_LE(result.records.size(), full.records.size());
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      ASSERT_EQ(result.records[i], full.records[i]) << "iter " << iter;
    }
    if (result.error.has_value()) {
      EXPECT_LE(result.error->offset, corrupt.size()) << "iter " << iter;
    }
  }
}

TEST(FleetRecord, RandomTruncationPlusFlipNeverCrashes) {
  const auto bytes = sample_file(16);
  Rng rng(0xBADF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    auto corrupt = bytes;
    corrupt.resize(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
    if (!corrupt.empty()) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size()) - 1));
      corrupt[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    const auto result = read_records(corrupt);  // must not crash / UB
    if (result.error.has_value()) {
      EXPECT_LE(result.error->offset, corrupt.size());
      EXPECT_NE(std::string(to_string(result.error->kind)), "?");
    }
  }
}

TEST(FleetRecord, MalformedEnumAndBoolValuesAreRejected) {
  // Encode a record whose stall cause is out of range; the encoder writes
  // whatever the struct holds and the CRC is valid over it, so only the
  // reader's field validation can catch it.
  FlowRecord bad = sample_record(4);
  ASSERT_FALSE(bad.stalls.empty());
  bad.stalls.back().cause = 42;
  std::vector<std::uint8_t> bytes;
  append_file_header(bytes);
  append_record(bytes, bad);
  const auto result = read_records(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->kind, RecordErrorKind::kMalformedPayload);
  EXPECT_EQ(result.error->offset, kFileHeaderBytes);
}

TEST(FleetRecord, MissingFileIsATypedIoError) {
  const auto result = read_record_file("/nonexistent/fleet/records.tflr");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->kind, RecordErrorKind::kIoError);
}

TEST(FleetRecordSink, RunnerActsAsOneServerShard) {
  auto cfg = workload::ExperimentConfig{}
                 .with_profile(workload::profile_for(
                     workload::Service::kWebSearch))
                 .with_flows(12)
                 .with_seed(77);
  std::ostringstream os;
  RecordWriter writer(os);
  RecordSink sink(writer,
                  RecordSinkConfig{}
                      .with_shard_id(3)
                      .with_service(2)
                      .with_flow_spacing(Duration::millis(250)));
  workload::ParallelRunner runner(cfg);
  runner.run(sink);

  EXPECT_EQ(sink.records(), 12u);
  const std::string blob = os.str();
  const auto result = read_records(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.records.size(), 12u);
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const FlowRecord& r = result.records[i];
    EXPECT_EQ(r.shard_id, 3u);
    EXPECT_EQ(r.service, 2u);
    EXPECT_EQ(r.flow_index, i);
    EXPECT_EQ(r.start_us, static_cast<std::int64_t>(i) * 250'000);
    EXPECT_GT(r.packets, 0u);
    EXPECT_GT(r.transmission_us, 0);
  }
}

TEST(FleetRecordSink, EmissionIsDeterministicAcrossRuns) {
  const auto emit = [] {
    auto cfg = workload::ExperimentConfig{}
                   .with_profile(workload::profile_for(
                       workload::Service::kCloudStorage))
                   .with_flows(8)
                   .with_seed(5);
    std::ostringstream os;
    RecordWriter writer(os);
    RecordSink sink(writer, RecordSinkConfig{}.with_shard_id(1));
    workload::ParallelRunner runner(cfg);
    runner.run(sink);
    return os.str();
  };
  EXPECT_EQ(emit(), emit());
}

TEST(FleetRecordSink, NegativeSpacingThrows) {
  EXPECT_THROW(RecordSinkConfig{}.with_flow_spacing(Duration::micros(-1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tapo::fleet
