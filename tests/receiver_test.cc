// Tests for the client-side receiver: delayed ACKs, SACK/DSACK generation,
// window management, SWS avoidance, autotuning, and the slow-reader model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/receiver.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr net::Seq32 kIsn{100};

ReceiverConfig test_config() {
  ReceiverConfig cfg;
  cfg.mss = kMss;
  cfg.init_rwnd_bytes = 10 * kMss;
  cfg.max_rwnd_bytes = 40 * kMss;
  cfg.window_autotune = false;
  cfg.delack_timeout = Duration::millis(40);
  return cfg;
}

struct Harness {
  sim::Simulator sim;
  std::vector<TcpReceiver::AckSpec> acks;
  std::unique_ptr<TcpReceiver> rcv;

  explicit Harness(ReceiverConfig cfg = test_config()) {
    rcv = std::make_unique<TcpReceiver>(
        sim, cfg, [this](const TcpReceiver::AckSpec& a) { acks.push_back(a); });
    rcv->start(kIsn);
  }

  net::Seq32 seg(int i) const {
    return kIsn + static_cast<std::uint32_t>(i) * kMss;
  }
  void data(int i) { rcv->on_data(seg(i), kMss); }
  void advance(Duration d) { sim.run_until(sim.now() + d); }
};

TEST(Receiver, AcksEverySecondSegment) {
  Harness h;
  h.data(0);
  EXPECT_TRUE(h.acks.empty());  // delack armed
  h.data(1);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].ack, h.seg(2));
  EXPECT_TRUE(h.acks[0].sack_blocks.empty());
}

TEST(Receiver, DelayedAckTimerFires) {
  Harness h;
  h.data(0);
  h.advance(Duration::millis(39));
  EXPECT_TRUE(h.acks.empty());
  h.advance(Duration::millis(2));
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].ack, h.seg(1));
}

TEST(Receiver, OutOfOrderTriggersImmediateSack) {
  Harness h;
  h.data(0);
  h.data(2);  // hole at segment 1
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].ack, h.seg(1));  // cumulative stays at the hole
  ASSERT_EQ(h.acks[0].sack_blocks.size(), 1u);
  EXPECT_EQ(h.acks[0].sack_blocks[0], (net::SackBlock{h.seg(2), h.seg(3)}));
}

TEST(Receiver, HoleFillAcksImmediately) {
  Harness h;
  h.data(0);
  h.data(2);
  h.data(1);  // fills the hole
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[1].ack, h.seg(3));
  EXPECT_TRUE(h.acks[1].sack_blocks.empty());
}

TEST(Receiver, MultipleSackBlocksMostRecentFirst) {
  Harness h;
  h.data(0);
  h.data(2);  // hole 1
  h.data(4);  // hole 3
  ASSERT_EQ(h.acks.size(), 2u);
  const auto& blocks = h.acks[1].sack_blocks;
  ASSERT_EQ(blocks.size(), 2u);
  // The block containing the newest data (segment 4) is reported first.
  EXPECT_EQ(blocks[0], (net::SackBlock{h.seg(4), h.seg(5)}));
  EXPECT_EQ(blocks[1], (net::SackBlock{h.seg(2), h.seg(3)}));
}

TEST(Receiver, OooBlocksMerge) {
  Harness h;
  h.data(2);
  h.data(3);  // adjacent: merges into one block
  ASSERT_EQ(h.acks.size(), 2u);
  ASSERT_EQ(h.acks[1].sack_blocks.size(), 1u);
  EXPECT_EQ(h.acks[1].sack_blocks[0], (net::SackBlock{h.seg(2), h.seg(4)}));
}

TEST(Receiver, DsackOnFullyDuplicateSegment) {
  Harness h;
  h.data(0);
  h.data(1);
  h.data(0);  // duplicate below rcv_nxt
  ASSERT_EQ(h.acks.size(), 2u);
  const auto& a = h.acks[1];
  EXPECT_EQ(a.ack, h.seg(2));
  ASSERT_GE(a.sack_blocks.size(), 1u);
  EXPECT_EQ(a.sack_blocks[0], (net::SackBlock{h.seg(0), h.seg(1)}));
  EXPECT_EQ(h.rcv->dsacks_sent(), 1u);
}

TEST(Receiver, DsackOnDuplicateOooSegment) {
  Harness h;
  h.data(0);
  h.data(2);
  h.data(2);  // duplicate of the sacked block
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[1].sack_blocks[0], (net::SackBlock{h.seg(2), h.seg(3)}));
  EXPECT_EQ(h.rcv->dsacks_sent(), 1u);
}

TEST(Receiver, DsackDisabledStillAcksDuplicates) {
  auto cfg = test_config();
  cfg.dsack_enabled = false;
  Harness h(cfg);
  h.data(0);
  h.data(1);
  h.data(0);
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_TRUE(h.acks[1].sack_blocks.empty());
}

TEST(Receiver, SackDisabledOmitsBlocks) {
  auto cfg = test_config();
  cfg.sack_enabled = false;
  Harness h(cfg);
  h.data(0);
  h.data(2);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_TRUE(h.acks[0].sack_blocks.empty());
}

TEST(Receiver, WindowShrinksWithUnreadData) {
  auto cfg = test_config();
  cfg.app_read_Bps = 1;  // effectively frozen reader
  Harness h(cfg);
  h.data(0);
  h.data(1);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_LE(h.acks[0].rwnd_bytes, 10 * kMss - 2 * kMss);
}

TEST(Receiver, InstantReaderKeepsWindowOpen) {
  Harness h;  // app_read_Bps = 0 -> instant
  for (int i = 0; i < 8; ++i) h.data(i);
  ASSERT_FALSE(h.acks.empty());
  EXPECT_EQ(h.acks.back().rwnd_bytes, 10 * kMss);
}

TEST(Receiver, SwsAvoidanceAdvertisesZero) {
  auto cfg = test_config();
  cfg.init_rwnd_bytes = 2 * kMss;
  cfg.max_rwnd_bytes = 2 * kMss;
  cfg.app_read_Bps = 1;  // frozen reader
  Harness h(cfg);
  h.data(0);
  h.data(1);  // buffer now full
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].rwnd_bytes, 0u);
  EXPECT_GE(h.rcv->zero_window_acks(), 1u);
}

TEST(Receiver, WindowUpdateAfterReaderDrains) {
  auto cfg = test_config();
  cfg.init_rwnd_bytes = 2 * kMss;
  cfg.max_rwnd_bytes = 2 * kMss;
  cfg.app_read_Bps = 100'000;  // drains 2 MSS in 20 ms
  Harness h(cfg);
  h.data(0);
  h.data(1);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].rwnd_bytes, 0u);
  h.advance(Duration::millis(100));
  // A window-update ACK re-opened the window.
  ASSERT_GE(h.acks.size(), 2u);
  EXPECT_GT(h.acks.back().rwnd_bytes, 0u);
}

TEST(Receiver, AutotuneGrowsBuffer) {
  auto cfg = test_config();
  cfg.window_autotune = true;
  cfg.init_rwnd_bytes = 4 * kMss;
  cfg.max_rwnd_bytes = 64 * kMss;
  Harness h(cfg);
  const std::uint32_t before = h.rcv->buffer_capacity();
  for (int i = 0; i < 30; ++i) h.data(i);
  EXPECT_GT(h.rcv->buffer_capacity(), before);
  EXPECT_LE(h.rcv->buffer_capacity(), 64 * kMss);
}

TEST(Receiver, PauseFreezesReading) {
  auto cfg = test_config();
  cfg.init_rwnd_bytes = 4 * kMss;
  cfg.max_rwnd_bytes = 4 * kMss;
  cfg.app_read_Bps = 1'000'000;         // fast when not paused
  cfg.pause_every_bytes = 2 * kMss;     // pause after 2 segments
  cfg.pause_duration = Duration::millis(500);
  Harness h(cfg);
  for (int i = 0; i < 4; ++i) {
    h.data(i);
    h.advance(Duration::millis(5));
  }
  // Reader paused after ~2 MSS; remaining data sits in the buffer.
  EXPECT_LT(h.acks.back().rwnd_bytes, 4 * kMss);
  // After the pause it drains again.
  h.advance(Duration::seconds(1.0));
  EXPECT_EQ(h.rcv->current_rwnd(), 4 * kMss);
}

TEST(Receiver, FinAdvancesRcvNxt) {
  Harness h;
  h.data(0);
  h.rcv->on_fin(h.seg(1));
  ASSERT_FALSE(h.acks.empty());
  EXPECT_EQ(h.acks.back().ack, h.seg(1) + 1);
}

TEST(Receiver, FinWithHolesNotAcceptedEarly) {
  Harness h;
  h.data(0);
  h.data(2);
  h.rcv->on_fin(h.seg(3));  // FIN beyond the hole
  // ACK still points at the hole.
  EXPECT_EQ(h.acks.back().ack, h.seg(1));
}

TEST(Receiver, DelackCancelledBySecondSegment) {
  Harness h;
  h.data(0);
  h.data(1);  // immediate ack, delack cancelled
  h.advance(Duration::millis(100));
  EXPECT_EQ(h.acks.size(), 1u);  // no duplicate delack firing
}

}  // namespace
}  // namespace tapo::tcp
