// Additional analyzer coverage: FIN-tail stalls, persist-probe episodes,
// multi-request response boundaries, configuration knobs, and the umbrella
// header compile check.
#include <gtest/gtest.h>

#include "tapo/tapo.h"  // umbrella header must compile standalone

#include <sstream>

namespace tapo::analysis {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr std::uint32_t kServerIsn = 5000;
constexpr std::uint32_t kClientIsn = 1000;
constexpr std::uint32_t kBigWindow = 63000;

struct FlowBuilder {
  Flow flow;

  FlowBuilder() {
    flow.server_to_client = {0xc0a80101, 0x0a000001, 80, 40001};
    flow.saw_syn = true;
    flow.saw_synack = true;
    flow.server_isn = net::Seq32{kServerIsn};
    flow.client_isn = net::Seq32{kClientIsn};
    flow.mss = kMss;
    flow.sack_permitted = true;
    flow.init_rwnd_bytes = kBigWindow;
  }

  static net::Seq32 seg(int i) {
    return net::Seq32{kServerIsn + 1 + static_cast<std::uint32_t>(i) * kMss};
  }

  FlowPacket& add(double t, bool from_server) {
    FlowPacket& p = flow.append_packet();
    p.ts = TimePoint::from_us(static_cast<std::int64_t>(t * 1e6));
    p.from_server = from_server;
    p.window = kBigWindow;
    return p;
  }

  void handshake(double t = 0.0, double rtt = 0.1) {
    auto& syn = add(t, false);
    syn.seq = net::Seq32{kClientIsn};
    syn.flags.syn = true;
    auto& synack = add(t, true);
    synack.seq = net::Seq32{kServerIsn};
    synack.ack = net::Seq32{kClientIsn + 1};
    synack.flags.syn = true;
    synack.flags.ack = true;
    auto& ack = add(t + rtt, false);
    ack.seq = net::Seq32{kClientIsn + 1};
    ack.ack = net::Seq32{kServerIsn + 1};
    ack.flags.ack = true;
  }

  void request(double t, std::uint32_t len = 200) {
    auto& p = add(t, false);
    p.seq = net::Seq32{kClientIsn + 1};
    p.flags.ack = true;
    p.payload = len;
  }

  void data(double t, int i, std::uint32_t len = kMss) {
    auto& p = add(t, true);
    p.seq = seg(i);
    p.flags.ack = true;
    p.payload = len;
  }

  void fin(double t, int i) {
    auto& p = add(t, true);
    p.seq = seg(i);
    p.flags.ack = true;
    p.flags.fin = true;
  }

  void ack(double t, net::Seq32 ackno, std::uint32_t window = kBigWindow) {
    auto& p = add(t, false);
    p.seq = net::Seq32{kClientIsn + 201};
    p.ack = ackno;
    p.flags.ack = true;
    p.window = window;
  }

  FlowAnalysis analyze(AnalyzerConfig cfg = {}) const {
    return Analyzer(cfg).analyze_flow(flow);
  }
};

TEST(AnalyzerExtra, LostFinClassifiedAsTailRetransmission) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.fin(0.15, 2);  // FIN right after the data — and it is lost
  b.ack(0.25, FlowBuilder::seg(2));
  // Timeout retransmission of the FIN.
  b.fin(0.65, 2);
  b.ack(0.75, FlowBuilder::seg(2) + 1);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kRetransmission);
  EXPECT_EQ(fa.stalls[0].retrans_cause, RetransCause::kTailRetrans);
}

TEST(AnalyzerExtra, PersistProbeGapsClassifiedAsZeroWindow) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.25, FlowBuilder::seg(2), /*window=*/0);  // buffer full
  // Persist probe (1 byte) after ~RTO; window still zero.
  b.data(0.65, 2, 1);
  b.ack(0.75, FlowBuilder::seg(2) + 1, /*window=*/0);
  // Second probe after a backed-off interval.
  {
    auto& p = b.add(1.55, true);
    p.seq = FlowBuilder::seg(2) + 1;
    p.flags.ack = true;
    p.payload = 1;
  }
  b.ack(1.65, FlowBuilder::seg(2) + 2, kBigWindow);  // window reopens
  const auto fa = b.analyze();
  ASSERT_GE(fa.stalls.size(), 2u);
  for (const auto& s : fa.stalls) {
    EXPECT_EQ(s.cause, StallCause::kZeroWindow) << "stall at " << s.start.sec();
  }
  EXPECT_TRUE(fa.had_zero_rwnd);
}

TEST(AnalyzerExtra, ResponseBoundariesFromMultipleRequests) {
  // Two requests; a tail loss at the end of the FIRST response must be a
  // tail retransmission even though the flow continues afterwards.
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);  // lost: tail of response 1
  b.ack(0.25, FlowBuilder::seg(1));
  b.data(0.65, 1);  // timeout retransmission
  b.ack(0.75, FlowBuilder::seg(2));
  // Request 2 and a long second response.
  b.request(0.80);
  for (int i = 2; i < 12; ++i) b.data(0.85, i);
  b.ack(0.95, FlowBuilder::seg(12));
  const auto fa = b.analyze();
  bool tail_found = false;
  for (const auto& s : fa.stalls) {
    if (s.retrans_cause == RetransCause::kTailRetrans) tail_found = true;
  }
  EXPECT_TRUE(tail_found);
}

TEST(AnalyzerExtra, InflightSamplingCanBeDisabled) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.ack(0.25, FlowBuilder::seg(1));
  AnalyzerConfig cfg;
  cfg.sample_inflight_on_ack = false;
  const auto fa = b.analyze(cfg);
  EXPECT_TRUE(fa.inflight_on_ack.empty());
  AnalyzerConfig on;
  EXPECT_FALSE(b.analyze(on).inflight_on_ack.empty());
}

TEST(AnalyzerExtra, RtoFractionConfigurable) {
  // A retransmission after 0.6*RTO: timeout under a lax fraction, fast
  // retransmit (-> packet delay stall) under the default 0.9.
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.data(0.15, 2);
  b.ack(0.25, FlowBuilder::seg(2));
  // RTO estimate ~300 ms; retransmit the tail 210 ms after last activity
  // (260 ms after the segment's transmission: ~0.85*RTO).
  b.data(0.46, 2);
  b.ack(0.56, FlowBuilder::seg(3));
  AnalyzerConfig lax;
  lax.rto_fraction = 0.5;
  const auto fa_lax = b.analyze(lax);
  ASSERT_EQ(fa_lax.stalls.size(), 1u);
  EXPECT_EQ(fa_lax.stalls[0].cause, StallCause::kRetransmission);
  AnalyzerConfig strict;
  strict.rto_fraction = 1.5;
  const auto fa_strict = b.analyze(strict);
  ASSERT_EQ(fa_strict.stalls.size(), 1u);
  EXPECT_EQ(fa_strict.stalls[0].cause, StallCause::kPacketDelay);
}

TEST(AnalyzerExtra, SpeedExcludesStalledTime) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.25, FlowBuilder::seg(2));
  // One-second resource-constraint stall mid-flow.
  b.data(1.25, 2);
  b.data(1.25, 3);
  b.ack(1.35, FlowBuilder::seg(4));
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  // Active data phase = 1.2 s total - 1.0 s stalled = 0.2 s for 4000 bytes.
  EXPECT_NEAR(fa.avg_speed_Bps, 4000.0 / 0.2, 200.0);
}

TEST(AnalyzerExtra, UmbrellaHeaderTypesUsable) {
  // Smoke-check that every module surfaced by tapo/tapo.h is reachable.
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  cfg.flows = 2;
  cfg.seed = 1;
  const auto res = workload::run_experiment(cfg);
  EXPECT_EQ(res.analyses.size(), 2u);
  std::stringstream ss;
  write_flows_csv(ss, res.analyses);
  EXPECT_FALSE(ss.str().empty());
}

}  // namespace
}  // namespace tapo::analysis
