// Tests for the congestion-control algorithms (Reno, CUBIC).
#include <gtest/gtest.h>

#include "tcp/congestion.h"

namespace tapo::tcp {
namespace {

TEST(Reno, SlowStartDoublesPerRtt) {
  RenoCc cc;
  std::uint32_t cwnd = 4;
  const std::uint32_t ssthresh = 0x7fffffff;
  // One RTT: 4 segments acked (2 acks of 2).
  cwnd = cc.on_ack(cwnd, ssthresh, 2, TimePoint::epoch(), Duration::millis(100));
  cwnd = cc.on_ack(cwnd, ssthresh, 2, TimePoint::epoch(), Duration::millis(100));
  EXPECT_EQ(cwnd, 8u);
}

TEST(Reno, SlowStartCappedAtSsthresh) {
  RenoCc cc;
  std::uint32_t cwnd = 9;
  cwnd = cc.on_ack(cwnd, /*ssthresh=*/10, 4, TimePoint::epoch(),
                   Duration::millis(100));
  EXPECT_EQ(cwnd, 10u);
}

TEST(Reno, CongestionAvoidanceLinear) {
  RenoCc cc;
  std::uint32_t cwnd = 10;
  // cwnd acked segments -> exactly +1.
  for (int i = 0; i < 5; ++i) {
    cwnd = cc.on_ack(cwnd, 10, 2, TimePoint::epoch(), Duration::millis(100));
  }
  EXPECT_EQ(cwnd, 11u);
  // Next full window gives +1 again (credit carries over correctly).
  for (int i = 0; i < 6; ++i) {
    cwnd = cc.on_ack(cwnd, 10, 2, TimePoint::epoch(), Duration::millis(100));
  }
  EXPECT_EQ(cwnd, 12u);
}

TEST(Reno, SsthreshHalves) {
  RenoCc cc;
  EXPECT_EQ(cc.ssthresh(20), 10u);
  EXPECT_EQ(cc.ssthresh(3), 2u);   // floor at 2
  EXPECT_EQ(cc.ssthresh(1), 2u);
}

TEST(Cubic, SsthreshUsesBeta) {
  CubicCc cc;
  EXPECT_EQ(cc.ssthresh(100), 70u);
  EXPECT_EQ(cc.ssthresh(2), 2u);
}

TEST(Cubic, SlowStartBelowSsthresh) {
  CubicCc cc;
  std::uint32_t cwnd = 4;
  cwnd = cc.on_ack(cwnd, 100, 4, TimePoint::epoch(), Duration::millis(50));
  EXPECT_EQ(cwnd, 8u);
}

TEST(Cubic, GrowsTowardWmaxAfterLoss) {
  CubicCc cc;
  // Establish W_max = 100 via a loss event.
  cc.ssthresh(100);
  cc.on_loss_event(TimePoint::epoch());
  std::uint32_t cwnd = 70;
  TimePoint t = TimePoint::epoch();
  // Feed acks over simulated seconds; CUBIC recovers toward W_max and then
  // probes beyond it (convex region).
  std::uint32_t near_k = 0;
  for (int ms = 0; ms < 20'000; ms += 50) {
    t = TimePoint::epoch() + Duration::millis(ms);
    cwnd = cc.on_ack(cwnd, 70, 2, t, Duration::millis(50));
    if (ms == 5'000) near_k = cwnd;
  }
  // Around t=5s the window should be in the neighbourhood of W_max...
  EXPECT_GE(near_k, 85u);
  EXPECT_LE(near_k, 130u);
  // ...and by 20s it has moved past it.
  EXPECT_GE(cwnd, 100u);
}

TEST(Cubic, ConcaveThenPlateau) {
  CubicCc cc;
  cc.ssthresh(100);
  cc.on_loss_event(TimePoint::epoch());
  std::uint32_t cwnd = 70;
  std::uint32_t at_1s = 0, at_4s = 0;
  TimePoint t = TimePoint::epoch();
  std::uint32_t prev = cwnd;
  std::uint32_t growth_first = 0, growth_later = 0;
  for (int ms = 0; ms < 8'000; ms += 50) {
    t = TimePoint::epoch() + Duration::millis(ms);
    cwnd = cc.on_ack(cwnd, 70, 2, t, Duration::millis(50));
    if (ms == 1'000) at_1s = cwnd;
    if (ms == 4'000) at_4s = cwnd;
    if (ms < 1'000) growth_first += cwnd - prev;
    if (ms >= 3'000 && ms < 4'000) growth_later += cwnd - prev;
    prev = cwnd;
  }
  // Concave region: growth decelerates as cwnd approaches W_max.
  EXPECT_GT(at_1s, 70u);
  EXPECT_GE(at_4s, at_1s);
  EXPECT_GE(growth_first, growth_later);
}

TEST(Cubic, ResetClearsEpoch) {
  CubicCc cc;
  cc.ssthresh(100);
  cc.reset();
  // After reset, behaves like a fresh instance: slow start below ssthresh.
  std::uint32_t cwnd = 2;
  cwnd = cc.on_ack(cwnd, 50, 2, TimePoint::epoch(), Duration::millis(50));
  EXPECT_EQ(cwnd, 4u);
}

TEST(Factory, MakesRequestedAlgorithm) {
  EXPECT_EQ(make_congestion_control(CcAlgo::kReno)->name(), "reno");
  EXPECT_EQ(make_congestion_control(CcAlgo::kCubic)->name(), "cubic");
}

TEST(Cubic, FastConvergenceShrinksWmax) {
  CubicCc cc;
  cc.ssthresh(100);  // W_max = 100
  // Second loss below W_max: fast convergence reduces the target.
  const std::uint32_t ss2 = cc.ssthresh(80);
  EXPECT_EQ(ss2, 56u);  // 0.7 * 80
  // Growth should now aim below 80*... just verify it still grows sanely.
  std::uint32_t cwnd = 56;
  TimePoint t = TimePoint::epoch();
  for (int ms = 0; ms < 10'000; ms += 50) {
    t = TimePoint::epoch() + Duration::millis(ms);
    cwnd = cc.on_ack(cwnd, 56, 2, t, Duration::millis(50));
  }
  EXPECT_GT(cwnd, 56u);
}

}  // namespace
}  // namespace tapo::tcp
