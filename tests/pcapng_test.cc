// Tests for the pcapng reader (format auto-detection, SHB/IDB/EPB parsing,
// per-interface timestamp resolution).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "net/ipv4.h"
#include "pcap/pcap.h"

namespace tapo::pcap {
namespace {

void le16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}
void le32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void block(std::string& out, std::uint32_t type, const std::string& body) {
  const std::uint32_t total = 12 + static_cast<std::uint32_t>(body.size());
  le32(out, type);
  le32(out, total);
  out += body;
  le32(out, total);
}

std::string shb() {
  std::string b;
  le32(b, 0x1A2B3C4D);  // byte-order magic
  le16(b, 1);           // major
  le16(b, 0);           // minor
  le32(b, 0xffffffff);  // section length (unknown), low
  le32(b, 0xffffffff);  // high
  return b;
}

std::string idb(std::uint16_t linktype, int tsresol_pow10 = -1) {
  std::string b;
  le16(b, linktype);
  le16(b, 0);           // reserved
  le32(b, 65535);       // snaplen
  if (tsresol_pow10 >= 0) {
    le16(b, 9);  // if_tsresol
    le16(b, 1);
    b.push_back(static_cast<char>(tsresol_pow10));
    b.append(3, '\0');  // padding
  }
  le16(b, 0);  // opt_endofopt
  le16(b, 0);
  return b;
}

/// Raw IPv4/TCP frame bytes via the classic writer.
std::string ip_frame(std::uint32_t seq, std::uint32_t payload) {
  net::PacketTrace t;
  net::CapturedPacket p;
  p.key = {net::ipv4_from_string("10.0.0.1"),
           net::ipv4_from_string("192.168.1.1"), 40001, 80};
  p.tcp.seq = net::Seq32{seq};
  p.tcp.flags.ack = true;
  p.payload_len = payload;
  t.add(p);
  std::stringstream ss;
  write_stream(ss, t);
  return ss.str().substr(24 + 16);  // strip global + record header
}

std::string epb(std::uint32_t if_id, std::uint64_t ts_units,
                const std::string& frame) {
  std::string b;
  le32(b, if_id);
  le32(b, static_cast<std::uint32_t>(ts_units >> 32));
  le32(b, static_cast<std::uint32_t>(ts_units & 0xffffffff));
  le32(b, static_cast<std::uint32_t>(frame.size()));  // caplen
  le32(b, static_cast<std::uint32_t>(frame.size()));  // origlen
  b += frame;
  while (b.size() % 4) b.push_back('\0');
  return b;
}

TEST(Pcapng, MinimalFileParses) {
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(/*LINKTYPE_RAW=*/101));
  block(file, 0x00000006, epb(0, 1'500'000, ip_frame(777, 100)));
  block(file, 0x00000006, epb(0, 2'250'000, ip_frame(877, 50)));

  std::stringstream ss(file);
  ReadStats st;
  const auto trace = read_stream(ss, &st);
  EXPECT_EQ(st.records, 2u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].tcp.seq, net::Seq32{777});
  EXPECT_EQ(trace[0].timestamp.us(), 1'500'000);  // default 1e-6 resolution
  EXPECT_EQ(trace[1].payload_len, 50u);
  EXPECT_EQ(trace[1].timestamp.us(), 2'250'000);
}

TEST(Pcapng, NanosecondResolutionConverted) {
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(101, /*tsresol=*/9));  // 1e-9 units
  block(file, 0x00000006, epb(0, 3'000'000'000ull, ip_frame(1, 10)));
  std::stringstream ss(file);
  const auto trace = read_stream(ss);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].timestamp.us(), 3'000'000);  // 3e9 ns = 3 s
}

TEST(Pcapng, EthernetFramesUnwrapped) {
  std::string frame = ip_frame(42, 25);
  std::string eth;
  eth.append(12, '\0');
  eth.push_back(0x08);
  eth.push_back(0x00);
  eth += frame;
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(/*LINKTYPE_ETHERNET=*/1));
  block(file, 0x00000006, epb(0, 10, eth));
  std::stringstream ss(file);
  const auto trace = read_stream(ss);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].tcp.seq, net::Seq32{42});
  EXPECT_EQ(trace[0].payload_len, 25u);
}

TEST(Pcapng, UnknownBlocksSkipped) {
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(101));
  block(file, 0x00000bad, std::string(16, '\x55'));  // custom block
  block(file, 0x00000006, epb(0, 10, ip_frame(5, 5)));
  std::stringstream ss(file);
  const auto trace = read_stream(ss);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Pcapng, MultipleInterfacesUseOwnLinktype) {
  std::string eth = ip_frame(9, 9);
  std::string wrapped;
  wrapped.append(12, '\0');
  wrapped.push_back(0x08);
  wrapped.push_back(0x00);
  wrapped += eth;
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(101));  // if 0: raw
  block(file, 0x00000001, idb(1));    // if 1: ethernet
  block(file, 0x00000006, epb(0, 10, ip_frame(8, 8)));
  block(file, 0x00000006, epb(1, 20, wrapped));
  std::stringstream ss(file);
  const auto trace = read_stream(ss);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].tcp.seq, net::Seq32{8});
  EXPECT_EQ(trace[1].tcp.seq, net::Seq32{9});
}

TEST(Pcapng, TruncatedFileKeepsPrefix) {
  std::string file;
  block(file, 0x0A0D0D0A, shb());
  block(file, 0x00000001, idb(101));
  block(file, 0x00000006, epb(0, 10, ip_frame(1, 1)));
  block(file, 0x00000006, epb(0, 20, ip_frame(2, 2)));
  file.resize(file.size() - 10);
  std::stringstream ss(file);
  const auto trace = read_stream(ss);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Pcapng, GarbageAfterMagicThrows) {
  std::string file = "\x0a\x0d\x0d\x0a";  // SHB type, then nothing
  std::stringstream ss(file);
  EXPECT_THROW(read_stream(ss), std::runtime_error);
}

}  // namespace
}  // namespace tapo::pcap
