// TAPO analyzer tests: every leaf of the Fig.-5 decision tree and the
// Table-5 retransmission sub-classifier, exercised with hand-crafted flows
// where ground truth is known by construction.
#include <gtest/gtest.h>

#include "tapo/analyzer.h"
#include "tapo/report.h"

namespace tapo::analysis {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr std::uint32_t kServerIsn = 5000;
constexpr std::uint32_t kClientIsn = 1000;
constexpr std::uint32_t kBigWindow = 63000;

/// Builds a Flow packet-by-packet. Times are absolute seconds.
struct FlowBuilder {
  Flow flow;

  FlowBuilder() {
    flow.server_to_client = {0xc0a80101, 0x0a000001, 80, 40001};
    flow.saw_syn = true;
    flow.saw_synack = true;
    flow.server_isn = net::Seq32{kServerIsn};
    flow.client_isn = net::Seq32{kClientIsn};
    flow.mss = kMss;
    flow.sack_permitted = true;
    flow.client_wscale = 0;
    flow.init_rwnd_bytes = kBigWindow;
  }

  static net::Seq32 seg(int i) {
    return net::Seq32{kServerIsn + 1 + static_cast<std::uint32_t>(i) * kMss};
  }

  FlowPacket& add(double t, bool from_server) {
    FlowPacket& p = flow.append_packet();
    p.ts = TimePoint::from_us(static_cast<std::int64_t>(t * 1e6));
    p.from_server = from_server;
    p.window = kBigWindow;
    return p;
  }

  /// Standard handshake: SYN at t, SYN-ACK at t, client ACK at t+rtt.
  /// Seeds the mimic's SRTT with `rtt`.
  void handshake(double t = 0.0, double rtt = 0.1) {
    auto& syn = add(t, false);
    syn.seq = net::Seq32{kClientIsn};
    syn.flags.syn = true;
    auto& synack = add(t, true);
    synack.seq = net::Seq32{kServerIsn};
    synack.ack = net::Seq32{kClientIsn + 1};
    synack.flags.syn = true;
    synack.flags.ack = true;
    auto& ack = add(t + rtt, false);
    ack.seq = net::Seq32{kClientIsn + 1};
    ack.ack = net::Seq32{kServerIsn + 1};
    ack.flags.ack = true;
  }

  net::Seq32 next_req_seq = net::Seq32{kClientIsn + 1};

  /// Client request of `len` bytes arriving at t.
  void request(double t, std::uint32_t len = 200, std::uint32_t req_seq = 0) {
    auto& p = add(t, false);
    p.seq = req_seq ? net::Seq32{req_seq} : next_req_seq;
    next_req_seq = p.seq + len;
    p.ack = net::Seq32{0};  // caller may not care
    p.flags.ack = true;
    p.payload = len;
  }

  /// Server data segment i at t (new transmission or retransmission —
  /// the analyzer decides from sequence numbers).
  void data(double t, int i, std::uint32_t len = kMss) {
    auto& p = add(t, true);
    p.seq = seg(i);
    p.flags.ack = true;
    p.payload = len;
  }

  /// Client ACK at t, cumulative up to segment `upto` (exclusive), with
  /// optional SACK blocks given as segment index ranges.
  void ack(double t, int upto,
           std::vector<std::pair<int, int>> sack_segs = {},
           std::uint32_t window = kBigWindow) {
    auto& p = add(t, false);
    p.seq = net::Seq32{kClientIsn + 1};
    p.ack = seg(upto);
    p.flags.ack = true;
    p.window = window;
    for (const auto& [s, e] : sack_segs) {
      flow.append_sack({seg(s), seg(e)});
    }
  }

  FlowAnalysis analyze(AnalyzerConfig cfg = {}) const {
    return Analyzer(cfg).analyze_flow(flow);
  }
};

// With rtt=0.1: SRTT=100 ms, RTO ~= 300 ms; stall threshold 200 ms.

TEST(Analyzer, CleanFlowHasNoStalls) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 10; i += 2) {
    b.data(t, i);
    b.data(t, i + 1);
    b.ack(t + 0.1, i + 2);
    t += 0.1;
  }
  const auto fa = b.analyze();
  EXPECT_TRUE(fa.stalls.empty());
  EXPECT_EQ(fa.data_segments, 10u);
  EXPECT_EQ(fa.retrans_segments, 0u);
  EXPECT_EQ(fa.unique_bytes, 10u * kMss);
  EXPECT_NEAR(fa.avg_rtt_us, 100'000.0, 1000.0);
}

TEST(Analyzer, DataUnavailableAtResponseHead) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  // Back-end fetch: the first response byte appears 600 ms later.
  b.data(0.7, 0);
  b.data(0.7, 1);
  b.ack(0.8, 2);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kDataUnavailable);
  EXPECT_NEAR(fa.stalls[0].duration.sec(), 0.6, 1e-6);
}

TEST(Analyzer, ResourceConstraintMidResponse) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.25, 2);
  // The app starves the socket: next data only at 0.85 (mid-response).
  b.data(0.85, 2);
  b.ack(0.95, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kResourceConstraint);
}

TEST(Analyzer, ClientIdleBetweenRequests) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.25, 2);  // response 0 fully acked
  // Client thinks for a second, then requests again.
  b.request(1.25);
  b.data(1.3, 2);
  b.ack(1.4, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kClientIdle);
}

TEST(Analyzer, SecondResponseHeadIsDataUnavailable) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.ack(0.25, 1);
  b.request(0.3);
  // Back-end fetch for the *second* response.
  b.data(0.95, 1);
  b.ack(1.05, 2);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kDataUnavailable);
}

TEST(Analyzer, ZeroWindowStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  // Client buffer full: zero window.
  b.ack(0.25, 2, {}, /*window=*/0);
  // Window update 700 ms later.
  b.ack(0.95, 2, {}, kBigWindow);
  b.data(1.0, 2);
  b.ack(1.1, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kZeroWindow);
  EXPECT_TRUE(fa.had_zero_rwnd);
}

TEST(Analyzer, PacketDelayWithoutRetransmission) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  // The ACK shows up 400 ms late (jitter episode); nothing retransmitted.
  b.ack(0.55, 2);
  b.data(0.6, 2);
  b.ack(0.7, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kPacketDelay);
  EXPECT_EQ(fa.retrans_segments, 0u);
}

TEST(Analyzer, TailRetransmissionStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.data(0.15, 2);  // tail segment — lost
  b.ack(0.25, 2);   // acks 0,1 only
  // Silence until the retransmission timer fires.
  b.data(0.65, 2);  // timeout retransmission of the tail
  b.ack(0.75, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kRetransmission);
  EXPECT_EQ(fa.stalls[0].retrans_cause, RetransCause::kTailRetrans);
  EXPECT_EQ(fa.stalls[0].state_at_stall, tcp::CaState::kOpen);
  EXPECT_EQ(fa.timeout_retrans, 1u);
}

TEST(Analyzer, TailRetransInRecoveryState) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 10; ++i) b.data(t, i);
  // Segment 5 lost; SACK-driven fast retransmit at ~0.26.
  b.ack(t + 0.1, 5, {{6, 7}});
  b.ack(t + 0.11, 5, {{6, 8}});
  b.ack(t + 0.12, 5, {{6, 9}});
  b.data(t + 0.13, 5);  // fast retransmit (elapsed ~130ms << RTO)
  // The fast retransmit of 5 arrives, but the tail segment 9 was also lost.
  b.ack(t + 0.23, 9);
  // Silence; timeout retransmission of the tail while still in Recovery.
  b.data(t + 0.65, 9);
  b.ack(t + 0.75, 10);
  const auto fa = b.analyze();
  ASSERT_GE(fa.stalls.size(), 1u);
  const auto& s = fa.stalls.back();
  EXPECT_EQ(s.cause, StallCause::kRetransmission);
  EXPECT_EQ(s.retrans_cause, RetransCause::kTailRetrans);
  EXPECT_EQ(s.state_at_stall, tcp::CaState::kRecovery);
  EXPECT_EQ(fa.fast_retrans, 1u);
}

TEST(Analyzer, FDoubleRetransmissionStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 8; ++i) b.data(t, i);
  // Segment 1 lost; dupacks with growing SACKs.
  b.ack(t + 0.1, 1, {{2, 3}});
  b.ack(t + 0.11, 1, {{2, 4}});
  b.ack(t + 0.12, 1, {{2, 5}});
  b.data(t + 0.125, 1);  // fast retransmit — lost again
  b.ack(t + 0.13, 1, {{2, 8}});
  // Timeout retransmission after silence: the f-double stall.
  b.data(t + 0.60, 1);
  b.ack(t + 0.70, 8);
  const auto fa = b.analyze();
  ASSERT_GE(fa.stalls.size(), 1u);
  const auto& s = fa.stalls.back();
  EXPECT_EQ(s.cause, StallCause::kRetransmission);
  EXPECT_EQ(s.retrans_cause, RetransCause::kDoubleRetrans);
  EXPECT_TRUE(s.f_double);
}

TEST(Analyzer, TDoubleRetransmissionStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.data(0.15, 2);
  b.ack(0.25, 2);
  // First timeout retransmission of the tail (lost again)...
  b.data(0.65, 2);
  // ...and a second, backed-off timeout retransmission.
  b.data(1.45, 2);
  b.ack(1.55, 3);
  const auto fa = b.analyze();
  ASSERT_GE(fa.stalls.size(), 2u);
  const auto& s = fa.stalls.back();
  EXPECT_EQ(s.retrans_cause, RetransCause::kDoubleRetrans);
  EXPECT_FALSE(s.f_double);
  // The first stall was a plain tail retransmission.
  EXPECT_EQ(fa.stalls.front().retrans_cause, RetransCause::kTailRetrans);
}

TEST(Analyzer, SmallCwndRetransmissionStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  // Ramp: 10 segments acked cleanly.
  for (int i = 0; i < 10; i += 2) {
    b.data(t, i);
    b.data(t, i + 1);
    b.ack(t + 0.1, i + 2);
    t += 0.1;
  }
  // Two in flight; segment 10 lost, 11 SACKed (one dupack: below dupthres).
  b.data(t, 10);
  b.data(t, 11);
  b.ack(t + 0.1, 10, {{11, 12}});
  // Timeout retransmission.
  b.data(t + 0.55, 10);
  b.ack(t + 0.65, 12);
  // The response continues (so segment 10 is not at the tail).
  for (int i = 12; i < 18; ++i) b.data(t + 0.7, i);
  b.ack(t + 0.8, 18);
  const auto fa = b.analyze();
  ASSERT_GE(fa.stalls.size(), 1u);
  bool found = false;
  for (const auto& s : fa.stalls) {
    if (s.retrans_cause == RetransCause::kSmallCwnd) {
      found = true;
      EXPECT_LT(s.in_flight, 4u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Analyzer, SmallRwndRetransmissionStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  const std::uint32_t tiny = 2 * kMss;
  // Ramp with a *small advertised window* the whole time.
  for (int i = 0; i < 10; i += 2) {
    b.data(t, i);
    b.data(t, i + 1);
    b.ack(t + 0.1, i + 2, {}, tiny);
    t += 0.1;
  }
  b.data(t, 10);
  b.data(t, 11);
  b.ack(t + 0.1, 10, {{11, 12}}, tiny);
  b.data(t + 0.55, 10);  // timeout retransmission
  b.ack(t + 0.65, 12, {}, tiny);
  for (int i = 12; i < 18; ++i) b.data(t + 0.7, i);
  b.ack(t + 0.8, 18, {}, tiny);
  const auto fa = b.analyze();
  bool found = false;
  for (const auto& s : fa.stalls) {
    if (s.retrans_cause == RetransCause::kSmallRwnd) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Analyzer, ContinuousLossStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 10; i += 2) {
    b.data(t, i);
    b.data(t, i + 1);
    b.ack(t + 0.1, i + 2);
    t += 0.1;
  }
  // Burst: six outstanding segments, all dropped by an outage.
  for (int i = 10; i < 16; ++i) b.data(t, i);
  // Silence, then timeout retransmission and slow-start re-sending of all.
  b.data(t + 0.5, 10);
  b.ack(t + 0.6, 11);
  b.data(t + 0.62, 11);
  b.data(t + 0.62, 12);
  b.ack(t + 0.72, 13);
  b.data(t + 0.74, 13);
  b.data(t + 0.74, 14);
  b.data(t + 0.74, 15);
  b.ack(t + 0.84, 16);
  // Response continues so the burst is not at the tail.
  for (int i = 16; i < 20; ++i) b.data(t + 0.9, i);
  b.ack(t + 1.0, 20);
  const auto fa = b.analyze();
  bool found = false;
  for (const auto& s : fa.stalls) {
    if (s.retrans_cause == RetransCause::kContinuousLoss) {
      found = true;
      EXPECT_GE(s.in_flight, 4u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Analyzer, AckDelayLossStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 10; i += 2) {
    b.data(t, i);
    b.data(t, i + 1);
    b.ack(t + 0.1, i + 2);
    t += 0.1;
  }
  // Six outstanding; ALL delivered, but the ACKs are lost/delayed.
  for (int i = 10; i < 16; ++i) b.data(t, i);
  // Timeout retransmission of the head of the window...
  b.data(t + 0.5, 10);
  // ...and the client's (delayed) ACK reveals everything arrived: DSACK.
  {
    auto& p = b.add(t + 0.6, false);
    p.seq = net::Seq32{kClientIsn + 201};
    p.ack = FlowBuilder::seg(16);
    p.flags.ack = true;
    p.window = kBigWindow;
    b.flow.append_sack({FlowBuilder::seg(10), FlowBuilder::seg(11)});  // DSACK
  }
  for (int i = 16; i < 20; ++i) b.data(t + 0.7, i);
  b.ack(t + 0.8, 20);
  const auto fa = b.analyze();
  bool found = false;
  for (const auto& s : fa.stalls) {
    if (s.retrans_cause == RetransCause::kAckDelayLoss) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GE(fa.spurious_retrans, 1u);
}

TEST(Analyzer, UndeterminedTopLevelStall) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.ack(0.25, 1);
  // A spontaneous duplicate ACK after a long quiet period with nothing
  // outstanding and no new data: no rule matches.
  b.ack(0.95, 1);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  EXPECT_EQ(fa.stalls[0].cause, StallCause::kUndetermined);
}

TEST(Analyzer, StallMetricsRecorded) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.data(0.15, 2);
  b.ack(0.25, 2);
  b.data(0.65, 2);
  b.ack(0.75, 3);
  const auto fa = b.analyze();
  ASSERT_EQ(fa.stalls.size(), 1u);
  const auto& s = fa.stalls[0];
  EXPECT_NEAR(s.duration.sec(), 0.4, 1e-6);
  EXPECT_NEAR(s.rel_position, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(fa.stalled_time, s.duration);
  EXPECT_GT(fa.stall_ratio, 0.0);
  EXPECT_LE(fa.stall_ratio, 1.0);
  // RTO was recorded for the timeout.
  ASSERT_EQ(fa.rto_at_timeout_us.size(), 1u);
  EXPECT_GT(fa.rto_at_timeout_us[0], 200'000.0);
}

TEST(Analyzer, NoStallBeforeFirstRttSample) {
  // Without a handshake or any RTT sample the detector stays quiet (it has
  // no threshold to compare against).
  FlowBuilder b;
  b.flow.saw_syn = false;
  b.flow.saw_synack = false;
  b.request(0.1);
  b.data(5.0, 0);  // huge gap, but no SRTT yet
  b.ack(5.1, 1);
  const auto fa = b.analyze();
  EXPECT_TRUE(fa.stalls.empty());
}

TEST(Analyzer, TauConfigurable) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.4, 2);  // 250 ms gap: stall at tau=2 (thresh 200ms)
  AnalyzerConfig strict;
  strict.tau = 2.0;
  EXPECT_EQ(b.analyze(strict).stalls.size(), 1u);
  AnalyzerConfig lax;
  lax.tau = 4.0;  // thresh min(400, 300) = 300ms: no stall
  EXPECT_TRUE(b.analyze(lax).stalls.empty());
}

TEST(Analyzer, InflightOnAckSamples) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  b.data(0.15, 0);
  b.data(0.15, 1);
  b.ack(0.25, 1);  // one acked, one outstanding
  b.ack(0.26, 2);
  const auto fa = b.analyze();
  // Samples collected on every client ACK (incl. handshake/request).
  ASSERT_GE(fa.inflight_on_ack.size(), 2u);
  EXPECT_EQ(fa.inflight_on_ack[fa.inflight_on_ack.size() - 2], 1u);
  EXPECT_EQ(fa.inflight_on_ack.back(), 0u);
}

TEST(Analyzer, SpuriousFastRetransmitCountedViaDsack) {
  FlowBuilder b;
  b.handshake();
  b.request(0.1);
  double t = 0.15;
  for (int i = 0; i < 5; ++i) b.data(t, i);
  // Reordering looks like loss: dupacks, fast retransmit of 0...
  b.ack(t + 0.1, 0, {{1, 2}});
  b.ack(t + 0.11, 0, {{1, 3}});
  b.ack(t + 0.12, 0, {{1, 4}});
  b.data(t + 0.13, 0);  // fast retransmit
  // ...but the original arrives: cumulative ack + DSACK for segment 0.
  {
    auto& p = b.add(t + 0.2, false);
    p.seq = net::Seq32{kClientIsn + 201};
    p.ack = FlowBuilder::seg(5);
    p.flags.ack = true;
    p.window = kBigWindow;
    b.flow.append_sack({FlowBuilder::seg(0), FlowBuilder::seg(1)});
  }
  const auto fa = b.analyze();
  EXPECT_EQ(fa.spurious_retrans, 1u);
  EXPECT_EQ(fa.fast_retrans, 1u);
}

}  // namespace
}  // namespace tapo::analysis
