// End-to-end connection tests: handshake, request/response application
// model, loss recovery over simulated links, and server-NIC trace capture.
#include <gtest/gtest.h>

#include <memory>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace tapo::tcp {
namespace {

struct Harness {
  sim::Simulator sim;
  sim::Link down;
  sim::Link up;
  net::PacketTrace trace;
  std::unique_ptr<Connection> conn;

  explicit Harness(ConnectionConfig cfg, sim::LinkConfig down_cfg = {},
                   sim::LinkConfig up_cfg = {}, std::uint64_t seed = 1)
      : down(sim, down_cfg, Rng(seed)), up(sim, up_cfg, Rng(seed + 1)) {
    conn = std::make_unique<Connection>(sim, down, up, std::move(cfg), &trace);
  }

  void run(double seconds = 300.0) {
    conn->start();
    sim.run_until(sim.now() + Duration::seconds(seconds));
  }
};

ConnectionConfig basic_config(std::uint64_t response_bytes = 50'000,
                              int requests = 1) {
  ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  for (int i = 0; i < requests; ++i) {
    RequestSpec req;
    req.response_bytes = response_bytes;
    cfg.requests.push_back(req);
  }
  return cfg;
}

sim::LinkConfig link_rtt(double ms) {
  sim::LinkConfig cfg;
  cfg.prop_delay = Duration::seconds(ms / 2000.0);
  return cfg;
}

TEST(Connection, CleanTransferCompletes) {
  Harness h(basic_config(50'000), link_rtt(100), link_rtt(100));
  h.run();
  ASSERT_TRUE(h.conn->done());
  const auto& m = h.conn->metrics();
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.total_response_bytes, 50'000u);
  ASSERT_EQ(m.requests.size(), 1u);
  EXPECT_TRUE(m.requests[0].completed);
  // Latency at least 1 RTT, at most a few RTTs for 35 segments.
  EXPECT_GE(m.requests[0].latency(), Duration::millis(100));
  EXPECT_LE(m.requests[0].latency(), Duration::seconds(3.0));
  // Handshake took one RTT.
  EXPECT_EQ((m.established - m.syn_sent).us(), 100'000);
}

TEST(Connection, TraceContainsHandshakeAndBothDirections) {
  Harness h(basic_config(10'000), link_rtt(50), link_rtt(50));
  h.run();
  ASSERT_TRUE(h.conn->done());
  bool saw_syn = false, saw_synack = false, saw_client = false,
       saw_server_data = false, saw_fin = false;
  for (const auto& p : h.trace.packets()) {
    const bool from_server = p.key.src_port == 80;
    if (p.tcp.flags.syn && !p.tcp.flags.ack) saw_syn = true;
    if (p.tcp.flags.syn && p.tcp.flags.ack) saw_synack = true;
    if (!from_server && !p.tcp.flags.syn) saw_client = true;
    if (from_server && p.payload_len > 0) saw_server_data = true;
    if (p.tcp.flags.fin) saw_fin = true;
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_synack);
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_server_data);
  EXPECT_TRUE(saw_fin);
  // Timestamps are monotone at the capture point.
  for (std::size_t i = 1; i < h.trace.size(); ++i) {
    EXPECT_GE(h.trace[i].timestamp, h.trace[i - 1].timestamp);
  }
}

TEST(Connection, SynLossRecoveredByRetry) {
  sim::LinkConfig up_cfg = link_rtt(50);
  Harness h(basic_config(5'000), link_rtt(50), up_cfg);
  h.up.set_burst(0.0, Duration::millis(1), 1.0);  // outage drop prob = 1
  h.up.force_outage(Duration::millis(100));       // swallow the first SYN
  h.run();
  EXPECT_TRUE(h.conn->done());
  EXPECT_TRUE(h.conn->metrics().completed);
  // Establishment waited for the 3 s client retry.
  EXPECT_GE((h.conn->metrics().established - h.conn->metrics().syn_sent),
            Duration::seconds(3.0));
}

TEST(Connection, LossyTransferStillCompletes) {
  sim::LinkConfig down_cfg = link_rtt(80);
  down_cfg.random_loss = 0.05;
  sim::LinkConfig up_cfg = link_rtt(80);
  up_cfg.random_loss = 0.02;
  Harness h(basic_config(200'000), down_cfg, up_cfg, /*seed=*/7);
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_TRUE(h.conn->metrics().completed);
  EXPECT_GT(h.conn->sender().stats().retransmissions, 0u);
}

TEST(Connection, MultiRequestFlowServesSequentially) {
  auto cfg = basic_config(20'000, 3);
  cfg.requests[1].client_gap = Duration::millis(500);
  Harness h(cfg, link_rtt(60), link_rtt(60));
  h.run();
  ASSERT_TRUE(h.conn->done());
  const auto& m = h.conn->metrics();
  ASSERT_EQ(m.requests.size(), 3u);
  for (const auto& r : m.requests) {
    EXPECT_TRUE(r.completed);
    EXPECT_NE(r.server_acked_resp, TimePoint());
  }
  EXPECT_EQ(m.total_response_bytes, 60'000u);
  // Requests are sequential: request 1 started after response 0 finished.
  EXPECT_GE(m.requests[1].client_sent, m.requests[0].client_got_resp);
  // And the configured idle gap was honoured.
  EXPECT_GE(m.requests[1].client_sent - m.requests[0].client_got_resp,
            Duration::millis(500));
}

TEST(Connection, ServerThinkDelaysResponse) {
  auto cfg = basic_config(5'000);
  cfg.requests[0].server_think = Duration::millis(700);
  Harness h(cfg, link_rtt(40), link_rtt(40));
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_GE(h.conn->metrics().requests[0].latency(), Duration::millis(700));
}

TEST(Connection, ChunkedResponseCompletes) {
  auto cfg = basic_config(100'000);
  cfg.requests[0].chunk_bytes = 10'000;
  cfg.requests[0].chunk_interval = Duration::millis(100);
  Harness h(cfg, link_rtt(40), link_rtt(40));
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_EQ(h.conn->metrics().total_response_bytes, 100'000u);
  // Chunking stretched the transfer to at least 9 intervals.
  EXPECT_GE(h.conn->metrics().requests[0].latency(), Duration::millis(900));
}

TEST(Connection, SmallFixedWindowClientCompletes) {
  auto cfg = basic_config(60'000);
  cfg.receiver.init_rwnd_bytes = 2 * cfg.receiver.mss;
  cfg.receiver.max_rwnd_bytes = 2 * cfg.receiver.mss;
  cfg.receiver.window_autotune = false;
  cfg.receiver.app_read_Bps = 80'000;
  Harness h(cfg, link_rtt(50), link_rtt(50));
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_TRUE(h.conn->metrics().completed);
  // Transfer was receive-window-bound: roughly bytes / read rate.
  EXPECT_GE(h.conn->metrics().requests[0].latency(), Duration::millis(600));
}

TEST(Connection, SlowPausingReaderCausesZeroWindows) {
  auto cfg = basic_config(300'000);
  cfg.receiver.init_rwnd_bytes = 16 * 1024;
  cfg.receiver.max_rwnd_bytes = 16 * 1024;
  cfg.receiver.window_autotune = false;
  cfg.receiver.app_read_Bps = 200'000;
  cfg.receiver.pause_every_bytes = 32 * 1024;
  cfg.receiver.pause_duration = Duration::millis(600);
  Harness h(cfg, link_rtt(50), link_rtt(50));
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_GE(h.conn->client_receiver().zero_window_acks(), 1u);
  EXPECT_GE(h.conn->sender().stats().zero_window_episodes, 1u);
}

TEST(Connection, WindowScalingUsedForLargeWindows) {
  auto cfg = basic_config(10'000);
  cfg.receiver.init_rwnd_bytes = 512 * 1024;
  cfg.receiver.max_rwnd_bytes = 2 * 1024 * 1024;
  Harness h(cfg, link_rtt(40), link_rtt(40));
  h.run();
  bool syn_has_wscale = false;
  for (const auto& p : h.trace.packets()) {
    if (p.tcp.flags.syn && !p.tcp.flags.ack) {
      syn_has_wscale = p.tcp.window_scale.has_value();
    }
  }
  EXPECT_TRUE(syn_has_wscale);
  EXPECT_TRUE(h.conn->done());
}

TEST(Connection, SynAdvertisesInitRwnd) {
  auto cfg = basic_config(5'000);
  cfg.receiver.init_rwnd_bytes = 4096;
  cfg.receiver.max_rwnd_bytes = 4096;
  cfg.receiver.window_autotune = false;
  Harness h(cfg, link_rtt(40), link_rtt(40));
  h.run();
  for (const auto& p : h.trace.packets()) {
    if (p.tcp.flags.syn && !p.tcp.flags.ack) {
      EXPECT_EQ(p.tcp.window, 4096);
      EXPECT_TRUE(p.tcp.sack_permitted);
      ASSERT_TRUE(p.tcp.mss.has_value());
    }
  }
  EXPECT_TRUE(h.conn->done());
}

TEST(Connection, DeterministicGivenSeed) {
  auto run_once = [] {
    sim::LinkConfig down_cfg = link_rtt(80);
    down_cfg.random_loss = 0.08;
    down_cfg.jitter_mean = Duration::millis(4);
    Harness h(basic_config(150'000), down_cfg, link_rtt(80), /*seed=*/42);
    h.run();
    std::vector<std::int64_t> stamps;
    for (const auto& p : h.trace.packets()) stamps.push_back(p.timestamp.us());
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Connection, SrtoMechanismRunsEndToEnd) {
  // Short flow (small packets_out) over a lossy path: the S-RTO probe arms
  // and repairs the tail losses with zero native timeouts.
  auto cfg = basic_config(9'000);
  cfg.sender.recovery = RecoveryMechanism::kSrto;
  sim::LinkConfig down_cfg = link_rtt(80);
  down_cfg.random_loss = 0.12;
  Harness h(cfg, down_cfg, link_rtt(80), /*seed=*/22);
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_TRUE(h.conn->metrics().completed);
  EXPECT_GE(h.conn->sender().stats().srto_probes, 1u);
  EXPECT_EQ(h.conn->sender().stats().rto_fires, 0u);
}

TEST(Connection, TlpMechanismRunsEndToEnd) {
  auto cfg = basic_config(9'000);
  cfg.sender.recovery = RecoveryMechanism::kTlp;
  sim::LinkConfig down_cfg = link_rtt(80);
  down_cfg.random_loss = 0.12;
  Harness h(cfg, down_cfg, link_rtt(80), /*seed=*/22);
  h.run();
  ASSERT_TRUE(h.conn->done());
  EXPECT_GE(h.conn->sender().stats().tlp_probes, 1u);
}

TEST(Connection, HandshakeSeedsRtt) {
  Harness h(basic_config(5'000), link_rtt(100), link_rtt(100));
  h.run();
  // The sender's estimator saw the handshake RTT (~100 ms), so the RTO is
  // well below the 3 s initial value.
  EXPECT_TRUE(h.conn->sender().rto_estimator().has_sample());
  EXPECT_LT(h.conn->sender().rto_estimator().rto(), Duration::seconds(1.0));
}

}  // namespace
}  // namespace tapo::tcp
