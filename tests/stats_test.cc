// Tests for the stats library: Summary, Cdf, Histogram, Table.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "stats/cdf.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/rng.h"

namespace tapo::stats {
namespace {

TEST(Summary, Empty) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MergeMatchesCombined) {
  Rng rng(1);
  Summary a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeIntoEmpty) {
  Summary a, b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Cdf, PercentileDefinition) {
  Cdf c;
  for (int i = 1; i <= 5; ++i) c.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(c.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.percentile(0.5), 3.0);
  // Type-7: h = q*(n-1) = 0.25*4 = 1 -> exactly the 2nd sample.
  EXPECT_DOUBLE_EQ(c.percentile(0.25), 2.0);
  // Interpolation: q=0.1 -> h=0.4 -> 1 + 0.4*(2-1).
  EXPECT_DOUBLE_EQ(c.percentile(0.1), 1.4);
}

TEST(Cdf, FractionAtMost) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(5.0), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(10.0), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(100.0), 1.0);
}

TEST(Cdf, AddN) {
  Cdf c;
  c.add_n(7.0, 3);
  c.add(1.0);
  EXPECT_EQ(c.count(), 4u);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(7.0), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(6.0), 0.25);
}

TEST(Cdf, CurveMonotone) {
  Cdf c;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) c.add(rng.exponential(10.0));
  const auto pts = c.curve(20);
  ASSERT_EQ(pts.size(), 20u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GT(pts[i].f, pts[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(Cdf, CurveAt) {
  Cdf c;
  for (int i = 1; i <= 4; ++i) c.add(i);
  const auto pts = c.curve_at({0.0, 2.0, 9.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].f, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].f, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].f, 1.0);
}

TEST(Cdf, MinMaxMean) {
  Cdf c;
  c.add(3.0);
  c.add(1.0);
  c.add(5.0);
  EXPECT_DOUBLE_EQ(c.min(), 1.0);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

TEST(Cdf, Describe) {
  Cdf c;
  for (int i = 0; i < 100; ++i) c.add(i);
  const std::string d = describe(c, "ms");
  EXPECT_NE(d.find("n=100"), std::string::npos);
  EXPECT_NE(d.find("ms"), std::string::npos);
  EXPECT_EQ(describe(Cdf{}), "(no samples)");
}

TEST(Histogram, LinearBinning) {
  auto h = Histogram::linear(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 6.0);
}

TEST(Histogram, LogBinning) {
  auto h = Histogram::logarithmic(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_hi(1), 100.0, 1e-9);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 1u);
}

TEST(Histogram, MergePoolsCountsAndTails) {
  auto a = Histogram::linear(0.0, 10.0, 5);
  auto b = Histogram::linear(0.0, 10.0, 5);
  a.add(1.0);
  a.add(-1.0);
  b.add(1.5);
  b.add(9.0);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.bin(4), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, MergeRejectsMismatchedEdges) {
  auto a = Histogram::linear(0.0, 10.0, 5);
  auto b = Histogram::linear(0.0, 10.0, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // Same bin count, different edges: still rejected.
  auto c = Histogram::linear(0.0, 20.0, 5);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, MergeOfShardPartialsBitwiseEqualsSingleShot) {
  // Counts are integers, so merged per-shard partials must equal a
  // single-shot aggregation exactly — the invariant parallel runs rely on.
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(static_cast<double>((i * 37) % 120) / 10.0 - 1.0);
  }
  auto single = Histogram::logarithmic(0.1, 10.0, 8);
  for (const double s : samples) single.add(s);

  constexpr std::size_t kShards = 4;
  std::vector<Histogram> shards(kShards, Histogram::logarithmic(0.1, 10.0, 8));
  for (std::size_t i = 0; i < samples.size(); ++i) {
    shards[i % kShards].add(samples[i]);
  }
  auto merged = std::move(shards[0]);
  for (std::size_t s = 1; s < kShards; ++s) merged.merge(shards[s]);

  ASSERT_EQ(merged.bin_count(), single.bin_count());
  for (std::size_t b = 0; b < single.bin_count(); ++b) {
    EXPECT_EQ(merged.bin(b), single.bin(b)) << "bin " << b;
  }
  EXPECT_EQ(merged.underflow(), single.underflow());
  EXPECT_EQ(merged.overflow(), single.overflow());
  EXPECT_EQ(merged.total(), single.total());
}

TEST(Histogram, WeightedAdd) {
  auto h = Histogram::linear(0.0, 4.0, 2);
  h.add(1.0, 5);
  EXPECT_EQ(h.bin(0), 5u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RenderContainsBars) {
  auto h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string r = h.render(10);
  EXPECT_NE(r.find('#'), std::string::npos);
  EXPECT_NE(r.find('\n'), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  Table t("My Table");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_separator();
  t.add_row({"b", "22"});
  const std::string r = t.render();
  EXPECT_NE(r.find("My Table"), std::string::npos);
  EXPECT_NE(r.find("name"), std::string::npos);
  EXPECT_NE(r.find("alpha | 1"), std::string::npos);
  EXPECT_NE(r.find("-----"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace tapo::stats
