// Chaos-engine gate tests (ctest -L chaos):
//   - catalog integrity (names resolve, configs validate)
//   - byte-stream delivery integrity, chaos off and under the full storm
//   - zero-window deadlock regression: rwnd flapping parks the flow in
//     persist mode, which must either recover or classify kRwndLimited —
//     never wedge silently
//   - determinism: chaos runs are bit-identical parallel vs serial, and the
//     chaos-off guard path is bit-identical to the unguarded one
//   - the simulator watchdog trips on an exhausted event budget
//   - the invariant monitor stays clean across every hostile regime
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "sim/chaos.h"
#include "tcp/invariants.h"
#include "workload/experiment.h"
#include "workload/profiles.h"
#include "workload/runner.h"

namespace {

using namespace tapo;
using namespace tapo::workload;

constexpr std::uint64_t kSeed = 0xc4a05u;

/// Monitor-on for the duration of a test, with clean counters either side.
struct MonitorScope {
  MonitorScope() {
    tcp::InvariantMonitor::reset();
    tcp::InvariantMonitor::set_enabled(true);
  }
  ~MonitorScope() {
    tcp::InvariantMonitor::set_enabled(false);
    tcp::InvariantMonitor::reset();
  }
};

const sim::ChaosConfig& scenario_config(const char* name) {
  const sim::ChaosScenario* sc = sim::ChaosScenario::by_name(name);
  EXPECT_NE(sc, nullptr) << name;
  return sc->config;
}

ExperimentConfig chaos_config(const ServiceProfile& profile,
                              const sim::ChaosConfig& chaos,
                              std::size_t flows) {
  return ExperimentConfig{}
      .with_profile(profile)
      .with_flows(flows)
      .with_seed(kSeed)
      .with_analysis(false)
      .with_chaos(chaos)
      .with_delivery_check(true)
      .with_max_flow_time(Duration::seconds(120.0));
}

TEST(ChaosCatalog, NamesResolveAndConfigsValidate) {
  const auto& catalog = sim::ChaosScenario::catalog();
  ASSERT_GE(catalog.size(), 7u);
  for (const auto& sc : catalog) {
    SCOPED_TRACE(sc.name);
    EXPECT_TRUE(sc.config.enabled());
    EXPECT_NO_THROW(sc.config.validate());
    const sim::ChaosScenario* found = sim::ChaosScenario::by_name(sc.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, sc.name);
  }
  EXPECT_EQ(sim::ChaosScenario::by_name("no-such-scenario"), nullptr);
}

TEST(ChaosConfigValidation, RejectsNonsense) {
  sim::ChaosConfig bad;
  bad.ack_loss_rate = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  sim::ChaosConfig certain_drop;
  certain_drop.retrans_drop_prob = 1.0;  // would drop retransmissions forever
  EXPECT_THROW(certain_drop.validate(), std::invalid_argument);
  EXPECT_NO_THROW(sim::ChaosConfig{}.validate());
  EXPECT_FALSE(sim::ChaosConfig{}.enabled());
}

// Baseline: with chaos off, delivery verification must report every flow
// complete and intact — the tracker itself introduces no failures.
TEST(ChaosDelivery, IntactAcrossProfilesChaosOff) {
  for (const auto& profile :
       {cloud_storage_profile(), software_download_profile(),
        web_search_profile()}) {
    SCOPED_TRACE(profile.name);
    auto cfg = ExperimentConfig{}
                   .with_profile(profile)
                   .with_flows(12)
                   .with_seed(kSeed)
                   .with_analysis(false)
                   .with_delivery_check(true);
    const auto result = run_experiment(cfg);
    for (const auto& out : result.outcomes) {
      EXPECT_EQ(out.status, FlowStatus::kCompleted);
      EXPECT_EQ(out.chaos_injected, 0u);
      ASSERT_TRUE(out.delivery.has_value());
      EXPECT_TRUE(out.delivery->intact())
          << out.delivery->in_order_bytes << "/"
          << out.delivery->expected_bytes << " bytes, "
          << out.delivery->hole_ranges << " holes";
    }
  }
}

// Property: under the combined storm, every *completed* flow's reassembled
// byte stream hashes identically to the sent stream, and non-completed
// flows carry an explaining status.
TEST(ChaosDelivery, CompletedFlowsIntactUnderFullStorm) {
  MonitorScope monitor;
  std::uint64_t injected = 0;
  for (const auto& profile :
       {cloud_storage_profile(), software_download_profile(),
        web_search_profile()}) {
    SCOPED_TRACE(profile.name);
    const auto result = run_experiment(
        chaos_config(profile, scenario_config("everything"), 20));
    for (const auto& out : result.outcomes) {
      injected += out.chaos_injected;
      EXPECT_EQ(out.invariant_violations, 0u);
      ASSERT_TRUE(out.delivery.has_value());
      if (out.status == FlowStatus::kCompleted) {
        EXPECT_TRUE(out.delivery->intact())
            << out.delivery->in_order_bytes << "/"
            << out.delivery->expected_bytes << " bytes, "
            << out.delivery->hole_ranges << " holes";
      } else {
        EXPECT_TRUE(out.status == FlowStatus::kRwndLimited ||
                    out.status == FlowStatus::kTimeCapped)
            << to_string(out.status);
      }
    }
  }
  EXPECT_GT(injected, 0u) << "storm was inert";
  EXPECT_EQ(tcp::InvariantMonitor::total_violations(), 0u);
}

// Regression: hostile zero-window rewrites park the sender in persist mode.
// The flow must either finish (persist probes solicited an honest window)
// or classify kRwndLimited — a silent wedge fails the status check, and a
// runaway probe loop would trip the watchdog status instead.
TEST(ChaosZeroWindow, RwndFlapNeverDeadlocks) {
  MonitorScope monitor;
  // Crank the flap well past the catalog default so persist mode is
  // entered many times per flow.
  sim::ChaosConfig flap = scenario_config("rwnd-flap");
  flap.rwnd_flap_rate *= 4.0;
  std::uint64_t persist_probes = 0, zero_window_episodes = 0;
  for (const auto& profile :
       {cloud_storage_profile(), web_search_profile()}) {
    SCOPED_TRACE(profile.name);
    // The full 600 s cap: flapping makes big flows slow, and a merely-slow
    // flow hitting a short cap would be indistinguishable from a wedge.
    const auto result =
        run_experiment(chaos_config(profile, flap, 25)
                           .with_max_flow_time(Duration::seconds(600.0)));
    for (const auto& out : result.outcomes) {
      persist_probes += out.sender_stats.persist_probes;
      zero_window_episodes += out.sender_stats.zero_window_episodes;
      EXPECT_NE(out.status, FlowStatus::kSimDiverged);
      EXPECT_NE(out.status, FlowStatus::kTimeCapped)
          << "flow neither finished nor classified as window-limited";
      EXPECT_TRUE(out.status == FlowStatus::kCompleted ||
                  out.status == FlowStatus::kRwndLimited)
          << to_string(out.status);
      if (out.status == FlowStatus::kCompleted) {
        ASSERT_TRUE(out.delivery.has_value());
        EXPECT_TRUE(out.delivery->intact());
      }
    }
  }
  // The scenario must actually have exercised the persist machinery.
  EXPECT_GT(zero_window_episodes, 0u);
  EXPECT_GT(persist_probes, 0u);
  EXPECT_EQ(tcp::InvariantMonitor::total_violations(), 0u);
}

// Determinism: one chaos seed produces bit-identical outcomes regardless
// of worker-thread count (the per-flow reseed scheme).
TEST(ChaosDeterminism, ParallelMatchesSerialUnderStorm) {
  const auto cfg = chaos_config(web_search_profile(),
                                scenario_config("everything"), 24);
  const auto serial = run_experiment(cfg, 1);
  const auto parallel = run_experiment(cfg, 4);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    const auto& a = serial.outcomes[i];
    const auto& b = parallel.outcomes[i];
    SCOPED_TRACE(i);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.chaos_injected, b.chaos_injected);
    EXPECT_EQ(a.response_bytes, b.response_bytes);
    EXPECT_EQ(a.sender_stats.segments_sent, b.sender_stats.segments_sent);
    EXPECT_EQ(a.sender_stats.retransmissions, b.sender_stats.retransmissions);
    ASSERT_TRUE(a.delivery.has_value());
    ASSERT_TRUE(b.delivery.has_value());
    EXPECT_EQ(a.delivery->delivered_hash, b.delivery->delivered_hash);
    EXPECT_EQ(a.delivery->in_order_bytes, b.delivery->in_order_bytes);
  }
}

// Determinism: default-constructed FlowGuards (chaos off, no delivery
// check, default budget) must leave the simulated packet stream
// bit-identical to the historical unguarded run_flow path.
TEST(ChaosDeterminism, ChaosOffGuardsBitIdenticalTrace) {
  Rng rng(kSeed);
  const FlowScenario scenario =
      draw_scenario(cloud_storage_profile(), rng, 1);
  const auto bare = run_flow(scenario, Rng(kSeed ^ 7), Duration::seconds(120.0),
                             TraceCapture::kServerNic);
  FlowGuards guards;
  guards.verify_delivery = true;
  guards.event_budget = kDefaultEventBudget;
  const auto guarded = run_flow(scenario, Rng(kSeed ^ 7),
                                Duration::seconds(120.0),
                                TraceCapture::kServerNic, guards);
  ASSERT_TRUE(bare.trace.has_value());
  ASSERT_TRUE(guarded.trace.has_value());
  ASSERT_EQ(bare.trace->size(), guarded.trace->size());
  for (std::size_t i = 0; i < bare.trace->size(); ++i) {
    const auto& p = (*bare.trace)[i];
    const auto& q = (*guarded.trace)[i];
    ASSERT_EQ(p.timestamp.us(), q.timestamp.us()) << "packet " << i;
    ASSERT_EQ(p.tcp.seq.raw(), q.tcp.seq.raw()) << "packet " << i;
    ASSERT_EQ(p.tcp.ack.raw(), q.tcp.ack.raw()) << "packet " << i;
    ASSERT_EQ(p.payload_len, q.payload_len) << "packet " << i;
  }
  EXPECT_EQ(bare.status, guarded.status);
  EXPECT_EQ(guarded.chaos_injected, 0u);
  ASSERT_TRUE(guarded.delivery.has_value());
  EXPECT_TRUE(guarded.delivery->intact());
}

// The watchdog: an absurdly small event budget must classify the flow as
// diverged instead of running the full simulation.
TEST(ChaosWatchdog, TinyEventBudgetTripsDiverged) {
  Rng rng(kSeed);
  const FlowScenario scenario =
      draw_scenario(cloud_storage_profile(), rng, 1);
  FlowGuards guards;
  guards.event_budget = 10;
  const auto out = run_flow(scenario, Rng(kSeed ^ 7), Duration::seconds(120.0),
                            TraceCapture::kNone, guards);
  EXPECT_EQ(out.status, FlowStatus::kSimDiverged);
  EXPECT_FALSE(out.completed);
}

// Monitor plumbing: violations reported inside a FlowScope are attributed
// to that flow and to the global counters, and reset() clears both.
TEST(ChaosInvariants, ReportAttributionAndReset) {
  MonitorScope monitor;
  {
    tcp::InvariantMonitor::FlowScope scope(42);
    tcp::InvariantMonitor::report(tcp::InvariantKind::kCwndBounds, 7, 123);
    tcp::InvariantMonitor::report(tcp::InvariantKind::kRtoRange, 9, 456);
    EXPECT_EQ(scope.violations(), 2u);
  }
  EXPECT_EQ(tcp::InvariantMonitor::total_violations(), 2u);
  EXPECT_EQ(
      tcp::InvariantMonitor::violations(tcp::InvariantKind::kCwndBounds), 1u);
  const auto recent = tcp::InvariantMonitor::recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].flow, 42u);
  EXPECT_EQ(recent[0].kind, tcp::InvariantKind::kCwndBounds);
  EXPECT_EQ(recent[1].seq, 9u);
  tcp::InvariantMonitor::reset();
  EXPECT_EQ(tcp::InvariantMonitor::total_violations(), 0u);
  EXPECT_TRUE(tcp::InvariantMonitor::recent().empty());
}

// Every catalog scenario individually: no invariant violations, no
// watchdog trips, completed flows intact. A cheaper per-scenario sweep
// than the bench harness, suitable for every ctest run.
TEST(ChaosInvariants, MonitorCleanAcrossCatalog) {
  MonitorScope monitor;
  for (const auto& sc : sim::ChaosScenario::catalog()) {
    SCOPED_TRACE(sc.name);
    const auto result =
        run_experiment(chaos_config(web_search_profile(), sc.config, 8));
    for (const auto& out : result.outcomes) {
      EXPECT_EQ(out.invariant_violations, 0u);
      EXPECT_NE(out.status, FlowStatus::kSimDiverged);
      if (out.status == FlowStatus::kCompleted) {
        ASSERT_TRUE(out.delivery.has_value());
        EXPECT_TRUE(out.delivery->intact());
      }
    }
  }
  EXPECT_EQ(tcp::InvariantMonitor::total_violations(), 0u);
}

}  // namespace
