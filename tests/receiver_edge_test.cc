// Receiver edge cases: autotune bounds, SWS thresholds, pause/window-update
// interplay, duplicate handling corner cases.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/receiver.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr net::Seq32 kIsn{100};

struct Harness {
  sim::Simulator sim;
  std::vector<TcpReceiver::AckSpec> acks;
  std::unique_ptr<TcpReceiver> rcv;

  explicit Harness(ReceiverConfig cfg) {
    rcv = std::make_unique<TcpReceiver>(
        sim, cfg, [this](const TcpReceiver::AckSpec& a) { acks.push_back(a); });
    rcv->start(kIsn);
  }
  net::Seq32 seg(int i) const {
    return kIsn + static_cast<std::uint32_t>(i) * kMss;
  }
  void data(int i) { rcv->on_data(seg(i), kMss); }
  void advance(Duration d) { sim.run_until(sim.now() + d); }
};

ReceiverConfig cfg_fixed(std::uint32_t rwnd, std::uint64_t read_Bps = 0) {
  ReceiverConfig cfg;
  cfg.mss = kMss;
  cfg.init_rwnd_bytes = rwnd;
  cfg.max_rwnd_bytes = rwnd;
  cfg.window_autotune = false;
  cfg.app_read_Bps = read_Bps;
  return cfg;
}

TEST(ReceiverEdge, AutotuneNeverExceedsMax) {
  ReceiverConfig cfg;
  cfg.mss = kMss;
  cfg.init_rwnd_bytes = 4 * kMss;
  cfg.max_rwnd_bytes = 10 * kMss;
  cfg.window_autotune = true;
  Harness h(cfg);
  for (int i = 0; i < 200; ++i) h.data(i);
  EXPECT_EQ(h.rcv->buffer_capacity(), 10 * kMss);
}

TEST(ReceiverEdge, AutotuneDisabledKeepsInit) {
  Harness h(cfg_fixed(4 * kMss));
  for (int i = 0; i < 100; ++i) h.data(i);
  EXPECT_EQ(h.rcv->buffer_capacity(), 4 * kMss);
}

TEST(ReceiverEdge, SwsThresholdIsHalfCapForTinyBuffers) {
  // Buffer smaller than 2*MSS: SWS threshold is cap/2, so the window can
  // still open (min(mss, cap/2)).
  auto cfg = cfg_fixed(kMss + 200, /*read_Bps=*/1);
  Harness h(cfg);
  h.rcv->on_data(kIsn, 700);
  h.advance(Duration::millis(50));
  ASSERT_FALSE(h.acks.empty());
  // free = 1200-700 = 500 < (1200/2)=600 -> advertise 0.
  EXPECT_EQ(h.acks.back().rwnd_bytes, 0u);
}

TEST(ReceiverEdge, RetransmittedOldSegmentAckedWithDsackEachTime) {
  Harness h(cfg_fixed(20 * kMss));
  h.data(0);
  h.data(1);
  ASSERT_EQ(h.acks.size(), 1u);
  for (int k = 0; k < 3; ++k) h.data(0);  // same duplicate three times
  EXPECT_EQ(h.acks.size(), 4u);
  EXPECT_EQ(h.rcv->dsacks_sent(), 3u);
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_FALSE(h.acks[i].sack_blocks.empty());
    EXPECT_EQ(h.acks[i].sack_blocks[0].start, h.seg(0));
  }
}

TEST(ReceiverEdge, PartialOverlapNotDsacked) {
  // Segment covering old + new data is not a pure duplicate.
  Harness h(cfg_fixed(20 * kMss));
  h.data(0);
  // [seg0+500, seg0+500+kMss): overlaps 500 old bytes, brings 500 new.
  h.rcv->on_data(h.seg(0) + 500, kMss);
  EXPECT_EQ(h.rcv->dsacks_sent(), 0u);
  EXPECT_EQ(h.rcv->rcv_nxt(), h.seg(0) + 500 + kMss);
}

TEST(ReceiverEdge, WindowUpdateAfterPauseEnds) {
  auto cfg = cfg_fixed(3 * kMss, /*read_Bps=*/1'000'000);
  cfg.pause_every_bytes = kMss;            // pause almost immediately
  cfg.pause_duration = Duration::millis(300);
  Harness h(cfg);
  h.data(0);
  h.advance(Duration::millis(5));
  h.data(1);
  h.data(2);  // buffer now at/near capacity while the reader is paused
  const auto acks_before = h.acks.size();
  ASSERT_GT(acks_before, 0u);
  // After the pause the reader drains and a window update goes out.
  h.advance(Duration::seconds(1.0));
  ASSERT_GT(h.acks.size(), acks_before);
  EXPECT_GT(h.acks.back().rwnd_bytes, 0u);
}

TEST(ReceiverEdge, ManyOooBlocksCappedAtFourSacks) {
  Harness h(cfg_fixed(64 * kMss));
  // Six disjoint out-of-order blocks.
  for (int i = 2; i <= 12; i += 2) h.data(i);
  ASSERT_FALSE(h.acks.empty());
  EXPECT_LE(h.acks.back().sack_blocks.size(), 4u);
}

TEST(ReceiverEdge, ZeroWindowAckCountsOncePerAck) {
  auto cfg = cfg_fixed(2 * kMss, /*read_Bps=*/1);
  Harness h(cfg);
  h.data(0);
  h.data(1);
  const auto zw = h.rcv->zero_window_acks();
  EXPECT_GE(zw, 1u);
  h.data(0);  // duplicate -> another zero-window ack
  EXPECT_GT(h.rcv->zero_window_acks(), zw);
}

TEST(ReceiverEdge, FinExactlyAtRcvNxtAfterOooAbsorption) {
  Harness h(cfg_fixed(20 * kMss));
  h.data(0);
  h.data(2);
  h.data(1);  // absorbs block; rcv_nxt = seg(3)
  h.rcv->on_fin(h.seg(3));
  EXPECT_EQ(h.acks.back().ack, h.seg(3) + 1);
}

TEST(ReceiverEdge, InstantReaderNeverPauses) {
  auto cfg = cfg_fixed(4 * kMss, /*read_Bps=*/0);
  cfg.pause_every_bytes = kMss;  // ignored: pauses need a finite read rate
  Harness h(cfg);
  for (int i = 0; i < 20; ++i) h.data(i);
  EXPECT_EQ(h.rcv->current_rwnd(), 4 * kMss);
  EXPECT_EQ(h.rcv->zero_window_acks(), 0u);
}

}  // namespace
}  // namespace tapo::tcp
