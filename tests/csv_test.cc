// Tests for the CSV export layer.
#include <fstream>
#include <cstdio>
#include <gtest/gtest.h>

#include <sstream>

#include "tapo/csv.h"
#include "util/strings.h"
#include "workload/experiment.h"

namespace tapo::analysis {
namespace {

std::vector<FlowAnalysis> sample_flows() {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::software_download_profile();
  cfg.flows = 10;
  cfg.seed = 5;
  return workload::run_experiment(cfg).analyses;
}

TEST(Csv, FlowsHeaderAndRowCount) {
  const auto flows = sample_flows();
  std::stringstream ss;
  write_flows_csv(ss, flows);
  const auto lines = split(ss.str(), '\n');
  // Header + one row per flow + trailing empty line.
  ASSERT_EQ(lines.size(), flows.size() + 2);
  EXPECT_EQ(lines[0].substr(0, 5), "flow,");
  // Every data row has the same number of commas as the header.
  const auto header_cols = split(lines[0], ',').size();
  for (std::size_t i = 1; i <= flows.size(); ++i) {
    EXPECT_EQ(split(lines[i], ',').size(), header_cols) << "row " << i;
  }
}

TEST(Csv, StallsRowPerStall) {
  const auto flows = sample_flows();
  std::size_t total_stalls = 0;
  for (const auto& f : flows) total_stalls += f.stalls.size();
  std::stringstream ss;
  write_stalls_csv(ss, flows);
  const auto lines = split(ss.str(), '\n');
  ASSERT_EQ(lines.size(), total_stalls + 2);
}

TEST(Csv, ValuesMatchAnalysis) {
  const auto flows = sample_flows();
  ASSERT_FALSE(flows.empty());
  std::stringstream ss;
  write_flows_csv(ss, flows);
  const auto lines = split(ss.str(), '\n');
  const auto cols = split(lines[1], ',');
  EXPECT_EQ(std::stoull(cols[3]), flows[0].unique_bytes);
  EXPECT_EQ(std::stoull(cols[4]), flows[0].data_segments);
  EXPECT_EQ(std::stoull(cols[17]), flows[0].stalls.size());
}

TEST(Csv, StallCauseNamesPresent) {
  const auto flows = sample_flows();
  std::stringstream ss;
  write_stalls_csv(ss, flows);
  const std::string body = ss.str();
  bool any = false;
  for (const auto& f : flows) {
    for (const auto& s : f.stalls) {
      EXPECT_NE(body.find(to_string(s.cause)), std::string::npos);
      any = true;
    }
  }
  EXPECT_TRUE(any);  // the sample workload produces stalls
}

TEST(Csv, FileWriters) {
  const auto flows = sample_flows();
  const std::string p1 = "/tmp/tapo_test_flows.csv";
  const std::string p2 = "/tmp/tapo_test_stalls.csv";
  write_flows_csv_file(p1, flows);
  write_stalls_csv_file(p2, flows);
  std::ifstream in1(p1), in2(p2);
  EXPECT_TRUE(in1.good());
  EXPECT_TRUE(in2.good());
  std::string line;
  std::getline(in1, line);
  EXPECT_EQ(line.substr(0, 5), "flow,");
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(write_flows_csv_file("/nonexistent_dir/x.csv", {}),
               std::runtime_error);
}

}  // namespace
}  // namespace tapo::analysis
